module neurovec

go 1.24
