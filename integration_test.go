package neurovec_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/rl"
	"neurovec/internal/search"
)

// TestEndToEndWorkflow exercises the complete user journey through the
// public API: generate a corpus, train end to end, verify learning, snapshot
// the model, restore it in a fresh framework, annotate unseen code, and
// cross-check against brute force and the supervised methods — the whole of
// the paper's Figure 3 plus the Section 3.5 extensions, in one test.
func TestEndToEndWorkflow(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 64
	cfg.Embed.EmbedDim = 12
	cfg.Embed.MaxContexts = 48
	fw := core.New(cfg)

	set := dataset.Generate(dataset.GenConfig{N: 300, Seed: 21})
	train, test := set.Split(0.2)
	if err := fw.LoadSet(train); err != nil {
		t.Fatal(err)
	}

	rc := rl.DefaultConfig(cfg.Arch.VFs(), cfg.Arch.IFs())
	rc.Batch, rc.MiniBatch, rc.Iterations, rc.LR = 160, 40, 14, 1e-3
	rc.Hidden = []int{32, 32}
	stats := fw.Train(&rc)
	if last := stats.RewardMean[len(stats.RewardMean)-1]; last <= stats.RewardMean[0] {
		t.Fatalf("training did not improve: %.3f -> %.3f", stats.RewardMean[0], last)
	}

	// Supervised methods on the learned embedding with brute-force labels.
	nns := &search.NNS{}
	for i := 0; i < 60; i++ {
		vf, ifc := fw.BruteForceLabel(i)
		nns.Add(fw.Embedding(i), vf, ifc)
	}

	// Snapshot and restore.
	var buf bytes.Buffer
	if err := fw.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	restored := core.New(cfg)
	if err := restored.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Held-out evaluation with the restored model.
	start := restored.NumSamples()
	for _, s := range test.Samples[:15] {
		if err := restored.LoadSource(s.Name, s.Source, nil); err != nil {
			t.Fatal(err)
		}
	}
	var agentC, bruteC, baseC, nnsC float64
	for i := start; i < restored.NumSamples(); i++ {
		vf, ifc, err := restored.Predict(i)
		if err != nil {
			t.Fatal(err)
		}
		agentC += restored.Cycles(i, vf, ifc)
		bvf, bifc := restored.BruteForceLabel(i)
		bruteC += restored.Cycles(i, bvf, bifc)
		nvf, nifc := nns.Predict(restored.Embedding(i))
		nnsC += restored.Cycles(i, nvf, nifc)
		baseC += restored.BaselineCycles(i)
	}
	if agentC < bruteC*0.999 {
		t.Fatalf("agent (%.0f) beat brute force (%.0f) — impossible", agentC, bruteC)
	}
	if agentC > baseC*1.3 {
		t.Errorf("restored agent is >30%% worse than the baseline on held-out loops: %.0f vs %.0f", agentC, baseC)
	}
	t.Logf("held-out cycles: baseline=%.0f agent=%.0f nns=%.0f brute=%.0f", baseC, agentC, nnsC, bruteC)

	// Annotate new code with the restored model.
	out, decisions, err := restored.AnnotateSource(context.Background(), `
float u[1024];
float v[1024];
float dotp() {
    float acc = 0;
    for (int i = 0; i < 1024; i++) {
        acc += u[i] * v[i];
    }
    return acc;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 || !strings.Contains(out, "#pragma clang loop vectorize_width(") {
		t.Fatalf("annotation failed: %v\n%s", decisions, out)
	}
}
