// neurovec-lint enforces repo-wide invariants that go vet cannot express,
// using only the standard go/ast toolchain (no external analyzers). It is
// run in CI over ./... and exits non-zero on any finding.
//
// Rules:
//
//	detpkg       deterministic packages (trainer, evalharness, nn, rl,
//	             lang/sema) must not read wall-clock time (time.Now,
//	             time.Since) or draw from math/rand's global source; all
//	             randomness flows through an explicit *rand.Rand so runs
//	             are reproducible from a seed.
//	ctxfirst     a context.Context parameter must be the first parameter
//	             (after the receiver), per Go convention.
//	metricnames  metric names registered through the obs registry must be
//	             snake_case with the neurovec_ prefix; counters end in
//	             _total, histograms in a unit suffix (_seconds/_bytes),
//	             and gauges carry no accumulation/unit suffix.
//	mustparse    lang.MustParse / lower.MustProgram are panicking test
//	             helpers; production code must use the error-returning
//	             ParseFile / Program forms.
//
// A finding is suppressed by a directive comment on the same line or the
// line above:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory-by-convention: the directive marks a deliberate
// exception (e.g. the eval harness reporting real wall-clock latency), and
// the next reader deserves to know why.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	File    string
	Line    int
	Col     int
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// deterministicDirs are the package directories whose behavior must be a
// pure function of their inputs and seeds (path match is by slash-separated
// suffix component, so it also catches the testdata fixture tree).
var deterministicDirs = []string{
	"internal/trainer",
	"internal/evalharness",
	"internal/nn",
	"internal/rl",
	"internal/lang/sema",
}

// metricMethods maps obs registry method names to the kind the metricnames
// rule checks the literal name against.
var metricMethods = map[string]string{
	"Counter":      "counter",
	"CounterVec":   "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gauge",
	"GaugeVec":     "gauge",
	"Histogram":    "histogram",
	"HistogramVec": "histogram",
}

// randConstructors take an explicit source/seed and are therefore allowed in
// deterministic packages; everything else on the rand package reads the
// global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

var metricNameRE = regexp.MustCompile(`^neurovec_[a-z][a-z0-9_]*$`)

var allowRE = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\b`)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := runLint(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "neurovec-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Printf("%d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runLint expands the patterns to .go files and checks each one. A pattern
// ending in /... walks its root recursively; anything else is a single
// directory or file.
func runLint(patterns []string) ([]Finding, error) {
	files, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, file := range files {
		fs, err := lintFile(file)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

func expand(patterns []string) ([]string, error) {
	var files []string
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					switch d.Name() {
					case "testdata", "vendor", ".git", "node_modules":
						if path != root {
							return filepath.SkipDir
						}
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					files = append(files, path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, pat)
			continue
		}
		ents, err := os.ReadDir(pat)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(pat, e.Name()))
			}
		}
	}
	sort.Strings(files)
	return files, nil
}

// lintFile parses one file and applies every rule, dropping findings covered
// by an allow directive.
func lintFile(path string) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	// allowed[line] is the set of rules a //lint:allow directive on that
	// line suppresses; a directive also covers the following line, so it
	// can sit inline or stand alone above the flagged statement.
	allowed := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if allowed[l] == nil {
					allowed[l] = map[string]bool{}
				}
				allowed[l][m[1]] = true
			}
		}
	}

	slash := filepath.ToSlash(path)
	isTest := strings.HasSuffix(path, "_test.go")
	deterministic := false
	for _, dir := range deterministicDirs {
		if strings.Contains(slash, dir+"/") {
			deterministic = true
			break
		}
	}
	// Import names matter: the rules key off the local names the file binds
	// to the "time" and "math/rand" imports, so aliased imports are still
	// caught and an unrelated identifier named rand is not.
	timeName, randName := importName(f, "time"), importName(f, "math/rand")

	var findings []Finding
	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if allowed[p.Line][rule] {
			return
		}
		findings = append(findings, Finding{File: path, Line: p.Line, Col: p.Column, Rule: rule, Message: msg})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				break
			}
			name := sel.Sel.Name
			if deterministic {
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Obj == nil {
					if pkg.Name == timeName && (name == "Now" || name == "Since") {
						report(n.Pos(), "detpkg", fmt.Sprintf("%s.%s reads the wall clock in a deterministic package; thread timings in explicitly", pkg.Name, name))
					}
					if pkg.Name == randName && !randConstructors[name] {
						report(n.Pos(), "detpkg", fmt.Sprintf("%s.%s uses math/rand's global source in a deterministic package; use an explicit *rand.Rand seeded by the caller", pkg.Name, name))
					}
				}
			}
			if !isTest && (name == "MustParse" || name == "MustProgram") {
				report(n.Pos(), "mustparse", fmt.Sprintf("%s panics on error and is reserved for tests; use the error-returning form", name))
			}
			if kind, ok := metricMethods[name]; ok && len(n.Args) > 0 {
				if lit, ok := n.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if metric, err := strconv.Unquote(lit.Value); err == nil {
						if msg := checkMetricName(metric, kind); msg != "" {
							report(lit.Pos(), "metricnames", msg)
						}
					}
				}
			}
		case *ast.FuncDecl:
			checkCtxFirst(n.Type, report)
		case *ast.FuncLit:
			checkCtxFirst(n.Type, report)
		}
		return true
	})
	return findings, nil
}

// importName returns the identifier the file binds to the given import path
// ("" when the file does not import it). Unnamed imports use the path base.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return p[strings.LastIndex(p, "/")+1:]
	}
	return ""
}

// checkCtxFirst reports a context.Context parameter that is not the first
// parameter of the function type.
func checkCtxFirst(ft *ast.FuncType, report func(token.Pos, string, string)) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		isCtx := isContextType(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos > 0 {
			report(field.Type.Pos(), "ctxfirst", "context.Context must be the first parameter")
		}
		pos += n
	}
}

func isContextType(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

// checkMetricName validates one registered metric name against the naming
// convention; it returns "" when the name conforms.
func checkMetricName(name, kind string) string {
	if !metricNameRE.MatchString(name) {
		return fmt.Sprintf("metric %q must be snake_case with the neurovec_ prefix", name)
	}
	isUnit := strings.HasSuffix(name, "_seconds") || strings.HasSuffix(name, "_bytes")
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return fmt.Sprintf("counter %q must end in _total", name)
		}
	case "histogram":
		if !isUnit {
			return fmt.Sprintf("histogram %q must end in a unit suffix (_seconds or _bytes)", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") || isUnit {
			return fmt.Sprintf("gauge %q must not carry a _total or unit suffix; gauges are instantaneous values", name)
		}
	}
	return ""
}
