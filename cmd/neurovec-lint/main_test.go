package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkdirWrite(dir, name, src string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644)
}

// TestFixtureViolations runs the linter over the testdata fixture and checks
// that every rule family fires where expected — and nowhere else.
func TestFixtureViolations(t *testing.T) {
	findings, err := runLint([]string{"testdata/src/internal/trainer"})
	if err != nil {
		t.Fatalf("runLint: %v", err)
	}
	want := map[string]int{
		"detpkg":      2, // time.Now + rand.Intn; the allowed time.Now must not count
		"ctxfirst":    1,
		"metricnames": 5,
		"mustparse":   1,
	}
	got := map[string]int{}
	for _, f := range findings {
		got[f.Rule]++
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: got %d findings, want %d\n%s", rule, got[rule], n, render(findings))
		}
	}
	if len(findings) != 2+1+5+1 {
		t.Errorf("total findings = %d, want 9\n%s", len(findings), render(findings))
	}
}

// TestFindingsSortedAndPositioned locks the deterministic output contract:
// findings arrive sorted by (file, line, col) and carry 1-based positions.
func TestFindingsSortedAndPositioned(t *testing.T) {
	findings, err := runLint([]string{"testdata/src/internal/trainer"})
	if err != nil {
		t.Fatalf("runLint: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	for i, f := range findings {
		if f.Line < 1 || f.Col < 1 {
			t.Errorf("finding %d has unpositioned location: %s", i, f)
		}
		if i > 0 {
			p, q := findings[i-1], f
			if p.File > q.File || (p.File == q.File && (p.Line > q.Line || (p.Line == q.Line && p.Col > q.Col))) {
				t.Errorf("findings out of order: %s before %s", p, q)
			}
		}
	}
	if s := findings[0].String(); !strings.Contains(s, "testdata/src/internal/trainer/bad.go:") {
		t.Errorf("rendered finding missing file position: %q", s)
	}
}

// TestRepoIsClean is the repo invariant itself: the linter must pass over
// the whole module. The walk runs from the module root (two levels up).
func TestRepoIsClean(t *testing.T) {
	findings, err := runLint([]string{"../../..."})
	if err != nil {
		t.Fatalf("runLint: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("repo has %d lint findings:\n%s", len(findings), render(findings))
	}
}

// TestAllowDirectiveAboveLine checks the standalone-comment placement: a
// directive on the line above the flagged statement suppresses it.
func TestAllowDirectiveAboveLine(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

func f() time.Time {
	//lint:allow detpkg reason
	return time.Now()
}

func g() time.Time {
	return time.Now()
}
`
	path := dir + "/internal/trainer"
	if err := mkdirWrite(path, "a.go", src); err != nil {
		t.Fatal(err)
	}
	findings, err := runLint([]string{path})
	if err != nil {
		t.Fatalf("runLint: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the undirected time.Now:\n%s", len(findings), render(findings))
	}
	if findings[0].Rule != "detpkg" || findings[0].Line != 11 {
		t.Errorf("unexpected finding: %s", findings[0])
	}
}

func render(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}
