// Package bad is a lint fixture: every rule family must fire on this file,
// and the one directive-carrying line must stay quiet. It lives under
// testdata so the real build and the repo-wide lint walk never see it.
package bad

import (
	"context"
	"math/rand"
	"time"
)

type registry struct{}

func (registry) Counter(name, help string) int              { return 0 }
func (registry) Gauge(name, help string) int                { return 0 }
func (registry) Histogram(name string, b []float64) int     { return 0 }
func (registry) CounterVec(name, help string, l ...any) int { return 0 }

type langPkg struct{}

func (langPkg) MustParse(src string) any { return nil }

var lang langPkg

func wallClock() time.Time {
	return time.Now() // detpkg: wall clock in a deterministic package
}

func globalRand() int {
	return rand.Intn(10) // detpkg: global math/rand source
}

func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit source
}

func allowedClock() time.Time {
	return time.Now() //lint:allow detpkg fixture proves the directive suppresses a finding
}

func ctxSecond(name string, ctx context.Context) error { // ctxfirst
	return ctx.Err()
}

func ctxFirst(ctx context.Context, name string) error { // ok
	return ctx.Err()
}

func badMetrics(r registry) {
	r.Counter("neurovec_jobs", "missing _total")          // metricnames
	r.Counter("neurovecJobsTotal", "not snake_case")      // metricnames
	r.Counter("jobs_total", "missing prefix")             // metricnames
	r.Gauge("neurovec_depth_total", "gauge with _total")  // metricnames
	r.Histogram("neurovec_latency", []float64{1})         // metricnames: no unit
	r.CounterVec("neurovec_requests_total", "ok", "code") // ok
	r.Histogram("neurovec_wait_seconds", []float64{1})    // ok
	r.Gauge("neurovec_queue_depth", "ok")                 // ok
}

func mustParseEscape() any {
	return lang.MustParse("int x;") // mustparse: panicking helper outside tests
}
