package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neurovec/internal/service"
)

const testKernel = `
int vals[256];
int kernel() {
    int s = 0;
    for (int i = 0; i < 256; i++) {
        s += vals[i] * 3;
    }
    return s;
}
`

func writeKernel(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "k.c")
	if err := os.WriteFile(path, []byte(testKernel), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout redirects os.Stdout for the duration of fn and returns what
// fn printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, readErr := r.Read(buf)
			sb.Write(buf[:n])
			if readErr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	fnErr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	return out, fnErr
}

func TestCmdSweep(t *testing.T) {
	path := writeKernel(t)
	out, err := captureStdout(t, func() error { return cmdSweep([]string{"-file", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "VF=64") || !strings.Contains(out, "IF=16") {
		t.Fatalf("sweep output incomplete:\n%s", out)
	}
}

func TestCmdBrute(t *testing.T) {
	path := writeKernel(t)
	out, err := captureStdout(t, func() error { return cmdBrute([]string{"-file", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "best VF=") {
		t.Fatalf("brute output missing decision:\n%s", out)
	}
}

func TestCmdExplain(t *testing.T) {
	path := writeKernel(t)
	out, err := captureStdout(t, func() error { return cmdExplain([]string{"-file", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "baseline cost model decision") || !strings.Contains(out, "brute-force best") {
		t.Fatalf("explain output incomplete:\n%s", out)
	}
}

func TestCmdReportSingleFigure(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdReport([]string{"-fig", "1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 1") {
		t.Fatalf("report output missing table:\n%s", out)
	}
}

func TestCmdTrainAndAnnotateWithModel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a small agent")
	}
	model := filepath.Join(t.TempDir(), "m.gob")
	_, err := captureStdout(t, func() error {
		return cmdTrain([]string{"-samples", "40", "-iters", "2", "-batch", "40", "-save", model})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	path := writeKernel(t)
	out, err := captureStdout(t, func() error {
		return cmdAnnotate([]string{"-file", path, "-model", model})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#pragma clang loop vectorize_width(") {
		t.Fatalf("annotated output missing pragma:\n%s", out)
	}
}

// TestCmdServeMatchesAnnotate checks the serving acceptance criterion: for
// the same checkpoint and input, /v1/annotate returns byte-identical
// annotated source to `neurovec annotate -load`, and a repeated request is
// a cache hit.
func TestCmdServeMatchesAnnotate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a small agent")
	}
	model := filepath.Join(t.TempDir(), "m.gob")
	if _, err := captureStdout(t, func() error {
		return cmdTrain([]string{"-samples", "40", "-iters", "2", "-batch", "40", "-save", model})
	}); err != nil {
		t.Fatal(err)
	}
	path := writeKernel(t)
	cliOut, err := captureStdout(t, func() error {
		return cmdAnnotate([]string{"-file", path, "-load", model})
	})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := service.New(service.Config{ModelPath: model})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	post := func() (*httptest.ResponseRecorder, service.AnnotateResponse) {
		body, _ := json.Marshal(service.AnnotateRequest{Source: testKernel})
		req := httptest.NewRequest("POST", "/v1/annotate", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		var resp service.AnnotateResponse
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
		}
		return rec, resp
	}
	rec, resp := post()
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Annotated != cliOut {
		t.Fatalf("served annotation differs from CLI:\n--- serve ---\n%s\n--- cli ---\n%s",
			resp.Annotated, cliOut)
	}
	rec2, _ := post()
	if rec2.Header().Get("X-Neurovec-Cache") != "hit" {
		t.Fatal("repeated request was not a cache hit")
	}
}

func TestCmdErrorsOnMissingFile(t *testing.T) {
	for _, fn := range []func([]string) error{cmdSweep, cmdBrute, cmdExplain} {
		if err := fn([]string{}); err == nil {
			t.Error("expected error without -file")
		}
		if err := fn([]string{"-file", "/nonexistent/x.c"}); err == nil {
			t.Error("expected error for missing file")
		}
	}
}

func TestBuildTrainerRejectsBadSpace(t *testing.T) {
	if _, _, err := buildTrainer(10, 1, 10, 1e-3, 1, "quantum"); err == nil {
		t.Fatal("expected error for unknown action space")
	}
}

func TestCmdEvalDeterministicReport(t *testing.T) {
	dir := t.TempDir()
	run := func(out string, jobs string) []byte {
		t.Helper()
		err := cmdEval([]string{
			"-policy", "random", "-corpus", "generated", "-n", "4",
			"-seed", "7", "-jobs", jobs, "-out", out,
		})
		if err != nil {
			t.Fatal(err)
		}
		body, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	first := run(filepath.Join(dir, "a.json"), "1")
	second := run(filepath.Join(dir, "b.json"), "4")
	if string(first) != string(second) {
		t.Fatalf("eval reports differ across runs/jobs:\n%s\n---\n%s", first, second)
	}
	var report struct {
		Spec struct {
			Policy string `json:"policy"`
			Seed   int64  `json:"seed"`
		} `json:"spec"`
		Overall struct {
			Files             int     `json:"files"`
			MeanSpeedup       float64 `json:"mean_speedup"`
			MeanOracleSpeedup float64 `json:"mean_oracle_speedup"`
		} `json:"overall"`
	}
	if err := json.Unmarshal(first, &report); err != nil {
		t.Fatal(err)
	}
	if report.Spec.Policy != "random" || report.Spec.Seed != 7 {
		t.Fatalf("spec = %+v", report.Spec)
	}
	if report.Overall.Files != 4 || report.Overall.MeanSpeedup <= 0 || report.Overall.MeanOracleSpeedup < 1 {
		t.Fatalf("overall = %+v", report.Overall)
	}
}

func TestCmdEvalCSVAndValidation(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.csv")
	err := cmdEval([]string{
		"-policy", "costmodel", "-corpus", "generated", "-n", "2",
		"-seed", "3", "-format", "csv", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "suite,name,loops,") {
		t.Fatalf("csv header missing:\n%s", body)
	}
	if err := cmdEval([]string{"-corpus", "bogus"}); err == nil {
		t.Error("unknown corpus accepted")
	}
	if err := cmdEval([]string{"-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := cmdEval([]string{"-policy", "nns", "-load", "x.gob"}); err == nil {
		t.Error("nns with -load accepted")
	}
}

// TestCmdTrainCorpusJobsResume covers the rebuilt train command end to end:
// corpus-shared selection, a checkpointed run, and a killed-and-resumed run
// at a different worker count writing byte-identical final checkpoints.
func TestCmdTrainCorpusJobsResume(t *testing.T) {
	if testing.Short() {
		t.Skip("trains small agents")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.gob")
	b := filepath.Join(dir, "b.gob")
	common := []string{"-corpus", "generated", "-n", "3", "-batch", "24", "-seed", "7"}

	if _, err := captureStdout(t, func() error {
		return cmdTrain(append([]string{"-iters", "2", "-jobs", "2", "-out", a}, common...))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdTrain(append([]string{"-iters", "1", "-jobs", "4", "-out", b}, common...))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdTrain([]string{"-resume", b, "-iters", "2", "-jobs", "1"})
	}); err != nil {
		t.Fatal(err)
	}

	wantBytes, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantBytes) != string(gotBytes) {
		t.Fatalf("resumed checkpoint differs from uninterrupted run (%d vs %d bytes)", len(wantBytes), len(gotBytes))
	}
}
