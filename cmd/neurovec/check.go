package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"neurovec/internal/diag"
	"neurovec/internal/evalharness"
	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
)

// cmdCheck runs the frontend's semantic analysis over C files and/or the
// built-in corpora and prints the diagnostics — gcc-style by default, the
// wire JSON with -json. The exit status distinguishes "checked clean"
// (0, warnings allowed) from "errors found" (1), which is what lets CI
// assert a corpus sweep has zero errors.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print diagnostics as JSON (the v2 wire format)")
	corpus := fs.String("corpus", "", "also check built-in suites: polybench,mibench,figure7,tsvc,generated")
	genN := fs.Int("n", 16, "generated-corpus size for -corpus generated")
	seed := fs.Int64("seed", 1, "generated-corpus seed for -corpus generated")
	strict := fs.Bool("strict", false, "exit non-zero on warnings too, not only errors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpus == "" && fs.NArg() == 0 {
		return fmt.Errorf("check: nothing to check (give C files and/or -corpus)")
	}

	// checkOne parses and analyses one named source, accumulating findings.
	// Parse failures become a synthetic error diagnostic so every input
	// contributes to one uniform report.
	var all diag.List
	checkOne := func(name, source string) {
		prog, err := lang.ParseFile(name, source)
		if err != nil {
			d := diag.Diagnostic{Severity: diag.Error, Code: "PARSE", File: name, Message: err.Error()}
			if perr, ok := err.(*lang.ParseError); ok {
				d.Line, d.Col = perr.Pos.Line, perr.Pos.Col
				d.Message = perr.Msg
			}
			all = append(all, d)
			return
		}
		all = append(all, sema.Check(name, prog).Diags...)
	}

	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			return fmt.Errorf("check: %w", err)
		}
		checkOne(file, string(src))
	}
	if *corpus != "" {
		c, err := evalharness.BuildCorpus(*corpus, *genN, *seed)
		if err != nil {
			return fmt.Errorf("check: %w", err)
		}
		for _, it := range c.Items {
			checkOne(it.Suite+"/"+it.Name, it.Source)
		}
	}
	all.Sort()

	if *asJSON {
		out := struct {
			Diagnostics diag.List `json:"diagnostics"`
			Errors      int       `json:"errors"`
			Warnings    int       `json:"warnings"`
		}{Diagnostics: all, Errors: len(all.Errors()), Warnings: len(all) - len(all.Errors())}
		if out.Diagnostics == nil {
			out.Diagnostics = diag.List{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, d := range all {
			fmt.Println(d.String())
		}
		fmt.Printf("%d error(s), %d warning(s)\n", len(all.Errors()), len(all)-len(all.Errors()))
	}

	if all.HasErrors() || (*strict && len(all) > 0) {
		os.Exit(1)
	}
	return nil
}
