// Command neurovec is the command-line front end to the NeuroVectorizer
// reproduction.
//
// Subcommands:
//
//	report   regenerate the paper's figures as text tables
//	train    parallel PPO training over a corpus, with checkpoint/resume
//	annotate run a decision policy over a C file and inject its pragmas
//	serve    run a long-lived HTTP/JSON inference service from a snapshot
//	fleet    run a consistent-hash router over N serve replicas with a
//	         shared cache tier and coordinated rolling hot-reload
//	brute    alias for the policy runner with -policy brute (per-loop table)
//	sweep    print the full VF x IF grid for the first loop of a C file
//	eval     score a policy over a whole corpus (speedup, oracle regret)
//	check    run semantic analysis over C files or corpora and print
//	         machine-readable diagnostics
//
// Every decision method of the paper's comparison is selectable with the
// shared -policy flag (annotate, brute, and sweep all take it): rl (the
// trained agent, the default), costmodel, brute, random, polly, and nns.
// Model-free policies need no training or checkpoint; rl and nns train
// in-process unless -load supplies a snapshot. -timeout bounds inference:
// deadline-aware policies (brute) return their best answer so far.
//
// Decisions are loop-granular and speak the versioned v2 schema of package
// neurovec/internal/api: every loop carries a stable LoopID (a
// content+position hash that survives whitespace and comment edits),
// -pin <loop_id|label>=VFxIF forces individual loops to explicit factors,
// and -json prints the full per-loop api.CompileResponse — the same object
// the server returns from POST /v2/compile (see docs/API.md).
//
// Training runs through the parallel pipeline (internal/trainer): rollout
// collection shards over -jobs workers with deterministic per-slot seeding,
// -corpus/-dir select real benchmark suites (shared with eval),
// -checkpoint-every writes resumable checkpoints, -resume continues an
// interrupted run bit-exactly, and -eval-every interleaves a learning-curve
// evaluation against the baseline. The final checkpoint doubles as a model
// snapshot: it is consumed with `annotate -load model.gob` or
// `serve -model model.gob`. The serve command loads the checkpoint once and
// answers /v1/annotate, /v1/embed, /v1/sweep, /v1/policies, /v1/train,
// /healthz and /metrics (see package neurovec/internal/service for the JSON
// API); SIGHUP or POST /v1/reload swaps in a retrained checkpoint without
// downtime, and asynchronous training jobs started with POST /v1/train can
// be promoted into serving the same way.
//
// Examples:
//
//	neurovec report -fig 7
//	neurovec report -fig all -full
//	neurovec sweep -file kernel.c -policy costmodel
//	neurovec annotate -file kernel.c -samples 1000 -iters 30
//	neurovec annotate -file kernel.c -policy brute -timeout 2s
//	neurovec annotate -file kernel.c -load model.gob -pin L0=4x2 -json
//	neurovec train -corpus generated -n 1000 -iters 30 -jobs 8 -out model.gob
//	neurovec train -corpus polybench,generated -checkpoint-every 5 -eval-every 5 -out model.gob
//	neurovec train -resume model.gob -iters 60 -out model.gob
//	neurovec annotate -file kernel.c -load model.gob
//	neurovec serve -model model.gob -addr :8080 -timeout 30s
//	neurovec eval -policy rl -load model.gob -corpus polybench,mibench -jobs 8 -out report.json
//	neurovec eval -policy costmodel -corpus generated -n 64 -seed 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"neurovec/internal/api"
	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/deps"
	"neurovec/internal/experiments"
	"neurovec/internal/obs"
	"neurovec/internal/policy"
	"neurovec/internal/rl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = cmdReport(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "annotate":
		err = cmdAnnotate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "brute":
		err = cmdBrute(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "neurovec: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "neurovec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: neurovec <command> [flags]

commands:
  report    regenerate the paper's figures (-fig 1|2|5|6|7|8|9|all, -full)
  train     parallel PPO training over a corpus (-corpus polybench,mibench,
            figure7,generated, -dir ./kernels, -jobs N, -out model.gob,
            -checkpoint-every K, -resume model.gob, -eval-every K);
            deterministic at a fixed -seed for any -jobs
  annotate  inject a policy's vectorization pragmas into a C file
            (-policy rl|costmodel|brute|random|polly|nns, -load model.gob,
            -timeout 2s, -pin <loop_id|label>=VFxIF, -json for the full
            per-loop v2 response)
  serve     serve inference over HTTP/JSON from a snapshot (-model model.gob,
            -timeout 30s, -train-dir DIR, -max-body BYTES, -drain 10s);
            endpoints /v2/compile (per-loop decisions, pins, batches)
            /v1/annotate /v1/embed /v1/sweep /v1/eval /v1/train /v1/policies
            /v1/reload /healthz /readyz /metrics; SIGHUP hot-reloads
  fleet     route /v2/compile across N serve replicas by consistent hash
            (-replicas 3 -model model.gob to spawn local replicas, or
            -join URL,URL to front externally managed ones; -hedge-after,
            -probe-interval, -fail-after, -cache); POST /fleet/reload rolls
            a new checkpoint replica-by-replica with zero dropped requests,
            /fleet/status reports the ring (see docs/FLEET.md)
  brute     alias for the policy runner with -policy brute: best (VF, IF)
            per loop of a C file as a table
  sweep     print the VF x IF performance grid for a C file's first loop
            (-policy marks the method's chosen cell)
  eval      evaluate a policy over a whole corpus against a baseline and the
            brute-force oracle; writes a deterministic JSON/CSV report
            (-policy rl, -baseline costmodel, -corpus polybench,mibench,
            figure7,generated, -jobs N, -out report.json, -timeout 2s)
  explain   show the simulator's cycle breakdown per loop (baseline vs best)
  check     run semantic analysis over C files and/or built-in corpora and
            print diagnostics (-json for the v2 wire format, -corpus
            polybench,mibench,figure7,tsvc,generated, -strict to fail on
            warnings); exits 1 when errors are found
  bench     run the in-process benchmark suite and emit the BENCH_*.json
            perf-trajectory artifact (-out BENCH_6.json, -pr 6)
  profile   capture CPU/heap profiles of an inference workload for
            go tool pprof (-cpu cpu.prof, -heap heap.prof, -duration 5s)
`)
}

func options(full bool, seed int64) experiments.Options {
	o := experiments.QuickOptions()
	if full {
		o = experiments.DefaultOptions()
	}
	o.Seed = seed
	return o
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 1, 2, 5, 6, 7, 8, 9, eff, or all")
	full := fs.Bool("full", false, "full-size experiments (slower, paper-scale)")
	seed := fs.Int64("seed", 1, "experiment seed")
	csvDir := fs.String("csv", "", "also write figN.csv artifacts into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := options(*full, *seed)

	writeCSV := func(name string, to func(w io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(fmt.Sprintf("%s/fig%s.csv", *csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := to(f); err != nil {
			return err
		}
		return f.Close()
	}

	run := func(name string) error {
		var tab *experiments.Table
		var curves *experiments.Curves
		switch name {
		case "1":
			tab = experiments.Fig1(o)
		case "2":
			tab = experiments.Fig2(o)
		case "5":
			curves = experiments.Fig5(o)
		case "6":
			curves = experiments.Fig6(o)
		case "7":
			tab = experiments.Fig7(o)
		case "8":
			tab = experiments.Fig8(o)
		case "9":
			tab = experiments.Fig9(o)
		case "eff":
			tab = experiments.TrainingEfficiency(o)
		default:
			return fmt.Errorf("report: unknown figure %q", name)
		}
		if tab != nil {
			fmt.Println(tab)
			return writeCSV(name, tab.WriteCSV)
		}
		fmt.Println(curves)
		return writeCSV(name, curves.WriteCSV)
	}
	figs := []string{"1", "2", "5", "6", "7", "8", "9", "eff"}
	if *fig != "all" {
		figs = strings.Split(*fig, ",")
	}
	for _, f := range figs {
		if err := run(strings.TrimSpace(f)); err != nil {
			return err
		}
	}
	return nil
}

func buildTrainer(n, iters, batch int, lr float64, seed int64, space string) (*core.Framework, *rl.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	fw := core.New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: n, Seed: seed})); err != nil {
		return nil, nil, err
	}
	rc := rl.DefaultConfig(cfg.Arch.VFs(), cfg.Arch.IFs())
	rc.Iterations = iters
	rc.Batch = batch
	rc.MiniBatch = batch / 4
	rc.LR = lr
	rc.Seed = seed
	switch space {
	case "discrete":
		rc.Space = rl.Discrete
	case "cont1":
		rc.Space = rl.Continuous1
	case "cont2":
		rc.Space = rl.Continuous2
	default:
		return nil, nil, fmt.Errorf("unknown action space %q", space)
	}
	return fw, &rc, nil
}

// cmdAnnotate and cmdBrute are one policy runner: annotate defaults to the
// trained agent and prints the annotated source, brute is the historical
// alias defaulting to -policy brute and printing the per-loop table.
func cmdAnnotate(args []string) error { return runPolicyCmd("annotate", args) }

func cmdBrute(args []string) error { return runPolicyCmd("brute", args) }

// labelRe matches parser loop labels (L0, L1, ...); any other pin address
// is treated as a stable LoopID.
var labelRe = regexp.MustCompile(`^L[0-9]+$`)

// pinFlags parses repeated -pin flags of the form <loop_id|label>=VFxIF
// (e.g. -pin L0=4x2 -pin 8c1f03ba90d2ee41=1x1) into api.Pins.
type pinFlags []api.Pin

func (p *pinFlags) String() string {
	parts := make([]string, len(*p))
	for i, pin := range *p {
		parts[i] = fmt.Sprintf("%s=%dx%d", pin.Addr(), pin.VF, pin.IF)
	}
	return strings.Join(parts, ",")
}

func (p *pinFlags) Set(s string) error {
	addr, factors, ok := strings.Cut(s, "=")
	if !ok || addr == "" {
		return fmt.Errorf("want <loop_id|label>=VFxIF, got %q", s)
	}
	vfs, ifs, ok := strings.Cut(factors, "x")
	if !ok {
		return fmt.Errorf("want factors as VFxIF, got %q", factors)
	}
	vf, err := strconv.Atoi(vfs)
	if err != nil {
		return fmt.Errorf("bad VF in %q: %v", s, err)
	}
	ifc, err := strconv.Atoi(ifs)
	if err != nil {
		return fmt.Errorf("bad IF in %q: %v", s, err)
	}
	pin := api.Pin{VF: vf, IF: ifc}
	if labelRe.MatchString(addr) {
		pin.Label = addr
	} else {
		pin.Loop = api.LoopID(addr)
	}
	*p = append(*p, pin)
	return nil
}

// policyNeedsModel reports whether the policy decides from trained state, so
// the runner must load a checkpoint or train in-process first. Everything
// else (costmodel, brute, random, polly) runs model-free.
func policyNeedsModel(name string) bool { return name == "rl" || name == "nns" }

func runPolicyCmd(cmd string, args []string) error {
	defaultPolicy := core.DefaultPolicy
	if cmd == "brute" {
		defaultPolicy = "brute"
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	file := fs.String("file", "", "C source file (required)")
	policyName := fs.String("policy", defaultPolicy,
		"decision policy: "+strings.Join(policy.List(), ", "))
	timeout := fs.Duration("timeout", 0,
		"bound inference time; deadline-aware policies answer best-so-far")
	n := fs.Int("samples", 800, "synthetic training samples (model-backed policies without -load)")
	iters := fs.Int("iters", 25, "PPO iterations (model-backed policies without -load)")
	seed := fs.Int64("seed", 1, "seed")
	load := fs.String("load", "", "load a trained snapshot (train -out) instead of training")
	model := fs.String("model", "", "alias for -load")
	var pins pinFlags
	fs.Var(&pins, "pin",
		"pin one loop to explicit factors, as <loop_id|label>=VFxIF (repeatable)")
	jsonOut := fs.Bool("json", false,
		"print the full v2 per-loop response (api.CompileResponse) as JSON")
	traceFlag := fs.Bool("trace", false,
		"record per-stage pipeline span timings (printed to stderr; embedded in -json output)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("%s: -file is required", cmd)
	}
	if *load == "" {
		*load = *model
	}
	if *load != "" && *policyName == "nns" {
		// A checkpoint carries weights but no corpus, and the NNS index is
		// built from labelled units; training in-process is the only path.
		return fmt.Errorf("%s: -policy nns trains in-process and cannot use -load (checkpoints carry no corpus for the NNS index)", cmd)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		return err
	}

	var fw *core.Framework
	switch {
	case *load != "":
		fw = core.New(core.DefaultConfig(), core.WithSeed(*seed))
		if err := fw.LoadModelFile(*load); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded model from %s (version %s)\n", *load, fw.ModelVersion())
	case policyNeedsModel(*policyName):
		var rc *rl.Config
		fw, rc, err = buildTrainer(*n, *iters, 200, 5e-4, *seed, "discrete")
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "training agent on %d loop units...\n", fw.NumSamples())
		fw.Train(rc)
	default:
		fw = core.New(core.DefaultConfig(), core.WithSeed(*seed))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tr *obs.Trace
	if *traceFlag {
		tr = obs.NewTrace()
		ctx = obs.WithRecorder(ctx, tr, nil)
	}
	// The CLI speaks the same loop-granular v2 schema as POST /v2/compile:
	// one api.Decision per loop, addressable and pinnable by stable LoopID.
	opts := []core.InferOption{core.WithPolicyName(*policyName)}
	if len(pins) > 0 {
		opts = append(opts, core.WithPins(pins))
	}
	resp, err := fw.PredictLoops(ctx, string(src), nil, opts...)
	if err != nil {
		return err
	}
	resp.File = *file
	if tr != nil {
		resp.Trace = core.TraceSpans(tr)
		printTrace(resp.Trace)
	}
	if resp.Truncated {
		fmt.Fprintf(os.Stderr, "%s: deadline expired, decisions are best-so-far\n", cmd)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	if cmd == "brute" {
		for _, d := range resp.Loops {
			fmt.Printf("%-28s id %s  best VF=%-3d IF=%-3d  speedup over baseline %.3fx\n",
				fmt.Sprintf("%s/%s", *file, d.Label), d.Loop, d.VF, d.IF, d.PredictedSpeedup)
		}
		return nil
	}
	for _, d := range resp.Loops {
		origin := resp.Policy
		if d.Provenance.Origin == api.OriginPin {
			origin = "pinned"
		}
		fmt.Fprintf(os.Stderr, "loop %s [id %s] (%s): VF=%d IF=%d\n", d.Label, d.Loop, origin, d.VF, d.IF)
	}
	fmt.Print(resp.Annotated)
	return nil
}

// printTrace renders a span block as an indented stderr table, mirroring
// the `trace` array of a /v2/compile?trace=1 response.
func printTrace(spans []api.TraceSpan) {
	for _, sp := range spans {
		label := sp.Name
		if sp.Detail != "" {
			label += " (" + sp.Detail + ")"
		}
		fmt.Fprintf(os.Stderr, "trace %8dµs %10dµs  %s%s\n",
			sp.StartMicros, sp.DurationMicros, strings.Repeat("  ", sp.Depth), label)
	}
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	file := fs.String("file", "", "C source file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("explain: -file is required")
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	fw := core.New(core.DefaultConfig())
	if err := fw.LoadSource(*file, string(src), nil); err != nil {
		return err
	}
	for i := 0; i < fw.NumSamples(); i++ {
		u := fw.Units()[i]
		fmt.Printf("=== %s ===\n", u.Name)
		legal := deps.Analyze(u.Loop)
		if legal.MaxVF >= deps.Unlimited {
			fmt.Println("dependence analysis: no loop-carried dependence, any VF legal")
		} else {
			fmt.Printf("dependence analysis: max legal VF %d (%s)\n", legal.MaxVF, legal.Reason)
		}
		cvf, cifc := fw.BaselineChoice(i)
		fmt.Printf("baseline cost model decision (VF=%d, IF=%d):\n", cvf, cifc)
		fmt.Print(fw.Explain(i, cvf, cifc))
		bvf, bifc := fw.BruteForceLabel(i)
		fmt.Printf("brute-force best (VF=%d, IF=%d):\n", bvf, bifc)
		fmt.Print(fw.Explain(i, bvf, bifc))
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	file := fs.String("file", "", "C source file (required)")
	policyName := fs.String("policy", "",
		"also report this policy's chosen cell: "+strings.Join(policy.List(), ", "))
	timeout := fs.Duration("timeout", 0, "bound the grid walk and policy decision")
	load := fs.String("load", "", "trained snapshot (required for model-backed policies like rl)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("sweep: -file is required")
	}
	if *policyName == "nns" {
		// nns needs a labelled in-process corpus a checkpoint cannot carry.
		return fmt.Errorf("sweep: -policy nns needs an in-process corpus and is unavailable here; use annotate -policy nns")
	}
	if *load == "" && policyNeedsModel(*policyName) {
		return fmt.Errorf("sweep: -policy %s needs trained state; pass -load model.gob", *policyName)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The same stateless grid computation backs the service's /v1/sweep.
	fw := core.New(core.DefaultConfig())
	if *load != "" {
		if err := fw.LoadModelFile(*load); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded model from %s (version %s)\n", *load, fw.ModelVersion())
	}
	var opts []core.InferOption
	if *policyName != "" {
		opts = append(opts, core.WithPolicyName(*policyName))
	}
	sw, err := fw.SweepSource(ctx, string(src), nil, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweeping loop %s [id %s]\n", sw.Loop, sw.ID)
	fmt.Printf("%-8s", "")
	for _, ifc := range sw.IFs {
		fmt.Printf("%10s", fmt.Sprintf("IF=%d", ifc))
	}
	fmt.Println()
	for i, vf := range sw.VFs {
		fmt.Printf("VF=%-5d", vf)
		for j := range sw.IFs {
			fmt.Printf("%10.3f", sw.Speedup[i][j])
		}
		fmt.Println()
	}
	if sw.Policy != "" {
		suffix := ""
		if sw.Truncated {
			suffix = " (truncated search)"
		}
		fmt.Printf("policy %s chooses VF=%d IF=%d%s\n", sw.Policy, sw.ChosenVF, sw.ChosenIF, suffix)
	}
	return nil
}
