package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
)

// cmdProfile captures CPU and heap profiles of a representative inference
// workload (PredictLoops over generated kernels) without needing a running
// server — the offline twin of `serve -pprof`. The outputs feed
// `go tool pprof`.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	cpuPath := fs.String("cpu", "cpu.prof", "write the CPU profile here (empty disables)")
	heapPath := fs.String("heap", "heap.prof", "write the heap profile here (empty disables)")
	duration := fs.Duration("duration", 5*time.Second, "how long to drive the workload")
	policyName := fs.String("policy", "costmodel", "decision policy to profile (model-free policies need no checkpoint)")
	load := fs.String("load", "", "trained snapshot (required for model-backed policies like rl)")
	n := fs.Int("n", 8, "generated kernels to cycle through")
	seed := fs.Int64("seed", 1, "kernel-generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load == "" && policyNeedsModel(*policyName) {
		return fmt.Errorf("profile: -policy %s needs trained state; pass -load model.gob", *policyName)
	}

	fw := core.New(core.DefaultConfig(), core.WithSeed(*seed))
	if *load != "" {
		if err := fw.LoadModelFile(*load); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded model from %s (version %s)\n", *load, fw.ModelVersion())
	}
	set := dataset.Generate(dataset.GenConfig{N: *n, Seed: *seed})
	srcs := make([]string, 0, len(set.Samples))
	for _, s := range set.Samples {
		srcs = append(srcs, s.Source)
	}

	if *cpuPath != "" {
		f, err := os.Create(*cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	ctx := context.Background()
	deadline := time.Now().Add(*duration)
	ops := 0
	for time.Now().Before(deadline) {
		if _, err := fw.PredictLoops(ctx, srcs[ops%len(srcs)], nil,
			core.WithPolicyName(*policyName)); err != nil {
			return err
		}
		ops++
	}
	fmt.Fprintf(os.Stderr, "profile: %d compilations in %s under policy %s\n", ops, *duration, *policyName)

	if *heapPath != "" {
		f, err := os.Create(*heapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // one collection so the profile shows live objects, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	for _, p := range []string{*cpuPath, *heapPath} {
		if p != "" {
			fmt.Fprintf(os.Stderr, "profile: wrote %s\n", p)
		}
	}
	return nil
}
