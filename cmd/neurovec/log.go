package main

import (
	"flag"
	"os"

	obslog "neurovec/internal/obs/log"
)

// logOpts carries the -log-level / -log-format flags shared by the
// long-running subcommands (serve, train, eval).
type logOpts struct {
	level  string
	format string
}

// addLogFlags registers the shared logging flags on fs.
func addLogFlags(fs *flag.FlagSet) *logOpts {
	o := &logOpts{}
	fs.StringVar(&o.level, "log-level", "info", "log verbosity: debug, info, warn, error")
	fs.StringVar(&o.format, "log-format", "text", "log output format: text or json")
	return o
}

// logger builds the structured stderr logger the flags describe. Logs go to
// stderr so report/artifact output on stdout stays machine-parseable.
func (o *logOpts) logger() (*obslog.Logger, error) {
	lv, err := obslog.ParseLevel(o.level)
	if err != nil {
		return nil, err
	}
	f, err := obslog.ParseFormat(o.format)
	if err != nil {
		return nil, err
	}
	return obslog.New(os.Stderr, lv, f), nil
}
