package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"neurovec/internal/benchsuite"
)

// cmdBench runs the in-process benchmark suite (internal/benchsuite) and
// writes the canonical BENCH_*.json perf-trajectory artifact. CI runs it as
// `neurovec bench -out BENCH_ci.json` and fails on malformed output; each
// PR commits its numbers as BENCH_<pr>.json at the repo root.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "write the JSON artifact to this file (default stdout)")
	pr := fs.Int("pr", 6, "PR number stamped into the artifact")
	quiet := fs.Bool("q", false, "suppress per-benchmark progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	file, err := benchsuite.Run(*pr, logf)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := file.WriteJSON(&buf); err != nil {
		return err
	}
	// Self-check before writing: the artifact contract is enforced at the
	// producer too, so a schema bug fails here instead of at CI's validator.
	if err := benchsuite.Validate(buf.Bytes()); err != nil {
		return fmt.Errorf("bench: generated artifact failed validation: %w", err)
	}
	if *out == "" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(*out, buf.Bytes(), 0o644)
}
