package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"neurovec/internal/benchsuite"
)

// cmdBench runs the in-process benchmark suite (internal/benchsuite) and
// writes the canonical BENCH_*.json perf-trajectory artifact. CI runs it as
// `neurovec bench -out BENCH_ci.json` and fails on malformed output; each
// PR commits its numbers as BENCH_<pr>.json at the repo root.
//
// With -baseline, the fresh numbers are additionally gated against a
// committed artifact: ns/op and allocs/op are compared per benchmark under
// the -tol-ns / -tol-allocs / -alloc-slack tolerances (plus the strict
// zero-alloc invariant on benchsuite.ZeroAlloc), the diff report goes to
// -diff (or stderr), and any regression makes the command exit non-zero.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "write the JSON artifact to this file (default stdout)")
	pr := fs.Int("pr", 7, "PR number stamped into the artifact")
	quiet := fs.Bool("q", false, "suppress per-benchmark progress on stderr")
	baseline := fs.String("baseline", "", "committed BENCH_*.json to gate the fresh numbers against")
	diff := fs.String("diff", "", "write the gate's diff report to this file (default stderr; needs -baseline)")
	def := benchsuite.DefaultCompareOpts()
	tolNs := fs.Float64("tol-ns", def.TolNs, "fractional ns/op headroom over baseline (1.0 = up to 2x)")
	tolAllocs := fs.Float64("tol-allocs", def.TolAllocs, "fractional allocs/op headroom over baseline")
	allocSlack := fs.Int64("alloc-slack", def.AllocSlack, "absolute allocs/op grace on top of -tol-allocs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	file, err := benchsuite.Run(*pr, logf)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := file.WriteJSON(&buf); err != nil {
		return err
	}
	// Self-check before writing: the artifact contract is enforced at the
	// producer too, so a schema bug fails here instead of at CI's validator.
	if err := benchsuite.Validate(buf.Bytes()); err != nil {
		return fmt.Errorf("bench: generated artifact failed validation: %w", err)
	}
	if *out == "" {
		if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if *baseline == "" {
		return nil
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("bench: baseline: %w", err)
	}
	if err := benchsuite.Validate(data); err != nil {
		return fmt.Errorf("bench: baseline %s: %w", *baseline, err)
	}
	var base benchsuite.File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: baseline %s: %w", *baseline, err)
	}
	report, regs := benchsuite.Compare(&base, file, benchsuite.CompareOpts{
		TolNs: *tolNs, TolAllocs: *tolAllocs, AllocSlack: *allocSlack,
	})
	if *diff == "" {
		fmt.Fprint(os.Stderr, report)
	} else if err := os.WriteFile(*diff, []byte(report), 0o644); err != nil {
		return err
	}
	if len(regs) > 0 {
		return fmt.Errorf("bench: %d regression(s) against %s", len(regs), *baseline)
	}
	return nil
}
