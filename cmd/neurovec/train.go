package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os/signal"
	"syscall"

	"neurovec/internal/rl"
	"neurovec/internal/trainer"
)

// trainOpts carries the parsed `neurovec train` flags.
type trainOpts struct {
	corpus          string
	dir             string
	n               int
	samples         int
	iters           int
	batch           int
	lr              float64
	seed            int64
	space           string
	jobs            int
	checkpointEvery int
	evalEvery       int
	evalCorpus      string
	resume          string
	out             string
	save            string
	log             *logOpts
}

// trainFlagSet builds the `neurovec train` flag set. It is a separate
// constructor so the documentation check can verify that every flag the
// training guide mentions actually exists.
func trainFlagSet() (*flag.FlagSet, *trainOpts) {
	o := &trainOpts{}
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	fs.StringVar(&o.corpus, "corpus", "generated",
		"training corpus: comma-separated suites polybench, mibench, figure7, tsvc, generated (shared with eval)")
	fs.StringVar(&o.dir, "dir", "", "also train on every .c file under this directory")
	fs.IntVar(&o.n, "n", 1000, "size of the generated suite")
	fs.IntVar(&o.samples, "samples", 0, "alias for -n (historical name)")
	fs.IntVar(&o.iters, "iters", 30, "total PPO iterations (with -resume: the new total)")
	fs.IntVar(&o.batch, "batch", 200, "rollout batch size (compilations per iteration)")
	fs.Float64Var(&o.lr, "lr", 5e-4, "learning rate")
	fs.Int64Var(&o.seed, "seed", 1, "seed; fixes weights, stats, and checkpoint bytes at any -jobs")
	fs.StringVar(&o.space, "space", "discrete", "action space: discrete, cont1, cont2")
	fs.IntVar(&o.jobs, "jobs", 0, "parallel rollout workers (default GOMAXPROCS; never changes the numbers)")
	fs.IntVar(&o.checkpointEvery, "checkpoint-every", 0,
		"write a checkpoint every N iterations (0 = final only; needs -out)")
	fs.IntVar(&o.evalEvery, "eval-every", 0,
		"score the in-progress agent vs the baseline every N iterations (0 = off)")
	fs.StringVar(&o.evalCorpus, "eval-corpus", "", "evaluation corpus for -eval-every (default: -corpus)")
	fs.StringVar(&o.resume, "resume", "", "resume training from this checkpoint (corpus, seed, and hyperparameters come from it)")
	fs.StringVar(&o.out, "out", "", "checkpoint path (the final file doubles as the serving snapshot)")
	fs.StringVar(&o.save, "save", "", "alias for -out (historical name)")
	o.log = addLogFlags(fs)
	return fs, o
}

// cmdTrain runs the parallel training pipeline: corpus-backed PPO with
// sharded rollout collection, periodic checkpoints, full resume, and an
// interleaved learning-curve evaluation.
func cmdTrain(args []string) error {
	fs, o := trainFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.out == "" {
		o.out = o.save
	}
	if o.samples > 0 {
		o.n = o.samples
	}
	if o.checkpointEvery > 0 && o.out == "" && o.resume == "" {
		return fmt.Errorf("train: -checkpoint-every needs -out")
	}
	logger, err := o.log.logger()
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}

	progress := func(p trainer.Progress) {
		fmt.Printf("iter %3d/%d  steps %7d  reward mean %+.4f  loss %.5f\n",
			p.Iteration, p.Total, p.Steps, p.RewardMean, p.Loss)
		if e := p.Eval; e != nil {
			fmt.Printf("  eval: speedup %.3fx  geomean %.3fx  oracle %.3fx  regret %.1f%%  agree %.1f%%\n",
				e.MeanSpeedup, e.GeoMeanSpeedup, e.MeanOracleSpeedup, 100*e.MeanRegret, 100*e.Agreement)
		}
		if p.Checkpoint != "" {
			logger.Info("checkpoint written", "path", p.Checkpoint, "iteration", p.Iteration)
		}
	}

	var tr *trainer.Trainer
	if o.resume != "" {
		out := o.out
		if out == "" {
			out = o.resume // keep writing where the interrupted run did
		}
		tr, err = trainer.Resume(trainer.Config{
			Jobs:            o.jobs,
			Iterations:      o.iters,
			CheckpointEvery: o.checkpointEvery,
			CheckpointPath:  out,
			Progress:        progress,
		}, o.resume)
		if err != nil {
			return err
		}
		logger.Info("resumed", "checkpoint", o.resume)
	} else {
		rc, err2 := trainRLConfig(o)
		if err2 != nil {
			return err2
		}
		tr, err = trainer.New(trainer.Config{
			RL:              rc,
			Corpus:          o.corpus,
			GenN:            o.n,
			Dir:             o.dir,
			Seed:            o.seed,
			Jobs:            o.jobs,
			Iterations:      o.iters,
			CheckpointEvery: o.checkpointEvery,
			CheckpointPath:  o.out,
			EvalEvery:       o.evalEvery,
			EvalCorpus:      o.evalCorpus,
			Progress:        progress,
		})
		if err != nil {
			return err
		}
	}
	// On resume the corpus comes from the checkpoint, not the flags.
	fmt.Printf("training on %d loop units from corpus %q (%s action space)\n",
		tr.Framework().NumSamples(), tr.Corpus(), tr.Framework().Agent().Cfg.Space)

	// Ctrl-C stops cleanly at the next iteration boundary; the trainer
	// writes a final checkpoint there when an output path is configured.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	res, err := tr.Run(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) && res != nil {
			switch {
			case res.CheckpointWritten:
				logger.Warn("interrupted; resumable",
					"iteration", res.Iterations, "resume", res.CheckpointPath)
			case o.resume != "":
				logger.Warn("interrupted; no new checkpoint, previous one still valid",
					"iteration", res.Iterations, "checkpoint", o.resume)
			default:
				logger.Warn("interrupted; no checkpoint written (pass -out to make runs resumable)",
					"iteration", res.Iterations)
			}
		}
		return err
	}
	if res.ModelVersion != "" {
		logger.Info("model saved", "path", res.CheckpointPath, "model_version", res.ModelVersion)
	}
	return nil
}

// trainRLConfig maps the CLI flags onto PPO hyperparameters.
func trainRLConfig(o *trainOpts) (*rl.Config, error) {
	rc := rl.DefaultConfig(nil, nil)
	rc.Iterations = o.iters
	rc.Batch = o.batch
	rc.MiniBatch = o.batch / 4
	rc.LR = o.lr
	rc.Seed = o.seed
	switch o.space {
	case "discrete":
		rc.Space = rl.Discrete
	case "cont1":
		rc.Space = rl.Continuous1
	case "cont2":
		rc.Space = rl.Continuous2
	default:
		return nil, fmt.Errorf("unknown action space %q", o.space)
	}
	return &rc, nil
}
