package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neurovec/internal/service"
)

// cmdServe runs the long-lived inference service: one trained checkpoint
// loaded once, served over HTTP/JSON until SIGINT/SIGTERM. SIGHUP (or
// POST /v1/reload) hot-reloads the checkpoint from disk without downtime.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	model := fs.String("model", "", "trained model snapshot to serve (required; see train -out)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "work queue depth before shedding load (0 = 4x workers)")
	cacheEntries := fs.Int("cache", 1024, "response cache entries (negative disables caching)")
	batch := fs.Int("batch", 16, "max coalesced embedding requests per batch")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "linger time to fill an embedding batch")
	timeout := fs.Duration("timeout", 0,
		"per-request compute timeout (0 disables); requests may shorten it via timeout_ms")
	trainDir := fs.String("train-dir", "",
		"directory for POST /v1/train job checkpoints (default: a temp dir)")
	maxBody := fs.Int64("max-body", 1<<20,
		"request body size limit in bytes (applies to every endpoint, including /v2/compile batches)")
	drain := fs.Duration("drain", 10*time.Second,
		"how long SIGINT/SIGTERM waits for in-flight requests before exiting")
	loopCache := fs.Int("loop-cache", 4096,
		"per-loop cache entries (code vectors and loop-pure decisions; negative disables)")
	pprofFlag := fs.Bool("pprof", false,
		"mount net/http/pprof under /debug/pprof/ (off by default: exposes internals)")
	lopts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("serve: -model is required")
	}
	if *maxBody <= 0 {
		return fmt.Errorf("serve: -max-body must be positive (got %d)", *maxBody)
	}
	logger, err := lopts.logger()
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	srv, err := service.New(service.Config{
		ModelPath:        *model,
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheEntries,
		LoopCacheEntries: *loopCache,
		MaxBatch:         *batch,
		BatchWait:        *batchWait,
		MaxRequestBytes:  *maxBody,
		RequestTimeout:   *timeout,
		TrainDir:         *trainDir,
		Pprof:            *pprofFlag,
		Logger:           logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	logger.Info("serving", "model", *model, "model_version", srv.ModelVersion(),
		"addr", *addr, "pprof", *pprofFlag)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// SIGHUP hot-reloads the checkpoint; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			// The server logs the reload outcome (success or failure) itself
			// through the shared structured logger; nothing to add here.
			_, _, _ = srv.Reload()
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: flip /readyz to 503 first so fleet routers and
	// external load balancers stop routing here, then stop accepting
	// connections and drain in-flight requests for up to -drain before
	// giving up and exiting.
	srv.SetDraining(true)
	logger.Info("shutting down", "drain", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: drain deadline exceeded: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
