package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"neurovec/internal/core"
	"neurovec/internal/evalharness"
	"neurovec/internal/policy"
	"neurovec/internal/rl"
)

// cmdEval runs a decision policy over an entire benchmark corpus against a
// baseline and the brute-force oracle, and writes the aggregate report —
// the paper's suite-level claim as a command. The report is deterministic
// at a fixed seed (byte-identical across runs and -jobs settings), which is
// what lets CI pin it as a regression gate.
func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	policyName := fs.String("policy", core.DefaultPolicy,
		"policy under evaluation: "+strings.Join(policy.List(), ", "))
	baseline := fs.String("baseline", "costmodel", "policy anchoring speedup")
	oracle := fs.String("oracle", "brute", "policy anchoring regret")
	corpusSpec := fs.String("corpus", "generated",
		"comma-separated suites: polybench, mibench, figure7, tsvc, generated")
	dir := fs.String("dir", "", "also evaluate every .c file under this directory (suite \"dir\")")
	n := fs.Int("n", 16, "size of the generated suite (matches the /v1/eval default)")
	seed := fs.Int64("seed", 1, "seed for corpus generation and the framework")
	jobs := fs.Int("jobs", 0, "parallel evaluation workers (default GOMAXPROCS; never changes the numbers)")
	out := fs.String("out", "", "write the report to this path (default stdout)")
	format := fs.String("format", "json", "report format: json or csv")
	timeout := fs.Duration("timeout", 0,
		"per-inference budget; deadline-aware policies degrade to best-so-far")
	timing := fs.Bool("timing", false,
		"include the volatile wall-clock block in the JSON report (breaks byte-identity)")
	nTrain := fs.Int("samples", 800, "synthetic training samples (model-backed policies without -load)")
	iters := fs.Int("iters", 25, "PPO iterations (model-backed policies without -load)")
	load := fs.String("load", "", "load a trained snapshot (train -out) instead of training")
	lopts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "json" && *format != "csv" {
		return fmt.Errorf("eval: unknown format %q (want json or csv)", *format)
	}
	logger, err := lopts.logger()
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}

	corpus, err := evalharness.BuildCorpus(*corpusSpec, *n, *seed)
	if err != nil {
		return err
	}
	if *dir != "" {
		extra, err := evalharness.FromDir("dir", *dir)
		if err != nil {
			return err
		}
		corpus.Add(extra.Items...)
		corpus.Sort()
	}

	needsModel := policyNeedsModel(*policyName) || policyNeedsModel(*baseline) || policyNeedsModel(*oracle)
	usesNNS := *policyName == "nns" || *baseline == "nns" || *oracle == "nns"
	if *load != "" && usesNNS {
		return fmt.Errorf("eval: nns trains in-process and cannot use -load (checkpoints carry no corpus for the NNS index)")
	}
	var fw *core.Framework
	switch {
	case *load != "":
		fw = core.New(core.DefaultConfig(), core.WithSeed(*seed))
		if err := fw.LoadModelFile(*load); err != nil {
			return err
		}
		logger.Info("loaded model", "path", *load, "model_version", fw.ModelVersion())
	case needsModel:
		var rc *rl.Config
		fw, rc, err = buildTrainer(*nTrain, *iters, 200, 5e-4, *seed, "discrete")
		if err != nil {
			return err
		}
		logger.Info("training agent", "units", fw.NumSamples(), "iterations", *iters)
		fw.Train(rc)
	default:
		fw = core.New(core.DefaultConfig(), core.WithSeed(*seed))
	}

	report, err := evalharness.New(fw).Run(context.Background(), corpus, evalharness.Options{
		Policy:   *policyName,
		Baseline: *baseline,
		Oracle:   *oracle,
		Jobs:     *jobs,
		Timeout:  *timeout,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = report.WriteJSON(w, *timing)
	case "csv":
		err = report.WriteCSV(w)
	}
	if err != nil {
		return err
	}
	if *out != "" {
		logger.Info("report written", "path", *out, "format", *format)
	}
	fmt.Fprint(os.Stderr, report.Summary())
	if t := report.Timing; t != nil {
		fmt.Fprintf(os.Stderr, "wall %.0fms over %d workers; per-file p50 %.1fms p99 %.1fms\n",
			t.WallMS, t.Jobs, t.FileP50MS, t.FileP99MS)
	}
	return nil
}
