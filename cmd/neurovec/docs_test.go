package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The documentation checks pin the repo's markdown to reality: every
// relative link must resolve, every repo path named in backticks must
// exist, every `neurovec <cmd>` in a code fence must be a real subcommand,
// and every flag the training guide shows for `neurovec train` must exist
// in the command's flag set. CI runs these as its doc-check step.

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func docFiles(t *testing.T) []string {
	t.Helper()
	root := repoRoot(t)
	files := []string{filepath.Join(root, "README.md")}
	matches, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, matches...)
}

// TestDocsRelativeLinksResolve checks [text](path) links against the tree.
func TestDocsRelativeLinksResolve(t *testing.T) {
	linkRe := regexp.MustCompile(`\]\(([^)]+)\)`)
	for _, doc := range docFiles(t) {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link target %q does not exist", filepath.Base(doc), m[1])
			}
		}
	}
}

// TestDocsRepoPathsExist checks that backticked repo paths (`internal/…`,
// `cmd/…`, `docs/…`, `.github/…`, `examples/…`) name real files or
// directories.
func TestDocsRepoPathsExist(t *testing.T) {
	root := repoRoot(t)
	pathRe := regexp.MustCompile("`((?:internal|cmd|docs|examples|\\.github)/[A-Za-z0-9_./-]+)`")
	for _, doc := range docFiles(t) {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range pathRe.FindAllStringSubmatch(string(body), -1) {
			if _, err := os.Stat(filepath.Join(root, m[1])); err != nil {
				t.Errorf("%s: repo path `%s` does not exist", filepath.Base(doc), m[1])
			}
		}
	}
}

// fenceCommands extracts `neurovec <sub> …` command lines (with backslash
// continuations folded in) from a markdown file's code fences.
func fenceCommands(t *testing.T, doc string) []string {
	t.Helper()
	body, err := os.ReadFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	var cmds []string
	inFence := false
	continuing := false
	for _, line := range strings.Split(string(body), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continuing = false
			continue
		}
		if !inFence {
			continue
		}
		if continuing {
			cmds[len(cmds)-1] += " " + strings.TrimSuffix(trimmed, `\`)
			continuing = strings.HasSuffix(trimmed, `\`)
			continue
		}
		if strings.HasPrefix(trimmed, "neurovec ") {
			cmds = append(cmds, strings.TrimSuffix(trimmed, `\`))
			continuing = strings.HasSuffix(trimmed, `\`)
		}
	}
	return cmds
}

var knownSubcommands = map[string]bool{
	"report": true, "train": true, "annotate": true, "serve": true,
	"brute": true, "sweep": true, "eval": true, "explain": true, "help": true,
	"bench": true, "profile": true, "check": true, "fleet": true,
}

// TestDocsSubcommandsAreReal checks that every `neurovec <sub>` shown in a
// code fence is a subcommand main dispatches on.
func TestDocsSubcommandsAreReal(t *testing.T) {
	for _, doc := range docFiles(t) {
		for _, cmd := range fenceCommands(t, doc) {
			fields := strings.Fields(cmd)
			if len(fields) < 2 {
				continue
			}
			if !knownSubcommands[fields[1]] {
				t.Errorf("%s: unknown subcommand in %q", filepath.Base(doc), cmd)
			}
		}
	}
}

// trainFlagNames lists the real `neurovec train` flags via the command's
// own flag-set constructor.
func trainFlagNames(t *testing.T) map[string]bool {
	t.Helper()
	fs, _ := trainFlagSet()
	names := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { names[f.Name] = true })
	return names
}

// TestDocsTrainFlagsAreReal checks every -flag shown for `neurovec train` —
// in code fences and in TRAINING.md's flags table — against the actual
// flag set.
func TestDocsTrainFlagsAreReal(t *testing.T) {
	names := trainFlagNames(t)
	flagRe := regexp.MustCompile(`(?:^|\s)-([a-z][a-z-]*)`)
	for _, doc := range docFiles(t) {
		for _, cmd := range fenceCommands(t, doc) {
			fields := strings.Fields(cmd)
			if len(fields) < 2 || fields[1] != "train" {
				continue
			}
			for _, m := range flagRe.FindAllStringSubmatch(cmd, -1) {
				if !names[m[1]] {
					t.Errorf("%s: `neurovec train` has no flag -%s (from %q)", filepath.Base(doc), m[1], cmd)
				}
			}
		}
	}

	// TRAINING.md's flags table: every `-flag` between "## Flags" and the
	// next section must exist.
	body, err := os.ReadFile(filepath.Join(repoRoot(t), "docs", "TRAINING.md"))
	if err != nil {
		t.Fatal(err)
	}
	tableRe := regexp.MustCompile("`-([a-z][a-z-]*)`")
	section := string(body)
	if i := strings.Index(section, "## Flags"); i >= 0 {
		section = section[i:]
		if j := strings.Index(section[2:], "\n## "); j >= 0 {
			section = section[:j+2]
		}
	} else {
		t.Fatal("TRAINING.md has no Flags section")
	}
	for _, m := range tableRe.FindAllStringSubmatch(section, -1) {
		if !names[m[1]] {
			t.Errorf("TRAINING.md flags table lists -%s, which `neurovec train` does not define", m[1])
		}
	}
}
