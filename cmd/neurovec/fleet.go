package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neurovec/internal/fleet"
)

// cmdFleet runs the multi-replica serving tier: a consistent-hash router in
// front of N `neurovec serve` replicas, either spawned as local child
// processes (-spawn, the default) or joined by address (-join). POST
// /fleet/reload rolls a new checkpoint across the replicas with zero dropped
// requests; SIGHUP triggers the same roll.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "router listen address")
	model := fs.String("model", "", "trained model snapshot the spawned replicas serve (required with -spawn)")
	replicas := fs.Int("replicas", 3, "number of replicas to spawn")
	join := fs.String("join", "", "comma-separated replica base URLs to join instead of spawning (e.g. http://10.0.0.1:8080,http://10.0.0.2:8080)")
	probeInterval := fs.Duration("probe-interval", time.Second, "readiness-probe cadence")
	failAfter := fs.Int("fail-after", 3, "consecutive probe failures before a replica is ejected from the ring")
	readyAfter := fs.Int("ready-after", 2, "consecutive probe successes before an ejected replica is re-admitted")
	hedgeAfter := fs.Duration("hedge-after", 0,
		"send a duplicate request to the next ring node after this long without an answer (0 disables hedging)")
	cacheEntries := fs.Int("cache", 4096, "shared response-cache entries (negative disables the tier)")
	replicaInflight := fs.Int("replica-inflight", 64,
		"max concurrent forwards per replica; beyond it requests fail over to the next ring node")
	maxBody := fs.Int64("max-body", 4<<20, "request body size limit in bytes")
	drainTimeout := fs.Duration("drain", 10*time.Second,
		"rolling reload: how long to wait for a draining replica's in-flight requests")
	serveArgs := fs.String("serve-args", "",
		"extra space-separated flags passed to every spawned `serve` process (e.g. \"-timeout 30s -cache 2048\")")
	lopts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := lopts.logger()
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}

	cfg := fleet.Config{
		ProbeInterval:   *probeInterval,
		FailAfter:       *failAfter,
		ReadyAfter:      *readyAfter,
		HedgeAfter:      *hedgeAfter,
		CacheEntries:    *cacheEntries,
		ReplicaInFlight: *replicaInflight,
		MaxRequestBytes: *maxBody,
		DrainTimeout:    *drainTimeout,
		Logger:          logger,
	}

	var spawned *fleet.Spawned
	if *join != "" {
		for _, a := range strings.Split(*join, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Replicas = append(cfg.Replicas, a)
			}
		}
		if len(cfg.Replicas) == 0 {
			return fmt.Errorf("fleet: -join needs at least one replica URL")
		}
	} else {
		if *model == "" {
			return fmt.Errorf("fleet: -model is required with -spawn (or use -join)")
		}
		childArgs := []string{"-model", *model}
		if lopts.level != "" {
			childArgs = append(childArgs, "-log-level", lopts.level, "-log-format", lopts.format)
		}
		if *serveArgs != "" {
			childArgs = append(childArgs, strings.Fields(*serveArgs)...)
		}
		spawned, err = fleet.Spawn(fleet.SpawnConfig{N: *replicas, Args: childArgs, Logger: logger})
		if err != nil {
			return err
		}
		defer spawned.Stop(*drainTimeout)
		logger.Info("replicas spawned", "n", *replicas, "model", *model)
		if err := spawned.WaitReady(context.Background(), 2*time.Minute); err != nil {
			return err
		}
		cfg.Replicas = spawned.Addrs
	}

	rt, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()
	logger.Info("fleet routing", "addr", *addr, "replicas", len(cfg.Replicas))

	httpSrv := &http.Server{Addr: *addr, Handler: rt}

	// SIGHUP rolls a freshly landed checkpoint across the fleet, mirroring
	// `serve`'s single-process SIGHUP reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			// The router logs the roll outcome itself.
			_, _ = rt.RollingReload(context.Background())
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("fleet shutting down", "drain", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("fleet: drain deadline exceeded: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
