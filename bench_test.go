// Package neurovec_test hosts the benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation section. Each bench
// regenerates its artifact end to end (training included where the figure
// requires it) and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Quick-mode experiment options are used so
// the suite completes in minutes; the cmd/neurovec "report -full" command
// runs the full-size versions.
package neurovec_test

import (
	"testing"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/experiments"
	"neurovec/internal/rl"
)

// BenchmarkFig1DotProductGrid regenerates Figure 1: the dot-product kernel
// swept over all 35 (VF, IF) pairs, normalized to the baseline cost model.
func BenchmarkFig1DotProductGrid(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig1(experiments.QuickOptions())
		for _, r := range tab.Rows() {
			for _, c := range tab.Columns {
				if v, ok := tab.Get(r, c); ok && v > best {
					best = v
				}
			}
		}
	}
	b.ReportMetric(best, "best/baseline")
}

// BenchmarkFig2SuiteBrute regenerates Figure 2: brute-force search over the
// LLVM-vectorizer-suite analogues, normalized to the baseline.
func BenchmarkFig2SuiteBrute(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig2(experiments.QuickOptions())
		mean = tab.Mean("brute/baseline")
	}
	b.ReportMetric(mean, "mean-brute/baseline")
}

// BenchmarkFig5HyperparamSweep regenerates Figure 5: PPO learning curves
// across learning rates, network architectures and batch sizes.
func BenchmarkFig5HyperparamSweep(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		curves := experiments.Fig5(experiments.QuickOptions())
		final = curves.Final("lr=0.0005", 4)
	}
	b.ReportMetric(final, "final-reward(lr=5e-4)")
}

// BenchmarkFig6ActionSpaces regenerates Figure 6: discrete vs continuous
// action-space definitions.
func BenchmarkFig6ActionSpaces(b *testing.B) {
	var discrete float64
	for i := 0; i < b.N; i++ {
		curves := experiments.Fig6(experiments.QuickOptions())
		discrete = curves.Final("discrete", 4)
	}
	b.ReportMetric(discrete, "final-reward(discrete)")
}

// BenchmarkFig7MainComparison regenerates Figure 7: the twelve held-out
// benchmarks under baseline, random, Polly, NNS, decision tree, RL and
// brute-force search.
func BenchmarkFig7MainComparison(b *testing.B) {
	var rlG, bruteG float64
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig7(experiments.QuickOptions())
		rlG = tab.GeoMean("RL")
		bruteG = tab.GeoMean("brute")
	}
	b.ReportMetric(rlG, "RL/baseline")
	b.ReportMetric(bruteG, "brute/baseline")
	b.ReportMetric(rlG/bruteG, "RL-vs-brute")
}

// BenchmarkFig8PolyBench regenerates Figure 8: PolyBench under Polly, RL and
// the combined configuration.
func BenchmarkFig8PolyBench(b *testing.B) {
	var combo float64
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig8(experiments.QuickOptions())
		combo = tab.GeoMean("polly+RL")
	}
	b.ReportMetric(combo, "polly+RL/baseline")
}

// BenchmarkFig9MiBench regenerates Figure 9: MiBench whole-program
// workloads.
func BenchmarkFig9MiBench(b *testing.B) {
	var rlG float64
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig9(experiments.QuickOptions())
		rlG = tab.GeoMean("RL")
	}
	b.ReportMetric(rlG, "RL/baseline")
}

// BenchmarkAblationEmbedding compares RL trained on the learned code2vec
// embedding vs the hand-crafted feature vector (DESIGN.md ablation).
func BenchmarkAblationEmbedding(b *testing.B) {
	var c2v, feat float64
	for i := 0; i < b.N; i++ {
		curves := experiments.AblationEmbedding(experiments.QuickOptions())
		c2v = curves.Final("code2vec (end-to-end)", 4)
		feat = curves.Final("hand-crafted features", 4)
	}
	b.ReportMetric(c2v, "final-reward(code2vec)")
	b.ReportMetric(feat, "final-reward(features)")
}

// BenchmarkAblationCompilePenalty exercises the Section 3.4 timeout rule
// on/off (DESIGN.md ablation).
func BenchmarkAblationCompilePenalty(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		tab := experiments.AblationCompilePenalty(experiments.QuickOptions())
		rate, _ = tab.Get("penalty=-9 (paper)", "timeout-rate")
	}
	b.ReportMetric(rate, "timeout-rate(with-penalty)")
}

// BenchmarkAblationPolly isolates tiling vs fusion (DESIGN.md ablation).
func BenchmarkAblationPolly(b *testing.B) {
	var gemmTiling float64
	for i := 0; i < b.N; i++ {
		tab := experiments.AblationPolly(experiments.QuickOptions())
		gemmTiling, _ = tab.Get("gemm", "tiling-only")
	}
	b.ReportMetric(gemmTiling, "gemm-tiling-speedup")
}

// BenchmarkAblationJointAgent reproduces the Section 3.3 design decision:
// one joint (VF, IF) agent vs two independent single-factor agents.
func BenchmarkAblationJointAgent(b *testing.B) {
	var joint, indep float64
	for i := 0; i < b.N; i++ {
		curves := experiments.AblationJointAgent(experiments.QuickOptions())
		joint = curves.Final("joint", 4)
		indep = curves.Final("independent", 4)
	}
	b.ReportMetric(joint, "final-reward(joint)")
	b.ReportMetric(indep, "final-reward(independent)")
}

// BenchmarkNeuralCostModel regenerates the Section 5 learned-cost-model
// extension: the end-to-end regression network scored against RL and brute
// force on the twelve benchmarks.
func BenchmarkNeuralCostModel(b *testing.B) {
	var rk float64
	for i := 0; i < b.N; i++ {
		tab := experiments.NeuralCostModel(experiments.QuickOptions())
		rk = tab.GeoMean("neural-cost-model")
	}
	b.ReportMetric(rk, "cost-model/baseline")
}

// BenchmarkRewardEvaluation measures the cost of one environment step (one
// "compilation + run" in the paper's terms) — the unit the sample-efficiency
// argument of Section 4 counts in.
func BenchmarkRewardEvaluation(b *testing.B) {
	fw := core.New(core.DefaultConfig())
	set := dataset.Generate(dataset.GenConfig{N: 16, Seed: 1})
	if err := fw.LoadSet(set); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Reward(i%fw.NumSamples(), 8, 2)
	}
}

// BenchmarkEmbeddingForward measures one code2vec forward pass at the
// paper's full 340-dimensional output width.
func BenchmarkEmbeddingForward(b *testing.B) {
	fw := core.New(core.DefaultConfig())
	set := dataset.Generate(dataset.GenConfig{N: 8, Seed: 1})
	if err := fw.LoadSet(set); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Embedding(i % fw.NumSamples())
	}
}

// BenchmarkPPOIteration measures one full PPO iteration (rollout + epochs)
// at quick-mode scale.
func BenchmarkPPOIteration(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 64
	cfg.Embed.EmbedDim = 12
	fw := core.New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 64, Seed: 1})); err != nil {
		b.Fatal(err)
	}
	rc := rl.DefaultConfig(cfg.Arch.VFs(), cfg.Arch.IFs())
	rc.Batch = 64
	rc.MiniBatch = 32
	rc.Iterations = 1
	rc.Hidden = []int{32, 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Train(&rc)
	}
}
