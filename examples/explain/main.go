// Explain shows the simulator's per-loop cycle breakdown for the paper's
// dot-product kernel across interesting factor choices — the diagnostic
// counterpart to the deployability discussion in Section 4.2: even when the
// learned policy is a black box, the performance model can always say *why*
// a configuration wins or loses.
package main

import (
	"fmt"
	"log"

	"neurovec/internal/core"
)

const kernel = `
int vec[512];
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`

func main() {
	fw := core.New(core.DefaultConfig())
	if err := fw.LoadSource("dot", kernel, nil); err != nil {
		log.Fatal(err)
	}

	bvf, bifc := fw.BaselineChoice(0)
	fmt.Printf("baseline cost model picks (VF=%d, IF=%d):\n", bvf, bifc)
	fmt.Println(fw.Explain(0, bvf, bifc))

	ovf, oifc := fw.BruteForceLabel(0)
	fmt.Printf("brute-force optimum (VF=%d, IF=%d):\n", ovf, oifc)
	fmt.Println(fw.Explain(0, ovf, oifc))

	fmt.Println("why the extremes lose:")
	fmt.Println(fw.Explain(0, 1, 1))   // scalar: no data parallelism
	fmt.Println(fw.Explain(0, 64, 16)) // maximal: spills + remainder + tail

	base := fw.BaselineCycles(0)
	fmt.Printf("speedup of the optimum over the baseline: %.2fx (paper Figure 1: ~1.2x)\n",
		base/fw.Cycles(0, ovf, oifc))
}
