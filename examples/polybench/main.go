// Polybench reproduces the Figure 8 scenario: on linear-algebra kernels,
// compare the baseline cost model, the Polly analogue (tiling + fusion),
// the trained RL vectorizer, and the combined Polly+RL configuration —
// showing Polly winning the large-trip-count kernels, RL winning the rest,
// and the combination beating both.
package main

import (
	"fmt"

	"neurovec/internal/experiments"
)

func main() {
	fmt.Println("training the agent and evaluating the PolyBench analogues...")
	tab := experiments.Fig8(experiments.QuickOptions())
	fmt.Println(tab)

	polly := tab.GeoMean("polly")
	rl := tab.GeoMean("RL")
	combo := tab.GeoMean("polly+RL")
	fmt.Printf("geomean speedups over baseline: polly %.2fx, RL %.2fx, polly+RL %.2fx\n",
		polly, rl, combo)
	fmt.Println("paper: RL 2.08x over baseline, 1.16x over Polly; Polly+RL 2.92x")

	wins := 0
	for _, r := range tab.Rows() {
		p, _ := tab.Get(r, "polly")
		q, _ := tab.Get(r, "RL")
		if q > p {
			wins++
		}
	}
	fmt.Printf("RL beats Polly on %d of %d kernels (paper: 3 of 6)\n", wins, len(tab.Rows()))
}
