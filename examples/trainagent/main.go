// Trainagent trains the full pipeline on the synthetic loop corpus, prints
// the learning curve (the raw material of the paper's Figure 5), and then
// compares the trained agent against brute-force search on held-out loops —
// the paper's "only 3% worse than brute force" claim at small scale.
package main

import (
	"fmt"
	"log"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/rl"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 64
	cfg.Embed.EmbedDim = 12
	fw := core.New(cfg)

	set := dataset.Generate(dataset.GenConfig{N: 600, Seed: 7})
	train, test := set.Split(0.2) // the paper holds out 20% for testing
	if err := fw.LoadSet(train); err != nil {
		log.Fatal(err)
	}

	rc := rl.DefaultConfig(cfg.Arch.VFs(), cfg.Arch.IFs())
	rc.Batch, rc.MiniBatch, rc.Iterations, rc.LR = 200, 50, 20, 1e-3
	rc.Hidden = []int{64, 64} // the paper's FCNN
	fmt.Printf("training on %d loop units, %d compilations per iteration\n",
		fw.NumSamples(), rc.Batch)
	stats := fw.Train(&rc)
	for i := range stats.RewardMean {
		fmt.Printf("iter %2d  steps %5d  reward %+.4f  loss %.5f\n",
			i, stats.Steps[i], stats.RewardMean[i], stats.Loss[i])
	}

	// Held-out evaluation: agent vs brute force.
	start := fw.NumSamples()
	for _, s := range test.Samples[:20] {
		if err := fw.LoadSource(s.Name, s.Source, nil); err != nil {
			log.Fatal(err)
		}
	}
	var agentCycles, bruteCycles, baseCycles float64
	for i := start; i < fw.NumSamples(); i++ {
		vf, ifc, err := fw.Predict(i)
		if err != nil {
			log.Fatal(err)
		}
		bvf, bifc := fw.BruteForceLabel(i)
		agentCycles += fw.Cycles(i, vf, ifc)
		bruteCycles += fw.Cycles(i, bvf, bifc)
		baseCycles += fw.BaselineCycles(i)
	}
	fmt.Printf("\nheld-out loops: agent %.2fx over baseline, brute force %.2fx\n",
		baseCycles/agentCycles, baseCycles/bruteCycles)
	fmt.Printf("agent is %.1f%% slower than brute force (paper: 3%%)\n",
		100*(agentCycles/bruteCycles-1))
}
