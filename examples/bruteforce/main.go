// Bruteforce reproduces the paper's motivating experiment (Figure 1): sweep
// every (VF, IF) pair on the dot-product kernel, normalize to the LLVM-style
// baseline cost model's pick, and show that the baseline leaves performance
// on the table — the observation that justifies learning the factors.
package main

import (
	"fmt"
	"log"

	"neurovec/internal/core"
)

const dotProduct = `
int vec[512];
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`

func main() {
	fw := core.New(core.DefaultConfig())
	if err := fw.LoadSource("dot", dotProduct, nil); err != nil {
		log.Fatal(err)
	}
	arch := fw.Cfg.Arch
	base := fw.BaselineCycles(0)

	fmt.Println("dot product: performance normalized to the baseline cost model")
	fmt.Printf("%-8s", "")
	for _, ifc := range arch.IFs() {
		fmt.Printf("%9s", fmt.Sprintf("IF=%d", ifc))
	}
	fmt.Println()

	better, total := 0, 0
	bestVF, bestIF, bestSpeed := 1, 1, 0.0
	for _, vf := range arch.VFs() {
		fmt.Printf("VF=%-5d", vf)
		for _, ifc := range arch.IFs() {
			speed := base / fw.Cycles(0, vf, ifc)
			fmt.Printf("%9.3f", speed)
			total++
			if speed > 1.0 {
				better++
			}
			if speed > bestSpeed {
				bestSpeed, bestVF, bestIF = speed, vf, ifc
			}
		}
		fmt.Println()
	}
	fmt.Printf("\n%d of %d factor pairs beat the baseline's own pick (paper: 26 of 35)\n", better, total)
	fmt.Printf("best: (VF=%d, IF=%d) at %.2fx over baseline\n", bestVF, bestIF, bestSpeed)
	scalar := fw.Cycles(0, 1, 1)
	fmt.Printf("baseline over scalar: %.2fx (paper: 2.6x)\n", scalar/base)
}
