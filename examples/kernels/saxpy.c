/* saxpy: the canonical single-loop kernel. Checks clean and vectorizes
 * freely; used by CI's `neurovec check` sweep and handy for trying the CLI:
 *
 *   neurovec check examples/kernels/saxpy.c
 *   neurovec annotate examples/kernels/saxpy.c
 */
float x[4096];
float y[4096];

void saxpy(float alpha) {
    for (int i = 0; i < 4096; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}
