/* stencil: a 2D five-point Jacobi sweep into a separate output grid. The
 * distinct-array form keeps the inner loop dependence-free, so the checker
 * reports nothing and the legality analysis allows full vectorization. */
float in[128][128];
float out[128][128];

void jacobi() {
    for (int i = 1; i < 127; i++) {
        for (int j = 1; j < 127; j++) {
            out[i][j] = 0.2 * (in[i][j] + in[i - 1][j] + in[i + 1][j]
                               + in[i][j - 1] + in[i][j + 1]);
        }
    }
}
