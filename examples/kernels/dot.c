/* dot: a reduction kernel. The accumulator recurrence is recognized as a
 * reduction by the lowering pass, so it neither trips the checker nor blocks
 * vectorization. */
float a[2048];
float b[2048];

float dot() {
    float sum = 0.0;
    for (int i = 0; i < 2048; i++) {
        sum += a[i] * b[i];
    }
    return sum;
}
