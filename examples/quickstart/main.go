// Quickstart: train a small agent on the synthetic corpus and use it to
// vectorize a new C file end to end — the paper's Figure 3 pipeline in
// twenty lines: code -> loop extraction -> embedding -> RL agent -> pragma
// injection.
package main

import (
	"context"
	"fmt"
	"log"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/rl"
)

const kernel = `
float xs[2048];
float ys[2048];
void saxpy(float alpha) {
    for (int i = 0; i < 2048; i++) {
        ys[i] = alpha * xs[i] + ys[i];
    }
}
`

func main() {
	// 1. Build the framework (parser, embedder, simulator, reward).
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 64 // small embedding: quickstart-sized
	cfg.Embed.EmbedDim = 12
	fw := core.New(cfg)

	// 2. Load a synthetic training corpus (paper Section 3.2).
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 400, Seed: 1})); err != nil {
		log.Fatal(err)
	}

	// 3. Train the contextual-bandit PPO agent end to end.
	rc := rl.DefaultConfig(cfg.Arch.VFs(), cfg.Arch.IFs())
	rc.Batch, rc.MiniBatch, rc.Iterations, rc.LR = 160, 40, 15, 1e-3
	rc.Hidden = []int{32, 32}
	stats := fw.Train(&rc)
	fmt.Printf("reward mean: first %+.3f -> last %+.3f\n",
		stats.RewardMean[0], stats.RewardMean[len(stats.RewardMean)-1])

	// 4. Vectorize new code: the agent reads the loop, predicts (VF, IF),
	//    and the framework injects the pragma (paper Figure 4).
	annotated, decisions, err := fw.AnnotateSource(context.Background(), kernel, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range decisions {
		fmt.Printf("loop %s: vectorize_width(%d) interleave_count(%d)\n", d.Label, d.VF, d.IF)
	}
	fmt.Println("---- annotated source ----")
	fmt.Print(annotated)
}
