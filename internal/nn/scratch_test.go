package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randVec fills a fresh vector from rng.
func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestApplyScratchParity asserts the zero-allocation path computes
// bit-identical outputs to Apply across random shapes — the invariant that
// lets serving switch paths without perturbing any decision.
func TestApplyScratchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct {
		in     int
		hidden []int
	}{
		{340, []int{256, 256, 35}}, // the paper's serving shape
		{3, []int{5, 4}},
		{64, []int{64, 64}},
		{7, []int{1}},
		{2, []int{9, 2, 9}},
	}
	for _, sh := range shapes {
		m := NewMLP("p", sh.in, sh.hidden, rng)
		s := NewScratch(m)
		for trial := 0; trial < 10; trial++ {
			x := randVec(sh.in, rng)
			want := m.Apply(x)
			got := m.ApplyScratch(s, x)
			if len(got) != len(want) {
				t.Fatalf("shape %v: len %d, want %d", sh, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape %v: out[%d] = %g, want %g (must be bit-identical)", sh, i, got[i], want[i])
				}
			}
		}
	}
}

// TestApplyScratchDoesNotMutateInput guards the caller-ownership contract:
// the input vector must come back untouched even though activations squash
// in place internally.
func TestApplyScratchDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP("p", 6, []int{4, 3}, rng)
	s := NewScratch(m)
	x := randVec(6, rng)
	orig := append([]float64(nil), x...)
	m.ApplyScratch(s, x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("input[%d] mutated: %g -> %g", i, orig[i], x[i])
		}
	}
	// An activation-first stack must also leave the caller's slice alone.
	act := &MLP{Layers: []Layer{&Tanh{}, NewDense("d", 6, 2, rng)}}
	sa := NewScratch(act)
	x2 := randVec(6, rng)
	orig2 := append([]float64(nil), x2...)
	want := act.Apply(x2)
	got := act.ApplyScratch(sa, x2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("activation-first parity: out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for i := range x2 {
		if x2[i] != orig2[i] {
			t.Fatalf("activation-first input[%d] mutated", i)
		}
	}
}

// TestApplyScratchZeroAllocs is the package-level zero-allocation invariant
// at the paper's serving shape; BENCH_7.json carries the same measurement as
// nn_forward.
func TestApplyScratchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP("p", 340, []int{256, 256, 35}, rng)
	s := NewScratch(m)
	x := randVec(340, rng)
	m.ApplyScratch(s, x) // warm-up (nothing to warm, but symmetric with pools)
	if allocs := testing.AllocsPerRun(100, func() { m.ApplyScratch(s, x) }); allocs != 0 {
		t.Fatalf("ApplyScratch allocates %v per run, want 0", allocs)
	}
	dst := make([]float64, 35)
	logits := randVec(35, rng)
	if allocs := testing.AllocsPerRun(100, func() { SoftmaxTo(dst, logits) }); allocs != 0 {
		t.Fatalf("SoftmaxTo allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { LogSoftmaxTo(dst, logits) }); allocs != 0 {
		t.Fatalf("LogSoftmaxTo allocates %v per run, want 0", allocs)
	}
}

// TestScratchGrowsAcrossModels verifies one Scratch survives being reused
// against a wider network (the hot-reload case).
func TestScratchGrowsAcrossModels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	small := NewMLP("s", 4, []int{3}, rng)
	big := NewMLP("b", 4, []int{128, 64}, rng)
	s := NewScratch(small)
	x := randVec(4, rng)
	want := big.Apply(x)
	got := big.ApplyScratch(s, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grown scratch parity: out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestForwardCachesUnaliasedInput pins the Backward-correctness contract the
// in-place activations rely on: after Forward, the caller may recycle (or an
// in-place activation may overwrite) the input slice without corrupting the
// gradients Backward computes from the cached copy.
func TestForwardCachesUnaliasedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense("t", 3, 2, rng)
	x := []float64{1, 2, 3}
	d.Forward(x)
	x[0], x[1], x[2] = -9, -9, -9 // simulate scratch reuse after Forward
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	d.Backward([]float64{1, 0})
	// dW[0][i] = dy[0] * cached_x[i] — must reflect the original input.
	for i, want := range []float64{1, 2, 3} {
		if d.W.G[i] != want {
			t.Fatalf("dW[0][%d] = %g, want %g (input cache aliased?)", i, d.W.G[i], want)
		}
	}
}

// TestBackwardZeroGradientFastPath asserts the g == 0 row skip is
// semantically invisible: bias and weight gradients match a reference
// computation without the fast path.
func TestBackwardZeroGradientFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense("t", 3, 4, rng)
	x := []float64{0.5, -1, 2}
	dy := []float64{0, 2, 0, -3} // rows 0 and 2 take the fast path
	d.Forward(x)
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dx := d.Backward(dy)
	for o := 0; o < 4; o++ {
		if d.B.G[o] != dy[o] {
			t.Fatalf("db[%d] = %g, want %g", o, d.B.G[o], dy[o])
		}
		for i := 0; i < 3; i++ {
			if want := dy[o] * x[i]; d.W.G[o*3+i] != want {
				t.Fatalf("dW[%d][%d] = %g, want %g", o, i, d.W.G[o*3+i], want)
			}
		}
	}
	for i := 0; i < 3; i++ {
		want := 0.0
		for o := 0; o < 4; o++ {
			want += dy[o] * d.W.W[o*3+i]
		}
		if math.Abs(dx[i]-want) > 1e-12 {
			t.Fatalf("dx[%d] = %g, want %g", i, dx[i], want)
		}
	}
}

// TestSoftmaxEdgeCases is the table-driven regression suite for the NaN
// bugfix: empty and fully-masked logits must yield a usable distribution.
func TestSoftmaxEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name   string
		logits []float64
		want   []float64 // nil means "any valid distribution summing to 1"
	}{
		{"empty", []float64{}, []float64{}},
		{"all -inf", []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}},
		{"single -inf", []float64{math.Inf(-1)}, []float64{1}},
		{"nan poisoned", []float64{math.NaN(), 0, math.NaN()}, nil},
		{"mixed -inf", []float64{math.Inf(-1), 0, math.Inf(-1)}, []float64{0, 1, 0}},
		{"one +inf", []float64{0, inf, 0}, nil},
		{"huge spread", []float64{-1e308, 0, 1e308}, nil},
		{"ordinary", []float64{1, 2, 3}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Softmax(tc.logits)
			if len(p) != len(tc.logits) {
				t.Fatalf("len = %d, want %d", len(p), len(tc.logits))
			}
			sum := 0.0
			for i, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("p[%d] = %g (degenerate input must not produce NaN/Inf/negative)", i, v)
				}
				sum += v
			}
			if len(p) > 0 && math.Abs(sum-1) > 1e-9 {
				t.Fatalf("sum = %g, want 1", sum)
			}
			if tc.want != nil {
				for i := range tc.want {
					if math.Abs(p[i]-tc.want[i]) > 1e-12 {
						t.Fatalf("p = %v, want %v", p, tc.want)
					}
				}
			}
			lp := LogSoftmax(tc.logits)
			for i, v := range lp {
				if math.IsNaN(v) {
					t.Fatalf("logp[%d] is NaN", i)
				}
				// exp(logp) must itself be a (sub-)probability.
				if e := math.Exp(v); e < 0 || e > 1+1e-9 {
					t.Fatalf("exp(logp[%d]) = %g out of [0,1]", i, e)
				}
			}
			// Sampling from the repaired distribution must be in range.
			if len(p) > 0 {
				rng := rand.New(rand.NewSource(1))
				for k := 0; k < 50; k++ {
					if got := SampleCategorical(p, rng); got < 0 || got >= len(p) {
						t.Fatalf("sample %d out of range", got)
					}
				}
			}
		})
	}
}

// TestShapeErrorPanics asserts every length check raises the typed value a
// serving boundary recovers on.
func TestShapeErrorPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDense("t", 3, 2, rng)
	mustShapePanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			err, ok := r.(error)
			if !ok {
				t.Fatalf("%s: panic value %T is not an error", name, r)
			}
			var se *ShapeError
			if !errors.As(err, &se) {
				t.Fatalf("%s: panic value %v is not a *ShapeError", name, err)
			}
		}()
		fn()
	}
	mustShapePanic("apply short input", func() { d.Apply([]float64{1}) })
	mustShapePanic("forward short input", func() { d.Forward([]float64{1}) })
	mustShapePanic("applyto bad dst", func() { d.ApplyTo(make([]float64, 5), []float64{1, 2, 3}) })
	mustShapePanic("softmaxto bad dst", func() { SoftmaxTo(make([]float64, 1), []float64{1, 2}) })
	mustShapePanic("logsoftmaxto bad dst", func() { LogSoftmaxTo(make([]float64, 1), []float64{1, 2}) })
	mustShapePanic("tanh bad dst", func() { new(Tanh).ApplyTo(make([]float64, 1), []float64{1, 2}) })
	mustShapePanic("relu bad dst", func() { new(ReLU).ApplyTo(make([]float64, 1), []float64{1, 2}) })
	mustShapePanic("aliased dst", func() {
		buf := []float64{1, 2, 3}
		NewDense("a", 3, 3, rng).ApplyTo(buf, buf)
	})
}

// TestClipGradsEdgeCases covers the audited zero/negative-budget behavior.
func TestClipGradsEdgeCases(t *testing.T) {
	p := NewParam("p", 2)
	// Zero gradients: untouched, norm 0.
	if norm := ClipGrads([]*Param{p}, 1); norm != 0 {
		t.Fatalf("zero-grad norm = %g", norm)
	}
	// Zero budget hard-zeroes.
	p.G[0], p.G[1] = 3, 4
	ClipGrads([]*Param{p}, 0)
	if p.G[0] != 0 || p.G[1] != 0 {
		t.Fatalf("maxNorm=0 left grads %v", p.G)
	}
	// Negative budget must not flip signs.
	p.G[0], p.G[1] = 3, 4
	ClipGrads([]*Param{p}, -1)
	if p.G[0] != 0 || p.G[1] != 0 {
		t.Fatalf("maxNorm<0 left grads %v", p.G)
	}
}
