package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericGrad estimates dLoss/dParam[i] by central differences.
func numericGrad(f func() float64, w []float64, i int) float64 {
	const h = 1e-6
	old := w[i]
	w[i] = old + h
	up := f()
	w[i] = old - h
	down := f()
	w[i] = old
	return (up - down) / (2 * h)
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("t", 4, 3, rng)
	x := []float64{0.3, -1.2, 0.7, 2.0}
	target := []float64{1, 0, -1}

	loss := func() float64 {
		y := d.Forward(x)
		s := 0.0
		for i := range y {
			diff := y[i] - target[i]
			s += 0.5 * diff * diff
		}
		return s
	}

	y := d.Forward(x)
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = y[i] - target[i]
	}
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dx := d.Backward(dy)

	for i := 0; i < d.W.Len(); i++ {
		want := numericGrad(loss, d.W.W, i)
		if math.Abs(d.W.G[i]-want) > 1e-4 {
			t.Errorf("dW[%d] = %g, numeric %g", i, d.W.G[i], want)
		}
	}
	for i := 0; i < d.B.Len(); i++ {
		want := numericGrad(loss, d.B.W, i)
		if math.Abs(d.B.G[i]-want) > 1e-4 {
			t.Errorf("db[%d] = %g, numeric %g", i, d.B.G[i], want)
		}
	}
	// dx check via perturbing the input.
	for i := range x {
		old := x[i]
		x[i] = old + 1e-6
		up := loss()
		x[i] = old - 1e-6
		down := loss()
		x[i] = old
		want := (up - down) / 2e-6
		if math.Abs(dx[i]-want) > 1e-4 {
			t.Errorf("dx[%d] = %g, numeric %g", i, dx[i], want)
		}
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP("t", 3, []int{5, 4}, rng)
	x := []float64{0.5, -0.2, 1.3}
	loss := func() float64 {
		y := m.Forward(x)
		s := 0.0
		for _, v := range y {
			s += 0.5 * v * v
		}
		return s
	}
	y := m.Forward(x)
	dy := append([]float64(nil), y...)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Backward(dy)
	for _, p := range m.Params() {
		for i := 0; i < p.Len(); i += 7 { // sample every 7th weight
			want := numericGrad(loss, p.W, i)
			if math.Abs(p.G[i]-want) > 1e-4 {
				t.Errorf("%s[%d] = %g, numeric %g", p.Name, i, p.G[i], want)
			}
		}
	}
}

func TestTanhAndReLU(t *testing.T) {
	th := &Tanh{}
	y := th.Forward([]float64{0, 1, -1})
	if y[0] != 0 || math.Abs(y[1]-math.Tanh(1)) > 1e-12 {
		t.Fatalf("tanh forward = %v", y)
	}
	dx := th.Backward([]float64{1, 1, 1})
	if math.Abs(dx[0]-1) > 1e-12 {
		t.Errorf("tanh'(0) = %g, want 1", dx[0])
	}

	re := &ReLU{}
	y = re.Forward([]float64{-2, 3})
	if y[0] != 0 || y[1] != 3 {
		t.Fatalf("relu forward = %v", y)
	}
	dx = re.Backward([]float64{5, 5})
	if dx[0] != 0 || dx[1] != 5 {
		t.Errorf("relu backward = %v", dx)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise (w-3)^2 from w=0.
	p := NewParam("w", 1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.G[0] = 2 * (p.W[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]-3) > 0.01 {
		t.Fatalf("w = %g, want ~3", p.W[0])
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMLP("xor", 2, []int{8}, rng)
	out := NewDense("out", 8, 1, rng)
	params := append(m.Params(), out.Params()...)
	opt := NewAdam(0.05)
	data := [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	var last float64
	for epoch := 0; epoch < 800; epoch++ {
		last = 0
		for _, d := range data {
			h := m.Forward(d[:2])
			y := out.Forward(h)[0]
			diff := y - d[2]
			last += 0.5 * diff * diff
			dh := out.Backward([]float64{diff})
			m.Backward(dh)
		}
		opt.Step(params)
	}
	if last > 0.05 {
		t.Fatalf("XOR loss after training = %g, want < 0.05", last)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw [5]int8) bool {
		logits := make([]float64, 5)
		for i, v := range raw {
			logits[i] = float64(v) / 16
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// LogSoftmax consistency.
		lp := LogSoftmax(logits)
		for i := range p {
			if math.Abs(math.Exp(lp[i])-p[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 1002})
	sum := 0.0
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %g", sum)
	}
}

func TestSampleCategoricalRespectsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	probs := []float64{0.1, 0.7, 0.2}
	counts := make([]int, 3)
	n := 20000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(probs, rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-p) > 0.02 {
			t.Errorf("bucket %d frequency %g, want ~%g", i, got, p)
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 5, 3}) != 1 {
		t.Fatal("argmax wrong")
	}
}

func TestCategoricalEntropy(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got, want := CategoricalEntropy(uniform), math.Log(4); math.Abs(got-want) > 1e-9 {
		t.Errorf("uniform entropy = %g, want %g", got, want)
	}
	peaked := []float64{1, 0, 0, 0}
	if got := CategoricalEntropy(peaked); got > 1e-9 {
		t.Errorf("deterministic entropy = %g, want 0", got)
	}
}

func TestGaussianLogProb(t *testing.T) {
	// At the mean with sigma=1, density is 1/sqrt(2 pi).
	got := GaussianLogProb(0, 0, 0)
	want := -0.5 * math.Log(2*math.Pi)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("logprob = %g, want %g", got, want)
	}
	// Further from the mean is less likely.
	if GaussianLogProb(2, 0, 0) >= GaussianLogProb(1, 0, 0) {
		t.Error("log prob not decreasing away from mean")
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam("p", 2)
	p.G[0], p.G[1] = 3, 4 // norm 5
	norm := ClipGrads([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-9 {
		t.Fatalf("pre-clip norm = %g", norm)
	}
	if math.Abs(p.G[0]-0.6) > 1e-9 || math.Abs(p.G[1]-0.8) > 1e-9 {
		t.Fatalf("clipped grads = %v", p.G)
	}
}

func TestAdamClearsGradients(t *testing.T) {
	p := NewParam("p", 1)
	p.G[0] = 1
	NewAdam(0.01).Step([]*Param{p})
	if p.G[0] != 0 {
		t.Fatal("gradient not cleared after step")
	}
}
