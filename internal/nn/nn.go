// Package nn is a small, dependency-free neural-network library sufficient
// for the paper's models: fully-connected policy/value networks (the 64x64
// FCNN and the wider variants of the hyperparameter sweep), the code2vec
// attention encoder, categorical and Gaussian action heads, and the Adam
// optimizer. Everything is float64 and single-threaded; forward passes cache
// activations for the matching backward pass, so a network instance must not
// be shared between concurrent callers of Forward/Backward.
//
// For inference-only use, every layer also provides Apply: the same
// computation as Forward but without caching. Apply only reads parameter
// weights, so any number of goroutines may call it on a shared network as
// long as no concurrent training step mutates the weights.
//
// The serving hot path uses the destination-passing variants instead:
// Dense.ApplyTo, the activations' in-place ApplyTo, MLP.ApplyScratch with a
// caller-owned Scratch, and SoftmaxTo/LogSoftmaxTo. They compute exactly the
// same values as Apply (same floating-point operation order, so outputs are
// bit-identical) but perform zero heap allocations, which is what keeps a
// model-serving worker out of the garbage collector. Shape violations panic
// with a typed *ShapeError so a serving boundary can recover it into an
// error instead of crashing the process.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// ShapeError is the typed panic value raised by every length check in this
// package: a dense layer fed a vector of the wrong width, or a destination
// buffer of the wrong size. It implements error so a recover() at a serving
// boundary can surface it as a typed failure (a malformed checkpoint or an
// embed-config skew) for the one request instead of crashing the process.
type ShapeError struct {
	Op   string // the operation that tripped, e.g. "dense trunk.fc0.W input"
	Got  int
	Want int
}

// Error renders the mismatch.
func (e *ShapeError) Error() string {
	return fmt.Sprintf("nn: %s: length %d, want %d", e.Op, e.Got, e.Want)
}

// Param is a learnable tensor with its gradient accumulator and Adam state.
type Param struct {
	Name string
	W    []float64 // weights (row-major for matrices)
	G    []float64 // gradient accumulator
	m, v []float64 // Adam moments
}

// NewParam allocates a zero parameter of n elements.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float64, n), G: make([]float64, n)}
}

// NewParamInit allocates a parameter initialised by fn(i).
func NewParamInit(name string, n int, fn func(i int) float64) *Param {
	p := NewParam(name, n)
	for i := range p.W {
		p.W[i] = fn(i)
	}
	return p
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Len returns the number of elements.
func (p *Param) Len() int { return len(p.W) }

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs; Backward accumulates parameter gradients and returns the
// gradient with respect to its input. Apply computes the same function as
// Forward without touching the cache (safe for concurrent inference).
type Layer interface {
	Forward(x []float64) []float64
	Apply(x []float64) []float64
	Backward(dy []float64) []float64
	Params() []*Param
}

// ---- Dense ----

// Dense is a fully-connected layer y = W x + b.
type Dense struct {
	In, Out int
	W, B    *Param
	x       []float64 // cached input
}

// NewDense creates a dense layer with Xavier/Glorot initialisation.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	scale := math.Sqrt(2.0 / float64(in+out))
	return &Dense{
		In: in, Out: out,
		W: NewParamInit(name+".W", in*out, func(int) float64 { return rng.NormFloat64() * scale }),
		B: NewParam(name+".b", out),
	}
}

// Forward computes W x + b, caching the input for Backward. The cache is an
// unaliased copy of x: callers are free to hand Forward a scratch-backed
// slice and recycle it immediately, and a later in-place activation can
// never corrupt the values Backward multiplies into the weight gradients.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(&ShapeError{Op: "dense " + d.W.Name + " input", Got: len(x), Want: d.In})
	}
	d.x = append(d.x[:0], x...)
	return d.Apply(x)
}

// Apply computes W x + b without caching; it only reads the weights, so it
// is safe for concurrent callers.
func (d *Dense) Apply(x []float64) []float64 {
	return d.ApplyTo(make([]float64, d.Out), x)
}

// ApplyTo computes W x + b into the caller-owned dst (len must be Out) and
// returns it. It allocates nothing and only reads the weights, so it is safe
// for concurrent callers each bringing their own dst. dst must not alias x.
func (d *Dense) ApplyTo(dst, x []float64) []float64 {
	if len(x) != d.In {
		panic(&ShapeError{Op: "dense " + d.W.Name + " input", Got: len(x), Want: d.In})
	}
	if len(dst) != d.Out {
		panic(&ShapeError{Op: "dense " + d.W.Name + " dst", Got: len(dst), Want: d.Out})
	}
	if d.Out > 0 && d.In > 0 && &dst[0] == &x[0] {
		panic(&ShapeError{Op: "dense " + d.W.Name + " dst aliases input", Got: d.Out, Want: d.In})
	}
	for o := 0; o < d.Out; o++ {
		row := d.W.W[o*d.In : (o+1)*d.In]
		s := d.B.W[o]
		for i, xv := range x {
			s += row[i] * xv
		}
		dst[o] = s
	}
	return dst
}

// Backward accumulates dW, db and returns dx.
func (d *Dense) Backward(dy []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		if g == 0 {
			// Audited fast path: skipping the row elides `d.B.G[o] += 0` and
			// a row of `+= 0` weight-gradient accumulations — bit-identical
			// to the slow path (x+0 == x for every float64 x, including
			// ±Inf and NaN accumulators). A NaN g never takes this branch
			// (NaN == 0 is false), so poisoned gradients still propagate
			// loudly instead of being silently dropped.
			continue
		}
		row := d.W.W[o*d.In : (o+1)*d.In]
		grow := d.W.G[o*d.In : (o+1)*d.In]
		d.B.G[o] += g
		for i := range row {
			grow[i] += g * d.x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params returns the layer's parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ---- Activations ----

// Tanh is an elementwise tanh layer.
type Tanh struct{ y []float64 }

// Forward applies tanh elementwise, caching the output for Backward.
func (t *Tanh) Forward(x []float64) []float64 {
	out := t.Apply(x)
	t.y = append(t.y[:0], out...)
	return out
}

// Apply applies tanh elementwise without caching (stateless).
func (t *Tanh) Apply(x []float64) []float64 {
	return t.ApplyTo(make([]float64, len(x)), x)
}

// ApplyTo applies tanh elementwise into dst (len must match x) and returns
// it. dst may alias x for an in-place squash; nothing is allocated.
func (t *Tanh) ApplyTo(dst, x []float64) []float64 {
	if len(dst) != len(x) {
		panic(&ShapeError{Op: "tanh dst", Got: len(dst), Want: len(x)})
	}
	for i, v := range x {
		dst[i] = math.Tanh(v)
	}
	return dst
}

// Backward multiplies by 1 - tanh^2.
func (t *Tanh) Backward(dy []float64) []float64 {
	dx := make([]float64, len(dy))
	for i, g := range dy {
		dx[i] = g * (1 - t.y[i]*t.y[i])
	}
	return dx
}

// Params returns nil (no parameters).
func (t *Tanh) Params() []*Param { return nil }

// ReLU is an elementwise rectifier layer.
type ReLU struct{ mask []bool }

// Forward applies max(0, x), caching the sign mask for Backward.
func (r *ReLU) Forward(x []float64) []float64 {
	r.mask = make([]bool, len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Apply applies max(0, x) without caching (stateless).
func (r *ReLU) Apply(x []float64) []float64 {
	return r.ApplyTo(make([]float64, len(x)), x)
}

// ApplyTo applies max(0, x) elementwise into dst (len must match x) and
// returns it. dst may alias x for an in-place rectification; nothing is
// allocated.
func (r *ReLU) ApplyTo(dst, x []float64) []float64 {
	if len(dst) != len(x) {
		panic(&ShapeError{Op: "relu dst", Got: len(dst), Want: len(x)})
	}
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
	return dst
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(dy []float64) []float64 {
	dx := make([]float64, len(dy))
	for i, g := range dy {
		if r.mask[i] {
			dx[i] = g
		}
	}
	return dx
}

// Params returns nil (no parameters).
func (r *ReLU) Params() []*Param { return nil }

// ---- MLP ----

// MLP is a sequential stack of layers.
type MLP struct{ Layers []Layer }

// NewMLP builds a tanh MLP with the given hidden sizes (the paper's default
// is hidden = [64, 64]).
func NewMLP(name string, in int, hidden []int, rng *rand.Rand) *MLP {
	m := &MLP{}
	prev := in
	for i, h := range hidden {
		m.Layers = append(m.Layers,
			NewDense(fmt.Sprintf("%s.fc%d", name, i), prev, h, rng),
			&Tanh{})
		prev = h
	}
	return m
}

// OutDim returns the width of the final layer.
func (m *MLP) OutDim() int {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if d, ok := m.Layers[i].(*Dense); ok {
			return d.Out
		}
	}
	return 0
}

// Forward runs the stack.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Apply runs the stack statelessly (read-only on every layer), so a trained
// MLP can serve concurrent inference callers.
func (m *MLP) Apply(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Apply(x)
	}
	return x
}

// Scratch is the caller-owned buffer pair MLP.ApplyScratch ping-pongs
// between. Size it once from the network with NewScratch (the buffers also
// grow on demand, so a Scratch survives a hot-reload to a wider model) and
// reuse it across calls — typically via a sync.Pool, one Scratch per
// in-flight request. A Scratch must not be shared by concurrent callers.
type Scratch struct {
	bufs [2][]float64
}

// NewScratch returns a Scratch pre-sized for every dense layer of m, so the
// first ApplyScratch call already allocates nothing.
func NewScratch(m *MLP) *Scratch {
	max := 0
	for _, l := range m.Layers {
		if d, ok := l.(*Dense); ok {
			if d.Out > max {
				max = d.Out
			}
			if d.In > max {
				max = d.In
			}
		}
	}
	s := &Scratch{}
	s.bufs[0] = make([]float64, max)
	s.bufs[1] = make([]float64, max)
	return s
}

// buf returns scratch buffer i resized to n, growing its backing array only
// when n exceeds the high-water mark.
func (s *Scratch) buf(i, n int) []float64 {
	if cap(s.bufs[i]) < n {
		s.bufs[i] = make([]float64, n)
	}
	return s.bufs[i][:n]
}

// owns reports whether v is backed by one of the scratch buffers.
func (s *Scratch) owns(v []float64) bool {
	if len(v) == 0 {
		return false
	}
	for i := range s.bufs {
		if len(s.bufs[i]) > 0 && &v[0] == &s.bufs[i][0] {
			return true
		}
	}
	return false
}

// ApplyScratch runs the stack like Apply but with zero heap allocations:
// dense layers write into the scratch's alternating buffers and activations
// squash in place. The result is bit-identical to Apply (same operation
// order) and remains valid only until the next ApplyScratch call on s; the
// caller's x is never written to. Layers other than Dense/Tanh/ReLU fall
// back to their allocating Apply.
func (m *MLP) ApplyScratch(s *Scratch, x []float64) []float64 {
	cur := x
	idx := 0
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *Dense:
			dst := s.buf(idx, t.Out)
			if len(cur) > 0 && len(dst) > 0 && &dst[0] == &cur[0] {
				idx ^= 1
				dst = s.buf(idx, t.Out)
			}
			cur = t.ApplyTo(dst, cur)
			idx ^= 1
		case *Tanh:
			cur = t.ApplyTo(s.inPlace(&idx, cur), cur)
		case *ReLU:
			cur = t.ApplyTo(s.inPlace(&idx, cur), cur)
		default:
			cur = l.Apply(cur)
		}
	}
	return cur
}

// inPlace returns a destination for an elementwise layer: cur itself when it
// already lives in scratch, otherwise a scratch copy target — so the
// caller's input slice is never mutated.
func (s *Scratch) inPlace(idx *int, cur []float64) []float64 {
	if s.owns(cur) {
		return cur
	}
	dst := s.buf(*idx, len(cur))
	*idx ^= 1
	return dst
}

// Backward runs the stack in reverse.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all parameters of the stack.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ---- Optimizer ----

// Adam is the Adam optimizer with the usual defaults.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
}

// NewAdam returns Adam with lr and standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter from its accumulated gradient,
// then clears the gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.m == nil {
			p.m = make([]float64, len(p.W))
			p.v = make([]float64, len(p.W))
		}
		for i, g := range p.G {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mh := p.m[i] / c1
			vh := p.v[i] / c2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.G[i] = 0
		}
	}
}

// ClipGrads scales all gradients so their global L2 norm is at most maxNorm.
// Returns the pre-clip norm.
//
// Audited edge cases: a zero gradient vector is left untouched (norm > 0
// guard, no 0/0), a NaN norm never scales (NaN comparisons are false, so a
// poisoned batch stays loudly poisoned rather than being rescaled into
// plausible-looking numbers), and maxNorm <= 0 clips everything to zero
// scale only when the norm is positive — i.e. it hard-zeroes gradients, it
// never divides by zero.
func ClipGrads(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm < 0 {
		// A negative budget would flip every gradient's sign through the
		// maxNorm/norm scale; treat it as "no gradient allowed" instead.
		maxNorm = 0
	}
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= s
			}
		}
	}
	return norm
}

// ---- Distributions ----

// Softmax returns the softmax of logits (numerically stable). Degenerate
// inputs — empty logits, all -Inf, or NaN poisoning — yield an empty or
// uniform distribution instead of NaN; see SoftmaxTo.
func Softmax(logits []float64) []float64 {
	return SoftmaxTo(make([]float64, len(logits)), logits)
}

// SoftmaxTo computes the softmax of logits into the caller-owned dst (len
// must match) and returns it; nothing is allocated and dst may alias logits.
//
// Degenerate inputs are defused instead of propagated: empty logits yield an
// empty distribution, and logits with no finite maximum (all -Inf, as a
// fully-masked action head produces) or a NaN-poisoned sum yield the uniform
// distribution. The historical behavior divided by a zero sum and handed
// NaN probabilities to action sampling, which silently biased
// SampleCategorical to the last action.
func SoftmaxTo(dst, logits []float64) []float64 {
	if len(dst) != len(logits) {
		panic(&ShapeError{Op: "softmax dst", Got: len(dst), Want: len(logits)})
	}
	if len(logits) == 0 {
		return dst
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	if math.IsInf(maxv, -1) {
		return fillUniform(dst)
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	// sum >= exp(0) = 1 whenever every logit is a number; anything else
	// (a NaN slipped past the max scan) must not become a division by zero.
	if !(sum > 0) {
		return fillUniform(dst)
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// fillUniform writes the uniform distribution over len(dst) outcomes.
func fillUniform(dst []float64) []float64 {
	u := 1 / float64(len(dst))
	for i := range dst {
		dst[i] = u
	}
	return dst
}

// LogSoftmax returns log(softmax(logits)), with the same degenerate-input
// guarantees as Softmax (uniform log-probabilities instead of NaN).
func LogSoftmax(logits []float64) []float64 {
	return LogSoftmaxTo(make([]float64, len(logits)), logits)
}

// LogSoftmaxTo computes log(softmax(logits)) into the caller-owned dst (len
// must match) and returns it; nothing is allocated and dst may alias logits.
// Degenerate inputs (empty, all -Inf, NaN-poisoned) yield the uniform
// log-distribution -log(n) instead of NaN.
func LogSoftmaxTo(dst, logits []float64) []float64 {
	if len(dst) != len(logits) {
		panic(&ShapeError{Op: "logsoftmax dst", Got: len(dst), Want: len(logits)})
	}
	if len(logits) == 0 {
		return dst
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	if !math.IsInf(maxv, -1) {
		for _, v := range logits {
			sum += math.Exp(v - maxv)
		}
	}
	if math.IsInf(maxv, -1) || !(sum > 0) {
		lu := -math.Log(float64(len(dst)))
		for i := range dst {
			dst[i] = lu
		}
		return dst
	}
	lse := maxv + math.Log(sum)
	for i, v := range logits {
		dst[i] = v - lse
	}
	return dst
}

// SampleCategorical draws an index from the probability vector.
func SampleCategorical(probs []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the largest element.
func Argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// CategoricalEntropy returns -sum p log p.
func CategoricalEntropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 1e-12 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// GaussianLogProb returns log N(a; mean, exp(logStd)^2).
func GaussianLogProb(a, mean, logStd float64) float64 {
	std := math.Exp(logStd)
	z := (a - mean) / std
	return -0.5*z*z - logStd - 0.5*math.Log(2*math.Pi)
}

// GaussianEntropy returns the differential entropy of N(., exp(logStd)^2).
func GaussianEntropy(logStd float64) float64 {
	return logStd + 0.5*math.Log(2*math.Pi*math.E)
}
