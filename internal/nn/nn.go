// Package nn is a small, dependency-free neural-network library sufficient
// for the paper's models: fully-connected policy/value networks (the 64x64
// FCNN and the wider variants of the hyperparameter sweep), the code2vec
// attention encoder, categorical and Gaussian action heads, and the Adam
// optimizer. Everything is float64 and single-threaded; forward passes cache
// activations for the matching backward pass, so a network instance must not
// be shared between concurrent callers of Forward/Backward.
//
// For inference-only use, every layer also provides Apply: the same
// computation as Forward but without caching. Apply only reads parameter
// weights, so any number of goroutines may call it on a shared network as
// long as no concurrent training step mutates the weights.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a learnable tensor with its gradient accumulator and Adam state.
type Param struct {
	Name string
	W    []float64 // weights (row-major for matrices)
	G    []float64 // gradient accumulator
	m, v []float64 // Adam moments
}

// NewParam allocates a zero parameter of n elements.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float64, n), G: make([]float64, n)}
}

// NewParamInit allocates a parameter initialised by fn(i).
func NewParamInit(name string, n int, fn func(i int) float64) *Param {
	p := NewParam(name, n)
	for i := range p.W {
		p.W[i] = fn(i)
	}
	return p
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Len returns the number of elements.
func (p *Param) Len() int { return len(p.W) }

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs; Backward accumulates parameter gradients and returns the
// gradient with respect to its input. Apply computes the same function as
// Forward without touching the cache (safe for concurrent inference).
type Layer interface {
	Forward(x []float64) []float64
	Apply(x []float64) []float64
	Backward(dy []float64) []float64
	Params() []*Param
}

// ---- Dense ----

// Dense is a fully-connected layer y = W x + b.
type Dense struct {
	In, Out int
	W, B    *Param
	x       []float64 // cached input
}

// NewDense creates a dense layer with Xavier/Glorot initialisation.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	scale := math.Sqrt(2.0 / float64(in+out))
	return &Dense{
		In: in, Out: out,
		W: NewParamInit(name+".W", in*out, func(int) float64 { return rng.NormFloat64() * scale }),
		B: NewParam(name+".b", out),
	}
}

// Forward computes W x + b, caching the input for Backward.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense %s: input %d, want %d", d.W.Name, len(x), d.In))
	}
	d.x = append(d.x[:0], x...)
	return d.Apply(x)
}

// Apply computes W x + b without caching; it only reads the weights, so it
// is safe for concurrent callers.
func (d *Dense) Apply(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense %s: input %d, want %d", d.W.Name, len(x), d.In))
	}
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W.W[o*d.In : (o+1)*d.In]
		s := d.B.W[o]
		for i, xv := range x {
			s += row[i] * xv
		}
		y[o] = s
	}
	return y
}

// Backward accumulates dW, db and returns dx.
func (d *Dense) Backward(dy []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		row := d.W.W[o*d.In : (o+1)*d.In]
		grow := d.W.G[o*d.In : (o+1)*d.In]
		d.B.G[o] += g
		for i := range row {
			grow[i] += g * d.x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params returns the layer's parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ---- Activations ----

// Tanh is an elementwise tanh layer.
type Tanh struct{ y []float64 }

// Forward applies tanh elementwise, caching the output for Backward.
func (t *Tanh) Forward(x []float64) []float64 {
	out := t.Apply(x)
	t.y = append(t.y[:0], out...)
	return out
}

// Apply applies tanh elementwise without caching (stateless).
func (t *Tanh) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Tanh(v)
	}
	return out
}

// Backward multiplies by 1 - tanh^2.
func (t *Tanh) Backward(dy []float64) []float64 {
	dx := make([]float64, len(dy))
	for i, g := range dy {
		dx[i] = g * (1 - t.y[i]*t.y[i])
	}
	return dx
}

// Params returns nil (no parameters).
func (t *Tanh) Params() []*Param { return nil }

// ReLU is an elementwise rectifier layer.
type ReLU struct{ mask []bool }

// Forward applies max(0, x), caching the sign mask for Backward.
func (r *ReLU) Forward(x []float64) []float64 {
	r.mask = make([]bool, len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Apply applies max(0, x) without caching (stateless).
func (r *ReLU) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(dy []float64) []float64 {
	dx := make([]float64, len(dy))
	for i, g := range dy {
		if r.mask[i] {
			dx[i] = g
		}
	}
	return dx
}

// Params returns nil (no parameters).
func (r *ReLU) Params() []*Param { return nil }

// ---- MLP ----

// MLP is a sequential stack of layers.
type MLP struct{ Layers []Layer }

// NewMLP builds a tanh MLP with the given hidden sizes (the paper's default
// is hidden = [64, 64]).
func NewMLP(name string, in int, hidden []int, rng *rand.Rand) *MLP {
	m := &MLP{}
	prev := in
	for i, h := range hidden {
		m.Layers = append(m.Layers,
			NewDense(fmt.Sprintf("%s.fc%d", name, i), prev, h, rng),
			&Tanh{})
		prev = h
	}
	return m
}

// OutDim returns the width of the final layer.
func (m *MLP) OutDim() int {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if d, ok := m.Layers[i].(*Dense); ok {
			return d.Out
		}
	}
	return 0
}

// Forward runs the stack.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Apply runs the stack statelessly (read-only on every layer), so a trained
// MLP can serve concurrent inference callers.
func (m *MLP) Apply(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Apply(x)
	}
	return x
}

// Backward runs the stack in reverse.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all parameters of the stack.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ---- Optimizer ----

// Adam is the Adam optimizer with the usual defaults.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
}

// NewAdam returns Adam with lr and standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter from its accumulated gradient,
// then clears the gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.m == nil {
			p.m = make([]float64, len(p.W))
			p.v = make([]float64, len(p.W))
		}
		for i, g := range p.G {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mh := p.m[i] / c1
			vh := p.v[i] / c2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.G[i] = 0
		}
	}
}

// ClipGrads scales all gradients so their global L2 norm is at most maxNorm.
// Returns the pre-clip norm.
func ClipGrads(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= s
			}
		}
	}
	return norm
}

// ---- Distributions ----

// Softmax returns the softmax of logits (numerically stable).
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogSoftmax returns log(softmax(logits)).
func LogSoftmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(v - maxv)
	}
	lse := maxv + math.Log(sum)
	for i, v := range logits {
		out[i] = v - lse
	}
	return out
}

// SampleCategorical draws an index from the probability vector.
func SampleCategorical(probs []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the largest element.
func Argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// CategoricalEntropy returns -sum p log p.
func CategoricalEntropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 1e-12 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// GaussianLogProb returns log N(a; mean, exp(logStd)^2).
func GaussianLogProb(a, mean, logStd float64) float64 {
	std := math.Exp(logStd)
	z := (a - mean) / std
	return -0.5*z*z - logStd - 0.5*math.Log(2*math.Pi)
}

// GaussianEntropy returns the differential entropy of N(., exp(logStd)^2).
func GaussianEntropy(logStd float64) float64 {
	return logStd + 0.5*math.Log(2*math.Pi*math.E)
}
