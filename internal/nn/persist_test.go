package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP("net", 4, []int{8, 8}, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP("net", 4, []int{8, 8}, rand.New(rand.NewSource(99)))
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, 0.4}
	y1, y2 := m.Forward(x), m2.Forward(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("restored network differs at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestSaveRejectsDuplicateNames(t *testing.T) {
	params := []*Param{NewParam("w", 2), NewParam("w", 3)}
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestLoadRejectsMissingParam(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Param{NewParam("a", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, []*Param{NewParam("a", 2), NewParam("b", 2)}); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestLoadRejectsUnknownParam(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Param{NewParam("a", 2), NewParam("b", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, []*Param{NewParam("a", 2)}); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
}

func TestLoadRejectsLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Param{NewParam("a", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, []*Param{NewParam("a", 3)}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}
