package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-wire format: parameter name -> weights.
type snapshot struct {
	Weights map[string][]float64
}

// SaveParams serialises the parameters' weights (not optimizer state) to w.
// Parameter names must be unique within the set.
func SaveParams(w io.Writer, params []*Param) error {
	return EncodeParams(gob.NewEncoder(w), params)
}

// EncodeParams writes the weights through an existing gob encoder, so a
// caller can put configuration and weights in one gob stream (mixing
// multiple encoders over one unbuffered reader corrupts decoding).
func EncodeParams(enc *gob.Encoder, params []*Param) error {
	s := snapshot{Weights: make(map[string][]float64, len(params))}
	for _, p := range params {
		if _, dup := s.Weights[p.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		s.Weights[p.Name] = p.W
	}
	return enc.Encode(s)
}

// LoadParams restores weights into params by name. Every parameter must be
// present in the stream with a matching length; extra stream entries are an
// error too, so a config mismatch is caught loudly rather than silently
// producing a half-initialised model.
func LoadParams(r io.Reader, params []*Param) error {
	return DecodeParams(gob.NewDecoder(r), params)
}

// DecodeParams reads weights through an existing gob decoder; see
// EncodeParams.
func DecodeParams(dec *gob.Decoder, params []*Param) error {
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		w, ok := s.Weights[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if len(w) != len(p.W) {
			return fmt.Errorf("nn: parameter %q has %d weights, snapshot has %d", p.Name, len(p.W), len(w))
		}
		copy(p.W, w)
		seen[p.Name] = true
	}
	for name := range s.Weights {
		if !seen[name] {
			return fmt.Errorf("nn: snapshot contains unknown parameter %q", name)
		}
	}
	return nil
}
