package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// paramBlob is one parameter's weights on the wire. Snapshots are encoded as
// a name-sorted slice rather than a map because gob serialises maps in
// runtime iteration order: a slice makes the encoded bytes a pure function
// of the weights, which is what lets training checkpoints be byte-compared
// across runs and worker counts.
type paramBlob struct {
	Name string
	W    []float64
}

// snapshot is the on-wire format: parameter blobs sorted by name.
type snapshot struct {
	Params []paramBlob
}

// SaveParams serialises the parameters' weights (not optimizer state) to w.
// Parameter names must be unique within the set. The output bytes are
// deterministic for a given weight set.
func SaveParams(w io.Writer, params []*Param) error {
	return EncodeParams(gob.NewEncoder(w), params)
}

// EncodeParams writes the weights through an existing gob encoder, so a
// caller can put configuration and weights in one gob stream (mixing
// multiple encoders over one unbuffered reader corrupts decoding).
func EncodeParams(enc *gob.Encoder, params []*Param) error {
	s := snapshot{Params: make([]paramBlob, 0, len(params))}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		s.Params = append(s.Params, paramBlob{Name: p.Name, W: p.W})
	}
	sort.Slice(s.Params, func(i, j int) bool { return s.Params[i].Name < s.Params[j].Name })
	return enc.Encode(s)
}

// LoadParams restores weights into params by name. Every parameter must be
// present in the stream with a matching length; extra stream entries are an
// error too, so a config mismatch is caught loudly rather than silently
// producing a half-initialised model.
func LoadParams(r io.Reader, params []*Param) error {
	return DecodeParams(gob.NewDecoder(r), params)
}

// DecodeParams reads weights through an existing gob decoder; see
// EncodeParams.
func DecodeParams(dec *gob.Decoder, params []*Param) error {
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	if len(s.Params) == 0 && len(params) > 0 {
		// gob drops fields the current struct no longer declares, so a
		// snapshot written in the old map-based wire format decodes as
		// empty. Name the real cause instead of a misleading
		// missing-parameter error.
		return fmt.Errorf("nn: snapshot has no parameters (written in an unsupported pre-deterministic format? re-save with `neurovec train -out`)")
	}
	byName := make(map[string][]float64, len(s.Params))
	for _, b := range s.Params {
		byName[b.Name] = b.W
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		w, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if len(w) != len(p.W) {
			return fmt.Errorf("nn: parameter %q has %d weights, snapshot has %d", p.Name, len(p.W), len(w))
		}
		copy(p.W, w)
		seen[p.Name] = true
	}
	for _, b := range s.Params {
		if !seen[b.Name] {
			return fmt.Errorf("nn: snapshot contains unknown parameter %q", b.Name)
		}
	}
	return nil
}

// momentBlob is one parameter's Adam moments on the wire.
type momentBlob struct {
	Name string
	M, V []float64
}

// adamState is the optimizer section of a training checkpoint: the step
// counter plus per-parameter first/second moments, name-sorted for
// deterministic encoding.
type adamState struct {
	T       int
	Moments []momentBlob
}

// EncodeAdamState writes the optimizer's step counter and every parameter's
// Adam moments through enc, so a training checkpoint can resume mid-run with
// bit-identical updates. Parameters that have never been stepped contribute
// zero moments.
func EncodeAdamState(enc *gob.Encoder, opt *Adam, params []*Param) error {
	s := adamState{T: opt.t, Moments: make([]momentBlob, 0, len(params))}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		m, v := p.m, p.v
		if m == nil {
			m = make([]float64, len(p.W))
			v = make([]float64, len(p.W))
		}
		s.Moments = append(s.Moments, momentBlob{Name: p.Name, M: m, V: v})
	}
	sort.Slice(s.Moments, func(i, j int) bool { return s.Moments[i].Name < s.Moments[j].Name })
	return enc.Encode(s)
}

// DecodeAdamState restores a counterpart of EncodeAdamState into opt and
// params. Like DecodeParams it is strict: every parameter must be present
// with matching lengths and unknown entries are an error.
func DecodeAdamState(dec *gob.Decoder, opt *Adam, params []*Param) error {
	var s adamState
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("nn: decode adam state: %w", err)
	}
	byName := make(map[string]momentBlob, len(s.Moments))
	for _, b := range s.Moments {
		byName[b.Name] = b
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		b, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: adam state missing parameter %q", p.Name)
		}
		if len(b.M) != len(p.W) || len(b.V) != len(p.W) {
			return fmt.Errorf("nn: adam moments for %q have %d/%d entries, want %d", p.Name, len(b.M), len(b.V), len(p.W))
		}
		p.m = append([]float64(nil), b.M...)
		p.v = append([]float64(nil), b.V...)
		seen[p.Name] = true
	}
	for _, b := range s.Moments {
		if !seen[b.Name] {
			return fmt.Errorf("nn: adam state contains unknown parameter %q", b.Name)
		}
	}
	opt.t = s.T
	return nil
}
