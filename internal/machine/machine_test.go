package machine

import (
	"testing"
	"testing/quick"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
)

func TestActionSpaceIs35Combinations(t *testing.T) {
	a := IntelAVX2()
	vfs, ifs := a.VFs(), a.IFs()
	if len(vfs) != 7 {
		t.Errorf("VFs = %v, want 7 values 1..64", vfs)
	}
	if len(ifs) != 5 {
		t.Errorf("IFs = %v, want 5 values 1..16", ifs)
	}
	if len(vfs)*len(ifs) != 35 {
		t.Errorf("combinations = %d, want 35 (paper Figure 1)", len(vfs)*len(ifs))
	}
	if vfs[0] != 1 || vfs[len(vfs)-1] != 64 {
		t.Errorf("VF range = %v", vfs)
	}
	if ifs[0] != 1 || ifs[len(ifs)-1] != 16 {
		t.Errorf("IF range = %v", ifs)
	}
}

func TestRegsPerVector(t *testing.T) {
	a := IntelAVX2()
	cases := []struct {
		vf   int
		tpe  lang.ScalarType
		want int
	}{
		{8, lang.TypeInt, 1},    // 256 bits exactly
		{4, lang.TypeInt, 1},    // half a register still costs one
		{16, lang.TypeInt, 2},   // 512 bits -> 2 registers
		{64, lang.TypeInt, 8},   // widening by 8
		{64, lang.TypeChar, 2},  // 512 bits of bytes
		{4, lang.TypeDouble, 1}, // 256 bits
		{64, lang.TypeDouble, 16},
		{1, lang.TypeChar, 1},
	}
	for _, c := range cases {
		if got := a.RegsPerVector(c.vf, c.tpe); got != c.want {
			t.Errorf("RegsPerVector(%d, %s) = %d, want %d", c.vf, c.tpe, got, c.want)
		}
	}
}

func TestRegsPerVectorMonotoneProperty(t *testing.T) {
	a := IntelAVX2()
	types := []lang.ScalarType{lang.TypeChar, lang.TypeShort, lang.TypeInt, lang.TypeLong, lang.TypeFloat, lang.TypeDouble}
	f := func(v uint8, ti uint8) bool {
		vf := 1 << (v % 7)
		tp := types[int(ti)%len(types)]
		r1 := a.RegsPerVector(vf, tp)
		r2 := a.RegsPerVector(vf*2, tp)
		return r1 >= 1 && r2 >= r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyTablesSane(t *testing.T) {
	// Floating add slower than integer add; div slowest of all.
	if machine := OpLatency(ir.OpAdd, lang.TypeFloat); machine <= OpLatency(ir.OpAdd, lang.TypeInt) {
		t.Error("float add should have higher latency than int add")
	}
	for _, tp := range []lang.ScalarType{lang.TypeInt, lang.TypeFloat} {
		if OpLatency(ir.OpDiv, tp) <= OpLatency(ir.OpMul, tp) {
			t.Errorf("div latency should exceed mul for %s", tp)
		}
	}
	// Every op has positive latency and throughput.
	for op := ir.OpAdd; op <= ir.OpCall; op++ {
		if OpLatency(op, lang.TypeInt) <= 0 {
			t.Errorf("latency(%s) <= 0", op)
		}
		if OpThroughput(op, lang.TypeInt) <= 0 {
			t.Errorf("throughput(%s) <= 0", op)
		}
	}
}

func TestLanesPerLine(t *testing.T) {
	a := IntelAVX2()
	if got := a.LanesPerLine(lang.TypeInt); got != 16 {
		t.Errorf("int lanes per 64B line = %d, want 16", got)
	}
	if got := a.LanesPerLine(lang.TypeDouble); got != 8 {
		t.Errorf("double lanes per line = %d, want 8", got)
	}
}

func TestCacheHierarchyOrdered(t *testing.T) {
	a := IntelAVX2()
	if !(a.L1Bytes < a.L2Bytes && a.L2Bytes < a.L3Bytes) {
		t.Error("cache sizes not increasing")
	}
	if !(a.L1Lat < a.L2Lat && a.L2Lat < a.L3Lat && a.L3Lat < a.MemLat) {
		t.Error("cache latencies not increasing")
	}
}
