// Package machine describes the target architecture the simulator models and
// the vectorization decision space it induces.
//
// The default model is an AVX2-class Intel core resembling the i7-8559U used
// in the paper: 256-bit vectors, 4-wide issue, two load ports and one store
// port, 16 vector registers, and a three-level cache hierarchy. The
// vectorization factor and interleaving factor spaces are powers of two up to
// MAX_VF=64 and MAX_IF=16, giving the 7x5 = 35 combinations visible in the
// paper's Figure 1.
package machine

import (
	"neurovec/internal/ir"
	"neurovec/internal/lang"
)

// Arch describes a target microarchitecture.
type Arch struct {
	Name string

	// VectorBits is the physical SIMD register width.
	VectorBits int
	// PreferredBits is the vector width the baseline cost model assumes.
	// LLVM's default cost model is famously conservative and often reasons
	// about 128-bit vectors even on wider machines; this conservatism is one
	// of the structural reasons the learned policy beats it.
	PreferredBits int

	// MaxVF and MaxIF bound the pragma decision space (powers of two).
	MaxVF int
	MaxIF int

	// Core parameters.
	IssueWidth int // uops issued per cycle
	LoadPorts  int
	StorePorts int
	VecRegs    int // architectural vector registers

	// Cache hierarchy.
	LineBytes int64
	L1Bytes   int64
	L2Bytes   int64
	L3Bytes   int64
	// Per-line access latencies in cycles.
	L1Lat  float64
	L2Lat  float64
	L3Lat  float64
	MemLat float64
	// Sustained streaming bandwidth from DRAM, bytes per cycle.
	StreamBytesPerCycle float64

	// GatherLaneCost is the per-lane cost (in uops) of a strided or
	// non-affine vector memory access, modelling gather/scatter or
	// scalarized element insertion.
	GatherLaneCost float64

	// BranchMissCycles is the penalty of a mispredicted branch; scalar loops
	// with data-dependent if bodies pay a fraction of this per iteration.
	BranchMissCycles float64

	// FreqGHz converts cycles to seconds for reporting.
	FreqGHz float64
}

// IntelAVX2 returns the default architecture model: an AVX2-class core tuned
// to resemble the 2.7 GHz i7-8559U with 2133 MHz LPDDR3 from the paper's
// evaluation setup.
func IntelAVX2() *Arch {
	return &Arch{
		Name:                "intel-avx2",
		VectorBits:          256,
		PreferredBits:       128,
		MaxVF:               64,
		MaxIF:               16,
		IssueWidth:          4,
		LoadPorts:           2,
		StorePorts:          1,
		VecRegs:             16,
		LineBytes:           64,
		L1Bytes:             32 << 10,
		L2Bytes:             256 << 10,
		L3Bytes:             8 << 20,
		L1Lat:               0.5,
		L2Lat:               4,
		L3Lat:               12,
		MemLat:              42,
		StreamBytesPerCycle: 8,
		GatherLaneCost:      0.9,
		BranchMissCycles:    14,
		FreqGHz:             2.7,
	}
}

// VFs returns the vectorization-factor action space: powers of two from 1 to
// MaxVF inclusive.
func (a *Arch) VFs() []int { return powersOfTwo(a.MaxVF) }

// IFs returns the interleaving-factor action space: powers of two from 1 to
// MaxIF inclusive.
func (a *Arch) IFs() []int { return powersOfTwo(a.MaxIF) }

func powersOfTwo(max int) []int {
	var out []int
	for v := 1; v <= max; v *= 2 {
		out = append(out, v)
	}
	return out
}

// RegsPerVector returns how many physical vector registers one logical
// vector of VF elements of type t occupies (the widening/legalization
// factor). VF=8 of int32 on a 256-bit machine is exactly one register;
// VF=64 of int32 is eight.
func (a *Arch) RegsPerVector(vf int, t lang.ScalarType) int {
	bits := vf * t.Bits()
	n := (bits + a.VectorBits - 1) / a.VectorBits
	if n < 1 {
		n = 1
	}
	return n
}

// LanesPerLine returns how many elements of type t fit in one cache line.
func (a *Arch) LanesPerLine(t lang.ScalarType) int64 {
	n := a.LineBytes / int64(t.Size())
	if n < 1 {
		n = 1
	}
	return n
}

// OpLatency returns the dependent-use latency in cycles for an operation on
// the given element type. Values follow Agner-Fog-style tables for a Skylake
// class core, coarsened.
func OpLatency(op ir.Op, t lang.ScalarType) float64 {
	fl := t.IsFloat()
	switch op {
	case ir.OpAdd, ir.OpSub:
		if fl {
			return 4
		}
		return 1
	case ir.OpMul:
		if fl {
			return 4
		}
		return 5 // integer vector multiply is slow
	case ir.OpDiv:
		if fl {
			return 14
		}
		return 24
	case ir.OpRem:
		return 26
	case ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpNeg:
		return 1
	case ir.OpCmp:
		return 1
	case ir.OpSelect:
		return 1
	case ir.OpConvert:
		return 3
	case ir.OpMin, ir.OpMax:
		if fl {
			return 4
		}
		return 1
	case ir.OpAbs:
		return 1
	case ir.OpCopy:
		return 0.5
	case ir.OpCall:
		return 30
	}
	return 1
}

// OpThroughput returns the reciprocal throughput in uops per vector register
// of work (1 = one uop per physical vector op).
func OpThroughput(op ir.Op, t lang.ScalarType) float64 {
	fl := t.IsFloat()
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot,
		ir.OpNeg, ir.OpCmp, ir.OpSelect, ir.OpMin, ir.OpMax, ir.OpAbs:
		return 1
	case ir.OpMul:
		if fl {
			return 1
		}
		return 1.5
	case ir.OpDiv:
		if fl {
			return 8
		}
		return 16
	case ir.OpRem:
		return 18
	case ir.OpShl, ir.OpShr:
		return 1
	case ir.OpConvert:
		return 1.5
	case ir.OpCopy:
		return 0.35
	case ir.OpCall:
		return 30
	}
	return 1
}
