package service

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "3" {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("a", []byte("2"))
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Fatalf("got %q, want refreshed value", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a value")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%40)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("key %s holds %q", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}

func TestBatcherCoalesces(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	release := make(chan struct{})
	first := make(chan struct{})
	b := newBatcher(8, time.Millisecond, func(batch []*embedJob) {
		mu.Lock()
		sizes = append(sizes, len(batch))
		firstBatch := len(sizes) == 1
		mu.Unlock()
		if firstBatch {
			close(first)
			<-release // hold the collector so later jobs pile up
		}
		for _, j := range batch {
			close(j.done)
		}
	})
	defer b.close()

	j0 := &embedJob{done: make(chan struct{})}
	if err := b.enqueue(j0); err != nil {
		t.Fatal(err)
	}
	<-first
	// While the collector is blocked, queue five more; they must come out as
	// one coalesced batch.
	jobs := make([]*embedJob, 5)
	for i := range jobs {
		jobs[i] = &embedJob{done: make(chan struct{})}
		if err := b.enqueue(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	for _, j := range jobs {
		<-j.done
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 5 {
		t.Fatalf("batch sizes %v, want [1 5]", sizes)
	}
}
