package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"neurovec/internal/core"
)

// smallCore mirrors the fixture's embedding sizes so service-side training
// jobs stay fast in tests.
func smallCore() *core.Config {
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 48
	cfg.Embed.EmbedDim = 12
	cfg.Embed.MaxContexts = 40
	return &cfg
}

func trainTestServer(t *testing.T) *Server {
	t.Helper()
	testFixture(t)
	return newTestServer(t, Config{
		ModelPath: servingPath(t),
		Core:      smallCore(),
		TrainDir:  t.TempDir(),
	})
}

// startJob posts a training request and returns the job id.
func startJob(t *testing.T, s *Server, req TrainRequest) string {
	t.Helper()
	rec, body := do(t, s, http.MethodPost, "/v1/train", req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/train = %d: %s", rec.Code, body)
	}
	var resp TrainStartResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" || resp.State != "running" {
		t.Fatalf("unexpected start response: %+v", resp)
	}
	return resp.ID
}

// waitJob polls the status endpoint until the job leaves "running".
func waitJob(t *testing.T, s *Server, id string) *TrainStatusResponse {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		rec, body := do(t, s, http.MethodGet, "/v1/train/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/train/%s = %d: %s", id, rec.Code, body)
		}
		var st TrainStatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return &st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %+v", id, st)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestTrainJobLifecycle pins the async-training acceptance criterion:
// POST /v1/train returns a job id, the status reports learning curves, and
// the completed job's model hot-swaps into serving without a restart.
func TestTrainJobLifecycle(t *testing.T) {
	s := trainTestServer(t)
	before := s.ModelVersion()

	id := startJob(t, s, TrainRequest{
		Corpus:     "generated",
		N:          2,
		Seed:       5,
		Iterations: 2,
		Batch:      16,
		EvalEvery:  2,
	})
	st := waitJob(t, s, id)
	if st.State != "succeeded" {
		t.Fatalf("job state %q (error %q), want succeeded", st.State, st.Error)
	}
	if st.IterationsDone != 2 || st.IterationsTotal != 2 {
		t.Errorf("iterations %d/%d, want 2/2", st.IterationsDone, st.IterationsTotal)
	}
	if len(st.RewardMean) != 2 || len(st.Loss) != 2 {
		t.Errorf("training curves have %d/%d points, want 2/2", len(st.RewardMean), len(st.Loss))
	}
	if len(st.Curve) != 1 || st.Curve[0].Iteration != 2 || st.Curve[0].MeanSpeedup <= 0 {
		t.Errorf("learning curve %+v, want one sane point at iteration 2", st.Curve)
	}
	if st.ModelVersion == "" || st.ModelVersion == before {
		t.Errorf("job model version %q should differ from serving version %q", st.ModelVersion, before)
	}
	if st.Units <= 0 {
		t.Errorf("job reports %d units", st.Units)
	}

	// Promote into serving via the reload path: no restart, version swaps.
	rec, body := do(t, s, http.MethodPost, "/v1/train/"+id+"/promote", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote = %d: %s", rec.Code, body)
	}
	var rel ReloadResponse
	if err := json.Unmarshal(body, &rel); err != nil {
		t.Fatal(err)
	}
	if rel.PreviousVersion != before || rel.ModelVersion != st.ModelVersion {
		t.Errorf("promote swapped %q -> %q, want %q -> %q", rel.PreviousVersion, rel.ModelVersion, before, st.ModelVersion)
	}
	if got := s.ModelVersion(); got != st.ModelVersion {
		t.Errorf("serving version %q after promote, want %q", got, st.ModelVersion)
	}

	// A plain reload now re-reads the promoted checkpoint.
	if _, cur, err := s.Reload(); err != nil || cur != st.ModelVersion {
		t.Errorf("reload after promote: version %q err %v", cur, err)
	}

	// The job listing includes the finished job, marked promoted.
	rec, body = do(t, s, http.MethodGet, "/v1/train", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/train = %d", rec.Code)
	}
	var list TrainListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != id || !list.Jobs[0].Promoted {
		t.Errorf("job listing %+v, want the promoted job", list.Jobs)
	}
}

// TestTrainJobAdmissionAndCancel: one job at a time, a concurrent POST is a
// 409, and cancel stops a running job at an iteration boundary.
func TestTrainJobAdmissionAndCancel(t *testing.T) {
	s := trainTestServer(t)
	id := startJob(t, s, TrainRequest{N: 2, Iterations: 50, Batch: 200})

	rec, body := do(t, s, http.MethodPost, "/v1/train", TrainRequest{N: 2})
	if rec.Code != http.StatusConflict {
		t.Fatalf("concurrent POST /v1/train = %d (%s), want 409", rec.Code, body)
	}

	rec, _ = do(t, s, http.MethodPost, "/v1/train/"+id+"/cancel", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", rec.Code)
	}
	st := waitJob(t, s, id)
	if st.State != "canceled" {
		t.Fatalf("job state %q after cancel, want canceled", st.State)
	}
	if st.IterationsDone >= 50 {
		t.Errorf("job ran to completion (%d iterations) despite cancel", st.IterationsDone)
	}

	// A canceled job cannot be promoted; a finished job cannot be canceled.
	if rec, _ := do(t, s, http.MethodPost, "/v1/train/"+id+"/promote", nil); rec.Code != http.StatusConflict {
		t.Errorf("promote canceled job = %d, want 409", rec.Code)
	}
	if rec, _ := do(t, s, http.MethodPost, "/v1/train/"+id+"/cancel", nil); rec.Code != http.StatusConflict {
		t.Errorf("cancel finished job = %d, want 409", rec.Code)
	}

	// The slot frees up for the next job.
	id2 := startJob(t, s, TrainRequest{N: 2, Iterations: 1, Batch: 8})
	if st := waitJob(t, s, id2); st.State != "succeeded" {
		t.Errorf("follow-up job state %q (error %q)", st.State, st.Error)
	}
}

// TestTrainJobValidation covers request caps and unknown-job errors.
func TestTrainJobValidation(t *testing.T) {
	s := trainTestServer(t)
	cases := []struct {
		req  TrainRequest
		want int
	}{
		{TrainRequest{Iterations: maxTrainIterationsCap + 1}, http.StatusBadRequest},
		{TrainRequest{N: maxEvalCorpus + 1}, http.StatusBadRequest},
		{TrainRequest{Batch: maxTrainBatch + 1}, http.StatusBadRequest},
		{TrainRequest{EvalEvery: -1}, http.StatusBadRequest},
		{TrainRequest{Corpus: "nope"}, http.StatusAccepted}, // fails async
	}
	for i, c := range cases {
		rec, body := do(t, s, http.MethodPost, "/v1/train", c.req)
		if rec.Code != c.want {
			t.Errorf("case %d: status %d (%s), want %d", i, rec.Code, body, c.want)
		}
		if rec.Code == http.StatusAccepted {
			var resp TrainStartResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			st := waitJob(t, s, resp.ID)
			if st.State != "failed" || st.Error == "" {
				t.Errorf("case %d: bad-corpus job state %q error %q, want failed", i, st.State, st.Error)
			}
		}
	}
	for _, path := range []string{"/v1/train/nope", "/v1/train/nope/cancel", "/v1/train/nope/promote"} {
		method := http.MethodPost
		if path == "/v1/train/nope" {
			method = http.MethodGet
		}
		if rec, _ := do(t, s, method, path, nil); rec.Code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", method, path, rec.Code)
		}
	}
}

// TestTrainMetricsExposition checks the train-job counters render.
func TestTrainMetricsExposition(t *testing.T) {
	s := trainTestServer(t)
	id := startJob(t, s, TrainRequest{N: 2, Iterations: 1, Batch: 8})
	if st := waitJob(t, s, id); st.State != "succeeded" {
		t.Fatalf("job state %q (error %q)", st.State, st.Error)
	}
	rec, body := do(t, s, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	for _, want := range []string{
		`neurovec_train_jobs_total{outcome="started"} 1`,
		`neurovec_train_jobs_total{outcome="succeeded"} 1`,
		fmt.Sprintf("neurovec_train_iterations_total %d", 1),
	} {
		if !containsLine(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func containsLine(body, line string) bool {
	for len(body) > 0 {
		i := 0
		for i < len(body) && body[i] != '\n' {
			i++
		}
		if body[:i] == line {
			return true
		}
		if i == len(body) {
			break
		}
		body = body[i+1:]
	}
	return false
}
