package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Pool.Do when the work queue is full; the HTTP
// layer maps it to 503 so load sheds at the edge instead of queueing
// unboundedly.
var ErrOverloaded = errors.New("service: work queue full")

// PanicError is returned by Pool.Do when the job panicked. The worker
// recovers, so one poisoned request costs that request a 500 instead of
// costing the process every in-flight request. Stack holds the goroutine
// stack captured at recovery, for the server's log.
type PanicError struct {
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("service: request panicked: %v", e.Val) }

// poolJob is one queued unit of work.
type poolJob struct {
	run      func()
	done     chan struct{}
	err      error // written by the worker before done closes: nil or *PanicError
	canceled atomic.Bool
	enqueued time.Time
}

// Pool is a bounded worker pool: a fixed number of goroutines (defaulting to
// GOMAXPROCS — the inference math is CPU-bound, so more workers would only
// add scheduling churn) drain a fixed-depth queue. Both bounds together give
// the service backpressure: when every worker is busy and the queue is full,
// Do fails fast with ErrOverloaded.
type Pool struct {
	jobs     chan *poolJob
	wg       sync.WaitGroup
	closed   atomic.Bool
	workers  int
	inflight atomic.Int64
	// onWait, when set (before the pool serves traffic), observes how long
	// each job sat queued before a worker picked it up — the queue-wait
	// latency histogram.
	onWait func(time.Duration)
	// onPanic, when set, observes every recovered job panic.
	onPanic func()
}

// NewPool starts a pool. workers <= 0 means GOMAXPROCS; queue <= 0 means
// 4x workers.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	p := &Pool{jobs: make(chan *poolJob, queue), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				if p.onWait != nil {
					p.onWait(time.Since(j.enqueued))
				}
				if !j.canceled.Load() {
					p.inflight.Add(1)
					j.err = p.runSafe(j.run)
					p.inflight.Add(-1)
				}
				close(j.done)
			}
		}()
	}
	return p
}

// runSafe runs one job, converting a panic into a *PanicError so the worker
// goroutine (and with it the whole serving process) survives.
func (p *Pool) runSafe(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if p.onPanic != nil {
				p.onPanic()
			}
			err = &PanicError{Val: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// OnPanic installs a hook observing every recovered job panic (the panic
// counter metric). Set it before the pool serves traffic.
func (p *Pool) OnPanic(fn func()) { p.onPanic = fn }

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Closed reports whether Close has been called (the pool no longer accepts
// new work).
func (p *Pool) Closed() bool { return p.closed.Load() }

// QueueDepth returns the number of jobs waiting for a worker right now.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// InFlight returns the number of jobs currently executing.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Do queues fn and waits for it to finish. It returns ErrOverloaded without
// queueing when the queue is full, the context error if ctx is done first —
// in that case fn is marked canceled and skipped if it has not started yet
// (if it is already running it completes, but the caller has gone) — and a
// *PanicError if fn panicked (the worker recovers; see runSafe).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	j := &poolJob{run: fn, done: make(chan struct{}), enqueued: time.Now()}
	select {
	case p.jobs <- j:
	default:
		return ErrOverloaded
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		j.canceled.Store(true)
		return ctx.Err()
	}
}

// Close drains the queue and stops the workers. Pending jobs still run.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
		p.wg.Wait()
	}
}
