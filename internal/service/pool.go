package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Pool.Do when the work queue is full; the HTTP
// layer maps it to 503 so load sheds at the edge instead of queueing
// unboundedly.
var ErrOverloaded = errors.New("service: work queue full")

// poolJob is one queued unit of work.
type poolJob struct {
	run      func()
	done     chan struct{}
	canceled atomic.Bool
	enqueued time.Time
}

// Pool is a bounded worker pool: a fixed number of goroutines (defaulting to
// GOMAXPROCS — the inference math is CPU-bound, so more workers would only
// add scheduling churn) drain a fixed-depth queue. Both bounds together give
// the service backpressure: when every worker is busy and the queue is full,
// Do fails fast with ErrOverloaded.
type Pool struct {
	jobs     chan *poolJob
	wg       sync.WaitGroup
	closed   atomic.Bool
	workers  int
	inflight atomic.Int64
	// onWait, when set (before the pool serves traffic), observes how long
	// each job sat queued before a worker picked it up — the queue-wait
	// latency histogram.
	onWait func(time.Duration)
}

// NewPool starts a pool. workers <= 0 means GOMAXPROCS; queue <= 0 means
// 4x workers.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	p := &Pool{jobs: make(chan *poolJob, queue), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				if p.onWait != nil {
					p.onWait(time.Since(j.enqueued))
				}
				if !j.canceled.Load() {
					p.inflight.Add(1)
					j.run()
					p.inflight.Add(-1)
				}
				close(j.done)
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the number of jobs waiting for a worker right now.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// InFlight returns the number of jobs currently executing.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Do queues fn and waits for it to finish. It returns ErrOverloaded without
// queueing when the queue is full, and the context error if ctx is done
// first — in that case fn is marked canceled and skipped if it has not
// started yet (if it is already running it completes, but the caller has
// gone).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	j := &poolJob{run: fn, done: make(chan struct{}), enqueued: time.Now()}
	select {
	case p.jobs <- j:
	default:
		return ErrOverloaded
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		j.canceled.Store(true)
		return ctx.Err()
	}
}

// Close drains the queue and stops the workers. Pending jobs still run.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
		p.wg.Wait()
	}
}
