package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"

	"neurovec/internal/api"
	"neurovec/internal/core"
	"neurovec/internal/obs"
	"neurovec/internal/policy"
)

// This file is the v2 surface of the server: POST /v2/compile speaks the
// versioned per-loop wire schema of package neurovec/internal/api in three
// request forms —
//
//   - a single JSON api.CompileRequest        → api.CompileResponse
//   - a JSON api.Batch envelope {"requests"}  → api.BatchResponse (in order)
//   - an NDJSON stream (Content-Type application/x-ndjson), one request per
//     line → one response line per request, streamed back in order as each
//     file completes
//
// Batched forms shard files over the worker pool; per-file failures become
// per-response Error fields so one bad file never poisons a batch. Responses
// are cached per file (keyed by model version, policy, source, params, and
// pins), and inference runs with the server's per-loop cache armed: code
// vectors and loop-pure policy decisions are memoized under stable LoopIDs,
// so re-requests of whitespace-edited files skip the expensive work even
// when the byte-level response cache misses.

// loopCache adapts two bounded LRUs to core.LoopCache: (VF, IF) decisions
// and code vectors, both keyed by the core under (checkpoint, LoopID).
type loopCache struct {
	decisions *Cache
	embeds    *Cache
}

func newLoopCache(entries int) *loopCache {
	return &loopCache{decisions: NewCache(entries), embeds: NewCache(entries)}
}

func (c *loopCache) GetDecision(key string) (vf, ifc int, ok bool) {
	b, ok := c.decisions.Get(key)
	if !ok || len(b) != 16 {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint64(b[:8])), int(binary.LittleEndian.Uint64(b[8:])), true
}

func (c *loopCache) PutDecision(key string, vf, ifc int) {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[:8], uint64(vf))
	binary.LittleEndian.PutUint64(b[8:], uint64(ifc))
	c.decisions.Put(key, b)
}

func (c *loopCache) GetEmbed(key string) ([]float64, bool) {
	b, ok := c.embeds.Get(key)
	if !ok || len(b)%8 != 0 {
		return nil, false
	}
	vec := make([]float64, len(b)/8)
	for i := range vec {
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vec, true
}

func (c *loopCache) PutEmbed(key string, vec []float64) {
	b := make([]byte, len(vec)*8)
	for i, v := range vec {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	c.embeds.Put(key, b)
}

// compilePayload gives the api type the response cache's opt-out hook:
// truncated answers depend on the requester's deadline and must not be
// served to a later, more patient client.
type compilePayload struct{ *api.CompileResponse }

func (p compilePayload) skipCache() bool { return p.Truncated }

// compileEnvelope decodes both single-request and batch bodies: a body with
// a non-empty "requests" array is a Batch, anything else a CompileRequest.
type compileEnvelope struct {
	api.CompileRequest
	Requests []api.CompileRequest `json:"requests,omitempty"`
}

// CompileCacheKey derives the per-file response-cache key from the model
// version, resolved policy name, source, params, strict bit, and pins. Pins
// are part of the key in request order: two orderings of the same pins
// compute the same response but cache separately, which costs a miss, never
// a wrong answer. Exported because the fleet router's shared cache tier must
// use the exact same key discipline — one implementation, two tiers.
func CompileCacheKey(version, policyName string, req *api.CompileRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "compile\x00%s\x00%s\x00%s\x00", version, policyName, req.File)
	if req.Strict {
		// Strict and lax answers differ (422 vs annotated response); they
		// must not share cache entries.
		fmt.Fprintf(h, "strict\x00")
	}
	h.Write([]byte(req.Source))
	keys := make([]string, 0, len(req.Params))
	for k := range req.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "\x00%s=%d", k, req.Params[k])
	}
	for _, p := range req.Pins {
		fmt.Fprintf(h, "\x00pin:%s/%s=%dx%d", p.Loop, p.Label, p.VF, p.IF)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// compileCompute runs one file through the v2 core path. It is the single
// compute function behind /v2/compile and the /v1/annotate shim, which is
// what guarantees the two surfaces can never drift.
func (s *Server) compileCompute(ctx context.Context, m *model, req *api.CompileRequest, polName string, pol policy.Policy) (*api.CompileResponse, error) {
	opts := []core.InferOption{core.WithPolicy(pol)}
	if s.loops != nil {
		opts = append(opts, core.WithLoopCache(s.loops))
	}
	if len(req.Pins) > 0 {
		opts = append(opts, core.WithPins(req.Pins))
	}
	if req.Strict {
		opts = append(opts, core.WithStrictSema())
	}
	if req.File != "" {
		opts = append(opts, core.WithSourceName(req.File))
	}
	resp, err := m.fw.PredictLoops(ctx, req.Source, req.Params, opts...)
	if err == nil || !isRequestError(err) {
		s.metrics.Policy(polName, err == nil)
	}
	if err != nil {
		return nil, classify(err)
	}
	resp.File = req.File
	for _, d := range resp.Loops {
		s.metrics.CompileLoop(d.Provenance.Origin)
	}
	return resp, nil
}

// handleCompile serves POST /v2/compile, dispatching on the request form.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-ndjson") {
		s.handleCompileStream(w, r)
		return
	}
	var env compileEnvelope
	if err := decodeBody(r, &env); err != nil {
		writeError(w, r, err)
		return
	}
	m := s.model.Load()
	if len(env.Requests) > 0 {
		s.handleCompileBatch(w, r, m, &env)
		return
	}
	req := env.CompileRequest
	if err := req.Validate(); err != nil {
		writeError(w, r, &httpError{status: http.StatusBadRequest, msg: err.Error()})
		return
	}
	polName, pol, err := resolvePolicy(m, req.Policy, core.DefaultPolicy)
	if err != nil {
		s.metrics.Policy(polName, false)
		writeError(w, r, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	if req.Trace || r.URL.Query().Get("trace") == "1" {
		s.serveTracedCompile(ctx, w, r, m, &req, polName, pol)
		return
	}
	key := CompileCacheKey(m.version, polName, &req)
	s.serveCached(ctx, w, r, key, func(ctx context.Context) (any, error) {
		resp, err := s.compileCompute(ctx, m, &req, polName, pol)
		if err != nil {
			return nil, err
		}
		return compilePayload{resp}, nil
	})
}

// serveTracedCompile answers one traced compile request. Traced responses
// bypass the response cache in both directions: a cached body carries no
// spans, and a trace describes exactly one execution — serving it to another
// request would be a lie. The stage histograms still record (the sink rides
// along with the trace), and the per-loop caches still apply, so a traced
// request on a warm server shows the cheap path it actually took.
func (s *Server) serveTracedCompile(ctx context.Context, w http.ResponseWriter, r *http.Request, m *model, req *api.CompileRequest, polName string, pol policy.Policy) {
	tr := obs.NewTrace()
	ctx = obs.WithRecorder(ctx, tr, s.metrics.StageSink())
	var resp *api.CompileResponse
	var cerr error
	err := s.pool.Do(r.Context(), func() { resp, cerr = s.compileCompute(ctx, m, req, polName, pol) })
	if errors.Is(err, ErrOverloaded) {
		s.metrics.PoolRejected()
	}
	if err == nil {
		err = cerr
	}
	if err != nil {
		writeError(w, r, classify(err))
		return
	}
	resp.RequestID = w.Header().Get("X-Request-ID")
	resp.Trace = core.TraceSpans(tr)
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, nil, err)
		return
	}
	w.Header().Set("X-Neurovec-Cache", "bypass")
	writeJSON(w, http.StatusOK, body)
}

// handleCompileBatch answers a JSON Batch envelope: every file compiles
// independently on the worker pool and Responses preserves request order.
func (s *Server) handleCompileBatch(w http.ResponseWriter, r *http.Request, m *model, env *compileEnvelope) {
	batch := api.Batch{Version: env.Version, Requests: env.Requests}
	if err := batch.Validate(); err != nil {
		writeError(w, r, &httpError{status: http.StatusBadRequest, msg: err.Error()})
		return
	}
	reqID := w.Header().Get("X-Request-ID")
	out := api.BatchResponse{Version: api.Version, Responses: make([]api.CompileResponse, len(env.Requests))}
	// Bound the in-flight files like the NDJSON path does: pool.Do enqueues
	// without blocking, so spawning every request at once would overflow the
	// work queue and hand spurious overload errors to large batches on an
	// otherwise idle server.
	sem := make(chan struct{}, s.pool.Workers()*2)
	var wg sync.WaitGroup
	for i := range env.Requests {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out.Responses[i] = *s.compileItem(r.Context(), m, &env.Requests[i], reqID)
		}(i)
	}
	wg.Wait()
	body, err := json.Marshal(&out)
	if err != nil {
		writeError(w, nil, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleCompileStream answers an NDJSON stream: requests are dispatched to
// the pool as lines arrive (bounded in flight, so a huge batch cannot buffer
// unboundedly) and responses stream back in request order as files finish.
func (s *Server) handleCompileStream(w http.ResponseWriter, r *http.Request) {
	m := s.model.Load()
	// Every line of the stream shares the request's X-Request-ID — the one
	// instrument() stamped on the response headers, which prefers a sane
	// inbound header over generating a fresh ID. Echoing it per line (rather
	// than regenerating, or only on the header the client may never surface)
	// gives batch clients the same correlation key on every response record.
	reqID := w.Header().Get("X-Request-ID")
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	type slot chan *api.CompileResponse
	queue := make(chan slot, s.pool.Workers()*2)
	go func() {
		defer close(queue)
		sc := bufio.NewScanner(r.Body)
		maxLine := int(s.cfg.MaxRequestBytes)
		sc.Buffer(make([]byte, 64*1024), maxLine)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			lineCopy := append([]byte(nil), line...)
			out := make(slot, 1)
			queue <- out // backpressure before spawning work
			go func() {
				var req api.CompileRequest
				dec := json.NewDecoder(bytes.NewReader(lineCopy))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&req); err != nil {
					out <- &api.CompileResponse{Version: api.Version, RequestID: reqID, Error: "bad request line: " + err.Error()}
					return
				}
				out <- s.compileItem(r.Context(), m, &req, reqID)
			}()
		}
		if err := sc.Err(); err != nil {
			out := make(slot, 1)
			out <- &api.CompileResponse{Version: api.Version, RequestID: reqID, Error: "bad request stream: " + err.Error()}
			queue <- out
		}
	}()

	enc := json.NewEncoder(w)
	for out := range queue {
		enc.Encode(<-out) // Encode appends the NDJSON newline
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// compileItem compiles one batched file. Failures become the response's
// Error field — a batch always yields one response per request — and cached
// non-truncated responses are served and stored per file. reqID is echoed on
// every response after the cache interaction, so cached bytes stay
// request-neutral while every client-visible record carries the key.
func (s *Server) compileItem(rctx context.Context, m *model, req *api.CompileRequest, reqID string) *api.CompileResponse {
	fail := func(err error) *api.CompileResponse {
		resp := &api.CompileResponse{Version: api.Version, File: req.File, RequestID: reqID, Error: err.Error()}
		// A strict-mode semantic rejection keeps its diagnostics: batch and
		// NDJSON clients get the same machine-readable findings the single
		// form carries in its 422 error body.
		var serr *core.SemanticError
		if errors.As(err, &serr) {
			resp.Diagnostics = serr.Diags
		}
		return resp
	}
	if err := req.Validate(); err != nil {
		return fail(err)
	}
	polName, pol, err := resolvePolicy(m, req.Policy, core.DefaultPolicy)
	if err != nil {
		s.metrics.Policy(polName, false)
		return fail(err)
	}
	key := CompileCacheKey(m.version, polName, req)
	// Traced items bypass the cache entirely (neither hit nor store): a
	// cached body carries no spans and a trace describes one execution.
	if !req.Trace {
		if body, ok := s.cache.Get(key); ok {
			var resp api.CompileResponse
			if json.Unmarshal(body, &resp) == nil {
				s.metrics.CacheHit()
				resp.RequestID = reqID
				return &resp
			}
		}
		s.metrics.CacheMiss()
	}
	ctx, cancel := s.computeCtx(rctx, req.TimeoutMS)
	defer cancel()
	var tr *obs.Trace
	if req.Trace {
		tr = obs.NewTrace()
		ctx = obs.WithRecorder(ctx, tr, s.metrics.StageSink())
	}
	var resp *api.CompileResponse
	var cerr error
	err = s.pool.Do(rctx, func() { resp, cerr = s.compileCompute(ctx, m, req, polName, pol) })
	if errors.Is(err, ErrOverloaded) {
		s.metrics.PoolRejected()
	}
	if err == nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	if tr != nil {
		resp.Trace = core.TraceSpans(tr)
		resp.RequestID = reqID
		return resp
	}
	if !resp.Truncated {
		// Cache before stamping the request ID: the stored bytes must stay
		// request-neutral so a later hit can carry its own ID.
		if body, err := json.Marshal(resp); err == nil {
			s.cache.Put(key, body)
		}
	}
	resp.RequestID = reqID
	return resp
}
