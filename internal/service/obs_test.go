package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"neurovec/internal/api"
	"neurovec/internal/obs"
	obslog "neurovec/internal/obs/log"
)

// These tests cover the observability layer at the service boundary: request
// IDs, the ?trace=1 span block, per-stage latency histograms on /metrics,
// promtool-style exposition hygiene, and the opt-in pprof mount.

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, _ := do(t, s, "GET", "/healthz", nil)
	if id := rec.Header().Get("X-Request-ID"); id == "" {
		t.Fatal("no X-Request-ID assigned")
	}

	// A sane client-supplied ID is honored; it also lands in error bodies.
	req := httptest.NewRequest("POST", "/v1/annotate", strings.NewReader(`{"source":""}`))
	req.Header.Set("X-Request-ID", "client-abc-123")
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if got := rr.Header().Get("X-Request-ID"); got != "client-abc-123" {
		t.Fatalf("client request ID not honored: %q", got)
	}
	if rr.Code == http.StatusOK {
		t.Fatalf("empty source unexpectedly compiled: %s", rr.Body.String())
	}
	var errBody map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &errBody); err != nil {
		t.Fatal(err)
	}
	if errBody["request_id"] != "client-abc-123" {
		t.Fatalf("error body missing request_id: %v", errBody)
	}

	// A hostile header (too long / non-printable) is replaced.
	req2 := httptest.NewRequest("GET", "/healthz", nil)
	req2.Header.Set("X-Request-ID", "bad\nid")
	rr2 := httptest.NewRecorder()
	s.ServeHTTP(rr2, req2)
	if got := rr2.Header().Get("X-Request-ID"); got == "bad\nid" || got == "" {
		t.Fatalf("hostile request ID not replaced: %q", got)
	}
}

func TestCompileTraceReturnsPipelineSpans(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	src := fixture.srcs[0]

	rec, body := do(t, s, "POST", "/v2/compile?trace=1", api.CompileRequest{Source: src})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp api.CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("?trace=1 returned no spans")
	}
	if resp.RequestID == "" || resp.RequestID != rec.Header().Get("X-Request-ID") {
		t.Fatalf("trace response request_id %q != header %q", resp.RequestID, rec.Header().Get("X-Request-ID"))
	}
	byName := map[string]bool{}
	for _, sp := range resp.Trace {
		byName[sp.Name] = true
		if sp.DurationMicros < 0 || sp.StartMicros < 0 {
			t.Errorf("span %s has negative timing: %+v", sp.Name, sp)
		}
	}
	for _, stage := range []string{"compile", "parse", "lower", "deps", "decide", "sim"} {
		if !byName[stage] {
			t.Errorf("trace missing %q stage; got %v", stage, byName)
		}
	}
	if got := rec.Header().Get("X-Neurovec-Cache"); got != "bypass" {
		t.Errorf("traced request cache header %q, want bypass", got)
	}

	// Traced requests never enter the cache: an untraced repeat is a miss,
	// and a traced repeat after that stays a bypass with fresh spans.
	rec2, _ := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: src})
	if got := rec2.Header().Get("X-Neurovec-Cache"); got != "miss" {
		t.Errorf("untraced repeat after traced request: cache %q, want miss", got)
	}
	rec3, body3 := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: src, Trace: true})
	if rec3.Code != http.StatusOK || rec3.Header().Get("X-Neurovec-Cache") != "bypass" {
		t.Fatalf("body-form trace: status %d cache %q", rec3.Code, rec3.Header().Get("X-Neurovec-Cache"))
	}
	var resp3 api.CompileResponse
	if err := json.Unmarshal(body3, &resp3); err != nil {
		t.Fatal(err)
	}
	if len(resp3.Trace) == 0 {
		t.Error("body-form trace returned no spans")
	}
}

func TestCompileBatchPerItemTrace(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	batch := api.Batch{Requests: []api.CompileRequest{
		{File: "traced.c", Source: fixture.srcs[0], Trace: true},
		{File: "plain.c", Source: fixture.srcs[1]},
	}}
	rec, body := do(t, s, "POST", "/v2/compile", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out api.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 2 {
		t.Fatalf("got %d responses, want 2", len(out.Responses))
	}
	if len(out.Responses[0].Trace) == 0 {
		t.Error("traced batch item returned no spans")
	}
	if len(out.Responses[1].Trace) != 0 {
		t.Error("untraced batch item returned spans")
	}
}

func TestMetricsStageHistogramAndLint(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	// One compile drives the pipeline; stage durations must land in the
	// histogram even though nobody asked for a trace.
	rec, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: fixture.srcs[0]})
	if rec.Code != http.StatusOK {
		t.Fatalf("compile status %d: %s", rec.Code, body)
	}

	_, mbody := do(t, s, "GET", "/metrics", nil)
	text := string(mbody)
	for _, stage := range []string{"compile", "parse", "extract", "lower", "deps", "sim_baseline", "embed", "decide", "sim"} {
		want := fmt.Sprintf(`neurovec_stage_duration_seconds_count{stage=%q} `, stage)
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing stage histogram for %q", stage)
		}
	}
	for _, name := range []string{
		"neurovec_queue_wait_seconds_count ",
		"neurovec_queue_depth ",
		"neurovec_inflight_jobs ",
		"neurovec_cache_hit_ratio ",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics missing %q", name)
		}
	}

	// The whole exposition passes the promtool-style lint.
	if errs := obs.Lint(strings.NewReader(text)); len(errs) != 0 {
		t.Errorf("exposition lint failed:\n%v\n--- exposition ---\n%s", errs, text)
	}
}

func TestPprofMountIsOptIn(t *testing.T) {
	testFixture(t)
	off := newTestServer(t, Config{ModelPath: fixture.model1})
	rec, _ := do(t, off, "GET", "/debug/pprof/", nil)
	if rec.Code == http.StatusOK {
		t.Fatal("pprof served without -pprof")
	}
	on := newTestServer(t, Config{ModelPath: fixture.model1, Pprof: true})
	rec2, body := do(t, on, "GET", "/debug/pprof/", nil)
	if rec2.Code != http.StatusOK {
		t.Fatalf("pprof index status %d: %s", rec2.Code, body)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index looks wrong: %.200s", body)
	}
}

func TestServerLogsRequests(t *testing.T) {
	testFixture(t)
	var buf strings.Builder
	logger := obslog.New(&buf, obslog.LevelDebug, obslog.FormatJSON)
	s := newTestServer(t, Config{ModelPath: fixture.model1, Logger: logger})
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "log-probe")
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	line := buf.String()
	if !strings.Contains(line, `"request_id":"log-probe"`) || !strings.Contains(line, `"endpoint":"/healthz"`) {
		t.Errorf("request log line missing fields: %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &m); err != nil {
		t.Errorf("log line is not valid JSON: %v (%q)", err, line)
	}
}
