package service

import (
	"io"
	"sync"
	"time"

	"neurovec/internal/obs"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen for a service whose work ranges from cache hits (~µs)
// to full sweep simulations (~tens of ms on small inputs, seconds on large
// ones).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// stageBuckets are the upper bounds (seconds) of the per-stage pipeline
// histogram. Stages run from microseconds (parse on a small kernel) to tens
// of milliseconds (a brute-force decide), so the grid starts finer than the
// request-level one.
var stageBuckets = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5,
}

// Metrics is the service's metrics surface: a thin facade over obs.Registry
// that keeps the recording API the rest of the package (and the trainer /
// eval paths riding through it) already speaks. All methods are safe for
// concurrent use; every update is an atomic on a pre-registered instrument.
type Metrics struct {
	reg *obs.Registry

	requests     *obs.CounterVec   // endpoint, code
	reqDur       *obs.HistogramVec // endpoint
	stageDur     *obs.HistogramVec // stage (fed by obs spans)
	queueWait    *obs.Histogram
	policyReq    *obs.CounterVec // policy, outcome
	evalRuns     *obs.CounterVec // policy, outcome
	evalFiles    *obs.CounterVec // suite
	trainJobs    *obs.CounterVec // outcome
	trainIters   *obs.Counter
	compileLoops *obs.CounterVec // origin
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	reloads      *obs.Counter
	reloadErrors *obs.Counter
	batches      *obs.Counter
	batchedJobs  *obs.Counter
	poolRejected *obs.Counter
	poolPanics   *obs.Counter
	modelInfo    *obs.GaugeVec // version

	mu sync.Mutex // serializes SetModel's Reset+Set pair
}

// NewMetrics returns a registry pre-populated with every metric family the
// service exposes, so /metrics always carries full HELP/TYPE metadata even
// before the first event.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{
		reg:          r,
		requests:     r.CounterVec("neurovec_requests_total", "Requests served, by endpoint and status code.", "endpoint", "code"),
		reqDur:       r.HistogramVec("neurovec_request_duration_seconds", "Request latency histogram by endpoint.", latencyBuckets, "endpoint"),
		stageDur:     r.HistogramVec("neurovec_stage_duration_seconds", "Compile-pipeline stage latency histogram (parse, lower, embed, decide, sim, ...).", stageBuckets, "stage"),
		queueWait:    r.Histogram("neurovec_queue_wait_seconds", "Time jobs spend queued before a pool worker picks them up.", latencyBuckets),
		policyReq:    r.CounterVec("neurovec_policy_requests_total", "Policy decisions computed, by policy and outcome.", "policy", "outcome"),
		evalRuns:     r.CounterVec("neurovec_eval_runs_total", "Corpus evaluations computed, by policy and outcome.", "policy", "outcome"),
		evalFiles:    r.CounterVec("neurovec_eval_files_total", "Files evaluated by the corpus harness, by suite.", "suite"),
		trainJobs:    r.CounterVec("neurovec_train_jobs_total", "Training jobs, by lifecycle outcome.", "outcome"),
		trainIters:   r.Counter("neurovec_train_iterations_total", "Completed training iterations across jobs."),
		compileLoops: r.CounterVec("neurovec_compile_loops_total", "Per-loop decisions served via the v2 compile path, by origin.", "origin"),
		cacheHits:    r.Counter("neurovec_cache_hits_total", "Response cache hits."),
		cacheMisses:  r.Counter("neurovec_cache_misses_total", "Response cache misses."),
		reloads:      r.Counter("neurovec_model_reloads_total", "Successful model hot-reloads."),
		reloadErrors: r.Counter("neurovec_model_reload_errors_total", "Failed model hot-reloads."),
		batches:      r.Counter("neurovec_embed_batches_total", "Embedding batches executed."),
		batchedJobs:  r.Counter("neurovec_embed_batched_requests_total", "Embedding requests served through batches."),
		poolRejected: r.Counter("neurovec_pool_rejected_total", "Requests rejected because the work queue was full."),
		poolPanics:   r.Counter("neurovec_pool_panics_total", "Request panics recovered by the worker pool (each cost one request a 500)."),
		modelInfo:    r.GaugeVec("neurovec_model_info", "Currently served model (value is load time in unix seconds).", "version"),
	}
	r.GaugeFunc("neurovec_cache_hit_ratio", "Response cache hit ratio since start.", func() float64 {
		hits, misses := m.CacheStats()
		if total := hits + misses; total > 0 {
			return float64(hits) / float64(total)
		}
		return 0
	})
	return m
}

// Registry exposes the underlying obs.Registry so other subsystems (trainer
// jobs, the eval harness, pool gauges) can register into the same /metrics
// exposition.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// StageSink returns the sink that turns obs span durations into
// neurovec_stage_duration_seconds{stage} observations; hand it to
// obs.WithRecorder when dispatching pipeline work.
func (m *Metrics) StageSink() obs.StageSink { return m.stageDur }

// ObserveQueueWait records how long one job waited in the pool queue.
func (m *Metrics) ObserveQueueWait(d time.Duration) { m.queueWait.Observe(d.Seconds()) }

// CompileLoop records one per-loop decision served through the v2 compile
// path, by provenance origin ("policy" or "pin").
func (m *Metrics) CompileLoop(origin string) {
	if origin == "" {
		return
	}
	m.compileLoops.With(origin).Inc()
}

// TrainJob records one training-job lifecycle event by outcome ("started",
// "succeeded", "failed", "canceled").
func (m *Metrics) TrainJob(outcome string) { m.trainJobs.With(outcome).Inc() }

// TrainIterations records n completed training iterations.
func (m *Metrics) TrainIterations(n int) { m.trainIters.Add(int64(n)) }

// Policy records one policy decision computed for a request (cache hits are
// not counted here — they never re-run the policy).
func (m *Metrics) Policy(name string, ok bool) {
	if name == "" {
		return
	}
	m.policyReq.With(name, outcomeLabel(ok)).Inc()
}

// EvalRun records one corpus evaluation computed for a /v1/eval request
// (cache hits never re-run the harness and are not counted).
func (m *Metrics) EvalRun(policy string, ok bool) {
	if policy == "" {
		return
	}
	m.evalRuns.With(policy, outcomeLabel(ok)).Inc()
}

// EvalFiles records n files evaluated under one suite.
func (m *Metrics) EvalFiles(suite string, n int) {
	if suite == "" || n <= 0 {
		return
	}
	m.evalFiles.With(suite).Add(int64(n))
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(endpoint string, status int, elapsed time.Duration) {
	m.requests.With(endpoint, itoa(status)).Inc()
	m.reqDur.With(endpoint).Observe(elapsed.Seconds())
}

// CacheHit records a response-cache hit.
func (m *Metrics) CacheHit() { m.cacheHits.Inc() }

// CacheMiss records a response-cache miss.
func (m *Metrics) CacheMiss() { m.cacheMisses.Inc() }

// CacheStats returns the hit/miss counters.
func (m *Metrics) CacheStats() (hits, misses int64) {
	return m.cacheHits.Value(), m.cacheMisses.Value()
}

// Reload records a model hot-reload attempt.
func (m *Metrics) Reload(ok bool) {
	if ok {
		m.reloads.Inc()
	} else {
		m.reloadErrors.Inc()
	}
}

// Batch records one embedding batch of n coalesced requests.
func (m *Metrics) Batch(n int) {
	m.batches.Inc()
	m.batchedJobs.Add(int64(n))
}

// PoolRejected records a request turned away because the work queue was full.
func (m *Metrics) PoolRejected() { m.poolRejected.Inc() }

// PoolPanic records a request panic recovered by the worker pool.
func (m *Metrics) PoolPanic() { m.poolPanics.Inc() }

// SetModel records the currently served model version for the info gauge.
// The vec is reset first so only the live version appears in the exposition.
func (m *Metrics) SetModel(version string, loadedAt time.Time) {
	if version == "" {
		return
	}
	m.mu.Lock()
	m.modelInfo.Reset()
	m.modelInfo.With(version).Set(float64(loadedAt.Unix()))
	m.mu.Unlock()
}

// WriteTo renders the registry in the Prometheus text exposition format.
// The exposition is rendered to a buffer before writing, so a slow scraper
// cannot stall request accounting service-wide.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) { return m.reg.WriteTo(w) }

func outcomeLabel(ok bool) string {
	if ok {
		return "ok"
	}
	return "error"
}

// itoa renders small positive ints (HTTP status codes) without fmt.
func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
