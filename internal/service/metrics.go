package service

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen for a service whose work ranges from cache hits (~µs)
// to full sweep simulations (~tens of ms on small inputs, seconds on large
// ones).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointStats aggregates one endpoint's request counters and latency
// histogram.
type endpointStats struct {
	count    map[int]int64 // by HTTP status code
	sum      float64       // total seconds
	buckets  []int64       // cumulative counts per latencyBuckets entry
	observed int64
}

// policyStats counts one policy's computed decisions by outcome.
type policyStats struct {
	ok   int64
	errs int64
}

// Metrics is the service's stdlib-only metrics registry. All methods are
// safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	policies  map[string]*policyStats
	evalRuns  map[string]*policyStats // corpus evaluations, by policy
	evalFiles map[string]int64        // evaluated files, by suite

	trainJobs       map[string]int64 // training jobs, by outcome
	trainIterations int64            // completed training iterations

	compileLoops map[string]int64 // per-loop decisions served, by origin

	cacheHits   int64
	cacheMisses int64

	reloads       int64
	reloadErrors  int64
	batches       int64
	batchedJobs   int64
	poolRejected  int64
	modelVersion  string
	modelLoadedAt time.Time
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints:    make(map[string]*endpointStats),
		policies:     make(map[string]*policyStats),
		evalRuns:     make(map[string]*policyStats),
		evalFiles:    make(map[string]int64),
		trainJobs:    make(map[string]int64),
		compileLoops: make(map[string]int64),
	}
}

// CompileLoop records one per-loop decision served through the v2 compile
// path, by provenance origin ("policy" or "pin").
func (m *Metrics) CompileLoop(origin string) {
	if origin == "" {
		return
	}
	m.mu.Lock()
	m.compileLoops[origin]++
	m.mu.Unlock()
}

// TrainJob records one training-job lifecycle event by outcome ("started",
// "succeeded", "failed", "canceled").
func (m *Metrics) TrainJob(outcome string) {
	m.mu.Lock()
	m.trainJobs[outcome]++
	m.mu.Unlock()
}

// TrainIterations records n completed training iterations.
func (m *Metrics) TrainIterations(n int) {
	m.mu.Lock()
	m.trainIterations += int64(n)
	m.mu.Unlock()
}

// Policy records one policy decision computed for a request (cache hits are
// not counted here — they never re-run the policy).
func (m *Metrics) Policy(name string, ok bool) {
	if name == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.policies[name]
	if st == nil {
		st = &policyStats{}
		m.policies[name] = st
	}
	if ok {
		st.ok++
	} else {
		st.errs++
	}
}

// EvalRun records one corpus evaluation computed for a /v1/eval request
// (cache hits never re-run the harness and are not counted).
func (m *Metrics) EvalRun(policy string, ok bool) {
	if policy == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.evalRuns[policy]
	if st == nil {
		st = &policyStats{}
		m.evalRuns[policy] = st
	}
	if ok {
		st.ok++
	} else {
		st.errs++
	}
}

// EvalFiles records n files evaluated under one suite.
func (m *Metrics) EvalFiles(suite string, n int) {
	if suite == "" || n <= 0 {
		return
	}
	m.mu.Lock()
	m.evalFiles[suite] += int64(n)
	m.mu.Unlock()
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(endpoint string, status int, elapsed time.Duration) {
	sec := elapsed.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{count: make(map[int]int64), buckets: make([]int64, len(latencyBuckets))}
		m.endpoints[endpoint] = st
	}
	st.count[status]++
	st.sum += sec
	st.observed++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			st.buckets[i]++
		}
	}
}

// CacheHit / CacheMiss record response-cache outcomes.
func (m *Metrics) CacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

// CacheMiss records a response-cache miss.
func (m *Metrics) CacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// CacheStats returns the hit/miss counters.
func (m *Metrics) CacheStats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMisses
}

// Reload records a model hot-reload attempt.
func (m *Metrics) Reload(ok bool) {
	m.mu.Lock()
	if ok {
		m.reloads++
	} else {
		m.reloadErrors++
	}
	m.mu.Unlock()
}

// Batch records one embedding batch of n coalesced requests.
func (m *Metrics) Batch(n int) {
	m.mu.Lock()
	m.batches++
	m.batchedJobs += int64(n)
	m.mu.Unlock()
}

// PoolRejected records a request turned away because the work queue was full.
func (m *Metrics) PoolRejected() {
	m.mu.Lock()
	m.poolRejected++
	m.mu.Unlock()
}

// SetModel records the currently served model version for the info gauge.
func (m *Metrics) SetModel(version string, loadedAt time.Time) {
	m.mu.Lock()
	m.modelVersion = version
	m.modelLoadedAt = loadedAt
	m.mu.Unlock()
}

// WriteTo renders the registry in the Prometheus text exposition format.
// The exposition is rendered to a buffer under the lock and written to w
// unlocked, so a slow scraper cannot stall request accounting service-wide.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	if _, err := m.render(&buf); err != nil {
		return 0, err
	}
	return buf.WriteTo(w)
}

// render writes the exposition while holding the registry lock.
func (m *Metrics) render(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	p := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}

	if err := p("# HELP neurovec_requests_total Requests served, by endpoint and status code.\n# TYPE neurovec_requests_total counter\n"); err != nil {
		return n, err
	}
	for _, ep := range sortedKeys(m.endpoints) {
		st := m.endpoints[ep]
		codes := make([]int, 0, len(st.count))
		for c := range st.count {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			if err := p("neurovec_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, st.count[c]); err != nil {
				return n, err
			}
		}
	}

	if err := p("# HELP neurovec_request_duration_seconds Request latency histogram by endpoint.\n# TYPE neurovec_request_duration_seconds histogram\n"); err != nil {
		return n, err
	}
	for _, ep := range sortedKeys(m.endpoints) {
		st := m.endpoints[ep]
		for i, ub := range latencyBuckets {
			if err := p("neurovec_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, st.buckets[i]); err != nil {
				return n, err
			}
		}
		if err := p("neurovec_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, st.observed); err != nil {
			return n, err
		}
		if err := p("neurovec_request_duration_seconds_sum{endpoint=%q} %g\n", ep, st.sum); err != nil {
			return n, err
		}
		if err := p("neurovec_request_duration_seconds_count{endpoint=%q} %d\n", ep, st.observed); err != nil {
			return n, err
		}
	}

	if err := p("# HELP neurovec_policy_requests_total Policy decisions computed, by policy and outcome.\n# TYPE neurovec_policy_requests_total counter\n"); err != nil {
		return n, err
	}
	polNames := make([]string, 0, len(m.policies))
	for name := range m.policies {
		polNames = append(polNames, name)
	}
	sort.Strings(polNames)
	for _, name := range polNames {
		st := m.policies[name]
		if err := p("neurovec_policy_requests_total{policy=%q,outcome=\"ok\"} %d\n", name, st.ok); err != nil {
			return n, err
		}
		if err := p("neurovec_policy_requests_total{policy=%q,outcome=\"error\"} %d\n", name, st.errs); err != nil {
			return n, err
		}
	}

	if err := p("# HELP neurovec_eval_runs_total Corpus evaluations computed, by policy and outcome.\n# TYPE neurovec_eval_runs_total counter\n"); err != nil {
		return n, err
	}
	evalNames := make([]string, 0, len(m.evalRuns))
	for name := range m.evalRuns {
		evalNames = append(evalNames, name)
	}
	sort.Strings(evalNames)
	for _, name := range evalNames {
		st := m.evalRuns[name]
		if err := p("neurovec_eval_runs_total{policy=%q,outcome=\"ok\"} %d\n", name, st.ok); err != nil {
			return n, err
		}
		if err := p("neurovec_eval_runs_total{policy=%q,outcome=\"error\"} %d\n", name, st.errs); err != nil {
			return n, err
		}
	}

	if err := p("# HELP neurovec_eval_files_total Files evaluated by the corpus harness, by suite.\n# TYPE neurovec_eval_files_total counter\n"); err != nil {
		return n, err
	}
	suiteNames := make([]string, 0, len(m.evalFiles))
	for name := range m.evalFiles {
		suiteNames = append(suiteNames, name)
	}
	sort.Strings(suiteNames)
	for _, name := range suiteNames {
		if err := p("neurovec_eval_files_total{suite=%q} %d\n", name, m.evalFiles[name]); err != nil {
			return n, err
		}
	}

	if err := p("# HELP neurovec_train_jobs_total Training jobs, by lifecycle outcome.\n# TYPE neurovec_train_jobs_total counter\n"); err != nil {
		return n, err
	}
	outcomes := make([]string, 0, len(m.trainJobs))
	for o := range m.trainJobs {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		if err := p("neurovec_train_jobs_total{outcome=%q} %d\n", o, m.trainJobs[o]); err != nil {
			return n, err
		}
	}
	if err := p("# HELP neurovec_train_iterations_total Completed training iterations across jobs.\n# TYPE neurovec_train_iterations_total counter\nneurovec_train_iterations_total %d\n", m.trainIterations); err != nil {
		return n, err
	}

	if err := p("# HELP neurovec_compile_loops_total Per-loop decisions served via the v2 compile path, by origin.\n# TYPE neurovec_compile_loops_total counter\n"); err != nil {
		return n, err
	}
	origins := make([]string, 0, len(m.compileLoops))
	for o := range m.compileLoops {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		if err := p("neurovec_compile_loops_total{origin=%q} %d\n", o, m.compileLoops[o]); err != nil {
			return n, err
		}
	}

	hitRate := 0.0
	if total := m.cacheHits + m.cacheMisses; total > 0 {
		hitRate = float64(m.cacheHits) / float64(total)
	}
	if err := p("# HELP neurovec_cache_hits_total Response cache hits.\n# TYPE neurovec_cache_hits_total counter\nneurovec_cache_hits_total %d\n", m.cacheHits); err != nil {
		return n, err
	}
	if err := p("# HELP neurovec_cache_misses_total Response cache misses.\n# TYPE neurovec_cache_misses_total counter\nneurovec_cache_misses_total %d\n", m.cacheMisses); err != nil {
		return n, err
	}
	if err := p("# HELP neurovec_cache_hit_ratio Response cache hit ratio since start.\n# TYPE neurovec_cache_hit_ratio gauge\nneurovec_cache_hit_ratio %g\n", hitRate); err != nil {
		return n, err
	}
	if err := p("# HELP neurovec_model_reloads_total Successful model hot-reloads.\n# TYPE neurovec_model_reloads_total counter\nneurovec_model_reloads_total %d\n", m.reloads); err != nil {
		return n, err
	}
	if err := p("# HELP neurovec_model_reload_errors_total Failed model hot-reloads.\n# TYPE neurovec_model_reload_errors_total counter\nneurovec_model_reload_errors_total %d\n", m.reloadErrors); err != nil {
		return n, err
	}
	if err := p("# HELP neurovec_embed_batches_total Embedding batches executed.\n# TYPE neurovec_embed_batches_total counter\nneurovec_embed_batches_total %d\n", m.batches); err != nil {
		return n, err
	}
	if err := p("# HELP neurovec_embed_batched_requests_total Embedding requests served through batches.\n# TYPE neurovec_embed_batched_requests_total counter\nneurovec_embed_batched_requests_total %d\n", m.batchedJobs); err != nil {
		return n, err
	}
	if err := p("# HELP neurovec_pool_rejected_total Requests rejected because the work queue was full.\n# TYPE neurovec_pool_rejected_total counter\nneurovec_pool_rejected_total %d\n", m.poolRejected); err != nil {
		return n, err
	}
	if m.modelVersion != "" {
		if err := p("# HELP neurovec_model_info Currently served model (value is load time in unix seconds).\n# TYPE neurovec_model_info gauge\nneurovec_model_info{version=%q} %d\n", m.modelVersion, m.modelLoadedAt.Unix()); err != nil {
			return n, err
		}
	}
	return n, nil
}

func sortedKeys(m map[string]*endpointStats) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
