// Package service is the long-lived serving layer of the NeuroVectorizer
// reproduction: vectorization-as-a-service. Where the CLI re-parses and
// re-loads a model on every invocation, a Server loads one trained
// checkpoint (written by `neurovec train -out`) and serves inference over
// HTTP/JSON with a bounded worker pool, request batching for embeddings, an
// LRU response cache, per-request policy selection, request deadlines,
// asynchronous training jobs, and atomic model hot-reload.
//
// # Architecture
//
//   - Every compute request runs on a worker pool sized by GOMAXPROCS with a
//     bounded queue; when the queue is full the server sheds load with 503
//     instead of building an unbounded backlog.
//   - Decisions come from pluggable policies (package
//     neurovec/internal/policy): rl (the trained agent, the default),
//     costmodel, brute, random, polly, and nns, selected per request by the
//     "policy" field. GET /v1/policies lists them with availability.
//   - Responses are cached in an LRU keyed by endpoint, model version,
//     policy, source hash and runtime parameters. A repeated request is a
//     cache hit (observable via the X-Neurovec-Cache response header and
//     /metrics); bodies are byte-identical on hit and miss. Responses
//     truncated by a deadline are never cached.
//   - Config.RequestTimeout (and the request's own timeout_ms, which can
//     shorten but not extend it) bounds compute through the request context.
//     On /v1/annotate, deadline-aware policies (brute) answer with their
//     best pair so far and "truncated": true; other policies fail with 504
//     when the deadline passes. /v1/sweep's grid walk aborts with 504 at
//     the deadline regardless of the overlay policy.
//   - /v1/embed requests are coalesced: a collector goroutine gathers up to
//     MaxBatch waiting requests (lingering at most BatchWait) and executes
//     them as one pool job, amortizing scheduling under load.
//   - The serving model is an immutable snapshot behind an atomic pointer.
//     Hot-reload (POST /v1/reload, or SIGHUP in the CLI) loads the
//     checkpoint into a fresh framework and swaps the pointer; in-flight
//     requests finish on the snapshot they started with, and version-keyed
//     caching makes stale entries unreachable. Inference itself uses
//     core.Framework's stateless paths (PredictLoops, EmbedSource,
//     SweepSource), which only read the configuration and trained weights.
//   - Beneath the byte-level response cache sit per-loop caches keyed by
//     (model version, stable LoopID): code vectors for every learned
//     policy, and (VF, IF) decisions for loop-pure ones. LoopIDs survive
//     whitespace and comment edits, so a reformatted file skips the
//     expensive per-loop work even when its bytes miss the response cache.
//
// # HTTP API
//
// POST /v2/compile — the versioned per-loop compilation API: one
// api.Decision per innermost loop with a stable loop_id and provenance,
// per-loop pins, a JSON batch envelope ({"requests": […]}), and NDJSON
// streaming (Content-Type: application/x-ndjson, one request per line, one
// response line back per request in order). The /v1 endpoints below are
// compatibility shims computed through the same v2 core path. Full schema
// and the v1→v2 migration table: docs/API.md and package
// neurovec/internal/api.
//
// POST /v1/annotate — run a decision policy on a C program.
//
// Request:
//
//	{"source": "float a[4096]; float b[4096]; void f(int n) { for (int i = 0; i < n; i++) a[i] += b[i]; }",
//	 "params": {"n": 4096},        // optional runtime values for symbolic bounds
//	 "policy": "brute",            // optional; default "rl" (see GET /v1/policies)
//	 "timeout_ms": 250}            // optional per-request deadline
//
// Response 200:
//
//	{"model_version": "8c6a…",
//	 "policy": "brute",
//	 "truncated": true,            // only when a deadline cut the search short
//	 "annotated": "…source with #pragma clang loop vectorize_width(…) interleave_count(…)…",
//	 "loops": [{"label": "L0", "func": "f", "vf": 8, "if": 2,
//	            "cycles": 1234.5, "speedup": 1.8}],
//	 "baseline_cycles": 2222.1,    // program cycles under the baseline cost model
//	 "predicted_cycles": 1234.5,   // program cycles with every decision applied
//	 "speedup": 1.8}
//
// POST /v1/embed — return the learned code embedding of the first innermost
// loop.
//
// Request:  {"source": "…"}
// Response: {"model_version": "8c6a…", "dim": 340, "vector": [0.12, …]}
//
// POST /v1/sweep — measure the full VF x IF grid for the first innermost
// loop (speedups are relative to the baseline cost model). An optional
// "policy" marks the cell that method would pick.
//
// Request:
//
//	{"source": "…", "params": {…}, "policy": "costmodel"}
//
// Response:
//
//	{"model_version": "8c6a…", "loop": "L0", "vfs": [1,2,…], "ifs": [1,2,…],
//	 "baseline_cycles": 2222.1, "speedup": [[1.0, …], …],
//	 "policy": "costmodel", "chosen_vf": 4, "chosen_if": 2}
//
// # Evaluating policies
//
// GET/POST /v1/eval — evaluate a policy over a whole built-in corpus, the
// service-side twin of `neurovec eval`. Every file runs through the policy
// under evaluation, a baseline (default "costmodel"), and the brute-force
// oracle; the response aggregates per-suite and overall mean/geomean
// speedup, oracle regret (policy cycles over oracle cycles minus one), and
// decision agreement. Numbers are a pure function of (model version,
// request spec): the report's files and suites are canonically sorted and
// the volatile timing block is omitted, so repeated identical specs return
// identical bytes (usually straight from the response cache) and match the
// CLI's `neurovec eval` output at the same seed.
//
// POST body (GET takes the same fields as query parameters):
//
//	{"policy": "rl",               // default "rl"
//	 "baseline": "costmodel",      // default "costmodel"
//	 "corpus": "polybench,mibench",// suites: polybench, mibench, figure7, tsvc, generated
//	 "n": 32,                      // generated-suite size (default 16, cap 256)
//	 "seed": 1,                    // corpus + stochastic-policy seed
//	 "jobs": 4,                    // parallelism cap (never changes the numbers)
//	 "timeout_ms": 250}            // per-inference budget inside the evaluation
//
// Response 200:
//
//	{"model_version": "8c6a…",
//	 "report": {
//	   "spec":    {"policy": "rl", "baseline": "costmodel", "oracle": "brute",
//	               "seed": 1, "suites": ["mibench", "polybench"], "files": 12, …},
//	   "overall": {"files": 12, "loops": 14, "mean_speedup": 1.32,
//	               "geomean_speedup": 1.28, "mean_oracle_speedup": 1.41,
//	               "mean_regret": 0.07, "agreement": 0.64},
//	   "suites":  [{"suite": "mibench", …}, {"suite": "polybench", …}],
//	   "files":   [{"suite": "mibench", "name": "crc32", "loops": 1,
//	                "baseline_cycles": 9041, "policy_cycles": 8120,
//	                "oracle_cycles": 8101, "speedup": 1.11,
//	                "oracle_speedup": 1.12, "regret": 0.002,
//	                "agreed_loops": 0}, …]}}
//
// Example:
//
//	curl 'localhost:8080/v1/eval?policy=rl&corpus=polybench&seed=1'
//	curl -d '{"policy": "rl", "corpus": "generated", "n": 32}' localhost:8080/v1/eval
//
// Evaluations are counted at /metrics as
// neurovec_eval_runs_total{policy="…",outcome="…"} and
// neurovec_eval_files_total{suite="…"}. Learned-policy embeddings are
// memoized across eval runs (keyed by model version + source hash), so
// repeated corpus evaluations — the regression-gate workload — are fast.
//
// # Training jobs
//
// POST /v1/train — start an asynchronous training job on the parallel
// pipeline (package neurovec/internal/trainer). The call returns
// immediately with a job id; one job runs at a time (a concurrent POST is a
// 409). Training runs on its own framework, so serving latency is
// unaffected apart from CPU contention.
//
// Request (all fields optional):
//
//	{"corpus": "generated",        // suites: polybench, mibench, figure7, tsvc, generated
//	 "n": 16,                      // generated-suite size (cap 256)
//	 "seed": 1,                    // fixes the run: equal specs train equal models
//	 "jobs": 4,                    // rollout parallelism (never changes the weights)
//	 "iterations": 10,             // PPO iterations (cap 200)
//	 "batch": 100,                 // rollouts per iteration (cap 2000)
//	 "lr": 0.0005,
//	 "checkpoint_every": 5,        // intermediate checkpoints (final always written)
//	 "eval_every": 5,              // interleaved learning-curve evaluation
//	 "eval_corpus": "figure7"}     // corpus it scores on (default: corpus)
//
// Response 202: {"id": "train-0001-ab12cd34", "state": "running"}
//
// GET /v1/train/{id} — progress, training curves (reward_mean, loss per
// iteration), and the interleaved learning curve (mean/geomean speedup over
// the baseline, oracle regret, decision agreement per eval point):
//
//	{"id": "train-0001-ab12cd34", "state": "succeeded",
//	 "request": {…}, "created_at": "…", "finished_at": "…",
//	 "iterations_done": 10, "iterations_total": 10, "steps": 1000,
//	 "units": 18, "reward_mean": [0.01, …], "loss": [0.82, …],
//	 "curve": [{"iteration": 5, "steps": 500, "mean_speedup": 1.21,
//	            "geomean_speedup": 1.18, "mean_regret": 0.09,
//	            "agreement": 0.55, …}, …],
//	 "model_version": "b01f…"}
//
// GET /v1/train lists every known job (newest first);
// POST /v1/train/{id}/cancel stops a running job at its next iteration
// boundary (state becomes "canceled").
//
// POST /v1/train/{id}/promote — hot-swap a succeeded job's checkpoint into
// serving through the same reload path as POST /v1/reload: no restart,
// in-flight requests finish on the old snapshot, and subsequent reloads
// re-read the promoted checkpoint.
//
// Response: {"previous_version": "8c6a…", "model_version": "b01f…"}
//
// Job checkpoints are written under Config.TrainDir (`serve -train-dir`; a
// temporary directory by default). Jobs are counted at /metrics as
// neurovec_train_jobs_total{outcome="started|succeeded|failed|canceled"}
// and neurovec_train_iterations_total.
//
// GET /v1/policies — discover the registered decision policies and whether
// this serving snapshot can run them.
//
// Response:
//
//	{"default": "rl", "model_version": "8c6a…",
//	 "policies": [{"name": "brute", "available": true},
//	              {"name": "nns", "available": false,
//	               "reason": "policy nns: … no loaded units to index …"}, …]}
//
// POST /v1/reload — re-read the checkpoint path and swap it in atomically.
//
// Response: {"previous_version": "8c6a…", "model_version": "b01f…"}
//
// GET /healthz — liveness plus the serving snapshot's identity.
//
// Response:
//
//	{"status": "ok", "model_version": "8c6a…", "model_path": "m.gob",
//	 "model_loaded_at": "2026-07-27T12:00:00Z", "uptime_seconds": 42.0,
//	 "workers": 8, "cache_entries": 17}
//
// GET /metrics — Prometheus text format: neurovec_requests_total,
// neurovec_request_duration_seconds histogram,
// neurovec_policy_requests_total{policy="…",outcome="…"},
// neurovec_cache_hits_total / neurovec_cache_misses_total /
// neurovec_cache_hit_ratio, neurovec_model_reloads_total,
// neurovec_embed_batches_total, neurovec_pool_rejected_total,
// neurovec_model_info{version="…"}.
//
// Errors are JSON ({"error": "…"}): 400 for malformed requests, unknown
// policy names, unsupported schema versions, or bad pins (a pin naming a
// loop the program does not contain, or off-action-space factors), 409 for
// policies this serving state cannot run (no trained agent, no corpus for
// the NNS index), 422 for programs that do not parse or contain no loops,
// 503 when the work queue is full, 504 when the request deadline expires on
// a policy that cannot answer early, 500 otherwise. Batched /v2/compile
// files report failures per response (the "error" field) instead of failing
// the batch.
//
// # Example
//
//	neurovec train -corpus generated -n 1000 -iters 30 -jobs 8 -out model.gob
//	neurovec serve -model model.gob -addr :8080 -timeout 30s &
//	curl -s localhost:8080/v1/policies
//	curl -s localhost:8080/v1/annotate \
//	     -d '{"source":"float a[1024]; void f() { for (int i = 0; i < 1024; i++) a[i] = a[i] * 2; }"}'
//	curl -s localhost:8080/v1/annotate \
//	     -d '{"source":"…", "policy":"brute", "timeout_ms": 100}'
//	curl -s localhost:8080/metrics | grep policy
//	curl -s -d '{"corpus":"generated","n":64,"iterations":20,"eval_every":5}' \
//	     localhost:8080/v1/train                              # retrain in-service…
//	curl -s localhost:8080/v1/train/train-0001-ab12cd34       # …watch the curves…
//	curl -s -X POST localhost:8080/v1/train/train-0001-ab12cd34/promote   # …swap it in
package service
