package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/rl"
)

// The test fixture trains one small model (and a retrained variant for
// hot-reload tests) once for the whole package.
var fixture struct {
	once   sync.Once
	err    error
	dir    string
	model1 string // checkpoint A
	model2 string // checkpoint B (retrained: different version)
	srcs   []string
}

func testFixture(t *testing.T) {
	t.Helper()
	fixture.once.Do(func() {
		dir, err := os.MkdirTemp("", "neurovec-service")
		if err != nil {
			fixture.err = err
			return
		}
		fixture.dir = dir
		cfg := core.DefaultConfig()
		cfg.Embed.OutDim = 48
		cfg.Embed.EmbedDim = 12
		cfg.Embed.MaxContexts = 40
		fw := core.New(cfg)
		if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 30, Seed: 1})); err != nil {
			fixture.err = err
			return
		}
		rc := rl.DefaultConfig(nil, nil)
		rc.Batch = 96
		rc.MiniBatch = 32
		rc.Iterations = 3
		rc.LR = 1e-3
		rc.Hidden = []int{32, 32}
		fw.Train(&rc)
		fixture.model1 = filepath.Join(dir, "model1.gob")
		if err := fw.SaveModelFile(fixture.model1); err != nil {
			fixture.err = err
			return
		}
		if _, err := fw.ContinueTraining(1); err != nil {
			fixture.err = err
			return
		}
		fixture.model2 = filepath.Join(dir, "model2.gob")
		if err := fw.SaveModelFile(fixture.model2); err != nil {
			fixture.err = err
			return
		}
		for _, s := range dataset.Generate(dataset.GenConfig{N: 4, Seed: 7}).Samples {
			fixture.srcs = append(fixture.srcs, s.Source)
		}
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
}

// referenceFramework loads a checkpoint the way the CLI's `annotate -load`
// does.
func referenceFramework(t *testing.T, path string) *core.Framework {
	t.Helper()
	fw := core.New(core.DefaultConfig())
	if err := fw.LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	return fw
}

// servingPath returns a checkpoint file the test may overwrite to simulate
// a retrain landing on disk.
func servingPath(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serving.gob")
	copyFile(t, fixture.model1, path)
	return path
}

func copyFile(t *testing.T, from, to string) {
	t.Helper()
	data, err := os.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(to, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do posts a JSON request and decodes the response.
func do(t *testing.T, s *Server, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var reader *strings.Reader
	if body == nil {
		reader = strings.NewReader("")
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = strings.NewReader(string(data))
	}
	req := httptest.NewRequest(method, path, reader)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestAnnotateMatchesCLIPathAndCaches(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	ref := referenceFramework(t, fixture.model1)
	src := fixture.srcs[0]

	wantAnnotated, wantDecisions, err := ref.AnnotateSource(context.Background(), src, nil)
	if err != nil {
		t.Fatal(err)
	}

	rec, body := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if got := rec.Header().Get("X-Neurovec-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	var resp AnnotateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Annotated != wantAnnotated {
		t.Fatalf("served annotation differs from CLI path:\n--- served ---\n%s\n--- cli ---\n%s",
			resp.Annotated, wantAnnotated)
	}
	if len(resp.Loops) != len(wantDecisions) {
		t.Fatalf("%d served decisions, CLI path has %d", len(resp.Loops), len(wantDecisions))
	}
	for i, d := range wantDecisions {
		if resp.Loops[i].Label != d.Label || resp.Loops[i].VF != d.VF || resp.Loops[i].IF != d.IF {
			t.Fatalf("decision %d: served %+v, CLI %+v", i, resp.Loops[i], d)
		}
	}
	if resp.ModelVersion != ref.ModelVersion() {
		t.Fatalf("served version %q, checkpoint %q", resp.ModelVersion, ref.ModelVersion())
	}
	if resp.Speedup <= 0 || resp.BaselineCycles <= 0 {
		t.Fatalf("bad speedup fields: %+v", resp)
	}

	// The repeat is a hit with a byte-identical body.
	rec2, body2 := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src})
	if rec2.Code != http.StatusOK || rec2.Header().Get("X-Neurovec-Cache") != "hit" {
		t.Fatalf("repeat: status %d cache %q", rec2.Code, rec2.Header().Get("X-Neurovec-Cache"))
	}
	if string(body2) != string(body) {
		t.Fatal("cache hit body differs from miss body")
	}

	// And /metrics agrees.
	_, mbody := do(t, s, "GET", "/metrics", nil)
	if !strings.Contains(string(mbody), "neurovec_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit:\n%s", mbody)
	}
	if !strings.Contains(string(mbody), `neurovec_requests_total{endpoint="/v1/annotate",code="200"} 2`) {
		t.Fatalf("metrics missing request count:\n%s", mbody)
	}
}

func TestEmbedEndpoint(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	ref := referenceFramework(t, fixture.model1)
	src := fixture.srcs[1]

	want, err := ref.EmbedSource(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, body := do(t, s, "POST", "/v1/embed", EmbedRequest{Source: src})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp EmbedResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dim != len(want) || len(resp.Vector) != len(want) {
		t.Fatalf("dim %d, want %d", resp.Dim, len(want))
	}
	for i := range want {
		if resp.Vector[i] != want[i] {
			t.Fatalf("vector[%d] = %v, want %v", i, resp.Vector[i], want[i])
		}
	}
	rec2, _ := do(t, s, "POST", "/v1/embed", EmbedRequest{Source: src})
	if rec2.Header().Get("X-Neurovec-Cache") != "hit" {
		t.Fatal("repeated embed not a cache hit")
	}
}

func TestSweepEndpoint(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	rec, body := do(t, s, "POST", "/v1/sweep", AnnotateRequest{Source: fixture.srcs[2]})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Speedup) != len(resp.VFs) {
		t.Fatalf("%d rows, %d VFs", len(resp.Speedup), len(resp.VFs))
	}
	for _, row := range resp.Speedup {
		if len(row) != len(resp.IFs) {
			t.Fatalf("%d cols, %d IFs", len(row), len(resp.IFs))
		}
	}
	if resp.Speedup[0][0] != 1 && resp.BaselineCycles <= 0 {
		t.Fatalf("suspicious sweep: %+v", resp)
	}
}

func TestHealthz(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	rec, body := do(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp HealthResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.ModelVersion == "" || resp.Workers < 1 {
		t.Fatalf("bad health: %+v", resp)
	}
}

func TestReloadSwapsVersion(t *testing.T) {
	testFixture(t)
	path := servingPath(t)
	s := newTestServer(t, Config{ModelPath: path})
	v1 := s.ModelVersion()

	// A retrained checkpoint lands on disk; reload must swap it in.
	copyFile(t, fixture.model2, path)
	rec, body := do(t, s, "POST", "/v1/reload", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp ReloadResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PreviousVersion != v1 || resp.ModelVersion == v1 || resp.ModelVersion == "" {
		t.Fatalf("reload versions: %+v (had %s)", resp, v1)
	}
	if s.ModelVersion() != resp.ModelVersion {
		t.Fatal("server not serving the reloaded version")
	}

	// Responses now come from the new model version.
	rec2, body2 := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: fixture.srcs[0]})
	if rec2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec2.Code, body2)
	}
	var aresp AnnotateResponse
	if err := json.Unmarshal(body2, &aresp); err != nil {
		t.Fatal(err)
	}
	if aresp.ModelVersion != resp.ModelVersion {
		t.Fatalf("annotate served %q after reload to %q", aresp.ModelVersion, resp.ModelVersion)
	}
}

func TestReloadBadCheckpointKeepsServing(t *testing.T) {
	testFixture(t)
	path := servingPath(t)
	s := newTestServer(t, Config{ModelPath: path})
	v1 := s.ModelVersion()

	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, _ := do(t, s, "POST", "/v1/reload", nil)
	if rec.Code == http.StatusOK {
		t.Fatal("reload of corrupt checkpoint succeeded")
	}
	if s.ModelVersion() != v1 {
		t.Fatal("corrupt reload changed the serving model")
	}
	rec2, _ := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: fixture.srcs[0]})
	if rec2.Code != http.StatusOK {
		t.Fatal("server stopped serving after failed reload")
	}
}

func TestRequestErrors(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	req := httptest.NewRequest("POST", "/v1/annotate", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", rec.Code)
	}

	rec2, _ := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: "int x;"})
	if rec2.Code != http.StatusUnprocessableEntity {
		t.Fatalf("no-loop source: status %d, want 422", rec2.Code)
	}

	rec3, _ := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: "for (("})
	if rec3.Code != http.StatusUnprocessableEntity {
		t.Fatalf("parse error: status %d, want 422", rec3.Code)
	}

	// Every endpoint must classify a loop-free program the same way.
	rec4, _ := do(t, s, "POST", "/v1/embed", EmbedRequest{Source: "int x;"})
	if rec4.Code != http.StatusUnprocessableEntity {
		t.Fatalf("embed no-loop source: status %d, want 422", rec4.Code)
	}
	rec5, _ := do(t, s, "POST", "/v1/sweep", AnnotateRequest{Source: "int x;"})
	if rec5.Code != http.StatusUnprocessableEntity {
		t.Fatalf("sweep no-loop source: status %d, want 422", rec5.Code)
	}
}

// TestConcurrentAnnotateWithReload is the -race acceptance test: parallel
// /v1/annotate traffic mixing cache hits and misses while checkpoints are
// hot-reloaded mid-flight. Every response must be a 200 whose annotation
// matches the golden output for whichever model version served it.
func TestConcurrentAnnotateWithReload(t *testing.T) {
	testFixture(t)
	path := servingPath(t)
	// An explicit queue depth keeps the test deterministic on single-core
	// machines, where the default (4x GOMAXPROCS) could shed this load.
	s := newTestServer(t, Config{ModelPath: path, QueueDepth: 64})

	// Golden annotations per model version.
	golden := make(map[string]map[string]string) // version -> source -> annotated
	for _, mp := range []string{fixture.model1, fixture.model2} {
		ref := referenceFramework(t, mp)
		m := make(map[string]string, len(fixture.srcs))
		for _, src := range fixture.srcs {
			annotated, _, err := ref.AnnotateSource(context.Background(), src, nil)
			if err != nil {
				t.Fatal(err)
			}
			m[src] = annotated
		}
		golden[ref.ModelVersion()] = m
	}

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				src := fixture.srcs[(w+r)%len(fixture.srcs)]
				rec, body := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src})
				if rec.Code != http.StatusOK {
					t.Errorf("worker %d: status %d: %s", w, rec.Code, body)
					return
				}
				var resp AnnotateResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				m, ok := golden[resp.ModelVersion]
				if !ok {
					t.Errorf("worker %d: unknown model version %q", w, resp.ModelVersion)
					return
				}
				if resp.Annotated != m[src] {
					t.Errorf("worker %d: annotation does not match golden for version %s", w, resp.ModelVersion)
					return
				}
			}
		}(w)
	}

	// Hot-reload between the two checkpoints while traffic is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			from := fixture.model1
			if i%2 == 0 {
				from = fixture.model2
			}
			copyFile(t, from, path)
			rec, body := do(t, s, "POST", "/v1/reload", nil)
			if rec.Code != http.StatusOK {
				t.Errorf("reload %d: status %d: %s", i, rec.Code, body)
				return
			}
		}
	}()
	wg.Wait()

	// Sanity: traffic actually exercised both hit and miss paths.
	hits, misses := s.metrics.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("want mixed cache traffic, got hits=%d misses=%d", hits, misses)
	}
}

// TestAnnotatePolicySelection checks the tentpole acceptance criterion at
// the HTTP layer: the policy request field selects the decision method, and
// responses are cached under policy-aware keys (the same source under two
// policies is two cache entries, not one).
func TestAnnotatePolicySelection(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	src := fixture.srcs[0]

	for _, polName := range []string{"rl", "costmodel", "brute", "random", "polly"} {
		rec, body := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src, Policy: polName})
		if rec.Code != http.StatusOK {
			t.Fatalf("policy %s: status %d: %s", polName, rec.Code, body)
		}
		if got := rec.Header().Get("X-Neurovec-Cache"); got != "miss" {
			t.Fatalf("policy %s: first request cache header %q, want miss (policy must be part of the key)", polName, got)
		}
		var resp AnnotateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Policy != polName {
			t.Fatalf("served policy %q, requested %q", resp.Policy, polName)
		}
		if len(resp.Loops) == 0 || !strings.Contains(resp.Annotated, "#pragma") {
			t.Fatalf("policy %s: empty decision set: %+v", polName, resp)
		}
		// The repeat must hit the policy-specific entry.
		rec2, _ := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src, Policy: polName})
		if rec2.Header().Get("X-Neurovec-Cache") != "hit" {
			t.Fatalf("policy %s: repeat was not a cache hit", polName)
		}
	}

	// Per-policy metrics recorded one computed decision each.
	_, mbody := do(t, s, "GET", "/metrics", nil)
	for _, polName := range []string{"rl", "costmodel", "brute", "random", "polly"} {
		want := fmt.Sprintf("neurovec_policy_requests_total{policy=%q,outcome=\"ok\"} 1", polName)
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics missing %s:\n%s", want, mbody)
		}
	}
}

func TestAnnotatePolicyErrors(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	src := fixture.srcs[0]

	// Unknown policy: client error.
	rec, body := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src, Policy: "quantum"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown policy: status %d (%s), want 400", rec.Code, body)
	}
	// nns needs a labelled corpus the checkpoint-only server cannot supply:
	// conflict with serving state.
	rec2, body2 := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src, Policy: "nns"})
	if rec2.Code != http.StatusConflict {
		t.Fatalf("nns without corpus: status %d (%s), want 409", rec2.Code, body2)
	}
}

func TestPoliciesEndpoint(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	rec, body := do(t, s, "GET", "/v1/policies", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp PoliciesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Default != "rl" || resp.ModelVersion == "" {
		t.Fatalf("bad discovery response: %+v", resp)
	}
	status := map[string]PolicyStatus{}
	for _, p := range resp.Policies {
		status[p.Name] = p
	}
	for _, name := range []string{"rl", "costmodel", "brute", "random", "polly"} {
		if !status[name].Available {
			t.Fatalf("policy %s unavailable on a loaded checkpoint: %+v", name, status[name])
		}
	}
	if nns := status["nns"]; nns.Available || nns.Reason == "" {
		t.Fatalf("nns must list unavailable with a reason on a checkpoint-only server: %+v", nns)
	}
}

func TestSweepPolicyOverlay(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	rec, body := do(t, s, "POST", "/v1/sweep", AnnotateRequest{Source: fixture.srcs[2], Policy: "costmodel"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Policy != "costmodel" || resp.ChosenVF == 0 || resp.ChosenIF == 0 {
		t.Fatalf("sweep missing policy overlay: %+v", resp)
	}
	found := false
	for _, vf := range resp.VFs {
		if vf == resp.ChosenVF {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen VF %d not in grid %v", resp.ChosenVF, resp.VFs)
	}
}

// TestRequestTimeout checks the configurable per-request deadline: with a
// vanishingly small budget the default (rl) pipeline fails with 504, while
// the deadline-aware brute policy degrades to a truncated 200 that must not
// be cached.
func TestRequestTimeout(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1, RequestTimeout: time.Nanosecond})
	src := fixture.srcs[0]

	rec, body := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("rl under 1ns deadline: status %d (%s), want 504", rec.Code, body)
	}

	// A per-request timeout_ms may shorten a generous server budget but the
	// brute policy still answers, flagged truncated and uncached.
	s2 := newTestServer(t, Config{ModelPath: fixture.model1, RequestTimeout: time.Minute})
	req := AnnotateRequest{Source: src, Policy: "brute", TimeoutMS: 1}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec2, body2 := do(t, s2, "POST", "/v1/annotate", req)
		if rec2.Code != http.StatusOK {
			t.Fatalf("brute under deadline: status %d (%s), want 200", rec2.Code, body2)
		}
		var resp AnnotateResponse
		if err := json.Unmarshal(body2, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Truncated {
			if rec2.Header().Get("X-Neurovec-Cache") != "miss" {
				t.Fatal("truncated response served from cache")
			}
			// A truncated answer must not poison the cache for later, more
			// patient clients.
			rec3, _ := do(t, s2, "POST", "/v1/annotate", AnnotateRequest{Source: src, Policy: "brute"})
			if rec3.Header().Get("X-Neurovec-Cache") == "hit" {
				t.Fatal("full-budget request hit a truncated cache entry")
			}
			return
		}
		// The machine finished the whole grid inside 1ms; try a fresh
		// source to avoid the now-cached complete answer.
		if time.Now().After(deadline) {
			t.Skip("grid repeatedly completed within 1ms; truncation unobservable on this machine")
		}
		src += "\n// retry\n"
		req.Source = src
	}
}

// TestEmbedBatchCoalescing checks that concurrent embed requests are served
// through shared batches.
func TestEmbedBatchCoalescing(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1, QueueDepth: 64})
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct sources so every request misses the cache.
			src := fixture.srcs[i%len(fixture.srcs)]
			src = src + fmt.Sprintf("\n// variant %d\n", i)
			rec, body := do(t, s, "POST", "/v1/embed", EmbedRequest{Source: src})
			if rec.Code != http.StatusOK {
				t.Errorf("embed %d: status %d: %s", i, rec.Code, body)
			}
		}(i)
	}
	wg.Wait()
	_, mbody := do(t, s, "GET", "/metrics", nil)
	text := string(mbody)
	if !strings.Contains(text, fmt.Sprintf("neurovec_embed_batched_requests_total %d", n)) {
		t.Fatalf("metrics missing %d batched embeds:\n%s", n, text)
	}
}

func TestEvalEndpoint(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	type evalReport struct {
		ModelVersion string `json:"model_version"`
		Report       struct {
			Spec struct {
				Policy   string `json:"policy"`
				Baseline string `json:"baseline"`
				Seed     int64  `json:"seed"`
			} `json:"spec"`
			Overall struct {
				Files             int     `json:"files"`
				MeanSpeedup       float64 `json:"mean_speedup"`
				MeanOracleSpeedup float64 `json:"mean_oracle_speedup"`
				MeanRegret        float64 `json:"mean_regret"`
			} `json:"overall"`
			Suites []struct {
				Suite string `json:"suite"`
				Files int    `json:"files"`
			} `json:"suites"`
			Timing *struct{} `json:"timing"`
		} `json:"report"`
	}

	rec, body := do(t, s, "POST", "/v1/eval", map[string]any{
		"policy": "rl", "corpus": "generated", "n": 4, "seed": 7, "jobs": 2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/eval: %d %s", rec.Code, body)
	}
	var resp evalReport
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != s.ModelVersion() {
		t.Errorf("model_version = %q, want %q", resp.ModelVersion, s.ModelVersion())
	}
	if resp.Report.Spec.Policy != "rl" || resp.Report.Spec.Baseline != "costmodel" || resp.Report.Spec.Seed != 7 {
		t.Errorf("spec = %+v", resp.Report.Spec)
	}
	if resp.Report.Overall.Files != 4 || resp.Report.Overall.MeanSpeedup <= 0 {
		t.Errorf("overall = %+v", resp.Report.Overall)
	}
	if len(resp.Report.Suites) != 1 || resp.Report.Suites[0].Suite != "generated" {
		t.Errorf("suites = %+v", resp.Report.Suites)
	}
	if resp.Report.Timing != nil {
		t.Error("service report leaked the volatile timing block")
	}

	// Identical spec → cache hit with byte-identical body.
	rec2, body2 := do(t, s, "POST", "/v1/eval", map[string]any{
		"policy": "rl", "corpus": "generated", "n": 4, "seed": 7, "jobs": 2,
	})
	if rec2.Code != http.StatusOK || rec2.Header().Get("X-Neurovec-Cache") != "hit" {
		t.Fatalf("repeat eval: code %d cache %q", rec2.Code, rec2.Header().Get("X-Neurovec-Cache"))
	}
	if string(body) != string(body2) {
		t.Error("cached eval body differs from fresh body")
	}

	// GET with the same spec (different jobs) must return the same numbers.
	rec3, body3 := do(t, s, "GET", "/v1/eval?policy=rl&corpus=generated&n=4&seed=7&jobs=1", nil)
	if rec3.Code != http.StatusOK {
		t.Fatalf("GET /v1/eval: %d %s", rec3.Code, body3)
	}
	var resp3 evalReport
	if err := json.Unmarshal(body3, &resp3); err != nil {
		t.Fatal(err)
	}
	if resp3.Report.Overall != resp.Report.Overall {
		t.Errorf("GET numbers %+v != POST numbers %+v", resp3.Report.Overall, resp.Report.Overall)
	}

	// The harness should have populated the shared embedding cache, and the
	// eval metrics should be exposed.
	if s.evalEmbeds.Len() == 0 {
		t.Error("eval left the shared embedding cache empty")
	}
	recM, metricsBody := do(t, s, "GET", "/metrics", nil)
	if recM.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", recM.Code)
	}
	for _, want := range []string{
		`neurovec_eval_runs_total{policy="rl",outcome="ok"} `,
		`neurovec_eval_files_total{suite="generated"} `,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestEvalEndpointErrors(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, _ := do(t, s, "POST", "/v1/eval", map[string]any{"policy": "no-such"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown policy: %d, want 400", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/v1/eval", map[string]any{"corpus": "bogus"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown corpus: %d, want 400", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/v1/eval", map[string]any{"n": 100000})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized corpus: %d, want 400", rec.Code)
	}
	rec, _ = do(t, s, "GET", "/v1/eval?seed=notanumber", nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad query param: %d, want 400", rec.Code)
	}
	// nns needs a loaded corpus the checkpoint cannot carry: 409.
	rec, _ = do(t, s, "POST", "/v1/eval", map[string]any{"policy": "nns", "n": 2})
	if rec.Code != http.StatusConflict {
		t.Errorf("nns on checkpoint-only server: %d, want 409", rec.Code)
	}
}

func TestEvalShedsWhenBusy(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	// Occupy the single eval slot; a concurrent eval must shed with 503
	// rather than stack a second harness pool on the CPU.
	s.evalSem <- struct{}{}
	defer func() { <-s.evalSem }()
	rec, body := do(t, s, "POST", "/v1/eval", map[string]any{"policy": "costmodel", "n": 2})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("busy eval: %d %s, want 503", rec.Code, body)
	}
}

func TestEvalBaselineErrorNotChargedToPolicy(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	rec, _ := do(t, s, "POST", "/v1/eval", map[string]any{"policy": "costmodel", "baseline": "nope", "n": 2})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad baseline: %d, want 400", rec.Code)
	}
	_, metricsBody := do(t, s, "GET", "/metrics", nil)
	if strings.Contains(string(metricsBody), `neurovec_eval_runs_total{policy="costmodel",outcome="error"} 1`) {
		t.Error("baseline resolution failure was charged to the evaluated policy's error counter")
	}
}

// TestReadyz checks the readiness probe: 200 with the serving version while
// accepting work, 503 once the server is draining, and back to 200 when the
// drain is lifted. Liveness (/healthz) stays 200 throughout — that split is
// what lets a router drain a replica without restarting it.
func TestReadyz(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, body := do(t, s, "GET", "/readyz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ready server /readyz status %d: %s", rec.Code, body)
	}
	var resp ReadyzResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ready" || resp.ModelVersion != s.ModelVersion() {
		t.Errorf("readyz %+v, want ready with version %s", resp, s.ModelVersion())
	}

	s.SetDraining(true)
	if !s.Draining() {
		t.Fatal("Draining() false after SetDraining(true)")
	}
	rec, body = do(t, s, "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server /readyz status %d, want 503: %s", rec.Code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "draining" {
		t.Errorf("draining readyz status %q", resp.Status)
	}
	// Liveness is unaffected; compute endpoints keep serving too.
	if rec, body := do(t, s, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("draining server /healthz status %d: %s", rec.Code, body)
	}
	if rec, body := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: fixture.srcs[0]}); rec.Code != http.StatusOK {
		t.Errorf("draining server annotate status %d: %s", rec.Code, body)
	}

	s.SetDraining(false)
	if rec, _ := do(t, s, "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("undrained server /readyz status %d", rec.Code)
	}
}
