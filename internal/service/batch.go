package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// embedJob is one /v1/embed request waiting to be coalesced into a batch.
// The handler pins the model snapshot at enqueue time so the computed vector
// always matches the model_version and cache key the response reports, even
// when a hot-reload lands while the job is queued. A job whose client has
// gone away is marked canceled and skipped.
type embedJob struct {
	source   string
	m        *model
	vec      []float64
	err      error
	done     chan struct{}
	canceled atomic.Bool
}

// batcher coalesces embedding requests: the collector goroutine takes the
// first waiting job, then keeps gathering until the batch is full or the
// linger window expires, and hands the whole batch to process in one call.
// Under load this amortizes worker-pool scheduling across many requests and
// keeps the embedding hot path on one core's caches; an idle service pays at
// most the linger latency.
type batcher struct {
	jobs     chan *embedJob
	maxBatch int
	wait     time.Duration
	process  func([]*embedJob)
	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// newBatcher starts the collector. maxBatch <= 0 defaults to 16; wait <= 0
// defaults to 2ms.
func newBatcher(maxBatch int, wait time.Duration, process func([]*embedJob)) *batcher {
	if maxBatch <= 0 {
		maxBatch = 16
	}
	if wait <= 0 {
		wait = 2 * time.Millisecond
	}
	b := &batcher{
		jobs:     make(chan *embedJob, 4*maxBatch),
		maxBatch: maxBatch,
		wait:     wait,
		process:  process,
		stop:     make(chan struct{}),
	}
	b.wg.Add(1)
	go b.collect()
	return b
}

// enqueue submits a job, failing fast when the intake queue is full.
func (b *batcher) enqueue(j *embedJob) error {
	select {
	case b.jobs <- j:
		return nil
	default:
		return ErrOverloaded
	}
}

func (b *batcher) collect() {
	defer b.wg.Done()
	for {
		var first *embedJob
		select {
		case first = <-b.jobs:
		case <-b.stop:
			b.drain(nil)
			return
		}
		batch := []*embedJob{first}
		timer := time.NewTimer(b.wait)
		for len(batch) < b.maxBatch {
			select {
			case j := <-b.jobs:
				batch = append(batch, j)
				continue
			case <-timer.C:
			case <-b.stop:
			}
			break
		}
		timer.Stop()
		// Dispatch asynchronously so the collector can gather the next batch
		// while this one computes — batches from a sustained stream run in
		// parallel across the worker pool instead of serializing on one core.
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.process(batch)
		}()
	}
}

// drain fails any jobs still queued at shutdown.
func (b *batcher) drain(batch []*embedJob) {
	for {
		select {
		case j := <-b.jobs:
			batch = append(batch, j)
		default:
			if len(batch) > 0 {
				b.process(batch)
			}
			return
		}
	}
}

// close stops the collector; queued jobs are still processed.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	b.wg.Wait()
}
