package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"neurovec/internal/api"
)

// The /v2/compile tests cover the three request forms (single, Batch
// envelope, NDJSON stream), pins, version validation, the v1↔v2 shim
// parity contract, and the per-loop caches.

func postCompile(t *testing.T, s *Server, body string, contentType string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v2/compile", strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestCompileSingle(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	src := fixture.srcs[0]

	rec, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: src, File: "a.c"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp api.CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != api.Version {
		t.Errorf("version %d, want %d", resp.Version, api.Version)
	}
	if resp.File != "a.c" {
		t.Errorf("file %q not echoed", resp.File)
	}
	if resp.Policy != "rl" || resp.ModelVersion == "" {
		t.Errorf("policy %q model %q", resp.Policy, resp.ModelVersion)
	}
	if len(resp.Loops) == 0 {
		t.Fatal("no per-loop decisions")
	}
	for _, d := range resp.Loops {
		if d.Loop == "" {
			t.Errorf("loop %s: empty LoopID", d.Label)
		}
		if d.Provenance.Origin != api.OriginPolicy || d.Provenance.Policy != "rl" {
			t.Errorf("loop %s: provenance %+v", d.Label, d.Provenance)
		}
	}

	// Explicit version 2 is accepted; anything else is a 400.
	rec, _ = do(t, s, "POST", "/v2/compile", api.CompileRequest{Version: 2, Source: src})
	if rec.Code != http.StatusOK {
		t.Errorf("explicit version 2: status %d", rec.Code)
	}
	rec, body = do(t, s, "POST", "/v2/compile", api.CompileRequest{Version: 1, Source: src})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("version 1: status %d body %s", rec.Code, body)
	}
}

func TestCompileMatchesV1Annotate(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	for _, src := range fixture.srcs {
		_, b1 := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: src})
		var v1 AnnotateResponse
		if err := json.Unmarshal(b1, &v1); err != nil {
			t.Fatal(err)
		}
		_, b2 := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: src})
		var v2 api.CompileResponse
		if err := json.Unmarshal(b2, &v2); err != nil {
			t.Fatal(err)
		}
		if v1.Annotated != v2.Annotated {
			t.Fatalf("annotated source differs between v1 and v2 for:\n%s", src)
		}
		if len(v1.Loops) != len(v2.Loops) {
			t.Fatalf("loop counts differ: v1 %d, v2 %d", len(v1.Loops), len(v2.Loops))
		}
		for i := range v1.Loops {
			l1, l2 := v1.Loops[i], v2.Loops[i]
			if l1.LoopID != string(l2.Loop) || l1.Label != l2.Label ||
				l1.VF != l2.VF || l1.IF != l2.IF || l1.Cycles != l2.Cycles {
				t.Errorf("loop %d differs: v1 %+v, v2 %+v", i, l1, l2)
			}
		}
		if v1.BaselineCycles != v2.BaselineCycles || v1.PredictedCycles != v2.PredictedCycles ||
			v1.Speedup != v2.Speedup {
			t.Errorf("aggregates differ: v1 %+v, v2 %+v", v1, v2)
		}
	}
}

func TestCompilePins(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	src := fixture.srcs[0]

	// Learn the loop ids from an unpinned compile first.
	_, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: src})
	var free api.CompileResponse
	if err := json.Unmarshal(body, &free); err != nil {
		t.Fatal(err)
	}
	target := free.Loops[0]

	pin := api.Pin{Loop: target.Loop, VF: 2, IF: 2}
	rec, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: src, Pins: []api.Pin{pin}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var pinned api.CompileResponse
	if err := json.Unmarshal(body, &pinned); err != nil {
		t.Fatal(err)
	}
	got := pinned.Loops[0]
	if got.VF != 2 || got.IF != 2 || got.Provenance.Origin != api.OriginPin {
		t.Errorf("pinned loop: %+v", got)
	}
	for _, d := range pinned.Loops[1:] {
		if d.Provenance.Origin != api.OriginPolicy {
			t.Errorf("unpinned loop %s origin %q", d.Label, d.Provenance.Origin)
		}
	}

	// A pin addressing a nonexistent loop is the client's fault: 400.
	rec, body = do(t, s, "POST", "/v2/compile", api.CompileRequest{
		Source: src, Pins: []api.Pin{{Loop: "feedfacefeedface", VF: 2, IF: 2}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown pin: status %d body %s", rec.Code, body)
	}
	// Off-action-space factors likewise.
	rec, body = do(t, s, "POST", "/v2/compile", api.CompileRequest{
		Source: src, Pins: []api.Pin{{Loop: target.Loop, VF: 3, IF: 2}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("off-space pin: status %d body %s", rec.Code, body)
	}
}

func TestCompileBatchEnvelope(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1, QueueDepth: 64})

	reqs := []api.CompileRequest{
		{File: "a.c", Source: fixture.srcs[0]},
		{File: "broken.c", Source: "void f( {"},
		{File: "b.c", Source: fixture.srcs[1]},
	}
	rec, body := do(t, s, "POST", "/v2/compile", api.Batch{Requests: reqs})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var batch api.BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(batch.Responses), len(reqs))
	}
	for i, resp := range batch.Responses {
		if resp.File != reqs[i].File {
			t.Errorf("response %d: file %q, want %q (order not preserved?)", i, resp.File, reqs[i].File)
		}
	}
	if batch.Responses[1].Error == "" {
		t.Error("broken file did not carry an error")
	}
	if batch.Responses[0].Error != "" || batch.Responses[2].Error != "" {
		t.Errorf("good files carry errors: %q / %q", batch.Responses[0].Error, batch.Responses[2].Error)
	}
	// Batched answers equal single-request answers.
	_, single := do(t, s, "POST", "/v2/compile", reqs[0])
	var want api.CompileResponse
	if err := json.Unmarshal(single, &want); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses[0].Loops) != len(want.Loops) {
		t.Fatal("batched loop count differs from single request")
	}
	for i := range want.Loops {
		if batch.Responses[0].Loops[i] != want.Loops[i] {
			t.Errorf("loop %d differs between batch and single: %+v vs %+v",
				i, batch.Responses[0].Loops[i], want.Loops[i])
		}
	}

	rec, _ = do(t, s, "POST", "/v2/compile", api.Batch{Version: 1, Requests: reqs})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("version-1 batch: status %d", rec.Code)
	}
}

func TestCompileBatchLargerThanQueueDoesNotShed(t *testing.T) {
	testFixture(t)
	// Default pool sizing (workers = GOMAXPROCS, queue = 4x workers): a
	// batch far wider than the queue must still compile every file, because
	// the envelope path bounds its in-flight fan-out instead of dumping the
	// whole batch on the queue at once.
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	n := s.pool.Workers()*8 + 16
	reqs := make([]api.CompileRequest, n)
	for i := range reqs {
		reqs[i] = api.CompileRequest{Source: fixture.srcs[i%len(fixture.srcs)]}
	}
	rec, body := do(t, s, "POST", "/v2/compile", api.Batch{Requests: reqs})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var batch api.BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	for i, resp := range batch.Responses {
		if resp.Error != "" {
			t.Fatalf("response %d shed with %q on an otherwise idle server", i, resp.Error)
		}
	}
}

func TestCompileNDJSONStream(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1, QueueDepth: 64})

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	files := []string{"a.c", "b.c", "c.c"}
	for i, f := range files {
		if err := enc.Encode(api.CompileRequest{File: f, Source: fixture.srcs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	rec := postCompile(t, s, in.String(), "application/x-ndjson")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != len(files) {
		t.Fatalf("%d response lines for %d requests:\n%s", len(lines), len(files), rec.Body.String())
	}
	for i, line := range lines {
		var resp api.CompileResponse
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if resp.File != files[i] {
			t.Errorf("line %d: file %q, want %q (stream order broken)", i, resp.File, files[i])
		}
		if resp.Error != "" {
			t.Errorf("line %d: error %q", i, resp.Error)
		}
		// Streamed decisions equal the v1 annotate answer for the same file.
		_, b1 := do(t, s, "POST", "/v1/annotate", AnnotateRequest{Source: fixture.srcs[i]})
		var v1 AnnotateResponse
		if err := json.Unmarshal(b1, &v1); err != nil {
			t.Fatal(err)
		}
		if v1.Annotated != resp.Annotated {
			t.Errorf("line %d: annotated output differs from v1", i)
		}
		for j := range v1.Loops {
			d := resp.Loops[j]
			if v1.Loops[j].VF != d.VF || v1.Loops[j].IF != d.IF || v1.Loops[j].LoopID != string(d.Loop) {
				t.Errorf("line %d loop %d: v1 %+v vs v2 %+v", i, j, v1.Loops[j], d)
			}
		}
	}

	// A malformed line yields an error response line, not a dead stream.
	mixed := `{"file":"bad.c","source":` + "\n" + mustLine(t, api.CompileRequest{File: "ok.c", Source: fixture.srcs[0]})
	rec = postCompile(t, s, mixed, "application/x-ndjson")
	lines = strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2:\n%s", len(lines), rec.Body.String())
	}
	var bad, ok api.CompileResponse
	if err := json.Unmarshal([]byte(lines[0]), &bad); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ok); err != nil {
		t.Fatal(err)
	}
	if bad.Error == "" {
		t.Error("malformed line did not produce an error response")
	}
	if ok.Error != "" || ok.File != "ok.c" {
		t.Errorf("well-formed line after a bad one failed: %+v", ok)
	}
}

func mustLine(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCompileLoopCacheSurvivesWhitespaceEdits(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	src := fixture.srcs[0]

	_, b1 := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: src})
	var first api.CompileResponse
	if err := json.Unmarshal(b1, &first); err != nil {
		t.Fatal(err)
	}
	if n := s.loops.decisions.Len(); n != len(first.Loops) {
		t.Fatalf("decision cache holds %d entries after first compile, want %d", n, len(first.Loops))
	}

	// A comment edit changes the bytes (response cache misses) but not the
	// LoopIDs, so decisions must come from the per-loop cache — same
	// factors, no new cache entries.
	edited := "// cosmetic edit\n" + src
	rec, b2 := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: edited})
	if rec.Header().Get("X-Neurovec-Cache") != "miss" {
		t.Fatal("edited source unexpectedly hit the byte-level response cache")
	}
	var second api.CompileResponse
	if err := json.Unmarshal(b2, &second); err != nil {
		t.Fatal(err)
	}
	if n := s.loops.decisions.Len(); n != len(first.Loops) {
		t.Errorf("decision cache grew to %d entries on a whitespace edit", n)
	}
	for i := range first.Loops {
		f, g := first.Loops[i], second.Loops[i]
		if f.Loop != g.Loop || f.VF != g.VF || f.IF != g.IF {
			t.Errorf("loop %d: decision changed across whitespace edit: %+v vs %+v", i, f, g)
		}
	}
}

func TestCompileRequestBodyLimit(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1, MaxRequestBytes: 256})
	big := strings.Repeat("x", 1024)
	rec, _ := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: big})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}
}

func TestCompileCachedAcrossIdenticalRequests(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})
	src := fixture.srcs[0]
	req := api.CompileRequest{Source: src, File: "x.c"}
	rec1, b1 := do(t, s, "POST", "/v2/compile", req)
	if rec1.Header().Get("X-Neurovec-Cache") != "miss" {
		t.Fatal("first request should miss")
	}
	rec2, b2 := do(t, s, "POST", "/v2/compile", req)
	if rec2.Header().Get("X-Neurovec-Cache") != "hit" {
		t.Fatal("identical repeat should hit")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache hit body differs from miss body")
	}
	// Same source with a pin must not be served the unpinned cache entry.
	var free api.CompileResponse
	if err := json.Unmarshal(b1, &free); err != nil {
		t.Fatal(err)
	}
	rec3, b3 := do(t, s, "POST", "/v2/compile", api.CompileRequest{
		Source: src, File: "x.c", Pins: []api.Pin{{Loop: free.Loops[0].Loop, VF: 1, IF: 1}},
	})
	if rec3.Header().Get("X-Neurovec-Cache") != "miss" {
		t.Fatal("pinned request was served the unpinned cached response")
	}
	var pinned api.CompileResponse
	if err := json.Unmarshal(b3, &pinned); err != nil {
		t.Fatal(err)
	}
	if pinned.Loops[0].VF != 1 || pinned.Loops[0].IF != 1 {
		t.Errorf("pin ignored: %+v", pinned.Loops[0])
	}
}

// TestCompileNDJSONRequestID checks that every line of an NDJSON stream (and
// every batch-envelope item) echoes the request's X-Request-ID — preferring a
// client-supplied inbound header over a regenerated one — and that cache hits
// carry the hitting request's ID, not the ID of the request that populated
// the cache.
func TestCompileNDJSONRequestID(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1, QueueDepth: 64})

	line := mustLine(t, api.CompileRequest{File: "a.c", Source: fixture.srcs[0]}) + "\n"
	stream := func(id string) api.CompileResponse {
		req := httptest.NewRequest("POST", "/v2/compile", strings.NewReader(line))
		req.Header.Set("Content-Type", "application/x-ndjson")
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		var resp api.CompileResponse
		if err := json.Unmarshal([]byte(strings.TrimSpace(rec.Body.String())), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if got := stream("client-chose-this").RequestID; got != "client-chose-this" {
		t.Errorf("NDJSON line request_id %q, want the inbound header", got)
	}
	// Same file again: a response-cache hit must carry the new request's ID.
	if got := stream("second-request").RequestID; got != "second-request" {
		t.Errorf("cached NDJSON line request_id %q, want second-request", got)
	}
	// Without an inbound header the edge generates one and echoes it.
	if got := stream("").RequestID; got == "" {
		t.Error("NDJSON line carries no request_id without an inbound header")
	}

	// Batch-envelope items share the same discipline.
	body := mustLine(t, api.Batch{Requests: []api.CompileRequest{
		{File: "a.c", Source: fixture.srcs[0]},
		{File: "b.c", Source: fixture.srcs[1]},
	}})
	req := httptest.NewRequest("POST", "/v2/compile", strings.NewReader(body))
	req.Header.Set("X-Request-ID", "batch-id")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var batch api.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	for i, item := range batch.Responses {
		if item.RequestID != "batch-id" {
			t.Errorf("batch item %d request_id %q, want batch-id", i, item.RequestID)
		}
	}
}
