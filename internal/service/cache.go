package service

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU of rendered responses. Keys embed the model
// version (see Server.cacheKey), so a hot-reload does not need an explicit
// flush: entries for the old version stop being asked for and age out.
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns an LRU holding at most capacity entries. A capacity of 0
// or less disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when over capacity. The value is stored as-is; callers must not mutate it
// afterwards.
func (c *Cache) Put(key string, val []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
