package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	defer p.Close()

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				<-gate
				cur.Add(-1)
			})
		}()
	}
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool size %d", got, workers)
	}
}

func TestPoolOverload(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() { close(started); <-block })
	<-started

	// Fill the one queue slot synchronously: a pre-canceled context makes Do
	// enqueue, then return immediately while the job keeps its slot.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Do(ctx, func() {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("queue-filling Do: %v", err)
	}

	// Worker busy and queue full: the next submit must shed.
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	close(block)
}

func TestPoolContextCancelSkipsQueuedJob(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() { close(started); <-block })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	done := make(chan error, 1)
	go func() { done <- p.Do(ctx, func() { ran.Store(true) }) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block)
	p.Close() // waits for workers, so the skipped job would have run by now
	if ran.Load() {
		t.Fatal("canceled queued job still ran")
	}
}
