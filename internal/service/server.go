package service

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"neurovec/internal/api"
	"neurovec/internal/core"
	"neurovec/internal/evalharness"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/obs"
	obslog "neurovec/internal/obs/log"
	"neurovec/internal/policy"
)

// Config tunes the server. The zero value of every optional field picks a
// production default.
type Config struct {
	// ModelPath is the checkpoint (written by `neurovec train -out`) to
	// serve; it is re-read on every hot-reload. Required.
	ModelPath string
	// Core overrides the base framework configuration (architecture,
	// simulator). Nil means core.DefaultConfig(). The embedding
	// configuration always comes from the checkpoint header.
	Core *core.Config
	// CacheEntries bounds the response LRU (default 1024; negative
	// disables caching).
	CacheEntries int
	// LoopCacheEntries bounds the per-loop caches (code vectors and
	// loop-pure policy decisions, keyed by checkpoint fingerprint and
	// stable LoopID; default 4096 each, negative disables). Unlike the
	// response cache these survive whitespace edits of the source, because
	// LoopIDs do.
	LoopCacheEntries int
	// Workers sizes the worker pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pool's backlog (default 4x workers); a full
	// queue sheds load with HTTP 503.
	QueueDepth int
	// MaxBatch is the embedding batch size (default 16).
	MaxBatch int
	// BatchWait is how long the batcher lingers to fill a batch
	// (default 2ms).
	BatchWait time.Duration
	// MaxRequestBytes bounds request bodies (default 1MiB).
	MaxRequestBytes int64
	// RequestTimeout bounds the compute time of one request, wired through
	// the request context: deadline-aware policies (brute) return their
	// best-so-far answer, everything else fails with 504 when the deadline
	// passes. A request's timeout_ms field may shorten (never extend) it.
	// Zero disables the server-side bound.
	RequestTimeout time.Duration
	// TrainDir is where asynchronous training jobs (POST /v1/train) write
	// their checkpoints. Empty means a temporary directory created on first
	// use.
	TrainDir string
	// MaxTrainIterations caps the iterations one training job may request
	// (default 200).
	MaxTrainIterations int
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: the profile endpoints expose internals and cost CPU, so they
	// are opt-in (`neurovec serve -pprof`).
	Pprof bool
	// Logger receives the server's structured log lines (request accounting,
	// reloads, training-job lifecycle). Nil disables logging.
	Logger *obslog.Logger
}

// model is one immutable serving snapshot; hot-reload swaps the whole
// struct atomically, so in-flight requests keep the framework they started
// with.
type model struct {
	fw       *core.Framework
	version  string
	loadedAt time.Time
}

// Server is the inference service. It implements http.Handler.
type Server struct {
	cfg     Config
	model   atomic.Pointer[model]
	pool    *Pool
	cache   *Cache
	metrics *Metrics
	embeds  *batcher
	mux     *http.ServeMux
	start   time.Time
	log     *obslog.Logger

	// loops memoizes per-loop state (code vectors, loop-pure decisions)
	// across requests and files; nil when disabled. Keys embed the
	// checkpoint fingerprint, so hot-reloads need no flush.
	loops *loopCache

	// evalEmbeds memoizes code vectors across /v1/eval runs. It is shared
	// across hot-reloads — keys embed the model version, so a new
	// checkpoint can never be served a stale vector.
	evalEmbeds *evalharness.EmbedCache
	// evalSem admits one corpus evaluation at a time. The harness brings
	// its own goroutine pool (up to the worker-pool width), so running
	// evals through the shared pool would stack pools and oversubscribe
	// the CPU; instead evals bypass the pool entirely and excess eval
	// requests shed with 503, leaving the latency-sensitive endpoints'
	// concurrency bound intact.
	evalSem chan struct{}

	// draining is set when the process is shutting down (or an operator
	// takes the replica out of rotation): /readyz answers 503 so routers
	// and external load balancers stop sending new work, while in-flight
	// requests and /healthz keep working.
	draining atomic.Bool

	reloadMu sync.Mutex // serializes hot-reloads
	// modelPath is the checkpoint the next reload re-reads; it starts at
	// cfg.ModelPath and moves when a training job is promoted. Guarded by
	// reloadMu.
	modelPath string

	// Training-job state: one asynchronous job runs at a time; finished jobs
	// are kept (bounded) for status polling and promotion. Guarded by
	// trainMu.
	trainMu     sync.Mutex
	trainJobs   map[string]*trainJob
	trainSeq    int64
	trainActive bool
	trainDir    string
}

// New loads the checkpoint at cfg.ModelPath and returns a ready server.
func New(cfg Config) (*Server, error) {
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("service: ModelPath is required")
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.LoopCacheEntries == 0 {
		cfg.LoopCacheEntries = 4096
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 1 << 20
	}
	s := &Server{
		cfg:        cfg,
		pool:       NewPool(cfg.Workers, cfg.QueueDepth),
		cache:      NewCache(cfg.CacheEntries),
		metrics:    NewMetrics(),
		evalEmbeds: evalharness.NewEmbedCache(),
		evalSem:    make(chan struct{}, 1),
		trainJobs:  make(map[string]*trainJob),
		modelPath:  cfg.ModelPath,
		start:      time.Now(),
		log:        cfg.Logger,
	}
	// Pool observability: queue-wait histogram plus scrape-time depth and
	// in-flight gauges, all in the same registry /metrics renders.
	s.pool.onWait = s.metrics.ObserveQueueWait
	s.pool.OnPanic(s.metrics.PoolPanic)
	reg := s.metrics.Registry()
	reg.GaugeFunc("neurovec_queue_depth", "Jobs waiting in the worker-pool queue.",
		func() float64 { return float64(s.pool.QueueDepth()) })
	reg.GaugeFunc("neurovec_inflight_jobs", "Jobs currently executing on the worker pool.",
		func() float64 { return float64(s.pool.InFlight()) })
	if cfg.LoopCacheEntries > 0 {
		s.loops = newLoopCache(cfg.LoopCacheEntries)
	}
	m, err := s.loadModel()
	if err != nil {
		s.pool.Close()
		return nil, err
	}
	s.model.Store(m)
	s.metrics.SetModel(m.version, m.loadedAt)
	s.embeds = newBatcher(cfg.MaxBatch, cfg.BatchWait, s.processEmbedBatch)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v2/compile", s.instrument("/v2/compile", s.handleCompile))
	s.mux.HandleFunc("POST /v1/annotate", s.instrument("/v1/annotate", s.handleAnnotate))
	s.mux.HandleFunc("POST /v1/embed", s.instrument("/v1/embed", s.handleEmbed))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/eval", s.instrument("/v1/eval", s.handleEval))
	s.mux.HandleFunc("POST /v1/eval", s.instrument("/v1/eval", s.handleEval))
	s.mux.HandleFunc("POST /v1/train", s.instrument("/v1/train", s.handleTrainStart))
	s.mux.HandleFunc("GET /v1/train", s.instrument("/v1/train", s.handleTrainList))
	s.mux.HandleFunc("GET /v1/train/{id}", s.instrument("/v1/train", s.handleTrainStatus))
	s.mux.HandleFunc("POST /v1/train/{id}/cancel", s.instrument("/v1/train", s.handleTrainCancel))
	s.mux.HandleFunc("POST /v1/train/{id}/promote", s.instrument("/v1/train", s.handleTrainPromote))
	s.mux.HandleFunc("POST /v1/reload", s.instrument("/v1/reload", s.handleReload))
	s.mux.HandleFunc("GET /v1/policies", s.instrument("/v1/policies", s.handlePolicies))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the batcher and worker pool and cancels any running training
// job. The server must not serve requests afterwards.
func (s *Server) Close() {
	s.trainMu.Lock()
	for _, j := range s.trainJobs {
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	s.trainMu.Unlock()
	s.embeds.close()
	s.pool.Close()
}

// ModelVersion returns the currently served checkpoint fingerprint.
func (s *Server) ModelVersion() string { return s.model.Load().version }

// Metrics exposes the registry (for embedding the server in other mains).
func (s *Server) Metrics() *Metrics { return s.metrics }

// loadModel builds a fresh framework from the configured checkpoint.
func (s *Server) loadModel() (*model, error) { return s.loadModelFrom(s.cfg.ModelPath) }

// loadModelFrom builds a fresh framework from the checkpoint at path.
// Training checkpoints load like plain snapshots: their trailing training
// section is ignored.
func (s *Server) loadModelFrom(path string) (*model, error) {
	base := core.DefaultConfig()
	if s.cfg.Core != nil {
		base = *s.cfg.Core
	}
	fw := core.New(base)
	if err := fw.LoadModelFile(path); err != nil {
		return nil, fmt.Errorf("service: load %s: %w", path, err)
	}
	return &model{fw: fw, version: fw.ModelVersion(), loadedAt: time.Now()}, nil
}

// Reload atomically swaps in a freshly loaded checkpoint from the current
// model path (the configured one, or the last promoted training
// checkpoint). In-flight requests finish on the snapshot they started with;
// the response cache needs no flush because keys embed the version. Returns
// the previous and new versions.
func (s *Server) Reload() (previous, current string, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reloadLocked(s.modelPath)
}

// ReloadFrom is Reload from an explicit checkpoint path — the promotion
// path for completed training jobs. On success subsequent reloads re-read
// the new path; on failure the previous snapshot and path keep serving.
func (s *Server) ReloadFrom(path string) (previous, current string, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reloadLocked(path)
}

// reloadLocked swaps in the checkpoint at path. Callers hold reloadMu.
func (s *Server) reloadLocked(path string) (previous, current string, err error) {
	m, err := s.loadModelFrom(path)
	if err != nil {
		s.metrics.Reload(false)
		s.log.Error("model reload failed", "path", path, "error", err)
		return "", "", err
	}
	previous = s.model.Load().version
	s.model.Store(m)
	s.modelPath = path
	s.metrics.Reload(true)
	s.metrics.SetModel(m.version, m.loadedAt)
	s.log.Info("model reloaded", "previous_version", previous, "model_version", m.version, "path", path)
	return previous, m.version, nil
}

// ModelPath returns the checkpoint path the next reload re-reads.
func (s *Server) ModelPath() string {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.modelPath
}

// ---- HTTP plumbing ----

// httpError carries a status code chosen by a handler.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// statusRecorder captures the status code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request-scoped plumbing every endpoint
// shares: an X-Request-ID (honoring a sane client-supplied one), a context
// armed with the per-stage latency sink so pipeline spans land in
// neurovec_stage_duration_seconds, latency/status accounting, the request
// body limit, and one structured log line per request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		id := RequestID(r)
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithRecorder(r.Context(), nil, s.metrics.StageSink()))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxRequestBytes)
		h(rec, r)
		elapsed := time.Since(started)
		s.metrics.ObserveRequest(endpoint, rec.status, elapsed)
		lvl := s.log.Debug
		if rec.status >= 500 {
			lvl = s.log.Warn
		}
		lvl("request", "request_id", id, "endpoint", endpoint, "method", r.Method,
			"status", rec.status, "elapsed_ms", float64(elapsed.Microseconds())/1000)
	}
}

// RequestID returns the client's X-Request-ID when it is short and printable,
// otherwise a fresh 8-byte random hex ID. Honoring client IDs lets a caller
// correlate its own logs with ours; the sanity bound keeps hostile headers
// out of log lines. Exported because the fleet router applies the same
// discipline at its edge before forwarding the ID to replicas.
func RequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 64 && printableASCII(id) {
		return id
	}
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeError maps an error onto its HTTP status. r distinguishes a
// server-imposed deadline (504) from a client that went away (499); a nil r
// treats every context error as a client disconnect.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrNoLoops):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, policy.ErrUnknown), errors.Is(err, core.ErrBadPin):
		// Asking for a policy that does not exist — or pinning a loop the
		// program does not contain — is a malformed request.
		status = http.StatusBadRequest
	case errors.Is(err, core.ErrNoAgent), errors.Is(err, policy.ErrUnavailable):
		// The policy exists but this serving state cannot run it (agent
		// not trained/loaded, no corpus for the NNS index): 409 Conflict.
		status = http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r != nil && r.Context().Err() == nil {
			// The client is still there: our own request timeout expired.
			status = http.StatusGatewayTimeout
		} else {
			// The client went away mid-request; 499 (nginx's "client
			// closed request") keeps routine disconnects out of the 5xx
			// rate.
			status = 499
		}
	}
	var serr *core.SemanticError
	if errors.As(err, &serr) {
		status = http.StatusUnprocessableEntity
	}
	// The request ID was stamped on the response headers by instrument();
	// echoing it in the body gives clients one correlation key for logs,
	// traces, and failures. v1 shims share this path, so they get it too.
	payload := map[string]any{"error": err.Error()}
	if serr != nil {
		// Strict-mode rejections carry the full machine-readable finding
		// list — the same JSON `neurovec check -json` prints.
		payload["diagnostics"] = serr.Diags
	}
	if id := w.Header().Get("X-Request-ID"); id != "" {
		payload["request_id"] = id
	}
	body, _ := json.Marshal(payload)
	writeJSON(w, status, body)
}

// decodeBody parses the JSON request body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
		}
		return &httpError{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()}
	}
	return nil
}

// cacheKey derives the LRU key: endpoint, model version, decision policy,
// source hash and the (sorted) runtime parameters. The policy is part of the
// key because the same source yields different bodies per method — serving a
// cached rl answer to a brute request would silently A/B-corrupt a
// comparison.
func cacheKey(endpoint, version, policyName, source string, params map[string]int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", endpoint, version, policyName)
	h.Write([]byte(source))
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "\x00%s=%d", k, params[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// tryCacheHit serves a cached response if present, recording the hit or
// miss. The X-Neurovec-Cache header reports which; bodies are byte-identical
// either way.
func (s *Server) tryCacheHit(w http.ResponseWriter, key string) bool {
	body, ok := s.cache.Get(key)
	if !ok {
		s.metrics.CacheMiss()
		return false
	}
	s.metrics.CacheHit()
	w.Header().Set("X-Neurovec-Cache", "hit")
	writeJSON(w, http.StatusOK, body)
	return true
}

// uncacheable is implemented by payloads that must not enter the response
// cache — a deadline-truncated search answer depends on the requester's
// timeout, so serving it to a later, more patient client would be wrong.
type uncacheable interface {
	skipCache() bool
}

// respondFresh renders a freshly computed payload, caches it (unless the
// payload opts out), and replies.
func (s *Server) respondFresh(w http.ResponseWriter, key string, payload any) {
	body, err := json.Marshal(payload)
	if err != nil {
		writeError(w, nil, err)
		return
	}
	if u, ok := payload.(uncacheable); !ok || !u.skipCache() {
		s.cache.Put(key, body)
	}
	w.Header().Set("X-Neurovec-Cache", "miss")
	writeJSON(w, http.StatusOK, body)
}

// requestCtx derives the compute context for one request: the client's
// context bounded by the server's RequestTimeout, further shortened (never
// extended) by the request's own timeout_ms.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	return s.computeCtx(r.Context(), timeoutMS)
}

// computeCtx is requestCtx from an explicit parent — the form batched
// compilation uses, where many compute contexts derive from one request.
func (s *Server) computeCtx(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if rd := time.Duration(timeoutMS) * time.Millisecond; d <= 0 || rd < d {
			d = rd
		}
	}
	if d <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, d)
}

// serveCached implements the shared miss path: check the cache, otherwise
// run compute on the worker pool, cache the rendered response, and reply.
//
// ctx (the deadline-bounded compute context) is passed into compute only;
// the wait itself is bounded by the client's own context. A deadline-aware
// policy returns shortly *after* the deadline with its best-so-far answer —
// abandoning the wait at the deadline would throw that answer away and turn
// every truncation into a 504.
func (s *Server) serveCached(ctx context.Context, w http.ResponseWriter, r *http.Request, key string, compute func(ctx context.Context) (any, error)) {
	if s.tryCacheHit(w, key) {
		return
	}
	var payload any
	var cerr error
	err := s.pool.Do(r.Context(), func() { payload, cerr = compute(ctx) })
	if errors.Is(err, ErrOverloaded) {
		s.metrics.PoolRejected()
	}
	s.logPanic(err)
	if err == nil {
		err = cerr
	}
	if err != nil {
		writeError(w, r, classify(err))
		return
	}
	s.respondFresh(w, key, payload)
}

// logPanic records a recovered request panic (surfaced by Pool.Do as a
// *PanicError) with its captured stack. The request itself still gets its
// 500 through the normal error path; this is the operator-facing trace.
func (s *Server) logPanic(err error) {
	var pe *PanicError
	if errors.As(err, &pe) {
		s.log.Error("request panicked (recovered)", "panic", fmt.Sprint(pe.Val), "stack", string(pe.Stack))
	}
}

// classify maps parse failures onto 422 (unparseable programs are the
// client's fault); every other error type is matched directly by writeError.
func classify(err error) error {
	var perr *lang.ParseError
	if errors.As(err, &perr) {
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	var lerr *lower.Error
	if errors.As(err, &lerr) {
		// A program the frontend accepted but the lowering pass cannot
		// express (e.g. an unsupported loop form that slipped past lax
		// sema) is the request's fault, not the server's.
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	return err
}

// isRequestError reports errors caused by the request itself — unparseable
// or loop-free programs, the client's deadline, a mid-request disconnect —
// rather than by the decision policy. They must not count against the
// per-policy error metric an operator alerts on.
func isRequestError(err error) bool {
	var perr *lang.ParseError
	return errors.As(err, &perr) ||
		errors.Is(err, core.ErrSemantic) ||
		errors.Is(err, core.ErrNoLoops) ||
		errors.Is(err, core.ErrBadPin) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// ---- Endpoints ----

// AnnotateRequest is the /v1/annotate and /v1/sweep request body.
type AnnotateRequest struct {
	// Source is the C program to annotate.
	Source string `json:"source"`
	// Params optionally supplies runtime values for symbolic loop bounds.
	Params map[string]int64 `json:"params,omitempty"`
	// Policy selects the decision method by registry name (see
	// GET /v1/policies). Empty means the trained agent for /v1/annotate and
	// no decision overlay for /v1/sweep.
	Policy string `json:"policy,omitempty"`
	// TimeoutMS bounds this request's compute time; it can shorten the
	// server's RequestTimeout but never extend it. Deadline-aware policies
	// (brute) degrade to their best-so-far answer with "truncated": true.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// LoopDecision is one loop's predicted factors in an AnnotateResponse.
// LoopID carries the loop's stable v2 identity so v1 clients can migrate
// to per-loop addressing (pins, /v2/compile) incrementally.
type LoopDecision struct {
	LoopID  string  `json:"loop_id,omitempty"`
	Label   string  `json:"label"`
	Func    string  `json:"func"`
	VF      int     `json:"vf"`
	IF      int     `json:"if"`
	Cycles  float64 `json:"cycles"`
	Speedup float64 `json:"speedup"`
}

// AnnotateResponse is the /v1/annotate response body.
type AnnotateResponse struct {
	ModelVersion    string         `json:"model_version"`
	Policy          string         `json:"policy"`
	Truncated       bool           `json:"truncated,omitempty"`
	Annotated       string         `json:"annotated"`
	Loops           []LoopDecision `json:"loops"`
	BaselineCycles  float64        `json:"baseline_cycles"`
	PredictedCycles float64        `json:"predicted_cycles"`
	Speedup         float64        `json:"speedup"`
}

func (r *AnnotateResponse) skipCache() bool { return r.Truncated }

// resolvePolicy maps a request's policy name onto a bound instance.
// fallback is the name used for an empty field ("" keeps it unset). The
// returned label is safe for metrics: client-supplied names that are not in
// the registry collapse to "unknown" so request bodies cannot mint
// unbounded label cardinality.
func resolvePolicy(m *model, name, fallback string) (label string, pol policy.Policy, err error) {
	if name == "" {
		name = fallback
	}
	if name == "" {
		return "", nil, nil
	}
	pol, err = m.fw.Policy(name)
	if errors.Is(err, policy.ErrUnknown) {
		return "unknown", nil, err
	}
	return name, pol, err
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req AnnotateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	m := s.model.Load()
	polName, pol, err := resolvePolicy(m, req.Policy, core.DefaultPolicy)
	if err != nil {
		s.metrics.Policy(polName, false)
		writeError(w, r, err)
		return
	}
	key := cacheKey("annotate", m.version, polName, req.Source, req.Params)
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	s.serveCached(ctx, w, r, key, func(ctx context.Context) (any, error) {
		// The v1 endpoint is a compatibility shim: it computes through the
		// same v2 per-loop path as POST /v2/compile (one compute function,
		// one schema underneath) and folds the answer into the legacy
		// whole-file shape.
		creq := &api.CompileRequest{Source: req.Source, Params: req.Params, Policy: req.Policy}
		resp, err := s.compileCompute(ctx, m, creq, polName, pol)
		if err != nil {
			return nil, err
		}
		return v1AnnotateFromCompile(resp), nil
	})
}

// v1AnnotateFromCompile folds a v2 per-loop response into the legacy v1
// annotate shape.
func v1AnnotateFromCompile(resp *api.CompileResponse) *AnnotateResponse {
	out := &AnnotateResponse{
		ModelVersion:    resp.ModelVersion,
		Policy:          resp.Policy,
		Truncated:       resp.Truncated,
		Annotated:       resp.Annotated,
		BaselineCycles:  resp.BaselineCycles,
		PredictedCycles: resp.PredictedCycles,
		Speedup:         resp.Speedup,
	}
	for _, d := range resp.Loops {
		out.Loops = append(out.Loops, LoopDecision{
			LoopID: string(d.Loop), Label: d.Label, Func: d.Func,
			VF: d.VF, IF: d.IF, Cycles: d.Cycles, Speedup: d.PredictedSpeedup,
		})
	}
	return out
}

// EmbedRequest is the /v1/embed request body.
type EmbedRequest struct {
	Source string `json:"source"`
}

// EmbedResponse is the /v1/embed response body.
type EmbedResponse struct {
	ModelVersion string    `json:"model_version"`
	Dim          int       `json:"dim"`
	Vector       []float64 `json:"vector"`
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req EmbedRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	m := s.model.Load()
	key := cacheKey("embed", m.version, "", req.Source, nil)
	if s.tryCacheHit(w, key) {
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	job := &embedJob{source: req.Source, m: m, done: make(chan struct{})}
	if err := s.embeds.enqueue(job); err != nil {
		s.metrics.PoolRejected()
		writeError(w, r, err)
		return
	}
	select {
	case <-job.done:
	case <-ctx.Done():
		job.canceled.Store(true)
		writeError(w, r, ctx.Err())
		return
	}
	if job.err != nil {
		if errors.Is(job.err, ErrOverloaded) {
			s.metrics.PoolRejected()
		}
		writeError(w, r, classify(job.err))
		return
	}
	s.respondFresh(w, key, &EmbedResponse{ModelVersion: m.version, Dim: len(job.vec), Vector: job.vec})
}

// processEmbedBatch runs one coalesced embedding batch as a single pool job.
// Each job embeds with the model snapshot its handler pinned, so results
// stay consistent with the version they are cached and reported under even
// across a mid-flight hot-reload.
func (s *Server) processEmbedBatch(batch []*embedJob) {
	s.metrics.Batch(len(batch))
	err := s.pool.Do(context.Background(), func() {
		for _, j := range batch {
			if j.canceled.Load() {
				continue // client gone; don't compute into the void
			}
			j.vec, j.err = j.m.fw.EmbedSource(j.source)
		}
	})
	if err != nil {
		s.logPanic(err)
		for _, j := range batch {
			if j.err == nil && j.vec == nil {
				j.err = err
			}
		}
	}
	for _, j := range batch {
		close(j.done)
	}
}

// SweepResponse is the /v1/sweep response body. The policy fields are only
// present when the request selected a policy: they mark the grid cell that
// method would pick.
type SweepResponse struct {
	ModelVersion   string      `json:"model_version"`
	Loop           string      `json:"loop"`
	LoopID         string      `json:"loop_id,omitempty"`
	VFs            []int       `json:"vfs"`
	IFs            []int       `json:"ifs"`
	BaselineCycles float64     `json:"baseline_cycles"`
	Speedup        [][]float64 `json:"speedup"`
	Policy         string      `json:"policy,omitempty"`
	ChosenVF       int         `json:"chosen_vf,omitempty"`
	ChosenIF       int         `json:"chosen_if,omitempty"`
	Truncated      bool        `json:"truncated,omitempty"`
}

func (r *SweepResponse) skipCache() bool { return r.Truncated }

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req AnnotateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	m := s.model.Load()
	polName, pol, err := resolvePolicy(m, req.Policy, "")
	if err != nil {
		s.metrics.Policy(polName, false)
		writeError(w, r, err)
		return
	}
	key := cacheKey("sweep", m.version, polName, req.Source, req.Params)
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	s.serveCached(ctx, w, r, key, func(ctx context.Context) (any, error) {
		var opts []core.InferOption
		if pol != nil {
			opts = append(opts, core.WithPolicy(pol))
		}
		sw, err := m.fw.SweepSource(ctx, req.Source, req.Params, opts...)
		if polName != "" && (err == nil || !isRequestError(err)) {
			s.metrics.Policy(polName, err == nil)
		}
		if err != nil {
			return nil, err
		}
		return &SweepResponse{
			ModelVersion:   m.version,
			Loop:           sw.Loop,
			LoopID:         string(sw.ID),
			VFs:            sw.VFs,
			IFs:            sw.IFs,
			BaselineCycles: sw.BaselineCycles,
			Speedup:        sw.Speedup,
			Policy:         sw.Policy,
			ChosenVF:       sw.ChosenVF,
			ChosenIF:       sw.ChosenIF,
			Truncated:      sw.Truncated,
		}, nil
	})
}

// EvalRequest is the /v1/eval request body (POST) or query string (GET):
// corpus-scale evaluation of a policy against a baseline and the
// brute-force oracle. GET maps each field to a query parameter of the same
// name (e.g. /v1/eval?policy=rl&corpus=polybench&seed=1).
type EvalRequest struct {
	// Policy is the method under evaluation (default "rl").
	Policy string `json:"policy,omitempty"`
	// Baseline anchors speedup (default "costmodel").
	Baseline string `json:"baseline,omitempty"`
	// Corpus is a comma-separated list of built-in suites: polybench,
	// mibench, figure7, tsvc, generated (default "generated").
	Corpus string `json:"corpus,omitempty"`
	// N sizes the generated suite (default 16, capped at 256 server-side).
	N int `json:"n,omitempty"`
	// Seed drives corpus generation and stochastic policies (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Jobs bounds evaluation parallelism (capped at the worker-pool width;
	// never affects the numbers).
	Jobs int `json:"jobs,omitempty"`
	// TimeoutMS is the per-inference budget inside the evaluation; the
	// whole request stays bounded by the server's RequestTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// maxEvalCorpus caps the generated-suite size a request may demand: one
// eval file costs dozens of oracle simulations, and the endpoint must not
// become a free denial-of-service lever.
const maxEvalCorpus = 256

// EvalResponse is the /v1/eval response body. Report numbers are a pure
// function of (model version, request spec): repeated calls return
// identical values — and usually identical bytes straight from the cache.
type EvalResponse struct {
	ModelVersion string              `json:"model_version"`
	Report       *evalharness.Report `json:"report"`
}

func (r *EvalResponse) skipCache() bool {
	// A deadline-truncated evaluation depends on this requester's budget;
	// serving it to a later, more patient client would be wrong.
	return r.Report != nil && r.Report.Overall.Truncated > 0
}

// decodeEvalRequest parses a GET query string or a POST JSON body.
func decodeEvalRequest(r *http.Request) (*EvalRequest, error) {
	req := &EvalRequest{}
	if r.Method == http.MethodPost {
		if err := decodeBody(r, req); err != nil {
			return nil, err
		}
	} else {
		q := r.URL.Query()
		req.Policy = q.Get("policy")
		req.Baseline = q.Get("baseline")
		req.Corpus = q.Get("corpus")
		for _, f := range []struct {
			name string
			dst  *int64
		}{
			{"seed", &req.Seed},
			{"timeout_ms", &req.TimeoutMS},
		} {
			if v := q.Get(f.name); v != "" {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf("bad %s: %v", f.name, err)}
				}
				*f.dst = n
			}
		}
		for _, f := range []struct {
			name string
			dst  *int
		}{
			{"n", &req.N},
			{"jobs", &req.Jobs},
		} {
			if v := q.Get(f.name); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf("bad %s: %v", f.name, err)}
				}
				*f.dst = n
			}
		}
	}
	if req.Policy == "" {
		req.Policy = core.DefaultPolicy
	}
	if req.Baseline == "" {
		req.Baseline = "costmodel"
	}
	if req.Corpus == "" {
		req.Corpus = "generated"
	}
	if req.N <= 0 {
		req.N = 16
	}
	if req.N > maxEvalCorpus {
		return nil, &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("n=%d exceeds the per-request corpus cap of %d", req.N, maxEvalCorpus)}
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	return req, nil
}

// handleEval evaluates a policy over a whole built-in corpus through the
// evaluation harness — the service-side twin of `neurovec eval`, returning
// the same deterministic report (without the volatile timing block).
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	req, err := decodeEvalRequest(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	m := s.model.Load()
	// Resolve both roles up front: unknown names are the client's fault
	// (400), unavailable ones the deployment's (409) — and the metric label
	// stays bounded because unregistered names collapse to "unknown". Only
	// a failure of the evaluated policy itself counts against its error
	// metric; a bad baseline name is not the policy's fault.
	polName, _, err := resolvePolicy(m, req.Policy, core.DefaultPolicy)
	if err != nil {
		s.metrics.EvalRun(polName, false)
		writeError(w, r, err)
		return
	}
	if _, _, err := resolvePolicy(m, req.Baseline, "costmodel"); err != nil {
		writeError(w, r, err)
		return
	}
	corpus, err := evalharness.BuildCorpus(req.Corpus, req.N, req.Seed)
	if err != nil {
		writeError(w, r, &httpError{status: http.StatusBadRequest, msg: err.Error()})
		return
	}
	jobs := req.Jobs
	if jobs <= 0 || jobs > s.pool.Workers() {
		jobs = s.pool.Workers()
	}

	specKey := fmt.Sprintf("%s\x00%s\x00%s\x00%d\x00%d\x00%d", req.Policy, req.Baseline, req.Corpus, req.N, req.Seed, req.TimeoutMS)
	key := cacheKey("eval", m.version, polName, specKey, nil)
	if s.tryCacheHit(w, key) {
		return
	}
	// Admission control: the harness parallelizes internally, so evals run
	// on the handler goroutine gated by evalSem (one at a time) instead of
	// occupying a pool slot while spawning a second pool's worth of work.
	select {
	case s.evalSem <- struct{}{}:
		defer func() { <-s.evalSem }()
	default:
		s.metrics.PoolRejected()
		writeError(w, r, ErrOverloaded)
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	report, err := evalharness.New(m.fw).WithEmbedCache(s.evalEmbeds).Run(ctx, corpus, evalharness.Options{
		Policy:   req.Policy,
		Baseline: req.Baseline,
		Jobs:     jobs,
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		Seed:     req.Seed,
	})
	if err == nil || !isRequestError(err) {
		s.metrics.EvalRun(polName, err == nil)
	}
	if err != nil {
		writeError(w, r, classify(err))
		return
	}
	for _, suite := range report.Suites {
		s.metrics.EvalFiles(suite.Suite, suite.Files)
	}
	// The timing block is volatile and the response is cacheable; keep the
	// service report byte-stable like the CLI's.
	report.Timing = nil
	s.respondFresh(w, key, &EvalResponse{ModelVersion: m.version, Report: report})
}

// PolicyStatus describes one registered policy in a PoliciesResponse.
type PolicyStatus struct {
	Name      string `json:"name"`
	Available bool   `json:"available"`
	// Reason explains an unavailable policy (no trained agent, no corpus
	// for the NNS index, ...).
	Reason string `json:"reason,omitempty"`
}

// PoliciesResponse is the GET /v1/policies response body.
type PoliciesResponse struct {
	Default      string         `json:"default"`
	ModelVersion string         `json:"model_version"`
	Policies     []PolicyStatus `json:"policies"`
}

// handlePolicies lists every registered decision policy and whether the
// serving snapshot can run it — the discovery endpoint clients use before
// A/B-ing methods.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	m := s.model.Load()
	resp := &PoliciesResponse{Default: core.DefaultPolicy, ModelVersion: m.version}
	for _, name := range policy.List() {
		st := PolicyStatus{Name: name}
		p, err := m.fw.Policy(name)
		if err == nil {
			if prober, ok := p.(policy.Prober); ok {
				err = prober.Probe()
			}
		}
		if err != nil {
			st.Reason = err.Error()
		} else {
			st.Available = true
		}
		resp.Policies = append(resp.Policies, st)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// ReloadResponse is the /v1/reload response body.
type ReloadResponse struct {
	PreviousVersion string `json:"previous_version"`
	ModelVersion    string `json:"model_version"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	previous, current, err := s.Reload()
	if err != nil {
		writeError(w, r, err)
		return
	}
	body, _ := json.Marshal(&ReloadResponse{PreviousVersion: previous, ModelVersion: current})
	writeJSON(w, http.StatusOK, body)
}

// HealthResponse is the /healthz response body.
type HealthResponse struct {
	Status        string  `json:"status"`
	ModelVersion  string  `json:"model_version"`
	ModelPath     string  `json:"model_path"`
	ModelLoadedAt string  `json:"model_loaded_at"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	CacheEntries  int     `json:"cache_entries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.model.Load()
	body, _ := json.Marshal(&HealthResponse{
		Status:        "ok",
		ModelVersion:  m.version,
		ModelPath:     s.ModelPath(),
		ModelLoadedAt: m.loadedAt.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.pool.Workers(),
		CacheEntries:  s.cache.Len(),
	})
	writeJSON(w, http.StatusOK, body)
}

// SetDraining flips the drain bit: while set, GET /readyz answers 503 so
// fleet routers and external load balancers take the replica out of rotation
// before the process stops accepting work. In-flight requests are unaffected.
func (s *Server) SetDraining(v bool) {
	if s.draining.Swap(v) != v {
		s.log.Info("drain state changed", "draining", v)
	}
}

// Draining reports whether the drain bit is set.
func (s *Server) Draining() bool { return s.draining.Load() }

// ReadyzResponse is the GET /readyz response body (status 200 when ready,
// 503 while draining or stopping). Fleet routers parse it to learn the
// replica's serving version; the fields are stable API.
type ReadyzResponse struct {
	// Status is "ready", "draining", or "stopping".
	Status string `json:"status"`
	// ModelVersion fingerprints the currently served checkpoint.
	ModelVersion string `json:"model_version"`
}

// handleReadyz is the readiness probe: ready means a model is loaded, the
// worker pool is accepting jobs, and the server is not draining. Liveness
// (GET /healthz) stays 200 through a drain; readiness does not — that split
// is what lets a router drain a replica without killing it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	m := s.model.Load()
	resp := &ReadyzResponse{Status: "ready", ModelVersion: m.version}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case s.pool.Closed():
		resp.Status = "stopping"
		status = http.StatusServiceUnavailable
	}
	body, _ := json.Marshal(resp)
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w)
}
