package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"neurovec/internal/obs"
	"neurovec/internal/rl"
	"neurovec/internal/trainer"
)

// Training-job guardrails: a training iteration costs Batch simulated
// compilations, so the endpoint bounds everything a request can demand.
const (
	defaultTrainIterations = 10
	maxTrainIterationsCap  = 200
	defaultTrainBatch      = 100
	maxTrainBatch          = 2000
	// maxTrainJobsKept bounds the finished-job history; the oldest finished
	// jobs (and their checkpoints) are pruned beyond it.
	maxTrainJobsKept = 32
)

// TrainRequest is the POST /v1/train body. Every field is optional; the
// zero value trains a small generated-corpus agent.
type TrainRequest struct {
	// Corpus is the training-corpus spec shared with /v1/eval and
	// `neurovec train`: comma-separated suites polybench, mibench, figure7,
	// tsvc, generated (default "generated").
	Corpus string `json:"corpus,omitempty"`
	// N sizes the generated suite (default 16, capped like /v1/eval).
	N int `json:"n,omitempty"`
	// Seed fixes the run (default 1); two jobs with equal specs train
	// identical models.
	Seed int64 `json:"seed,omitempty"`
	// Jobs bounds rollout parallelism (capped at the worker-pool width;
	// never changes the trained weights).
	Jobs int `json:"jobs,omitempty"`
	// Iterations is the PPO iteration count (default 10, capped).
	Iterations int `json:"iterations,omitempty"`
	// Batch is the rollout size per iteration (default 100, capped).
	Batch int `json:"batch,omitempty"`
	// LR is the learning rate (default 5e-4).
	LR float64 `json:"lr,omitempty"`
	// CheckpointEvery writes intermediate checkpoints every N iterations
	// (0 = final only; the final checkpoint is always written).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// EvalEvery interleaves a learning-curve evaluation every N iterations
	// (0 = off); EvalCorpus overrides the corpus it scores on.
	EvalEvery  int    `json:"eval_every,omitempty"`
	EvalCorpus string `json:"eval_corpus,omitempty"`
}

// trainJob tracks one asynchronous training run. All mutable fields are
// guarded by mu; the training goroutine writes, handlers read.
type trainJob struct {
	mu         sync.Mutex
	id         string
	req        TrainRequest
	state      string // "running", "succeeded", "failed", "canceled"
	created    time.Time
	finished   time.Time
	total      int
	iterations int
	steps      int
	units      int
	rewardMean []float64
	loss       []float64
	curve      []trainer.EvalPoint
	checkpoint string
	version    string
	promoted   bool
	errMsg     string
	cancel     context.CancelFunc
}

// TrainStatusResponse is the GET /v1/train/{id} response body (and one
// element of the GET /v1/train listing).
type TrainStatusResponse struct {
	ID      string       `json:"id"`
	State   string       `json:"state"`
	Request TrainRequest `json:"request"`
	// CreatedAt / FinishedAt are RFC3339 timestamps.
	CreatedAt  string `json:"created_at"`
	FinishedAt string `json:"finished_at,omitempty"`
	// IterationsDone / IterationsTotal report progress; Steps counts
	// simulated compilations; Units is the number of training loops.
	IterationsDone  int `json:"iterations_done"`
	IterationsTotal int `json:"iterations_total"`
	Steps           int `json:"steps"`
	Units           int `json:"units,omitempty"`
	// RewardMean and Loss are the per-iteration training curves; Curve holds
	// the interleaved evaluation points when eval_every was set.
	RewardMean []float64           `json:"reward_mean,omitempty"`
	Loss       []float64           `json:"loss,omitempty"`
	Curve      []trainer.EvalPoint `json:"curve,omitempty"`
	// ModelVersion fingerprints the job's last checkpoint; Promoted reports
	// that the checkpoint has been swapped into serving.
	ModelVersion string `json:"model_version,omitempty"`
	Promoted     bool   `json:"promoted,omitempty"`
	Error        string `json:"error,omitempty"`
}

// status snapshots the job under its lock.
func (j *trainJob) status() *TrainStatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := &TrainStatusResponse{
		ID:              j.id,
		State:           j.state,
		Request:         j.req,
		CreatedAt:       j.created.UTC().Format(time.RFC3339),
		IterationsDone:  j.iterations,
		IterationsTotal: j.total,
		Steps:           j.steps,
		Units:           j.units,
		RewardMean:      append([]float64(nil), j.rewardMean...),
		Loss:            append([]float64(nil), j.loss...),
		Curve:           append([]trainer.EvalPoint(nil), j.curve...),
		ModelVersion:    j.version,
		Promoted:        j.promoted,
		Error:           j.errMsg,
	}
	if !j.finished.IsZero() {
		resp.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	return resp
}

// validateTrainRequest applies defaults and caps.
func (s *Server) validateTrainRequest(req *TrainRequest) error {
	if req.Corpus == "" {
		req.Corpus = "generated"
	}
	if req.N <= 0 {
		req.N = 16
	}
	if req.N > maxEvalCorpus {
		return &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("n=%d exceeds the per-request corpus cap of %d", req.N, maxEvalCorpus)}
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Jobs <= 0 || req.Jobs > s.pool.Workers() {
		req.Jobs = s.pool.Workers()
	}
	if req.Iterations <= 0 {
		req.Iterations = defaultTrainIterations
	}
	maxIters := s.cfg.MaxTrainIterations
	if maxIters <= 0 {
		maxIters = maxTrainIterationsCap
	}
	if req.Iterations > maxIters {
		return &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("iterations=%d exceeds the cap of %d", req.Iterations, maxIters)}
	}
	if req.Batch <= 0 {
		req.Batch = defaultTrainBatch
	}
	if req.Batch > maxTrainBatch {
		return &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("batch=%d exceeds the cap of %d", req.Batch, maxTrainBatch)}
	}
	if req.LR <= 0 {
		req.LR = 5e-4
	}
	if req.CheckpointEvery < 0 || req.EvalEvery < 0 {
		return &httpError{status: http.StatusBadRequest, msg: "checkpoint_every and eval_every must be >= 0"}
	}
	return nil
}

// trainDirLocked lazily creates the checkpoint directory for training jobs.
// Callers hold trainMu.
func (s *Server) trainDirLocked() (string, error) {
	if s.trainDir != "" {
		return s.trainDir, nil
	}
	dir := s.cfg.TrainDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "neurovec-train-")
		if err != nil {
			return "", err
		}
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	s.trainDir = dir
	return dir, nil
}

// TrainStartResponse is the POST /v1/train response body.
type TrainStartResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// handleTrainStart admits and launches one asynchronous training job.
// Training is far heavier than any inference request, so one job runs at a
// time; a second POST while one is running is a 409.
func (s *Server) handleTrainStart(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if err := s.validateTrainRequest(&req); err != nil {
		writeError(w, r, err)
		return
	}

	s.trainMu.Lock()
	if s.trainActive {
		s.trainMu.Unlock()
		writeError(w, r, &httpError{status: http.StatusConflict,
			msg: "a training job is already running; poll GET /v1/train and retry"})
		return
	}
	dir, err := s.trainDirLocked()
	if err != nil {
		s.trainMu.Unlock()
		writeError(w, r, err)
		return
	}
	s.trainSeq++
	var rnd [4]byte
	rand.Read(rnd[:])
	ctx, cancel := context.WithCancel(context.Background())
	job := &trainJob{
		id:      fmt.Sprintf("train-%04d-%s", s.trainSeq, hex.EncodeToString(rnd[:])),
		req:     req,
		state:   "running",
		created: time.Now(),
		total:   req.Iterations,
		cancel:  cancel,
	}
	job.checkpoint = filepath.Join(dir, job.id+".gob")
	s.trainActive = true
	s.trainJobs[job.id] = job
	s.pruneTrainJobsLocked()
	s.trainMu.Unlock()

	s.metrics.TrainJob("started")
	go s.runTrainJob(ctx, job)

	body, _ := json.Marshal(&TrainStartResponse{ID: job.id, State: job.state})
	writeJSON(w, http.StatusAccepted, body)
}

// pruneTrainJobsLocked drops the oldest finished jobs (and their
// checkpoints) beyond the history bound. Callers hold trainMu.
func (s *Server) pruneTrainJobsLocked() {
	if len(s.trainJobs) <= maxTrainJobsKept {
		return
	}
	ids := make([]string, 0, len(s.trainJobs))
	for id := range s.trainJobs {
		ids = append(ids, id)
	}
	sort.Strings(ids) // ids embed a monotonic sequence number
	for _, id := range ids {
		if len(s.trainJobs) <= maxTrainJobsKept {
			return
		}
		j := s.trainJobs[id]
		j.mu.Lock()
		finished, ckpt, promoted := j.state != "running", j.checkpoint, j.promoted
		j.mu.Unlock()
		if !finished {
			continue
		}
		delete(s.trainJobs, id)
		if ckpt != "" && !promoted {
			os.Remove(ckpt)
		}
	}
}

// runTrainJob executes one job to completion on its own goroutine. The
// cancelable ctx was created at admission time so a cancel request can never
// race job startup.
func (s *Server) runTrainJob(ctx context.Context, job *trainJob) {
	job.mu.Lock()
	req := job.req
	ckpt := job.checkpoint
	job.mu.Unlock()
	// Arm the job context with the metrics stage sink: the trainer's
	// rollout/update/checkpoint/eval spans land in the same
	// neurovec_stage_duration_seconds histogram the compile pipeline feeds.
	ctx = obs.WithRecorder(ctx, nil, s.metrics.StageSink())
	s.log.Info("training job started", "job_id", job.id, "corpus", req.Corpus,
		"iterations", req.Iterations, "batch", req.Batch, "seed", req.Seed)

	rc := rl.DefaultConfig(nil, nil)
	rc.Batch = req.Batch
	rc.MiniBatch = req.Batch / 4
	rc.LR = req.LR
	rc.Seed = req.Seed

	outcome := "failed"
	finalize := func(state, errMsg, version string) {
		job.mu.Lock()
		job.state = state
		job.errMsg = errMsg
		if version != "" {
			job.version = version
		}
		job.finished = time.Now()
		job.mu.Unlock()
		s.trainMu.Lock()
		s.trainActive = false
		s.trainMu.Unlock()
		s.metrics.TrainJob(outcome)
		s.log.Info("training job finished", "job_id", job.id, "state", state,
			"model_version", version, "error", errMsg)
	}

	tr, err := trainer.New(trainer.Config{
		Core:            s.cfg.Core,
		RL:              &rc,
		Corpus:          req.Corpus,
		GenN:            req.N,
		Seed:            req.Seed,
		Jobs:            req.Jobs,
		Iterations:      req.Iterations,
		CheckpointEvery: req.CheckpointEvery,
		CheckpointPath:  ckpt,
		EvalEvery:       req.EvalEvery,
		EvalCorpus:      req.EvalCorpus,
		Progress: func(p trainer.Progress) {
			s.metrics.TrainIterations(1)
			job.mu.Lock()
			job.iterations = p.Iteration
			job.steps = p.Steps
			job.rewardMean = append(job.rewardMean, p.RewardMean)
			job.loss = append(job.loss, p.Loss)
			if p.Eval != nil {
				job.curve = append(job.curve, *p.Eval)
			}
			job.mu.Unlock()
		},
	})
	if err != nil {
		finalize("failed", err.Error(), "")
		return
	}
	job.mu.Lock()
	job.units = tr.Framework().NumSamples()
	job.mu.Unlock()

	res, err := tr.Run(ctx)
	switch {
	case err == nil:
		outcome = "succeeded"
		finalize("succeeded", "", res.ModelVersion)
	case ctx.Err() != nil:
		outcome = "canceled"
		finalize("canceled", "canceled", res.ModelVersion)
	default:
		finalize("failed", err.Error(), "")
	}
}

// lookupTrainJob resolves the {id} path value.
func (s *Server) lookupTrainJob(r *http.Request) (*trainJob, error) {
	id := r.PathValue("id")
	s.trainMu.Lock()
	job := s.trainJobs[id]
	s.trainMu.Unlock()
	if job == nil {
		return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("no training job %q", id)}
	}
	return job, nil
}

// handleTrainStatus reports one job's progress and learning curves.
func (s *Server) handleTrainStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.lookupTrainJob(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	body, _ := json.Marshal(job.status())
	writeJSON(w, http.StatusOK, body)
}

// TrainListResponse is the GET /v1/train response body.
type TrainListResponse struct {
	Jobs []*TrainStatusResponse `json:"jobs"`
}

// handleTrainList lists every known job, newest first.
func (s *Server) handleTrainList(w http.ResponseWriter, r *http.Request) {
	s.trainMu.Lock()
	jobs := make([]*trainJob, 0, len(s.trainJobs))
	for _, j := range s.trainJobs {
		jobs = append(jobs, j)
	}
	s.trainMu.Unlock()
	resp := &TrainListResponse{Jobs: make([]*TrainStatusResponse, 0, len(jobs))}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, j.status())
	}
	sort.Slice(resp.Jobs, func(i, k int) bool { return resp.Jobs[i].ID > resp.Jobs[k].ID })
	body, _ := json.Marshal(resp)
	writeJSON(w, http.StatusOK, body)
}

// handleTrainCancel stops a running job at its next iteration boundary.
func (s *Server) handleTrainCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.lookupTrainJob(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	job.mu.Lock()
	running := job.state == "running"
	cancel := job.cancel
	job.mu.Unlock()
	if !running || cancel == nil {
		writeError(w, r, &httpError{status: http.StatusConflict, msg: "job is not running"})
		return
	}
	cancel()
	body, _ := json.Marshal(map[string]string{"id": job.id, "state": "canceling"})
	writeJSON(w, http.StatusAccepted, body)
}

// handleTrainPromote hot-swaps a completed job's checkpoint into serving
// through the same reload path as POST /v1/reload: in-flight requests finish
// on the old snapshot, the response cache needs no flush (keys embed the
// version), and subsequent reloads re-read the promoted path.
func (s *Server) handleTrainPromote(w http.ResponseWriter, r *http.Request) {
	job, err := s.lookupTrainJob(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	// Mark the job promoted before releasing its lock: pruning skips
	// promoted jobs, so a concurrent POST /v1/train can never delete this
	// checkpoint while ReloadFrom is reading it.
	job.mu.Lock()
	state, ckpt := job.state, job.checkpoint
	if state == "succeeded" {
		job.promoted = true
	}
	job.mu.Unlock()
	if state != "succeeded" {
		writeError(w, r, &httpError{status: http.StatusConflict,
			msg: fmt.Sprintf("job is %s; only succeeded jobs can be promoted", state)})
		return
	}
	previous, current, err := s.ReloadFrom(ckpt)
	if err != nil {
		job.mu.Lock()
		job.promoted = false
		job.mu.Unlock()
		writeError(w, r, err)
		return
	}
	body, _ := json.Marshal(&ReloadResponse{PreviousVersion: previous, ModelVersion: current})
	writeJSON(w, http.StatusOK, body)
}
