package service

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"neurovec/internal/policy"
)

func TestPoolRecoversPanics(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	panics := 0
	p.OnPanic(func() { panics++ })

	err := p.Do(context.Background(), func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do returned %v, want *PanicError", err)
	}
	if pe.Val != "boom" {
		t.Errorf("panic value %v, want boom", pe.Val)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	// The worker that recovered must still serve jobs.
	ran := false
	if err := p.Do(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("pool dead after panic: err=%v ran=%v", err, ran)
	}
	if panics != 1 {
		t.Errorf("panic hook fired %d times, want 1", panics)
	}
}

// panicFactory registers a policy whose Decide panics — standing in for any
// latent bug inside a decision method reached from served traffic.
type panicServePolicy struct{}

func (panicServePolicy) Name() string { return "panic-test" }
func (panicServePolicy) Decide(context.Context, *policy.Request) (*policy.Decision, error) {
	panic("decision bug")
}

func init() {
	policy.Register("panic-test", func(policy.Host) (policy.Policy, error) {
		return panicServePolicy{}, nil
	})
}

// TestPanickingRequestGets500AndProcessSurvives is the satellite bugfix's
// end-to-end proof: one poisoned request costs that request a 500 (with the
// panic counted on the metric), and the very next request is served
// normally.
func TestPanickingRequestGets500AndProcessSurvives(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, body := do(t, s, "POST", "/v2/compile", map[string]any{
		"source": fixture.srcs[0],
		"policy": "panic-test",
	})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500 (body %s)", rec.Code, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Errorf("500 body does not name the panic: %s", body)
	}

	rec, body = do(t, s, "POST", "/v2/compile", map[string]any{"source": fixture.srcs[0]})
	if rec.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200 (body %s)", rec.Code, body)
	}

	var sb strings.Builder
	if _, err := s.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "neurovec_pool_panics_total 1") {
		t.Error("panic counter not incremented")
	}
}

// TestServerSurvivesConcurrentPanics hammers the recover from several
// goroutines at once: every poisoned request that reaches a worker 500s
// (a slow machine may shed some with 503 before they reach one — that is
// backpressure, not a lost worker), no worker dies, and the server still
// answers normally afterwards.
func TestServerSurvivesConcurrentPanics(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1, QueueDepth: 64})
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			rec, _ := do(t, s, "POST", "/v2/compile", map[string]any{
				"source": fixture.srcs[0],
				"policy": "panic-test",
			})
			done <- rec.Code
		}()
	}
	panicked := 0
	for g := 0; g < 8; g++ {
		switch code := <-done; code {
		case http.StatusInternalServerError:
			panicked++
		case http.StatusServiceUnavailable:
			// shed at the queue, never ran
		default:
			t.Errorf("status %d, want 500 (panicked) or 503 (shed)", code)
		}
	}
	if panicked == 0 {
		t.Error("no request reached a worker; the test proved nothing")
	}
	if rec, _ := do(t, s, "POST", "/v2/compile", map[string]any{"source": fixture.srcs[0]}); rec.Code != http.StatusOK {
		t.Fatalf("server unhealthy after concurrent panics: %d", rec.Code)
	}
}
