package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"neurovec/internal/api"
	"neurovec/internal/diag"
)

// The diagnostics tests cover the strict/lax split on the wire: lax
// responses annotate, strict requests fail with 422 and carry the same
// diagnostics JSON in the error body, and the two modes never share a cache
// entry.

const semaBadSrc = `
int a[64];
void f() {
    a[0] = oops;
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
}
`

func TestCompileLaxCarriesDiagnostics(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: semaBadSrc, File: "bad.c"})
	if rec.Code != http.StatusOK {
		t.Fatalf("lax status %d: %s", rec.Code, body)
	}
	var resp api.CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Loops) == 0 {
		t.Error("lax compile produced no decisions")
	}
	if !resp.Diagnostics.HasErrors() {
		t.Fatalf("lax response missing error diagnostics: %s", body)
	}
	for _, d := range resp.Diagnostics {
		if d.File != "bad.c" {
			t.Errorf("diagnostic file = %q, want the request's File", d.File)
		}
	}
}

func TestCompileStrictRejects422WithDiagnostics(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: semaBadSrc, File: "bad.c", Strict: true})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("strict status %d, want 422: %s", rec.Code, body)
	}
	var errBody struct {
		Error       string    `json:"error"`
		Diagnostics diag.List `json:"diagnostics"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, body)
	}
	if errBody.Error == "" {
		t.Error("422 body has no error message")
	}
	if !errBody.Diagnostics.HasErrors() {
		t.Fatalf("422 body carries no error diagnostics: %s", body)
	}

	// The same source compiled lax must return the same diagnostics list —
	// one analysis, two delivery channels.
	_, laxBody := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: semaBadSrc, File: "bad.c"})
	var lax api.CompileResponse
	if err := json.Unmarshal(laxBody, &lax); err != nil {
		t.Fatal(err)
	}
	strictJSON, _ := json.Marshal(errBody.Diagnostics)
	laxJSON, _ := json.Marshal(lax.Diagnostics)
	if string(strictJSON) != string(laxJSON) {
		t.Errorf("strict and lax diagnostics disagree:\n%s\nvs\n%s", strictJSON, laxJSON)
	}
}

func TestCompileStrictAcceptsCleanSource(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: fixture.srcs[0], Strict: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("strict status %d for clean source: %s", rec.Code, body)
	}
	var resp api.CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Diagnostics) != 0 {
		t.Errorf("clean source produced diagnostics: %s", body)
	}
}

// TestCompileStrictDistinctCacheEntry: a lax hit must not satisfy a strict
// request for the same source (and vice versa) — the cache key includes the
// strict bit.
func TestCompileStrictDistinctCacheEntry(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	rec, _ := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: semaBadSrc})
	if rec.Code != http.StatusOK {
		t.Fatalf("lax priming failed: %d", rec.Code)
	}
	rec, body := do(t, s, "POST", "/v2/compile", api.CompileRequest{Source: semaBadSrc, Strict: true})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("strict after lax = %d, want 422 (cache must not cross modes): %s", rec.Code, body)
	}
}

// TestCompileBatchStrictPerItem: in a strict batch, failing items carry
// their diagnostics inline while clean items still compile.
func TestCompileBatchStrictPerItem(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	batch := api.Batch{Requests: []api.CompileRequest{
		{Source: semaBadSrc, File: "bad.c", Strict: true},
		{Source: fixture.srcs[0], File: "ok.c", Strict: true},
	}}
	rec, body := do(t, s, "POST", "/v2/compile", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != 2 {
		t.Fatalf("got %d responses, want 2", len(br.Responses))
	}
	bad, ok := br.Responses[0], br.Responses[1]
	if bad.Error == "" || !bad.Diagnostics.HasErrors() {
		t.Errorf("failed item missing error/diagnostics: %+v", bad)
	}
	if ok.Error != "" || len(ok.Loops) == 0 {
		t.Errorf("clean item failed: %+v", ok)
	}
}

// TestCompileNDJSONStrictDiagnostics: the streaming form carries the same
// per-item diagnostics.
func TestCompileNDJSONStrictDiagnostics(t *testing.T) {
	testFixture(t)
	s := newTestServer(t, Config{ModelPath: fixture.model1})

	var lines []string
	for _, r := range []api.CompileRequest{
		{Source: semaBadSrc, File: "bad.c", Strict: true},
		{Source: fixture.srcs[0], File: "ok.c"},
	} {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(raw))
	}
	rec := postCompile(t, s, strings.Join(lines, "\n")+"\n", "application/x-ndjson")
	if rec.Code != http.StatusOK {
		t.Fatalf("ndjson status %d: %s", rec.Code, rec.Body.String())
	}
	out := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(out) != 2 {
		t.Fatalf("got %d response lines, want 2:\n%s", len(out), rec.Body.String())
	}
	var bad api.CompileResponse
	if err := json.Unmarshal([]byte(out[0]), &bad); err != nil {
		t.Fatal(err)
	}
	if bad.Error == "" || !bad.Diagnostics.HasErrors() {
		t.Errorf("strict ndjson item missing error/diagnostics: %s", out[0])
	}
}
