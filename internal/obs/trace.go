package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// This file is the tracing half of the package: a per-request span API
// threaded through context. A context is "armed" with WithRecorder, which
// attaches a Trace (per-span capture for ?trace=1 responses), a StageSink
// (per-stage latency histograms), or both. StartSpan on an unarmed context
// returns (ctx, nil) without allocating anything — the nil *Span's methods
// are no-ops — so library code can instrument unconditionally and pay
// nothing when nobody is watching.

// StageSink receives the duration of every finished span, keyed by span
// name. *HistogramVec with a single label implements it, which is how span
// timings become neurovec_stage_duration_seconds{stage=...}.
type StageSink interface {
	ObserveStage(stage string, d time.Duration)
}

// ObserveStage lets a single-label HistogramVec act as a StageSink: the span
// name is the label value, the duration is observed in seconds.
func (v *HistogramVec) ObserveStage(stage string, d time.Duration) {
	v.With(stage).Observe(d.Seconds())
}

// SpanRecord is one finished span as captured by a Trace.
type SpanRecord struct {
	// Name is the stage name passed to StartSpan; Detail optionally narrows
	// it (e.g. the loop label) and never feeds metrics, only the trace.
	Name   string
	Detail string
	// Start is the span's offset from the trace's creation; Depth is its
	// nesting level (0 for a root span).
	Start    time.Duration
	Duration time.Duration
	Depth    int
}

// Trace captures the spans of one request. Safe for concurrent use: batched
// pipelines may finish spans from several goroutines.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTrace starts an empty trace; span offsets are relative to this moment.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// Spans returns the finished spans in start order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ctxKey indexes the recorder state in a context.
type ctxKey struct{}

// ctxState is what an armed context carries: where spans report, plus the
// nesting depth of the innermost open span on this context path.
type ctxState struct {
	trace *Trace
	sink  StageSink
	depth int
}

// WithRecorder arms ctx: spans started under the returned context append to
// trace (when non-nil) and report durations to sink (when non-nil). With
// both nil the context is returned unchanged — still the zero-cost path.
func WithRecorder(ctx context.Context, trace *Trace, sink StageSink) context.Context {
	if trace == nil && sink == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &ctxState{trace: trace, sink: sink})
}

// Span is one in-flight timed region. The zero of the API is a nil *Span,
// whose methods do nothing.
type Span struct {
	name   string
	detail string
	start  time.Time
	depth  int
	st     *ctxState
}

// StartSpan opens a span named name under ctx's recorder. On an unarmed
// context it returns (ctx, nil) with zero allocations; otherwise the
// returned context nests subsequent spans one level deeper. Close the span
// with End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	st, _ := ctx.Value(ctxKey{}).(*ctxState)
	if st == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now(), depth: st.depth, st: st}
	return context.WithValue(ctx, ctxKey{}, &ctxState{trace: st.trace, sink: st.sink, depth: st.depth + 1}), sp
}

// Enabled reports whether ctx carries a recorder — the hook for
// instrumentation that wants to skip building span details entirely.
func Enabled(ctx context.Context) bool {
	_, ok := ctx.Value(ctxKey{}).(*ctxState)
	return ok
}

// Annotate attaches a detail string (e.g. a loop label) to the span's trace
// record. Details never reach metrics, so they are free to be high-cardinality.
func (s *Span) Annotate(detail string) {
	if s != nil {
		s.detail = detail
	}
}

// End closes the span, reporting its duration to the sink and appending its
// record to the trace. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if s.st.sink != nil {
		s.st.sink.ObserveStage(s.name, d)
	}
	if tr := s.st.trace; tr != nil {
		tr.mu.Lock()
		tr.spans = append(tr.spans, SpanRecord{
			Name:     s.name,
			Detail:   s.detail,
			Start:    s.start.Sub(tr.start),
			Duration: d,
			Depth:    s.depth,
		})
		tr.mu.Unlock()
	}
}
