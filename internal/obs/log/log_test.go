package log

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixed() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

func TestTextLine(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelInfo, FormatText)
	l.now = fixed
	l.Debug("dropped")
	l.Info("model loaded", "version", 3, "path", "/tmp/m dir/model")
	got := b.String()
	want := "2026-08-08T12:00:00.000Z INFO  model loaded version=3 path=\"/tmp/m dir/model\"\n"
	if got != want {
		t.Errorf("text line:\n got %q\nwant %q", got, want)
	}
}

func TestJSONLine(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelDebug, FormatJSON)
	l.now = fixed
	l.With("request_id", "abc").Warn("slow request", "elapsed_ms", 12.5)
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v (%q)", err, b.String())
	}
	if m["level"] != "warn" || m["msg"] != "slow request" || m["request_id"] != "abc" || m["elapsed_ms"] != 12.5 {
		t.Errorf("unexpected fields: %v", m)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v")
	l.With("a", 1).Error("still fine")
	if l.Enabled(LevelError) {
		t.Errorf("nil logger reports enabled")
	}
}

func TestLevelFiltering(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelWarn, FormatText)
	l.now = fixed
	l.Info("hidden")
	l.Warn("shown")
	if strings.Contains(b.String(), "hidden") || !strings.Contains(b.String(), "shown") {
		t.Errorf("level filter broken: %q", b.String())
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError, "": LevelInfo} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Errorf("ParseLevel accepted garbage")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Errorf("ParseFormat accepted garbage")
	}
}

func TestOddKeyValues(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelInfo, FormatText)
	l.now = fixed
	l.Info("odd", "only-a-value")
	if !strings.Contains(b.String(), "!BADKEY=only-a-value") {
		t.Errorf("odd kv not flagged: %q", b.String())
	}
}
