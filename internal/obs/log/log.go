// Package log is the repo's tiny leveled, structured logger: one line per
// event, key=value fields, text or JSON output, no dependencies. It exists
// so the CLI and the serving layer share one logging surface (-log-level /
// -log-format flags) instead of scattering bare fmt.Fprintf calls.
//
// A nil *Logger is valid and discards everything, so library code can hold
// one unconditionally:
//
//	var l *log.Logger            // nil: all methods are no-ops
//	l = log.New(os.Stderr, log.LevelInfo, log.FormatText)
//	l.Info("model loaded", "version", v, "path", p)
package log

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way log lines spell it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a -log-level flag value onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("log: unknown level %q (want debug, info, warn, or error)", s)
}

// Format selects the line encoding.
type Format int8

// Output formats.
const (
	FormatText Format = iota
	FormatJSON
)

// ParseFormat maps a -log-format flag value onto a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("log: unknown format %q (want text or json)", s)
}

// Logger writes leveled, structured lines. Safe for concurrent use; a nil
// Logger discards everything.
type Logger struct {
	mu     *sync.Mutex
	out    io.Writer
	level  Level
	format Format
	fields []any // bound key/value pairs, always even length
	now    func() time.Time
}

// New returns a logger writing lines at or above level to out.
func New(out io.Writer, level Level, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, out: out, level: level, format: format, now: time.Now}
}

// With returns a logger that prepends the given key/value pairs to every
// line — the request-scoped logger pattern (e.g. With("request_id", id)).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	child := *l
	child.fields = append(append([]any{}, l.fields...), kv...)
	return &child
}

// Enabled reports whether lines at lv would be written.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.level }

// Debug / Info / Warn / Error write one line with alternating key/value
// fields appended to the bound ones.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	ts := l.now().UTC().Format("2006-01-02T15:04:05.000Z07:00")
	var line string
	if l.format == FormatJSON {
		line = l.jsonLine(ts, lv, msg, kv)
	} else {
		line = l.textLine(ts, lv, msg, kv)
	}
	l.mu.Lock()
	io.WriteString(l.out, line)
	l.mu.Unlock()
}

// pairs yields the combined bound+call fields as (key, value) tuples; an
// odd trailing value gets the key "!BADKEY" rather than being dropped.
func (l *Logger) pairs(kv []any) [][2]any {
	all := append(append([]any{}, l.fields...), kv...)
	var out [][2]any
	for i := 0; i < len(all); i += 2 {
		if i+1 >= len(all) {
			out = append(out, [2]any{"!BADKEY", all[i]})
			break
		}
		key, ok := all[i].(string)
		if !ok {
			key = fmt.Sprint(all[i])
		}
		out = append(out, [2]any{key, all[i+1]})
	}
	return out
}

func (l *Logger) textLine(ts string, lv Level, msg string, kv []any) string {
	var b strings.Builder
	b.WriteString(ts)
	fmt.Fprintf(&b, " %-5s %s", strings.ToUpper(lv.String()), msg)
	for _, p := range l.pairs(kv) {
		v := fmt.Sprint(p[1])
		if strings.ContainsAny(v, " \t\n\"=") || v == "" {
			v = strconv.Quote(v)
		}
		fmt.Fprintf(&b, " %s=%s", p[0], v)
	}
	b.WriteByte('\n')
	return b.String()
}

func (l *Logger) jsonLine(ts string, lv Level, msg string, kv []any) string {
	var b strings.Builder
	b.WriteByte('{')
	fmt.Fprintf(&b, `"time":%q,"level":%q,"msg":%s`, ts, lv.String(), jsonValue(msg))
	for _, p := range l.pairs(kv) {
		fmt.Fprintf(&b, `,%s:%s`, jsonValue(p[0].(string)), jsonValue(p[1]))
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonValue marshals v, degrading to its string form when it cannot be
// marshaled (logging must never fail the caller).
func jsonValue(v any) string {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return string(b)
}
