package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("neurovec_test_ops_total", "Test ops.", "kind")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				vec.With("a").Inc()
				vec.With("b").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := vec.With("a").Value(); got != 8000 {
		t.Errorf("counter a = %d, want 8000", got)
	}
	if got := vec.With("b").Value(); got != 16000 {
		t.Errorf("counter b = %d, want 16000", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("neurovec_test_duration_seconds", "Test latencies.", []float64{0.01, 0.1, 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(g%4) * 0.05) // 0, .05, .1, .15
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
	wantSum := 2.0 * 500 * (0 + 0.05 + 0.1 + 0.15)
	if got := h.Sum(); got < wantSum-1e-6 || got > wantSum+1e-6 {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("neurovec_test_gauge", "Test gauge.")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Errorf("gauge = %g, want 2.25", got)
	}
}

func TestRegisterIdempotentAndKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("neurovec_test_idem_total", "Idem.")
	b := r.Counter("neurovec_test_idem_total", "Idem.")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("re-registered counter is a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("re-registering as a different kind did not panic")
		}
	}()
	//lint:allow metricnames deliberately reuses a counter name to prove kind collisions panic
	r.Gauge("neurovec_test_idem_total", "Idem.")
}

// TestExpositionGolden pins the exact text rendering: HELP/TYPE headers,
// sorted families, quoted labels, integer counters, cumulative buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("neurovec_test_requests_total", "Requests by code.", "code")
	c.With("200").Add(3)
	c.With("500").Inc()
	r.Gauge("neurovec_test_depth", "Queue depth.").Set(2)
	h := r.HistogramVec("neurovec_test_stage_duration_seconds", "Stage latency.", []float64{0.1, 1}, "stage")
	h.With("parse").Observe(0.05)
	h.With("parse").Observe(0.5)
	h.With("parse").Observe(5)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP neurovec_test_depth Queue depth.
# TYPE neurovec_test_depth gauge
neurovec_test_depth 2
# HELP neurovec_test_requests_total Requests by code.
# TYPE neurovec_test_requests_total counter
neurovec_test_requests_total{code="200"} 3
neurovec_test_requests_total{code="500"} 1
# HELP neurovec_test_stage_duration_seconds Stage latency.
# TYPE neurovec_test_stage_duration_seconds histogram
neurovec_test_stage_duration_seconds_bucket{stage="parse",le="0.1"} 1
neurovec_test_stage_duration_seconds_bucket{stage="parse",le="1"} 2
neurovec_test_stage_duration_seconds_bucket{stage="parse",le="+Inf"} 3
neurovec_test_stage_duration_seconds_sum{stage="parse"} 5.55
neurovec_test_stage_duration_seconds_count{stage="parse"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLintAcceptsOwnExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("neurovec_test_requests_total", "Requests.", "code").With("200").Inc()
	r.GaugeFunc("neurovec_test_ratio", "A derived ratio.", func() float64 { return 0.5 })
	r.HistogramVec("neurovec_test_dur_seconds", "Latency.", []float64{0.1, 1}, "stage").With("x").Observe(0.2)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(strings.NewReader(b.String())); len(errs) != 0 {
		t.Errorf("lint rejected our own exposition: %v", errs)
	}
}

func TestLintCatchesMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without metadata": "orphan_metric 1\n",
		"bad value":               "# HELP m_total x\n# TYPE m_total counter\nm_total notanumber\n",
		"counter naming":          "# HELP m x\n# TYPE m counter\nm 1\n",
		"histogram missing +Inf":  "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"decreasing buckets":      "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for name, text := range cases {
		if errs := Lint(strings.NewReader(text)); len(errs) == 0 {
			t.Errorf("%s: lint found no errors in %q", name, text)
		}
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	sink := &captureSink{}
	ctx := WithRecorder(context.Background(), tr, sink)

	ctx1, root := StartSpan(ctx, "compile")
	ctx2, inner := StartSpan(ctx1, "parse")
	inner.Annotate("loop0")
	inner.End()
	_, sib := StartSpan(ctx2, "deeper")
	sib.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["compile"].Depth != 0 || byName["parse"].Depth != 1 || byName["deeper"].Depth != 2 {
		t.Errorf("depths wrong: %+v", byName)
	}
	if byName["parse"].Detail != "loop0" {
		t.Errorf("annotate lost: %+v", byName["parse"])
	}
	if spans[0].Name != "compile" {
		t.Errorf("spans not in start order: %+v", spans)
	}
	if len(sink.stages) != 3 {
		t.Errorf("sink saw %d stages, want 3", len(sink.stages))
	}
}

func TestNilSpanAndUnarmedContext(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Errorf("unarmed StartSpan returned a span")
	}
	if ctx2 != ctx {
		t.Errorf("unarmed StartSpan changed the context")
	}
	sp.Annotate("harmless")
	sp.End() // must not panic
	if Enabled(ctx) {
		t.Errorf("Enabled true on unarmed context")
	}
	if got := WithRecorder(ctx, nil, nil); got != ctx {
		t.Errorf("WithRecorder(nil, nil) wrapped the context")
	}
}

func TestHistogramVecAsStageSink(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("neurovec_stage_duration_seconds", "Stage latency.", []float64{1}, "stage")
	var sink StageSink = v
	sink.ObserveStage("parse", 500*time.Millisecond)
	if got := v.With("parse").Count(); got != 1 {
		t.Errorf("stage observation lost: count=%d", got)
	}
	if got := v.With("parse").Sum(); got < 0.49 || got > 0.51 {
		t.Errorf("stage sum = %g, want ~0.5", got)
	}
}

type captureSink struct {
	mu     sync.Mutex
	stages []string
}

func (c *captureSink) ObserveStage(stage string, d time.Duration) {
	c.mu.Lock()
	c.stages = append(c.stages, stage)
	c.mu.Unlock()
}

// BenchmarkSpanDisabled proves the acceptance criterion: instrumented code
// pays zero allocations when no recorder is armed.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := StartSpan(ctx, "compile")
		sp.Annotate("x")
		sp.End()
		_ = c
	}
}

func TestSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, "compile")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %g per op, want 0", allocs)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTrace()
	ctx := WithRecorder(context.Background(), tr, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "compile")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("neurovec_bench_total", "Bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("neurovec_bench_seconds", "Bench.", []float64{0.001, 0.01, 0.1, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.005)
	}
}
