package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text exposition the way promtool's check-metrics
// does: structural format errors (bad names, samples without metadata,
// unparsable values) and histogram-shape errors (missing +Inf, decreasing
// cumulative buckets, missing _sum/_count). It returns every problem found,
// so a test can report them all at once; an empty slice means the exposition
// is well-formed.
func Lint(r io.Reader) []error {
	var errs []error
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// sample lines: name{labels} value  — labels optional.
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)

	type meta struct {
		help, typ string
	}
	families := map[string]*meta{}
	typeOrder := []string{}

	// histState tracks one histogram child's bucket shape while its lines
	// stream by.
	type histState struct {
		last    int64
		sawInf  bool
		infVal  int64
		count   int64
		hasCnt  bool
		hasSum  bool
		baseKey string
	}
	hists := map[string]*histState{}

	// base strips histogram suffixes to find the family a sample belongs to.
	base := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if m, ok := families[trimmed]; ok && m.typ == "histogram" {
					return trimmed, suf
				}
			}
		}
		return name, ""
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name := fields[0]
			if !nameRe.MatchString(name) {
				errs = append(errs, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, name))
				continue
			}
			if families[name] == nil {
				families[name] = &meta{}
			}
			if families[name].help != "" {
				errs = append(errs, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name))
			}
			help := ""
			if len(fields) == 2 {
				help = fields[1]
			}
			if help == "" {
				errs = append(errs, fmt.Errorf("line %d: empty HELP text for %s", lineNo, name))
				help = "(empty)"
			}
			families[name].help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				errs = append(errs, fmt.Errorf("line %d: malformed TYPE line", lineNo))
				continue
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				errs = append(errs, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name))
			}
			if families[name] == nil {
				families[name] = &meta{}
			}
			if families[name].typ != "" {
				errs = append(errs, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name))
			}
			families[name].typ = typ
			typeOrder = append(typeOrder, name)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			errs = append(errs, fmt.Errorf("line %d: unparsable sample line %q", lineNo, line))
			continue
		}
		name, labels, value := m[1], m[3], m[4]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			errs = append(errs, fmt.Errorf("line %d: %s: unparsable value %q", lineNo, name, value))
		}
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					errs = append(errs, fmt.Errorf("line %d: %s: malformed label pair %q", lineNo, name, pair))
				}
			}
		}
		fam, suffix := base(name)
		md := families[fam]
		if md == nil || md.typ == "" || md.help == "" {
			errs = append(errs, fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE", lineNo, name))
			continue
		}
		if md.typ == "counter" && !strings.HasSuffix(fam, "_total") {
			errs = append(errs, fmt.Errorf("line %d: counter %s should end in _total", lineNo, fam))
		}
		if md.typ == "histogram" {
			key := fam + "\x00" + stripLE(labels)
			st := hists[key]
			if st == nil {
				st = &histState{baseKey: key}
				hists[key] = st
			}
			v, _ := strconv.ParseFloat(value, 64)
			switch suffix {
			case "_bucket":
				le := extractLE(labels)
				if le == "" {
					errs = append(errs, fmt.Errorf("line %d: %s_bucket without le label", lineNo, fam))
					continue
				}
				iv := int64(v)
				if iv < st.last {
					errs = append(errs, fmt.Errorf("line %d: %s: bucket counts decrease at le=%q", lineNo, fam, le))
				}
				st.last = iv
				if le == "+Inf" {
					st.sawInf = true
					st.infVal = iv
				}
			case "_count":
				st.hasCnt = true
				st.count = int64(v)
			case "_sum":
				st.hasSum = true
			default:
				errs = append(errs, fmt.Errorf("line %d: bare sample %s for histogram family %s", lineNo, name, fam))
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}
	for _, st := range hists {
		fam := strings.SplitN(st.baseKey, "\x00", 2)[0]
		if !st.sawInf {
			errs = append(errs, fmt.Errorf("%s: histogram child missing le=\"+Inf\" bucket", fam))
		}
		if !st.hasCnt || !st.hasSum {
			errs = append(errs, fmt.Errorf("%s: histogram child missing _sum or _count", fam))
		}
		if st.sawInf && st.hasCnt && st.infVal != st.count {
			errs = append(errs, fmt.Errorf("%s: +Inf bucket (%d) != _count (%d)", fam, st.infVal, st.count))
		}
	}
	_ = typeOrder
	return errs
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// stripLE removes the le pair so every bucket of one child shares a key.
func stripLE(labels string) string {
	var kept []string
	for _, pair := range splitLabels(labels) {
		if !strings.HasPrefix(pair, "le=") {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

// extractLE returns the le label's unquoted value, or "".
func extractLE(labels string) string {
	for _, pair := range splitLabels(labels) {
		if strings.HasPrefix(pair, "le=") {
			v := strings.TrimPrefix(pair, "le=")
			if unq, err := strconv.Unquote(v); err == nil {
				return unq
			}
			return v
		}
	}
	return ""
}
