// Package obs is the observability layer every subsystem reports through:
// a dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms, Prometheus text exposition) and a lightweight,
// allocation-conscious span API for per-request tracing.
//
// The two halves share one design rule: the disabled path costs nothing.
// StartSpan on a context without a recorder returns a nil span without
// allocating, and every metric update is a single atomic operation — no
// locks on the hot path, no maps touched after registration. The serving
// layer (internal/service), the trainer, and the evaluation harness all
// register into one Registry, so GET /metrics is the single pane of glass
// for the whole system.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are safe
// for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution. Buckets are upper
// bounds in ascending order; observations above the last bound land only in
// the implicit +Inf bucket. Observe is one atomic add per call.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // per-bucket (non-cumulative); rendered cumulative
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric kinds, also the TYPE line in the exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one registered metric name: its metadata and all its children
// (one per label-value combination; exactly one for unlabeled metrics).
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	fn       func() float64 // kindGauge with a callback instead of a child
}

// labelKey joins label values into the child-map key and validates arity.
func (f *family) labelKey(lvs []string) string {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	return strings.Join(lvs, "\x00")
}

// Registry holds every registered metric and renders the Prometheus text
// exposition. Registration is idempotent: asking for an existing name with
// the same kind returns the already-registered instrument, so packages can
// re-register without coordination. A name re-registered as a different kind
// panics — that is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it on first use.
func (r *Registry) register(name, help, kind string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labels: labels, bounds: bounds,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a counter family with the given labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(lvs ...string) *Counter {
	key := v.f.labelKey(lvs)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c := v.f.counters[key]
	if c == nil {
		c = &Counter{}
		v.f.counters[key] = c
	}
	return c
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeFunc registers a gauge whose value is computed at scrape time — the
// natural shape for queue depth, in-flight counts, and derived ratios.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(lvs ...string) *Gauge {
	key := v.f.labelKey(lvs)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g := v.f.gauges[key]
	if g == nil {
		g = &Gauge{}
		v.f.gauges[key] = g
	}
	return g
}

// Reset drops every child — used by info-style gauges where only the current
// label set (e.g. the served model version) should appear in the exposition.
func (v *GaugeVec) Reset() {
	v.f.mu.Lock()
	v.f.gauges = make(map[string]*Gauge)
	v.f.mu.Unlock()
}

// Histogram registers (or returns) an unlabeled histogram with the given
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramVec(name, help, bounds).With()
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, bounds)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(lvs ...string) *Histogram {
	key := v.f.labelKey(lvs)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h := v.f.hists[key]
	if h == nil {
		h = &Histogram{bounds: v.f.bounds, counts: make([]atomic.Int64, len(v.f.bounds))}
		v.f.hists[key] = h
	}
	return h
}

// WriteTo renders the full registry in the Prometheus text exposition
// format: families sorted by name, children sorted by label values, every
// family preceded by its HELP and TYPE lines. The snapshot is rendered to an
// internal buffer first, so a slow scraper never holds metric locks.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// render writes one family's HELP/TYPE header and all its samples.
func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
	switch f.kind {
	case kindCounter:
		for _, key := range sortedKeys(f.counters) {
			fmt.Fprintf(b, "%s%s %d\n", f.name, f.labelString(key, ""), f.counters[key].Value())
		}
	case kindGauge:
		if f.fn != nil {
			fmt.Fprintf(b, "%s %g\n", f.name, f.fn())
			return
		}
		for _, key := range sortedKeys(f.gauges) {
			fmt.Fprintf(b, "%s%s %g\n", f.name, f.labelString(key, ""), f.gauges[key].Value())
		}
	case kindHistogram:
		for _, key := range sortedKeys(f.hists) {
			h := f.hists[key]
			cum := int64(0)
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labelString(key, fmt.Sprintf("le=\"%g\"", ub)), cum)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labelString(key, `le="+Inf"`), h.Count())
			fmt.Fprintf(b, "%s_sum%s %g\n", f.name, f.labelString(key, ""), h.Sum())
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, f.labelString(key, ""), h.Count())
		}
	}
}

// labelString renders {k="v",...} for one child key, appending extra (a
// pre-rendered pair like le="0.5") when non-empty.
func (f *family) labelString(key, extra string) string {
	if len(f.labels) == 0 && extra == "" {
		return ""
	}
	var parts []string
	if len(f.labels) > 0 {
		values := strings.Split(key, "\x00")
		for i, l := range f.labels {
			parts = append(parts, fmt.Sprintf("%s=%q", l, values[i]))
		}
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
