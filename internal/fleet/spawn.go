package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	obslog "neurovec/internal/obs/log"
)

// SpawnConfig configures a locally spawned replica set (`neurovec fleet
// -spawn`). The alternative is joining externally managed replicas by
// address (`-join`), in which case this file is not involved.
type SpawnConfig struct {
	// Bin is the executable to run (normally os.Args[0]); N is the replica
	// count.
	Bin string
	N   int
	// Args are appended to "serve -addr <host:port>" on every replica's
	// command line — the model path, log flags, cache sizing, and so on.
	Args []string
	// Stdout and Stderr receive the children's output (default: discard /
	// the parent's stderr).
	Stdout io.Writer
	Stderr io.Writer
	// Logger receives supervision events; nil discards them.
	Logger *obslog.Logger
}

// Spawned is a supervised set of local replica processes. A replica that
// exits unexpectedly is restarted on its original port with capped backoff,
// so the router's ring membership stays stable across crashes: the prober
// ejects the dead replica, the supervisor restarts it, and the prober
// re-admits it.
type Spawned struct {
	// Addrs are the replicas' base URLs in spawn order — the router's
	// Config.Replicas.
	Addrs []string

	cfg      SpawnConfig
	procs    []*proc
	log      *obslog.Logger
	stopping atomic.Bool
	wg       sync.WaitGroup
}

// proc is one supervised child process.
type proc struct {
	addr string // host:port
	mu   sync.Mutex
	cmd  *exec.Cmd
}

// Spawn starts n replica processes on free localhost ports and begins
// supervising them. It does not wait for readiness; use WaitReady.
func Spawn(cfg SpawnConfig) (*Spawned, error) {
	if cfg.N <= 0 {
		return nil, errors.New("fleet: spawn needs at least one replica")
	}
	if cfg.Bin == "" {
		cfg.Bin = os.Args[0]
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	s := &Spawned{cfg: cfg, log: cfg.Logger}
	for i := 0; i < cfg.N; i++ {
		addr, err := freePort()
		if err != nil {
			s.Stop(5 * time.Second)
			return nil, err
		}
		p := &proc{addr: addr}
		if err := s.start(p); err != nil {
			s.Stop(5 * time.Second)
			return nil, err
		}
		s.procs = append(s.procs, p)
		s.Addrs = append(s.Addrs, "http://"+addr)
		s.wg.Add(1)
		go s.supervise(p)
	}
	return s, nil
}

// freePort reserves an ephemeral localhost port by binding and releasing it.
// The window between release and the child's bind is racy in principle, but
// localhost ephemeral ports do not get reused that fast; a lost race
// surfaces as the child failing readiness, not as silent misrouting.
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// start launches (or relaunches) the child for p.
func (s *Spawned) start(p *proc) error {
	args := append([]string{"serve", "-addr", p.addr}, s.cfg.Args...)
	cmd := exec.Command(s.cfg.Bin, args...)
	cmd.Stdout = s.cfg.Stdout
	cmd.Stderr = s.cfg.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: spawn replica on %s: %w", p.addr, err)
	}
	p.mu.Lock()
	p.cmd = cmd
	p.mu.Unlock()
	s.log.Info("replica spawned", "replica", p.addr, "pid", cmd.Process.Pid)
	return nil
}

// supervise restarts p's child whenever it exits before Stop, with capped
// backoff so a crash-looping binary cannot spin the CPU.
func (s *Spawned) supervise(p *proc) {
	defer s.wg.Done()
	backoff := 500 * time.Millisecond
	for {
		p.mu.Lock()
		cmd := p.cmd
		p.mu.Unlock()
		err := cmd.Wait()
		if s.stopping.Load() {
			return
		}
		s.log.Warn("replica exited unexpectedly", "replica", p.addr, "error", err)
		time.Sleep(backoff)
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
		if s.stopping.Load() {
			return
		}
		if err := s.start(p); err != nil {
			s.log.Error("replica restart failed", "replica", p.addr, "error", err)
			continue
		}
	}
}

// WaitReady blocks until every replica answers GET /readyz with 200 (the
// model is loaded and serving) or the context/timeout expires.
func (s *Spawned) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	client := &http.Client{Timeout: time.Second}
	for _, base := range s.Addrs {
		for {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("fleet: replica %s not ready: %w", base, ctx.Err())
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return nil
}

// Stop shuts the replica set down: SIGTERM (graceful drain in `serve`), then
// SIGKILL for stragglers after the timeout.
func (s *Spawned) Stop(timeout time.Duration) {
	s.stopping.Store(true)
	for _, p := range s.procs {
		p.mu.Lock()
		cmd := p.cmd
		p.mu.Unlock()
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Signal(os.Interrupt)
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		for _, p := range s.procs {
			p.mu.Lock()
			cmd := p.cmd
			p.mu.Unlock()
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		<-done
	}
}
