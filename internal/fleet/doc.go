// Package fleet is the multi-replica serving tier: a front-end router
// (`neurovec fleet`) that shards /v2/compile traffic across N `neurovec
// serve` replicas by consistent hash, with health-probe-driven replica
// lifecycle (ejection and re-admission), bounded per-replica forwarding with
// failover and hedging, a shared response-cache tier above the replicas' own
// caches, and a coordinated rolling hot-reload that promotes a new
// checkpoint replica-by-replica with zero dropped requests.
//
// The pieces:
//
//   - Ring (ring.go): a consistent-hash ring with virtual nodes. The shard
//     key is (fleet model version, LoopID) for single-loop sources and
//     (fleet model version, source hash) otherwise, so the interactive
//     single-loop workload keeps per-loop cache affinity across cosmetic
//     edits while membership changes move a minimal key range.
//   - Router (router.go): terminates all three /v2/compile request forms —
//     single, batch envelope, NDJSON stream — decomposes them into per-file
//     forwards, and reassembles responses in request order. Per-file routing
//     is what lets a replica die mid-batch without breaking the batch: only
//     its in-flight files re-route.
//   - Replica lifecycle (replica.go): /readyz probes on a fixed cadence;
//     FailAfter consecutive failures eject a replica from the ring,
//     ReadyAfter successes re-admit it. Forward-path transport failures
//     count toward the same streak, so a crash is ejected at request speed,
//     not probe speed.
//   - Shared cache tier (router.go): an LRU over rendered replica responses
//     keyed exactly like the replicas' own response caches
//     (service.CompileCacheKey) under the fleet-consistent model version —
//     the version every ready replica agreed on. A mixed-version fleet
//     (mid-roll) disables the tier entirely, so cached bytes never cross
//     model versions.
//   - Rolling reload (reload.go): POST /fleet/reload drains, reloads,
//     verifies, and re-admits each replica in turn, aborting if replicas
//     diverge on the new checkpoint's version.
//   - Spawner (spawn.go): `-spawn` mode execs and supervises local replica
//     processes, restarting crashed ones on their original ports.
//
// The router deliberately terminates requests rather than proxying bodies
// verbatim: decomposing batches is what enables per-file hedging, failover,
// and caching. For the single-request form the replica's response bytes do
// pass through unmodified, so a fleet answer is byte-identical to a
// single-process `neurovec serve` answer. See docs/FLEET.md for topology
// and failure semantics.
package fleet
