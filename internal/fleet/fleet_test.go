package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neurovec/internal/api"
	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/rl"
	"neurovec/internal/service"
)

// The fixture trains one small model (and a retrained variant for the
// rolling-reload tests) once for the whole package — the same recipe the
// service package tests use, so replica behavior matches.
var fixture struct {
	once   sync.Once
	err    error
	model1 string
	model2 string
	srcs   []string
}

func testFixture(t *testing.T) {
	t.Helper()
	fixture.once.Do(func() {
		dir, err := os.MkdirTemp("", "neurovec-fleet")
		if err != nil {
			fixture.err = err
			return
		}
		cfg := core.DefaultConfig()
		cfg.Embed.OutDim = 48
		cfg.Embed.EmbedDim = 12
		cfg.Embed.MaxContexts = 40
		fw := core.New(cfg)
		if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 30, Seed: 1})); err != nil {
			fixture.err = err
			return
		}
		rc := rl.DefaultConfig(nil, nil)
		rc.Batch = 96
		rc.MiniBatch = 32
		rc.Iterations = 3
		rc.LR = 1e-3
		rc.Hidden = []int{32, 32}
		fw.Train(&rc)
		fixture.model1 = filepath.Join(dir, "model1.gob")
		if err := fw.SaveModelFile(fixture.model1); err != nil {
			fixture.err = err
			return
		}
		if _, err := fw.ContinueTraining(1); err != nil {
			fixture.err = err
			return
		}
		fixture.model2 = filepath.Join(dir, "model2.gob")
		if err := fw.SaveModelFile(fixture.model2); err != nil {
			fixture.err = err
			return
		}
		for _, s := range dataset.Generate(dataset.GenConfig{N: 8, Seed: 7}).Samples {
			fixture.srcs = append(fixture.srcs, s.Source)
		}
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
}

func modelVersion(t *testing.T, path string) string {
	t.Helper()
	fw := core.New(core.DefaultConfig())
	if err := fw.LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	return fw.ModelVersion()
}

func copyFile(t *testing.T, from, to string) {
	t.Helper()
	data, err := os.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(to, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// testReplica is one backend `serve` instance behind a kill switch: down
// replicas answer 503 on every route and drop existing connections, which is
// how the tests simulate a crashed process without losing the port.
type testReplica struct {
	svc  *service.Server
	hs   *httptest.Server
	down atomic.Bool
}

func (rep *testReplica) kill() {
	rep.down.Store(true)
	rep.hs.CloseClientConnections()
}

func (rep *testReplica) revive() { rep.down.Store(false) }

// newTestFleet builds n replicas (each serving the checkpoint at paths[i])
// and a router over them. The router's background prober is not started;
// tests drive probes deterministically with rt.probeOnce(). One synchronous
// sweep runs here so the fleet version is known from the start.
func newTestFleet(t *testing.T, paths []string, cfg Config) (*Router, []*testReplica) {
	t.Helper()
	replicas := make([]*testReplica, len(paths))
	addrs := make([]string, len(paths))
	for i, path := range paths {
		svc, err := service.New(service.Config{ModelPath: path})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		rep := &testReplica{svc: svc}
		rep.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if rep.down.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"replica down"}`)
				return
			}
			svc.ServeHTTP(w, r)
		}))
		t.Cleanup(rep.hs.Close)
		replicas[i] = rep
		addrs[i] = rep.hs.URL
	}
	cfg.Replicas = addrs
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // tests drive probes by hand
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = 2
	}
	if cfg.ReadyAfter == 0 {
		cfg.ReadyAfter = 1
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rt.probeOnce()
	return rt, replicas
}

// post sends one JSON request through a handler.
func post(t *testing.T, h http.Handler, path string, body any, hdr map[string]string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec, rec.Body.Bytes()
}

// postNDJSON sends reqs as an NDJSON stream and returns the response lines.
func postNDJSON(t *testing.T, h http.Handler, reqs []api.CompileRequest, hdr map[string]string) [][]byte {
	t.Helper()
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for i := range reqs {
		if err := enc.Encode(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v2/compile", &in)
	req.Header.Set("Content-Type", "application/x-ndjson")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("NDJSON status %d: %s", rec.Code, rec.Body.String())
	}
	var lines [][]byte
	for _, l := range bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n")) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

// streamRecorder is a ResponseWriter that hands each written chunk to the
// test as it arrives, so a test can interleave writing request lines with
// reading response lines — which net/http's HTTP/1.1 client cannot do.
type streamRecorder struct {
	hdr    http.Header
	chunks chan []byte
	rest   []byte
}

func newStreamRecorder() *streamRecorder {
	return &streamRecorder{hdr: make(http.Header), chunks: make(chan []byte, 64)}
}

func (w *streamRecorder) Header() http.Header { return w.hdr }
func (w *streamRecorder) WriteHeader(int)     {}
func (w *streamRecorder) Flush()              {}
func (w *streamRecorder) Write(p []byte) (int, error) {
	w.chunks <- append([]byte(nil), p...)
	return len(p), nil
}

// line returns the next newline-terminated response line.
func (w *streamRecorder) line(timeout time.Duration) ([]byte, error) {
	deadline := time.After(timeout)
	for {
		if i := bytes.IndexByte(w.rest, '\n'); i >= 0 {
			line := append([]byte(nil), w.rest[:i]...)
			w.rest = w.rest[i+1:]
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			return line, nil
		}
		select {
		case chunk := <-w.chunks:
			w.rest = append(w.rest, chunk...)
		case <-deadline:
			return nil, fmt.Errorf("no response line within %s", timeout)
		}
	}
}

// stripIDs removes every request_id field: the one response field that
// legitimately differs between a fleet answer and a single-process answer.
func stripIDs(v any) {
	switch x := v.(type) {
	case map[string]any:
		delete(x, "request_id")
		for _, vv := range x {
			stripIDs(vv)
		}
	case []any:
		for _, vv := range x {
			stripIDs(vv)
		}
	}
}

func normalize(t *testing.T, body []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	stripIDs(v)
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// metricValue digs one un-labeled sample out of the router's /metrics text.
func metricValue(t *testing.T, rt *Router, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	rt.metrics.WriteTo(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, buf.String())
	return 0
}

// TestFleetSingleByteIdentityAndSharedCache pins the core fleet contract:
// the router's answer to a single-form request is byte-identical to a
// single-process `neurovec serve` answer, and a repeat is served from the
// shared cache tier with the same bytes.
func TestFleetSingleByteIdentityAndSharedCache(t *testing.T) {
	testFixture(t)
	rt, _ := newTestFleet(t, []string{fixture.model1, fixture.model1, fixture.model1}, Config{})
	ref, err := service.New(service.Config{ModelPath: fixture.model1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for i, src := range fixture.srcs[:4] {
		req := api.CompileRequest{Source: src}
		rec, body := post(t, rt, "/v2/compile", &req, nil)
		refRec, refBody := post(t, ref, "/v2/compile", &req, nil)
		if rec.Code != http.StatusOK || refRec.Code != http.StatusOK {
			t.Fatalf("src %d: fleet %d, single %d: %s", i, rec.Code, refRec.Code, body)
		}
		if string(body) != string(refBody) {
			t.Fatalf("src %d: fleet body differs from single-process body:\n--- fleet ---\n%s\n--- single ---\n%s", i, body, refBody)
		}
		if got := rec.Header().Get("X-Neurovec-Cache"); got != "miss" {
			t.Fatalf("src %d: first fleet request cache header %q, want miss", i, got)
		}
		rec2, body2 := post(t, rt, "/v2/compile", &req, nil)
		if rec2.Code != http.StatusOK || rec2.Header().Get("X-Neurovec-Cache") != "hit" {
			t.Fatalf("src %d: repeat status %d cache %q, want 200 hit", i, rec2.Code, rec2.Header().Get("X-Neurovec-Cache"))
		}
		if string(body2) != string(body) {
			t.Fatalf("src %d: shared-cache hit bytes differ from miss bytes", i)
		}
	}

	// The edge honors a sane inbound X-Request-ID and echoes it back.
	rec, _ := post(t, rt, "/v2/compile", &api.CompileRequest{Source: fixture.srcs[0]}, map[string]string{"X-Request-ID": "fleet-corr-1"})
	if got := rec.Header().Get("X-Request-ID"); got != "fleet-corr-1" {
		t.Fatalf("router did not echo inbound request ID: got %q", got)
	}
}

// TestFleetBatchAndStreamMatchSingleProcess runs the batch envelope and the
// NDJSON stream through the router and requires decision-identical output
// (modulo request_id) to a single-process server, with the edge request ID
// stamped on every record.
func TestFleetBatchAndStreamMatchSingleProcess(t *testing.T) {
	testFixture(t)
	rt, _ := newTestFleet(t, []string{fixture.model1, fixture.model1, fixture.model1}, Config{})
	ref, err := service.New(service.Config{ModelPath: fixture.model1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	reqs := make([]api.CompileRequest, 4)
	for i, src := range fixture.srcs[:4] {
		reqs[i] = api.CompileRequest{File: fmt.Sprintf("f%d.c", i), Source: src}
	}

	_, fleetBatch := post(t, rt, "/v2/compile", api.Batch{Requests: reqs}, nil)
	_, refBatch := post(t, ref, "/v2/compile", api.Batch{Requests: reqs}, nil)
	if normalize(t, fleetBatch) != normalize(t, refBatch) {
		t.Fatalf("batch responses differ:\n--- fleet ---\n%s\n--- single ---\n%s", fleetBatch, refBatch)
	}

	hdr := map[string]string{"X-Request-ID": "fleet-stream-7"}
	fleetLines := postNDJSON(t, rt, reqs, hdr)
	refLines := postNDJSON(t, ref, reqs, nil)
	if len(fleetLines) != len(reqs) || len(refLines) != len(reqs) {
		t.Fatalf("line counts: fleet %d, single %d, want %d", len(fleetLines), len(refLines), len(reqs))
	}
	for i := range fleetLines {
		if normalize(t, fleetLines[i]) != normalize(t, refLines[i]) {
			t.Fatalf("line %d differs:\n--- fleet ---\n%s\n--- single ---\n%s", i, fleetLines[i], refLines[i])
		}
		var resp api.CompileResponse
		if err := json.Unmarshal(fleetLines[i], &resp); err != nil {
			t.Fatal(err)
		}
		if resp.RequestID != "fleet-stream-7" {
			t.Fatalf("line %d request_id %q, want the edge ID", i, resp.RequestID)
		}
		if resp.Error != "" {
			t.Fatalf("line %d unexpected error: %s", i, resp.Error)
		}
	}
}

// TestFleetKillReplicaMidStream is the failure drill: a replica dies while
// an NDJSON batch is in flight, and the router must route the remaining
// lines to the survivors — every line answered, in order, byte-identical
// (modulo request_id) to a single-process run.
func TestFleetKillReplicaMidStream(t *testing.T) {
	testFixture(t)
	rt, replicas := newTestFleet(t, []string{fixture.model1, fixture.model1, fixture.model1}, Config{})
	ref, err := service.New(service.Config{ModelPath: fixture.model1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	reqs := make([]api.CompileRequest, len(fixture.srcs))
	for i, src := range fixture.srcs {
		reqs[i] = api.CompileRequest{File: fmt.Sprintf("k%d.c", i), Source: src}
	}

	// Drive the router handler directly with a piped request body and a
	// channel-backed response writer: Go's HTTP/1.1 client cannot pipeline
	// request lines against response lines on one connection (no client-side
	// full duplex), but the handler streams each response as its line
	// completes, which is exactly what this test needs to observe.
	pr, pw := io.Pipe()
	httpReq := httptest.NewRequest(http.MethodPost, "/v2/compile", pr)
	httpReq.Header.Set("Content-Type", "application/x-ndjson")
	sw := newStreamRecorder()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		rt.ServeHTTP(sw, httpReq)
	}()

	writeLine := func(i int) {
		data, err := json.Marshal(&reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pw.Write(append(data, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	readLine := func() []byte {
		line, err := sw.line(5 * time.Second)
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		return line
	}

	var lines [][]byte
	// First half flows through the healthy fleet.
	for i := 0; i < 4; i++ {
		writeLine(i)
		lines = append(lines, readLine())
	}
	// A replica dies mid-batch; probe sweeps eject it from the ring.
	replicas[1].kill()
	rt.probeOnce()
	rt.probeOnce()
	// The rest of the batch must survive on the remaining replicas.
	for i := 4; i < len(reqs); i++ {
		writeLine(i)
	}
	pw.Close()
	for i := 4; i < len(reqs); i++ {
		lines = append(lines, readLine())
	}
	<-handlerDone

	_, st := get(t, rt, "/fleet/status")
	var status api.FleetStatus
	if err := json.Unmarshal(st, &status); err != nil {
		t.Fatal(err)
	}
	if status.ReadyReplicas != 2 {
		t.Fatalf("ready replicas after kill: %d, want 2 (%s)", status.ReadyReplicas, st)
	}

	for i, line := range lines {
		var got api.CompileResponse
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatal(err)
		}
		if got.Error != "" {
			t.Fatalf("line %d failed after replica kill: %s", i, got.Error)
		}
		if got.File != reqs[i].File {
			t.Fatalf("line %d out of order: file %q, want %q", i, got.File, reqs[i].File)
		}
		refLines := postNDJSON(t, ref, reqs[i:i+1], nil)
		if normalize(t, line) != normalize(t, refLines[0]) {
			t.Fatalf("line %d decisions differ from single-process run:\n--- fleet ---\n%s\n--- single ---\n%s", i, line, refLines[0])
		}
	}
}

// TestFleetEjectionAndReadmission walks the replica lifecycle: probe
// failures eject, traffic keeps flowing, recovery re-admits.
func TestFleetEjectionAndReadmission(t *testing.T) {
	testFixture(t)
	rt, replicas := newTestFleet(t, []string{fixture.model1, fixture.model1, fixture.model1}, Config{})

	v1 := modelVersion(t, fixture.model1)
	if got := rt.fleetVersion(); got != v1 {
		t.Fatalf("fleet version %q, want %q", got, v1)
	}

	replicas[2].kill()
	rt.probeOnce() // failure 1
	rt.probeOnce() // failure 2 -> ejected (FailAfter: 2)

	_, st := get(t, rt, "/fleet/status")
	var status api.FleetStatus
	if err := json.Unmarshal(st, &status); err != nil {
		t.Fatal(err)
	}
	if status.ReadyReplicas != 2 || status.Replicas[2].State != api.ReplicaEjected {
		t.Fatalf("after kill: %s", st)
	}
	if status.ModelVersion != v1 {
		t.Fatalf("fleet version lost on ejection: %s", st)
	}

	// Traffic still flows around the hole (fresh source to dodge caches).
	rec, body := post(t, rt, "/v2/compile", &api.CompileRequest{Source: "// ejection drill\n" + fixture.srcs[0]}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("request during ejection: %d: %s", rec.Code, body)
	}

	replicas[2].revive()
	rt.probeOnce() // success -> ready (ReadyAfter: 1)
	_, st = get(t, rt, "/fleet/status")
	if err := json.Unmarshal(st, &status); err != nil {
		t.Fatal(err)
	}
	if status.ReadyReplicas != 3 || status.Replicas[2].State != api.ReplicaReady {
		t.Fatalf("after recovery: %s", st)
	}

	// All replicas down -> the router itself reports unready and sheds.
	for _, rep := range replicas {
		rep.kill()
	}
	rt.probeOnce()
	rt.probeOnce()
	rec, _ = get(t, rt, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty ring: %d, want 503", rec.Code)
	}
	rec, _ = post(t, rt, "/v2/compile", &api.CompileRequest{Source: "// empty ring\n" + fixture.srcs[0]}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("compile with empty ring: %d, want 503", rec.Code)
	}
}

// TestFleetHedging points a fleet at one slow and one fast replica and
// requires hedged duplicates to keep tail latency bounded: every request
// answers OK, and at least one hedge fires.
func TestFleetHedging(t *testing.T) {
	testFixture(t)
	svcSlow, err := service.New(service.Config{ModelPath: fixture.model1})
	if err != nil {
		t.Fatal(err)
	}
	defer svcSlow.Close()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v2/") {
			time.Sleep(300 * time.Millisecond)
		}
		svcSlow.ServeHTTP(w, r)
	}))
	defer slow.Close()
	svcFast, err := service.New(service.Config{ModelPath: fixture.model1})
	if err != nil {
		t.Fatal(err)
	}
	defer svcFast.Close()
	fast := httptest.NewServer(svcFast)
	defer fast.Close()

	rt, err := New(Config{
		Replicas:      []string{slow.URL, fast.URL},
		ProbeInterval: time.Hour,
		HedgeAfter:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.probeOnce()

	for i, src := range fixture.srcs {
		rec, body := post(t, rt, "/v2/compile", &api.CompileRequest{Source: src}, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("src %d: status %d: %s", i, rec.Code, body)
		}
	}
	if hedges := metricValue(t, rt, "neurovec_fleet_hedges_total"); hedges == 0 {
		t.Fatal("no hedges fired against a replica 15x slower than the hedge delay")
	}
}

// TestFleetRollingReload drives the tentpole state machine under concurrent
// traffic: every replica's checkpoint is swapped on disk, POST /fleet/reload
// rolls the fleet replica-by-replica, no request observes a non-2xx, and the
// fleet converges on the new version with the cache tier re-armed.
func TestFleetRollingReload(t *testing.T) {
	testFixture(t)
	dir := t.TempDir()
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("serving-%d.gob", i))
		copyFile(t, fixture.model1, paths[i])
	}
	rt, _ := newTestFleet(t, paths, Config{})
	v1 := modelVersion(t, fixture.model1)
	v2 := modelVersion(t, fixture.model2)

	// A second reload attempt while one is running must 409, not interleave.
	rt.reloadMu.Lock()
	rec, _ := post(t, rt, "/fleet/reload", nil, nil)
	rt.reloadMu.Unlock()
	if rec.Code != http.StatusConflict {
		t.Fatalf("concurrent reload: status %d, want 409", rec.Code)
	}

	// The retrained checkpoint lands on every replica's disk.
	for _, p := range paths {
		copyFile(t, fixture.model2, p)
	}

	// Concurrent traffic throughout the roll: distinct sources per worker
	// so requests actually travel to replicas rather than the shared cache.
	stop := make(chan struct{})
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := fmt.Sprintf("// worker %d iter %d\n%s", w, i, fixture.srcs[(w+i)%len(fixture.srcs)])
				rec, _ := post(t, rt, "/v2/compile", &api.CompileRequest{Source: src}, nil)
				if rec.Code < 200 || rec.Code > 299 {
					wrong.Add(1)
				}
			}
		}(w)
	}

	rec, body := post(t, rt, "/fleet/reload", nil, nil)
	close(stop)
	wg.Wait()

	if rec.Code != http.StatusOK {
		t.Fatalf("rolling reload: status %d: %s", rec.Code, body)
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d requests saw a non-2xx during the roll", n)
	}
	var out api.FleetReloadResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ModelVersion != v2 {
		t.Fatalf("roll target %q, want %q (%s)", out.ModelVersion, v2, body)
	}
	if len(out.Replicas) != len(paths) {
		t.Fatalf("reload reported %d replicas, want %d", len(out.Replicas), len(paths))
	}
	for i, rep := range out.Replicas {
		if rep.PreviousVersion != v1 || rep.ModelVersion != v2 || rep.Error != "" {
			t.Fatalf("replica %d outcome: %+v, want %s -> %s", i, rep, v1, v2)
		}
	}

	// The fleet converged: status, the version gate, and fresh traffic all
	// see v2, and the shared cache re-arms under the new version's keys.
	_, st := get(t, rt, "/fleet/status")
	var status api.FleetStatus
	if err := json.Unmarshal(st, &status); err != nil {
		t.Fatal(err)
	}
	if status.ModelVersion != v2 || status.ReadyReplicas != 3 {
		t.Fatalf("post-roll status: %s", st)
	}
	req := api.CompileRequest{Source: "// post roll\n" + fixture.srcs[1]}
	rec, body = post(t, rt, "/v2/compile", &req, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-roll compile: %d: %s", rec.Code, body)
	}
	var resp api.CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != v2 {
		t.Fatalf("post-roll response served version %q, want %q", resp.ModelVersion, v2)
	}
	rec, _ = post(t, rt, "/v2/compile", &req, nil)
	if rec.Header().Get("X-Neurovec-Cache") != "hit" {
		t.Fatal("shared cache did not re-arm after the roll")
	}
}

// TestFleetMixedVersionNeverCached pins the cache-consistency invariant
// directly: while replicas disagree on the model version, the shared tier
// must neither serve nor store.
func TestFleetMixedVersionNeverCached(t *testing.T) {
	testFixture(t)
	rt, _ := newTestFleet(t, []string{fixture.model1, fixture.model2}, Config{})
	if got := rt.fleetVersion(); got != "" {
		t.Fatalf("mixed fleet reported consistent version %q", got)
	}
	req := api.CompileRequest{Source: fixture.srcs[2]}
	for i := 0; i < 2; i++ {
		rec, body := post(t, rt, "/v2/compile", &req, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("mixed-fleet compile %d: %d: %s", i, rec.Code, body)
		}
		if got := rec.Header().Get("X-Neurovec-Cache"); got != "bypass" {
			t.Fatalf("mixed-fleet request %d cache header %q, want bypass", i, got)
		}
	}
	if rt.cache.Len() != 0 {
		t.Fatalf("mixed-version responses were cached: %d entries", rt.cache.Len())
	}
}
