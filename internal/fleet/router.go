package fleet

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurovec/internal/api"
	"neurovec/internal/core"
	"neurovec/internal/diag"
	"neurovec/internal/lang"
	obslog "neurovec/internal/obs/log"
	"neurovec/internal/service"
)

// Config configures a Router. The zero value of every optional field picks a
// sensible default; Replicas is required.
type Config struct {
	// Replicas are the backend base URLs (e.g. "http://127.0.0.1:7001") in
	// stable configuration order — the rolling-reload order.
	Replicas []string
	// VNodes is the virtual-node count per replica (<= 0: DefaultVNodes).
	VNodes int
	// ProbeInterval is the readiness-probe cadence (default 1s) and
	// ProbeTimeout bounds each probe round trip (default: ProbeInterval,
	// capped at 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter consecutive probe/forward failures eject a replica from the
	// ring (default 3); ReadyAfter consecutive probe successes re-admit it
	// (default 2).
	FailAfter  int
	ReadyAfter int
	// HedgeAfter is how long to wait on the owning replica before sending a
	// duplicate request to the next ring node (first answer wins). Zero
	// disables hedging; failures still fail over immediately.
	HedgeAfter time.Duration
	// CacheEntries sizes the shared response-cache tier (default 4096;
	// negative disables it).
	CacheEntries int
	// ReplicaInFlight bounds concurrent forwards per replica (default 64).
	// At the bound, requests fail over to the next ring node instead of
	// queueing in the router.
	ReplicaInFlight int
	// MaxRequestBytes bounds inbound request bodies (default 4 MiB — above
	// the replicas' per-file limit because the router accepts whole batches).
	MaxRequestBytes int64
	// DrainTimeout bounds how long a rolling reload waits for a draining
	// replica's in-flight requests (default 10s); ReadyTimeout bounds the
	// wait for a reloaded replica to become ready again (default 30s).
	DrainTimeout time.Duration
	ReadyTimeout time.Duration
	// Logger receives router events; nil discards them.
	Logger *obslog.Logger
	// Transport overrides the forwarding transport (tests).
	Transport http.RoundTripper
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.VNodes <= 0 {
		out.VNodes = DefaultVNodes
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = time.Second
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = out.ProbeInterval
		if out.ProbeTimeout > time.Second {
			out.ProbeTimeout = time.Second
		}
	}
	if out.FailAfter <= 0 {
		out.FailAfter = 3
	}
	if out.ReadyAfter <= 0 {
		out.ReadyAfter = 2
	}
	if out.CacheEntries == 0 {
		out.CacheEntries = 4096
	}
	if out.ReplicaInFlight <= 0 {
		out.ReplicaInFlight = 64
	}
	if out.MaxRequestBytes <= 0 {
		out.MaxRequestBytes = 4 << 20
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 10 * time.Second
	}
	if out.ReadyTimeout <= 0 {
		out.ReadyTimeout = 30 * time.Second
	}
	return out
}

// Router is the fleet front end: it terminates /v2/compile in all three
// request forms, shards files across replicas by consistent hash, hedges and
// fails over across ring nodes, serves a shared response-cache tier, and
// orchestrates rolling reloads. See docs/FLEET.md.
type Router struct {
	cfg      Config
	replicas []*replica // stable configuration order
	byAddr   map[string]*replica
	ring     atomic.Pointer[Ring]
	version  atomic.Value // string: fleet-consistent model version, "" = mixed/unknown
	cache    *service.Cache
	metrics  *Metrics
	client   *http.Client
	log      *obslog.Logger
	mux      *http.ServeMux

	mu       sync.Mutex // replica state transitions + ring rebuilds
	reloadMu sync.Mutex // at most one rolling reload

	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
}

// New builds a Router over cfg.Replicas. Replicas start out ready
// (optimistically in the ring); call Start to run a synchronous first probe
// sweep and begin background probing.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: no replicas configured")
	}
	rt := &Router{
		cfg:     cfg,
		byAddr:  make(map[string]*replica, len(cfg.Replicas)),
		cache:   service.NewCache(cfg.CacheEntries),
		metrics: NewMetrics(),
		log:     cfg.Logger,
		stop:    make(chan struct{}),
		client:  &http.Client{Transport: cfg.Transport},
	}
	rt.version.Store("")
	for _, addr := range cfg.Replicas {
		addr = strings.TrimSuffix(addr, "/")
		if rt.byAddr[addr] != nil {
			continue
		}
		rep := &replica{addr: addr, sem: make(chan struct{}, cfg.ReplicaInFlight), state: stateReady}
		rt.replicas = append(rt.replicas, rep)
		rt.byAddr[addr] = rep
	}
	rt.mu.Lock()
	rt.rebuildRingLocked()
	rt.mu.Unlock()
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v2/compile", rt.instrument("/v2/compile", rt.handleCompile))
	rt.mux.HandleFunc("GET /fleet/status", rt.instrument("/fleet/status", rt.handleStatus))
	rt.mux.HandleFunc("POST /fleet/reload", rt.instrument("/fleet/reload", rt.handleReload))
	rt.mux.HandleFunc("GET /healthz", rt.instrument("/healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /readyz", rt.instrument("/readyz", rt.handleReadyz))
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// Start runs one synchronous probe sweep (so the ring and fleet version
// reflect reality before the first request) and starts the background prober.
func (rt *Router) Start() {
	rt.probeOnce()
	rt.probeWG.Add(1)
	go rt.probeLoop()
}

// Close stops the background prober. It does not touch the replicas.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.probeWG.Wait()
}

// Metrics exposes the router's metrics surface.
func (rt *Router) Metrics() *Metrics { return rt.metrics }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// instrument mirrors the service's request plumbing at the router edge:
// X-Request-ID assignment (honoring a sane inbound header — the ID the
// replicas then receive and echo), the body limit, latency/status metrics,
// and one structured log line per request.
func (rt *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		id := service.RequestID(r)
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r.Body = http.MaxBytesReader(rec, r.Body, rt.cfg.MaxRequestBytes)
		h(rec, r)
		elapsed := time.Since(started)
		rt.metrics.ObserveRequest(endpoint, rec.status, elapsed)
		lvl := rt.log.Debug
		if rec.status >= 500 {
			lvl = rt.log.Warn
		}
		lvl("request", "request_id", id, "endpoint", endpoint, "method", r.Method,
			"status", rec.status, "elapsed_ms", float64(elapsed.Microseconds())/1000)
	}
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeErrorBody renders the same error-body shape the service uses
// ({"error", "request_id"}), so fleet clients parse one format.
func (rt *Router) writeErrorBody(w http.ResponseWriter, status int, msg string) {
	payload := map[string]any{"error": msg}
	if id := w.Header().Get("X-Request-ID"); id != "" {
		payload["request_id"] = id
	}
	body, _ := json.Marshal(payload)
	writeJSON(w, status, body)
}

// ---- shard key ----

// shardKey derives the consistent-hash key for one file: the fleet model
// version plus the file's LoopID when the source parses to exactly one
// innermost loop (so single-loop requests — the dominant interactive form —
// stick to the replica whose per-loop caches already hold that loop across
// cosmetic edits), else a hash of the raw source. The version prefix
// reshuffles affinity on model change, matching the replicas' own cache
// keying.
func (rt *Router) shardKey(version string, req *api.CompileRequest) string {
	if prog, err := lang.Parse(req.Source); err == nil {
		ids := api.LoopIDs(prog)
		if len(ids) == 1 {
			for _, id := range ids {
				return version + "\x00loop\x00" + string(id)
			}
		}
	}
	sum := sha256.Sum256([]byte(req.Source))
	return version + "\x00src\x00" + hex.EncodeToString(sum[:])
}

// ---- forwarding ----

var errReplicaBusy = errors.New("fleet: replica at in-flight limit")

// sendResult is one replica's answer to a forwarded single-file request.
type sendResult struct {
	rep    *replica
	status int
	body   []byte
	err    error
}

// sendOnce forwards one single-form compile body to rep. The per-replica
// semaphore fails fast when the replica is saturated — the caller treats
// errReplicaBusy like any other failure and moves to the next ring node.
func (rt *Router) sendOnce(ctx context.Context, rep *replica, body []byte, reqID string) sendResult {
	select {
	case rep.sem <- struct{}{}:
	default:
		rt.metrics.Forward(rep.addr, "busy")
		return sendResult{rep: rep, err: errReplicaBusy}
	}
	defer func() { <-rep.sem }()
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+"/v2/compile", bytes.NewReader(body))
	if err != nil {
		return sendResult{rep: rep, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// We were canceled (a hedge raced us home, or the client left):
			// not evidence against the replica.
			return sendResult{rep: rep, err: ctx.Err()}
		}
		rep.errors.Add(1)
		rt.metrics.Forward(rep.addr, "error")
		rt.noteForwardFailure(rep)
		return sendResult{rep: rep, err: err}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return sendResult{rep: rep, err: ctx.Err()}
		}
		rep.errors.Add(1)
		rt.metrics.Forward(rep.addr, "error")
		rt.noteForwardFailure(rep)
		return sendResult{rep: rep, err: err}
	}
	if retryableStatus(resp.StatusCode) {
		rep.errors.Add(1)
		rt.metrics.Forward(rep.addr, "error")
	} else {
		rt.metrics.Forward(rep.addr, "ok")
	}
	return sendResult{rep: rep, status: resp.StatusCode, body: respBody}
}

// retryableStatus reports whether a replica status is worth failing over:
// transient serving conditions (overload, gateway errors), not request
// errors — a 400/422/409 would fail identically on every replica.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// sendHedged forwards body across nodes (the ring's preference order for the
// shard key) with the fleet's two latency defenses:
//
//   - failover: a transport error, saturated replica, or retryable status
//     immediately launches the next node;
//   - hedging: after HedgeAfter with no answer, a duplicate launches on the
//     next node anyway — first good answer wins, losers are canceled.
//
// The last result is returned when every node fails.
func (rt *Router) sendHedged(ctx context.Context, nodes []*replica, body []byte, reqID string) sendResult {
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan sendResult, len(nodes))
	launch := func(rep *replica) {
		go func() { resc <- rt.sendOnce(attemptCtx, rep, body, reqID) }()
	}
	next := 0
	launch(nodes[next])
	next++
	pending := 1
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 && len(nodes) > 1 {
		timer := time.NewTimer(rt.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var last sendResult
	for {
		select {
		case res := <-resc:
			pending--
			if res.err == nil && !retryableStatus(res.status) {
				return res
			}
			last = res
			if next < len(nodes) {
				rt.metrics.Retry()
				rt.log.Debug("failover", "request_id", reqID, "from", res.rep.addr, "to", nodes[next].addr)
				launch(nodes[next])
				next++
				pending++
			} else if pending == 0 {
				return last
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(nodes) {
				rt.metrics.Hedge()
				rt.log.Debug("hedge", "request_id", reqID, "to", nodes[next].addr)
				launch(nodes[next])
				next++
				pending++
			}
		case <-ctx.Done():
			return sendResult{err: ctx.Err()}
		}
	}
}

// lookupReplicas resolves the ring's preference order for key into live
// replica handles.
func (rt *Router) lookupReplicas(key string) []*replica {
	ring := rt.ring.Load()
	if ring == nil {
		return nil
	}
	addrs := ring.Lookup(key, len(rt.replicas))
	out := make([]*replica, 0, len(addrs))
	for _, a := range addrs {
		if rep := rt.byAddr[a]; rep != nil {
			out = append(out, rep)
		}
	}
	return out
}

// compileOne routes one file: shared-cache probe, consistent-hash lookup,
// hedged forward, then a conditional cache store. cacheState is the
// X-Neurovec-Cache value ("hit", "miss", or "bypass").
//
// Cache consistency: the key embeds the fleet version snapshot taken here,
// and the store only happens when the replica's answer reports exactly that
// version. A mid-roll fleet has version "" (mixed), which disables both
// probe and store — a cached response can therefore never cross model
// versions, and mixed-version responses are never served from cache.
func (rt *Router) compileOne(ctx context.Context, req *api.CompileRequest, reqID string) (status int, body []byte, cacheState string) {
	version := rt.fleetVersion()
	cacheable := version != "" && !req.Trace && rt.cfg.CacheEntries > 0
	key := ""
	cacheState = "bypass"
	if cacheable {
		polName := req.Policy
		if polName == "" {
			polName = core.DefaultPolicy
		}
		key = service.CompileCacheKey(version, polName, req)
		if cached, ok := rt.cache.Get(key); ok {
			rt.metrics.CacheHit()
			return http.StatusOK, cached, "hit"
		}
		rt.metrics.CacheMiss()
		cacheState = "miss"
	}
	nodes := rt.lookupReplicas(rt.shardKey(version, req))
	if len(nodes) == 0 {
		return http.StatusServiceUnavailable, nil, cacheState
	}
	fwdBody, err := json.Marshal(req)
	if err != nil {
		return http.StatusBadRequest, nil, cacheState
	}
	res := rt.sendHedged(ctx, nodes, fwdBody, reqID)
	if res.err != nil {
		return http.StatusServiceUnavailable, nil, cacheState
	}
	if cacheable && res.status == http.StatusOK {
		var resp api.CompileResponse
		if json.Unmarshal(res.body, &resp) == nil &&
			resp.Error == "" && !resp.Truncated && resp.ModelVersion == version {
			rt.cache.Put(key, res.body)
		}
	}
	return res.status, res.body, cacheState
}

// ---- /v2/compile ----

// handleCompile dispatches on the request form, mirroring the service: an
// NDJSON content type streams, a JSON body with "requests" is a batch,
// anything else a single file.
func (rt *Router) handleCompile(w http.ResponseWriter, r *http.Request) {
	reqID := w.Header().Get("X-Request-ID")
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-ndjson") {
		rt.handleCompileStream(w, r, reqID)
		return
	}
	var env struct {
		api.CompileRequest
		Requests []api.CompileRequest `json:"requests,omitempty"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		rt.writeErrorBody(w, status, "bad request body: "+err.Error())
		return
	}
	if len(env.Requests) > 0 {
		rt.handleCompileBatch(w, r, env.Version, env.Requests, reqID)
		return
	}
	req := env.CompileRequest
	if err := req.Validate(); err != nil {
		rt.writeErrorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	status, body, cacheState := rt.compileOne(r.Context(), &req, reqID)
	if body == nil {
		rt.writeErrorBody(w, status, "fleet: no replica could serve the request")
		return
	}
	if cacheState != "" {
		w.Header().Set("X-Neurovec-Cache", cacheState)
	}
	// The replica's bytes pass through verbatim — the same body a
	// single-process `neurovec serve` would have produced, which is what the
	// byte-identity tests pin down.
	writeJSON(w, status, body)
}

// compileLine answers one batched file with a response record (never a bare
// status): router-level failures become the record's Error field, exactly as
// replica-level failures do on the service's own batch path.
func (rt *Router) compileLine(ctx context.Context, req *api.CompileRequest, reqID string) *api.CompileResponse {
	if err := req.Validate(); err != nil {
		return &api.CompileResponse{Version: api.Version, File: req.File, RequestID: reqID, Error: err.Error()}
	}
	status, body, _ := rt.compileOne(ctx, req, reqID)
	if body == nil {
		return &api.CompileResponse{Version: api.Version, File: req.File, RequestID: reqID,
			Error: "fleet: no replica could serve the request"}
	}
	var resp api.CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return &api.CompileResponse{Version: api.Version, File: req.File, RequestID: reqID,
			Error: "fleet: bad replica response: " + err.Error()}
	}
	if status != http.StatusOK && resp.Error == "" {
		// Single-form error bodies carry {"error", "diagnostics"}; lift them
		// into the record shape, preserving structured diagnostics.
		var eb struct {
			Error       string    `json:"error"`
			Diagnostics diag.List `json:"diagnostics"`
		}
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			resp = api.CompileResponse{Version: api.Version, File: req.File, Error: eb.Error, Diagnostics: eb.Diagnostics}
		} else {
			resp = api.CompileResponse{Version: api.Version, File: req.File, Error: "fleet: replica error"}
		}
	}
	resp.RequestID = reqID
	return &resp
}

// handleCompileBatch answers a Batch envelope by routing every file
// independently (each with its own shard key, cache probe, and
// failover/hedging) and reassembling responses in request order.
func (rt *Router) handleCompileBatch(w http.ResponseWriter, r *http.Request, version int, reqs []api.CompileRequest, reqID string) {
	batch := api.Batch{Version: version, Requests: reqs}
	if err := batch.Validate(); err != nil {
		rt.writeErrorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	out := api.BatchResponse{Version: api.Version, Responses: make([]api.CompileResponse, len(reqs))}
	sem := make(chan struct{}, rt.streamWidth())
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out.Responses[i] = *rt.compileLine(r.Context(), &reqs[i], reqID)
		}(i)
	}
	wg.Wait()
	body, err := json.Marshal(&out)
	if err != nil {
		rt.writeErrorBody(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleCompileStream answers an NDJSON stream: lines fan out across the
// fleet as they arrive (bounded in flight) and responses stream back in
// request order as files finish. Because every line is routed independently,
// a replica dying mid-stream only re-routes its in-flight lines — the stream
// itself never breaks.
func (rt *Router) handleCompileStream(w http.ResponseWriter, r *http.Request, reqID string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Commit the response headers before the first line: interactive
		// streaming clients (and the failure tests) pipeline request lines
		// against response lines, so they need the header frame immediately.
		flusher.Flush()
	}

	type slot chan *api.CompileResponse
	queue := make(chan slot, rt.streamWidth())
	go func() {
		defer close(queue)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64*1024), int(rt.cfg.MaxRequestBytes))
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			lineCopy := append([]byte(nil), line...)
			out := make(slot, 1)
			queue <- out // backpressure before spawning work
			go func() {
				var req api.CompileRequest
				dec := json.NewDecoder(bytes.NewReader(lineCopy))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&req); err != nil {
					out <- &api.CompileResponse{Version: api.Version, RequestID: reqID, Error: "bad request line: " + err.Error()}
					return
				}
				out <- rt.compileLine(r.Context(), &req, reqID)
			}()
		}
		if err := sc.Err(); err != nil {
			out := make(slot, 1)
			out <- &api.CompileResponse{Version: api.Version, RequestID: reqID, Error: "bad request stream: " + err.Error()}
			queue <- out
		}
	}()

	enc := json.NewEncoder(w)
	for out := range queue {
		enc.Encode(<-out)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamWidth bounds concurrently in-flight files per batch/stream request:
// enough to keep every replica's forward semaphore busy without letting one
// giant batch monopolize the fleet.
func (rt *Router) streamWidth() int {
	w := 4 * len(rt.replicas)
	if w < 4 {
		w = 4
	}
	return w
}

// ---- status, health, metrics ----

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := api.FleetStatus{Version: api.Version, ModelVersion: rt.fleetVersion(), CacheEntries: rt.cache.Len()}
	rt.mu.Lock()
	for _, rep := range rt.replicas {
		state, fails, version := rep.snapshot()
		if state == api.ReplicaReady {
			st.ReadyReplicas++
		}
		st.Replicas = append(st.Replicas, api.FleetReplica{
			Addr:                rep.addr,
			State:               state,
			ModelVersion:        version,
			ConsecutiveFailures: fails,
			InFlight:            rep.inflight.Load(),
			Requests:            rep.requests.Load(),
			Errors:              rep.errors.Load(),
		})
	}
	rt.mu.Unlock()
	body, _ := json.Marshal(&st)
	writeJSON(w, http.StatusOK, body)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body, _ := json.Marshal(map[string]string{"status": "ok"})
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz reports whether the router can serve traffic: at least one
// replica in the ring.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := 0
	rt.mu.Lock()
	for _, rep := range rt.replicas {
		if rep.state == stateReady {
			ready++
		}
	}
	rt.mu.Unlock()
	status := http.StatusOK
	state := "ready"
	if ready == 0 {
		status = http.StatusServiceUnavailable
		state = "no ready replicas"
	}
	body, _ := json.Marshal(map[string]any{"status": state, "ready_replicas": ready, "model_version": rt.fleetVersion()})
	writeJSON(w, status, body)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.metrics.WriteTo(w)
}
