package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"neurovec/internal/api"
	"neurovec/internal/service"
)

// ErrReloadInProgress is returned when a rolling reload is already running;
// the HTTP surface maps it to 409 Conflict.
var ErrReloadInProgress = errors.New("fleet: rolling reload already in progress")

// RollingReload promotes a new checkpoint across the fleet one replica at a
// time, in configuration order, with zero dropped requests:
//
//  1. drain   — the replica leaves the ring (new traffic reroutes; the ring's
//     minimal-movement property keeps every other file's affinity), then the
//     orchestrator waits for its router-forwarded in-flight count to reach
//     zero (bounded by DrainTimeout — the replica's own reload is atomic, so
//     proceeding after the timeout degrades to zero disruption anyway);
//  2. reload  — POST /v1/reload on the replica, which re-reads its model
//     path and atomically swaps the snapshot;
//  3. verify  — the first replica's post-reload version becomes the roll's
//     target; any later replica reloading to a different version aborts the
//     roll (the replicas disagree about the checkpoint on disk);
//  4. readmit — poll the replica's /readyz until it reports ready at the
//     target version (bounded by ReadyTimeout), then rebuild the ring with
//     it back in.
//
// While the roll is in progress the fleet version is mixed, so the shared
// cache tier neither serves nor stores (see compileOne) — a client can
// observe either model version mid-roll, but never a cached response from
// the wrong one. After the last replica, the fleet version becomes the
// target and the cache tier resumes under the new version's keys.
//
// On a replica failure the roll stops: earlier replicas keep the new
// version, the failed replica is left ejected (probes re-admit it when it
// recovers), later replicas keep the old version, and the response reports
// every replica's outcome.
func (rt *Router) RollingReload(ctx context.Context) (*api.FleetReloadResponse, error) {
	if !rt.reloadMu.TryLock() {
		rt.metrics.Reload("busy")
		return nil, ErrReloadInProgress
	}
	defer rt.reloadMu.Unlock()
	rt.log.Info("rolling reload started", "replicas", len(rt.replicas))
	out := &api.FleetReloadResponse{Version: api.Version}
	target := ""
	for _, rep := range rt.replicas {
		entry := api.FleetReloadReplica{Addr: rep.addr}
		err := rt.reloadReplica(ctx, rep, &entry, &target)
		out.Replicas = append(out.Replicas, entry)
		if err != nil {
			rt.metrics.Reload("error")
			rt.log.Error("rolling reload aborted", "replica", rep.addr, "error", err)
			return out, err
		}
	}
	rt.version.Store(target)
	out.ModelVersion = target
	rt.metrics.Reload("ok")
	rt.log.Info("rolling reload finished", "model_version", target)
	return out, nil
}

// reloadReplica runs the drain → reload → verify → readmit sequence for one
// replica. On error the replica is left ejected for the prober to recover.
func (rt *Router) reloadReplica(ctx context.Context, rep *replica, entry *api.FleetReloadReplica, target *string) (err error) {
	rt.setState(rep, stateDraining)
	defer func() {
		if err != nil {
			entry.Error = err.Error()
			rt.setState(rep, stateEjected)
		}
	}()

	// 1. Drain: wait for router-forwarded in-flight requests to finish.
	drainDeadline := time.Now().Add(rt.cfg.DrainTimeout)
	for rep.inflight.Load() > 0 && time.Now().Before(drainDeadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}

	// 2. Reload.
	reloaded, err := rt.postReload(ctx, rep)
	if err != nil {
		return fmt.Errorf("reload %s: %w", rep.addr, err)
	}
	entry.PreviousVersion = reloaded.PreviousVersion
	entry.ModelVersion = reloaded.ModelVersion

	// 3. Verify fleet consistency: every replica must land on the same
	// checkpoint.
	if *target == "" {
		*target = reloaded.ModelVersion
	} else if reloaded.ModelVersion != *target {
		return fmt.Errorf("reload %s: version %s diverges from roll target %s",
			rep.addr, reloaded.ModelVersion, *target)
	}

	// 4. Re-admit once the replica is ready at the target version.
	readyDeadline := time.Now().Add(rt.cfg.ReadyTimeout)
	for {
		if version, ok := rt.probeReplica(rep); ok && version == *target {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !time.Now().Before(readyDeadline) {
			return fmt.Errorf("reload %s: not ready at version %s within %s", rep.addr, *target, rt.cfg.ReadyTimeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rt.mu.Lock()
	rep.state = stateReady
	rep.fails = 0
	rep.succs = 0
	rt.setVersionLocked(rep, *target)
	rt.rebuildRingLocked()
	rt.mu.Unlock()
	rt.recomputeVersion()
	rt.log.Info("replica reloaded", "replica", rep.addr,
		"previous_version", entry.PreviousVersion, "model_version", entry.ModelVersion)
	return nil
}

// postReload POSTs /v1/reload on one replica and decodes the version swap.
func (rt *Router) postReload(ctx context.Context, rep *replica) (*service.ReloadResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+"/v1/reload", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body service.ReloadResponse
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, eb.Error)
		}
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return &body, nil
}

// handleReload serves POST /fleet/reload.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	out, err := rt.RollingReload(r.Context())
	if errors.Is(err, ErrReloadInProgress) {
		rt.writeErrorBody(w, http.StatusConflict, err.Error())
		return
	}
	status := http.StatusOK
	if err != nil {
		status = http.StatusBadGateway
	}
	body, merr := json.Marshal(out)
	if merr != nil {
		rt.writeErrorBody(w, http.StatusInternalServerError, merr.Error())
		return
	}
	writeJSON(w, status, body)
}
