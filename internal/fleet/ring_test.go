package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// syntheticLoopIDs returns n keys shaped like real LoopIDs (16 hex chars,
// see api.LoopIDs) prefixed with a model version, matching the router's
// shard-key construction.
func syntheticLoopIDs(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("loop-%d", i)))
		keys[i] = "model-v1\x00loop\x00" + hex.EncodeToString(sum[:])[:16]
	}
	return keys
}

var ringNodes = []string{
	"http://127.0.0.1:7001",
	"http://127.0.0.1:7002",
	"http://127.0.0.1:7003",
}

// TestRingDistributionUniformity shards 1k synthetic LoopIDs over three
// nodes and requires every node's share to stay near uniform. The ring is
// deterministic (SHA-256, no seed), so the observed shares are fixed — the
// tolerance guards the vnode count and hash choice, not run-to-run noise.
func TestRingDistributionUniformity(t *testing.T) {
	r := NewRing(ringNodes, 0)
	keys := syntheticLoopIDs(1000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	if len(counts) != len(ringNodes) {
		t.Fatalf("keys landed on %d of %d nodes: %v", len(counts), len(ringNodes), counts)
	}
	for node, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.22 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys, outside [22%%, 45%%]: %v", node, 100*share, counts)
		}
	}
}

// TestRingMinimalMovement checks the consistent-hashing contract: ejecting
// one node moves only the keys that mapped to it, and re-adding it restores
// exactly the original assignment.
func TestRingMinimalMovement(t *testing.T) {
	full := NewRing(ringNodes, 0)
	keys := syntheticLoopIDs(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = full.Owner(k)
	}

	ejected := ringNodes[1]
	reduced := NewRing([]string{ringNodes[0], ringNodes[2]}, 0)
	moved := 0
	for _, k := range keys {
		owner := reduced.Owner(k)
		if before[k] == ejected {
			moved++
			if owner == ejected {
				t.Fatalf("key %q still routes to ejected node", k)
			}
			continue
		}
		if owner != before[k] {
			t.Errorf("key %q moved from %s to %s though its node stayed up", k, before[k], owner)
		}
	}
	if moved == 0 {
		t.Fatal("ejected node owned no keys; distribution test should have caught this")
	}

	restored := NewRing(ringNodes, 0)
	for _, k := range keys {
		if got := restored.Owner(k); got != before[k] {
			t.Errorf("after re-admission key %q routes to %s, originally %s", k, got, before[k])
		}
	}
}

// TestRingDeterminism checks that ring assignment is a pure function of the
// membership set: same nodes in any insertion order (and with duplicates)
// yield identical rings, which is what makes routing stable across router
// restarts.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(ringNodes, 0)
	b := NewRing([]string{ringNodes[2], ringNodes[0], ringNodes[1], ringNodes[0]}, 0)
	for _, k := range syntheticLoopIDs(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner %s vs %s across insertion orders", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingLookupDistinctSuccessors checks the failover contract: Lookup
// returns distinct nodes in preference order, truncated at the membership
// size, and the first entry is the owner.
func TestRingLookupDistinctSuccessors(t *testing.T) {
	r := NewRing(ringNodes, 0)
	for _, k := range syntheticLoopIDs(100) {
		got := r.Lookup(k, 5)
		if len(got) != len(ringNodes) {
			t.Fatalf("Lookup(%q, 5) returned %d nodes, want %d", k, len(got), len(ringNodes))
		}
		if got[0] != r.Owner(k) {
			t.Fatalf("Lookup first entry %s != Owner %s", got[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("Lookup(%q) repeated node %s: %v", k, n, got)
			}
			seen[n] = true
		}
	}
}

// TestRingEmpty checks the empty-membership edge: Lookup and Owner degrade
// to nil/"" instead of panicking — the router hits this when every replica
// is ejected.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Lookup("key", 2); got != nil {
		t.Errorf("empty ring Lookup = %v, want nil", got)
	}
	if got := r.Owner("key"); got != "" {
		t.Errorf("empty ring Owner = %q, want empty", got)
	}
}
