package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over replica addresses. Each node is placed
// at VNodes pseudo-random positions (virtual nodes) on a 64-bit circle; a key
// routes to the first node clockwise from its own hash. Virtual nodes smooth
// the key distribution, and consistent hashing gives the fleet its two load
// properties:
//
//   - affinity: the same (model version, LoopID/source) key always lands on
//     the same replica, so that replica's per-loop caches stay hot for it;
//   - minimal movement: ejecting or re-admitting one node reassigns only the
//     keys that mapped to it — every other key keeps its replica and its
//     warm caches.
//
// Positions are derived with SHA-256 from the node address and vnode index
// alone, so a ring built from the same membership is identical across
// processes and restarts — no seed, no map-iteration order, no wall clock.
//
// A Ring is immutable after New; membership changes build a new Ring (they
// are rare — probe-driven ejection/re-admission and rolling reloads).
type Ring struct {
	vnodes []vnode  // sorted by position
	nodes  []string // distinct node addresses, sorted
}

type vnode struct {
	pos  uint64
	node int // index into nodes
}

// DefaultVNodes is the virtual-node count used when NewRing is given n <= 0.
// 128 keeps per-node load within a few percent of uniform for small fleets
// while building in microseconds.
const DefaultVNodes = 128

// NewRing builds a ring over the given node addresses with vnodes virtual
// nodes each (vnodes <= 0 means DefaultVNodes). Duplicate addresses collapse
// to one node; insertion order never matters. An empty membership yields an
// empty ring whose Lookup returns nil.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	distinct := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	sort.Strings(distinct)
	r := &Ring{nodes: distinct, vnodes: make([]vnode, 0, len(distinct)*vnodes)}
	for i, n := range distinct {
		for v := 0; v < vnodes; v++ {
			r.vnodes = append(r.vnodes, vnode{pos: hash64(n + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].pos != r.vnodes[b].pos {
			return r.vnodes[a].pos < r.vnodes[b].pos
		}
		// A 64-bit collision between two nodes' vnodes is astronomically
		// unlikely; break it by node index so the sort stays deterministic.
		return r.vnodes[a].node < r.vnodes[b].node
	})
	return r
}

// Nodes returns the ring's distinct node addresses in sorted order.
func (r *Ring) Nodes() []string { return r.nodes }

// Lookup returns up to n distinct nodes for key in preference order: the
// key's owner first, then the next distinct nodes clockwise — the hedging
// and failover targets. It returns nil on an empty ring.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	pos := hash64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].pos >= pos })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.vnodes) && len(out) < n; scanned++ {
		vn := r.vnodes[(i+scanned)%len(r.vnodes)]
		if !taken[vn.node] {
			taken[vn.node] = true
			out = append(out, r.nodes[vn.node])
		}
	}
	return out
}

// Owner returns the single node for key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	nodes := r.Lookup(key, 1)
	if len(nodes) == 0 {
		return ""
	}
	return nodes[0]
}

// hash64 maps a string onto the ring circle. SHA-256 (truncated) rather than
// a fast non-cryptographic hash: ring placement is off the request hot path
// (keys hash once per request, vnodes once per membership change), and the
// avalanche behavior keeps vnode positions uniform even for node addresses
// that differ in one digit (127.0.0.1:7001 vs :7002).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
