package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"neurovec/internal/service"
)

// replicaState is the router's view of one replica.
type replicaState int32

const (
	// stateReady: in the hash ring, receiving traffic.
	stateReady replicaState = iota
	// stateEjected: out of the ring after consecutive probe failures;
	// probes continue and re-admission is automatic.
	stateEjected
	// stateDraining: taken out of the ring by the rolling-reload
	// orchestrator; probes observe but never transition a draining replica
	// — the orchestrator owns it until the reload step finishes.
	stateDraining
)

func (s replicaState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateEjected:
		return "ejected"
	default:
		return "draining"
	}
}

// replica is one backend `neurovec serve` process as the router tracks it.
// Counters are atomics (hot path); state, probe streaks, and the last
// reported model version are guarded by the router's membership mutex.
type replica struct {
	addr string // base URL, e.g. http://127.0.0.1:7001

	// sem bounds concurrent forwards to this replica — the bounded-queue
	// client. A full semaphore fails fast (the request fails over to the
	// next ring node) instead of queueing unboundedly in the router.
	sem chan struct{}

	inflight atomic.Int64
	requests atomic.Int64
	errors   atomic.Int64

	// Guarded by Router.mu:
	state   replicaState
	fails   int    // consecutive probe/forward failures
	succs   int    // consecutive probe successes while ejected
	version string // model version from the last successful probe
}

// snapshot renders the replica for /fleet/status. Callers hold Router.mu.
func (rep *replica) snapshot() (state string, fails int, version string) {
	return rep.state.String(), rep.fails, rep.version
}

// ---- health probing ----

// probeLoop runs readiness probes on the configured cadence until Close.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeOnce()
		}
	}
}

// probeOnce probes every replica in parallel and applies the outcomes. The
// probe target is GET /readyz: it fails both when the process is dead
// (liveness) and when the process is alive but draining or not serving the
// model (readiness), which is exactly the "should this replica be in the
// ring" question. GET /healthz stays available to operators and external
// load balancers that want pure liveness.
func (rt *Router) probeOnce() {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			version, ok := rt.probeReplica(rep)
			rt.noteProbe(rep, ok, version)
		}(rep)
	}
	wg.Wait()
	rt.recomputeVersion()
}

// probeReplica performs one GET /readyz round trip.
func (rt *Router) probeReplica(rep *replica) (version string, ok bool) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.addr+"/readyz", nil)
	if err != nil {
		return "", false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	var body service.ReadyzResponse
	if json.NewDecoder(resp.Body).Decode(&body) != nil {
		return "", false
	}
	if resp.StatusCode != http.StatusOK {
		return body.ModelVersion, false
	}
	return body.ModelVersion, true
}

// noteProbe applies one probe outcome to the replica's state machine:
// FailAfter consecutive failures eject a ready replica, ReadyAfter
// consecutive successes re-admit an ejected one. Draining replicas record
// observations but never transition — the reload orchestrator owns them.
func (rt *Router) noteProbe(rep *replica, ok bool, version string) {
	rt.mu.Lock()
	var changed bool
	if ok {
		rep.fails = 0
		rep.version = version
		if rep.state == stateEjected {
			rep.succs++
			if rep.succs >= rt.cfg.ReadyAfter {
				rep.state = stateReady
				rep.succs = 0
				changed = true
			}
		}
	} else {
		rep.succs = 0
		rep.fails++
		rt.metrics.ProbeFailure(rep.addr)
		if rep.state == stateReady && rep.fails >= rt.cfg.FailAfter {
			rep.state = stateEjected
			rt.metrics.Ejection(rep.addr)
			changed = true
		}
	}
	if changed {
		rt.rebuildRingLocked()
	}
	rt.mu.Unlock()
	if changed {
		rt.log.Info("replica state changed", "replica", rep.addr, "state", rep.state.String())
		rt.recomputeVersion()
	}
}

// noteForwardFailure feeds a transport-level forward error into the same
// failure streak the prober uses, so a crashed replica is ejected after
// FailAfter failed requests instead of waiting out full probe cycles.
func (rt *Router) noteForwardFailure(rep *replica) { rt.noteProbe(rep, false, "") }

// setState force-sets a replica's state (the reload orchestrator's hook)
// and rebuilds the ring.
func (rt *Router) setState(rep *replica, s replicaState) {
	rt.mu.Lock()
	if rep.state != s {
		rep.state = s
		rep.fails = 0
		rep.succs = 0
		rt.rebuildRingLocked()
	}
	rt.mu.Unlock()
	rt.recomputeVersion()
}

// setVersionLocked records a replica's reported model version. Callers hold
// rt.mu.
func (rt *Router) setVersionLocked(rep *replica, version string) { rep.version = version }

// rebuildRingLocked rebuilds the hash ring from the ready replicas and
// refreshes the per-replica up gauges. Callers hold rt.mu.
func (rt *Router) rebuildRingLocked() {
	ready := make([]string, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		up := rep.state == stateReady
		if up {
			ready = append(ready, rep.addr)
		}
		rt.metrics.ReplicaUp(rep.addr, up)
	}
	rt.ring.Store(NewRing(ready, rt.cfg.VNodes))
	rt.metrics.Rebalance()
}

// recomputeVersion derives the fleet-consistent model version: the version
// every ready replica agreed on in its last probe, or "" when the fleet is
// mixed (mid-roll) or unknown (no ready replica has been probed yet). The
// shared cache tier only operates under a non-empty fleet version, which is
// what guarantees a cached response can never cross model versions.
func (rt *Router) recomputeVersion() {
	rt.mu.Lock()
	version := ""
	for _, rep := range rt.replicas {
		if rep.state != stateReady {
			continue
		}
		switch {
		case rep.version == "":
			version = ""
		case version == "":
			version = rep.version
		case version != rep.version:
			version = ""
		}
		if version == "" {
			break
		}
	}
	rt.mu.Unlock()
	rt.version.Store(version)
}

// fleetVersion returns the current fleet-consistent model version ("" when
// mixed or unknown).
func (rt *Router) fleetVersion() string {
	v, _ := rt.version.Load().(string)
	return v
}
