package fleet

import (
	"io"
	"time"

	"neurovec/internal/obs"
)

// routerLatencyBuckets are the upper bounds (seconds) of the router's
// request-latency histogram: a replica hop on top of the service's own
// latency profile, so the grid matches the service's.
var routerLatencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Metrics is the router's metrics surface — the fleet-level complement of
// the per-replica /metrics each `neurovec serve` process exposes. All
// methods are safe for concurrent use.
type Metrics struct {
	reg *obs.Registry

	replicaUp  *obs.GaugeVec   // replica
	requests   *obs.CounterVec // replica, outcome
	hedges     *obs.Counter
	retries    *obs.Counter
	rebalances *obs.Counter
	probeFails *obs.CounterVec   // replica
	ejections  *obs.CounterVec   // replica
	reqDur     *obs.HistogramVec // endpoint
	httpReqs   *obs.CounterVec   // endpoint, code
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	reloads    *obs.CounterVec // outcome
}

// NewMetrics returns a registry pre-populated with every fleet metric
// family, so /metrics carries full HELP/TYPE metadata before the first
// event.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	return &Metrics{
		reg:        r,
		replicaUp:  r.GaugeVec("neurovec_fleet_replica_up", "1 when the replica is in the hash ring (ready), 0 when ejected or draining.", "replica"),
		requests:   r.CounterVec("neurovec_fleet_requests_total", "Requests forwarded to replicas, by replica and outcome (ok, error, busy).", "replica", "outcome"),
		hedges:     r.Counter("neurovec_fleet_hedges_total", "Hedged requests: a duplicate sent to the next ring node because the owner was slow."),
		retries:    r.Counter("neurovec_fleet_retries_total", "Failovers: requests re-sent to the next ring node after a replica failure."),
		rebalances: r.Counter("neurovec_fleet_ring_rebalances_total", "Hash-ring rebuilds caused by replica ejection, re-admission, or draining."),
		probeFails: r.CounterVec("neurovec_fleet_probe_failures_total", "Failed health probes, by replica.", "replica"),
		ejections:  r.CounterVec("neurovec_fleet_replica_ejections_total", "Replicas ejected from the ring after consecutive probe failures, by replica.", "replica"),
		reqDur:     r.HistogramVec("neurovec_fleet_request_duration_seconds", "Router request latency histogram by endpoint.", routerLatencyBuckets, "endpoint"),
		httpReqs:   r.CounterVec("neurovec_fleet_http_requests_total", "Router HTTP requests served, by endpoint and status code.", "endpoint", "code"),
		cacheHits:  r.Counter("neurovec_fleet_cache_hits_total", "Shared response-cache tier hits."),
		cacheMiss:  r.Counter("neurovec_fleet_cache_misses_total", "Shared response-cache tier misses."),
		reloads:    r.CounterVec("neurovec_fleet_reloads_total", "Rolling fleet reloads, by outcome (ok, error, busy).", "outcome"),
	}
}

// Registry exposes the underlying registry (tests and embedding mains).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// ReplicaUp records whether a replica is currently in the ring.
func (m *Metrics) ReplicaUp(addr string, up bool) {
	v := 0.0
	if up {
		v = 1.0
	}
	m.replicaUp.With(addr).Set(v)
}

// Forward records one forwarded request's outcome ("ok", "error", "busy").
func (m *Metrics) Forward(addr, outcome string) { m.requests.With(addr, outcome).Inc() }

// Hedge records one hedged (duplicated) request.
func (m *Metrics) Hedge() { m.hedges.Inc() }

// Retry records one failover onto the next ring node.
func (m *Metrics) Retry() { m.retries.Inc() }

// Rebalance records one hash-ring rebuild.
func (m *Metrics) Rebalance() { m.rebalances.Inc() }

// ProbeFailure records one failed health probe.
func (m *Metrics) ProbeFailure(addr string) { m.probeFails.With(addr).Inc() }

// Ejection records one replica ejection.
func (m *Metrics) Ejection(addr string) { m.ejections.With(addr).Inc() }

// ObserveRequest records one finished router request.
func (m *Metrics) ObserveRequest(endpoint string, status int, elapsed time.Duration) {
	m.httpReqs.With(endpoint, statusLabel(status)).Inc()
	m.reqDur.With(endpoint).Observe(elapsed.Seconds())
}

// CacheHit / CacheMiss record shared-tier cache traffic.
func (m *Metrics) CacheHit()  { m.cacheHits.Inc() }
func (m *Metrics) CacheMiss() { m.cacheMiss.Inc() }

// Reload records one rolling-reload attempt by outcome.
func (m *Metrics) Reload(outcome string) { m.reloads.With(outcome).Inc() }

// WriteTo renders the registry in the Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) { return m.reg.WriteTo(w) }

// statusLabel renders an HTTP status code without fmt.
func statusLabel(n int) string {
	if n <= 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
