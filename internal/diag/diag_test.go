package diag

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{Note, Warning, Error} {
		raw, err := json.Marshal(sev)
		if err != nil {
			t.Fatalf("marshal %v: %v", sev, err)
		}
		var back Severity
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if back != sev {
			t.Errorf("round trip %v -> %s -> %v", sev, raw, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("unknown severity string decoded without error")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: Error, Code: "SEMA0001", File: "k.c", Line: 3, Col: 7,
		Message: "undeclared identifier \"y\"", Hint: "declare it first"}
	got := d.String()
	for _, want := range []string{"k.c:3:7:", "error:", "[SEMA0001]", "(hint: declare it first)"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}

	anon := Diagnostic{Severity: Warning, Code: "SEMA0015", Line: 1, Col: 2, Message: "m"}
	if !strings.HasPrefix(anon.String(), "<input>:1:2:") {
		t.Errorf("anonymous file rendered as %q, want <input> prefix", anon.String())
	}
}

func TestListSortIsDeterministic(t *testing.T) {
	mk := func(file string, line, col int, code string) Diagnostic {
		return Diagnostic{Severity: Error, Code: code, File: file, Line: line, Col: col, Message: code}
	}
	l := List{
		mk("b.c", 1, 1, "SEMA0002"),
		mk("a.c", 9, 1, "SEMA0001"),
		mk("a.c", 2, 5, "SEMA0009"),
		mk("a.c", 2, 5, "SEMA0003"),
		mk("a.c", 2, 1, "SEMA0004"),
	}
	l.Sort()
	wantOrder := []string{"SEMA0004", "SEMA0003", "SEMA0009", "SEMA0001", "SEMA0002"}
	for i, code := range wantOrder {
		if l[i].Code != code {
			t.Fatalf("position %d = %s, want %s (full: %s)", i, l[i].Code, code, l.String())
		}
	}
}

func TestListErrorsAndHasErrors(t *testing.T) {
	l := List{
		{Severity: Warning, Code: "W", Message: "w"},
		{Severity: Error, Code: "E", Message: "e"},
		{Severity: Note, Code: "N", Message: "n"},
	}
	if !l.HasErrors() {
		t.Error("HasErrors() = false with one error present")
	}
	errs := l.Errors()
	if len(errs) != 1 || errs[0].Code != "E" {
		t.Errorf("Errors() = %v, want the single E", errs)
	}
	warnOnly := List{{Severity: Warning, Code: "W", Message: "w"}}
	if warnOnly.HasErrors() {
		t.Error("HasErrors() = true for warnings only")
	}
	var empty List
	if empty.HasErrors() || len(empty.Errors()) != 0 {
		t.Error("empty list reports errors")
	}
}

func TestListJSONCarriesLoopAndOmitsEmpty(t *testing.T) {
	l := List{{Severity: Error, Code: "SEMA0013", File: "k.c", Line: 4, Col: 5,
		Loop: "L1", Message: "non-canonical"}}
	raw, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0]["loop"] != "L1" {
		t.Errorf("loop field = %v, want L1", decoded[0]["loop"])
	}
	if _, present := decoded[0]["hint"]; present {
		t.Error("empty hint serialized; want omitted")
	}
}
