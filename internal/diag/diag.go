// Package diag defines the machine-readable diagnostic records emitted by
// the frontend's semantic analysis (and any future static checks).
//
// A Diagnostic is a severity, a stable code (SEMA0001, ...), a source span,
// a human-readable message, and an optional fix hint. Diagnostics are plain
// data with JSON tags so the same values flow unchanged through the v2 wire
// schema, the `neurovec check` CLI, and test golden files. List ordering is
// deterministic: Sort orders by file, position, code, and message, so two
// runs over the same source always render byte-identical output.
package diag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity classifies how a diagnostic affects compilation: errors reject
// the program under strict mode, warnings and notes never do.
type Severity int

// Severities, ordered by increasing weight.
const (
	Note Severity = iota
	Warning
	Error
)

// String returns the lower-case severity name used in rendered diagnostics
// and on the wire.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// MarshalJSON encodes the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity from its string name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "note":
		*s = Note
	default:
		return fmt.Errorf("diag: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding attributed to a source position.
type Diagnostic struct {
	Severity Severity `json:"severity"`
	// Code is the stable diagnostic identifier (e.g. "SEMA0006"). Codes are
	// append-only: a published code never changes meaning.
	Code string `json:"code"`
	// File is the name the source was parsed under; empty for anonymous
	// sources (rendered as "<input>").
	File string `json:"file,omitempty"`
	// Line and Col are 1-based; 0 means the position is unknown.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Loop is the stable label (L0, L1, ...) of the loop the diagnostic is
	// about, for loop-scoped findings; empty otherwise.
	Loop string `json:"loop,omitempty"`
	// Message states the finding. Hint, when present, suggests a fix.
	Message string `json:"message"`
	Hint    string `json:"hint,omitempty"`
}

// String renders the diagnostic gcc-style:
//
//	file.c:3:7: error: undeclared identifier "n" [SEMA0001]
func (d Diagnostic) String() string {
	file := d.File
	if file == "" {
		file = "<input>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: %s: %s [%s]", file, d.Line, d.Col, d.Severity, d.Message, d.Code)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (hint: %s)", d.Hint)
	}
	return b.String()
}

// List is an ordered collection of diagnostics.
type List []Diagnostic

// Sort orders the list deterministically: by file, line, column, code, and
// finally message, so equal inputs always produce identical output.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic has Error severity.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns only the Error-severity diagnostics, preserving order.
func (l List) Errors() List {
	var out List
	for _, d := range l {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// String renders every diagnostic on its own line, gcc-style.
func (l List) String() string {
	lines := make([]string, len(l))
	for i, d := range l {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}
