// Package ir defines the loop-nest intermediate representation that the
// vectorizer, the baseline cost model, the polyhedral optimizer and the
// execution simulator all operate on.
//
// The IR is deliberately loop-centric rather than instruction-centric: a
// function is a forest of loop nests, and each loop carries the per-iteration
// compute operations, the memory accesses with their affine index functions,
// and any recognised reductions. This is the granularity at which
// vectorization decisions are made, and it is the granularity the paper's
// reward signal observes (whole-loop execution time).
package ir

import (
	"fmt"
	"strings"

	"neurovec/internal/lang"
)

// Op is a compute operation kind carried by loop bodies.
type Op int

// Compute operation kinds. Memory operations are represented separately as
// Access values because the simulator treats them through the cache model.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpNot // bitwise not / logical not
	OpNeg
	OpCmp     // any comparison
	OpSelect  // ternary / predicated select
	OpConvert // type conversion
	OpMin
	OpMax
	OpAbs
	OpCopy // plain register move (cheap)
	OpCall // opaque call: blocks vectorization
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNot: "not", OpNeg: "neg", OpCmp: "cmp", OpSelect: "select",
	OpConvert: "convert", OpMin: "min", OpMax: "max", OpAbs: "abs",
	OpCopy: "copy", OpCall: "call",
}

// String returns the mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one compute operation executed once per loop iteration.
type Instr struct {
	Op   Op
	Type lang.ScalarType // element type the op produces
	From lang.ScalarType // source type for OpConvert; TypeVoid otherwise
	// Predicated marks instructions under an if inside the loop body; when
	// vectorized they execute under a mask.
	Predicated bool
}

// String renders the instruction for dumps.
func (in Instr) String() string {
	s := fmt.Sprintf("%s.%s", in.Op, in.Type)
	if in.Op == OpConvert {
		s = fmt.Sprintf("convert.%s<-%s", in.Type, in.From)
	}
	if in.Predicated {
		s += " [pred]"
	}
	return s
}

// AccessKind distinguishes loads from stores.
type AccessKind int

// Access kinds.
const (
	Load AccessKind = iota
	Store
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Access is one memory access per loop iteration with an affine index
// function over the enclosing loop induction variables:
//
//	addr(elements) = Offset + sum_j Strides[label_j] * iv_j
//
// Non-affine indices (data-dependent subscripts like b[a[i]]) set
// Affine=false; they vectorize only as gathers/scatters.
type Access struct {
	Kind    AccessKind
	Array   string
	Elem    lang.ScalarType
	Strides map[string]int64 // loop label -> stride in elements
	Offset  int64
	Affine  bool
	Aligned bool // base known aligned to the vector width
	// ExactOffset reports that Offset is the complete constant part of the
	// index: no runtime-scalar term was dropped while folding. Affine accesses
	// with an inexact offset still have exact strides, but the dependence
	// analysis must not compare their offsets against other accesses to the
	// same array.
	ExactOffset bool
	// Dims is the declared array shape; used by the cache footprint model.
	Dims []int64
	// Predicated marks accesses under control flow (masked when vectorized).
	Predicated bool
}

// StrideFor returns the access stride in elements with respect to the loop
// with the given label (0 when invariant in that loop).
func (a *Access) StrideFor(label string) int64 {
	if a.Strides == nil {
		return 0
	}
	return a.Strides[label]
}

// InvariantIn reports whether the access address does not vary with the
// given loop (a hoistable, loop-invariant access).
func (a *Access) InvariantIn(label string) bool {
	return a.Affine && a.StrideFor(label) == 0
}

// Bytes returns the size in bytes of one accessed element.
func (a *Access) Bytes() int64 { return int64(a.Elem.Size()) }

// String renders the access for dumps.
func (a *Access) String() string {
	var parts []string
	for l, s := range a.Strides {
		parts = append(parts, fmt.Sprintf("%d*%s", s, l))
	}
	idx := strings.Join(parts, "+")
	if a.Offset != 0 || idx == "" {
		idx += fmt.Sprintf("%+d", a.Offset)
	}
	suffix := ""
	if !a.Affine {
		suffix = " [non-affine]"
	}
	if a.Predicated {
		suffix += " [pred]"
	}
	return fmt.Sprintf("%s %s.%s[%s]%s", a.Kind, a.Array, a.Elem, idx, suffix)
}

// Reduction describes a recognised reduction (e.g. sum += expr) carried by a
// scalar across loop iterations. Reductions are vectorizable with partial
// accumulators plus a horizontal combine at loop exit, but they put a
// latency-bound dependence chain in the loop which interleaving hides —
// exactly the effect that makes IF > 1 profitable on the paper's dot-product
// kernel.
type Reduction struct {
	Var  string
	Op   Op // OpAdd, OpMul, OpMin, OpMax, OpAnd, OpOr, OpXor
	Type lang.ScalarType
}

// String renders the reduction for dumps.
func (r Reduction) String() string {
	return fmt.Sprintf("reduce %s %s.%s", r.Var, r.Op, r.Type)
}

// Loop is one loop of a nest. Children are directly nested loops; Body,
// Accesses and Reductions describe work belonging to this loop's immediate
// body (excluding children's work).
type Loop struct {
	Label    string // stable identifier from the front end (L0, L1, ...)
	IndexVar string
	Depth    int // 0 for outermost

	Trip      int64 // runtime trip count used by the simulator
	TripKnown bool  // compile-time known (constant bounds)
	Step      int64 // induction step, in iterations of the index variable
	// ProvenTrip is a trip count proven by semantic analysis (0 when
	// unproven). Trip falls back to a simulation default for runtime bounds,
	// so the dependence analysis must never reason from it; ProvenTrip is
	// the value it may use for iteration-space disjointness proofs.
	ProvenTrip int64

	Body       []Instr
	Accesses   []*Access
	Reductions []Reduction
	Children   []*Loop

	Pragma *lang.Pragma // vectorization hint attached in source, if any

	HasIf   bool // body contains control flow -> predication when vectorized
	HasCall bool // body contains an opaque call -> not vectorizable
	// Irregular marks loops lowered without a recognised canonical induction
	// form (unknown init, step, or direction). Their Trip is a simulation
	// default and their IndexVar may be empty; the dependence analysis must
	// treat them as unvectorizable.
	Irregular bool
	// HasEarlyExit marks loops whose body can break out before the trip count
	// is reached; they are simulated but never vectorized.
	HasEarlyExit bool
}

// Innermost reports whether the loop has no nested loops.
func (l *Loop) Innermost() bool { return len(l.Children) == 0 }

// Walk visits l and all loops nested inside it, outer before inner.
func (l *Loop) Walk(fn func(*Loop)) {
	fn(l)
	for _, c := range l.Children {
		c.Walk(fn)
	}
}

// InnermostLoops returns the innermost loops of the nest rooted at l.
func (l *Loop) InnermostLoops() []*Loop {
	var out []*Loop
	l.Walk(func(x *Loop) {
		if x.Innermost() {
			out = append(out, x)
		}
	})
	return out
}

// TotalIterations returns the product of trip counts from l down to (and
// including) the given descendant; if desc == l it returns l.Trip. It
// returns 0 if desc is not in l's subtree.
func (l *Loop) TotalIterations(desc *Loop) int64 {
	if l == desc {
		return max64(l.Trip, 0)
	}
	for _, c := range l.Children {
		if n := c.TotalIterations(desc); n > 0 {
			return max64(l.Trip, 1) * n
		}
	}
	return 0
}

// OpCount returns the number of body compute instructions.
func (l *Loop) OpCount() int { return len(l.Body) }

// LoadCount and StoreCount count the memory accesses by kind.
func (l *Loop) LoadCount() int {
	n := 0
	for _, a := range l.Accesses {
		if a.Kind == Load {
			n++
		}
	}
	return n
}

// StoreCount counts store accesses in the immediate body.
func (l *Loop) StoreCount() int { return len(l.Accesses) - l.LoadCount() }

// String renders an indented dump of the loop nest, used in tests and the
// CLI's debug output.
func (l *Loop) String() string {
	var b strings.Builder
	l.dump(&b, 0)
	return b.String()
}

func (l *Loop) dump(b *strings.Builder, indent int) {
	pad := strings.Repeat("  ", indent)
	known := ""
	if !l.TripKnown {
		known = " (runtime bound)"
	}
	fmt.Fprintf(b, "%sloop %s iv=%s trip=%d step=%d%s\n", pad, l.Label, l.IndexVar, l.Trip, l.Step, known)
	for _, in := range l.Body {
		fmt.Fprintf(b, "%s  %s\n", pad, in)
	}
	for _, a := range l.Accesses {
		fmt.Fprintf(b, "%s  %s\n", pad, a)
	}
	for _, r := range l.Reductions {
		fmt.Fprintf(b, "%s  %s\n", pad, r)
	}
	for _, c := range l.Children {
		c.dump(b, indent+1)
	}
}

// Func is a function's loop forest plus the cost of its straight-line code.
type Func struct {
	Name string
	// Loops holds the top-level loop nests in source order.
	Loops []*Loop
	// ScalarOps counts compute operations outside any loop; the simulator
	// charges them once per function invocation. This is what makes the
	// MiBench regime (loops are a minor fraction of runtime) representable.
	ScalarOps int
}

// AllLoops returns every loop in the function, outer loops before inner.
func (f *Func) AllLoops() []*Loop {
	var out []*Loop
	for _, l := range f.Loops {
		l.Walk(func(x *Loop) { out = append(out, x) })
	}
	return out
}

// InnermostLoops returns every innermost loop in the function.
func (f *Func) InnermostLoops() []*Loop {
	var out []*Loop
	for _, l := range f.Loops {
		out = append(out, l.InnermostLoops()...)
	}
	return out
}

// Program is the IR for a translation unit.
type Program struct {
	Funcs  []*Func
	Source *lang.Program // retained for embedding extraction
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// InnermostLoops returns every innermost loop in the program, in order.
func (p *Program) InnermostLoops() []*Loop {
	var out []*Loop
	for _, f := range p.Funcs {
		out = append(out, f.InnermostLoops()...)
	}
	return out
}

// FindLoop returns the loop with the given label, or nil.
func (p *Program) FindLoop(label string) *Loop {
	for _, f := range p.Funcs {
		for _, l := range f.Loops {
			var found *Loop
			l.Walk(func(x *Loop) {
				if x.Label == label {
					found = x
				}
			})
			if found != nil {
				return found
			}
		}
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
