package ir

import (
	"strings"
	"testing"

	"neurovec/internal/lang"
)

func leafLoop(label string, trip int64) *Loop {
	return &Loop{Label: label, IndexVar: "i", Trip: trip, TripKnown: true, Step: 1}
}

func TestLoopNestWalkOrder(t *testing.T) {
	root := leafLoop("L0", 4)
	mid := leafLoop("L1", 8)
	inner := leafLoop("L2", 16)
	root.Children = []*Loop{mid}
	mid.Children = []*Loop{inner}

	var order []string
	root.Walk(func(l *Loop) { order = append(order, l.Label) })
	want := "L0,L1,L2"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("walk order = %s, want %s", got, want)
	}
}

func TestInnermostLoops(t *testing.T) {
	root := leafLoop("L0", 4)
	a := leafLoop("L1", 8)
	b := leafLoop("L2", 8)
	root.Children = []*Loop{a, b}
	inner := root.InnermostLoops()
	if len(inner) != 2 || inner[0] != a || inner[1] != b {
		t.Fatalf("innermost = %v", inner)
	}
	if root.Innermost() {
		t.Error("root with children reported innermost")
	}
	if !a.Innermost() {
		t.Error("leaf not innermost")
	}
}

func TestTotalIterations(t *testing.T) {
	root := leafLoop("L0", 4)
	mid := leafLoop("L1", 8)
	inner := leafLoop("L2", 16)
	root.Children = []*Loop{mid}
	mid.Children = []*Loop{inner}

	if got := root.TotalIterations(inner); got != 4*8*16 {
		t.Errorf("TotalIterations = %d, want %d", got, 4*8*16)
	}
	if got := root.TotalIterations(root); got != 4 {
		t.Errorf("self iterations = %d, want 4", got)
	}
	other := leafLoop("LX", 2)
	if got := root.TotalIterations(other); got != 0 {
		t.Errorf("foreign loop iterations = %d, want 0", got)
	}
}

func TestAccessHelpers(t *testing.T) {
	a := &Access{
		Kind:    Load,
		Array:   "buf",
		Elem:    lang.TypeFloat,
		Strides: map[string]int64{"L0": 2, "L1": 0},
		Offset:  1,
		Affine:  true,
	}
	if a.StrideFor("L0") != 2 || a.StrideFor("L1") != 0 || a.StrideFor("LZ") != 0 {
		t.Error("StrideFor wrong")
	}
	if a.InvariantIn("L0") {
		t.Error("strided access reported invariant")
	}
	if !a.InvariantIn("L1") {
		t.Error("zero-stride access not invariant")
	}
	if a.Bytes() != 4 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
	nonAffine := &Access{Kind: Store, Array: "x", Affine: false}
	if nonAffine.InvariantIn("L0") {
		t.Error("non-affine access cannot be invariant")
	}
}

func TestCounts(t *testing.T) {
	l := leafLoop("L0", 4)
	l.Body = []Instr{{Op: OpAdd, Type: lang.TypeInt}, {Op: OpMul, Type: lang.TypeInt}}
	l.Accesses = []*Access{
		{Kind: Load, Array: "a", Affine: true},
		{Kind: Load, Array: "b", Affine: true},
		{Kind: Store, Array: "c", Affine: true},
	}
	if l.OpCount() != 2 || l.LoadCount() != 2 || l.StoreCount() != 1 {
		t.Fatalf("counts = %d/%d/%d", l.OpCount(), l.LoadCount(), l.StoreCount())
	}
}

func TestStringDumps(t *testing.T) {
	l := leafLoop("L0", 4)
	l.Body = []Instr{
		{Op: OpConvert, Type: lang.TypeInt, From: lang.TypeShort},
		{Op: OpSelect, Type: lang.TypeInt, Predicated: true},
	}
	l.Accesses = []*Access{{
		Kind: Load, Array: "a", Elem: lang.TypeInt,
		Strides: map[string]int64{"L0": 1}, Offset: 3, Affine: true,
	}}
	l.Reductions = []Reduction{{Var: "s", Op: OpAdd, Type: lang.TypeInt}}
	s := l.String()
	for _, want := range []string{"loop L0", "convert.int<-short", "[pred]", "load a.int", "reduce s add.int"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains((&Access{Kind: Store, Array: "z", Affine: false}).String(), "non-affine") {
		t.Error("non-affine marker missing")
	}
}

func TestOpString(t *testing.T) {
	// Every opcode must have a mnemonic (no fallthrough to Op(N)).
	for op := OpAdd; op <= OpCall; op++ {
		if strings.HasPrefix(op.String(), "Op(") {
			t.Errorf("opcode %d has no name", int(op))
		}
	}
	if OpAdd.String() != "add" || OpCall.String() != "call" {
		t.Error("opcode names wrong")
	}
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessKind names wrong")
	}
}

func TestProgramHelpers(t *testing.T) {
	inner := leafLoop("L1", 8)
	root := leafLoop("L0", 4)
	root.Children = []*Loop{inner}
	f := &Func{Name: "f", Loops: []*Loop{root}}
	p := &Program{Funcs: []*Func{f}}

	if p.Func("f") != f || p.Func("g") != nil {
		t.Error("Program.Func wrong")
	}
	if got := p.InnermostLoops(); len(got) != 1 || got[0] != inner {
		t.Errorf("InnermostLoops = %v", got)
	}
	if p.FindLoop("L1") != inner || p.FindLoop("L0") != root {
		t.Error("FindLoop wrong")
	}
	if p.FindLoop("LZ") != nil {
		t.Error("FindLoop should miss")
	}
	if got := f.AllLoops(); len(got) != 2 {
		t.Errorf("AllLoops = %d", len(got))
	}
}

func TestNegativeTripClamp(t *testing.T) {
	l := leafLoop("L0", -5)
	if got := l.TotalIterations(l); got != 0 {
		t.Errorf("negative trip iterations = %d, want 0", got)
	}
}
