package ranker

import (
	"math"
	"testing"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/features"
	"neurovec/internal/nn"
)

// toyTarget has an analytic optimum the model must learn: normalized time is
// a bowl around a per-class best action.
type toyTarget struct {
	classes int
	vfs     []int
	ifs     []int
	optVF   []int
	optIF   []int
}

func (t *toyTarget) NumSamples() int { return t.classes * 3 }

func (t *toyTarget) NormTime(sample, vf, ifc int) float64 {
	c := sample % t.classes
	dv := float64(idx(t.vfs, vf) - idx(t.vfs, t.optVF[c]))
	di := float64(idx(t.ifs, ifc) - idx(t.ifs, t.optIF[c]))
	return 0.2 + 0.1*(dv*dv+di*di)
}

func idx(a []int, v int) int {
	for i, x := range a {
		if x == v {
			return i
		}
	}
	return -1
}

// classEmbedder emits one-hot class observations with no parameters.
type classEmbedder struct{ classes int }

func (e *classEmbedder) Embed(sample int) ([]float64, any) {
	v := make([]float64, e.classes)
	v[sample%e.classes] = 1
	return v, nil
}
func (e *classEmbedder) Backward(any, []float64) {}
func (e *classEmbedder) Params() []*nn.Param     { return nil }
func (e *classEmbedder) Dim() int                { return e.classes }

func toySetup() (*classEmbedder, *toyTarget, Config) {
	vfs := []int{1, 2, 4, 8, 16, 32, 64}
	ifs := []int{1, 2, 4, 8, 16}
	tgt := &toyTarget{
		classes: 3,
		vfs:     vfs, ifs: ifs,
		optVF: []int{64, 1, 8},
		optIF: []int{8, 1, 2},
	}
	cfg := DefaultConfig(vfs, ifs)
	cfg.Steps = 12000
	cfg.Hidden = []int{32, 32}
	cfg.LR = 3e-3
	return &classEmbedder{classes: 3}, tgt, cfg
}

func TestRankerLearnsCostSurface(t *testing.T) {
	emb, tgt, cfg := toySetup()
	m := New(emb, cfg)
	curve := m.Train(tgt)
	if len(curve) != 20 {
		t.Fatalf("curve checkpoints = %d, want 20", len(curve))
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", curve[0], curve[len(curve)-1])
	}
	// The learned cost model must recover the optimum for each class.
	correct := 0
	for c := 0; c < tgt.classes; c++ {
		vf, ifc := m.Best(c)
		if vf == tgt.optVF[c] && ifc == tgt.optIF[c] {
			correct++
		}
	}
	if correct < 2 {
		t.Errorf("recovered optimum on %d/3 classes", correct)
	}
}

func TestRankerPredictTimeOrdering(t *testing.T) {
	emb, tgt, cfg := toySetup()
	m := New(emb, cfg)
	m.Train(tgt)
	// Class 1's optimum is (1,1); a far action must predict slower.
	near := m.PredictTime(1, 1, 1)
	far := m.PredictTime(1, 64, 16)
	if near >= far {
		t.Errorf("predicted time near optimum (%.3f) not below far point (%.3f)", near, far)
	}
}

func TestRankerEndToEndOnFramework(t *testing.T) {
	// Integration: train the learned cost model through the real code2vec
	// embedder against the real simulator, then check it beats the baseline
	// cost model on its training loops.
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 48
	cfg.Embed.EmbedDim = 12
	cfg.Embed.MaxContexts = 40
	fw := core.New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 40, Seed: 5})); err != nil {
		t.Fatal(err)
	}
	rc := DefaultConfig(cfg.Arch.VFs(), cfg.Arch.IFs())
	rc.Steps = 20000
	rc.Hidden = []int{48, 48}
	rc.LR = 1e-3
	m := New(fw.CodeEmbedder(), rc)
	curve := m.Train(fw)
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("end-to-end loss did not decrease: %v -> %v", curve[0], curve[len(curve)-1])
	}

	var modelCycles, baseCycles float64
	for i := 0; i < fw.NumSamples(); i++ {
		vf, ifc := m.Best(i)
		modelCycles += fw.Cycles(i, vf, ifc)
		baseCycles += fw.BaselineCycles(i)
	}
	if modelCycles > baseCycles*1.05 {
		t.Errorf("learned cost model (%.0f cycles) clearly worse than baseline (%.0f)", modelCycles, baseCycles)
	}
	t.Logf("learned cost model vs baseline: %.3fx", baseCycles/modelCycles)
}

func TestRankerWithFrozenFeatures(t *testing.T) {
	// The ranker also runs on the hand-crafted features (no end-to-end
	// gradient); it should still learn something.
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	fw := core.New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 30, Seed: 6})); err != nil {
		t.Fatal(err)
	}
	emb := &features.Embedder{Loops: fw.UnitLoops()}
	rc := DefaultConfig(cfg.Arch.VFs(), cfg.Arch.IFs())
	rc.Steps = 4000
	rc.Hidden = []int{32, 32}
	rc.LR = 2e-3
	m := New(emb, rc)
	curve := m.Train(fw)
	if math.IsNaN(curve[len(curve)-1]) || curve[len(curve)-1] >= curve[0] {
		t.Fatalf("feature-based ranker loss: %v -> %v", curve[0], curve[len(curve)-1])
	}
}

func TestBestAlwaysInActionSpace(t *testing.T) {
	emb, tgt, cfg := toySetup()
	cfg.Steps = 500
	m := New(emb, cfg)
	m.Train(tgt)
	for s := 0; s < tgt.NumSamples(); s++ {
		vf, ifc := m.Best(s)
		if idx(cfg.VFs, vf) < 0 || idx(cfg.IFs, ifc) < 0 {
			t.Fatalf("Best returned (%d,%d) outside the action space", vf, ifc)
		}
	}
}
