// Package ranker implements the paper's Section 5 "vanilla deep neural
// network" alternative to the RL agent: a network that, "given an embedding,
// and pragmas", predicts "the execution time normalized to the
// non-vectorized code" — i.e. a *learned cost model* over (loop, VF, IF)
// that could replace the baseline cost model outright.
//
// Unlike NNS and decision trees, this model trains end to end: the
// regression loss backpropagates through the trunk into the embedding
// generator. At inference it scores all 35 factor pairs and picks the
// minimum-predicted-time pair, mirroring how a compiler cost model is
// queried.
package ranker

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"neurovec/internal/nn"
	"neurovec/internal/policy"
	"neurovec/internal/rl"
)

// Target supplies training signal: the simulated execution time of a sample
// under (vf, ifc), normalized to its scalar (VF=1, IF=1) time.
type Target interface {
	NumSamples() int
	NormTime(sample, vf, ifc int) float64
}

// Config controls the model.
type Config struct {
	VFs    []int
	IFs    []int
	Hidden []int
	LR     float64
	// Steps is the number of (sample, action) regression examples drawn.
	Steps int
	Batch int
	Seed  int64
}

// DefaultConfig returns a configuration matching the RL trunk (64x64).
func DefaultConfig(vfs, ifs []int) Config {
	return Config{
		VFs: vfs, IFs: ifs,
		Hidden: []int{64, 64},
		LR:     1e-3,
		Steps:  20000,
		Batch:  32,
		Seed:   1,
	}
}

// Model is the learned cost model.
type Model struct {
	Cfg Config

	emb    rl.Embedder
	trunk  *nn.MLP
	head   *nn.Dense
	params []*nn.Param
	rng    *rand.Rand
}

// New builds the model over an embedder (typically the code2vec model, so
// training is end to end; a frozen feature extractor also works).
func New(emb rl.Embedder, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := emb.Dim() + len(cfg.VFs) + len(cfg.IFs)
	m := &Model{Cfg: cfg, emb: emb, rng: rng}
	m.trunk = nn.NewMLP("ranker", in, cfg.Hidden, rng)
	m.head = nn.NewDense("ranker.out", m.trunk.OutDim(), 1, rng)
	m.params = append(m.params, emb.Params()...)
	m.params = append(m.params, m.trunk.Params()...)
	m.params = append(m.params, m.head.Params()...)
	return m
}

// input concatenates the embedding with one-hot action encodings, returning
// the vector and the embedder's backward state.
func (m *Model) input(sample, vfIdx, ifIdx int) ([]float64, any, int) {
	vec, st := m.emb.Embed(sample)
	x := make([]float64, len(vec)+len(m.Cfg.VFs)+len(m.Cfg.IFs))
	copy(x, vec)
	x[len(vec)+vfIdx] = 1
	x[len(vec)+len(m.Cfg.VFs)+ifIdx] = 1
	return x, st, len(vec)
}

// forward predicts log-normalized time for (sample, action indices).
func (m *Model) forward(sample, vfIdx, ifIdx int) (float64, any, int) {
	x, st, embLen := m.input(sample, vfIdx, ifIdx)
	h := m.trunk.Forward(x)
	return m.head.Forward(h)[0], st, embLen
}

// Train fits the model by sampling (sample, action) pairs and regressing on
// log normalized time (log-space keeps the -9-style outliers from dominating
// the loss). Returns the per-checkpoint MSE curve (one point per 1/20 of the
// budget).
func (m *Model) Train(tgt Target) []float64 {
	opt := nn.NewAdam(m.Cfg.LR)
	var curve []float64
	checkpoint := m.Cfg.Steps / 20
	if checkpoint == 0 {
		checkpoint = 1
	}
	runSum, runN := 0.0, 0

	for step := 0; step < m.Cfg.Steps; step++ {
		sample := m.rng.Intn(tgt.NumSamples())
		vfIdx := m.rng.Intn(len(m.Cfg.VFs))
		ifIdx := m.rng.Intn(len(m.Cfg.IFs))
		target := math.Log(math.Max(tgt.NormTime(sample, m.Cfg.VFs[vfIdx], m.Cfg.IFs[ifIdx]), 1e-6))

		pred, st, embLen := m.forward(sample, vfIdx, ifIdx)
		diff := pred - target
		runSum += diff * diff
		runN++

		dx := m.trunk.Backward(m.head.Backward([]float64{diff / float64(m.Cfg.Batch)}))
		m.emb.Backward(st, dx[:embLen])
		if (step+1)%m.Cfg.Batch == 0 {
			nn.ClipGrads(m.params, 5)
			opt.Step(m.params)
		}
		if (step+1)%checkpoint == 0 {
			curve = append(curve, runSum/float64(runN))
			runSum, runN = 0, 0
		}
	}
	return curve
}

// PredictTime returns the predicted normalized time for concrete factors.
func (m *Model) PredictTime(sample, vf, ifc int) float64 {
	pred, _, _ := m.forward(sample, indexOf(m.Cfg.VFs, vf), indexOf(m.Cfg.IFs, ifc))
	return math.Exp(pred)
}

// Best scores every factor pair and returns the predicted-fastest one — the
// cost-model query a compiler would issue.
func (m *Model) Best(sample int) (vf, ifc int) {
	best := math.Inf(1)
	vf, ifc = 1, 1
	for vi, v := range m.Cfg.VFs {
		for ii, f := range m.Cfg.IFs {
			pred, _, _ := m.forward(sample, vi, ii)
			if pred < best {
				best, vf, ifc = pred, v, f
			}
		}
	}
	return vf, ifc
}

// BestObs is Best over an already-computed embedding vector. It uses the
// networks' stateless Apply path, so any number of goroutines may call it on
// a trained model.
func (m *Model) BestObs(vec []float64) (vf, ifc int) {
	best := math.Inf(1)
	vf, ifc = 1, 1
	x := make([]float64, len(vec)+len(m.Cfg.VFs)+len(m.Cfg.IFs))
	copy(x, vec)
	for vi, v := range m.Cfg.VFs {
		for ii, f := range m.Cfg.IFs {
			for i := len(vec); i < len(x); i++ {
				x[i] = 0
			}
			x[len(vec)+vi] = 1
			x[len(vec)+len(m.Cfg.VFs)+ii] = 1
			pred := m.head.Apply(m.trunk.Apply(x))[0]
			if pred < best {
				best, vf, ifc = pred, v, f
			}
		}
	}
	return vf, ifc
}

// Policy wraps the trained model as a pluggable decision policy under the
// name "ranker" — the learned cost model served through the same interface
// as every other method. It is bound to this instance (trained weights), so
// it is passed to inference with core.WithPolicy rather than registered
// globally.
func (m *Model) Policy() policy.Policy {
	return policy.Func("ranker", func(ctx context.Context, req *policy.Request) (*policy.Decision, error) {
		if req.Embed == nil {
			return nil, errors.New("ranker: request carries no embedding")
		}
		vf, ifc := m.BestObs(req.Embed())
		return &policy.Decision{VF: vf, IF: ifc}, nil
	})
}

func indexOf(a []int, v int) int {
	for i, x := range a {
		if x == v {
			return i
		}
	}
	return 0
}
