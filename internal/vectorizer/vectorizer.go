// Package vectorizer turns a requested (VF, IF) pair — from a pragma, the
// baseline cost model, or a learning agent — into a legal vectorization plan
// for an innermost loop.
//
// The plan is what the simulator executes. Legality clamping implements the
// paper's correctness contract: "the framework cannot introduce new errors in
// the compiled code … if the agent accidentally injected bad pragmas, the
// compiler will ignore it". A request beyond the dependence-limited maximum
// VF, beyond the architecture bound, or beyond what the trip count supports
// is reduced, never honoured unsafely.
package vectorizer

import (
	"fmt"

	"neurovec/internal/deps"
	"neurovec/internal/ir"
	"neurovec/internal/machine"
)

// Plan is the outcome of vectorization planning for one innermost loop.
type Plan struct {
	Loop *ir.Loop

	// RequestedVF and RequestedIF are what the caller asked for.
	RequestedVF int
	RequestedIF int

	// VF and IF are the effective, legal factors the simulator will model.
	VF int
	IF int

	// MaxLegalVF is the dependence-limited bound (already clamped to the
	// architecture and rounded to a power of two).
	MaxLegalVF int

	// Clamped reports whether the request was reduced for legality.
	Clamped bool
}

// Scalar reports whether the plan leaves the loop entirely scalar.
func (p *Plan) Scalar() bool { return p.VF == 1 && p.IF == 1 }

// String renders the plan compactly.
func (p *Plan) String() string {
	s := fmt.Sprintf("%s: VF=%d IF=%d", p.Loop.Label, p.VF, p.IF)
	if p.Clamped {
		s += fmt.Sprintf(" (requested %d,%d; max legal VF %d)", p.RequestedVF, p.RequestedIF, p.MaxLegalVF)
	}
	return s
}

// New builds a legal plan for the loop from a requested factor pair.
// Requests that are not powers of two are rounded down; requests below one
// become one.
func New(l *ir.Loop, arch *machine.Arch, vf, ifc int) *Plan {
	p := &Plan{Loop: l, RequestedVF: vf, RequestedIF: ifc}
	p.MaxLegalVF = deps.MaxLegalVF(l, arch.MaxVF)

	vf = floorPow2(vf)
	ifc = floorPow2(ifc)

	eVF := vf
	if eVF > p.MaxLegalVF {
		eVF = p.MaxLegalVF
	}
	eIF := ifc
	if eIF > arch.MaxIF {
		eIF = arch.MaxIF
	}

	// Trip-count clamping: a vector body wider than the whole loop would
	// execute zero vector iterations; the compiler would refuse such a
	// width. Only applies when the trip count is a compile-time constant.
	if l.TripKnown && l.Trip > 0 {
		maxW := floorPow2(int(min64(l.Trip, int64(arch.MaxVF))))
		if eVF > maxW {
			eVF = maxW
		}
		maxGroups := int(l.Trip) / eVF
		if maxGroups < 1 {
			maxGroups = 1
		}
		maxIF := floorPow2(maxGroups)
		if maxIF > arch.MaxIF {
			maxIF = arch.MaxIF
		}
		if eIF > maxIF {
			eIF = maxIF
		}
	}

	p.VF, p.IF = eVF, eIF
	p.Clamped = eVF != vf || eIF != ifc || vf != p.RequestedVF || ifc != p.RequestedIF
	return p
}

// FromPragma builds a plan from the loop's source pragma; clauses absent
// from the pragma default to 1 (as clang does for vectorize_width(1)).
// Returns nil if the loop carries no pragma.
func FromPragma(l *ir.Loop, arch *machine.Arch) *Plan {
	if l.Pragma == nil {
		return nil
	}
	vf, ifc := l.Pragma.VF, l.Pragma.IF
	if vf == 0 {
		vf = 1
	}
	if ifc == 0 {
		ifc = 1
	}
	return New(l, arch, vf, ifc)
}

// ScalarPlan returns the do-nothing plan (VF=1, IF=1).
func ScalarPlan(l *ir.Loop) *Plan {
	return &Plan{Loop: l, RequestedVF: 1, RequestedIF: 1, VF: 1, IF: 1, MaxLegalVF: 1}
}

func floorPow2(v int) int {
	if v < 1 {
		return 1
	}
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
