package vectorizer_test

import (
	"testing"

	"neurovec/internal/dataset"
	"neurovec/internal/deps"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/machine"
	"neurovec/internal/vectorizer"
)

// TestAppliedPlansNeverExceedLegality cross-checks the two halves of the
// correctness contract on randomly generated loops: internal/deps decides
// what is legal, internal/vectorizer decides what is applied, and no
// requested (VF, IF) — however aggressive — may ever yield an applied plan
// beyond the dependence-limited bound. This is the property that lets the
// framework treat every policy's output as a hint rather than a proof
// obligation ("if the agent accidentally injected bad pragmas, the
// compiler will ignore it").
func TestAppliedPlansNeverExceedLegality(t *testing.T) {
	arch := machine.IntelAVX2()
	n := 60
	if testing.Short() {
		n = 15
	}
	loops := 0
	for _, seed := range []int64{1, 7, 23} {
		for _, s := range dataset.Generate(dataset.GenConfig{N: n, Seed: seed}).Samples {
			prog, err := lang.Parse(s.Source)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			irp, err := lower.Program(prog, lower.DefaultOptions())
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			for _, loop := range irp.InnermostLoops() {
				loops++
				legal := deps.Analyze(loop)
				if legal.MaxVF < 1 {
					t.Fatalf("%s/%s: deps reports MaxVF %d < 1", s.Name, loop.Label, legal.MaxVF)
				}
				for _, vf := range arch.VFs() {
					for _, ifc := range arch.IFs() {
						plan := vectorizer.New(loop, arch, vf, ifc)
						if plan.VF > legal.MaxVF {
							t.Fatalf("%s/%s: requested VF=%d applied VF=%d beyond legal max %d (%s)",
								s.Name, loop.Label, vf, plan.VF, legal.MaxVF, legal.Reason)
						}
						if plan.VF > arch.MaxVF || plan.IF > arch.MaxIF {
							t.Fatalf("%s/%s: plan (VF=%d, IF=%d) beyond architecture bounds (%d, %d)",
								s.Name, loop.Label, plan.VF, plan.IF, arch.MaxVF, arch.MaxIF)
						}
						if plan.VF < 1 || plan.IF < 1 {
							t.Fatalf("%s/%s: degenerate plan (VF=%d, IF=%d)", s.Name, loop.Label, plan.VF, plan.IF)
						}
						if plan.VF&(plan.VF-1) != 0 || plan.IF&(plan.IF-1) != 0 {
							t.Fatalf("%s/%s: non-power-of-two plan (VF=%d, IF=%d)", s.Name, loop.Label, plan.VF, plan.IF)
						}
						// A loop the analysis limits must report the clamp,
						// so diagnostics never claim a denied request was
						// honoured.
						if vf > legal.MaxVF && plan.VF == vf {
							t.Fatalf("%s/%s: illegal VF=%d silently honoured", s.Name, loop.Label, vf)
						}
						if plan.VF != vf || plan.IF != ifc {
							if !plan.Clamped {
								t.Fatalf("%s/%s: plan (%d,%d) != request (%d,%d) but Clamped is false",
									s.Name, loop.Label, plan.VF, plan.IF, vf, ifc)
							}
						}
					}
				}
			}
		}
	}
	if loops == 0 {
		t.Fatal("generated corpus produced no loops to cross-check")
	}
	t.Logf("cross-checked %d generated loops over the full %dx%d action grid",
		loops, len(arch.VFs()), len(arch.IFs()))
}
