package vectorizer

import (
	"testing"
	"testing/quick"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/machine"
)

func loopFor(t *testing.T, src string) *ir.Loop {
	t.Helper()
	p := lower.MustProgram(lang.MustParse(src))
	return p.InnermostLoops()[0]
}

const freeSrc = `
int a[4096];
int b[4096];
void f() {
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i] + 1;
    }
}
`

func TestPlanHonorsLegalRequest(t *testing.T) {
	l := loopFor(t, freeSrc)
	arch := machine.IntelAVX2()
	p := New(l, arch, 16, 4)
	if p.VF != 16 || p.IF != 4 || p.Clamped {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlanClampsToDependence(t *testing.T) {
	l := loopFor(t, `
int a[4096];
void f() {
    for (int i = 0; i < 4000; i++) {
        a[i + 4] = a[i];
    }
}
`)
	arch := machine.IntelAVX2()
	p := New(l, arch, 64, 2)
	if p.VF != 4 {
		t.Fatalf("VF = %d, want 4 (dependence distance)", p.VF)
	}
	if !p.Clamped {
		t.Error("not marked clamped")
	}
}

func TestPlanClampsToTrip(t *testing.T) {
	l := loopFor(t, `
int a[16];
int b[16];
void f() {
    for (int i = 0; i < 16; i++) {
        a[i] = b[i];
    }
}
`)
	arch := machine.IntelAVX2()
	p := New(l, arch, 64, 16)
	if p.VF > 16 {
		t.Errorf("VF = %d exceeds trip 16", p.VF)
	}
	if int64(p.VF*p.IF) > 16 {
		t.Errorf("VF*IF = %d exceeds trip 16", p.VF*p.IF)
	}
}

func TestPlanRoundsToPowerOfTwo(t *testing.T) {
	l := loopFor(t, freeSrc)
	arch := machine.IntelAVX2()
	p := New(l, arch, 13, 5)
	if p.VF != 8 || p.IF != 4 {
		t.Fatalf("plan = (%d,%d), want (8,4)", p.VF, p.IF)
	}
}

func TestFromPragma(t *testing.T) {
	l := loopFor(t, `
int a[4096];
int b[4096];
void f() {
    #pragma clang loop vectorize_width(8) interleave_count(2)
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i];
    }
}
`)
	arch := machine.IntelAVX2()
	p := FromPragma(l, arch)
	if p == nil || p.VF != 8 || p.IF != 2 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestFromPragmaNilWithoutPragma(t *testing.T) {
	l := loopFor(t, freeSrc)
	if p := FromPragma(l, machine.IntelAVX2()); p != nil {
		t.Fatalf("expected nil plan, got %+v", p)
	}
}

func TestScalarPlan(t *testing.T) {
	l := loopFor(t, freeSrc)
	p := ScalarPlan(l)
	if !p.Scalar() {
		t.Fatal("scalar plan not scalar")
	}
}

// Property: for any request, the resulting plan is always legal — VF and IF
// are powers of two within the architecture bounds, VF never exceeds the
// dependence limit, and VF*IF never exceeds a known trip count.
func TestPlanAlwaysLegalProperty(t *testing.T) {
	arch := machine.IntelAVX2()
	loops := []*ir.Loop{
		loopFor(t, freeSrc),
		loopFor(t, `
int a[4096];
void f() {
    for (int i = 0; i < 4000; i++) {
        a[i + 8] = a[i];
    }
}
`),
		loopFor(t, `
int a[32];
int b[32];
void f() {
    for (int i = 0; i < 32; i++) {
        a[i] = b[i];
    }
}
`),
	}
	isPow2 := func(v int) bool { return v >= 1 && v&(v-1) == 0 }
	f := func(vfRaw, ifRaw uint8, which uint8) bool {
		l := loops[int(which)%len(loops)]
		p := New(l, arch, int(vfRaw)%200-10, int(ifRaw)%40-5)
		if !isPow2(p.VF) || !isPow2(p.IF) {
			return false
		}
		if p.VF > arch.MaxVF || p.IF > arch.MaxIF {
			return false
		}
		if p.VF > p.MaxLegalVF {
			return false
		}
		if l.TripKnown && l.Trip > 0 && int64(p.VF) > l.Trip {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanString(t *testing.T) {
	l := loopFor(t, freeSrc)
	p := New(l, machine.IntelAVX2(), 8, 2)
	if p.String() == "" {
		t.Fatal("empty plan string")
	}
}
