package api

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"neurovec/internal/extractor"
	"neurovec/internal/lang"
)

// LoopID is the stable identity of one innermost loop: a content+position
// hash. The content half is the canonical re-printed text of the loop's
// enclosing nest (the snippet the code embedder reads) with pragmas
// stripped; the position half is the containing function's name plus the
// nest's ordinal in it and the loop's ordinal in the nest. The ID therefore
// survives whitespace and comment edits — and pragma injection, so a
// previously annotated file keeps its IDs — while any body edit, loop
// reordering, or function rename produces new IDs.
type LoopID string

// LoopIDs computes the LoopID of every innermost loop in the program, keyed
// by the parser's loop label. Labels are unique per parse, so the map
// addresses exactly the loops extractor.Loops reports, in any order.
func LoopIDs(prog *lang.Program) map[string]LoopID {
	ids := make(map[string]LoopID)
	// Group innermost loops under their nest root to derive the ordinals:
	// extractor.Loops walks functions and nests in source order.
	type nestKey struct {
		fn   string
		root *lang.ForStmt
	}
	nestIdx := make(map[nestKey]int)
	nestCount := make(map[string]int)        // per function
	loopCount := make(map[*lang.ForStmt]int) // per nest root
	nestContent := make(map[*lang.ForStmt]string)
	for _, info := range extractor.Loops(prog) {
		k := nestKey{fn: info.Func, root: info.Outermost}
		if _, seen := nestIdx[k]; !seen {
			nestIdx[k] = nestCount[info.Func]
			nestCount[info.Func]++
			nestContent[info.Outermost] = canonicalNest(info.Outermost)
		}
		loopOrd := loopCount[info.Outermost]
		loopCount[info.Outermost]++
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%d\x00%d\x00%s", info.Func, nestIdx[k], loopOrd, nestContent[info.Outermost])
		ids[info.Label] = LoopID(hex.EncodeToString(h.Sum(nil))[:16])
	}
	return ids
}

// canonicalNest renders the nest in canonical form: the printer normalizes
// whitespace, the lexer already dropped comments, and pragma lines are
// removed so annotating a file never changes its loop identities.
func canonicalNest(root *lang.ForStmt) string {
	printed := lang.PrintStmt(root)
	lines := strings.Split(printed, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "#pragma") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}
