package api

// Fleet wire types: the status and rolling-reload surfaces of the fleet
// router (`neurovec fleet`, package neurovec/internal/fleet). They live here
// with the rest of the versioned schema so CLI tooling, tests, and external
// monitors consume the same shapes the router serves.

// Replica states reported in FleetReplica.State.
const (
	// ReplicaReady means the replica passes readiness probes and receives
	// traffic from the hash ring.
	ReplicaReady = "ready"
	// ReplicaEjected means consecutive probe failures removed the replica
	// from the ring; probes continue and re-admission is automatic.
	ReplicaEjected = "ejected"
	// ReplicaDraining means the rolling-reload orchestrator (or an operator)
	// has taken the replica out of the ring ahead of a reload; no new
	// traffic routes to it while in-flight requests finish.
	ReplicaDraining = "draining"
)

// FleetReplica is one replica's entry in a FleetStatus.
type FleetReplica struct {
	// Addr is the replica's base URL.
	Addr string `json:"addr"`
	// State is ReplicaReady, ReplicaEjected, or ReplicaDraining.
	State string `json:"state"`
	// ModelVersion is the checkpoint fingerprint the replica last reported
	// on a readiness probe (empty before the first successful probe).
	ModelVersion string `json:"model_version,omitempty"`
	// ConsecutiveFailures counts probe failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// InFlight is the number of router-forwarded requests the replica is
	// serving right now.
	InFlight int64 `json:"in_flight"`
	// Requests and Errors count forwarded requests and failed forwards
	// since the router started.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// FleetStatus is the GET /fleet/status response body.
type FleetStatus struct {
	// Version is the wire-schema version (always Version).
	Version int `json:"version"`
	// ModelVersion is the fleet-consistent checkpoint fingerprint: set only
	// when every ready replica reported the same version on its last probe.
	// Empty means mixed or unknown — the shared cache tier is disabled until
	// the fleet converges (see docs/FLEET.md).
	ModelVersion string `json:"model_version,omitempty"`
	// ReadyReplicas counts replicas currently in the hash ring.
	ReadyReplicas int `json:"ready_replicas"`
	// Replicas lists every configured replica in stable (configuration)
	// order.
	Replicas []FleetReplica `json:"replicas"`
	// CacheEntries is the shared response-cache tier's current size.
	CacheEntries int `json:"cache_entries"`
}

// FleetReloadReplica is one replica's outcome within a rolling reload.
type FleetReloadReplica struct {
	Addr string `json:"addr"`
	// PreviousVersion and ModelVersion are the checkpoint fingerprints
	// before and after the replica's reload.
	PreviousVersion string `json:"previous_version,omitempty"`
	ModelVersion    string `json:"model_version,omitempty"`
	// Error is set when this replica's reload step failed; the orchestrator
	// stops at the first failure, so later replicas keep the old version.
	Error string `json:"error,omitempty"`
}

// FleetReloadResponse is the POST /fleet/reload response body: the
// replica-by-replica outcome of a rolling reload.
type FleetReloadResponse struct {
	Version int `json:"version"`
	// ModelVersion is the fleet-consistent version after a fully successful
	// roll (empty when the roll aborted partway).
	ModelVersion string `json:"model_version,omitempty"`
	// Replicas reports each replica's reload outcome in roll order.
	Replicas []FleetReloadReplica `json:"replicas"`
}
