// Package api is the versioned wire schema of the NeuroVectorizer
// compilation service — one set of request/response types shared verbatim by
// the HTTP layer (POST /v2/compile), the CLI (annotate/brute/sweep -json),
// and the evaluation harness, so the three surfaces cannot drift.
//
// The schema is loop-granular, mirroring how the paper frames vectorization:
// an agent makes an independent (VF, IF) decision per loop over a shared
// embedding. Every decision therefore addresses a loop by a stable LoopID —
// a content+position hash that survives whitespace and comment edits — and
// carries its own provenance (which policy decided, under which model
// version, whether a deadline truncated the search). Clients use the same
// IDs to pin individual loops to explicit factors and to batch many files in
// one round trip.
//
// Version history:
//
//	v1  whole-file, layer-local request/response structs (/v1/annotate,
//	    /v1/sweep); kept as compatibility shims over the v2 core.
//	v2  this package: per-loop decisions, stable LoopIDs, pins, batching.
package api

import (
	"fmt"

	"neurovec/internal/diag"
)

// Version is the wire-schema version this package defines. Requests may
// state it explicitly; zero means "current".
const Version = 2

// Pin forces one loop to explicit factors, bypassing the decision policy.
// The loop is addressed by LoopID (preferred: stable across whitespace
// edits) or, when Loop is empty, by parser label. A pin naming a loop the
// source does not contain is an error, not a silent no-op.
type Pin struct {
	// Loop is the stable LoopID of the pinned loop (see LoopIDs).
	Loop LoopID `json:"loop_id,omitempty"`
	// Label addresses the loop by parser label (L0, L1, ...) when Loop is
	// empty — convenient for hand-written requests against a known file.
	Label string `json:"label,omitempty"`
	// VF and IF are the forced factors; both must be drawn from the target
	// architecture's action space.
	VF int `json:"vf"`
	IF int `json:"if"`
}

// Addr renders the pin's loop address for diagnostics.
func (p Pin) Addr() string {
	if p.Loop != "" {
		return string(p.Loop)
	}
	return p.Label
}

// Origin values for Provenance.Origin.
const (
	// OriginPolicy marks a decision computed by the named policy (possibly
	// served from a per-loop decision cache; the origin is who decided, not
	// where the bytes came from).
	OriginPolicy = "policy"
	// OriginPin marks a decision forced by a request pin.
	OriginPin = "pin"
)

// Provenance records where one loop's decision came from.
type Provenance struct {
	// Origin is OriginPolicy or OriginPin.
	Origin string `json:"origin"`
	// Policy names the decision method (empty for pinned loops).
	Policy string `json:"policy,omitempty"`
	// ModelVersion fingerprints the checkpoint the framework served this
	// decision under (empty for pins, and when no checkpoint is loaded).
	ModelVersion string `json:"model_version,omitempty"`
	// Truncated reports that a deadline cut the policy's search short and
	// the factors are its best answer so far.
	Truncated bool `json:"truncated,omitempty"`
}

// Decision is one loop's vectorization decision — the per-loop unit every
// v2 surface (HTTP, CLI, eval reports) speaks in.
type Decision struct {
	// Loop is the stable content+position identity of the decided loop.
	Loop LoopID `json:"loop_id"`
	// Label is the parser's positional label (L0, L1, ...): stable within
	// one parse, not across edits. Func names the containing function.
	Label string `json:"label"`
	Func  string `json:"func"`
	// VF and IF are the chosen vectorization and interleaving factors.
	VF int `json:"vf"`
	IF int `json:"if"`
	// Cycles is the simulated program cycle count with only this loop
	// switched from the baseline decision to (VF, IF); PredictedSpeedup is
	// the request's baseline cycles over Cycles.
	Cycles           float64 `json:"cycles"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
	// Provenance records who decided and under what conditions.
	Provenance Provenance `json:"provenance"`
}

// CompileRequest asks for per-loop vectorization decisions on one source
// file. It is the body of POST /v2/compile (single form), one line of an
// NDJSON batch, and one element of a Batch envelope.
type CompileRequest struct {
	// Version is the wire-schema version the client speaks; 0 means
	// current. Anything other than 0 or Version is rejected.
	Version int `json:"version,omitempty"`
	// File is an optional client-chosen name echoed back in the response —
	// how batch clients correlate streamed responses with inputs.
	File string `json:"file,omitempty"`
	// Source is the C program to compile.
	Source string `json:"source"`
	// Params optionally supplies runtime values for symbolic loop bounds.
	Params map[string]int64 `json:"params,omitempty"`
	// Policy selects the decision method by registry name; empty means the
	// server's default (the trained agent).
	Policy string `json:"policy,omitempty"`
	// Pins force individual loops to explicit factors; unpinned loops are
	// decided by the policy.
	Pins []Pin `json:"pins,omitempty"`
	// TimeoutMS bounds this request's compute time; it can shorten the
	// server's timeout but never extend it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace asks for per-stage span timings in the response (the body form
	// of the ?trace=1 query parameter). Traced requests bypass the response
	// cache, so leave it off in production steady state.
	Trace bool `json:"trace,omitempty"`
	// Strict rejects sources with error-severity semantic diagnostics
	// (HTTP 422, diagnostics in the error body) instead of compiling them.
	// Lax mode — the default — compiles anyway and reports the diagnostics
	// in the response's Diagnostics field.
	Strict bool `json:"strict,omitempty"`
}

// Validate rejects requests this schema version cannot serve.
func (r *CompileRequest) Validate() error {
	if r.Version != 0 && r.Version != Version {
		return fmt.Errorf("api: unsupported version %d (this server speaks version %d)", r.Version, Version)
	}
	if r.Source == "" {
		return fmt.Errorf("api: source is required")
	}
	for _, p := range r.Pins {
		if p.Loop == "" && p.Label == "" {
			return fmt.Errorf("api: pin has neither loop_id nor label")
		}
		if p.VF < 1 || p.IF < 1 {
			return fmt.Errorf("api: pin %s: vf and if must be >= 1", p.Addr())
		}
	}
	return nil
}

// CompileResponse is the per-file answer: one Decision per innermost loop,
// the annotated source, and whole-program cycle accounting.
type CompileResponse struct {
	// Version is the wire-schema version of this response (always Version).
	Version int `json:"version"`
	// File echoes the request's File.
	File string `json:"file,omitempty"`
	// ModelVersion fingerprints the serving checkpoint; Policy names the
	// decision method that handled unpinned loops.
	ModelVersion string `json:"model_version,omitempty"`
	Policy       string `json:"policy"`
	// Truncated reports that at least one loop's search was cut short.
	Truncated bool `json:"truncated,omitempty"`
	// Annotated is the source re-printed with every decision's pragma
	// injected (the paper's Figure 4 artifact).
	Annotated string `json:"annotated,omitempty"`
	// Loops carries one Decision per innermost loop, in source order.
	Loops []Decision `json:"loops"`
	// BaselineCycles simulates the baseline cost model everywhere;
	// PredictedCycles applies every decision at once; Speedup is their
	// ratio.
	BaselineCycles  float64 `json:"baseline_cycles"`
	PredictedCycles float64 `json:"predicted_cycles"`
	Speedup         float64 `json:"speedup"`
	// Error is set instead of the result fields when a batched request
	// failed; the envelope keeps one response per request either way.
	Error string `json:"error,omitempty"`
	// RequestID echoes the X-Request-ID the serving layer assigned (or the
	// client supplied) — the correlation key across log lines, traces, and
	// error bodies. Empty when the response was not produced by the service.
	RequestID string `json:"request_id,omitempty"`
	// Trace carries per-stage span timings when the request asked for them
	// (Trace field or ?trace=1). Spans are in start order; Depth expresses
	// nesting (the root "compile" span is depth 0).
	Trace []TraceSpan `json:"trace,omitempty"`
	// Diagnostics carries the semantic findings for the file in
	// deterministic order (per-file diagnostics have an empty loop field;
	// loop-scoped ones carry the loop's parser label). In lax mode — the
	// default — error diagnostics appear here alongside a best-effort
	// compile; in strict mode they arrive in the 422 error body instead.
	Diagnostics diag.List `json:"diagnostics,omitempty"`
}

// TraceSpan is one timed pipeline stage of a traced compile request.
// Timestamps are microseconds: StartMicros is the span's offset from the
// start of request processing, DurationMicros its elapsed time.
type TraceSpan struct {
	// Name is the stage ("parse", "lower", "embed", "decide", "sim", ...);
	// Detail optionally narrows it to a specific unit, e.g. a loop label.
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	// StartMicros and DurationMicros position the span on the request
	// timeline, in microseconds.
	StartMicros    int64 `json:"start_us"`
	DurationMicros int64 `json:"duration_us"`
	// Depth is the span's nesting level; 0 is the root.
	Depth int `json:"depth"`
}

// Batch is the multi-file envelope of POST /v2/compile: requests are
// compiled independently (sharded over the server's worker pool) and the
// response preserves order.
type Batch struct {
	// Version is the wire-schema version; 0 means current.
	Version int `json:"version,omitempty"`
	// Requests are the files to compile, answered in order.
	Requests []CompileRequest `json:"requests"`
}

// Validate rejects envelopes this schema version cannot serve.
func (b *Batch) Validate() error {
	if b.Version != 0 && b.Version != Version {
		return fmt.Errorf("api: unsupported version %d (this server speaks version %d)", b.Version, Version)
	}
	if len(b.Requests) == 0 {
		return fmt.Errorf("api: batch has no requests")
	}
	return nil
}

// BatchResponse answers a Batch envelope: Responses[i] answers Requests[i].
type BatchResponse struct {
	Version   int               `json:"version"`
	Responses []CompileResponse `json:"responses"`
}
