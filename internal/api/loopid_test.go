package api

import (
	"testing"

	"neurovec/internal/extractor"
	"neurovec/internal/lang"
)

func mustIDs(t *testing.T, src string) map[string]LoopID {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return LoopIDs(prog)
}

const baseSrc = `
float a[64];
float b[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = a[i] * 2;
    }
    for (int j = 0; j < 64; j++) {
        b[j] = b[j] + 1;
    }
}
`

func TestLoopIDsStableAcrossWhitespaceAndComments(t *testing.T) {
	base := mustIDs(t, baseSrc)
	if len(base) != 2 {
		t.Fatalf("want 2 loops, got %d", len(base))
	}
	reformatted := `
float a[64];  float b[64];
void f() {
        // doubles every element
        for (int i = 0;   i < 64;   i++) { a[i] = a[i] * 2; }

        /* then bump b */
        for (int j = 0;
             j < 64;
             j++) {
            b[j] = b[j] + 1;
        }
}
`
	got := mustIDs(t, reformatted)
	for label, id := range base {
		if got[label] != id {
			t.Errorf("loop %s: id changed across whitespace/comment edit: %s -> %s", label, id, got[label])
		}
	}
}

func TestLoopIDsStableAcrossPragmaInjection(t *testing.T) {
	base := mustIDs(t, baseSrc)
	prog, err := lang.Parse(baseSrc)
	if err != nil {
		t.Fatal(err)
	}
	annotated := extractor.Annotate(prog, []extractor.Decision{
		{Label: "L0", VF: 4, IF: 2},
		{Label: "L1", VF: 8, IF: 1},
	})
	got := mustIDs(t, annotated)
	for label, id := range base {
		if got[label] != id {
			t.Errorf("loop %s: id changed after pragma injection: %s -> %s", label, id, got[label])
		}
	}
}

func TestLoopIDsChangeOnBodyEdit(t *testing.T) {
	base := mustIDs(t, baseSrc)
	edited := `
float a[64];
float b[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = a[i] * 3;
    }
    for (int j = 0; j < 64; j++) {
        b[j] = b[j] + 1;
    }
}
`
	got := mustIDs(t, edited)
	if got["L0"] == base["L0"] {
		t.Errorf("edited loop kept its id %s", base["L0"])
	}
	if got["L1"] != base["L1"] {
		t.Errorf("untouched loop changed id: %s -> %s", base["L1"], got["L1"])
	}
}

func TestLoopIDsChangeOnReorder(t *testing.T) {
	base := mustIDs(t, baseSrc)
	reordered := `
float a[64];
float b[64];
void f() {
    for (int j = 0; j < 64; j++) {
        b[j] = b[j] + 1;
    }
    for (int i = 0; i < 64; i++) {
        a[i] = a[i] * 2;
    }
}
`
	got := mustIDs(t, reordered)
	// After the swap, L0 is the former L1's content at position 0 — a new
	// identity on both counts — and vice versa.
	if got["L0"] == base["L0"] || got["L0"] == base["L1"] {
		t.Errorf("reordered loop L0 kept a prior id: %s", got["L0"])
	}
	if got["L1"] == base["L1"] || got["L1"] == base["L0"] {
		t.Errorf("reordered loop L1 kept a prior id: %s", got["L1"])
	}
}

func TestLoopIDsDependOnFunction(t *testing.T) {
	base := mustIDs(t, baseSrc)
	renamed := mustIDs(t, `
float a[64];
float b[64];
void g() {
    for (int i = 0; i < 64; i++) {
        a[i] = a[i] * 2;
    }
    for (int j = 0; j < 64; j++) {
        b[j] = b[j] + 1;
    }
}
`)
	for label := range base {
		if renamed[label] == base[label] {
			t.Errorf("loop %s: id survived a function rename", label)
		}
	}
}

func TestLoopIDsDistinctWithinNest(t *testing.T) {
	ids := mustIDs(t, `
float a[16][16];
void f() {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            a[i][j] = a[i][j] * 2;
        }
    }
}
`)
	if len(ids) != 1 {
		t.Fatalf("want 1 innermost loop, got %d", len(ids))
	}
	seen := map[LoopID]bool{}
	for label, id := range ids {
		if id == "" {
			t.Errorf("loop %s: empty id", label)
		}
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

// extendedSrc exercises the extended grammar in one translation unit: an
// imperfect nest (statements before and after the inner loop), a struct
// field access, a switch body and a non-canonical (strided) loop.
const extendedSrc = `
struct point { float x; float y; };
struct point pts[32];
float m[32][64];
float acc[32];
int sel[64];
int out[64];
void f() {
    for (int i = 0; i < 32; i++) {
        float sum = pts[i].x;
        for (int j = 0; j < 64; j++) {
            sum += m[i][j];
        }
        acc[i] = sum + pts[i].y;
    }
    for (int k = 0; k < 62; k += 2) {
        switch (sel[k]) {
        case 0:
            out[k] = 1;
            break;
        default:
            out[k] = 2;
            break;
        }
    }
}
`

// TestLoopIDsStableOnExtendedGrammar holds LoopID's contract on the
// extended grammar: the imperfect nest's inner loop (L1, whose identity
// hashes the whole nest including the statements around it) and the strided
// switch loop (L2) keep their identities across reformatting, comment
// insertion and pragma injection.
func TestLoopIDsStableOnExtendedGrammar(t *testing.T) {
	base := mustIDs(t, extendedSrc)
	if len(base) != 2 {
		t.Fatalf("want 2 innermost loops (imperfect-nest inner, switch), got %d", len(base))
	}
	for _, label := range []string{"L1", "L2"} {
		if base[label] == "" {
			t.Fatalf("no id for loop %s", label)
		}
	}
	reformatted := `
struct point { float x; float y; };
struct point pts[32];
float m[32][64]; float acc[32];
int sel[64]; int out[64];
void f() {
    // row sums with struct-held boundary terms
    for (int i = 0;   i < 32;   i++) {
        float sum = pts[i].x;  /* left edge */
        for (int j = 0;
             j < 64;
             j++) { sum += m[i][j]; }
        acc[i] = sum + pts[i].y;
    }
    /* then the predicated copy, every other element */
    for (int k = 0; k < 62; k += 2) {
        switch (sel[k]) {
        case 0:  out[k] = 1; break;
        default: out[k] = 2; break;
        }
    }
}
`
	got := mustIDs(t, reformatted)
	for label, id := range base {
		if got[label] != id {
			t.Errorf("loop %s: id changed across whitespace/comment edit: %s -> %s", label, id, got[label])
		}
	}

	prog, err := lang.Parse(extendedSrc)
	if err != nil {
		t.Fatal(err)
	}
	annotated := extractor.Annotate(prog, []extractor.Decision{
		{Label: "L1", VF: 8, IF: 2},
	})
	got = mustIDs(t, annotated)
	for label, id := range base {
		if got[label] != id {
			t.Errorf("loop %s: id changed after pragma injection: %s -> %s", label, id, got[label])
		}
	}
}

// TestLoopIDsExtendedGrammarBodyEdits pins the other half of the identity
// contract on the new constructs: editing a struct field reference, a
// switch arm, or the statements around an inner loop changes the affected
// loop's id while unrelated loops keep theirs.
func TestLoopIDsExtendedGrammarBodyEdits(t *testing.T) {
	base := mustIDs(t, extendedSrc)

	fieldEdit := mustIDs(t, `
struct point { float x; float y; };
struct point pts[32];
float m[32][64];
float acc[32];
int sel[64];
int out[64];
void f() {
    for (int i = 0; i < 32; i++) {
        float sum = pts[i].y;
        for (int j = 0; j < 64; j++) {
            sum += m[i][j];
        }
        acc[i] = sum + pts[i].y;
    }
    for (int k = 0; k < 62; k += 2) {
        switch (sel[k]) {
        case 0:
            out[k] = 1;
            break;
        default:
            out[k] = 2;
            break;
        }
    }
}
`)
	// The imperfect nest's pre-statement changed (.x -> .y). The inner
	// loop's identity covers its whole nest — surrounding statements
	// included — so it must change, while the distant switch loop keeps its
	// id.
	if fieldEdit["L1"] == base["L1"] {
		t.Errorf("imperfect-nest loop kept id %s after struct field edit beside it", base["L1"])
	}
	if fieldEdit["L2"] != base["L2"] {
		t.Errorf("switch loop changed id on unrelated edit: %s -> %s", base["L2"], fieldEdit["L2"])
	}

	armEdit := mustIDs(t, `
struct point { float x; float y; };
struct point pts[32];
float m[32][64];
float acc[32];
int sel[64];
int out[64];
void f() {
    for (int i = 0; i < 32; i++) {
        float sum = pts[i].x;
        for (int j = 0; j < 64; j++) {
            sum += m[i][j];
        }
        acc[i] = sum + pts[i].y;
    }
    for (int k = 0; k < 62; k += 2) {
        switch (sel[k]) {
        case 0:
            out[k] = 7;
            break;
        default:
            out[k] = 2;
            break;
        }
    }
}
`)
	if armEdit["L2"] == base["L2"] {
		t.Errorf("switch loop kept id %s after a case-arm edit", base["L2"])
	}
	if armEdit["L1"] != base["L1"] {
		t.Errorf("imperfect-nest loop changed id on unrelated switch edit: %s -> %s", base["L1"], armEdit["L1"])
	}
}

func TestCompileRequestValidate(t *testing.T) {
	ok := &CompileRequest{Source: "void f() {}"}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	ok.Version = Version
	if err := ok.Validate(); err != nil {
		t.Errorf("explicit version rejected: %v", err)
	}
	for _, bad := range []*CompileRequest{
		{Version: 1, Source: "void f() {}"},
		{Version: 3, Source: "void f() {}"},
		{Source: ""},
		{Source: "void f() {}", Pins: []Pin{{VF: 4, IF: 2}}},
		{Source: "void f() {}", Pins: []Pin{{Label: "L0", VF: 0, IF: 2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid request %+v accepted", bad)
		}
	}
	if err := (&Batch{Requests: nil}).Validate(); err == nil {
		t.Error("empty batch accepted")
	}
	if err := (&Batch{Version: 1, Requests: []CompileRequest{{Source: "x"}}}).Validate(); err == nil {
		t.Error("version-1 batch accepted")
	}
}
