// Package benchsuite measures the repo's performance-critical kernels —
// code2vec embedding, policy-network forward passes, the loop-granular
// compile pipeline, and HTTP serving throughput — and renders the numbers
// as the canonical BENCH_*.json perf-trajectory artifact.
//
// The suite runs in-process through testing.Benchmark, so `neurovec bench`
// and `go test -bench` exercise exactly the same code and report the same
// units (ns/op, allocs/op, B/op). Every PR commits a BENCH_<pr>.json at the
// repo root; diffing consecutive artifacts is the project's performance
// trajectory. Validate enforces the schema so CI fails on malformed output
// before a regression hides behind a parse error.
package benchsuite

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"neurovec/internal/api"
	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/nn"
	"neurovec/internal/obs"
	"neurovec/internal/rl"
	"neurovec/internal/service"
)

// Schema identifies the artifact format; bump on incompatible changes.
const Schema = "neurovec-bench/v1"

// Required lists the benchmarks every artifact must contain — the
// acceptance surface a PR's BENCH file is gated on.
var Required = []string{
	"embed_forward",
	"embed_source",
	"nn_forward",
	"predict_loops_costmodel",
	"predict_loops_costmodel_cached",
	"server_compile_throughput",
}

// requiredSince records the PR that introduced each Required benchmark, so
// Validate can keep accepting committed artifacts from before a benchmark
// existed while still demanding it of every artifact generated afterwards.
// Names absent from the map are required unconditionally.
var requiredSince = map[string]int{
	"embed_forward":                  6,
	"predict_loops_costmodel_cached": 7,
}

// ZeroAlloc lists the benchmarks whose steady state must stay at exactly
// 0 allocs/op — the PR 7 zero-allocation hot-path invariant. Compare fails
// a current artifact whose measurement breaks it regardless of tolerance
// (allocs/op is machine-independent, so there is no noise to forgive).
var ZeroAlloc = []string{
	"embed_forward",
	"nn_forward",
	"predict_loops_costmodel_cached",
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Env pins the machine context the numbers were taken on. Artifacts from
// different environments are comparable only with that caveat attached.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp"`
}

// File is the whole BENCH_*.json artifact.
type File struct {
	Schema     string   `json:"schema"`
	PR         int      `json:"pr"`
	Env        Env      `json:"env"`
	Benchmarks []Result `json:"benchmarks"`
}

// Run executes the full suite and returns the artifact. logf, when non-nil,
// receives one progress line per benchmark (the CLI points it at stderr so
// -out files stay clean).
func Run(pr int, logf func(format string, args ...any)) (*File, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	fx, cleanup, err := setup()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	file := &File{
		Schema: Schema,
		PR:     pr,
		Env: Env{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
		},
	}
	for _, bm := range fx.benchmarks() {
		r := testing.Benchmark(bm.fn)
		res := Result{
			Name:        bm.name,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		logf("bench %-28s %12.1f ns/op %8d allocs/op %10d B/op (%d runs)",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Runs)
		file.Benchmarks = append(file.Benchmarks, res)
	}
	sort.Slice(file.Benchmarks, func(i, j int) bool {
		return file.Benchmarks[i].Name < file.Benchmarks[j].Name
	})
	return file, nil
}

// WriteJSON renders the artifact as indented JSON with a trailing newline.
func (f *File) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Validate checks a serialized artifact: schema tag, environment block,
// sane measurements, sorted unique names, and the Required benchmark set.
// CI runs it against freshly generated output; a test runs it against the
// committed artifact.
func Validate(data []byte) error {
	var f File
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("benchsuite: parse: %w", err)
	}
	if f.Schema != Schema {
		return fmt.Errorf("benchsuite: schema %q, want %q", f.Schema, Schema)
	}
	if f.PR <= 0 {
		return fmt.Errorf("benchsuite: pr %d must be positive", f.PR)
	}
	if f.Env.GoVersion == "" || f.Env.GOOS == "" || f.Env.GOARCH == "" {
		return fmt.Errorf("benchsuite: incomplete env block: %+v", f.Env)
	}
	if f.Env.NumCPU <= 0 || f.Env.GOMAXPROCS <= 0 {
		return fmt.Errorf("benchsuite: implausible env block: %+v", f.Env)
	}
	if _, err := time.Parse(time.RFC3339, f.Env.Timestamp); err != nil {
		return fmt.Errorf("benchsuite: env timestamp: %w", err)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("benchsuite: no benchmarks")
	}
	names := make(map[string]bool, len(f.Benchmarks))
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchsuite: benchmark %d has no name", i)
		}
		if names[b.Name] {
			return fmt.Errorf("benchsuite: duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if i > 0 && f.Benchmarks[i-1].Name > b.Name {
			return fmt.Errorf("benchsuite: benchmarks not sorted at %q", b.Name)
		}
		if b.Runs <= 0 || b.NsPerOp <= 0 {
			return fmt.Errorf("benchsuite: %s: runs=%d ns_per_op=%g must be positive", b.Name, b.Runs, b.NsPerOp)
		}
		if b.AllocsPerOp < 0 || b.BytesPerOp < 0 {
			return fmt.Errorf("benchsuite: %s: negative alloc stats", b.Name)
		}
	}
	for _, want := range Required {
		if since, ok := requiredSince[want]; ok && f.PR < since {
			continue
		}
		if !names[want] {
			return fmt.Errorf("benchsuite: missing required benchmark %q", want)
		}
	}
	return nil
}

// fixtures holds the shared state the benchmarks close over: a framework
// with a loaded corpus, a trained checkpoint, and two serving stacks (with
// and without response caching).
type fixtures struct {
	fw       *core.Framework
	srcs     []string
	uncached *service.Server
	cached   *service.Server
}

type benchmark struct {
	name string
	fn   func(b *testing.B)
}

// setup trains one small model (the service-test fixture's shape: quick but
// real) and boots the serving stacks. The returned cleanup closes the
// servers and removes the checkpoint.
func setup() (*fixtures, func(), error) {
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 48
	cfg.Embed.EmbedDim = 12
	cfg.Embed.MaxContexts = 40
	fw := core.New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 30, Seed: 1})); err != nil {
		return nil, nil, err
	}
	rc := rl.DefaultConfig(nil, nil)
	rc.Batch = 96
	rc.MiniBatch = 32
	rc.Iterations = 3
	rc.LR = 1e-3
	rc.Hidden = []int{32, 32}
	fw.Train(&rc)

	dir, err := os.MkdirTemp("", "neurovec-bench")
	if err != nil {
		return nil, nil, err
	}
	model := filepath.Join(dir, "model.gob")
	if err := fw.SaveModelFile(model); err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	uncached, err := service.New(service.Config{
		ModelPath: model, CacheEntries: -1, LoopCacheEntries: -1,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cached, err := service.New(service.Config{ModelPath: model})
	if err != nil {
		uncached.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}

	fx := &fixtures{fw: fw, uncached: uncached, cached: cached}
	for _, s := range dataset.Generate(dataset.GenConfig{N: 4, Seed: 7}).Samples {
		fx.srcs = append(fx.srcs, s.Source)
	}
	cleanup := func() {
		uncached.Close()
		cached.Close()
		os.RemoveAll(dir)
	}
	return fx, cleanup, nil
}

func (fx *fixtures) benchmarks() []benchmark {
	return []benchmark{
		{"embed_source", fx.benchEmbedSource},
		{"embed_forward", fx.benchEmbedForward},
		{"nn_forward", benchNNForward},
		{"predict_loops_costmodel", fx.benchPredictLoops},
		{"predict_loops_costmodel_cached", fx.benchPredictLoopsCached},
		{"reward_evaluation", fx.benchReward},
		{"server_compile_throughput", fx.benchServer(false)},
		{"server_compile_cached", fx.benchServer(true)},
		{"span_disabled", benchSpanDisabled},
		{"span_enabled", benchSpanEnabled},
	}
}

// benchEmbedSource measures the end-to-end embedding path an unseen request
// pays: parse, loop extraction, context extraction, code2vec forward.
func (fx *fixtures) benchEmbedSource(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fx.fw.EmbedSource(fx.srcs[i%len(fx.srcs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEmbedForward measures the bare code2vec forward pass over an
// already-extracted unit, written into a caller-owned vector the way the
// pooled inference path does it. Steady state must be 0 allocs/op (the
// ZeroAlloc gate); the warm-up call primes the framework's scratch pool so
// the one-time buffer growth is not charged to the timed loop.
func (fx *fixtures) benchEmbedForward(b *testing.B) {
	n := fx.fw.NumSamples()
	dst := make([]float64, fx.fw.EmbedDim())
	fx.fw.EmbeddingInto(dst, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.fw.EmbeddingInto(dst, i%n)
	}
}

// benchNNForward measures one policy-network forward pass at the paper's
// shape: a 340-dim code vector through two 256-unit layers into the 35-way
// joint (VF, IF) head, running through caller-owned scratch the way serving
// inference does. Steady state must be 0 allocs/op (the ZeroAlloc gate);
// the warm-up call sizes the scratch before the timed loop.
func benchNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mlp := nn.NewMLP("bench", 340, []int{256, 256, 35}, rng)
	x := make([]float64, 340)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	s := nn.NewScratch(mlp)
	mlp.ApplyScratch(s, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mlp.ApplyScratch(s, x)
	}
}

// benchPredictLoops measures the whole compile pipeline (parse through
// simulation) under the model-free baseline cost model. The option slice is
// hoisted so the measurement charges the pipeline, not the variadic call.
func (fx *fixtures) benchPredictLoops(b *testing.B) {
	ctx := context.Background()
	opts := []core.InferOption{core.WithPolicyName("costmodel")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := fx.fw.PredictLoops(ctx, fx.srcs[i%len(fx.srcs)], nil, opts...)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredictLoopsCached measures the memoized decision path: a repeated
// (model version, policy, source) request served from the two-generation
// response memo. Steady state must be 0 allocs/op (the ZeroAlloc gate) —
// this is the cached-model /v2/compile decision the PR's invariant names.
// Every distinct source is warmed before the timer starts.
func (fx *fixtures) benchPredictLoopsCached(b *testing.B) {
	ctx := context.Background()
	memo := core.NewResponseMemo(64)
	opts := []core.InferOption{
		core.WithPolicyName("costmodel"),
		core.WithResponseMemo(memo),
	}
	for _, src := range fx.srcs {
		if _, err := fx.fw.PredictLoops(ctx, src, nil, opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := fx.fw.PredictLoops(ctx, fx.srcs[i%len(fx.srcs)], nil, opts...)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchReward measures one environment step — the "compilation + run" unit
// the paper's sample-efficiency argument counts in.
func (fx *fixtures) benchReward(b *testing.B) {
	n := fx.fw.NumSamples()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fx.fw.Reward(i%n, 8, 2)
	}
}

// benchServer measures POST /v2/compile through the full HTTP stack. The
// uncached variant is the compute-bound throughput number; the cached one
// shows what the response LRU buys on repeated sources.
func (fx *fixtures) benchServer(cachedStack bool) func(b *testing.B) {
	s := fx.uncached
	if cachedStack {
		s = fx.cached
	}
	return func(b *testing.B) {
		bodies := make([]string, len(fx.srcs))
		for i, src := range fx.srcs {
			data, err := json.Marshal(api.CompileRequest{Source: src})
			if err != nil {
				b.Fatal(err)
			}
			bodies[i] = string(data)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v2/compile", strings.NewReader(bodies[i%len(bodies)]))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
}

// benchSpanDisabled measures the tracing no-op path every un-traced request
// takes; it must stay at zero allocations (asserted in internal/obs tests).
func benchSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.StartSpan(ctx, "bench")
		sp.End()
	}
}

// benchSpanEnabled measures a recorded span: the cost a ?trace=1 request
// pays per pipeline stage. The trace is recycled periodically so span
// records don't accumulate without bound as b.N grows.
func benchSpanEnabled(b *testing.B) {
	base := context.Background()
	ctx := obs.WithRecorder(base, obs.NewTrace(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 1023 {
			ctx = obs.WithRecorder(base, obs.NewTrace(), nil)
		}
		_, sp := obs.StartSpan(ctx, "bench")
		sp.End()
	}
}
