package benchsuite

import (
	"fmt"
	"sort"
	"strings"
)

// CompareOpts tunes the bench-regression gate. Tolerances are fractional
// headroom over the baseline: TolNs 1.0 lets ns/op double before failing.
// ns/op is machine- and load-sensitive, so its default is deliberately
// generous — the gate exists to catch order-of-magnitude slips and alloc
// regressions, not 5% jitter. allocs/op is deterministic for a fixed
// binary, so its tolerance is strict and AllocSlack (an absolute grace on
// top of the fraction, mattering mostly near zero) is small.
type CompareOpts struct {
	TolNs      float64 // fractional ns/op headroom (default 1.0 = up to 2x baseline)
	TolAllocs  float64 // fractional allocs/op headroom (default 0.25)
	AllocSlack int64   // absolute allocs/op grace added to the fractional bound (default 2)
}

// DefaultCompareOpts returns the tolerances CI runs the gate with.
func DefaultCompareOpts() CompareOpts {
	return CompareOpts{TolNs: 1.0, TolAllocs: 0.25, AllocSlack: 2}
}

// Regression is one gate failure: a benchmark that disappeared, blew its
// tolerance, or broke the zero-alloc invariant.
type Regression struct {
	Name   string
	Reason string
}

func (r Regression) String() string { return r.Name + ": " + r.Reason }

// Compare diffs current against baseline and returns a human-readable
// report plus every regression found. The gate fails when a baseline
// benchmark is missing from current, when ns/op or allocs/op exceed the
// tolerances in opts, or when a ZeroAlloc benchmark present in current
// measures above 0 allocs/op. Benchmarks new in current are reported but
// never regressions — they have no baseline to regress from. Improvements
// never fail the gate.
func Compare(baseline, current *File, opts CompareOpts) (string, []Regression) {
	if opts.TolNs <= 0 {
		opts.TolNs = 1.0
	}
	if opts.TolAllocs <= 0 {
		opts.TolAllocs = 0.25
	}
	if opts.AllocSlack < 0 {
		opts.AllocSlack = 0
	}

	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	cur := make(map[string]Result, len(current.Benchmarks))
	names := make([]string, 0, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
		names = append(names, b.Name)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	zero := make(map[string]bool, len(ZeroAlloc))
	for _, name := range ZeroAlloc {
		zero[name] = true
	}

	var regs []Regression
	var sb strings.Builder
	fmt.Fprintf(&sb, "bench gate: baseline PR %d (%s) vs current PR %d (%s)\n",
		baseline.PR, baseline.Env.Timestamp, current.PR, current.Env.Timestamp)
	fmt.Fprintf(&sb, "tolerances: ns/op +%.0f%%, allocs/op +%.0f%% (+%d absolute), zero-alloc set strict\n\n",
		opts.TolNs*100, opts.TolAllocs*100, opts.AllocSlack)
	fmt.Fprintf(&sb, "%-34s %14s %14s %8s  %9s %9s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "ns Δ", "base a/op", "cur a/op", "verdict")

	for _, name := range names {
		b, haveBase := base[name]
		c, haveCur := cur[name]
		switch {
		case !haveCur:
			regs = append(regs, Regression{name, "present in baseline, missing from current artifact"})
			fmt.Fprintf(&sb, "%-34s %14.1f %14s %8s  %9d %9s  MISSING\n",
				name, b.NsPerOp, "-", "-", b.AllocsPerOp, "-")
			continue
		case !haveBase:
			fmt.Fprintf(&sb, "%-34s %14s %14.1f %8s  %9s %9d  new\n",
				name, "-", c.NsPerOp, "-", "-", c.AllocsPerOp)
			if zero[name] && c.AllocsPerOp != 0 {
				regs = append(regs, Regression{name, fmt.Sprintf(
					"zero-alloc invariant broken: %d allocs/op, want 0", c.AllocsPerOp)})
			}
			continue
		}

		verdict := "ok"
		nsDelta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		if c.NsPerOp > b.NsPerOp*(1+opts.TolNs) {
			regs = append(regs, Regression{name, fmt.Sprintf(
				"ns/op %.1f exceeds baseline %.1f by %.0f%% (tolerance %.0f%%)",
				c.NsPerOp, b.NsPerOp, nsDelta*100, opts.TolNs*100)})
			verdict = "FAIL ns"
		}
		allocBound := int64(float64(b.AllocsPerOp)*(1+opts.TolAllocs)) + opts.AllocSlack
		if c.AllocsPerOp > allocBound {
			regs = append(regs, Regression{name, fmt.Sprintf(
				"allocs/op %d exceeds baseline %d (bound %d)",
				c.AllocsPerOp, b.AllocsPerOp, allocBound)})
			verdict = "FAIL allocs"
		}
		if zero[name] && c.AllocsPerOp != 0 {
			regs = append(regs, Regression{name, fmt.Sprintf(
				"zero-alloc invariant broken: %d allocs/op, want 0", c.AllocsPerOp)})
			verdict = "FAIL zero-alloc"
		}
		fmt.Fprintf(&sb, "%-34s %14.1f %14.1f %+7.1f%%  %9d %9d  %s\n",
			name, b.NsPerOp, c.NsPerOp, nsDelta*100, b.AllocsPerOp, c.AllocsPerOp, verdict)
	}

	if len(regs) == 0 {
		sb.WriteString("\nno regressions\n")
	} else {
		fmt.Fprintf(&sb, "\n%d regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(&sb, "  - %s\n", r)
		}
	}
	return sb.String(), regs
}
