package benchsuite

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func goodFile() *File {
	f := &File{
		Schema: Schema,
		PR:     6,
		Env: Env{
			GoVersion:  "go1.22.0",
			GOOS:       "linux",
			GOARCH:     "amd64",
			NumCPU:     8,
			GOMAXPROCS: 8,
			Timestamp:  "2026-08-08T12:00:00Z",
		},
	}
	for _, name := range Required {
		f.Benchmarks = append(f.Benchmarks, Result{
			Name: name, Runs: 100, NsPerOp: 1234.5, AllocsPerOp: 3, BytesPerOp: 128,
		})
	}
	return f
}

func TestValidateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goodFile().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*File){
		"wrong schema":     func(f *File) { f.Schema = "bogus/v9" },
		"zero pr":          func(f *File) { f.PR = 0 },
		"empty env":        func(f *File) { f.Env.GoVersion = "" },
		"bad timestamp":    func(f *File) { f.Env.Timestamp = "yesterday" },
		"no benchmarks":    func(f *File) { f.Benchmarks = nil },
		"missing required": func(f *File) { f.Benchmarks = f.Benchmarks[1:] },
		"zero ns/op":       func(f *File) { f.Benchmarks[0].NsPerOp = 0 },
		"negative allocs":  func(f *File) { f.Benchmarks[0].AllocsPerOp = -1 },
		"unsorted": func(f *File) {
			f.Benchmarks[0], f.Benchmarks[1] = f.Benchmarks[1], f.Benchmarks[0]
		},
		"duplicate": func(f *File) {
			f.Benchmarks = append(f.Benchmarks, f.Benchmarks[0])
		},
	}
	for name, mutate := range cases {
		f := goodFile()
		mutate(f)
		var buf bytes.Buffer
		if err := f.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := Validate(buf.Bytes()); err == nil {
			t.Errorf("%s: malformed artifact accepted", name)
		}
	}
	if err := Validate([]byte("not json")); err == nil {
		t.Error("non-JSON accepted")
	}
	if err := Validate([]byte(`{"schema":"neurovec-bench/v1","surprise":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestCommittedArtifactValidates gates the BENCH_*.json files at the repo
// root on the schema: a malformed committed artifact fails the build, not
// just the CI bench step.
func TestCommittedArtifactValidates(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no BENCH_*.json at the repo root; run `neurovec bench -out BENCH_<pr>.json`")
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(data); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
		}
	}
}

func TestSuiteHasUniqueSortedRequiredNames(t *testing.T) {
	// The static benchmark list must cover Required without running it.
	fx := &fixtures{}
	seen := map[string]bool{}
	for _, bm := range fx.benchmarks() {
		if seen[bm.name] {
			t.Errorf("duplicate benchmark name %q", bm.name)
		}
		seen[bm.name] = true
		if strings.ContainsAny(bm.name, " \t") {
			t.Errorf("benchmark name %q contains whitespace", bm.name)
		}
	}
	for _, want := range Required {
		if !seen[want] {
			t.Errorf("suite missing required benchmark %q", want)
		}
	}
}
