package benchsuite

import (
	"sort"
	"strings"
	"testing"
)

func twoFiles() (*File, *File) {
	base := goodFile()
	cur := goodFile()
	cur.PR = 7
	return base, cur
}

func find(f *File, name string) *Result {
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Name == name {
			return &f.Benchmarks[i]
		}
	}
	return nil
}

func TestCompareCleanRun(t *testing.T) {
	base, cur := twoFiles()
	// Zero the zero-alloc set in both so the invariant holds.
	for _, name := range ZeroAlloc {
		find(base, name).AllocsPerOp = 0
		find(cur, name).AllocsPerOp = 0
	}
	// An improvement must not trip the gate.
	cur.Benchmarks[len(cur.Benchmarks)-1].NsPerOp /= 10
	report, regs := Compare(base, cur, DefaultCompareOpts())
	if len(regs) != 0 {
		t.Fatalf("clean comparison flagged regressions: %v", regs)
	}
	if !strings.Contains(report, "no regressions") {
		t.Errorf("report missing success line:\n%s", report)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base, cur := twoFiles()
	for _, name := range ZeroAlloc {
		find(base, name).AllocsPerOp = 0
		find(cur, name).AllocsPerOp = 0
	}
	r := find(cur, "embed_source")
	r.NsPerOp *= 3 // past the default 2x bound
	report, regs := Compare(base, cur, DefaultCompareOpts())
	if len(regs) != 1 || regs[0].Name != "embed_source" {
		t.Fatalf("want one ns regression on embed_source, got %v", regs)
	}
	if !strings.Contains(report, "FAIL ns") {
		t.Errorf("report missing ns verdict:\n%s", report)
	}
	// Within tolerance passes.
	r.NsPerOp = find(base, "embed_source").NsPerOp * 1.5
	if _, regs := Compare(base, cur, DefaultCompareOpts()); len(regs) != 0 {
		t.Errorf("1.5x ns within default 2x tolerance flagged: %v", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base, cur := twoFiles()
	for _, name := range ZeroAlloc {
		find(base, name).AllocsPerOp = 0
		find(cur, name).AllocsPerOp = 0
	}
	// goodFile sets 3 allocs/op; bound is 3*1.25+2 = 5 (integer-truncated).
	find(cur, "embed_source").AllocsPerOp = 50
	_, regs := Compare(base, cur, DefaultCompareOpts())
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "allocs/op") {
		t.Fatalf("want one alloc regression, got %v", regs)
	}
	find(cur, "embed_source").AllocsPerOp = 5
	if _, regs := Compare(base, cur, DefaultCompareOpts()); len(regs) != 0 {
		t.Errorf("allocs within bound flagged: %v", regs)
	}
}

func TestCompareZeroAllocInvariant(t *testing.T) {
	base, cur := twoFiles()
	for _, name := range ZeroAlloc {
		find(base, name).AllocsPerOp = 0
		find(cur, name).AllocsPerOp = 0
	}
	// 1 alloc/op on a ZeroAlloc benchmark is inside the fractional+slack
	// bound but must still fail: the invariant is strict.
	find(cur, "nn_forward").AllocsPerOp = 1
	report, regs := Compare(base, cur, DefaultCompareOpts())
	if len(regs) != 1 || regs[0].Name != "nn_forward" {
		t.Fatalf("want one zero-alloc regression on nn_forward, got %v", regs)
	}
	if !strings.Contains(regs[0].Reason, "zero-alloc") {
		t.Errorf("reason does not name the invariant: %s", regs[0].Reason)
	}
	if !strings.Contains(report, "FAIL zero-alloc") {
		t.Errorf("report missing zero-alloc verdict:\n%s", report)
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	base, cur := twoFiles()
	for _, name := range ZeroAlloc {
		find(base, name).AllocsPerOp = 0
		find(cur, name).AllocsPerOp = 0
	}
	cur.Benchmarks = cur.Benchmarks[1:] // drop embed_forward
	report, regs := Compare(base, cur, DefaultCompareOpts())
	if len(regs) != 1 || regs[0].Name != "embed_forward" {
		t.Fatalf("want one missing-benchmark regression, got %v", regs)
	}
	if !strings.Contains(report, "MISSING") {
		t.Errorf("report missing MISSING verdict:\n%s", report)
	}
}

func TestCompareNewBenchmark(t *testing.T) {
	base, cur := twoFiles()
	for _, name := range ZeroAlloc {
		find(base, name).AllocsPerOp = 0
		find(cur, name).AllocsPerOp = 0
	}
	// A benchmark new in current is informational, not a regression —
	// unless it is in the ZeroAlloc set and allocates.
	base.Benchmarks = base.Benchmarks[1:] // embed_forward absent from baseline
	if _, regs := Compare(base, cur, DefaultCompareOpts()); len(regs) != 0 {
		t.Fatalf("new benchmark flagged as regression: %v", regs)
	}
	find(cur, "embed_forward").AllocsPerOp = 4
	if _, regs := Compare(base, cur, DefaultCompareOpts()); len(regs) != 1 {
		t.Errorf("allocating new ZeroAlloc benchmark not flagged")
	}
}

func TestZeroAllocSubsetOfRequired(t *testing.T) {
	if !sort.StringsAreSorted(Required) {
		t.Error("Required is not sorted")
	}
	if !sort.StringsAreSorted(ZeroAlloc) {
		t.Error("ZeroAlloc is not sorted")
	}
	req := map[string]bool{}
	for _, name := range Required {
		req[name] = true
	}
	for _, name := range ZeroAlloc {
		if !req[name] {
			t.Errorf("ZeroAlloc benchmark %q is not in Required, so the gate could silently lose it", name)
		}
	}
}
