package dataset

import (
	"strings"
	"testing"

	"neurovec/internal/diag"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
	"neurovec/internal/lower"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{N: 50, Seed: 3})
	b := Generate(GenConfig{N: 50, Seed: 3})
	for i := range a.Samples {
		if a.Samples[i].Source != b.Samples[i].Source {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
	c := Generate(GenConfig{N: 50, Seed: 4})
	same := 0
	for i := range a.Samples {
		if a.Samples[i].Source == c.Samples[i].Source {
			same++
		}
	}
	if same == len(a.Samples) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGeneratedSamplesAllParseAndLower(t *testing.T) {
	set := Generate(GenConfig{N: 600, Seed: 1})
	if len(set.Samples) != 600 {
		t.Fatalf("generated %d samples", len(set.Samples))
	}
	for _, s := range set.Samples {
		prog, err := lang.Parse(s.Source)
		if err != nil {
			t.Fatalf("%s does not parse: %v\n%s", s.Name, err, s.Source)
		}
		irp, err := lower.Program(prog, lower.DefaultOptions())
		if err != nil {
			t.Fatalf("%s does not lower: %v\n%s", s.Name, err, s.Source)
		}
		if len(irp.InnermostLoops()) == 0 {
			t.Fatalf("%s has no innermost loop\n%s", s.Name, s.Source)
		}
	}
}

func TestGeneratedDatasetIsDiverse(t *testing.T) {
	set := Generate(GenConfig{N: 400, Seed: 2})
	fams := map[string]int{}
	srcs := map[string]bool{}
	for _, s := range set.Samples {
		fams[s.Family]++
		srcs[s.Source] = true
	}
	if len(fams) < 12 {
		t.Errorf("only %d families present, want >= 12", len(fams))
	}
	if len(srcs) < 300 {
		t.Errorf("only %d distinct sources among 400 samples", len(srcs))
	}
}

func TestGeneratedSourcesRoundTripPrinter(t *testing.T) {
	// Property over the whole corpus: parse -> print -> parse -> print is a
	// fixpoint, and the reprinted program lowers to a loop forest with the
	// same innermost-loop count.
	set := Generate(GenConfig{N: 250, Seed: 11})
	for _, s := range set.Samples {
		p1, err := lang.Parse(s.Source)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		out1 := lang.Print(p1)
		p2, err := lang.Parse(out1)
		if err != nil {
			t.Fatalf("%s: reprint does not parse: %v\n%s", s.Name, err, out1)
		}
		if out2 := lang.Print(p2); out2 != out1 {
			t.Fatalf("%s: print not a fixpoint", s.Name)
		}
		ir1 := lower.MustProgram(p1)
		ir2 := lower.MustProgram(p2)
		if len(ir1.InnermostLoops()) != len(ir2.InnermostLoops()) {
			t.Fatalf("%s: loop count changed across reprint", s.Name)
		}
	}
}

func TestHistogramFamilyIsUnvectorizable(t *testing.T) {
	set := Generate(GenConfig{N: 10, Seed: 3, Families: []string{"histogram"}})
	for _, s := range set.Samples {
		irp := lower.MustProgram(lang.MustParse(s.Source))
		l := irp.InnermostLoops()[0]
		hasNonAffineStore := false
		for _, a := range l.Accesses {
			if a.Kind == ir.Store && !a.Affine {
				hasNonAffineStore = true
			}
		}
		if !hasNonAffineStore {
			t.Fatalf("%s: histogram lost its scatter store\n%s", s.Name, s.Source)
		}
	}
}

// TestExtendedFamilies covers the opt-in extended-grammar pool: samples must
// parse, sema-check without errors (warnings only from the intentionally
// non-vectorizable shapes), and lower; and the default pool must stay free
// of extended families so existing seeds remain byte-stable.
func TestExtendedFamilies(t *testing.T) {
	extNames := map[string]bool{}
	for _, f := range extendedFamilies {
		extNames[f.name] = true
	}

	set := Generate(GenConfig{N: 200, Seed: 5, Extended: true})
	seenExt := map[string]bool{}
	for _, s := range set.Samples {
		if extNames[s.Family] {
			seenExt[s.Family] = true
		}
		prog, err := lang.Parse(s.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", s.Name, err, s.Source)
		}
		info := sema.Check(s.Name, prog)
		for _, d := range info.Diags {
			if d.Severity == diag.Error {
				t.Errorf("%s: sema error: %s\n%s", s.Name, d.String(), s.Source)
			} else if d.Code != sema.CodeNonCanonical && d.Code != sema.CodeEarlyExit {
				t.Errorf("%s: unexpected warning: %s\n%s", s.Name, d.String(), s.Source)
			}
		}
		if _, err := lower.Program(prog, lower.DefaultOptions()); err != nil {
			t.Fatalf("%s: lower: %v\n%s", s.Name, err, s.Source)
		}
	}
	if len(seenExt) < len(extNames) {
		t.Errorf("only %d/%d extended families drawn in 200 samples: %v", len(seenExt), len(extNames), seenExt)
	}

	// Repeatability of the extended pool.
	again := Generate(GenConfig{N: 200, Seed: 5, Extended: true})
	for i := range set.Samples {
		if set.Samples[i].Source != again.Samples[i].Source {
			t.Fatalf("extended sample %d differs across identical seeds", i)
		}
	}

	// The default pool must not draw extended families.
	base := Generate(GenConfig{N: 300, Seed: 5})
	for _, s := range base.Samples {
		if extNames[s.Family] {
			t.Fatalf("default pool drew extended family %s; existing seeds would drift", s.Family)
		}
	}
}

func TestFamilyFilter(t *testing.T) {
	set := Generate(GenConfig{N: 20, Seed: 1, Families: []string{"reduction"}})
	for _, s := range set.Samples {
		if s.Family != "reduction" {
			t.Fatalf("family filter leaked %s", s.Family)
		}
	}
}

func TestSplitFractions(t *testing.T) {
	set := Generate(GenConfig{N: 500, Seed: 9})
	train, test := set.Split(0.2)
	if got := len(test.Samples); got != 100 {
		t.Errorf("test split = %d, want 100 (20%%)", got)
	}
	if len(train.Samples)+len(test.Samples) != 500 {
		t.Error("split lost samples")
	}
	// Determinism.
	train2, _ := set.Split(0.2)
	if train.Samples[0] != train2.Samples[0] {
		t.Error("split not deterministic")
	}
}

func TestBenchmarkSuitesWellFormed(t *testing.T) {
	suites := map[string][]Benchmark{
		"eval":      EvalBenchmarks(),
		"llvmsuite": LLVMSuite(),
		"polybench": PolyBench(),
		"mibench":   MiBench(),
	}
	wantCounts := map[string]int{"eval": 12, "llvmsuite": 17, "polybench": 6, "mibench": 6}
	for name, bs := range suites {
		if len(bs) != wantCounts[name] {
			t.Errorf("%s has %d benchmarks, want %d", name, len(bs), wantCounts[name])
		}
		seen := map[string]bool{}
		for _, b := range bs {
			if seen[b.Name] {
				t.Errorf("%s: duplicate name %s", name, b.Name)
			}
			seen[b.Name] = true
			prog, err := lang.Parse(b.Source)
			if err != nil {
				t.Fatalf("%s/%s: parse: %v", name, b.Name, err)
			}
			opts := lower.DefaultOptions()
			opts.ParamValues = b.ParamValues
			irp, err := lower.Program(prog, opts)
			if err != nil {
				t.Fatalf("%s/%s: lower: %v", name, b.Name, err)
			}
			if len(irp.InnermostLoops()) == 0 {
				t.Errorf("%s/%s: no loops", name, b.Name)
			}
		}
	}
}

// TestTSVCSuiteWellFormed checks the extended-grammar suite end to end:
// every kernel parses, lowers, and yields at least one innermost loop, and
// the suite as a whole covers each of the constructs it exists to exercise.
func TestTSVCSuiteWellFormed(t *testing.T) {
	bs := TSVC()
	if len(bs) < 30 {
		t.Fatalf("tsvc has %d kernels, want >= 30", len(bs))
	}
	seen := map[string]bool{}
	var calls, irregular, earlyExit, structAccess, multiDim, switches int
	for _, b := range bs {
		if seen[b.Name] {
			t.Errorf("duplicate kernel name %s", b.Name)
		}
		seen[b.Name] = true
		prog, err := lang.Parse(b.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", b.Name, err)
		}
		opts := lower.DefaultOptions()
		opts.ParamValues = b.ParamValues
		irp, err := lower.Program(prog, opts)
		if err != nil {
			t.Fatalf("%s: lower: %v", b.Name, err)
		}
		if len(irp.InnermostLoops()) == 0 {
			t.Errorf("%s: no innermost loops", b.Name)
		}
		for _, l := range irp.InnermostLoops() {
			if l.HasCall {
				calls++
			}
			if l.Irregular {
				irregular++
			}
			if l.HasEarlyExit {
				earlyExit++
			}
			for _, a := range l.Accesses {
				if len(a.Dims) > 1 {
					multiDim++
				}
				if strings.Contains(a.Array, ".") {
					structAccess++
				}
			}
		}
		if strings.Contains(b.Source, "switch") {
			switches++
		}
	}
	if calls == 0 || irregular == 0 || earlyExit == 0 || structAccess == 0 || multiDim == 0 || switches == 0 {
		t.Errorf("coverage gap: calls=%d irregular=%d earlyExit=%d struct=%d multiDim=%d switch=%d",
			calls, irregular, earlyExit, structAccess, multiDim, switches)
	}
}

func TestMiBenchHasScalarWork(t *testing.T) {
	for _, b := range MiBench() {
		if b.ScalarWorkFactor < 1 {
			t.Errorf("%s: ScalarWorkFactor = %v, MiBench programs must be loop-minor", b.Name, b.ScalarWorkFactor)
		}
	}
	for _, b := range PolyBench() {
		if b.ScalarWorkFactor != 0 {
			t.Errorf("%s: PolyBench kernels should be pure loop time", b.Name)
		}
	}
}

func TestUnknownBoundBenchmarkHasParams(t *testing.T) {
	for _, b := range EvalBenchmarks() {
		if b.Name == "bench04_unknown_bounds" {
			if b.ParamValues["n"] == 0 {
				t.Fatal("bench04 needs a simulated runtime bound")
			}
			return
		}
	}
	t.Fatal("bench04_unknown_bounds missing")
}

func TestAdpcmIsRecurrenceLimited(t *testing.T) {
	// The paper could not vectorize adpcm due to memory dependencies; our
	// analogue must carry a distance-1 recurrence.
	for _, b := range MiBench() {
		if b.Name != "adpcm_decode" {
			continue
		}
		irp := lower.MustProgram(lang.MustParse(b.Source))
		l := irp.InnermostLoops()[0]
		// pcm[i+1] = pcm[i] + ... -> flow dependence distance 1.
		found := false
		for _, a := range l.Accesses {
			if a.Array == "pcm" {
				found = true
			}
		}
		if !found {
			t.Fatal("adpcm analogue lost its recurrence")
		}
		return
	}
	t.Fatal("adpcm_decode missing")
}
