package dataset

// TSVC returns analogues of the TSVC (Test Suite for Vectorizing Compilers)
// kernels, extended to exercise the frontend constructs the original corpus
// suites avoid: function calls in loop bodies and subscripts, struct field
// accesses, switch statements, multi-dimensional subscripts, and
// non-canonical loop forms (non-unit steps, != bounds, downward counts,
// geometric induction, early exits, imperfect nests). Kernels follow the
// TSVC naming convention (s<nnn>) with a descriptive suffix.
//
// Unlike the polybench/mibench/figure7 suites, several of these kernels are
// intentionally NOT vectorizable: the suite's job is to prove the pipeline
// stays sound and deterministic on the full grammar, with the dependence
// analysis refusing exactly the loops it cannot prove safe. Kernels may
// carry sema warnings (non-canonical form, early exit) but never errors.
func TSVC() []Benchmark {
	return []Benchmark{
		{Name: "s000_linear", Source: `
int a[1024];
int b[1024];
void s000() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[i] + 1;
    }
}
`},
		{Name: "s111_stride2", Source: `
float a[2048];
float b[2048];
void s111() {
    for (int i = 1; i < 2048; i += 2) {
        a[i] = a[i - 1] + b[i];
    }
}
`},
		{Name: "s112_reverse_recurrence", Source: `
float a[1025];
float b[1024];
void s112() {
    for (int i = 1023; i >= 0; i--) {
        a[i + 1] = a[i] + b[i];
    }
}
`},
		{Name: "s113_invariant_element", Source: `
float a[1024];
float b[1024];
void s113() {
    for (int i = 1; i < 1024; i++) {
        a[i] = a[0] + b[i];
    }
}
`},
		{Name: "s114_triangular", Source: `
float aa[128][128];
float bb[128][128];
void s114() {
    for (int i = 0; i < 128; i++) {
        for (int j = 0; j < i; j++) {
            aa[i][j] = aa[j][i] + bb[i][j];
        }
    }
}
`},
		{Name: "s115_lower_triangular", Source: `
float a[256];
float aa[256][256];
void s115() {
    for (int j = 0; j < 256; j++) {
        for (int i = j + 1; i < 256; i++) {
            a[i] = a[i] - aa[j][i] * a[j];
        }
    }
}
`},
		{Name: "s116_unrolled5", Source: `
float a[1025];
void s116() {
    for (int i = 0; i < 1020; i += 5) {
        a[i] = a[i + 1] * a[i];
        a[i + 1] = a[i + 2] * a[i + 1];
        a[i + 2] = a[i + 3] * a[i + 2];
        a[i + 3] = a[i + 4] * a[i + 3];
        a[i + 4] = a[i + 5] * a[i + 4];
    }
}
`},
		{Name: "s121_imperfect_pre", Source: `
float a[1024];
float bb[32][1024];
void s121() {
    for (int i = 0; i < 32; i++) {
        float t = a[i] * 0.5;
        a[i] = t;
        for (int j = 0; j < 1024; j++) {
            bb[i][j] = bb[i][j] + t;
        }
    }
}
`},
		{Name: "s122_noteq_bound", Source: `
int a[512];
int b[512];
void s122() {
    for (int i = 0; i != 512; i++) {
        a[i] = b[i] * 3;
    }
}
`},
		{Name: "s123_imperfect_post", Source: `
float aa[64][64];
float rowsum[64];
float colmax[64];
void s123() {
    for (int i = 0; i < 64; i++) {
        rowsum[i] = 0.0;
        for (int j = 0; j < 64; j++) {
            rowsum[i] += aa[i][j];
        }
        colmax[i] = rowsum[i] * 0.015625;
    }
}
`},
		{Name: "s124_branch_both", Source: `
int a[2048];
int b[2048];
int c[2048];
void s124() {
    for (int i = 0; i < 2048; i++) {
        if (b[i] > 0) {
            a[i] = b[i] + c[i];
        } else {
            a[i] = b[i] - c[i];
        }
    }
}
`},
		{Name: "s125_flattened_2d", Source: `
float aa[64][64];
float bb[64][64];
float flat[4096];
void s125() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            flat[64 * i + j] = aa[i][j] + bb[i][j] * 2.0;
        }
    }
}
`},
		{Name: "s126_threedim", Source: `
float ccc[16][16][16];
float ddd[16][16][16];
void s126() {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            for (int k = 0; k < 16; k++) {
                ccc[i][j][k] = ddd[i][j][k] * 0.5 + ddd[i][j][k];
            }
        }
    }
}
`},
		{Name: "s127_strided_store", Source: `
int a[2048];
int b[1024];
void s127() {
    for (int i = 0; i < 1024; i++) {
        a[2 * i] = b[i];
    }
}
`},
		{Name: "s128_call_body", Source: `
int a[1024];
int b[1024];
void s128() {
    for (int i = 0; i < 1024; i++) {
        a[i] = transform(b[i]) + 1;
    }
}
`},
		{Name: "s131_runtime_offset", Source: `
float a[2048];
float b[1024];
void s131(int m) {
    for (int i = 0; i < 1024; i++) {
        a[i + m] = a[i] + b[i];
    }
}
`, ParamValues: map[string]int64{"m": 1}},
		{Name: "s132_row_offset", Source: `
float aa[128][128];
float b[128];
void s132(int m) {
    for (int j = 1; j < 128; j++) {
        aa[m][j] = aa[m][j - 1] + b[j];
    }
}
`, ParamValues: map[string]int64{"m": 2}},
		{Name: "s141_switch_body", Source: `
int mode[2048];
int a[2048];
int b[2048];
void s141() {
    for (int i = 0; i < 2048; i++) {
        switch (mode[i] & 3) {
        case 0:
            a[i] = b[i];
            break;
        case 1:
            a[i] = b[i] * 2;
            break;
        case 2:
            a[i] = b[i] + 5;
            break;
        default:
            a[i] = 0;
            break;
        }
    }
}
`},
		{Name: "s142_switch_fallthrough", Source: `
int tag[1024];
int acc[1024];
void s142() {
    for (int i = 0; i < 1024; i++) {
        switch (tag[i] & 1) {
        case 0:
            acc[i] = acc[i] + 1;
        default:
            acc[i] = acc[i] * 2;
            break;
        }
    }
}
`},
		{Name: "s151_struct_fields", Source: `
struct point { float x; float y; float z; };
struct point pts[1024];
float norm2[1024];
void s151() {
    for (int i = 0; i < 1024; i++) {
        norm2[i] = pts[i].x * pts[i].x + pts[i].y * pts[i].y + pts[i].z * pts[i].z;
    }
}
`},
		{Name: "s152_struct_update", Source: `
struct body { double px; double vx; };
struct body sys[512];
void s152(double dt) {
    for (int i = 0; i < 512; i++) {
        sys[i].px = sys[i].px + sys[i].vx * dt;
    }
}
`},
		{Name: "s153_struct_scalar", Source: `
struct rng { int lo; int hi; };
int a[1024];
int b[1024];
void s153() {
    struct rng r;
    r.lo = 0;
    r.hi = 255;
    for (int i = 0; i < 1024; i++) {
        int x = b[i];
        a[i] = x < r.lo ? r.lo : (x > r.hi ? r.hi : x);
    }
}
`},
		{Name: "s161_search_break", Source: `
int a[4096];
int found[1];
void s161(int key) {
    for (int i = 0; i < 4096; i++) {
        if (a[i] == key) {
            found[0] = i;
            break;
        }
    }
}
`, ParamValues: map[string]int64{"key": 7}},
		{Name: "s162_clip_break", Source: `
float a[2048];
float b[2048];
void s162() {
    for (int i = 0; i < 2048; i++) {
        if (a[i] < 0.0) {
            break;
        }
        b[i] = a[i] * 0.5;
    }
}
`},
		{Name: "s171_geometric", Source: `
int a[4096];
void s171() {
    for (int i = 1; i < 4096; i = i * 2) {
        a[i] = a[i] + 1;
    }
}
`},
		{Name: "s172_negative_step3", Source: `
float a[1536];
float b[1536];
void s172() {
    for (int i = 1535; i >= 0; i -= 3) {
        a[i] = b[i] + 1.0;
    }
}
`},
		{Name: "s173_call_subscript", Source: `
int a[1024];
int b[1024];
void s173() {
    for (int i = 0; i < 1024; i++) {
        a[remap(i)] = b[i];
    }
}
`},
		{Name: "s174_builtin_minmax", Source: `
int a[2048];
int b[2048];
int c[2048];
void s174() {
    for (int i = 0; i < 2048; i++) {
        c[i] = min(a[i], max(b[i], 0));
    }
}
`},
		{Name: "s175_builtin_sqrt", Source: `
double a[1024];
double b[1024];
void s175() {
    for (int i = 0; i < 1024; i++) {
        b[i] = sqrt(a[i] * a[i] + 1.0);
    }
}
`},
		{Name: "s176_dot", Source: `
float x[4096];
float y[4096];
float s176() {
    float s = 0;
    for (int i = 0; i < 4096; i++) {
        s += x[i] * y[i];
    }
    return s;
}
`},
		{Name: "s211_imperfect_stencil", Source: `
float a[258];
float bb[32][258];
void s211() {
    for (int i = 0; i < 32; i++) {
        a[0] = bb[i][0];
        for (int j = 1; j < 257; j++) {
            a[j] = bb[i][j - 1] + bb[i][j + 1];
        }
    }
}
`},
		{Name: "s221_struct_recurrence", Source: `
struct cell { float v; float w; };
struct cell grid[1025];
void s221() {
    for (int i = 0; i < 1024; i++) {
        grid[i + 1].v = grid[i].v * 0.5 + grid[i + 1].w;
    }
}
`},
		{Name: "s231_switch_nest", Source: `
int sel[64];
float aa[64][64];
float bb[64][64];
void s231() {
    for (int i = 0; i < 64; i++) {
        int k = sel[i] & 1;
        switch (k) {
        case 0:
            for (int j = 0; j < 64; j++) {
                aa[i][j] = bb[i][j] + 1.0;
            }
            break;
        default:
            for (int j = 0; j < 64; j++) {
                aa[i][j] = bb[i][j] * 2.0;
            }
            break;
        }
    }
}
`},
	}
}
