// Package dataset provides the training corpus and the evaluation
// benchmarks.
//
// The training corpus mirrors the paper's Section 3.2: thousands of
// synthetic single-nest loop programs generated from templates derived from
// the LLVM vectorizer test suite, mutating "the names of the parameters …
// the stride, the number of iterations, the functionality, the instructions,
// and the number of nested loops". Generation is deterministic per seed.
//
// Benchmarks cover the four evaluation sets: the LLVM-vectorizer-suite
// analogues (Figure 2), the twelve held-out benchmarks (Figure 7), the
// PolyBench analogues (Figure 8) and the MiBench analogues (Figure 9).
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// Sample is one training program. The primary loop is the innermost loop of
// the program's single function.
type Sample struct {
	Name   string
	Family string // template family the sample came from
	Source string
}

// Set is a training dataset.
type Set struct {
	Samples []*Sample
}

// Split partitions the set into train/test by a deterministic interleave:
// every k-th sample is held out, where k = round(1/testFrac). The paper
// keeps out 20% of samples for testing.
func (s *Set) Split(testFrac float64) (train, test *Set) {
	k := int(1.0/testFrac + 0.5)
	if k < 2 {
		k = 2
	}
	train, test = &Set{}, &Set{}
	for i, sm := range s.Samples {
		if i%k == k-1 {
			test.Samples = append(test.Samples, sm)
		} else {
			train.Samples = append(train.Samples, sm)
		}
	}
	return train, test
}

// Benchmark is an evaluation program. ScalarWorkFactor expresses
// non-loop work as a multiple of the baseline's loop time (the MiBench
// regime has large factors; kernel suites have zero).
type Benchmark struct {
	Name        string
	Source      string
	ParamValues map[string]int64
	// ScalarWorkFactor adds fixed scalar work equal to this multiple of the
	// baseline-vectorized loop time — modelling whole programs where "the
	// loops constitute a minor portion of the code".
	ScalarWorkFactor float64
}

// ---- Generation ----

// GenConfig controls the synthetic generator.
type GenConfig struct {
	N    int
	Seed int64
	// Families restricts generation to the named template families
	// (empty = all). Extended-grammar families may be named here even when
	// Extended is false.
	Families []string
	// Extended adds the extended-grammar template families (structs,
	// switches, opaque calls, non-unit steps, early exits, 3-D arrays,
	// imperfect nests) to the pool. It is opt-in because enabling it changes
	// which family every sample of an existing seed draws — corpora that pin
	// generated sources byte-for-byte (goldens, bench gates) rely on the
	// default pool staying fixed.
	Extended bool
}

// Generate produces a deterministic synthetic dataset.
func Generate(cfg GenConfig) *Set {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fams := families
	if cfg.Extended {
		fams = append(append([]family{}, families...), extendedFamilies...)
	}
	if len(cfg.Families) > 0 {
		all := append(append([]family{}, families...), extendedFamilies...)
		fams = nil
		for _, name := range cfg.Families {
			for _, f := range all {
				if f.name == name {
					fams = append(fams, f)
				}
			}
		}
	}
	set := &Set{}
	for i := 0; i < cfg.N; i++ {
		f := fams[rng.Intn(len(fams))]
		src := f.gen(newNamer(rng), rng)
		set.Samples = append(set.Samples, &Sample{
			Name:   fmt.Sprintf("%s_%04d", f.name, i),
			Family: f.name,
			Source: src,
		})
	}
	return set
}

// FamilyNames lists the template families available to the generator; the
// extended-grammar families are included after the base pool.
func FamilyNames() []string {
	out := make([]string, 0, len(families)+len(extendedFamilies))
	for _, f := range families {
		out = append(out, f.name)
	}
	for _, f := range extendedFamilies {
		out = append(out, f.name)
	}
	return out
}

type family struct {
	name string
	gen  func(nm *namer, rng *rand.Rand) string
}

// namer hands out randomised identifier names — the paper's defence against
// the embedding latching onto parameter names.
type namer struct {
	rng  *rand.Rand
	used map[string]bool
}

func newNamer(rng *rand.Rand) *namer {
	return &namer{rng: rng, used: map[string]bool{}}
}

var namePool = []string{
	"a", "b", "c", "d", "src", "dst", "buf", "out", "in", "vec", "arr",
	"data", "tmp", "acc", "xs", "ys", "zs", "p", "q", "r", "s", "t",
	"left", "right", "res", "val", "tab", "w", "u", "v",
}

func (n *namer) array() string {
	for {
		base := namePool[n.rng.Intn(len(namePool))]
		if n.rng.Intn(3) == 0 {
			base = fmt.Sprintf("%s%d", base, n.rng.Intn(10))
		}
		if !n.used[base] {
			n.used[base] = true
			return base
		}
	}
}

func (n *namer) scalar() string { return n.array() }

func (n *namer) index() string {
	return []string{"i", "j", "k", "m", "n2", "ii"}[n.rng.Intn(6)]
}

var trips = []int{64, 100, 128, 200, 256, 500, 512, 777, 1024, 2048, 4096}

func pickTrip(rng *rand.Rand) int { return trips[rng.Intn(len(trips))] }

var intTypes = []string{"char", "short", "int", "long"}
var allTypes = []string{"char", "short", "int", "long", "float", "double"}
var fpTypes = []string{"float", "double"}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// w writes a line into the builder with fmt args.
func w(b *strings.Builder, format string, args ...any) {
	fmt.Fprintf(b, format, args...)
	b.WriteByte('\n')
}
