package dataset

// PolyBench returns six kernels in the style of the PolyBench suite the
// paper evaluates in Figure 8: matrix operations and linear algebra, "for
// which Polly is optimized to run on". Sizes are chosen so working sets
// straddle the cache hierarchy: the large-trip-count kernels are where Polly
// tiling wins, while kernels dominated by vectorizable streaming favour the
// learned vectorizer — giving the paper's split (deep RL wins 3/6).
func PolyBench() []Benchmark {
	return []Benchmark{
		{Name: "gemm", Source: `
float A[512][512];
float B[512][512];
float C[512][512];
void kernel(float alpha) {
    for (int i = 0; i < 512; i++) {
        for (int j = 0; j < 512; j++) {
            float sum = 0;
            for (int k = 0; k < 512; k++) {
                sum += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
`},
		{Name: "syrk", Source: `
float S[256][256];
float M[256][256];
void kernel(float beta) {
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            float acc = 0;
            for (int k = 0; k < 256; k++) {
                acc += M[i][k] * M[j][k];
            }
            S[i][j] = acc * beta;
        }
    }
}
`},
		{Name: "atax", Source: `
float Am[1024][1024];
float xv[1024];
float tmp1[1024];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        float acc = 0;
        for (int j = 0; j < 1024; j++) {
            acc += Am[i][j] * xv[j];
        }
        tmp1[i] = acc;
    }
}
`},
		{Name: "bicg", Source: `
float Bm[1024][1024];
float pv[1024];
float qv[1024];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        float acc = 0;
        for (int j = 0; j < 1024; j++) {
            acc += Bm[i][j] * pv[j];
        }
        qv[i] = acc;
    }
}
`},
		{Name: "mvt", Source: `
float Mv[768][768];
float x1v[768];
float y1v[768];
void kernel() {
    for (int i = 0; i < 768; i++) {
        float acc = 0;
        for (int j = 0; j < 768; j++) {
            acc += Mv[i][j] * y1v[j];
        }
        x1v[i] = x1v[i] + acc;
    }
}
`},
		{Name: "gesummv", Source: `
float Ag[512][512];
float Bg[512][512];
float xg[512];
float yg[512];
void kernel(float alpha, float beta) {
    for (int i = 0; i < 512; i++) {
        float ta = 0;
        float tb = 0;
        for (int j = 0; j < 512; j++) {
            ta += Ag[i][j] * xg[j];
            tb += Bg[i][j] * xg[j];
        }
        yg[i] = alpha * ta + beta * tb;
    }
}
`},
	}
}
