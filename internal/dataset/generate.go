package dataset

import (
	"math/rand"
	"strings"
)

// families are the synthetic-loop template families, modelled on the five
// dataset examples the paper lists plus the behaviours its evaluation
// mentions (predicates, strided accesses, bitwise operations, unknown loop
// bounds, if statements, unknown misalignment, multidimensional arrays,
// summation reduction, type conversions, different data types).
var families = []family{
	{"convert_unroll", genConvertUnroll},
	{"nested_set", genNestedSet},
	{"predicate_clamp", genPredicateClamp},
	{"matmul", genMatmul},
	{"complex_mult", genComplexMult},
	{"reduction", genReduction},
	{"stencil", genStencil},
	{"bitwise", genBitwise},
	{"saxpy", genSaxpy},
	{"strided_copy", genStridedCopy},
	{"mixed_types", genMixedTypes},
	{"runtime_bound", genRuntimeBound},
	{"if_guard", genIfGuard},
	{"reverse", genReverse},
	{"recurrence", genRecurrence},
	{"gather", genGather},
	{"histogram", genHistogram},
	{"transpose", genTranspose},
	{"outer_product", genOuterProduct},
	{"prefix_sum", genPrefixSum},
	{"fused_streams", genFusedStreams},
}

// extendedFamilies cover the extended grammar (structs, switches, opaque
// calls, non-unit steps, early exits, 3-D arrays, imperfect nests). They are
// kept out of the default pool so that existing seeds keep producing
// byte-identical corpora; GenConfig.Extended (or naming them in Families)
// opts in.
var extendedFamilies = []family{
	{"struct_aos", genStructAOS},
	{"switch_select", genSwitchSelect},
	{"opaque_call", genOpaqueCall},
	{"stepped", genStepped},
	{"early_break", genEarlyBreak},
	{"three_dim", genThreeDim},
	{"imperfect_nest", genImperfectNest},
}

// Array-of-structs field arithmetic (AoS layout; each field its own plane).
func genStructAOS(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, fpTypes)
	sname := pick(rng, []string{"point", "cell", "body", "node"})
	f1, f2 := "x", "y"
	arr, out := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "struct %s { %s %s; %s %s; };", sname, tp, f1, tp, f2)
	w(&b, "struct %s %s[%d];", sname, arr, n)
	w(&b, "%s %s[%d];", tp, out, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	switch rng.Intn(3) {
	case 0:
		w(&b, "        %s[i] = %s[i].%s * %s[i].%s;", out, arr, f1, arr, f2)
	case 1:
		w(&b, "        %s[i].%s = %s[i].%s + %s[i];", arr, f1, arr, f2, out)
	default:
		w(&b, "        %s[i] = %s[i].%s + %s[i].%s * 0.5;", out, arr, f1, arr, f2)
	}
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Switch over a data-dependent tag with constant-labelled arms.
func genSwitchSelect(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	arms := 2 + rng.Intn(3)
	sel, src, dst := nm.array(), nm.array(), nm.array()
	var b strings.Builder
	w(&b, "int %s[%d];", sel, n)
	w(&b, "int %s[%d];", src, n)
	w(&b, "int %s[%d];", dst, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        switch (%s[i] & %d) {", sel, arms)
	for a := 0; a < arms; a++ {
		w(&b, "        case %d:", a)
		w(&b, "            %s[i] = %s[i] * %d;", dst, src, a+2)
		w(&b, "            break;")
	}
	w(&b, "        default:")
	w(&b, "            %s[i] = 0;", dst)
	w(&b, "            break;")
	w(&b, "        }")
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Opaque call in the loop body: never vectorizable.
func genOpaqueCall(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	fn := pick(rng, []string{"update", "filterv", "transform", "process"})
	src, dst := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "int %s[%d];", src, n)
	w(&b, "int %s[%d];", dst, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	if rng.Intn(2) == 0 {
		w(&b, "        %s[i] = %s(%s[i]);", dst, fn, src)
	} else {
		w(&b, "        %s[%s(i)] = %s[i];", dst, fn, src)
	}
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Non-unit constant step with an in-loop recurrence candidate.
func genStepped(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	st := []int{2, 3, 4, 5}[rng.Intn(4)]
	tp := pick(rng, allTypes)
	a, bArr := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, a, n+st)
	w(&b, "%s %s[%d];", tp, bArr, n+st)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i += %d) {", n, st)
	w(&b, "        %s[i + %d] = %s[i] + %s[i];", a, st-1, a, bArr)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Early exit: a guarded break makes the trip count data-dependent.
func genEarlyBreak(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	thr := 1 << uint(3+rng.Intn(8))
	src, dst := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "int %s[%d];", src, n)
	w(&b, "int %s[%d];", dst, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        if (%s[i] > %d) {", src, thr)
	w(&b, "            break;")
	w(&b, "        }")
	w(&b, "        %s[i] = %s[i] + 1;", dst, src)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Triple-subscripted arrays with a unit-stride innermost dimension.
func genThreeDim(nm *namer, rng *rand.Rand) string {
	n := []int{8, 12, 16}[rng.Intn(3)]
	tp := pick(rng, fpTypes)
	src, dst := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d][%d][%d];", tp, src, n, n, n)
	w(&b, "%s %s[%d][%d][%d];", tp, dst, n, n, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        for (int j = 0; j < %d; j++) {", n)
	w(&b, "            for (int k = 0; k < %d; k++) {", n)
	w(&b, "                %s[i][j][k] = %s[i][j][k] * 0.5 + %s[i][j][k];", dst, src, dst)
	w(&b, "            }")
	w(&b, "        }")
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Imperfect nest: scalar work before and after the inner loop.
func genImperfectNest(nm *namer, rng *rand.Rand) string {
	rows := []int{16, 32, 64}[rng.Intn(3)]
	cols := pickTrip(rng)
	tp := pick(rng, fpTypes)
	m, acc := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d][%d];", tp, m, rows, cols)
	w(&b, "%s %s[%d];", tp, acc, rows)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", rows)
	w(&b, "        %s sum = 0;", tp)
	w(&b, "        for (int j = 0; j < %d; j++) {", cols)
	w(&b, "            sum += %s[i][j];", m)
	w(&b, "        }")
	w(&b, "        %s[i] = sum;", acc)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Example #1: manually strip-mined copies with type conversion.
func genConvertUnroll(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	narrow := pick(rng, []string{"char", "short"})
	streams := 1 + rng.Intn(3)
	var b strings.Builder
	w(&b, "int N = %d;", n)
	var dsts, srcs []string
	for s := 0; s < streams; s++ {
		d, sr := nm.array(), nm.array()
		dsts, srcs = append(dsts, d), append(srcs, sr)
		w(&b, "int %s[%d];", d, n)
		w(&b, "%s %s[%d];", narrow, sr, n)
	}
	iv := nm.index()
	w(&b, "void kernel() {")
	w(&b, "    for (int %s = 0; %s < N - 1; %s += 2) {", iv, iv, iv)
	for s := 0; s < streams; s++ {
		w(&b, "        %s[%s] = (int) %s[%s];", dsts[s], iv, srcs[s], iv)
		w(&b, "        %s[%s + 1] = (int) %s[%s + 1];", dsts[s], iv, srcs[s], iv)
	}
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Example #2: nested 2-D initialisation.
func genNestedSet(nm *namer, rng *rand.Rand) string {
	rows := []int{32, 64, 128, 256}[rng.Intn(4)]
	cols := []int{32, 64, 128, 256}[rng.Intn(4)]
	tp := pick(rng, allTypes)
	g := nm.array()
	i, j := "i", "j"
	var b strings.Builder
	w(&b, "%s %s[%d][%d];", tp, g, rows, cols)
	w(&b, "void kernel(%s x) {", tp)
	w(&b, "    for (int %s = 0; %s < %d; %s++) {", i, i, rows, i)
	w(&b, "        for (int %s = 0; %s < %d; %s++) {", j, j, cols, j)
	w(&b, "            %s[%s][%s] = x;", g, i, j)
	w(&b, "        }")
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Example #3: data-dependent clamp through a ternary.
func genPredicateClamp(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	a, out, mx := nm.array(), nm.array(), nm.scalar()
	j := nm.scalar()
	iv := nm.index()
	var b strings.Builder
	w(&b, "int %s[%d];", a, 2*n)
	w(&b, "int %s[%d];", out, 2*n)
	w(&b, "int %s = %d;", mx, 1<<uint(4+rng.Intn(8)))
	w(&b, "void kernel() {")
	w(&b, "    for (int %s = 0; %s < %d; %s++) {", iv, iv, 2*n, iv)
	w(&b, "        int %s = %s[%s];", j, a, iv)
	w(&b, "        %s[%s] = %s > %s ? %s : 0;", out, iv, j, mx, mx)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Example #4: triple-nested matrix multiply with a scaled reduction.
func genMatmul(nm *namer, rng *rand.Rand) string {
	n := []int{32, 48, 64, 96, 128}[rng.Intn(5)]
	tp := pick(rng, fpTypes)
	A, B, C := nm.array(), nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d][%d];", tp, A, n, n)
	w(&b, "%s %s[%d][%d];", tp, B, n, n)
	w(&b, "%s %s[%d][%d];", tp, C, n, n)
	w(&b, "void kernel(%s alpha) {", tp)
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        for (int j = 0; j < %d; j++) {", n)
	w(&b, "            %s sum = 0;", tp)
	w(&b, "            for (int k = 0; k < %d; k++) {", n)
	w(&b, "                sum += alpha * %s[i][k] * %s[k][j];", A, B)
	w(&b, "            }")
	w(&b, "            %s[i][j] = sum;", C)
	w(&b, "        }")
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Example #5: interleaved complex multiply over even/odd pairs.
func genComplexMult(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	a, d, bb, c := nm.array(), nm.array(), nm.array(), nm.array()
	tp := pick(rng, fpTypes)
	var b strings.Builder
	w(&b, "int N = %d;", n)
	w(&b, "%s %s[%d];", tp, a, n)
	w(&b, "%s %s[%d];", tp, d, n)
	w(&b, "%s %s[%d];", tp, bb, 2*n)
	w(&b, "%s %s[%d];", tp, c, 2*n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < N / 2 - 1; i++) {")
	w(&b, "        %s[i] = %s[2 * i + 1] * %s[2 * i + 1] - %s[2 * i] * %s[2 * i];", a, bb, c, bb, c)
	w(&b, "        %s[i] = %s[2 * i] * %s[2 * i + 1] + %s[2 * i + 1] * %s[2 * i];", d, bb, c, bb, c)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Summation reduction (the dot-product shape of the paper's Figure 1).
func genReduction(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, allTypes)
	v1 := nm.array()
	acc := nm.scalar()
	twoArrays := rng.Intn(2) == 0
	v2 := v1
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, v1, n)
	if twoArrays {
		v2 = nm.array()
		w(&b, "%s %s[%d];", tp, v2, n)
	}
	w(&b, "%s kernel() {", tp)
	w(&b, "    %s %s = 0;", tp, acc)
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s += %s[i] * %s[i];", acc, v1, v2)
	w(&b, "    }")
	w(&b, "    return %s;", acc)
	w(&b, "}")
	return b.String()
}

// Three-point stencil.
func genStencil(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, fpTypes)
	src, dst := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, src, n+2)
	w(&b, "%s %s[%d];", tp, dst, n+2)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 1; i < %d; i++) {", n)
	w(&b, "        %s[i] = %s[i - 1] + %s[i] + %s[i + 1];", dst, src, src, src)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Bitwise manipulation loops.
func genBitwise(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, intTypes)
	a, m := nm.array(), nm.array()
	sh := 1 + rng.Intn(7)
	mask := (1 << uint(2+rng.Intn(10))) - 1
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, a, n)
	w(&b, "%s %s[%d];", tp, m, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i] = (%s[i] >> %d) ^ (%s[i] & %d) | (%s[i] << 1);", a, a, sh, m, mask, m)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Classic saxpy/daxpy with an unknown scalar.
func genSaxpy(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, fpTypes)
	x, y := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, x, n)
	w(&b, "%s %s[%d];", tp, y, n)
	w(&b, "void kernel(%s alpha) {", tp)
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i] = alpha * %s[i] + %s[i];", y, x, y)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Copy with a non-unit stride on the load side.
func genStridedCopy(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	stride := []int{2, 3, 4, 8}[rng.Intn(4)]
	tp := pick(rng, allTypes)
	a, bArr := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, a, n)
	w(&b, "%s %s[%d];", tp, bArr, n*stride+1)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i] = %s[%d * i];", a, bArr, stride)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Widening/narrowing chains across element types.
func genMixedTypes(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	narrow := pick(rng, []string{"char", "short"})
	wide := pick(rng, []string{"int", "long", "float", "double"})
	src, dst := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", narrow, src, n)
	w(&b, "%s %s[%d];", wide, dst, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i] = (%s) %s[i] * 3;", dst, wide, src)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Runtime (unknown) loop bound.
func genRuntimeBound(nm *namer, rng *rand.Rand) string {
	capN := 4096
	tp := pick(rng, allTypes)
	a, bArr := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, a, capN)
	w(&b, "%s %s[%d];", tp, bArr, capN)
	w(&b, "void kernel(int n) {")
	w(&b, "    for (int i = 0; i < n; i++) {")
	w(&b, "        %s[i] = %s[i] + %s[i];", a, a, bArr)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// If-guarded store.
func genIfGuard(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	a, out := nm.array(), nm.array()
	thr := 1 << uint(3+rng.Intn(8))
	var b strings.Builder
	w(&b, "int %s[%d];", a, n)
	w(&b, "int %s[%d];", out, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        if (%s[i] > %d) {", a, thr)
	w(&b, "            %s[i] = %s[i] * 2;", out, a)
	w(&b, "        }")
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Reverse-order traversal.
func genReverse(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, allTypes)
	a, bArr := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, a, n)
	w(&b, "%s %s[%d];", tp, bArr, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = %d; i >= 0; i--) {", n-1)
	w(&b, "        %s[i] = %s[%d - i];", a, bArr, n-1)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Loop-carried recurrence with varying dependence distance: limits the
// legal VF, teaching the agent that requesting more is wasted.
func genRecurrence(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	dist := []int{1, 2, 4, 8}[rng.Intn(4)]
	a := nm.array()
	var b strings.Builder
	w(&b, "int %s[%d];", a, n+dist)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i + %d] = %s[i] + 1;", a, dist, a)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Histogram: indirect (scatter) update — a non-affine store that dependence
// analysis must refuse to vectorize.
func genHistogram(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	bins := 1 << uint(6+rng.Intn(4))
	keys, hist := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "int %s[%d];", keys, n)
	w(&b, "int %s[%d];", hist, bins)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[%s[i] & %d] += 1;", hist, keys, bins-1)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Transpose-style copy: unit stride on one side, row stride on the other.
func genTranspose(nm *namer, rng *rand.Rand) string {
	n := []int{32, 64, 128}[rng.Intn(3)]
	tp := pick(rng, []string{"int", "float", "double"})
	src, dst := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d][%d];", tp, src, n, n)
	w(&b, "%s %s[%d][%d];", tp, dst, n, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        for (int j = 0; j < %d; j++) {", n)
	w(&b, "            %s[i][j] = %s[j][i];", dst, src)
	w(&b, "        }")
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Outer product: invariant load in the inner loop.
func genOuterProduct(nm *namer, rng *rand.Rand) string {
	n := []int{32, 64, 128}[rng.Intn(3)]
	tp := pick(rng, fpTypes)
	u, v, m := nm.array(), nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, u, n)
	w(&b, "%s %s[%d];", tp, v, n)
	w(&b, "%s %s[%d][%d];", tp, m, n, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        for (int j = 0; j < %d; j++) {", n)
	w(&b, "            %s[i][j] = %s[i] * %s[j];", m, u, v)
	w(&b, "        }")
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Prefix sum: a distance-1 recurrence expressed through two arrays.
func genPrefixSum(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, []string{"int", "long", "float", "double"})
	src, acc := nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, src, n)
	w(&b, "%s %s[%d];", tp, acc, n+1)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i + 1] = %s[i] + %s[i];", acc, acc, src)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Multiple independent streams in one body (reads shared inputs).
func genFusedStreams(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	tp := pick(rng, fpTypes)
	in1, in2, o1, o2 := nm.array(), nm.array(), nm.array(), nm.array()
	var b strings.Builder
	w(&b, "%s %s[%d];", tp, in1, n)
	w(&b, "%s %s[%d];", tp, in2, n)
	w(&b, "%s %s[%d];", tp, o1, n)
	w(&b, "%s %s[%d];", tp, o2, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i] = %s[i] * %s[i] + %s[i];", o1, in1, in2, in1)
	w(&b, "        %s[i] = %s[i] - %s[i] * 0.5;", o2, in1, in2)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}

// Indirect (gather) access.
func genGather(nm *namer, rng *rand.Rand) string {
	n := pickTrip(rng)
	idx, data, out := nm.array(), nm.array(), nm.array()
	var b strings.Builder
	w(&b, "int %s[%d];", idx, n)
	w(&b, "int %s[%d];", data, 4*n)
	w(&b, "int %s[%d];", out, n)
	w(&b, "void kernel() {")
	w(&b, "    for (int i = 0; i < %d; i++) {", n)
	w(&b, "        %s[i] = %s[%s[i]];", out, data, idx)
	w(&b, "    }")
	w(&b, "}")
	return b.String()
}
