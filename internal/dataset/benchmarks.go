package dataset

// EvalBenchmarks returns the twelve held-out benchmarks of the paper's
// Figure 7. Per the paper, they "include loops with different functionality
// and access patterns. For example, predicates, strided accesses, bitwise
// operations, unknown loop bounds, if statements, unknown misalignment,
// multidimensional arrays, summation reduction, type conversions, different
// data types". Benchmark #10 is a fusible loop pair — the case where Polly's
// loop fusion "optimizes beyond vectorization" and beats brute-force VF/IF
// search.
func EvalBenchmarks() []Benchmark {
	return []Benchmark{
		{
			Name: "bench01_predicates",
			Source: `
int sig[2048];
int lim = 255;
int outp[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        int x = sig[i];
        outp[i] = x > lim ? lim : (x < 0 ? 0 : x);
    }
}
`,
		},
		{
			Name: "bench02_strided",
			Source: `
float pix[8192];
float lum[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        lum[i] = pix[4 * i] * 0.299 + pix[4 * i + 1] * 0.587 + pix[4 * i + 2] * 0.114;
    }
}
`,
		},
		{
			Name: "bench03_bitwise",
			Source: `
int words[4096];
int keys[4096];
void kernel() {
    for (int i = 0; i < 4096; i++) {
        words[i] = (words[i] >> 3) ^ (keys[i] & 1023) | (keys[i] << 2);
    }
}
`,
		},
		{
			Name: "bench04_unknown_bounds",
			Source: `
double series[16384];
double scaled[16384];
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        scaled[i] = series[i] * 1.5 + 0.25;
    }
}
`,
			ParamValues: map[string]int64{"n": 5000},
		},
		{
			Name: "bench05_if_stmt",
			Source: `
int depth[4096];
int nearz = 64;
int mask[4096];
void kernel() {
    for (int i = 0; i < 4096; i++) {
        if (depth[i] < nearz) {
            mask[i] = depth[i] * 3;
        } else {
            mask[i] = 0;
        }
    }
}
`,
		},
		{
			Name: "bench06_misalignment",
			Source: `
float wave[8200];
float echo[8200];
void kernel(int off) {
    for (int i = 0; i < 8000; i++) {
        echo[i] = wave[i + off] * 0.5 + wave[i] * 0.5;
    }
}
`,
			ParamValues: map[string]int64{"off": 3},
		},
		{
			Name: "bench07_multidim",
			Source: `
float img[128][128];
float blur[128][128];
void kernel() {
    for (int i = 0; i < 128; i++) {
        for (int j = 1; j < 127; j++) {
            blur[i][j] = (img[i][j - 1] + img[i][j] + img[i][j + 1]) * 0.3333;
        }
    }
}
`,
		},
		{
			Name: "bench08_reduction",
			Source: `
int vecq[512];
int kernel() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vecq[i] * vecq[i];
    }
    return sum;
}
`,
		},
		{
			Name: "bench09_conversion",
			Source: `
short samples[4096];
int widened[4096];
void kernel() {
    for (int i = 0; i < 4095; i += 2) {
        widened[i] = (int) samples[i];
        widened[i + 1] = (int) samples[i + 1];
    }
}
`,
		},
		{
			// DRAM-resident working set: no VF/IF choice can beat the
			// bandwidth wall, but fusing the loops eliminates one full
			// re-read of `field` — the paper's benchmark #10, where "Polly
			// interestingly outperforms the brute-force search" because it
			// "performs loop transformations that optimize beyond
			// vectorization".
			Name: "bench10_fusible",
			Source: `
double field[1048576];
double gradp[1048576];
double gradm[1048576];
void kernel() {
    for (int i = 0; i < 1048576; i++) {
        gradp[i] = field[i] * 2.0 + 1.0;
    }
    for (int i = 0; i < 1048576; i++) {
        gradm[i] = field[i] * 0.5 - 1.0;
    }
}
`,
		},
		{
			Name: "bench11_datatypes",
			Source: `
double px[1024];
double py[1024];
double pz[1024];
double dist2[1024];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        dist2[i] = px[i] * px[i] + py[i] * py[i] + pz[i] * pz[i];
    }
}
`,
		},
		{
			Name: "bench12_stencil",
			Source: `
float heat[4098];
float next[4098];
void kernel() {
    for (int i = 1; i < 4097; i++) {
        next[i] = 0.25 * heat[i - 1] + 0.5 * heat[i] + 0.25 * heat[i + 1];
    }
}
`,
		},
	}
}

// LLVMSuite returns analogues of the LLVM vectorizer test-suite kernels the
// paper uses for Figure 2 — small single-loop programs that exercise the
// baseline cost model, ordered roughly by complexity so the Figure's
// "performance gap increases with more complicated tests" trend is visible.
func LLVMSuite() []Benchmark {
	return []Benchmark{
		{Name: "suite01_copy", Source: `
int a[1024];
int b[1024];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[i];
    }
}
`},
		{Name: "suite02_add_const", Source: `
int a[1024];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        a[i] = a[i] + 7;
    }
}
`},
		{Name: "suite03_scale_float", Source: `
float a[1024];
float b[1024];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[i] * 3.5;
    }
}
`},
		{Name: "suite04_sum_int", Source: `
int v[1024];
int kernel() {
    int s = 0;
    for (int i = 0; i < 1024; i++) {
        s += v[i];
    }
    return s;
}
`},
		{Name: "suite05_char_copy", Source: `
char a[4096];
char b[4096];
void kernel() {
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i];
    }
}
`},
		{Name: "suite06_widen", Source: `
short s[2048];
int d[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        d[i] = (int) s[i];
    }
}
`},
		{Name: "suite07_axpy", Source: `
float x[2048];
float y[2048];
void kernel(float a) {
    for (int i = 0; i < 2048; i++) {
        y[i] = a * x[i] + y[i];
    }
}
`},
		{Name: "suite08_dot_float", Source: `
float x[1024];
float y[1024];
float kernel() {
    float s = 0;
    for (int i = 0; i < 1024; i++) {
        s += x[i] * y[i];
    }
    return s;
}
`},
		{Name: "suite09_select", Source: `
int a[2048];
int b[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        b[i] = a[i] > 0 ? a[i] : -a[i];
    }
}
`},
		{Name: "suite10_stride2", Source: `
int a[1024];
int b[2048];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[2 * i];
    }
}
`},
		{Name: "suite11_reverse", Source: `
float a[2048];
float b[2048];
void kernel() {
    for (int i = 2047; i >= 0; i--) {
        a[i] = b[2047 - i];
    }
}
`},
		{Name: "suite12_guarded", Source: `
int a[2048];
int t[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        if (t[i] != 0) {
            a[i] = a[i] * 2;
        }
    }
}
`},
		{Name: "suite13_unroll_pair", Source: `
int dst[2048];
short srca[2048];
void kernel() {
    for (int i = 0; i < 2047; i += 2) {
        dst[i] = (int) srca[i];
        dst[i + 1] = (int) srca[i + 1];
    }
}
`},
		{Name: "suite14_three_streams", Source: `
double a[2048];
double b[2048];
double c[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        c[i] = a[i] * b[i] + a[i] / 2.0 + b[i];
    }
}
`},
		{Name: "suite15_stencil", Source: `
float h[2050];
float o[2050];
void kernel() {
    for (int i = 1; i < 2049; i++) {
        o[i] = h[i - 1] + 2.0 * h[i] + h[i + 1];
    }
}
`},
		{Name: "suite16_mixed_reduce", Source: `
short q[4096];
int kernel() {
    int acc = 0;
    for (int i = 0; i < 4096; i++) {
        acc += (int) q[i] * 3;
    }
    return acc;
}
`},
		{Name: "suite17_complex_mult", Source: `
float re[2048];
float im[2048];
float outr[1024];
float outi[1024];
void kernel() {
    for (int i = 0; i < 1023; i++) {
        outr[i] = re[2 * i + 1] * im[2 * i + 1] - re[2 * i] * im[2 * i];
        outi[i] = re[2 * i] * im[2 * i + 1] + re[2 * i + 1] * im[2 * i];
    }
}
`},
	}
}
