package dataset

// MiBench returns six whole-program workloads in the style of the MiBench
// embedded suite (Figure 9): telecom/security/office-flavoured programs
// where loops are a minor portion of the code, expressed through a large
// ScalarWorkFactor. Some loops are barely vectorizable at all (recurrences,
// gathers) — the paper notes adpcm/dijkstra-class programs could not be
// vectorized, so end-to-end gains are small (~1.1x).
func MiBench() []Benchmark {
	return []Benchmark{
		{Name: "crc32", ScalarWorkFactor: 4.0, Source: `
int crctab[256];
int msg[4096];
int kernel() {
    int crc = -1;
    for (int i = 0; i < 4096; i++) {
        crc ^= crctab[msg[i] & 255];
    }
    return crc;
}
`},
		{Name: "stringsearch", ScalarWorkFactor: 3.0, Source: `
char text[8192];
char pat = 101;
int hits[8192];
void kernel() {
    for (int i = 0; i < 8192; i++) {
        if (text[i] == pat) {
            hits[i] = 1;
        } else {
            hits[i] = 0;
        }
    }
}
`},
		{Name: "susan_corners", ScalarWorkFactor: 2.5, Source: `
int bright[128][128];
int resp[128][128];
int thr = 20;
void kernel() {
    for (int i = 0; i < 128; i++) {
        for (int j = 1; j < 127; j++) {
            int d = bright[i][j + 1] - bright[i][j - 1];
            resp[i][j] = d > thr ? d : 0;
        }
    }
}
`},
		{Name: "adpcm_decode", ScalarWorkFactor: 5.0, Source: `
int deltas[4096];
int pcm[4097];
void kernel() {
    for (int i = 0; i < 4096; i++) {
        pcm[i + 1] = pcm[i] + deltas[i];
    }
}
`},
		{Name: "fft_twiddle", ScalarWorkFactor: 3.5, Source: `
float rex[2048];
float imx[2048];
float wr[2048];
float wi[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        float tr = rex[i] * wr[i] - imx[i] * wi[i];
        float ti = rex[i] * wi[i] + imx[i] * wr[i];
        rex[i] = tr;
        imx[i] = ti;
    }
}
`},
		{Name: "sha_mix", ScalarWorkFactor: 4.5, Source: `
int wbuf[4096];
void kernel() {
    for (int i = 16; i < 4096; i++) {
        int v = wbuf[i - 3] ^ wbuf[i - 8] ^ wbuf[i - 14] ^ wbuf[i - 16];
        wbuf[i] = (v << 1) | (v >> 31);
    }
}
`},
	}
}
