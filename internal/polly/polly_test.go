package polly

import (
	"testing"

	"neurovec/internal/costmodel"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/machine"
	"neurovec/internal/sim"
)

func irFor(t *testing.T, src string) *ir.Program {
	t.Helper()
	return lower.MustProgram(lang.MustParse(src))
}

const gemmSrc = `
float A[512][512];
float B[512][512];
float C[512][512];
void gemm(float alpha) {
    for (int i = 0; i < 512; i++) {
        for (int j = 0; j < 512; j++) {
            float sum = 0;
            for (int k = 0; k < 512; k++) {
                sum += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
`

func TestTilingAppliesToGemm(t *testing.T) {
	p := irFor(t, gemmSrc)
	res := Optimize(p, DefaultOptions(machine.IntelAVX2()))
	if len(res.Tiled) != 1 {
		t.Fatalf("tiled = %v, want the gemm nest", res.Tiled)
	}
	root := res.Program.Funcs[0].Loops[0]
	chain := nestChain(root)
	if len(chain) != 6 {
		t.Fatalf("tiled nest depth = %d, want 6 (3 block + 3 point)", len(chain))
	}
	// Point innermost keeps the original label so vectorization plans from
	// other agents still key correctly.
	inner := chain[len(chain)-1]
	if inner.Label != "L2" {
		t.Errorf("innermost label = %s, want L2", inner.Label)
	}
	if len(inner.Reductions) != 1 {
		t.Errorf("reduction lost in tiling")
	}
	// Block strides present on the B access.
	var bAcc *ir.Access
	for _, a := range inner.Accesses {
		if a.Array == "B" {
			bAcc = a
		}
	}
	if bAcc == nil {
		t.Fatal("B access missing after tiling")
	}
	if bAcc.StrideFor("L2b") == 0 || bAcc.StrideFor("L1b") == 0 {
		t.Errorf("B lacks block strides: %v", bAcc.Strides)
	}
}

func TestTilingImprovesLargeGemm(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := irFor(t, gemmSrc)
	plans := costmodel.Plans(p, cfg.Arch)

	before := sim.Program(p, plans, cfg)
	res := Optimize(p, DefaultOptions(cfg.Arch))
	after := sim.Program(res.Program, costmodel.Plans(res.Program, cfg.Arch), cfg)

	if after.Cycles >= before.Cycles {
		t.Fatalf("tiled gemm (%.3g) not faster than untiled (%.3g)", after.Cycles, before.Cycles)
	}
	speedup := before.Cycles / after.Cycles
	if speedup < 1.1 || speedup > 20 {
		t.Errorf("tiling speedup = %.2fx, want a plausible locality win in [1.1, 20]", speedup)
	}
	t.Logf("gemm 512: untiled=%.3g tiled=%.3g speedup=%.2fx", before.Cycles, after.Cycles, speedup)
}

func TestTilingSkipsSmallNests(t *testing.T) {
	p := irFor(t, `
float G[32][32];
void f(float x) {
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) {
            G[i][j] = x;
        }
    }
}
`)
	res := Optimize(p, DefaultOptions(machine.IntelAVX2()))
	if len(res.Tiled) != 0 {
		t.Errorf("tiny nest tiled: %v", res.Tiled)
	}
}

func TestTilingSkipsNonAffine(t *testing.T) {
	p := irFor(t, `
int idx[512];
int M[512][512];
void f() {
    for (int i = 0; i < 512; i++) {
        for (int j = 0; j < 512; j++) {
            M[i][idx[j]] = 0;
        }
    }
}
`)
	res := Optimize(p, DefaultOptions(machine.IntelAVX2()))
	if len(res.Tiled) != 0 {
		t.Errorf("non-affine nest tiled: %v", res.Tiled)
	}
}

func TestFusionMergesCompatibleLoops(t *testing.T) {
	p := irFor(t, `
int a[1024];
int b[1024];
int c[1024];
void f() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[i] + 1;
    }
    for (int i = 0; i < 1024; i++) {
        c[i] = b[i] * 2;
    }
}
`)
	res := Optimize(p, DefaultOptions(machine.IntelAVX2()))
	if len(res.Fused) != 1 {
		t.Fatalf("fused = %v, want one pair", res.Fused)
	}
	if got := len(res.Program.Funcs[0].Loops); got != 1 {
		t.Fatalf("loops after fusion = %d, want 1", got)
	}
	merged := res.Program.Funcs[0].Loops[0]
	if merged.LoadCount() != 2 || merged.StoreCount() != 2 {
		t.Errorf("merged loads/stores = %d/%d, want 2/2", merged.LoadCount(), merged.StoreCount())
	}
}

func TestFusionImprovesPerformance(t *testing.T) {
	cfg := sim.DefaultConfig()
	src := `
double a[8192];
double b[8192];
double c[8192];
void f() {
    for (int i = 0; i < 8192; i++) {
        a[i] = b[i] + 1.0;
    }
    for (int i = 0; i < 8192; i++) {
        c[i] = b[i] * 2.0;
    }
}
`
	p := irFor(t, src)
	before := sim.Program(p, costmodel.Plans(p, cfg.Arch), cfg)
	res := Optimize(p, DefaultOptions(cfg.Arch))
	after := sim.Program(res.Program, costmodel.Plans(res.Program, cfg.Arch), cfg)
	if after.Cycles >= before.Cycles {
		t.Errorf("fusion did not help: %.3g -> %.3g", before.Cycles, after.Cycles)
	}
}

func TestFusionRejectsConflictingAccesses(t *testing.T) {
	// Second loop reads a shifted (so iteration k of the fused loop would
	// read an element the first loop has not written yet).
	p := irFor(t, `
int a[1024];
int b[1024];
void f() {
    for (int i = 0; i < 1000; i++) {
        a[i] = b[i];
    }
    for (int i = 0; i < 1000; i++) {
        b[i] = a[i + 8];
    }
}
`)
	res := Optimize(p, DefaultOptions(machine.IntelAVX2()))
	if len(res.Fused) != 0 {
		t.Errorf("illegal fusion performed: %v", res.Fused)
	}
}

func TestFusionRejectsDifferentTripCounts(t *testing.T) {
	p := irFor(t, `
int a[1024];
int b[1024];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = i;
    }
    for (int i = 0; i < 1024; i++) {
        b[i] = i;
    }
}
`)
	res := Optimize(p, DefaultOptions(machine.IntelAVX2()))
	if len(res.Fused) != 0 {
		t.Errorf("fused loops with different trips: %v", res.Fused)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	p := irFor(t, gemmSrc)
	depthBefore := len(nestChain(p.Funcs[0].Loops[0]))
	bStrides := len(p.InnermostLoops()[0].Accesses)
	_ = Optimize(p, DefaultOptions(machine.IntelAVX2()))
	if got := len(nestChain(p.Funcs[0].Loops[0])); got != depthBefore {
		t.Errorf("input nest depth changed: %d -> %d", depthBefore, got)
	}
	if got := len(p.InnermostLoops()[0].Accesses); got != bStrides {
		t.Errorf("input accesses changed")
	}
}

func TestTransformsCanBeDisabled(t *testing.T) {
	p := irFor(t, gemmSrc)
	opts := DefaultOptions(machine.IntelAVX2())
	opts.EnableTiling = false
	opts.EnableFusion = false
	res := Optimize(p, opts)
	if len(res.Tiled)+len(res.Fused) != 0 {
		t.Errorf("disabled transforms ran: %v %v", res.Tiled, res.Fused)
	}
}
