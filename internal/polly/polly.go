// Package polly is the stand-in for Polly, the LLVM polyhedral optimizer the
// paper compares against. Like the original ("to date the main optimizations
// in Polly are tiling and loop fusion to improve data locality"), it detects
// affine loop nests and applies two classical transformations on the IR:
//
//   - loop tiling: an affine nest of depth >= 2 is strip-mined into block
//     loops and point loops so that one block's working set fits in a small
//     cache level. In the simulator's reuse/footprint model this directly
//     shrinks the one-iteration footprint at the reuse level, which is the
//     mechanism by which tiling pays off on large-trip-count kernels
//     (PolyBench) and not on small ones — the behaviour Figure 8 reports;
//   - loop fusion: adjacent compatible loops merge, deduplicating shared
//     load streams and amortising loop overhead. Fusion optimizes beyond
//     pure vectorization, which is how Polly can beat even the brute-force
//     VF/IF search on one benchmark (Figure 7, benchmark #10).
//
// The transforms operate on a deep copy; the input program is never
// modified. Vectorization plans remain applicable afterwards because
// innermost point loops keep their original labels.
package polly

import (
	"neurovec/internal/ir"
	"neurovec/internal/machine"
)

// Result is the outcome of running the optimizer over a program.
type Result struct {
	Program *ir.Program
	// Tiled lists the labels of nest roots that were tiled.
	Tiled []string
	// Fused lists pairs of loop labels that were merged (second into first).
	Fused [][2]string
}

// Options controls the optimizer.
type Options struct {
	Arch *machine.Arch
	// MinTileTrip is the smallest trip count worth tiling over.
	MinTileTrip int64
	// EnableTiling and EnableFusion select the transforms (both on by
	// default via DefaultOptions); the ablation benchmarks toggle them.
	EnableTiling bool
	EnableFusion bool
}

// DefaultOptions enables both transforms on the default machine model.
func DefaultOptions(arch *machine.Arch) Options {
	return Options{Arch: arch, MinTileTrip: 64, EnableTiling: true, EnableFusion: true}
}

// Optimize runs fusion then tiling over a deep copy of the program.
func Optimize(p *ir.Program, opts Options) *Result {
	if opts.Arch == nil {
		opts.Arch = machine.IntelAVX2()
	}
	if opts.MinTileTrip <= 0 {
		opts.MinTileTrip = 64
	}
	out := &Result{Program: cloneProgram(p)}
	for _, f := range out.Program.Funcs {
		if opts.EnableFusion {
			fuseAdjacent(f, out)
		}
		if opts.EnableTiling {
			for i, root := range f.Loops {
				if tiled, ok := tileNest(root, opts); ok {
					f.Loops[i] = tiled
					out.Tiled = append(out.Tiled, root.Label)
				}
			}
		}
	}
	return out
}

// ---- Fusion ----

// fuseAdjacent merges consecutive sibling loops with identical iteration
// spaces when legal, at the function's top level.
func fuseAdjacent(f *ir.Func, res *Result) {
	for i := 0; i+1 < len(f.Loops); {
		a, b := f.Loops[i], f.Loops[i+1]
		if canFuse(a, b) {
			fuse(a, b)
			res.Fused = append(res.Fused, [2]string{a.Label, b.Label})
			f.Loops = append(f.Loops[:i+1], f.Loops[i+2:]...)
			continue // try to fuse the next one into the same loop
		}
		i++
	}
}

// canFuse checks iteration-space equality and a conservative dependence
// condition: every array the pair shares must either be read-only in both
// loops or accessed through identical affine functions (so iteration k of
// the fused loop touches exactly what iteration k of each original did).
func canFuse(a, b *ir.Loop) bool {
	if !a.Innermost() || !b.Innermost() {
		return false
	}
	if !a.TripKnown || !b.TripKnown || a.Trip != b.Trip || a.Step != b.Step {
		return false
	}
	if a.HasCall || b.HasCall {
		return false
	}
	for _, aa := range a.Accesses {
		for _, ba := range b.Accesses {
			if aa.Array != ba.Array {
				continue
			}
			if aa.Kind == ir.Load && ba.Kind == ir.Load {
				continue
			}
			if !aa.Affine || !ba.Affine {
				return false
			}
			if aa.StrideFor(a.Label) != ba.StrideFor(b.Label) || aa.Offset != ba.Offset {
				return false
			}
		}
	}
	return true
}

// fuse merges b's body into a, rewriting b's stride keys to a's label.
func fuse(a, b *ir.Loop) {
	a.Body = append(a.Body, b.Body...)
	for _, acc := range b.Accesses {
		if s, ok := acc.Strides[b.Label]; ok {
			delete(acc.Strides, b.Label)
			acc.Strides[a.Label] += s
		}
		a.Accesses = append(a.Accesses, acc)
	}
	a.Reductions = append(a.Reductions, b.Reductions...)
	a.HasIf = a.HasIf || b.HasIf
	if a.Pragma == nil {
		a.Pragma = b.Pragma
	}
}

// ---- Tiling ----

// tileNest strip-mines every loop of an affine nest into a (block, point)
// pair, producing the loop order [blocks..., points...]. Returns the new
// root and whether tiling was applied.
func tileNest(root *ir.Loop, opts Options) (*ir.Loop, bool) {
	chain := nestChain(root)
	if len(chain) < 2 {
		return root, false
	}
	for _, l := range chain {
		if !l.TripKnown || l.Step != 1 || l.HasCall {
			return root, false
		}
		if l.Trip < opts.MinTileTrip {
			return root, false
		}
		for _, a := range l.Accesses {
			if !a.Affine {
				return root, false
			}
		}
	}
	if !storesAreTileable(chain) {
		return root, false
	}
	// Profitability gate: tiling pays when (a) the data one outer-loop
	// iteration touches overflows L1 — otherwise reuse is already captured —
	// and (b) some innermost access strides across rows (poor spatial
	// locality that blocking fixes). Unit-stride kernels such as matrix-
	// vector products stream well untiled, and blocking them only adds loop
	// overhead; real Polly's profitability heuristics are similarly
	// locality-driven.
	if innerFootprint(chain) <= opts.Arch.L1Bytes {
		return root, false
	}
	inner := chain[len(chain)-1]
	strided := false
	for _, a := range inner.Accesses {
		s := a.StrideFor(inner.Label)
		if s > 1 || s < -1 {
			strided = true
		}
	}
	if !strided {
		return root, false
	}

	tile := tileSize(chain, opts.Arch)
	if tile <= 1 {
		return root, false
	}
	for _, l := range chain {
		if l.Trip < 2*tile {
			return root, false // not enough iterations to amortise blocking
		}
	}

	// Build block loops outermost-first, then point loops carrying the
	// original labels, bodies and accesses.
	var top, cur *ir.Loop
	depth := 0
	attach := func(l *ir.Loop) {
		if cur == nil {
			top = l
		} else {
			cur.Children = []*ir.Loop{l}
		}
		l.Depth = depth
		depth++
		cur = l
	}
	for _, l := range chain {
		block := &ir.Loop{
			Label:     l.Label + "b",
			IndexVar:  l.IndexVar + l.IndexVar, // ii, jj, ...
			Trip:      (l.Trip + tile - 1) / tile,
			TripKnown: true,
			Step:      1,
		}
		attach(block)
	}
	for _, l := range chain {
		point := &ir.Loop{
			Label:      l.Label,
			IndexVar:   l.IndexVar,
			Trip:       tile,
			TripKnown:  true,
			Step:       1,
			Body:       l.Body,
			Accesses:   l.Accesses,
			Reductions: l.Reductions,
			Pragma:     l.Pragma,
			HasIf:      l.HasIf,
		}
		// Accesses gain a block-level stride: iterating the block loop
		// advances the index by tile iterations of the original loop.
		for _, a := range point.Accesses {
			for _, m := range chain {
				if s, ok := a.Strides[m.Label]; ok && s != 0 {
					a.Strides[m.Label+"b"] = s * tile
				}
			}
		}
		attach(point)
	}
	return top, true
}

// nestChain returns the straight-line chain of singly-nested loops from
// root to the innermost, or nil if the nest branches.
func nestChain(root *ir.Loop) []*ir.Loop {
	var chain []*ir.Loop
	for l := root; ; {
		chain = append(chain, l)
		if len(l.Children) == 0 {
			return chain
		}
		if len(l.Children) != 1 {
			return nil
		}
		l = l.Children[0]
	}
}

// storesAreTileable requires every stored array in the nest to be accessed
// through a single affine function, the conservative condition under which
// the loop band is fully permutable and blocking is legal.
func storesAreTileable(chain []*ir.Loop) bool {
	type sig struct {
		off int64
		key string
	}
	funcs := map[string]sig{}
	stored := map[string]bool{}
	for _, l := range chain {
		for _, a := range l.Accesses {
			key := sig{a.Offset, strideSig(a)}
			if prev, ok := funcs[a.Array]; ok {
				if prev != key {
					if stored[a.Array] || a.Kind == ir.Store {
						return false
					}
				}
			} else {
				funcs[a.Array] = key
			}
			if a.Kind == ir.Store {
				stored[a.Array] = true
			}
		}
	}
	return true
}

func strideSig(a *ir.Access) string {
	keys := make([]string, 0, len(a.Strides))
	for k, v := range a.Strides {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	// Insertion sort; maps here have at most a handful of keys.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		out += k + ":" + itoa(a.Strides[k]) + ";"
	}
	return out
}

func itoa(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [21]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// innerFootprint approximates the bytes the innermost loop's streams touch
// during one iteration of the outermost loop of the band.
func innerFootprint(chain []*ir.Loop) int64 {
	inner := chain[len(chain)-1]
	var total int64
	for _, a := range inner.Accesses {
		span := int64(1)
		for _, lp := range chain[1:] {
			s := a.StrideFor(lp.Label)
			if s < 0 {
				s = -s
			}
			if s == 0 {
				continue
			}
			span += s * (lp.Trip - 1)
		}
		var elems int64 = 1
		for _, d := range a.Dims {
			elems *= d
		}
		if elems > 0 && span > elems {
			span = elems
		}
		total += span * int64(a.Elem.Size())
	}
	return total
}

// tileSize picks a power-of-two tile so one tile's working set sits well
// inside L1: streams * tile * elemSize <= L1/4 per dimension pair.
func tileSize(chain []*ir.Loop, arch *machine.Arch) int64 {
	inner := chain[len(chain)-1]
	streams := len(inner.Accesses)
	if streams == 0 {
		streams = 1
	}
	elem := 4
	for _, a := range inner.Accesses {
		if s := a.Elem.Size(); s > elem {
			elem = s
		}
	}
	budget := arch.L1Bytes / 4
	t := int64(8)
	for t*2*int64(streams)*int64(elem)*t*2 <= budget {
		t *= 2
	}
	if t > 64 {
		t = 64
	}
	return t
}

// ---- Deep copy ----

func cloneProgram(p *ir.Program) *ir.Program {
	out := &ir.Program{Source: p.Source}
	for _, f := range p.Funcs {
		nf := &ir.Func{Name: f.Name, ScalarOps: f.ScalarOps}
		for _, l := range f.Loops {
			nf.Loops = append(nf.Loops, cloneLoop(l))
		}
		out.Funcs = append(out.Funcs, nf)
	}
	return out
}

func cloneLoop(l *ir.Loop) *ir.Loop {
	n := &ir.Loop{
		Label:     l.Label,
		IndexVar:  l.IndexVar,
		Depth:     l.Depth,
		Trip:      l.Trip,
		TripKnown: l.TripKnown,
		Step:      l.Step,
		Pragma:    l.Pragma,
		HasIf:     l.HasIf,
		HasCall:   l.HasCall,
	}
	n.Body = append([]ir.Instr(nil), l.Body...)
	for _, a := range l.Accesses {
		n.Accesses = append(n.Accesses, cloneAccess(a))
	}
	n.Reductions = append([]ir.Reduction(nil), l.Reductions...)
	for _, c := range l.Children {
		n.Children = append(n.Children, cloneLoop(c))
	}
	return n
}

func cloneAccess(a *ir.Access) *ir.Access {
	n := *a
	n.Strides = make(map[string]int64, len(a.Strides))
	for k, v := range a.Strides {
		n.Strides[k] = v
	}
	n.Dims = append([]int64(nil), a.Dims...)
	return &n
}
