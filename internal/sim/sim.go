// Package sim is the cycle-level loop execution simulator that stands in for
// the paper's physical testbed (a 2.7 GHz AVX Intel i7-8559U).
//
// The simulator is analytic rather than trace-driven: for each innermost
// loop and vectorization plan it computes a cycle count from four coupled
// bounds —
//
//   - issue throughput: uop counts per vector group against issue width and
//     load/store ports, including widening (a VF wider than the machine
//     splits into several physical ops), gather/scatter lane costs for
//     strided and non-affine accesses, masking overheads for predicated
//     bodies, and spill traffic when VF*IF exceeds the register file;
//   - dependence latency: recognised reductions carry a serial chain whose
//     latency only interleaving (IF) and register-splitting can hide;
//   - memory hierarchy: an analytic reuse/footprint cache model assigns each
//     access stream a service level (L1/L2/L3/DRAM) and charges per-line
//     latency plus a streaming-bandwidth bound;
//   - loop overhead: per-group induction/branch cost, startup cost, the
//     scalar remainder loop, and the horizontal reduction tail.
//
// These are exactly the effects LLVM's linear per-opcode cost model cannot
// see, which is the structural reason a learned policy finds better factors
// (the paper's Figures 1, 2 and 7). The model is deterministic, so rewards
// are noise-free and experiments reproduce bit for bit.
package sim

import (
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/machine"
	"neurovec/internal/vectorizer"
)

// Config controls simulation.
type Config struct {
	Arch *machine.Arch
	// WarmCaches models the paper's measurement harness, which runs each
	// kernel ~one million times and averages: data resident from previous
	// runs stays cached if it fits. When false every access stream is cold.
	WarmCaches bool
}

// DefaultConfig returns the configuration used across the evaluation.
func DefaultConfig() Config {
	return Config{Arch: machine.IntelAVX2(), WarmCaches: true}
}

// Result is a simulated execution measurement.
type Result struct {
	Cycles  float64
	Seconds float64
}

// Program simulates a whole translation unit: straight-line code plus every
// loop nest, with the given per-loop vectorization plans (keyed by loop
// label; loops without a plan run scalar).
func Program(p *ir.Program, plans map[string]*vectorizer.Plan, cfg Config) Result {
	cycles := 0.0
	for _, f := range p.Funcs {
		cycles += Function(f, plans, cfg)
	}
	return Result{Cycles: cycles, Seconds: cycles / (cfg.Arch.FreqGHz * 1e9)}
}

// Function simulates one function invocation.
func Function(f *ir.Func, plans map[string]*vectorizer.Plan, cfg Config) float64 {
	const scalarOpCycles = 0.45 // straight-line IPC ~2.2 on a 4-wide core
	cycles := 20 + float64(f.ScalarOps)*scalarOpCycles
	for _, l := range f.Loops {
		cycles += Nest(l, plans, cfg)
	}
	return cycles
}

// Nest simulates one complete execution of a loop nest.
func Nest(root *ir.Loop, plans map[string]*vectorizer.Plan, cfg Config) float64 {
	return nestCycles(root, nil, plans, cfg)
}

// Loop simulates a single innermost loop under a plan, with no enclosing
// ancestors. Convenience for tests and microbenchmarks.
func Loop(l *ir.Loop, plan *vectorizer.Plan, cfg Config) float64 {
	return innermostCycles(l, nil, plan, cfg)
}

func nestCycles(l *ir.Loop, ancestors []*ir.Loop, plans map[string]*vectorizer.Plan, cfg Config) float64 {
	if l.Innermost() {
		plan := plans[l.Label]
		if plan == nil {
			plan = vectorizer.ScalarPlan(l)
		}
		return innermostCycles(l, ancestors, plan, cfg)
	}
	// Non-innermost loops execute scalar: their own body work per iteration
	// plus one full execution of each child nest per iteration.
	chain := append(append([]*ir.Loop(nil), ancestors...), l)
	perIter := scalarIterCycles(l, ancestors, cfg) + 1.5 // outer-loop control overhead
	inner := 0.0
	for _, c := range l.Children {
		inner += nestCycles(c, chain, plans, cfg)
	}
	trip := float64(max64(l.Trip, 0))
	return trip*(perIter+inner) + 4 // nest setup
}

// innermostCycles is the core model. It delegates to the breakdown analysis
// in explain.go so the Explain diagnostic and the charged cycles can never
// disagree. The model combines four per-group bounds:
//
//   - throughput: legalized uop counts against issue width and load/store
//     ports, with masking overheads for predicated bodies and gather lane
//     costs for strided/non-affine accesses;
//   - latency: the reduction dependence chain (one serial update per group
//     per accumulator; IF and register splitting multiply the accumulators);
//   - memory: the reuse/footprint cache model plus a DRAM bandwidth bound;
//   - spills: register overcommit serialises additional store/reload pairs;
//
// plus fixed startup, horizontal reduction tail, the scalar remainder loop,
// and a runtime-trip-count guard cost.
func innermostCycles(l *ir.Loop, ancestors []*ir.Loop, plan *vectorizer.Plan, cfg Config) float64 {
	return explain(l, ancestors, plan, cfg).Total
}

// scalarIterCycles models one scalar iteration of the loop body.
func scalarIterCycles(l *ir.Loop, ancestors []*ir.Loop, cfg Config) float64 {
	arch := cfg.Arch
	uops := 1.0 // induction/compare/branch macro-fused
	lat := 0.0
	for _, in := range l.Body {
		if in.Op == ir.OpCopy {
			continue
		}
		uops += machine.OpThroughput(in.Op, in.Type)
	}
	accesses := dedupAccesses(l.Accesses)
	var loads, stores float64
	for _, a := range accesses {
		if a.InvariantIn(l.Label) {
			continue
		}
		if a.Kind == ir.Load {
			loads++
		} else {
			stores++
		}
	}
	uops += loads + stores
	for _, r := range l.Reductions {
		lat = maxf(lat, machine.OpLatency(r.Op, r.Type))
	}
	cyc := maxf(uops/float64(arch.IssueWidth), maxf(loads/float64(arch.LoadPorts), stores/float64(arch.StorePorts)))
	cyc = maxf(cyc, lat)
	// Data-dependent branches in the body mispredict some of the time; the
	// vectorized (if-converted) form does not pay this.
	if l.HasIf {
		cyc += 0.25 * arch.BranchMissCycles * 0.5
	}
	cyc = maxf(cyc, memoryCycles(l, ancestors, accesses, 1, 1, cfg))
	return cyc + 0.4 // average front-end bubble
}

// accessUops models the issue cost of one access stream per vector group.
func accessUops(a *ir.Access, label string, vf, ifc int, arch *machine.Arch) float64 {
	var u float64
	stride := a.StrideFor(label)
	switch {
	case !a.Affine:
		u = float64(vf*ifc) * arch.GatherLaneCost * 1.2
	case stride == 1 || stride == -1:
		u = float64(arch.RegsPerVector(vf, a.Elem) * ifc)
		if !a.Aligned {
			u *= 1.25 // cache-line split probability on unaligned vectors
		}
	default:
		// Strided access: gather/scatter or scalarized insertion.
		u = float64(vf*ifc) * arch.GatherLaneCost
	}
	if a.Predicated {
		u *= 1.15
	}
	return u
}

// memoryCycles charges per-group cache-hierarchy latency and a DRAM
// bandwidth bound for the loop's access streams.
func memoryCycles(l *ir.Loop, ancestors []*ir.Loop, accesses []*ir.Access, vf, ifc int, cfg Config) float64 {
	arch := cfg.Arch
	groupElems := float64(vf * ifc)
	var cycles, dramBytes float64
	for _, a := range accesses {
		if a.InvariantIn(l.Label) {
			continue
		}
		level := serviceLevel(a, l, ancestors, cfg)
		stride := abs64(a.StrideFor(l.Label))
		elem := float64(a.Elem.Size())
		var lines float64
		switch {
		case !a.Affine:
			lines = groupElems // each lane potentially its own line
		case stride == 0:
			lines = 1
		case stride*int64(a.Elem.Size()) >= arch.LineBytes:
			lines = groupElems
		default:
			// Fractional lines per group represent line traffic amortised
			// over consecutive groups (a new line every few iterations).
			lines = groupElems * float64(stride) * elem / float64(arch.LineBytes)
		}
		lat := levelLatency(level, arch)
		hide := 1.0
		if a.Affine && stride == 1 {
			// Hardware prefetchers hide most latency on unit-stride streams.
			hide = 0.25
		}
		cycles += lines * (lat - arch.L1Lat) * hide
		if level == levelDRAM {
			dramBytes += lines * float64(arch.LineBytes)
		}
	}
	bw := dramBytes / arch.StreamBytesPerCycle
	return maxf(cycles, bw)
}

type cacheLevel int

const (
	levelL1 cacheLevel = iota
	levelL2
	levelL3
	levelDRAM
)

func levelLatency(lv cacheLevel, arch *machine.Arch) float64 {
	switch lv {
	case levelL1:
		return arch.L1Lat
	case levelL2:
		return arch.L2Lat
	case levelL3:
		return arch.L3Lat
	}
	return arch.MemLat
}

// serviceLevel decides which memory level services an access stream, using
// an analytic reuse/footprint model:
//
//  1. If the whole nest's data fits a level and caches are warm (the
//     harness re-runs kernels), the stream hits that level.
//  2. Otherwise, if the access is invariant in some enclosing loop, the
//     data touched during one iteration of that loop must fit for the reuse
//     to be captured; the smallest level that holds it services the stream.
//  3. Otherwise the stream is cold: DRAM.
//
// Loop tiling (package polly) shrinks the one-iteration footprint in rule 2
// — that is precisely how tiling shows up as a win in this model.
func serviceLevel(a *ir.Access, l *ir.Loop, ancestors []*ir.Loop, cfg Config) cacheLevel {
	arch := cfg.Arch
	chain := append(append([]*ir.Loop(nil), ancestors...), l)

	best := levelDRAM
	if cfg.WarmCaches {
		if lv, ok := fitLevel(nestFootprint(l, chain), arch); ok {
			best = lv
		}
	}
	// Reuse rule: innermost enclosing loop in which the stream is invariant.
	for i := len(chain) - 1; i >= 0; i-- {
		if a.StrideFor(chain[i].Label) != 0 {
			continue
		}
		// Working set during one iteration of chain[i]: everything the
		// inner loops touch.
		ws := footprintBelow(l, chain, i+1)
		if lv, ok := fitLevel(ws, arch); ok && lv < best {
			best = lv
		}
		break
	}
	return best
}

// fitLevel returns the smallest cache level holding ws bytes.
func fitLevel(ws int64, arch *machine.Arch) (cacheLevel, bool) {
	switch {
	case ws <= arch.L1Bytes:
		return levelL1, true
	case ws <= arch.L2Bytes:
		return levelL2, true
	case ws <= arch.L3Bytes:
		return levelL3, true
	}
	return levelDRAM, false
}

// nestFootprint is the total bytes the innermost loop's streams touch over
// the whole chain (the resident set if the kernel re-runs).
func nestFootprint(l *ir.Loop, chain []*ir.Loop) int64 {
	return footprintBelow(l, chain, 0)
}

// footprintBelow sums the region each access stream spans while the loops
// chain[from:] execute once.
func footprintBelow(l *ir.Loop, chain []*ir.Loop, from int) int64 {
	var total int64
	for _, a := range dedupAccesses(l.Accesses) {
		total += regionBytes(a, chain[from:])
	}
	return total
}

// regionBytes approximates the distinct bytes an affine stream touches while
// the given loops each run their full trip count.
func regionBytes(a *ir.Access, loops []*ir.Loop) int64 {
	elem := int64(a.Elem.Size())
	if !a.Affine {
		// Unknown pattern: assume it ranges over the whole array.
		n := arrayElems(a)
		return n * elem
	}
	span := int64(1)
	for _, lp := range loops {
		s := abs64(a.StrideFor(lp.Label))
		if s == 0 {
			continue
		}
		span += s * max64(lp.Trip-1, 0)
	}
	if n := arrayElems(a); n > 0 && span > n {
		span = n
	}
	return span * elem
}

func arrayElems(a *ir.Access) int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	if len(a.Dims) == 0 {
		return 1 << 30 // unknown extent
	}
	return n
}

// dedupAccesses merges duplicate loads of the same address expression (the
// common v[i]*v[i] pattern), which a real compiler CSEs away.
func dedupAccesses(in []*ir.Access) []*ir.Access {
	var out []*ir.Access
	seen := map[string]bool{}
	for _, a := range in {
		if a.Kind == ir.Load && a.Affine {
			key := a.Array + "|" + strideKey(a)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		out = append(out, a)
	}
	return out
}

func strideKey(a *ir.Access) string {
	// Deterministic stringification of the affine function.
	buf := make([]byte, 0, 32)
	buf = appendInt(buf, a.Offset)
	// Map iteration order is random; build a sorted key cheaply for the
	// small maps involved.
	keys := make([]string, 0, len(a.Strides))
	for k := range a.Strides {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		buf = append(buf, '|')
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = appendInt(buf, a.Strides[k])
	}
	return string(buf)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func opType(in ir.Instr) lang.ScalarType {
	if in.Type == lang.TypeVoid {
		return lang.TypeInt
	}
	return in.Type
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
