package sim

import (
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/machine"
	"neurovec/internal/vectorizer"
)

// CompileTime models the compiler's own running time (in arbitrary cycle
// units; only ratios matter) for building the program under the given plans.
//
// Vectorizing at width VF legalizes each logical vector instruction into
// RegsPerVector physical ops, and interleaving clones the body IF times, so
// code size — and the time of instruction selection, scheduling and register
// allocation over it — grows with ops x RegsPerVector(VF) x IF, superlinearly
// once the body gets large (the quadratic-ish behaviour of real backends on
// huge blocks).
//
// The paper exploits the resulting dynamics: requests that blow up code size
// exceed the 10x-baseline compile-time budget, receive the −9 penalty
// reward, and teach the agent "not to over estimate the vectorization".
func CompileTime(p *ir.Program, plans map[string]*vectorizer.Plan, arch *machine.Arch) float64 {
	const (
		programBase = 25000.0 // front end, scalar passes
		perOp       = 40.0
		perUnit     = 25.0 // per legalized vector op in a loop body
	)
	t := programBase
	for _, f := range p.Funcs {
		t += float64(f.ScalarOps) * perOp
		for _, root := range f.Loops {
			root.Walk(func(l *ir.Loop) {
				body := float64(len(l.Body)+len(l.Accesses)) + 2
				t += body * perOp
				if !l.Innermost() {
					return
				}
				plan := plans[l.Label]
				if plan == nil || plan.Scalar() {
					return
				}
				widest := widestType(l)
				units := body * float64(arch.RegsPerVector(plan.VF, widest)*plan.IF)
				// Superlinear blow-up term for very large vector bodies.
				t += units * perUnit * (1 + units/500)
			})
		}
	}
	return t
}

func widestType(l *ir.Loop) lang.ScalarType {
	t := lang.TypeChar
	widest := 0
	for _, in := range l.Body {
		if b := in.Type.Size(); b > widest {
			widest = b
			t = in.Type
		}
	}
	for _, a := range l.Accesses {
		if b := a.Elem.Size(); b > widest {
			widest = b
			t = a.Elem
		}
	}
	if widest == 0 {
		return lang.TypeInt
	}
	return t
}
