package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/vectorizer"
)

func TestExplainMatchesLoopExactly(t *testing.T) {
	cfg := DefaultConfig()
	srcs := []string{
		dotSrc,
		`
double a[8192];
double b[8192];
void f() {
    for (int i = 0; i < 8192; i++) {
        a[i] = b[i] * 2.0;
    }
}
`,
		`
int a[100];
int b[100];
void f() {
    for (int i = 0; i < 100; i++) {
        a[i] = b[i] + 1;
    }
}
`,
	}
	for _, src := range srcs {
		l := lower.MustProgram(lang.MustParse(src)).InnermostLoops()[0]
		for _, vf := range cfg.Arch.VFs() {
			for _, ifc := range cfg.Arch.IFs() {
				plan := vectorizer.New(l, cfg.Arch, vf, ifc)
				want := Loop(l, plan, cfg)
				got := Explain(l, plan, cfg).Total
				if math.Abs(want-got) > 1e-9 {
					t.Fatalf("(%d,%d): Explain.Total=%v, Loop=%v", vf, ifc, got, want)
				}
			}
		}
	}
}

func TestExplainBoundNames(t *testing.T) {
	cfg := DefaultConfig()

	// Float reduction at IF=1 is latency bound.
	red := lower.MustProgram(lang.MustParse(`
float x[4096];
float f() {
    float s = 0;
    for (int i = 0; i < 4096; i++) {
        s += x[i];
    }
    return s;
}
`)).InnermostLoops()[0]
	b := Explain(red, vectorizer.New(red, cfg.Arch, 8, 1), cfg)
	if b.Bound != "latency" {
		t.Errorf("float reduction IF=1 bound = %s, want latency", b.Bound)
	}

	// DRAM-resident streaming copy is memory bound.
	big := lower.MustProgram(lang.MustParse(`
double a[4194304];
double b[4194304];
void f() {
    for (int i = 0; i < 4194304; i++) {
        a[i] = b[i];
    }
}
`)).InnermostLoops()[0]
	b = Explain(big, vectorizer.New(big, cfg.Arch, 8, 2), cfg)
	if b.Bound != "memory" {
		t.Errorf("32MB stream bound = %s, want memory", b.Bound)
	}

	// Scalar plan reports scalar.
	b = Explain(big, vectorizer.ScalarPlan(big), cfg)
	if b.Bound != "scalar" {
		t.Errorf("scalar plan bound = %s", b.Bound)
	}
}

func TestExplainString(t *testing.T) {
	cfg := DefaultConfig()
	l := lower.MustProgram(lang.MustParse(dotSrc)).InnermostLoops()[0]
	s := Explain(l, vectorizer.New(l, cfg.Arch, 16, 2), cfg).String()
	for _, want := range []string{"VF=16", "IF=2", "bound", "groups"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// Property: totals are always positive and finite across the whole factor
// grid for a variety of loops, and group components are non-negative.
func TestExplainSaneProperty(t *testing.T) {
	cfg := DefaultConfig()
	loops := []string{dotSrc, `
short s[2048];
int d[2048];
void f() {
    for (int i = 0; i < 2048; i++) {
        d[i] = (int) s[i] * 3;
    }
}
`, `
int a[512];
int b[1024];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[2 * i];
    }
}
`}
	parsed := make([]*ir.Loop, len(loops))
	for i, src := range loops {
		parsed[i] = lower.MustProgram(lang.MustParse(src)).InnermostLoops()[0]
	}
	f := func(which, vfSel, ifSel uint8) bool {
		l := parsed[int(which)%len(parsed)]
		vf := cfg.Arch.VFs()[int(vfSel)%7]
		ifc := cfg.Arch.IFs()[int(ifSel)%5]
		b := Explain(l, vectorizer.New(l, cfg.Arch, vf, ifc), cfg)
		if !(b.Total > 0) || math.IsInf(b.Total, 0) || math.IsNaN(b.Total) {
			return false
		}
		return b.IssueCycles >= 0 && b.PortCycles >= 0 && b.LatencyCycles >= 0 &&
			b.MemoryCycles >= 0 && b.SpillCycles >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
