package sim

import (
	"testing"

	"neurovec/internal/costmodel"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/vectorizer"
)

const dotSrc = `
int vec[512];
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`

func irFor(t *testing.T, src string) *ir.Program {
	t.Helper()
	return lower.MustProgram(lang.MustParse(src))
}

func loopCycles(t *testing.T, src string, vf, ifc int) float64 {
	t.Helper()
	cfg := DefaultConfig()
	p := irFor(t, src)
	l := p.InnermostLoops()[0]
	plan := vectorizer.New(l, cfg.Arch, vf, ifc)
	return Loop(l, plan, cfg)
}

// TestDotProductGridShape is the calibration test for the paper's Figure 1:
// on the dot-product kernel the baseline model picks (VF=4, IF=2); a
// majority of the 35 (VF, IF) points must beat the baseline's pick, and the
// best point must improve on it modestly (paper: up to ~20%); the baseline
// pick itself must beat scalar by a solid factor (paper: 2.6x).
func TestDotProductGridShape(t *testing.T) {
	cfg := DefaultConfig()
	p := irFor(t, dotSrc)
	l := p.InnermostLoops()[0]

	choice := costmodel.Choose(l, cfg.Arch)
	if choice.VF != 4 || choice.IF != 2 {
		t.Fatalf("baseline choice = (%d,%d), want (4,2) like LLVM on int dot product", choice.VF, choice.IF)
	}
	baseline := Loop(l, vectorizer.New(l, cfg.Arch, choice.VF, choice.IF), cfg)
	scalar := Loop(l, vectorizer.ScalarPlan(l), cfg)

	if ratio := scalar / baseline; ratio < 1.5 || ratio > 6 {
		t.Errorf("baseline speedup over scalar = %.2fx, want within [1.5, 6] (paper: 2.6x)", ratio)
	}

	better, total := 0, 0
	bestSpeed := 0.0
	bestVF, bestIF := 0, 0
	for _, vf := range cfg.Arch.VFs() {
		for _, ifc := range cfg.Arch.IFs() {
			total++
			c := Loop(l, vectorizer.New(l, cfg.Arch, vf, ifc), cfg)
			sp := baseline / c
			if sp > 1.0 {
				better++
			}
			if sp > bestSpeed {
				bestSpeed, bestVF, bestIF = sp, vf, ifc
			}
		}
	}
	if total != 35 {
		t.Fatalf("grid size = %d, want 35 (7 VFs x 5 IFs)", total)
	}
	// Paper: 26 of 35 factors improve over the baseline.
	if better < 14 || better > 34 {
		t.Errorf("points beating baseline = %d/35, want a clear majority like the paper's 26", better)
	}
	if bestSpeed < 1.05 || bestSpeed > 3.0 {
		t.Errorf("best speedup over baseline = %.2fx at (%d,%d), want modest improvement in [1.05, 3.0]", bestSpeed, bestVF, bestIF)
	}
	if bestVF <= choice.VF {
		t.Errorf("best VF = %d not wider than baseline's %d; the conservative-width story is broken", bestVF, choice.VF)
	}
	t.Logf("scalar=%.0f baseline(4,2)=%.0f best(%d,%d)=%.0f better=%d/35 bestSpeedup=%.2fx",
		scalar, baseline, bestVF, bestIF, baseline/bestSpeed, better, bestSpeed)
}

func TestVectorizationMonotoneOnSimpleCopy(t *testing.T) {
	src := `
int a[4096];
int b[4096];
void f() {
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i] + 1;
    }
}
`
	s1 := loopCycles(t, src, 1, 1)
	s8 := loopCycles(t, src, 8, 1)
	if s8 >= s1 {
		t.Errorf("VF=8 (%.0f) not faster than scalar (%.0f)", s8, s1)
	}
}

func TestStridedAccessReducesBenefit(t *testing.T) {
	unit := `
int a[4096];
int b[4096];
void f() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[i] * 3;
    }
}
`
	strided := `
int a[4096];
int b[8192];
void f() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[8 * i] * 3;
    }
}
`
	unitGain := loopCycles(t, unit, 1, 1) / loopCycles(t, unit, 8, 1)
	stridedGain := loopCycles(t, strided, 1, 1) / loopCycles(t, strided, 8, 1)
	if stridedGain >= unitGain {
		t.Errorf("strided gain %.2fx should be below unit-stride gain %.2fx", stridedGain, unitGain)
	}
}

func TestRemainderLoopCost(t *testing.T) {
	// Trip 100 with VF=64 leaves a 36-iteration scalar remainder; VF=4
	// leaves none. The high-VF version must pay for it.
	src := `
int a[128];
int b[128];
void f() {
    for (int i = 0; i < 100; i++) {
        a[i] = b[i] + 1;
    }
}
`
	v4 := loopCycles(t, src, 4, 1)
	v64 := loopCycles(t, src, 64, 1)
	if v64 <= v4*0.8 {
		t.Errorf("VF=64 on trip 100 (%.0f) suspiciously cheap vs VF=4 (%.0f); remainder not charged?", v64, v4)
	}
}

func TestInterleaveHidesReductionLatency(t *testing.T) {
	src := `
float x[4096];
float y[4096];
float f() {
    float acc = 0;
    for (int i = 0; i < 4096; i++) {
        acc += x[i] * y[i];
    }
    return acc;
}
`
	if1 := loopCycles(t, src, 8, 1)
	if4 := loopCycles(t, src, 8, 4)
	if if4 >= if1 {
		t.Errorf("IF=4 (%.0f) should beat IF=1 (%.0f) on a float reduction (latency hiding)", if4, if1)
	}
}

func TestRegisterPressurePenalizesExtremeFactors(t *testing.T) {
	// A many-stream loop at VF=64, IF=16 wildly overcommits the register
	// file; it must not be the best point.
	src := `
double a[8192];
double b[8192];
double c[8192];
double d[8192];
double e[8192];
void f() {
    for (int i = 0; i < 8192; i++) {
        a[i] = b[i] * c[i] + d[i] * e[i] + b[i] * d[i];
    }
}
`
	cfg := DefaultConfig()
	p := irFor(t, src)
	l := p.InnermostLoops()[0]
	extreme := Loop(l, vectorizer.New(l, cfg.Arch, 64, 16), cfg)
	moderate := Loop(l, vectorizer.New(l, cfg.Arch, 8, 2), cfg)
	if extreme <= moderate {
		t.Errorf("extreme factors (%.0f) beat moderate (%.0f); spill model missing", extreme, moderate)
	}
}

func TestPredicatedLoopVectorizationWins(t *testing.T) {
	// Scalar code pays branch mispredictions; the vector form is
	// if-converted. Vectorization should pay off more than proportionally.
	src := `
int a[4096];
int b[4096];
void f() {
    for (int i = 0; i < 4096; i++) {
        if (a[i] > 100) {
            b[i] = a[i];
        }
    }
}
`
	s := loopCycles(t, src, 1, 1)
	v := loopCycles(t, src, 8, 1)
	if v >= s {
		t.Errorf("vectorized predicated loop (%.0f) not faster than scalar (%.0f)", v, s)
	}
}

func TestLegalityClampKeepsCorrectness(t *testing.T) {
	src := `
int a[4096];
void f() {
    for (int i = 1; i < 4096; i++) {
        a[i] = a[i - 1] + 1;
    }
}
`
	cfg := DefaultConfig()
	l := irFor(t, src).InnermostLoops()[0]
	plan := vectorizer.New(l, cfg.Arch, 64, 8)
	if plan.VF != 1 {
		t.Fatalf("plan VF = %d for a serial recurrence, want 1", plan.VF)
	}
	if !plan.Clamped {
		t.Error("plan not marked clamped")
	}
}

func TestDRAMBoundLoopGainsLess(t *testing.T) {
	// 32 MB working set streams from DRAM; bandwidth caps the benefit.
	big := `
double a[2097152];
double b[2097152];
void f() {
    for (int i = 0; i < 2097152; i++) {
        a[i] = b[i] + 1.0;
    }
}
`
	small := `
double a[1024];
double b[1024];
void f() {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[i] + 1.0;
    }
}
`
	bigGain := loopCycles(t, big, 1, 1) / loopCycles(t, big, 8, 2)
	smallGain := loopCycles(t, small, 1, 1) / loopCycles(t, small, 8, 2)
	if bigGain >= smallGain {
		t.Errorf("DRAM-bound gain %.2fx should be below L1-resident gain %.2fx", bigGain, smallGain)
	}
}

func TestCompileTimeGrowsWithFactors(t *testing.T) {
	cfg := DefaultConfig()
	p := irFor(t, `
int a[4096];
int b[4096];
int c[4096];
int d[4096];
void f() {
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i] * c[i] + d[i] * b[i] + c[i] * d[i] + b[i] + c[i] + d[i];
    }
}
`)
	l := p.InnermostLoops()[0]
	base := CompileTime(p, map[string]*vectorizer.Plan{
		l.Label: vectorizer.New(l, cfg.Arch, 4, 1),
	}, cfg.Arch)
	huge := CompileTime(p, map[string]*vectorizer.Plan{
		l.Label: vectorizer.New(l, cfg.Arch, 64, 16),
	}, cfg.Arch)
	if huge <= base {
		t.Fatalf("compile time at (64,16) = %.0f not above (4,1) = %.0f", huge, base)
	}
	if huge/base < 10 {
		t.Errorf("compile blow-up ratio = %.1fx, want >= 10x so the timeout/penalty path triggers", huge/base)
	}
}

func TestProgramSimulationAggregates(t *testing.T) {
	cfg := DefaultConfig()
	p := irFor(t, `
int a[256];
int b[256];
void f() {
    for (int i = 0; i < 256; i++) {
        a[i] = b[i];
    }
    for (int i = 0; i < 256; i++) {
        b[i] = a[i] * 2;
    }
}
`)
	r := Program(p, nil, cfg)
	if r.Cycles <= 0 || r.Seconds <= 0 {
		t.Fatalf("result = %+v", r)
	}
	// Vectorizing both loops must reduce program time.
	plans := map[string]*vectorizer.Plan{}
	for _, l := range p.InnermostLoops() {
		plans[l.Label] = vectorizer.New(l, cfg.Arch, 8, 1)
	}
	r2 := Program(p, plans, cfg)
	if r2.Cycles >= r.Cycles {
		t.Errorf("vectorized program (%.0f) not faster than scalar (%.0f)", r2.Cycles, r.Cycles)
	}
}

func TestNestedLoopSimulation(t *testing.T) {
	cfg := DefaultConfig()
	p := irFor(t, `
float G[128][128];
void f(float x) {
    for (int i = 0; i < 128; i++) {
        for (int j = 0; j < 128; j++) {
            G[i][j] = x;
        }
    }
}
`)
	nest := p.Funcs[0].Loops[0]
	scalar := Nest(nest, nil, cfg)
	inner := nest.InnermostLoops()[0]
	plans := map[string]*vectorizer.Plan{inner.Label: vectorizer.New(inner, cfg.Arch, 8, 1)}
	vec := Nest(nest, plans, cfg)
	if vec >= scalar {
		t.Errorf("vectorized nest (%.0f) not faster than scalar (%.0f)", vec, scalar)
	}
	// Total must scale with the outer trip count.
	if scalar < 128*128*0.3 {
		t.Errorf("scalar nest cycles = %.0f implausibly low for 16k iterations", scalar)
	}
}

func TestUnknownTripStillVectorizes(t *testing.T) {
	src := `
int a[65536];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] + 1;
    }
}
`
	s := loopCycles(t, src, 1, 1)
	v := loopCycles(t, src, 8, 2)
	if v >= s {
		t.Errorf("runtime-bound loop: vector (%.0f) not faster than scalar (%.0f)", v, s)
	}
}

func TestColdCachesCostMore(t *testing.T) {
	// With WarmCaches off (single-shot execution instead of the paper's
	// million-run averaging harness), every stream is a first touch and the
	// same loop costs more.
	src := `
double a[4096];
double b[4096];
void f() {
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i] + 1.0;
    }
}
`
	p := irFor(t, src)
	l := p.InnermostLoops()[0]
	warm := DefaultConfig()
	cold := DefaultConfig()
	cold.WarmCaches = false
	plan := vectorizer.New(l, warm.Arch, 8, 2)
	cw := Loop(l, plan, warm)
	cc := Loop(l, plan, cold)
	if cc <= cw {
		t.Errorf("cold run (%.0f) not more expensive than warm run (%.0f)", cc, cw)
	}
}

func TestZeroTripLoop(t *testing.T) {
	src := `
int a[8];
void f() {
    for (int i = 0; i < 0; i++) {
        a[i] = i;
    }
}
`
	cfg := DefaultConfig()
	l := irFor(t, src).InnermostLoops()[0]
	c := Loop(l, vectorizer.New(l, cfg.Arch, 8, 2), cfg)
	if c <= 0 || c > 10 {
		t.Errorf("zero-trip loop cycles = %.1f, want small positive constant", c)
	}
}

func TestDeterminism(t *testing.T) {
	for i := 0; i < 3; i++ {
		a := loopCycles(t, dotSrc, 16, 4)
		b := loopCycles(t, dotSrc, 16, 4)
		if a != b {
			t.Fatalf("simulation not deterministic: %v != %v", a, b)
		}
	}
}
