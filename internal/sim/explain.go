package sim

import (
	"fmt"
	"strings"

	"neurovec/internal/ir"
	"neurovec/internal/machine"
	"neurovec/internal/vectorizer"
)

// Breakdown explains where an innermost loop's cycles go under a plan. It is
// a diagnostic view of the same model innermostCycles evaluates, offered
// because the paper's deployability discussion (Section 4.2) names
// interpretability as the main obstacle for learned compiler policies: the
// simulator can always say *why* a configuration is slow even when the
// policy network cannot.
type Breakdown struct {
	Label  string
	VF, IF int

	Groups    int64
	Remainder int64

	// Per-vector-group components; GroupCycles is their combination.
	IssueCycles   float64
	PortCycles    float64
	LatencyCycles float64
	MemoryCycles  float64
	SpillCycles   float64
	GroupCycles   float64

	// Fixed costs per loop execution.
	Startup       float64
	ReductionTail float64

	// ScalarIter is the modelled cost of one scalar (remainder) iteration.
	ScalarIter float64

	// Total is exactly what the simulator charges for this loop.
	Total float64

	// Bound names the dominating component: "issue", "ports", "latency",
	// "memory", or "scalar" (for unvectorized/degenerate executions).
	Bound string
}

// String renders the breakdown as a one-loop report.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loop %s @ VF=%d IF=%d: %.0f cycles, %s-bound\n", b.Label, b.VF, b.IF, b.Total, b.Bound)
	fmt.Fprintf(&sb, "  groups %d (+%d remainder iters), per group: issue %.2f ports %.2f latency %.2f memory %.2f spill %.2f -> %.2f\n",
		b.Groups, b.Remainder, b.IssueCycles, b.PortCycles, b.LatencyCycles, b.MemoryCycles, b.SpillCycles, b.GroupCycles)
	fmt.Fprintf(&sb, "  fixed: startup %.1f, reduction tail %.1f; scalar iter %.2f\n", b.Startup, b.ReductionTail, b.ScalarIter)
	return sb.String()
}

// Explain analyses an innermost loop under a plan. Explain(l, p, cfg).Total
// always equals Loop(l, p, cfg).
func Explain(l *ir.Loop, plan *vectorizer.Plan, cfg Config) Breakdown {
	return explain(l, nil, plan, cfg)
}

func explain(l *ir.Loop, ancestors []*ir.Loop, plan *vectorizer.Plan, cfg Config) Breakdown {
	arch := cfg.Arch
	b := Breakdown{Label: l.Label, VF: plan.VF, IF: plan.IF}
	trip := max64(l.Trip, 0)
	b.ScalarIter = scalarIterCycles(l, ancestors, cfg)
	if trip == 0 {
		b.Total = 2
		b.Bound = "scalar"
		return b
	}
	vf, ifc := plan.VF, plan.IF
	if vf <= 1 && ifc <= 1 {
		b.Remainder = trip
		b.Total = float64(trip)*b.ScalarIter + 2
		b.Bound = "scalar"
		return b
	}
	group := int64(vf * ifc)
	b.Groups = trip / group
	b.Remainder = trip % group
	if b.Groups == 0 {
		b.Total = float64(b.Remainder)*b.ScalarIter + 2
		b.Bound = "scalar"
		return b
	}

	accesses := dedupAccesses(l.Accesses)
	var aluUops, loadUops, storeUops float64
	for _, in := range l.Body {
		if in.Op == ir.OpCopy {
			continue
		}
		regs := float64(arch.RegsPerVector(vf, opType(in)))
		u := machine.OpThroughput(in.Op, in.Type) * regs * float64(ifc)
		if in.Predicated {
			u *= 1.2
		}
		aluUops += u
	}
	for _, a := range accesses {
		if a.InvariantIn(l.Label) {
			continue
		}
		u := accessUops(a, l.Label, vf, ifc, arch)
		if a.Kind == ir.Load {
			loadUops += u
		} else {
			storeUops += u
		}
	}

	pressure := 0
	for _, a := range accesses {
		if a.Kind == ir.Load && !a.InvariantIn(l.Label) {
			pressure += arch.RegsPerVector(vf, a.Elem) * ifc
		}
	}
	for _, r := range l.Reductions {
		pressure += arch.RegsPerVector(vf, r.Type) * ifc
	}
	pressure += 2
	if pressure > arch.VecRegs {
		spillUops := float64(pressure-arch.VecRegs) * 2
		b.SpillCycles = spillUops / float64(arch.IssueWidth) * 1.5
	}

	b.IssueCycles = (aluUops + loadUops + storeUops) / float64(arch.IssueWidth)
	b.PortCycles = maxf(loadUops/float64(arch.LoadPorts), storeUops/float64(arch.StorePorts))
	for _, r := range l.Reductions {
		b.LatencyCycles = maxf(b.LatencyCycles, machine.OpLatency(r.Op, r.Type))
	}
	b.MemoryCycles = memoryCycles(l, ancestors, accesses, vf, ifc, cfg)
	b.GroupCycles = maxf(maxf(maxf(b.IssueCycles, b.PortCycles), b.LatencyCycles), b.MemoryCycles) + b.SpillCycles + 1

	b.Startup = 8.0 + float64(ifc)
	for _, r := range l.Reductions {
		lanes := float64(log2i(vf))
		combines := float64(ifc*arch.RegsPerVector(vf, r.Type) - 1)
		b.ReductionTail += (lanes + combines) * machine.OpLatency(r.Op, r.Type) * 0.5
	}

	b.Total = float64(b.Groups)*b.GroupCycles + float64(b.Remainder)*b.ScalarIter + b.Startup + b.ReductionTail
	if !l.TripKnown {
		b.Total += 12
	}

	b.Bound = "issue"
	top := b.IssueCycles
	for _, c := range []struct {
		name string
		v    float64
	}{{"ports", b.PortCycles}, {"latency", b.LatencyCycles}, {"memory", b.MemoryCycles}} {
		if c.v > top {
			top, b.Bound = c.v, c.name
		}
	}
	return b
}
