package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the program back to C-like source text. Loop pragmas
// attached to for statements are emitted on the line before the loop, which
// is how the framework injects vectorization hints (Figure 4 of the paper).
func Print(p *Program) string {
	var pr printer
	for _, s := range p.Structs {
		pr.structDecl(s)
	}
	if len(p.Structs) > 0 && (len(p.Globals) > 0 || len(p.Funcs) > 0) {
		pr.nl()
	}
	for _, g := range p.Globals {
		pr.global(g)
	}
	if len(p.Globals) > 0 && len(p.Funcs) > 0 {
		pr.nl()
	}
	for i, f := range p.Funcs {
		if i > 0 {
			pr.nl()
		}
		pr.fn(f)
	}
	return pr.b.String()
}

// PrintStmt renders a single statement (used by the embedder, which feeds
// loop bodies rather than whole files to the path extractor).
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e, 0)
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) nl() { p.b.WriteByte('\n') }

// elemTypeText renders a declarator's element type ("int" or "struct P").
func elemTypeText(t Type) string {
	if t.StructName != "" {
		return "struct " + t.StructName
	}
	return t.Scalar.String()
}

func (p *printer) structDecl(s *StructDecl) {
	p.line("struct %s {", s.Name)
	p.indent++
	for _, f := range s.Fields {
		p.line("%s %s;", f.Type, f.Name)
	}
	p.indent--
	p.line("};")
}

func (p *printer) global(g *GlobalDecl) {
	decl := elemTypeText(g.Type) + " " + g.Name
	for _, d := range g.Type.Dims {
		decl += "[" + strconv.FormatInt(d, 10) + "]"
	}
	if g.Init != nil {
		decl += " = " + PrintExpr(g.Init)
	}
	p.line("%s;", decl)
}

func (p *printer) fn(f *FuncDecl) {
	var params []string
	for _, pa := range f.Params {
		ps := elemTypeText(pa.Type) + " " + pa.Name
		for _, d := range pa.Type.Dims {
			if d == 0 {
				ps += "[]"
			} else {
				ps += "[" + strconv.FormatInt(d, 10) + "]"
			}
		}
		params = append(params, ps)
	}
	p.line("%s %s(%s) {", f.Return, f.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range f.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		decl := elemTypeText(st.Type) + " " + st.Name
		for _, d := range st.Type.Dims {
			decl += "[" + strconv.FormatInt(d, 10) + "]"
		}
		if st.Init != nil {
			decl += " = " + PrintExpr(st.Init)
		}
		p.line("%s;", decl)
	case *AssignStmt:
		p.line("%s;", p.assignText(st))
	case *IncDecStmt:
		op := "++"
		if st.Dec {
			op = "--"
		}
		p.line("%s%s;", PrintExpr(st.X), op)
	case *ExprStmt:
		p.line("%s;", PrintExpr(st.X))
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", PrintExpr(st.Value))
		} else {
			p.line("return;")
		}
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, c := range st.Stmts {
			p.stmt(c)
		}
		p.indent--
		p.line("}")
	case *IfStmt:
		p.ifChain(st)
	case *BreakStmt:
		p.line("break;")
	case *SwitchStmt:
		p.line("switch (%s) {", PrintExpr(st.Tag))
		for _, cc := range st.Cases {
			if cc.Value != nil {
				p.line("case %s:", PrintExpr(cc.Value))
			} else {
				p.line("default:")
			}
			p.indent++
			for _, c := range cc.Body {
				p.stmt(c)
			}
			if cc.HasBreak {
				p.line("break;")
			}
			p.indent--
		}
		p.line("}")
	case *ForStmt:
		if st.Pragma != nil {
			p.line("%s", st.Pragma.String())
		}
		p.line("for (%s %s; %s) {", p.forInit(st), p.forCond(st), p.forPost(st))
		p.indent++
		for _, c := range st.Body.Stmts {
			p.stmt(c)
		}
		p.indent--
		p.line("}")
	default:
		p.line("/* unknown statement %T */", s)
	}
}

// ifChain prints an if statement and any else/else-if chain hanging off it.
func (p *printer) ifChain(st *IfStmt) {
	p.line("if (%s) {", PrintExpr(st.Cond))
	for {
		p.indent++
		for _, c := range st.Then.Stmts {
			p.stmt(c)
		}
		p.indent--
		switch els := st.Else.(type) {
		case nil:
			p.line("}")
			return
		case *BlockStmt:
			p.line("} else {")
			p.indent++
			for _, c := range els.Stmts {
				p.stmt(c)
			}
			p.indent--
			p.line("}")
			return
		case *IfStmt:
			p.line("} else if (%s) {", PrintExpr(els.Cond))
			st = els
		default:
			p.line("}")
			return
		}
	}
}

func (p *printer) forInit(st *ForStmt) string {
	if st.Init == nil {
		return ";"
	}
	switch in := st.Init.(type) {
	case *DeclStmt:
		decl := elemTypeText(in.Type) + " " + in.Name
		if in.Init != nil {
			decl += " = " + PrintExpr(in.Init)
		}
		return decl + ";"
	case *AssignStmt:
		return p.assignText(in) + ";"
	case *IncDecStmt:
		op := "++"
		if in.Dec {
			op = "--"
		}
		return PrintExpr(in.X) + op + ";"
	case *ExprStmt:
		return PrintExpr(in.X) + ";"
	}
	return ";"
}

func (p *printer) forCond(st *ForStmt) string {
	if st.Cond == nil {
		return ""
	}
	return PrintExpr(st.Cond)
}

func (p *printer) forPost(st *ForStmt) string {
	if st.Post == nil {
		return ""
	}
	switch po := st.Post.(type) {
	case *AssignStmt:
		return p.assignText(po)
	case *IncDecStmt:
		op := "++"
		if po.Dec {
			op = "--"
		}
		return PrintExpr(po.X) + op
	case *ExprStmt:
		return PrintExpr(po.X)
	}
	return ""
}

func (p *printer) assignText(a *AssignStmt) string {
	op := map[Kind]string{
		Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
		SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=",
		PipeAssign: "|=", CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	}[a.Op]
	return PrintExpr(a.LHS) + " " + op + " " + PrintExpr(a.RHS)
}

// exprPrec mirrors binaryPrec for printing with minimal parentheses.
func exprPrec(e Expr) int {
	switch ex := e.(type) {
	case *BinaryExpr:
		return binaryPrec(ex.Op)
	case *CondExpr:
		return 0
	case *CastExpr, *UnaryExpr:
		return 11
	default:
		return 12
	}
}

func (p *printer) expr(e Expr, parentPrec int) {
	switch ex := e.(type) {
	case *Ident:
		p.b.WriteString(ex.Name)
	case *IntLit:
		p.b.WriteString(strconv.FormatInt(ex.Value, 10))
	case *FloatLit:
		if ex.Text != "" {
			p.b.WriteString(ex.Text)
		} else {
			p.b.WriteString(strconv.FormatFloat(ex.Value, 'g', -1, 64))
		}
	case *BinaryExpr:
		prec := binaryPrec(ex.Op)
		paren := prec < parentPrec
		if paren {
			p.b.WriteByte('(')
		}
		p.expr(ex.X, prec)
		p.b.WriteString(" " + ex.Op.String() + " ")
		p.expr(ex.Y, prec+1)
		if paren {
			p.b.WriteByte(')')
		}
	case *UnaryExpr:
		p.b.WriteString(ex.Op.String())
		p.expr(ex.X, 11)
	case *IndexExpr:
		p.expr(ex.Base, 12)
		p.b.WriteByte('[')
		p.expr(ex.Index, 0)
		p.b.WriteByte(']')
	case *CallExpr:
		p.b.WriteString(ex.Fun)
		p.b.WriteByte('(')
		for i, a := range ex.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.b.WriteByte(')')
	case *CondExpr:
		paren := parentPrec > 0
		if paren {
			p.b.WriteByte('(')
		}
		p.expr(ex.Cond, 1)
		p.b.WriteString(" ? ")
		p.expr(ex.Then, 1)
		p.b.WriteString(" : ")
		p.expr(ex.Else, 1)
		if paren {
			p.b.WriteByte(')')
		}
	case *CastExpr:
		p.b.WriteString("(" + ex.To.String() + ") ")
		p.expr(ex.X, 11)
	case *MemberExpr:
		p.expr(ex.Base, 12)
		p.b.WriteByte('.')
		p.b.WriteString(ex.Field)
	default:
		fmt.Fprintf(&p.b, "/* unknown expr %T */", e)
	}
}
