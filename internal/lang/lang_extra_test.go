package lang

import (
	"strings"
	"testing"
)

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "int x = 1e+;", "$"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestParserErrorCases(t *testing.T) {
	cases := []string{
		"int",                            // truncated declaration
		"int f( { }",                     // bad parameter list
		"int f() { for (;;) }",           // for without body statement list is ok? missing body
		"int f() { a[1 = 2; }",           // unclosed subscript
		"int f() { 3 = x; }",             // assign to rvalue
		"int f() { x++; y--; (1+2)++; }", // inc of rvalue
		"int a[]",                        // missing dimension
		"void f() { if (1 { } }",         // bad if
		"void f() { return 1 + ; }",      // bad expr
		"void f() { for (int i = 0; i <", // truncated
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseVoidParamList(t *testing.T) {
	p, err := Parse("int f(void) { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs[0].Params) != 0 {
		t.Fatal("void parameter list should be empty")
	}
}

func TestParseArrayParams(t *testing.T) {
	p, err := Parse("void f(int a[], float b[16]) { }")
	if err != nil {
		t.Fatal(err)
	}
	ps := p.Funcs[0].Params
	if len(ps) != 2 {
		t.Fatalf("params = %d", len(ps))
	}
	if !ps[0].Type.IsArray() || ps[0].Type.Dims[0] != 0 {
		t.Errorf("a[] type = %+v", ps[0].Type)
	}
	if ps[1].Type.Dims[0] != 16 {
		t.Errorf("b[16] type = %+v", ps[1].Type)
	}
}

func TestParseTypeSpellings(t *testing.T) {
	cases := map[string]ScalarType{
		"unsigned int x;":  TypeInt,
		"unsigned char c;": TypeChar,
		"long long y;":     TypeLong,
		"short int s;":     TypeShort,
		"long int z;":      TypeLong,
	}
	for src, want := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := p.Globals[0].Type.Scalar; got != want {
			t.Errorf("%q: type = %s, want %s", src, got, want)
		}
	}
}

func TestParseStaticConstQualifiers(t *testing.T) {
	p, err := Parse("static const int N = 8;\nvoid f() { const int m = N; }")
	if err != nil {
		t.Fatal(err)
	}
	if p.Globals[0].Name != "N" {
		t.Fatal("qualified global lost")
	}
}

func TestStringersAndHelpers(t *testing.T) {
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Error("Pos.String wrong")
	}
	tok := Token{Kind: IDENT, Text: "abc"}
	if !strings.Contains(tok.String(), "abc") {
		t.Error("Token.String missing text")
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should render")
	}
	ty := Type{Scalar: TypeFloat, Dims: []int64{4, 8}}
	if ty.String() != "float[4][8]" {
		t.Errorf("Type.String = %s", ty)
	}
	if ty.Elems() != 32 {
		t.Errorf("Elems = %d", ty.Elems())
	}
	pr := Pragma{}
	if pr.String() != "#pragma clang loop" {
		t.Errorf("empty pragma = %q", pr.String())
	}
	pr = Pragma{VF: 8}
	if pr.String() != "#pragma clang loop vectorize_width(8)" {
		t.Errorf("VF-only pragma = %q", pr.String())
	}
}

func TestWalkVisitsIfBranches(t *testing.T) {
	p := MustParse(`
void f(int x) {
    if (x > 0) {
        x = 1;
    } else {
        for (int i = 0; i < 4; i++) { }
    }
}
`)
	loops := p.Funcs[0].Loops()
	if len(loops) != 1 {
		t.Fatalf("loop in else branch not found: %d", len(loops))
	}
	// Early termination.
	count := 0
	Walk(p.Funcs[0].Body, func(Stmt) bool { count++; return false })
	if count != 1 {
		t.Fatalf("walk did not stop: %d", count)
	}
}

func TestPrintExprForms(t *testing.T) {
	p := MustParse(`
int g(int a, int b) {
    return -a + ~b + !a + max(a, b) + (a > b ? a : b) + (long) a;
}
`)
	out := PrintExpr(p.Funcs[0].Body.Stmts[0].(*ReturnStmt).Value)
	for _, want := range []string{"-a", "~b", "!a", "max(a, b)", "? a : b", "(long) a"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed expr missing %q: %s", want, out)
		}
	}
	// The printed form must reparse.
	if _, err := Parse("int h(int a, int b) { return " + out + "; }"); err != nil {
		t.Fatalf("printed expression does not reparse: %v\n%s", err, out)
	}
}

func TestPrintStmtAndGlobalsWithInit(t *testing.T) {
	p := MustParse("float alpha = 2.5;\nvoid f() { return; }")
	out := Print(p)
	if !strings.Contains(out, "float alpha = 2.5;") {
		t.Fatalf("global init lost:\n%s", out)
	}
	if got := PrintStmt(p.Funcs[0].Body.Stmts[0]); !strings.Contains(got, "return;") {
		t.Fatalf("PrintStmt = %q", got)
	}
}

func TestStackedPragmasMerge(t *testing.T) {
	p := MustParse(`
int a[64];
void f() {
    #pragma clang loop vectorize_width(8)
    #pragma clang loop interleave_count(2)
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
}
`)
	pr := p.Funcs[0].Loops()[0].Pragma
	if pr == nil || pr.VF != 8 || pr.IF != 2 {
		t.Fatalf("stacked pragmas = %+v", pr)
	}
}

func TestNonLoopPragmaInsideFunctionIgnored(t *testing.T) {
	p, err := Parse(`
void f() {
    #pragma unroll
    int x = 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs[0].Body.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(p.Funcs[0].Body.Stmts))
	}
}

func TestSingleStatementBodies(t *testing.T) {
	p, err := Parse(`
int a[32];
void f() {
    for (int i = 0; i < 32; i++)
        a[i] = i;
    if (a[0] > 0)
        a[0] = 0;
    else
        a[0] = 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	loop := p.Funcs[0].Loops()[0]
	if len(loop.Body.Stmts) != 1 {
		t.Fatalf("single-stmt loop body = %d stmts", len(loop.Body.Stmts))
	}
}
