package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns source text into a stream of tokens. It recognises C-style
// comments, preprocessor pragma lines (kept, as the parser consumes them) and
// other preprocessor lines (skipped).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *LexError) Error() string { return fmt.Sprintf("lex %s: %s", e.Pos, e.Msg) }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// skipSpaceAndComments consumes whitespace and // and /* */ comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token. At end of input it returns an EOF token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.peek()

	// Preprocessor lines. "#pragma ..." is surfaced as a PRAGMA token; any
	// other directive (e.g. #include, #define) is skipped wholesale so that
	// realistic-looking inputs still parse.
	if c == '#' {
		lineStart := l.off
		for l.off < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		text := strings.TrimSpace(l.src[lineStart:l.off])
		if strings.HasPrefix(text, "#pragma") {
			return Token{Kind: PRAGMA, Text: text, Pos: start}, nil
		}
		return l.Next()
	}

	if isIdentStart(c) {
		lit := l.scanIdent()
		if k, ok := keywords[lit]; ok {
			return Token{Kind: k, Text: lit, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: lit, Pos: start}, nil
	}
	if isDigit(c) || (c == '.' && isDigit(l.peekAt(1))) {
		return l.scanNumber(start)
	}

	l.advance()
	two := func(next byte, with, without Kind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: with, Pos: start}
		}
		return Token{Kind: without, Pos: start}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: start}, nil
	case ')':
		return Token{Kind: RParen, Pos: start}, nil
	case '{':
		return Token{Kind: LBrace, Pos: start}, nil
	case '}':
		return Token{Kind: RBrace, Pos: start}, nil
	case '[':
		return Token{Kind: LBracket, Pos: start}, nil
	case ']':
		return Token{Kind: RBracket, Pos: start}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: start}, nil
	case ',':
		return Token{Kind: Comma, Pos: start}, nil
	case '?':
		return Token{Kind: Question, Pos: start}, nil
	case ':':
		return Token{Kind: Colon, Pos: start}, nil
	case '.':
		return Token{Kind: Dot, Pos: start}, nil
	case '~':
		return Token{Kind: Tilde, Pos: start}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: PlusPlus, Pos: start}, nil
		}
		return two('=', PlusAssign, Plus), nil
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: MinusMinus, Pos: start}, nil
		}
		return two('=', MinusAssign, Minus), nil
	case '*':
		return two('=', StarAssign, Star), nil
	case '/':
		return two('=', SlashAssign, Slash), nil
	case '%':
		return two('=', PercentAssign, Percent), nil
	case '!':
		return two('=', NotEq, Bang), nil
	case '=':
		return two('=', EqEq, Assign), nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: AndAnd, Pos: start}, nil
		}
		return two('=', AmpAssign, Amp), nil
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OrOr, Pos: start}, nil
		}
		return two('=', PipeAssign, Pipe), nil
	case '^':
		return two('=', CaretAssign, Caret), nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return two('=', ShlAssign, Shl), nil
		}
		return two('=', Le, Lt), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			return two('=', ShrAssign, Shr), nil
		}
		return two('=', Ge, Gt), nil
	}
	return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(rune(c)))}
}

func (l *Lexer) scanIdent() string {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	return l.src[start:l.off]
}

func (l *Lexer) scanNumber(start Pos) (Token, error) {
	begin := l.off
	isFloat := false
	// Hex literals.
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for isHexDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: INTLIT, Text: l.src[begin:l.off], Pos: start}, nil
	}
	for isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			// Not actually an exponent; rewind is impossible with our
			// line/col tracking, so report an error instead. This only
			// triggers on malformed numbers like "1e+".
			_ = save
			return Token{}, &LexError{Pos: start, Msg: "malformed exponent in numeric literal"}
		}
		isFloat = true
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	// Suffixes (f, F, l, L, u, U) are consumed and ignored.
	for {
		switch l.peek() {
		case 'f', 'F':
			isFloat = true
			l.advance()
			continue
		case 'l', 'L', 'u', 'U':
			l.advance()
			continue
		}
		break
	}
	text := l.src[begin:l.off]
	// Strip suffixes from the retained text so strconv can parse it.
	text = strings.TrimRight(text, "fFlLuU")
	if isFloat {
		return Token{Kind: FLOATLIT, Text: text, Pos: start}, nil
	}
	return Token{Kind: INTLIT, Text: text, Pos: start}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Tokenize lexes the whole input and returns all tokens including the final
// EOF token. It is a convenience for the parser and for tests.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
