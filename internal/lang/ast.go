package lang

import (
	"fmt"
	"strings"
)

// ScalarType is a C scalar type in the mini-C language.
type ScalarType int

// Supported scalar types, ordered roughly by width so conversion direction
// can be derived by comparison.
const (
	TypeVoid ScalarType = iota
	TypeChar
	TypeShort
	TypeInt
	TypeLong
	TypeFloat
	TypeDouble
)

// Size returns the size of the type in bytes, following the LP64 C model.
func (t ScalarType) Size() int {
	switch t {
	case TypeChar:
		return 1
	case TypeShort:
		return 2
	case TypeInt, TypeFloat:
		return 4
	case TypeLong, TypeDouble:
		return 8
	}
	return 0
}

// Bits returns the width of the type in bits.
func (t ScalarType) Bits() int { return t.Size() * 8 }

// IsFloat reports whether the type is a floating-point type.
func (t ScalarType) IsFloat() bool { return t == TypeFloat || t == TypeDouble }

// IsInteger reports whether the type is an integer type.
func (t ScalarType) IsInteger() bool {
	switch t {
	case TypeChar, TypeShort, TypeInt, TypeLong:
		return true
	}
	return false
}

// String returns the C spelling of the type.
func (t ScalarType) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeChar:
		return "char"
	case TypeShort:
		return "short"
	case TypeInt:
		return "int"
	case TypeLong:
		return "long"
	case TypeFloat:
		return "float"
	case TypeDouble:
		return "double"
	}
	return fmt.Sprintf("ScalarType(%d)", int(t))
}

// Type is a declared type: a scalar or a named struct, with zero or more
// array dimensions.
type Type struct {
	Scalar     ScalarType
	StructName string  // non-empty for "struct Name" types; Scalar is ignored
	Dims       []int64 // empty for scalars; {N} for T[N]; {N, M} for T[N][M], ...
}

// IsArray reports whether the type has at least one array dimension.
func (t Type) IsArray() bool { return len(t.Dims) > 0 }

// IsStruct reports whether the type's element type is a named struct.
func (t Type) IsStruct() bool { return t.StructName != "" }

// Elems returns the total number of scalar elements (1 for scalars).
func (t Type) Elems() int64 {
	n := int64(1)
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// String renders the type; array dims are appended as in a declarator.
func (t Type) String() string {
	var b strings.Builder
	if t.StructName != "" {
		b.WriteString("struct ")
		b.WriteString(t.StructName)
	} else {
		b.WriteString(t.Scalar.String())
	}
	for _, d := range t.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	return b.String()
}

// Pragma is a clang loop pragma attached to a for statement.
// VF==0 or IF==0 means the corresponding clause was absent.
type Pragma struct {
	VF  int
	IF  int
	Raw string // original text, if parsed from source
}

// String renders the pragma as clang would expect it.
func (p Pragma) String() string {
	var clauses []string
	if p.VF > 0 {
		clauses = append(clauses, fmt.Sprintf("vectorize_width(%d)", p.VF))
	}
	if p.IF > 0 {
		clauses = append(clauses, fmt.Sprintf("interleave_count(%d)", p.IF))
	}
	if len(clauses) == 0 {
		return "#pragma clang loop"
	}
	return "#pragma clang loop " + strings.Join(clauses, " ")
}

// Node is the interface implemented by every AST node.
type Node interface {
	nodePos() Pos
}

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// ---- Expressions ----

// Ident is a reference to a named variable.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
	Text  string // original spelling, preserved by the printer
	Pos   Pos
}

// BinaryExpr is a binary operation such as a+b or i<N.
type BinaryExpr struct {
	Op   Kind // Plus, Minus, Star, ..., AndAnd, OrOr, Lt, EqEq, ...
	X, Y Expr
	Pos  Pos
}

// UnaryExpr is a prefix unary operation (-x, !x, ~x).
type UnaryExpr struct {
	Op  Kind // Minus, Bang, Tilde, Plus
	X   Expr
	Pos Pos
}

// IndexExpr is an array subscript a[i] (possibly chained for a[i][j]).
type IndexExpr struct {
	Base  Expr
	Index Expr
	Pos   Pos
}

// CallExpr is a function call f(args...).
type CallExpr struct {
	Fun  string
	Args []Expr
	Pos  Pos
}

// CondExpr is the ternary conditional c ? t : f.
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

// CastExpr is an explicit cast (T) x.
type CastExpr struct {
	To  ScalarType
	X   Expr
	Pos Pos
}

// MemberExpr is a struct field access base.field. Base is an Ident naming a
// struct variable or an IndexExpr over a struct array (pts[i].x); the
// language has no pointers, so there is no -> form.
type MemberExpr struct {
	Base  Expr
	Field string
	Pos   Pos
}

func (e *Ident) nodePos() Pos      { return e.Pos }
func (e *IntLit) nodePos() Pos     { return e.Pos }
func (e *FloatLit) nodePos() Pos   { return e.Pos }
func (e *BinaryExpr) nodePos() Pos { return e.Pos }
func (e *UnaryExpr) nodePos() Pos  { return e.Pos }
func (e *IndexExpr) nodePos() Pos  { return e.Pos }
func (e *CallExpr) nodePos() Pos   { return e.Pos }
func (e *CondExpr) nodePos() Pos   { return e.Pos }
func (e *CastExpr) nodePos() Pos   { return e.Pos }
func (e *MemberExpr) nodePos() Pos { return e.Pos }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*CondExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}
func (*MemberExpr) exprNode() {}

// ---- Statements ----

// DeclStmt declares (and optionally initialises) a local variable.
type DeclStmt struct {
	Name string
	Type Type
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt is an assignment, possibly compound (Op != Assign).
type AssignStmt struct {
	Op  Kind // Assign, PlusAssign, ...
	LHS Expr // Ident or IndexExpr
	RHS Expr
	Pos Pos
}

// IncDecStmt is i++ or i-- used as a statement.
type IncDecStmt struct {
	X   Expr
	Dec bool
	Pos Pos
}

// ExprStmt is an expression evaluated for its side effects (e.g. a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// ForStmt is a C for loop. Init and Post are single statements (or nil);
// Cond is an expression (or nil). Pragma, if non-nil, is a clang loop pragma
// that immediately preceded the loop in source.
type ForStmt struct {
	Init   Stmt // DeclStmt or AssignStmt, may be nil
	Cond   Expr // may be nil
	Post   Stmt // AssignStmt or IncDecStmt, may be nil
	Body   *BlockStmt
	Pragma *Pragma
	Label  string // stable loop identifier assigned by the parser: L0, L1, ...
	Pos    Pos
}

// IfStmt is an if/else statement.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
	Pos  Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Value Expr // may be nil
	Pos   Pos
}

// BreakStmt exits the innermost enclosing loop or switch.
type BreakStmt struct {
	Pos Pos
}

// CaseClause is one "case expr:" or "default:" arm of a switch. Body holds
// the statements up to the next case label; a trailing break is recorded in
// HasBreak rather than kept as a statement, matching C's fallthrough model.
type CaseClause struct {
	Value    Expr // nil for default:
	Body     []Stmt
	HasBreak bool // arm ended with an explicit break
	Pos      Pos
}

// SwitchStmt is a C switch over an integer expression.
type SwitchStmt struct {
	Tag   Expr
	Cases []*CaseClause
	Pos   Pos
}

// BlockStmt is a { ... } statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

func (s *DeclStmt) nodePos() Pos   { return s.Pos }
func (s *AssignStmt) nodePos() Pos { return s.Pos }
func (s *IncDecStmt) nodePos() Pos { return s.Pos }
func (s *ExprStmt) nodePos() Pos   { return s.Pos }
func (s *ForStmt) nodePos() Pos    { return s.Pos }
func (s *IfStmt) nodePos() Pos     { return s.Pos }
func (s *ReturnStmt) nodePos() Pos { return s.Pos }
func (s *BlockStmt) nodePos() Pos  { return s.Pos }
func (s *BreakStmt) nodePos() Pos  { return s.Pos }
func (s *SwitchStmt) nodePos() Pos { return s.Pos }

func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*IncDecStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*ForStmt) stmtNode()    {}
func (*IfStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode() {}
func (*BlockStmt) stmtNode()  {}
func (*BreakStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode() {}

// ---- Top level ----

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Return ScalarType
	Params []Param
	Body   *BlockStmt
	Pos    Pos
}

// GlobalDecl is a file-scope variable declaration, optionally initialised
// with a constant expression.
type GlobalDecl struct {
	Name string
	Type Type
	Init Expr // constant expression or nil
	Pos  Pos
}

// Field is one scalar member of a struct declaration.
type Field struct {
	Name string
	Type ScalarType
}

// StructDecl is a file-scope struct type definition. Fields are scalar-only:
// the language has no pointers and no nested aggregates, which keeps field
// storage disjoint and lowering exact.
type StructDecl struct {
	Name   string
	Fields []Field
	Pos    Pos
}

// Field returns the declared field with the given name, or nil.
func (s *StructDecl) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Program is a parsed translation unit.
type Program struct {
	Structs []*StructDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Struct returns the struct declaration with the given name, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Global returns the global declaration with the given name, or nil.
func (p *Program) Global(name string) *GlobalDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Walk traverses the statement tree rooted at s in depth-first order,
// calling fn for every statement. If fn returns false the subtree below
// that statement is skipped.
func Walk(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch st := s.(type) {
	case *BlockStmt:
		for _, c := range st.Stmts {
			Walk(c, fn)
		}
	case *ForStmt:
		if st.Init != nil {
			Walk(st.Init, fn)
		}
		if st.Post != nil {
			Walk(st.Post, fn)
		}
		Walk(st.Body, fn)
	case *IfStmt:
		Walk(st.Then, fn)
		if st.Else != nil {
			Walk(st.Else, fn)
		}
	case *SwitchStmt:
		for _, cc := range st.Cases {
			for _, c := range cc.Body {
				Walk(c, fn)
			}
		}
	}
}

// WalkExpr traverses the expression tree rooted at e in depth-first order.
// If fn returns false the subtree below that expression is skipped.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch ex := e.(type) {
	case *BinaryExpr:
		WalkExpr(ex.X, fn)
		WalkExpr(ex.Y, fn)
	case *UnaryExpr:
		WalkExpr(ex.X, fn)
	case *IndexExpr:
		WalkExpr(ex.Base, fn)
		WalkExpr(ex.Index, fn)
	case *CallExpr:
		for _, a := range ex.Args {
			WalkExpr(a, fn)
		}
	case *CondExpr:
		WalkExpr(ex.Cond, fn)
		WalkExpr(ex.Then, fn)
		WalkExpr(ex.Else, fn)
	case *CastExpr:
		WalkExpr(ex.X, fn)
	case *MemberExpr:
		WalkExpr(ex.Base, fn)
	}
}

// Loops returns every for statement in the function body in source order
// (outer loops before the loops they contain).
func (f *FuncDecl) Loops() []*ForStmt {
	var out []*ForStmt
	Walk(f.Body, func(s Stmt) bool {
		if fs, ok := s.(*ForStmt); ok {
			out = append(out, fs)
		}
		return true
	})
	return out
}

// InnermostLoops returns the for statements that contain no nested for
// statement — the loops the vectorizer targets, per the paper ("the pragma
// is injected to the most inner loop in case of nested loops").
func (f *FuncDecl) InnermostLoops() []*ForStmt {
	var out []*ForStmt
	for _, l := range f.Loops() {
		inner := false
		Walk(l.Body, func(s Stmt) bool {
			if _, ok := s.(*ForStmt); ok {
				inner = true
				return false
			}
			return true
		})
		if !inner {
			out = append(out, l)
		}
	}
	return out
}
