package lang_test

import (
	"reflect"
	"testing"

	"neurovec/internal/dataset"
	"neurovec/internal/lang"
)

// normalizeAST strips source positions (and raw pragma text) from a parsed
// program in place, so two parses of differently formatted but structurally
// identical source compare equal under reflect.DeepEqual. It walks the AST
// generically: any struct field of type lang.Pos is zeroed, and Pragma.Raw
// is cleared (it preserves the original spelling, which printing
// legitimately canonicalizes).
func normalizeAST(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if !v.IsNil() {
			normalizeAST(v.Elem())
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			normalizeAST(v.Index(i))
		}
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(lang.Pos{}) {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		if v.Type() == reflect.TypeOf(lang.Pragma{}) {
			v.FieldByName("Raw").SetString("")
		}
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				normalizeAST(f)
			}
		}
	}
}

// roundTrip asserts parse → print → parse is the identity on the AST
// (modulo positions) and that printing is a fixed point.
func roundTrip(t *testing.T, name, src string) {
	t.Helper()
	first, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	printed := lang.Print(first)
	second, err := lang.Parse(printed)
	if err != nil {
		t.Fatalf("%s: reparse of printed source: %v\n%s", name, err, printed)
	}
	if reprinted := lang.Print(second); reprinted != printed {
		t.Fatalf("%s: printing is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", name, printed, reprinted)
	}
	normalizeAST(reflect.ValueOf(first))
	normalizeAST(reflect.ValueOf(second))
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("%s: AST changed across print/parse round trip\nsource:\n%s\nprinted:\n%s", name, src, printed)
	}
}

// TestParsePrintRoundTripProperty drives the round-trip property over a
// fuzz-seeded synthetic corpus: every template family, many seeds, plus
// every built-in benchmark suite. A failure here means the printer emits
// something the parser reads back differently — the exact bug class that
// silently corrupts annotated output.
func TestParsePrintRoundTripProperty(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	for _, seed := range []int64{1, 2, 3, 17, 99} {
		set := dataset.Generate(dataset.GenConfig{N: n, Seed: seed, Extended: true})
		for _, s := range set.Samples {
			roundTrip(t, s.Name, s.Source)
		}
	}
	for _, b := range dataset.PolyBench() {
		roundTrip(t, "polybench/"+b.Name, b.Source)
	}
	for _, b := range dataset.MiBench() {
		roundTrip(t, "mibench/"+b.Name, b.Source)
	}
	for _, b := range dataset.EvalBenchmarks() {
		roundTrip(t, "figure7/"+b.Name, b.Source)
	}
	// The tsvc suite is the extended-grammar stress set: structs with field
	// access, switch statements, calls, multi-dimensional arrays and every
	// non-canonical loop form must all survive the printer.
	for _, b := range dataset.TSVC() {
		roundTrip(t, "tsvc/"+b.Name, b.Source)
	}
}

// TestRoundTripWithPragmas covers the annotated-output shape: pragmas must
// survive the round trip with their factors intact.
func TestRoundTripWithPragmas(t *testing.T) {
	src := `
float a[1024];
float b[1024];
void kernel() {
    #pragma clang loop vectorize_width(8) interleave_count(2)
    for (int i = 0; i < 1024; i++) {
        a[i] = a[i] + b[i];
    }
}
`
	roundTrip(t, "pragmas", src)
}

// FuzzParsePrintRoundTrip lets the fuzzer hunt for printable programs the
// parser reads back differently. Seeds come from the synthetic generator;
// unparseable mutations are skipped (the property only speaks about valid
// programs).
func FuzzParsePrintRoundTrip(f *testing.F) {
	for _, s := range dataset.Generate(dataset.GenConfig{N: 8, Seed: 42, Extended: true}).Samples {
		f.Add(s.Source)
	}
	f.Add("int x; void f() { for (int i = 0; i < 8; i++) { x += i; } }")
	// One seed per extended-grammar construct, so mutations start from
	// structs, member stores, switches with fallthrough, breaks,
	// multi-dimensional subscripts and non-canonical loop headers.
	for _, src := range []string{
		"struct p { float x; float y; }; struct p v[8]; void f() { for (int i = 0; i < 8; i++) { v[i].x = v[i].y; } }",
		"struct r { int lo; int hi; }; struct r s; int a[8]; void f() { s.lo = 1; a[0] = s.hi; }",
		"int a[8]; int b[8]; void f() { for (int i = 0; i < 8; i++) { switch (b[i]) { case 0: a[i] = 1; break; case 1: case 2: a[i] = 2; break; default: a[i] = 3; break; } } }",
		"int a[8]; void f() { for (int i = 0; i < 8; i++) { if (a[i]) { break; } a[i] = i; } }",
		"int m[4][4][4]; void f() { for (int i = 0; i < 4; i++) { for (int j = 0; j < 4; j++) { m[i][j][0] = m[i][j][1]; } } }",
		"int a[64]; void f() { for (int i = 62; i >= 0; i -= 2) { a[i] = a[i + 1]; } }",
		"int a[64]; void f() { for (int i = 1; i != 64; i = i * 2) { a[i] = i; } }",
		"float a[8]; float b[8]; void f() { for (int i = 0; i < 8; i++) { a[i] = sqrtf(max(b[i], 0.0)); } }",
		"int a[8]; void f() { for (int i = 0; i < 8; i++) { a[transform(i)] = helper(a[i], i); } }",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		first, err := lang.Parse(src)
		if err != nil {
			t.Skip()
		}
		printed := lang.Print(first)
		second, err := lang.Parse(printed)
		if err != nil {
			t.Fatalf("printed source does not reparse: %v\n%s", err, printed)
		}
		normalizeAST(reflect.ValueOf(first))
		normalizeAST(reflect.ValueOf(second))
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("AST changed across round trip\nsource:\n%s\nprinted:\n%s", src, printed)
		}
	})
}
