// Package lang implements a small C-like language front end: a lexer, a
// recursive-descent parser, an AST, and a source printer. The language covers
// the subset of C that appears in the NeuroVectorizer training corpus: global
// array, scalar, and struct declarations, functions, for loops (with
// clang-style loop pragmas, including non-canonical and imperfectly nested
// forms), if/else, switch/case/break, function calls, assignments (including
// compound assignment), ternary expressions, casts, struct field access, and
// multi-dimensional array indexing.
//
// The front end is the first stage of the reproduction pipeline: source text
// is parsed here, lowered to the loop IR by package lower, and vectorized and
// simulated downstream. Pragmas of the form
//
//	#pragma clang loop vectorize_width(VF) interleave_count(IF)
//
// are first-class: the lexer recognises them and the parser attaches them to
// the following for statement, mirroring how clang consumes vectorization
// hints.
package lang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Single-character operators use their own kinds rather than a
// catch-all so the parser can switch on Kind without string comparisons.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT
	PRAGMA // a full "#pragma ..." line, payload in Token.Text

	// Keywords.
	KwFor
	KwIf
	KwElse
	KwReturn
	KwInt
	KwFloat
	KwDouble
	KwChar
	KwShort
	KwLong
	KwVoid
	KwUnsigned
	KwConst
	KwStatic
	KwAttribute // __attribute__
	KwStruct
	KwSwitch
	KwCase
	KwDefault
	KwBreak

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semicolon
	Comma
	Question
	Colon
	Dot

	// Operators.
	Assign     // =
	PlusAssign // +=
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign
	PipeAssign
	CaretAssign
	ShlAssign
	ShrAssign

	PlusPlus   // ++
	MinusMinus // --

	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal", PRAGMA: "#pragma",
	KwFor: "for", KwIf: "if", KwElse: "else", KwReturn: "return",
	KwInt: "int", KwFloat: "float", KwDouble: "double", KwChar: "char",
	KwShort: "short", KwLong: "long", KwVoid: "void", KwUnsigned: "unsigned",
	KwConst: "const", KwStatic: "static", KwAttribute: "__attribute__",
	KwStruct: "struct", KwSwitch: "switch", KwCase: "case",
	KwDefault: "default", KwBreak: "break",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semicolon: ";", Comma: ",",
	Question: "?", Colon: ":", Dot: ".",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=",
	PipeAssign: "|=", CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	PlusPlus: "++", MinusMinus: "--",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"for": KwFor, "if": KwIf, "else": KwElse, "return": KwReturn,
	"int": KwInt, "float": KwFloat, "double": KwDouble, "char": KwChar,
	"short": KwShort, "long": KwLong, "void": KwVoid,
	"unsigned": KwUnsigned, "const": KwConst, "static": KwStatic,
	"__attribute__": KwAttribute,
	"struct":        KwStruct, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "break": KwBreak,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT, INTLIT, FLOATLIT, PRAGMA
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	case PRAGMA:
		return fmt.Sprintf("#pragma(%q)", t.Text)
	default:
		return t.Kind.String()
	}
}

// IsType reports whether the token starts a type name.
func (t Token) IsType() bool {
	switch t.Kind {
	case KwInt, KwFloat, KwDouble, KwChar, KwShort, KwLong, KwVoid, KwUnsigned:
		return true
	}
	return false
}

// IsAssignOp reports whether the token is an assignment operator (= or a
// compound form such as +=).
func (t Token) IsAssignOp() bool {
	switch t.Kind {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}
