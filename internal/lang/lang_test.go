package lang

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("int x = 42; // comment\nfloat y = 3.5f;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Kind{KwInt, IDENT, Assign, INTLIT, Semicolon, KwFloat, IDENT, Assign, FLOATLIT, Semicolon, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := map[string]Kind{
		"+": Plus, "-": Minus, "*": Star, "/": Slash, "%": Percent,
		"+=": PlusAssign, "-=": MinusAssign, "*=": StarAssign,
		"<<": Shl, ">>": Shr, "<<=": ShlAssign, ">>=": ShrAssign,
		"<": Lt, "<=": Le, ">": Gt, ">=": Ge, "==": EqEq, "!=": NotEq,
		"&&": AndAnd, "||": OrOr, "&": Amp, "|": Pipe, "^": Caret,
		"~": Tilde, "!": Bang, "++": PlusPlus, "--": MinusMinus,
		"?": Question, ":": Colon,
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %s, want %s", src, toks[0].Kind, want)
		}
	}
}

func TestTokenizePragma(t *testing.T) {
	src := "#pragma clang loop vectorize_width(4) interleave_count(2)\nfor(;;){}"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != PRAGMA {
		t.Fatalf("first token: got %s, want PRAGMA", toks[0].Kind)
	}
	if !strings.Contains(toks[0].Text, "vectorize_width(4)") {
		t.Errorf("pragma text = %q", toks[0].Text)
	}
}

func TestTokenizeSkipsOtherDirectives(t *testing.T) {
	toks, err := Tokenize("#include <stdio.h>\n#define N 100\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KwInt {
		t.Fatalf("got %s, want int keyword after skipping directives", toks[0])
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("/* block\ncomment */ int /* inline */ x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KwInt || toks[1].Kind != IDENT {
		t.Fatalf("unexpected tokens: %v", toks)
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	if _, err := Tokenize("/* never closed"); err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestTokenizeHexLiteral(t *testing.T) {
	toks, err := Tokenize("0xFF")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INTLIT || toks[0].Text != "0xFF" {
		t.Fatalf("got %v", toks[0])
	}
}

const dotProductSrc = `
int vec[512] __attribute__((aligned(16)));
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`

func TestParseDotProduct(t *testing.T) {
	prog, err := Parse(dotProductSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "vec" {
		t.Fatalf("globals = %+v", prog.Globals)
	}
	if got := prog.Globals[0].Type.Dims; len(got) != 1 || got[0] != 512 {
		t.Fatalf("dims = %v", got)
	}
	fn := prog.Func("example1")
	if fn == nil {
		t.Fatal("function example1 not found")
	}
	loops := fn.Loops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	inner := fn.InnermostLoops()
	if len(inner) != 1 || inner[0] != loops[0] {
		t.Fatal("innermost loop detection failed")
	}
}

func TestParsePragmaAttachment(t *testing.T) {
	src := `
int a[100];
int b[100];
void f() {
    #pragma clang loop vectorize_width(8) interleave_count(4)
    for (int i = 0; i < 100; i++) {
        a[i] = b[i];
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loops := prog.Func("f").Loops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops", len(loops))
	}
	pr := loops[0].Pragma
	if pr == nil || pr.VF != 8 || pr.IF != 4 {
		t.Fatalf("pragma = %+v", pr)
	}
}

func TestParsePragmaMustPrecedeFor(t *testing.T) {
	src := `
void f() {
    #pragma clang loop vectorize_width(8)
    int x = 0;
}
`
	if _, err := Parse(src); err == nil {
		t.Fatal("expected error: loop pragma not followed by for")
	}
}

func TestParseNestedLoops(t *testing.T) {
	src := `
float A[64][64];
float B[64][64];
float C[64][64];
void matmul() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            float sum = 0;
            for (int k = 0; k < 64; k++) {
                sum += A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("matmul")
	if got := len(fn.Loops()); got != 3 {
		t.Fatalf("loops = %d, want 3", got)
	}
	inner := fn.InnermostLoops()
	if len(inner) != 1 {
		t.Fatalf("innermost = %d, want 1", len(inner))
	}
	if inner[0].Label != "L2" {
		t.Errorf("innermost label = %s, want L2", inner[0].Label)
	}
}

func TestParseTernaryAndPredicates(t *testing.T) {
	src := `
int a[200];
int b[200];
void clampit(int MAX) {
    for (int i = 0; i < 200; i++) {
        int j = a[i];
        b[i] = j > MAX ? MAX : 0;
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("clampit").Loops()[0].Body
	if len(body.Stmts) != 2 {
		t.Fatalf("body stmts = %d", len(body.Stmts))
	}
	as, ok := body.Stmts[1].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", body.Stmts[1])
	}
	if _, ok := as.RHS.(*CondExpr); !ok {
		t.Fatalf("RHS is %T, want CondExpr", as.RHS)
	}
}

func TestParseCasts(t *testing.T) {
	src := `
short sa[64];
int ia[64];
void conv() {
    for (int i = 0; i < 64; i++) {
        ia[i] = (int) sa[i];
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Func("conv").Loops()[0].Body.Stmts[0].(*AssignStmt)
	c, ok := as.RHS.(*CastExpr)
	if !ok {
		t.Fatalf("RHS is %T, want CastExpr", as.RHS)
	}
	if c.To != TypeInt {
		t.Errorf("cast to %s, want int", c.To)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := "int f() { return 1 + 2 * 3 << 1 | 4 & 2; }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	// Top-level operator must be | with lowest precedence among those used.
	be, ok := ret.Value.(*BinaryExpr)
	if !ok || be.Op != Pipe {
		t.Fatalf("top-level op = %v", ret.Value)
	}
}

func TestParseCompoundAssignOps(t *testing.T) {
	src := `
int a[10];
void f() {
    for (int i = 0; i < 10; i++) {
        a[i] += 1;
        a[i] -= 2;
        a[i] *= 3;
        a[i] <<= 1;
        a[i] &= 7;
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Func("f").Loops()[0].Body.Stmts
	wantOps := []Kind{PlusAssign, MinusAssign, StarAssign, ShlAssign, AmpAssign}
	if len(stmts) != len(wantOps) {
		t.Fatalf("got %d stmts", len(stmts))
	}
	for i, s := range stmts {
		if s.(*AssignStmt).Op != wantOps[i] {
			t.Errorf("stmt %d op = %s, want %s", i, s.(*AssignStmt).Op, wantOps[i])
		}
	}
}

func TestParseErrorsHavePosition(t *testing.T) {
	_, err := Parse("int f() { return ; }")
	if err != nil {
		t.Fatalf("empty return should parse: %v", err)
	}
	_, err = Parse("int f() { x y z }")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pos.Line != 1 {
		t.Errorf("error line = %d", pe.Pos.Line)
	}
}

func TestParsePragmaHelper(t *testing.T) {
	pr := ParsePragma("#pragma clang loop vectorize_width(16) interleave_count(2)")
	if pr == nil || pr.VF != 16 || pr.IF != 2 {
		t.Fatalf("pragma = %+v", pr)
	}
	if ParsePragma("#pragma once") != nil {
		t.Fatal("non-loop pragma should return nil")
	}
	only := ParsePragma("#pragma clang loop vectorize_width(2)")
	if only == nil || only.VF != 2 || only.IF != 0 {
		t.Fatalf("pragma = %+v", only)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		dotProductSrc,
		`
double x[128];
double y[128];
void saxpy(double alpha) {
    #pragma clang loop vectorize_width(4) interleave_count(2)
    for (int i = 0; i < 128; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}
`,
		`
int a[64];
void cond() {
    for (int i = 0; i < 64; i++) {
        if (a[i] > 10) {
            a[i] = 10;
        } else {
            a[i] = 0;
        }
    }
}
`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse 1: %v\n%s", err, src)
		}
		out := Print(p1)
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("parse 2 (round trip): %v\noutput:\n%s", err, out)
		}
		out2 := Print(p2)
		if out != out2 {
			t.Errorf("print not idempotent:\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	}
}

func TestPrintPreservesPragma(t *testing.T) {
	src := `
int a[32];
void f() {
    #pragma clang loop vectorize_width(8) interleave_count(2)
    for (int i = 0; i < 32; i++) {
        a[i] = i;
    }
}
`
	prog := MustParse(src)
	out := Print(prog)
	if !strings.Contains(out, "vectorize_width(8)") || !strings.Contains(out, "interleave_count(2)") {
		t.Fatalf("printed output lost pragma:\n%s", out)
	}
}

func TestScalarTypeProperties(t *testing.T) {
	if TypeChar.Size() != 1 || TypeShort.Size() != 2 || TypeInt.Size() != 4 ||
		TypeLong.Size() != 8 || TypeFloat.Size() != 4 || TypeDouble.Size() != 8 {
		t.Fatal("type sizes wrong")
	}
	if !TypeFloat.IsFloat() || TypeInt.IsFloat() {
		t.Fatal("IsFloat wrong")
	}
	if !TypeChar.IsInteger() || TypeDouble.IsInteger() {
		t.Fatal("IsInteger wrong")
	}
}

func TestWalkExprVisitsAll(t *testing.T) {
	prog := MustParse("int f(int n) { return n > 0 ? n * 2 + 1 : -n; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	count := 0
	WalkExpr(ret.Value, func(Expr) bool { count++; return true })
	// CondExpr, (n>0): Binary+2 idents/lits, then: 2 binaries + 2 leaves... just check > 5.
	if count < 8 {
		t.Errorf("WalkExpr visited %d nodes, want >= 8", count)
	}
}

func TestLoopLabelsAreStable(t *testing.T) {
	src := `
void f() {
    for (int i = 0; i < 4; i++) { }
    for (int j = 0; j < 4; j++) { }
}
`
	prog := MustParse(src)
	loops := prog.Func("f").Loops()
	if loops[0].Label != "L0" || loops[1].Label != "L1" {
		t.Fatalf("labels = %s, %s", loops[0].Label, loops[1].Label)
	}
}

func TestParseUnknownBoundLoop(t *testing.T) {
	src := `
int a[1024];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] + 1;
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Func("f").Loops()[0]
	cond, ok := loop.Cond.(*BinaryExpr)
	if !ok || cond.Op != Lt {
		t.Fatalf("cond = %v", loop.Cond)
	}
	if id, ok := cond.Y.(*Ident); !ok || id.Name != "n" {
		t.Fatalf("bound = %v", cond.Y)
	}
}

func TestParseStridedLoop(t *testing.T) {
	src := `
int a[512];
int b[512];
void f() {
    for (int i = 0; i < 256; i++) {
        a[i] = b[2 * i + 1];
    }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseForWithCompoundPost(t *testing.T) {
	src := `
int a[100];
void f() {
    for (int i = 0; i < 100; i += 2) {
        a[i] = 0;
        a[i + 1] = 1;
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	post, ok := prog.Func("f").Loops()[0].Post.(*AssignStmt)
	if !ok || post.Op != PlusAssign {
		t.Fatalf("post = %+v", prog.Func("f").Loops()[0].Post)
	}
}

func TestPrintElseIfChain(t *testing.T) {
	src := `
int a[64];
void f(int x) {
    for (int i = 0; i < 64; i++) {
        if (a[i] > 10) {
            a[i] = 10;
        } else if (a[i] > 5) {
            a[i] = 5;
        } else if (a[i] > 0) {
            a[i] = 1;
        } else {
            a[i] = 0;
        }
    }
}
`
	p1 := MustParse(src)
	out := Print(p1)
	if !strings.Contains(out, "} else if (") {
		t.Fatalf("else-if chain not preserved:\n%s", out)
	}
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("printed else-if chain does not reparse: %v\n%s", err, out)
	}
	if Print(p2) != out {
		t.Fatalf("print not idempotent for else-if chain:\n%s\nvs\n%s", out, Print(p2))
	}
}

func TestPrintElseIfWithoutFinalElse(t *testing.T) {
	src := `
int a[8];
void f() {
    if (a[0] > 1) {
        a[0] = 1;
    } else if (a[1] > 2) {
        a[1] = 2;
    }
}
`
	p1 := MustParse(src)
	out := Print(p1)
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if Print(p2) != out {
		t.Fatal("not idempotent")
	}
}
