package lang

import (
	"fmt"
	"regexp"
	"strconv"
)

// Parser is a recursive-descent parser for the mini-C language.
type Parser struct {
	toks     []Token
	pos      int
	loopSeq  int
	filename string
}

// ParseError describes a syntax error with its position.
type ParseError struct {
	File string
	Pos  Pos
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Parse parses a translation unit from source text.
func Parse(src string) (*Program, error) { return ParseFile("", src) }

// ParseFile parses src, attributing errors to filename.
func ParseFile(filename, src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, filename: filename}
	return p.parseProgram()
}

// MustParse parses src and panics on error. Intended for tests and for
// generated sources that are correct by construction.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) peekKind(n int) Kind {
	if p.pos+n >= len(p.toks) {
		return EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) errorf(format string, args ...any) error {
	return &ParseError{File: p.filename, Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != EOF {
		// File-scope pragmas (e.g. "#pragma once") are ignored; loop pragmas
		// only make sense inside functions.
		if p.cur().Kind == PRAGMA {
			p.next()
			continue
		}
		// Skip storage-class and qualifier keywords.
		for p.cur().Kind == KwStatic || p.cur().Kind == KwConst {
			p.next()
		}
		// "struct Name { ... };" defines a type; "struct Name var..." is a
		// global with a struct element type.
		if p.cur().Kind == KwStruct && p.peekKind(2) == LBrace {
			sd, err := p.parseStructDecl()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, sd)
			continue
		}
		if !p.cur().IsType() && p.cur().Kind != KwStruct {
			return nil, p.errorf("expected declaration, found %s", p.cur())
		}
		ty, err := p.parseDeclType()
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == LParen {
			if ty.IsStruct() {
				return nil, p.errorf("functions cannot return struct types")
			}
			fn, err := p.parseFuncRest(ty.Scalar, nameTok)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		g, err := p.parseGlobalRest(ty, nameTok)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

// parseStructDecl parses "struct Name { T field; ... };". Fields are scalar
// declarators only — no arrays, nested structs, or pointers — so every field
// of every element is an independent storage location.
func (p *Parser) parseStructDecl() (*StructDecl, error) {
	tok, err := p.expect(KwStruct)
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: nameTok.Text, Pos: tok.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errorf("unterminated struct declaration")
		}
		ft, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		fname, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == LBracket {
			return nil, p.errorf("struct fields must be scalars (array field %q)", fname.Text)
		}
		sd.Fields = append(sd.Fields, Field{Name: fname.Text, Type: ft})
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
	}
	p.next() // consume }
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return sd, nil
}

// parseDeclType parses the element type of a declarator: either a scalar
// type name or "struct Name".
func (p *Parser) parseDeclType() (Type, error) {
	if p.cur().Kind == KwStruct {
		p.next()
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return Type{}, err
		}
		return Type{StructName: nameTok.Text}, nil
	}
	st, err := p.parseTypeName()
	return Type{Scalar: st}, err
}

// parseTypeName parses a scalar type name, accepting "unsigned" and "long"
// prefixes ("unsigned int" -> int, "long long" -> long).
func (p *Parser) parseTypeName() (ScalarType, error) {
	unsigned := false
	if p.cur().Kind == KwUnsigned {
		unsigned = true
		p.next()
	}
	switch p.cur().Kind {
	case KwVoid:
		p.next()
		return TypeVoid, nil
	case KwChar:
		p.next()
		return TypeChar, nil
	case KwShort:
		p.next()
		p.accept(KwInt) // "short int"
		return TypeShort, nil
	case KwInt:
		p.next()
		return TypeInt, nil
	case KwLong:
		p.next()
		p.accept(KwLong) // "long long"
		p.accept(KwInt)  // "long int"
		return TypeLong, nil
	case KwFloat:
		p.next()
		return TypeFloat, nil
	case KwDouble:
		p.next()
		return TypeDouble, nil
	}
	if unsigned {
		// bare "unsigned" means unsigned int
		return TypeInt, nil
	}
	return TypeVoid, p.errorf("expected type name, found %s", p.cur())
}

// skipAttribute consumes an __attribute__((...)) sequence if present.
func (p *Parser) skipAttribute() error {
	for p.cur().Kind == KwAttribute {
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return err
		}
		depth := 1
		for depth > 0 {
			switch p.cur().Kind {
			case LParen:
				depth++
			case RParen:
				depth--
			case EOF:
				return p.errorf("unterminated __attribute__")
			}
			p.next()
		}
	}
	return nil
}

func (p *Parser) parseGlobalRest(ty Type, name Token) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: name.Text, Type: ty, Pos: name.Pos}
	for p.cur().Kind == LBracket {
		p.next()
		dimTok, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		dim, err := strconv.ParseInt(dimTok.Text, 0, 64)
		if err != nil {
			return nil, p.errorf("bad array dimension %q", dimTok.Text)
		}
		g.Type.Dims = append(g.Type.Dims, dim)
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	if err := p.skipAttribute(); err != nil {
		return nil, err
	}
	if p.accept(Assign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g.Init = init
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseFuncRest(ret ScalarType, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Return: ret, Pos: name.Pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != RParen {
		if p.cur().Kind == KwVoid && p.peekKind(1) == RParen {
			p.next()
		} else {
			for {
				pt, err := p.parseDeclType()
				if err != nil {
					return nil, err
				}
				pn, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				param := Param{Name: pn.Text, Type: pt}
				for p.cur().Kind == LBracket {
					p.next()
					if p.cur().Kind == INTLIT {
						d, _ := strconv.ParseInt(p.next().Text, 0, 64)
						param.Type.Dims = append(param.Type.Dims, d)
					} else {
						param.Type.Dims = append(param.Type.Dims, 0) // T a[]
					}
					if _, err := p.expect(RBracket); err != nil {
						return nil, err
					}
				}
				fn.Params = append(fn.Params, param)
				if !p.accept(Comma) {
					break
				}
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	open, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: open.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.next() // consume }
	return blk, nil
}

var pragmaRe = regexp.MustCompile(`#\s*pragma\s+clang\s+loop\b(.*)$`)
var vfRe = regexp.MustCompile(`vectorize_width\s*\(\s*(\d+)\s*\)`)
var ifRe = regexp.MustCompile(`interleave_count\s*\(\s*(\d+)\s*\)`)

// ParsePragma parses the text of a "#pragma clang loop ..." line. It returns
// nil if the line is a pragma of some other kind.
func ParsePragma(text string) *Pragma {
	m := pragmaRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	pr := &Pragma{Raw: text}
	if vm := vfRe.FindStringSubmatch(m[1]); vm != nil {
		pr.VF, _ = strconv.Atoi(vm[1])
	}
	if im := ifRe.FindStringSubmatch(m[1]); im != nil {
		pr.IF, _ = strconv.Atoi(im[1])
	}
	return pr
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case PRAGMA:
		tok := p.next()
		pr := ParsePragma(tok.Text)
		// A loop pragma must be followed by a for statement; other pragmas
		// are silently dropped, like an unknown pragma in a C compiler.
		if pr == nil {
			return nil, nil
		}
		// Allow stacked pragmas; the innermost (last) one wins per clause.
		for p.cur().Kind == PRAGMA {
			if more := ParsePragma(p.next().Text); more != nil {
				if more.VF > 0 {
					pr.VF = more.VF
				}
				if more.IF > 0 {
					pr.IF = more.IF
				}
			}
		}
		if p.cur().Kind != KwFor {
			return nil, p.errorf("loop pragma must precede a for statement, found %s", p.cur())
		}
		fs, err := p.parseFor()
		if err != nil {
			return nil, err
		}
		fs.Pragma = pr
		return fs, nil
	case KwFor:
		return p.parseFor()
	case KwIf:
		return p.parseIf()
	case KwSwitch:
		return p.parseSwitch()
	case KwBreak:
		tok := p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: tok.Pos}, nil
	case KwReturn:
		tok := p.next()
		rs := &ReturnStmt{Pos: tok.Pos}
		if p.cur().Kind != Semicolon {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return rs, nil
	case LBrace:
		return p.parseBlock()
	case Semicolon:
		p.next()
		return nil, nil
	}
	if p.cur().IsType() || p.cur().Kind == KwConst || p.cur().Kind == KwStruct {
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return s, nil
}

// parseDecl parses "T name [= expr]" without the trailing semicolon.
func (p *Parser) parseDecl() (Stmt, error) {
	p.accept(KwConst)
	ty, err := p.parseDeclType()
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: nameTok.Text, Type: ty, Pos: nameTok.Pos}
	for p.cur().Kind == LBracket {
		p.next()
		dimTok, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		dim, _ := strconv.ParseInt(dimTok.Text, 0, 64)
		d.Type.Dims = append(d.Type.Dims, dim)
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(Assign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// without the trailing semicolon. It is used for statement positions and for
// the init/post clauses of for loops.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.cur().IsAssignOp():
		op := p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isLValue(lhs) {
			return nil, &ParseError{File: p.filename, Pos: op.Pos, Msg: "left side of assignment is not assignable"}
		}
		return &AssignStmt{Op: op.Kind, LHS: lhs, RHS: rhs, Pos: op.Pos}, nil
	case p.cur().Kind == PlusPlus || p.cur().Kind == MinusMinus:
		op := p.next()
		if !isLValue(lhs) {
			return nil, &ParseError{File: p.filename, Pos: op.Pos, Msg: "operand of ++/-- is not assignable"}
		}
		return &IncDecStmt{X: lhs, Dec: op.Kind == MinusMinus, Pos: op.Pos}, nil
	}
	return &ExprStmt{X: lhs, Pos: lhs.nodePos()}, nil
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *Ident, *IndexExpr, *MemberExpr:
		return true
	}
	return false
}

// parseSwitch parses a C switch. Each arm's trailing "break;" is folded into
// CaseClause.HasBreak; an arm without one falls through, as in C. A break
// anywhere else inside an arm is a parse-level statement and is rejected
// later by sema (conditional breaks inside switch arms are unsupported).
func (p *Parser) parseSwitch() (*SwitchStmt, error) {
	tok, err := p.expect(KwSwitch)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	ss := &SwitchStmt{Tag: tag, Pos: tok.Pos}
	for p.cur().Kind == KwCase || p.cur().Kind == KwDefault {
		ctok := p.next()
		cc := &CaseClause{Pos: ctok.Pos}
		if ctok.Kind == KwCase {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cc.Value = v
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		for {
			k := p.cur().Kind
			if k == KwCase || k == KwDefault || k == RBrace {
				break
			}
			if k == EOF {
				return nil, p.errorf("unterminated switch statement")
			}
			if k == KwBreak {
				p.next()
				if _, err := p.expect(Semicolon); err != nil {
					return nil, err
				}
				cc.HasBreak = true
				break
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				cc.Body = append(cc.Body, s)
			}
		}
		ss.Cases = append(ss.Cases, cc)
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return ss, nil
}

func (p *Parser) parseFor() (*ForStmt, error) {
	forTok, err := p.expect(KwFor)
	if err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: forTok.Pos, Label: fmt.Sprintf("L%d", p.loopSeq)}
	p.loopSeq++
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != Semicolon {
		var init Stmt
		if p.cur().IsType() {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		fs.Init = init
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != Semicolon {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != RParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	var body *BlockStmt
	if p.cur().Kind == LBrace {
		body, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	} else {
		// Single-statement body; wrap in a block.
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = &BlockStmt{Pos: fs.Pos}
		if s != nil {
			body.Stmts = []Stmt{s}
		}
	}
	fs.Body = body
	return fs, nil
}

func (p *Parser) parseIf() (*IfStmt, error) {
	ifTok, err := p.expect(KwIf)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	var then *BlockStmt
	if p.cur().Kind == LBrace {
		then, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	} else {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		then = &BlockStmt{Pos: ifTok.Pos}
		if s != nil {
			then.Stmts = []Stmt{s}
		}
	}
	is := &IfStmt{Cond: cond, Then: then, Pos: ifTok.Pos}
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = els
		} else if p.cur().Kind == LBrace {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			is.Else = els
		} else {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk := &BlockStmt{Pos: ifTok.Pos}
			if s != nil {
				blk.Stmts = []Stmt{s}
			}
			is.Else = blk
		}
	}
	return is, nil
}

// ---- Expression parsing (precedence climbing) ----

// binaryPrec returns the binding power of a binary operator token, or 0 if
// the token is not a binary operator. Higher binds tighter, matching C.
func binaryPrec(k Kind) int {
	switch k {
	case Star, Slash, Percent:
		return 10
	case Plus, Minus:
		return 9
	case Shl, Shr:
		return 8
	case Lt, Gt, Le, Ge:
		return 7
	case EqEq, NotEq:
		return 6
	case Amp:
		return 5
	case Caret:
		return 4
	case Pipe:
		return 3
	case AndAnd:
		return 2
	case OrOr:
		return 1
	}
	return 0
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != Question {
		return cond, nil
	}
	qTok := p.next()
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Pos: qTok.Pos}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binaryPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, Pos: op.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Minus, Bang, Tilde, Plus:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op.Kind == Plus {
			return x, nil
		}
		return &UnaryExpr{Op: op.Kind, X: x, Pos: op.Pos}, nil
	case LParen:
		// Could be a cast "(int) x" or a parenthesised expression.
		if p.toks[p.pos+1].IsType() || (p.toks[p.pos+1].Kind == KwUnsigned) {
			lp := p.next()
			st, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{To: st, X: x, Pos: lp.Pos}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Base: x, Index: idx, Pos: lb.Pos}
		case Dot:
			d := p.next()
			f, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{Base: x, Field: f.Text, Pos: d.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case IDENT:
		tok := p.next()
		if p.cur().Kind == LParen {
			p.next()
			call := &CallExpr{Fun: tok.Text, Pos: tok.Pos}
			if p.cur().Kind != RParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: tok.Text, Pos: tok.Pos}, nil
	case INTLIT:
		tok := p.next()
		v, err := strconv.ParseInt(tok.Text, 0, 64)
		if err != nil {
			return nil, &ParseError{File: p.filename, Pos: tok.Pos, Msg: fmt.Sprintf("bad integer literal %q", tok.Text)}
		}
		return &IntLit{Value: v, Pos: tok.Pos}, nil
	case FLOATLIT:
		tok := p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, &ParseError{File: p.filename, Pos: tok.Pos, Msg: fmt.Sprintf("bad float literal %q", tok.Text)}
		}
		return &FloatLit{Value: v, Text: tok.Text, Pos: tok.Pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("expected expression, found %s", p.cur())
}
