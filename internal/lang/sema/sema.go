// Package sema implements semantic analysis for the mini-C frontend: symbol
// resolution with scoped tables, type checking, definite-declaration checks,
// constant-expression folding, array-shape and constant-subscript bounds
// checking, and loop-canonicality classification.
//
// Check is a pure function from a parsed program to two outputs:
//
//   - a deterministic diag.List of findings (errors reject the program under
//     the core's strict mode; warnings and notes only annotate), and
//   - a Facts table of per-loop proofs (constant trip counts, affine
//     subscript form, distinct-array storage) that downstream passes — in
//     particular the dependence analysis in internal/deps — may rely on to
//     accept provably safe loops they would otherwise reject.
//
// The analysis never panics on any parseable input; FuzzSemaNoPanic holds it
// to that.
package sema

import (
	"fmt"

	"neurovec/internal/diag"
	"neurovec/internal/lang"
)

// Diagnostic codes emitted by Check. Codes are stable and append-only; the
// catalog with examples lives in docs/DIAGNOSTICS.md.
const (
	CodeUndeclared     = "SEMA0001" // use of an undeclared identifier
	CodeRedeclared     = "SEMA0002" // redeclaration in the same scope
	CodeVoidVar        = "SEMA0003" // variable or parameter of type void
	CodeNotAnArray     = "SEMA0004" // subscript applied to a scalar
	CodeRankMismatch   = "SEMA0005" // wrong number of subscripts for array rank
	CodeOutOfBounds    = "SEMA0006" // constant subscript outside declared bounds
	CodeArrayAsScalar  = "SEMA0007" // array name used where a scalar is required
	CodeArity          = "SEMA0008" // wrong argument count in a call
	CodeDivByZero      = "SEMA0009" // constant division or remainder by zero
	CodeNonIntegerOp   = "SEMA0010" // float operand where an integer is required
	CodeReturnMismatch = "SEMA0011" // return value disagrees with function type
	CodeNarrowing      = "SEMA0012" // implicit float-to-integer conversion
	CodeNonCanonical   = "SEMA0013" // loop not in canonical induction form
	CodeIVMutation     = "SEMA0014" // induction variable mutated in loop body
	CodeUnused         = "SEMA0015" // local variable never read
	CodeUninitUse      = "SEMA0016" // local scalar read before first assignment
	CodeUnknownStruct  = "SEMA0017" // reference to an undeclared struct type
	CodeUnknownField   = "SEMA0018" // field access on a non-struct or unknown field
	CodeStructAsScalar = "SEMA0019" // struct value used where a scalar is required
	CodeBadSwitch      = "SEMA0020" // non-integer tag, non-constant or duplicate case
	CodeBadBreak       = "SEMA0021" // break outside a loop, or conditional in a switch arm
	CodeEarlyExit      = "SEMA0022" // loop exits early via break; disables vectorization
)

// Info is the result of checking one program.
type Info struct {
	// Diags holds every finding in deterministic order (diag.List.Sort).
	Diags diag.List
	// Facts holds the per-loop proofs established during checking.
	Facts *Facts
}

// Check analyses a parsed program, attributing diagnostics to file. It is
// safe for concurrent callers and never mutates the AST.
func Check(file string, p *lang.Program) *Info {
	c := &checker{
		file: file, facts: &Facts{},
		funcs:   map[string]*lang.FuncDecl{},
		structs: map[string]*lang.StructDecl{},
	}
	if p != nil {
		c.run(p)
	}
	c.diags.Sort()
	return &Info{Diags: c.diags, Facts: c.facts}
}

type symKind int

const (
	symGlobal symKind = iota
	symParam
	symLocal
)

// symbol is one named entity in scope.
type symbol struct {
	name     string
	typ      lang.Type
	kind     symKind
	pos      lang.Pos
	used     bool // read at least once
	assigned bool // definitely assigned at the current walk point
	isConst  bool // holds a known constant value at the current walk point
	constVal int64
	poison   bool // synthesised for an undeclared name to stop cascades
}

// value is the checked result of an expression: its type plus, when the
// expression denotes (part of) a named array, enough shape information to
// diagnose rank errors precisely.
type value struct {
	typ      lang.Type
	arr      string // array name when the value originates from an array
	rank     int    // declared rank of that array
	subs     int    // subscripts applied so far
	isConst  bool
	constVal int64
}

func (v value) isArray() bool { return v.typ.IsArray() }

// loopState tracks one enclosing for loop while its body is checked.
type loopState struct {
	label     string
	iv        string
	mutated   bool
	earlyExit bool // body contains a break bound to this loop
}

// breakable context kinds, innermost last: a break binds to the top entry.
const (
	inLoop      = 'L'
	inSwitchArm = 'S'
)

type checker struct {
	file  string
	diags diag.List
	facts *Facts

	funcs      map[string]*lang.FuncDecl
	structs    map[string]*lang.StructDecl
	scopes     []map[string]*symbol
	fn         *lang.FuncDecl
	loops      []*loopState // innermost last
	breakables []byte       // enclosing break targets, innermost last
}

func (c *checker) report(sev diag.Severity, code string, pos lang.Pos, msg, hint string) {
	c.diags = append(c.diags, diag.Diagnostic{
		Severity: sev, Code: code, File: c.file,
		Line: pos.Line, Col: pos.Col, Message: msg, Hint: hint,
	})
}

func (c *checker) errorf(code string, pos lang.Pos, format string, args ...any) {
	c.report(diag.Error, code, pos, fmt.Sprintf(format, args...), "")
}

func (c *checker) warnf(code string, pos lang.Pos, format string, args ...any) {
	c.report(diag.Warning, code, pos, fmt.Sprintf(format, args...), "")
}

// ---- Scopes ----

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*symbol{}) }

// popScope leaves a scope, reporting locals that were never read.
func (c *checker) popScope() {
	top := c.scopes[len(c.scopes)-1]
	c.scopes = c.scopes[:len(c.scopes)-1]
	var unused []*symbol
	for _, s := range top {
		if s.kind == symLocal && !s.used && !s.poison {
			unused = append(unused, s)
		}
	}
	// Map iteration order is random; sort by position for determinism.
	for i := range unused {
		for j := i + 1; j < len(unused); j++ {
			a, b := unused[i], unused[j]
			if b.pos.Line < a.pos.Line || (b.pos.Line == a.pos.Line && b.pos.Col < a.pos.Col) {
				unused[i], unused[j] = unused[j], unused[i]
			}
		}
	}
	for _, s := range unused {
		c.warnf(CodeUnused, s.pos, "variable %q declared but never read", s.name)
	}
}

func (c *checker) declare(name string, typ lang.Type, kind symKind, pos lang.Pos) *symbol {
	top := c.scopes[len(c.scopes)-1]
	if prev, ok := top[name]; ok && !prev.poison {
		c.errorf(CodeRedeclared, pos, "%q redeclared in this scope (previous declaration at %s)", name, prev.pos)
	}
	s := &symbol{name: name, typ: typ, kind: kind, pos: pos}
	top[name] = s
	return s
}

func (c *checker) lookup(name string) *symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// resolve returns the symbol for an identifier use, synthesising a poison
// symbol (and reporting SEMA0001) when the name is not in scope.
func (c *checker) resolve(id *lang.Ident) *symbol {
	if s := c.lookup(id.Name); s != nil {
		return s
	}
	c.errorf(CodeUndeclared, id.Pos, "undeclared identifier %q", id.Name)
	s := &symbol{
		name: id.Name, typ: lang.Type{Scalar: lang.TypeInt}, kind: symLocal,
		pos: id.Pos, poison: true, assigned: true, used: true,
	}
	c.scopes[len(c.scopes)-1][id.Name] = s
	return s
}

// ---- Program walk ----

func (c *checker) run(p *lang.Program) {
	c.pushScope() // file scope
	for _, sd := range p.Structs {
		if prev, dup := c.structs[sd.Name]; dup {
			c.errorf(CodeRedeclared, sd.Pos, "struct %q redefined (previous definition at %s)", sd.Name, prev.Pos)
			continue
		}
		c.structs[sd.Name] = sd
		seen := map[string]bool{}
		for _, f := range sd.Fields {
			if f.Type == lang.TypeVoid {
				c.errorf(CodeVoidVar, sd.Pos, "field %q of struct %q declared void", f.Name, sd.Name)
			}
			if seen[f.Name] {
				c.errorf(CodeRedeclared, sd.Pos, "field %q duplicated in struct %q", f.Name, sd.Name)
			}
			seen[f.Name] = true
		}
	}
	for _, g := range p.Globals {
		if !g.Type.IsStruct() && g.Type.Scalar == lang.TypeVoid {
			c.errorf(CodeVoidVar, g.Pos, "variable %q declared void", g.Name)
		}
		c.checkStructRef(g.Type, g.Pos)
		s := c.declare(g.Name, g.Type, symGlobal, g.Pos)
		s.assigned = true
		if g.Init != nil {
			v := c.checkExpr(g.Init)
			c.requireScalar(v, posOf(g.Init))
			if v.isConst && !g.Type.IsArray() {
				s.isConst, s.constVal = true, v.constVal
			}
		}
	}
	for _, f := range p.Funcs {
		if prev, dup := c.funcs[f.Name]; dup {
			c.errorf(CodeRedeclared, f.Pos, "function %q redefined (previous definition at %s)", f.Name, prev.Pos)
			continue
		}
		c.funcs[f.Name] = f
	}
	for _, f := range p.Funcs {
		if c.funcs[f.Name] != f {
			continue // duplicate definition already reported
		}
		c.checkFunc(f)
	}
	c.scopes = c.scopes[:len(c.scopes)-1] // globals: no unused reporting
}

func (c *checker) checkFunc(f *lang.FuncDecl) {
	c.fn = f
	c.pushScope()
	for _, prm := range f.Params {
		if !prm.Type.IsStruct() && prm.Type.Scalar == lang.TypeVoid && !prm.Type.IsArray() {
			c.errorf(CodeVoidVar, f.Pos, "parameter %q of %q declared void", prm.Name, f.Name)
		}
		c.checkStructRef(prm.Type, f.Pos)
		s := c.declare(prm.Name, prm.Type, symParam, f.Pos)
		s.assigned = true
	}
	if f.Body != nil {
		c.checkBlock(f.Body)
	}
	c.popScope()
	c.fn = nil
}

func (c *checker) checkBlock(b *lang.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.DeclStmt:
		if !st.Type.IsStruct() && st.Type.Scalar == lang.TypeVoid {
			c.errorf(CodeVoidVar, st.Pos, "variable %q declared void", st.Name)
		}
		c.checkStructRef(st.Type, st.Pos)
		if st.Type.IsStruct() && st.Init != nil {
			c.errorf(CodeStructAsScalar, st.Pos, "cannot initialise struct variable %q with a scalar expression", st.Name)
		}
		var init value
		if st.Init != nil && !st.Type.IsStruct() {
			init = c.checkExpr(st.Init)
			c.requireScalar(init, st.Pos)
			c.checkNarrowing(st.Type, init, st.Init, st.Pos)
		}
		sym := c.declare(st.Name, st.Type, symLocal, st.Pos)
		if st.Type.IsArray() || st.Type.IsStruct() {
			sym.assigned = true // arrays and structs are storage, not flow-checked values
		} else if st.Init != nil {
			sym.assigned = true
			if init.isConst {
				sym.isConst, sym.constVal = true, init.constVal
			}
		}

	case *lang.AssignStmt:
		c.checkAssign(st)

	case *lang.IncDecStmt:
		c.checkIncDec(st)

	case *lang.ExprStmt:
		c.checkExpr(st.X)

	case *lang.ForStmt:
		c.checkFor(st)

	case *lang.IfStmt:
		cond := c.checkExpr(st.Cond)
		c.requireScalar(cond, st.Pos)
		c.invalidateBranchConsts(st.Then)
		c.checkBlock(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}

	case *lang.ReturnStmt:
		ret := lang.TypeVoid
		if c.fn != nil {
			ret = c.fn.Return
		}
		switch {
		case st.Value == nil && ret != lang.TypeVoid:
			c.errorf(CodeReturnMismatch, st.Pos, "return with no value in function returning %s", ret)
		case st.Value != nil && ret == lang.TypeVoid:
			c.errorf(CodeReturnMismatch, st.Pos, "return with a value in void function")
		case st.Value != nil:
			v := c.checkExpr(st.Value)
			c.requireScalar(v, st.Pos)
		}

	case *lang.BlockStmt:
		c.checkBlock(st)

	case *lang.SwitchStmt:
		c.checkSwitch(st)

	case *lang.BreakStmt:
		c.checkBreak(st)
	}
}

// checkStructRef reports declarators whose element type names an undeclared
// struct.
func (c *checker) checkStructRef(t lang.Type, pos lang.Pos) {
	if t.IsStruct() {
		if _, ok := c.structs[t.StructName]; !ok {
			c.errorf(CodeUnknownStruct, pos, "undeclared struct type %q", t.StructName)
		}
	}
}

// checkSwitch checks a switch statement: integer tag, constant and distinct
// case values, at most one default, and each arm as a conditional branch.
func (c *checker) checkSwitch(st *lang.SwitchStmt) {
	tag := c.checkExpr(st.Tag)
	c.requireScalar(tag, posOf(st.Tag))
	if !tag.typ.IsStruct() && tag.typ.Scalar.IsFloat() {
		c.errorf(CodeBadSwitch, posOf(st.Tag), "switch tag must be an integer, got %s", tag.typ.Scalar)
	}
	seen := map[int64]lang.Pos{}
	defaults := 0
	for _, cc := range st.Cases {
		if cc.Value == nil {
			defaults++
			if defaults > 1 {
				c.errorf(CodeBadSwitch, cc.Pos, "multiple default arms in switch")
			}
		} else {
			v := c.checkExpr(cc.Value)
			c.requireScalar(v, cc.Pos)
			if cv, ok := c.evalConst(cc.Value); !ok {
				c.errorf(CodeBadSwitch, cc.Pos, "case value is not a constant expression")
			} else if prev, dup := seen[cv]; dup {
				c.errorf(CodeBadSwitch, cc.Pos, "duplicate case value %d (previous arm at %s)", cv, prev)
			} else {
				seen[cv] = cc.Pos
			}
		}
		// Each arm executes conditionally: forget constant knowledge for
		// variables it assigns, like an if branch.
		armBlock := &lang.BlockStmt{Stmts: cc.Body, Pos: cc.Pos}
		c.invalidateBranchConsts(armBlock)
		c.breakables = append(c.breakables, inSwitchArm)
		c.checkBlock(armBlock)
		c.breakables = c.breakables[:len(c.breakables)-1]
	}
}

// checkBreak binds a break statement to its innermost target. Trailing breaks
// of switch arms are folded into CaseClause.HasBreak by the parser, so a
// BreakStmt whose innermost breakable is a switch arm is a conditional break
// within the arm — unsupported, because lowering cannot predicate it.
func (c *checker) checkBreak(st *lang.BreakStmt) {
	if len(c.breakables) == 0 {
		c.errorf(CodeBadBreak, st.Pos, "break statement outside a loop or switch")
		return
	}
	if c.breakables[len(c.breakables)-1] == inSwitchArm {
		c.errorf(CodeBadBreak, st.Pos, "break inside a switch arm must be the arm's final statement")
		return
	}
	ls := c.loops[len(c.loops)-1]
	if !ls.earlyExit {
		ls.earlyExit = true
		c.warnf(CodeEarlyExit, st.Pos,
			"loop %s exits early via break; its trip count is not provable and it will not be vectorized", ls.label)
	}
}

// checkAssign handles plain and compound assignment, reduction-style updates
// included.
func (c *checker) checkAssign(st *lang.AssignStmt) {
	rhs := c.checkExpr(st.RHS)
	c.requireScalar(rhs, st.Pos)

	switch lhs := st.LHS.(type) {
	case *lang.Ident:
		sym := c.resolve(lhs)
		if sym.typ.IsArray() {
			c.errorf(CodeArrayAsScalar, lhs.Pos, "cannot assign to array %q as a whole", lhs.Name)
			return
		}
		if st.Op != lang.Assign {
			// Compound assignment reads the previous value.
			c.noteRead(sym, lhs.Pos)
			c.checkIntegerOnlyAssign(st.Op, sym.typ.Scalar, rhs, st.Pos)
		}
		c.checkNarrowing(sym.typ, rhs, st.RHS, st.Pos)
		c.noteMutation(sym, st.Pos)
		sym.assigned = true
		if st.Op == lang.Assign && rhs.isConst {
			sym.isConst, sym.constVal = true, rhs.constVal
		} else {
			sym.isConst = false
		}
	case *lang.IndexExpr:
		v := c.checkExpr(lhs)
		c.requireScalar(v, lhs.Pos)
		if st.Op != lang.Assign {
			c.checkIntegerOnlyAssign(st.Op, v.typ.Scalar, rhs, st.Pos)
		}
		c.checkNarrowing(v.typ, rhs, st.RHS, st.Pos)
	case *lang.MemberExpr:
		v := c.checkExpr(lhs)
		if st.Op != lang.Assign {
			c.checkIntegerOnlyAssign(st.Op, v.typ.Scalar, rhs, st.Pos)
		}
		c.checkNarrowing(v.typ, rhs, st.RHS, st.Pos)
	default:
		v := c.checkExpr(st.LHS)
		c.requireScalar(v, st.Pos)
	}
}

func (c *checker) checkIncDec(st *lang.IncDecStmt) {
	switch x := st.X.(type) {
	case *lang.Ident:
		sym := c.resolve(x)
		if sym.typ.IsArray() {
			c.errorf(CodeArrayAsScalar, x.Pos, "cannot increment array %q", x.Name)
			return
		}
		c.noteRead(sym, x.Pos)
		c.noteMutation(sym, st.Pos)
		sym.assigned = true
		sym.isConst = false
	default:
		v := c.checkExpr(st.X)
		c.requireScalar(v, st.Pos)
	}
}

// noteMutation flags writes to an enclosing loop's induction variable.
func (c *checker) noteMutation(sym *symbol, pos lang.Pos) {
	for _, ls := range c.loops {
		if ls.iv == sym.name {
			ls.mutated = true
			c.warnf(CodeIVMutation, pos, "induction variable %q of loop %s mutated in loop body", sym.name, ls.label)
		}
	}
}

// noteRead records a read of a symbol, reporting use-before-assignment for
// local scalars.
func (c *checker) noteRead(sym *symbol, pos lang.Pos) {
	sym.used = true
	if sym.kind == symLocal && !sym.typ.IsArray() && !sym.assigned {
		c.warnf(CodeUninitUse, pos, "variable %q may be read before it is assigned", sym.name)
		sym.assigned = true // report once
	}
}

// invalidateBranchConsts drops constant-value knowledge for every variable
// assigned anywhere in a conditionally executed subtree: after `if (c) n = 4;`
// the checker no longer knows n. Declarations inside the branch are scoped to
// it and need no invalidation.
func (c *checker) invalidateBranchConsts(body lang.Stmt) {
	lang.Walk(body, func(s lang.Stmt) bool {
		var name string
		switch st := s.(type) {
		case *lang.AssignStmt:
			if id, ok := st.LHS.(*lang.Ident); ok {
				name = id.Name
			}
		case *lang.IncDecStmt:
			if id, ok := st.X.(*lang.Ident); ok {
				name = id.Name
			}
		}
		if name != "" {
			if sym := c.lookup(name); sym != nil {
				sym.isConst = false
			}
		}
		return true
	})
}

// ---- Expressions ----

func (c *checker) checkExpr(e lang.Expr) value {
	switch ex := e.(type) {
	case *lang.IntLit:
		return value{typ: lang.Type{Scalar: lang.TypeInt}, isConst: true, constVal: ex.Value}

	case *lang.FloatLit:
		return value{typ: lang.Type{Scalar: lang.TypeDouble}}

	case *lang.Ident:
		sym := c.resolve(ex)
		c.noteRead(sym, ex.Pos)
		v := value{typ: sym.typ}
		if sym.typ.IsArray() {
			v.arr, v.rank = sym.name, len(sym.typ.Dims)
		}
		if sym.isConst {
			v.isConst, v.constVal = true, sym.constVal
		}
		return v

	case *lang.IndexExpr:
		return c.checkIndex(ex)

	case *lang.BinaryExpr:
		return c.checkBinary(ex)

	case *lang.UnaryExpr:
		x := c.checkExpr(ex.X)
		c.requireScalar(x, ex.Pos)
		if ex.Op == lang.Tilde && x.typ.Scalar.IsFloat() {
			c.errorf(CodeNonIntegerOp, ex.Pos, "operator ~ requires an integer operand, got %s", x.typ.Scalar)
		}
		out := value{typ: x.typ}
		if x.isConst {
			switch ex.Op {
			case lang.Minus:
				out.isConst, out.constVal = true, -x.constVal
			case lang.Plus:
				out.isConst, out.constVal = true, x.constVal
			case lang.Tilde:
				out.isConst, out.constVal = true, ^x.constVal
			case lang.Bang:
				out.isConst = true
				if x.constVal == 0 {
					out.constVal = 1
				}
			}
		}
		if ex.Op == lang.Bang {
			out.typ = lang.Type{Scalar: lang.TypeInt}
		}
		return out

	case *lang.CallExpr:
		return c.checkCall(ex)

	case *lang.MemberExpr:
		return c.checkMember(ex)

	case *lang.CondExpr:
		cond := c.checkExpr(ex.Cond)
		c.requireScalar(cond, ex.Pos)
		t := c.checkExpr(ex.Then)
		f := c.checkExpr(ex.Else)
		c.requireScalar(t, ex.Pos)
		c.requireScalar(f, ex.Pos)
		out := value{typ: lang.Type{Scalar: promote(t.typ.Scalar, f.typ.Scalar)}}
		if cond.isConst && t.isConst && f.isConst {
			out.isConst = true
			if cond.constVal != 0 {
				out.constVal = t.constVal
			} else {
				out.constVal = f.constVal
			}
		}
		return out

	case *lang.CastExpr:
		x := c.checkExpr(ex.X)
		c.requireScalar(x, ex.Pos)
		out := value{typ: lang.Type{Scalar: ex.To}}
		if x.isConst && ex.To.IsInteger() {
			out.isConst, out.constVal = true, x.constVal
		}
		return out
	}
	return value{typ: lang.Type{Scalar: lang.TypeInt}}
}

// checkIndex checks one subscript application a[i] (chained for a[i][j]).
func (c *checker) checkIndex(ex *lang.IndexExpr) value {
	base := c.checkExpr(ex.Base)
	idx := c.checkExpr(ex.Index)
	c.requireScalar(idx, ex.Pos)
	if idx.typ.Scalar.IsFloat() {
		c.report(diag.Error, CodeNonIntegerOp, posOf(ex.Index),
			fmt.Sprintf("array subscript must be an integer, got %s", idx.typ.Scalar),
			"cast the subscript with (int)")
	}

	if !base.isArray() {
		if base.arr != "" {
			c.errorf(CodeRankMismatch, ex.Pos, "array %q has %d dimension(s) but is subscripted %d time(s)",
				base.arr, base.rank, base.subs+1)
		} else {
			c.errorf(CodeNotAnArray, ex.Pos, "subscript applied to non-array value of type %s", base.typ)
		}
		return value{typ: lang.Type{Scalar: base.typ.Scalar}, arr: base.arr, rank: base.rank, subs: base.subs + 1}
	}

	dim := base.typ.Dims[0]
	if idx.isConst && dim > 0 && (idx.constVal < 0 || idx.constVal >= dim) {
		c.report(diag.Error, CodeOutOfBounds, posOf(ex.Index),
			fmt.Sprintf("constant subscript %d out of bounds for array %q dimension of size %d",
				idx.constVal, base.arr, dim),
			fmt.Sprintf("valid indices are 0..%d", dim-1))
	}
	return value{
		typ:  lang.Type{Scalar: base.typ.Scalar, StructName: base.typ.StructName, Dims: base.typ.Dims[1:]},
		arr:  base.arr,
		rank: base.rank,
		subs: base.subs + 1,
	}
}

// checkMember checks a field access base.field. The base must denote a
// struct value: a struct variable, or a struct array subscripted down to one
// element.
func (c *checker) checkMember(ex *lang.MemberExpr) value {
	base := c.checkExpr(ex.Base)
	if base.typ.IsArray() {
		c.errorf(CodeUnknownField, ex.Pos, "field access on array %q; subscript it down to one element first", base.arr)
		return value{typ: lang.Type{Scalar: lang.TypeInt}}
	}
	if !base.typ.IsStruct() {
		c.errorf(CodeUnknownField, ex.Pos, "field access on non-struct value of type %s", base.typ)
		return value{typ: lang.Type{Scalar: lang.TypeInt}}
	}
	sd, ok := c.structs[base.typ.StructName]
	if !ok {
		// The undeclared struct type was reported at the declaration site.
		return value{typ: lang.Type{Scalar: lang.TypeInt}}
	}
	fld := sd.Field(ex.Field)
	if fld == nil {
		c.errorf(CodeUnknownField, ex.Pos, "struct %q has no field %q", sd.Name, ex.Field)
		return value{typ: lang.Type{Scalar: lang.TypeInt}}
	}
	return value{typ: lang.Type{Scalar: fld.Type}}
}

func (c *checker) checkBinary(ex *lang.BinaryExpr) value {
	x := c.checkExpr(ex.X)
	y := c.checkExpr(ex.Y)
	c.requireScalar(x, ex.Pos)
	c.requireScalar(y, ex.Pos)

	switch ex.Op {
	case lang.Percent, lang.Shl, lang.Shr, lang.Amp, lang.Pipe, lang.Caret:
		if x.typ.Scalar.IsFloat() || y.typ.Scalar.IsFloat() {
			c.errorf(CodeNonIntegerOp, ex.Pos, "operator %s requires integer operands, got %s and %s",
				ex.Op, x.typ.Scalar, y.typ.Scalar)
		}
	}
	if (ex.Op == lang.Slash || ex.Op == lang.Percent) && y.isConst && y.constVal == 0 {
		c.errorf(CodeDivByZero, ex.Pos, "constant division by zero")
	}

	switch ex.Op {
	case lang.Lt, lang.Gt, lang.Le, lang.Ge, lang.EqEq, lang.NotEq, lang.AndAnd, lang.OrOr:
		out := value{typ: lang.Type{Scalar: lang.TypeInt}}
		if x.isConst && y.isConst {
			out.isConst, out.constVal = true, foldCompare(ex.Op, x.constVal, y.constVal)
		}
		return out
	}

	out := value{typ: lang.Type{Scalar: promote(x.typ.Scalar, y.typ.Scalar)}}
	if x.isConst && y.isConst {
		if v, ok := foldArith(ex.Op, x.constVal, y.constVal); ok {
			out.isConst, out.constVal = true, v
		}
	}
	return out
}

// builtinArity maps the recognised math builtins to their argument count;
// these lower to vector-friendly ops rather than opaque calls.
var builtinArity = map[string]int{
	"min": 2, "max": 2,
	"abs": 1, "fabs": 1, "fabsf": 1,
	"sqrt": 1, "sqrtf": 1,
}

func (c *checker) checkCall(ex *lang.CallExpr) value {
	args := make([]value, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.checkExpr(a)
		// Arrays decay to pointers as arguments to non-builtin calls; only
		// the math builtins require scalar operands.
		if _, builtin := builtinArity[ex.Fun]; builtin {
			c.requireScalar(args[i], posOf(a))
		}
	}

	if want, ok := builtinArity[ex.Fun]; ok {
		if len(ex.Args) != want {
			c.errorf(CodeArity, ex.Pos, "%s expects %d argument(s), got %d", ex.Fun, want, len(ex.Args))
		}
		t := lang.TypeDouble
		switch ex.Fun {
		case "sqrtf", "fabsf":
			t = lang.TypeFloat
		case "min", "max", "abs", "fabs":
			t = lang.TypeInt
			for _, a := range args {
				t = promote(t, a.typ.Scalar)
			}
		}
		return value{typ: lang.Type{Scalar: t}}
	}
	if fn, ok := c.funcs[ex.Fun]; ok {
		if len(ex.Args) != len(fn.Params) {
			c.errorf(CodeArity, ex.Pos, "%q expects %d argument(s), got %d", ex.Fun, len(fn.Params), len(ex.Args))
		}
		return value{typ: lang.Type{Scalar: fn.Return}}
	}
	// Unknown functions are treated as opaque externals (the lowering pass
	// models them as unvectorizable calls); their result type is unknowable.
	return value{typ: lang.Type{Scalar: lang.TypeInt}}
}

// requireScalar reports uses of an array or struct value where a scalar is
// required.
func (c *checker) requireScalar(v value, pos lang.Pos) {
	if !v.isArray() {
		if v.typ.IsStruct() {
			c.errorf(CodeStructAsScalar, pos, "struct %s value used where a scalar is required; access a field instead", v.typ.StructName)
		}
		return
	}
	if v.subs > 0 {
		c.errorf(CodeRankMismatch, pos, "array %q has %d dimension(s) but is subscripted %d time(s)",
			v.arr, v.rank, v.subs)
	} else {
		c.errorf(CodeArrayAsScalar, pos, "array %q used where a scalar value is required", v.arr)
	}
}

// checkIntegerOnlyAssign rejects float operands of integer-only compound
// assignment operators (%=, <<=, >>=, &=, |=, ^=).
func (c *checker) checkIntegerOnlyAssign(op lang.Kind, lhs lang.ScalarType, rhs value, pos lang.Pos) {
	switch op {
	case lang.PercentAssign, lang.ShlAssign, lang.ShrAssign, lang.AmpAssign, lang.PipeAssign, lang.CaretAssign:
		if lhs.IsFloat() || rhs.typ.Scalar.IsFloat() {
			c.errorf(CodeNonIntegerOp, pos, "operator %s requires integer operands", op)
		}
		if (op == lang.PercentAssign) && rhs.isConst && rhs.constVal == 0 {
			c.errorf(CodeDivByZero, pos, "constant division by zero")
		}
	case lang.SlashAssign:
		if rhs.isConst && rhs.constVal == 0 {
			c.errorf(CodeDivByZero, pos, "constant division by zero")
		}
	}
}

// checkNarrowing warns about implicit float-to-integer stores, which drop
// the fractional part silently. Explicit casts opt out.
func (c *checker) checkNarrowing(lhs lang.Type, rhs value, rhsExpr lang.Expr, pos lang.Pos) {
	if lhs.IsArray() {
		lhs = lang.Type{Scalar: lhs.Scalar}
	}
	if !lhs.Scalar.IsInteger() || !rhs.typ.Scalar.IsFloat() {
		return
	}
	if _, explicit := rhsExpr.(*lang.CastExpr); explicit {
		return
	}
	c.report(diag.Warning, CodeNarrowing, pos,
		fmt.Sprintf("implicit conversion from %s to %s truncates", rhs.typ.Scalar, lhs.Scalar),
		fmt.Sprintf("use an explicit (%s) cast", lhs.Scalar))
}

// ---- Loops: canonicality classification and trip-count proofs ----

func (c *checker) checkFor(st *lang.ForStmt) {
	c.pushScope() // the init declaration's scope
	if st.Init != nil {
		c.checkStmt(st.Init)
	}

	iv, lo, loKnown, initOK := c.analyzeInit(st.Init)
	var ivSym *symbol
	if iv != "" {
		if ivSym = c.lookup(iv); ivSym != nil {
			// The induction variable varies; forget any constant value the
			// init assignment recorded.
			ivSym.isConst = false
		}
	}

	if st.Cond != nil {
		cond := c.checkExpr(st.Cond)
		c.requireScalar(cond, posOf(st.Cond))
	}
	step, down, stepOK := analyzeStep(c, st.Post, iv)
	if st.Post != nil {
		c.checkPost(st.Post, iv)
	}
	hi, hiKnown, inclusive, condOK := analyzeCond(c, st.Cond, iv, down)

	canonical := initOK && stepOK && condOK
	// Non-canonical loops are warnings, not errors: lowering keeps them as
	// conservatively modelled irregular loops that are never vectorized, so
	// the program still compiles end to end.
	switch {
	case !initOK:
		c.loopDiag(diag.Warning, CodeNonCanonical, st,
			"non-canonical loop %s: init clause does not establish an induction variable; the loop will not be vectorized", st.Label)
	case !stepOK:
		c.loopDiag(diag.Warning, CodeNonCanonical, st,
			"non-canonical loop %s: post clause does not step induction variable %q by a positive constant; the loop will not be vectorized", st.Label, iv)
	case !condOK:
		c.loopDiag(diag.Warning, CodeNonCanonical, st,
			"non-canonical loop %s: condition does not bound induction variable %q; trip count is unknown", st.Label, iv)
	}

	ls := &loopState{label: st.Label, iv: iv}
	c.loops = append(c.loops, ls)
	c.breakables = append(c.breakables, inLoop)
	c.checkBlock(st.Body)
	c.breakables = c.breakables[:len(c.breakables)-1]
	// Subscript-shape facts are judged while this loop is still on the
	// stack, so its own induction variable counts as affine.
	affine := c.affineSubscripts(st.Body)
	distinct := c.distinctArrays(st.Body)
	c.loops = c.loops[:len(c.loops)-1]

	fact := LoopFact{Label: st.Label, Canonical: canonical, IndexVar: iv, EarlyExit: ls.earlyExit}
	if c.fn != nil {
		fact.Func = c.fn.Name
	}
	// A break makes the static trip formula an upper bound, not an exact
	// count, so no trip proof is recorded for early-exit loops.
	if canonical && loKnown && hiKnown && !ls.mutated && !ls.earlyExit {
		// Re-derive step and bound after the body walk: an assignment inside
		// the body to a variable the bound or step folded through has cleared
		// its constant status (or changed its value), and the pre-body proof
		// no longer holds. lo needs no re-check — the init clause runs once,
		// before the body.
		step2, down2, stepOK2 := analyzeStep(c, st.Post, iv)
		hi2, hiKnown2, incl2, condOK2 := analyzeCond(c, st.Cond, iv, down2)
		if stepOK2 && condOK2 && hiKnown2 &&
			step2 == step && down2 == down && hi2 == hi && incl2 == inclusive {
			fact.TripProven = true
			fact.Trip = tripCount(lo, hi, step, down, inclusive)
		}
	}
	fact.AffineSubscripts = affine
	fact.DistinctArrays = distinct
	c.facts.set(fact)

	c.popScope()
}

// checkPost re-checks non-canonical post clauses: a canonical step (i++,
// i += c) was already validated structurally, and checking it as an ordinary
// statement would double-report reads of the induction variable.
func (c *checker) checkPost(post lang.Stmt, iv string) {
	switch po := post.(type) {
	case *lang.IncDecStmt:
		if id, ok := po.X.(*lang.Ident); ok && id.Name == iv {
			return
		}
	case *lang.AssignStmt:
		if id, ok := po.LHS.(*lang.Ident); ok && id.Name == iv {
			// Still surface problems inside the step expression itself.
			c.checkExpr(po.RHS)
			return
		}
	}
	c.checkStmt(post)
}

// loopDiag reports a diagnostic carrying the loop's stable label.
func (c *checker) loopDiag(sev diag.Severity, code string, st *lang.ForStmt, format string, args ...any) {
	c.diags = append(c.diags, diag.Diagnostic{
		Severity: sev, Code: code, File: c.file,
		Line: st.Pos.Line, Col: st.Pos.Col, Loop: st.Label,
		Message: fmt.Sprintf(format, args...),
	})
}

// analyzeInit mirrors the lowering pass's induction-variable extraction so
// sema's canonicality verdicts and trip proofs agree with what lower builds.
func (c *checker) analyzeInit(init lang.Stmt) (iv string, lo int64, known, ok bool) {
	switch in := init.(type) {
	case *lang.DeclStmt:
		if in.Type.IsArray() {
			return "", 0, false, false
		}
		if in.Init == nil {
			return in.Name, 0, false, true
		}
		v, okc := c.evalConst(in.Init)
		return in.Name, v, okc, true
	case *lang.AssignStmt:
		id, okx := in.LHS.(*lang.Ident)
		if !okx || in.Op != lang.Assign {
			return "", 0, false, false
		}
		v, okc := c.evalConst(in.RHS)
		return id.Name, v, okc, true
	}
	return "", 0, false, false
}

func analyzeStep(c *checker, post lang.Stmt, iv string) (step int64, down, ok bool) {
	if iv == "" {
		return 0, false, false
	}
	switch po := post.(type) {
	case *lang.IncDecStmt:
		if id, okx := po.X.(*lang.Ident); okx && id.Name == iv {
			return 1, po.Dec, true
		}
	case *lang.AssignStmt:
		id, okx := po.LHS.(*lang.Ident)
		if !okx || id.Name != iv {
			return 0, false, false
		}
		switch po.Op {
		case lang.PlusAssign:
			if v, okc := c.evalConst(po.RHS); okc && v > 0 {
				return v, false, true
			}
		case lang.MinusAssign:
			if v, okc := c.evalConst(po.RHS); okc && v > 0 {
				return v, true, true
			}
		case lang.Assign:
			if be, okb := po.RHS.(*lang.BinaryExpr); okb {
				if x, okx2 := be.X.(*lang.Ident); okx2 && x.Name == iv {
					if v, okc := c.evalConst(be.Y); okc && v > 0 {
						switch be.Op {
						case lang.Plus:
							return v, false, true
						case lang.Minus:
							return v, true, true
						}
					}
				}
			}
		}
	}
	return 0, false, false
}

func analyzeCond(c *checker, cond lang.Expr, iv string, down bool) (hi int64, known, inclusive, ok bool) {
	be, okb := cond.(*lang.BinaryExpr)
	if !okb || iv == "" {
		return 0, false, false, false
	}
	var bound lang.Expr
	op := be.Op
	if id, okx := be.X.(*lang.Ident); okx && id.Name == iv {
		bound = be.Y
	} else if id, oky := be.Y.(*lang.Ident); oky && id.Name == iv {
		bound = be.X
		switch op {
		case lang.Gt:
			op = lang.Lt
		case lang.Ge:
			op = lang.Le
		case lang.Lt:
			op = lang.Gt
		case lang.Le:
			op = lang.Ge
		}
	} else {
		return 0, false, false, false
	}
	switch {
	case !down && (op == lang.Lt || op == lang.Le):
		inclusive = op == lang.Le
	case down && (op == lang.Gt || op == lang.Ge):
		inclusive = op == lang.Ge
	case op == lang.NotEq:
		inclusive = false
	default:
		return 0, false, false, false
	}
	if v, okc := c.evalConst(bound); okc {
		return v, true, inclusive, true
	}
	if _, okid := bound.(*lang.Ident); okid {
		return 0, false, inclusive, true
	}
	return 0, false, inclusive, false
}

// tripCount matches the lowering pass's formula exactly; a proof that
// disagreed with what the IR carries would be worse than no proof.
func tripCount(lo, hi, step int64, down, inclusive bool) int64 {
	if step <= 0 {
		step = 1
	}
	var span int64
	if down {
		span = lo - hi
	} else {
		span = hi - lo
	}
	if inclusive {
		span++
	}
	if span <= 0 {
		return 0
	}
	return (span + step - 1) / step
}

// evalConst folds an integer constant expression using the checker's current
// knowledge of constant-valued variables.
func (c *checker) evalConst(e lang.Expr) (int64, bool) {
	switch ex := e.(type) {
	case *lang.IntLit:
		return ex.Value, true
	case *lang.Ident:
		if sym := c.lookup(ex.Name); sym != nil && sym.isConst {
			return sym.constVal, true
		}
	case *lang.UnaryExpr:
		v, ok := c.evalConst(ex.X)
		if !ok {
			return 0, false
		}
		switch ex.Op {
		case lang.Minus:
			return -v, true
		case lang.Plus:
			return v, true
		case lang.Tilde:
			return ^v, true
		}
	case *lang.BinaryExpr:
		x, okx := c.evalConst(ex.X)
		y, oky := c.evalConst(ex.Y)
		if okx && oky {
			return foldArithOrCompare(ex.Op, x, y)
		}
	case *lang.CastExpr:
		if ex.To.IsInteger() {
			return c.evalConst(ex.X)
		}
	}
	return 0, false
}

// ---- Per-loop fact helpers ----

// affineSubscripts reports whether every subscript in the loop body is an
// affine expression over enclosing induction variables and constants.
func (c *checker) affineSubscripts(body *lang.BlockStmt) bool {
	ivs := map[string]bool{}
	for _, ls := range c.loops {
		ivs[ls.iv] = true
	}
	affine := true
	lang.Walk(body, func(s lang.Stmt) bool {
		eachExpr(s, func(e lang.Expr) {
			lang.WalkExpr(e, func(sub lang.Expr) bool {
				if ix, ok := sub.(*lang.IndexExpr); ok {
					if !c.affineExpr(ix.Index, ivs) {
						affine = false
					}
				}
				return true
			})
		})
		return true
	})
	return affine
}

// affineExpr reports whether e is const + sum(const * iv) over ivs.
func (c *checker) affineExpr(e lang.Expr, ivs map[string]bool) bool {
	if _, ok := c.evalConst(e); ok {
		return true
	}
	switch ex := e.(type) {
	case *lang.Ident:
		return ivs[ex.Name]
	case *lang.UnaryExpr:
		return ex.Op == lang.Minus && c.affineExpr(ex.X, ivs)
	case *lang.BinaryExpr:
		switch ex.Op {
		case lang.Plus, lang.Minus:
			return c.affineExpr(ex.X, ivs) && c.affineExpr(ex.Y, ivs)
		case lang.Star:
			if _, ok := c.evalConst(ex.X); ok {
				return c.affineExpr(ex.Y, ivs)
			}
			if _, ok := c.evalConst(ex.Y); ok {
				return c.affineExpr(ex.X, ivs)
			}
		}
	}
	return false
}

// distinctArrays reports whether every array referenced in the loop body has
// its own storage (globals and locals; array parameters are pointers that
// could alias one another).
func (c *checker) distinctArrays(body *lang.BlockStmt) bool {
	distinct := true
	lang.Walk(body, func(s lang.Stmt) bool {
		eachExpr(s, func(e lang.Expr) {
			lang.WalkExpr(e, func(sub lang.Expr) bool {
				if id, ok := sub.(*lang.Ident); ok {
					if sym := c.lookup(id.Name); sym != nil && sym.typ.IsArray() && sym.kind == symParam {
						distinct = false
					}
				}
				return true
			})
		})
		return true
	})
	return distinct
}

// eachExpr visits the top-level expressions of one statement (not nested
// statements; lang.Walk handles those).
func eachExpr(s lang.Stmt, fn func(lang.Expr)) {
	switch st := s.(type) {
	case *lang.DeclStmt:
		if st.Init != nil {
			fn(st.Init)
		}
	case *lang.AssignStmt:
		fn(st.LHS)
		fn(st.RHS)
	case *lang.IncDecStmt:
		fn(st.X)
	case *lang.ExprStmt:
		fn(st.X)
	case *lang.ForStmt:
		if st.Cond != nil {
			fn(st.Cond)
		}
	case *lang.IfStmt:
		fn(st.Cond)
	case *lang.SwitchStmt:
		fn(st.Tag)
		for _, cc := range st.Cases {
			if cc.Value != nil {
				fn(cc.Value)
			}
		}
	case *lang.ReturnStmt:
		if st.Value != nil {
			fn(st.Value)
		}
	}
}

// ---- Folding helpers ----

func promote(a, b lang.ScalarType) lang.ScalarType {
	if b > a {
		return b
	}
	return a
}

func foldCompare(op lang.Kind, x, y int64) int64 {
	var b bool
	switch op {
	case lang.Lt:
		b = x < y
	case lang.Gt:
		b = x > y
	case lang.Le:
		b = x <= y
	case lang.Ge:
		b = x >= y
	case lang.EqEq:
		b = x == y
	case lang.NotEq:
		b = x != y
	case lang.AndAnd:
		b = x != 0 && y != 0
	case lang.OrOr:
		b = x != 0 || y != 0
	}
	if b {
		return 1
	}
	return 0
}

func foldArith(op lang.Kind, x, y int64) (int64, bool) {
	switch op {
	case lang.Plus:
		return x + y, true
	case lang.Minus:
		return x - y, true
	case lang.Star:
		return x * y, true
	case lang.Slash:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case lang.Percent:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case lang.Amp:
		return x & y, true
	case lang.Pipe:
		return x | y, true
	case lang.Caret:
		return x ^ y, true
	case lang.Shl:
		if y < 0 || y > 63 {
			return 0, false
		}
		return x << uint(y), true
	case lang.Shr:
		if y < 0 || y > 63 {
			return 0, false
		}
		return x >> uint(y), true
	}
	return 0, false
}

func foldArithOrCompare(op lang.Kind, x, y int64) (int64, bool) {
	switch op {
	case lang.Lt, lang.Gt, lang.Le, lang.Ge, lang.EqEq, lang.NotEq, lang.AndAnd, lang.OrOr:
		return foldCompare(op, x, y), true
	}
	return foldArith(op, x, y)
}

func posOf(e lang.Expr) lang.Pos {
	switch ex := e.(type) {
	case *lang.Ident:
		return ex.Pos
	case *lang.IntLit:
		return ex.Pos
	case *lang.FloatLit:
		return ex.Pos
	case *lang.BinaryExpr:
		return ex.Pos
	case *lang.UnaryExpr:
		return ex.Pos
	case *lang.IndexExpr:
		return ex.Pos
	case *lang.CallExpr:
		return ex.Pos
	case *lang.CondExpr:
		return ex.Pos
	case *lang.CastExpr:
		return ex.Pos
	case *lang.MemberExpr:
		return ex.Pos
	}
	return lang.Pos{}
}
