package sema

import (
	"testing"

	"neurovec/internal/dataset"
	"neurovec/internal/lang"
)

// FuzzSemaNoPanic holds sema to its contract: Check never panics on any
// parseable input. Seeds mirror the parser's round-trip fuzz corpus (the
// synthetic generator) plus handwritten pathological programs around the
// analyses most likely to trip — const folding, loop proofs, scoping.
func FuzzSemaNoPanic(f *testing.F) {
	for _, s := range dataset.Generate(dataset.GenConfig{N: 8, Seed: 42, Extended: true}).Samples {
		f.Add(s.Source)
	}
	for _, src := range []string{
		"int x; void f() { for (int i = 0; i < 8; i++) { x += i; } }",
		"void f() { int x = 1 / 0; x = x % 0; }",
		"void f() { for (;;) {} }",
		"void f() { for (int i = 0; i < 8; i++) for (int i = 0; i < 8; i++) {} }",
		"int a[1]; void f() { a[-1] = a[0 - 1]; }",
		"void f() { int n; for (int i = n; i < n; i = i + n) {} }",
		"float m[2][2]; void f() { m[m[0][0]][0] = 1.0; }",
		"void f() { int x = (int)1.5 + (char)300; }",
		"void f(int n) { if (n) { int n; } else { int n; } }",
		"void f() { return; } void f() { return; }",
		// Extended-grammar pathologies: struct misuse, member access on
		// non-structs, malformed switches, breaks outside loops, struct
		// recurrences and self-referential field chains.
		"struct p { int x; }; void f() { struct p v; v.y = 1; }",
		"struct p { int x; }; struct q w; void f() { w.x = 1; }",
		"int a[4]; void f() { a.x = 1; a[0] = a[1].y; }",
		"struct p { int x; }; struct p v; void f() { v = 3; int z = v + 1; }",
		"struct p { int x; int x; }; struct p v; void f() { v.x = v.x.x; }",
		"int a[4]; void f() { switch (a[0]) { case 0: case 0: a[1] = 1; default: a[2] = 2; default: a[3] = 3; } }",
		"int a[4]; void f(int n) { switch (n) { case n: a[0] = 1; break; } }",
		"void f() { break; } void g() { switch (1) { case 1: break; } break; }",
		"struct s { float v; }; struct s g[8]; void f() { for (int i = 0; i < 7; i++) { g[i + 1].v = g[i].v; if (g[i].v) { break; } } }",
		"int a[8]; void f() { for (int i = 8; i != 0; i = i / 2) { a[i - 1] = i; } for (int j = 0; ; j++) { a[0] = j; break; } }",
		"int m[2][2]; struct t { int u; }; struct t w[2]; void f() { for (int i = 0; i < 2; i += 3) { m[w[i].u][i] = w[m[i][i]].u; } }",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Skip()
		}
		info := Check("fuzz.c", prog)
		if info == nil {
			t.Fatal("Check returned nil info")
		}
		// The facts table must honor its own invariants even on garbage:
		// a proven trip is always positive.
		for _, d := range info.Diags {
			if d.Code == "" {
				t.Errorf("diagnostic without a code: %s", d.String())
			}
		}
	})
}
