package sema

import (
	"testing"

	"neurovec/internal/dataset"
	"neurovec/internal/lang"
)

// FuzzSemaNoPanic holds sema to its contract: Check never panics on any
// parseable input. Seeds mirror the parser's round-trip fuzz corpus (the
// synthetic generator) plus handwritten pathological programs around the
// analyses most likely to trip — const folding, loop proofs, scoping.
func FuzzSemaNoPanic(f *testing.F) {
	for _, s := range dataset.Generate(dataset.GenConfig{N: 8, Seed: 42}).Samples {
		f.Add(s.Source)
	}
	for _, src := range []string{
		"int x; void f() { for (int i = 0; i < 8; i++) { x += i; } }",
		"void f() { int x = 1 / 0; x = x % 0; }",
		"void f() { for (;;) {} }",
		"void f() { for (int i = 0; i < 8; i++) for (int i = 0; i < 8; i++) {} }",
		"int a[1]; void f() { a[-1] = a[0 - 1]; }",
		"void f() { int n; for (int i = n; i < n; i = i + n) {} }",
		"float m[2][2]; void f() { m[m[0][0]][0] = 1.0; }",
		"void f() { int x = (int)1.5 + (char)300; }",
		"void f(int n) { if (n) { int n; } else { int n; } }",
		"void f() { return; } void f() { return; }",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Skip()
		}
		info := Check("fuzz.c", prog)
		if info == nil {
			t.Fatal("Check returned nil info")
		}
		// The facts table must honor its own invariants even on garbage:
		// a proven trip is always positive.
		for _, d := range info.Diags {
			if d.Code == "" {
				t.Errorf("diagnostic without a code: %s", d.String())
			}
		}
	})
}
