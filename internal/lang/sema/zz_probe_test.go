package sema_test

import (
	"os"
	"testing"

	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
)

func TestStaleTripProbe(t *testing.T) {
	src, _ := os.ReadFile("/tmp/stale_trip.c")
	p, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := sema.Check("t.c", p)
	for _, lab := range []string{"L0", "L1"} {
		f, ok := info.Facts.Loop(lab)
		t.Logf("%s: ok=%v canonical=%v tripProven=%v trip=%d", lab, ok, f.Canonical, f.TripProven, f.Trip)
	}
	for _, d := range info.Diags {
		t.Logf("diag: %s", d.String())
	}
}
