package sema

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"neurovec/internal/lang"
)

var update = flag.Bool("update", false, "rewrite the diagnostics golden file")

// goldenSource exercises a broad slice of the code catalog in one program;
// the golden file pins the exact wire JSON — codes, positions, severities,
// hints, loop labels, and ordering — so any drift in the diagnostic surface
// is a reviewed change, not an accident.
const goldenSource = `int a[64];
float m[8][8];
struct pt { float x; float y; };
struct pt ps[16];
struct missing ms[4];
void kernel(int n) {
    void v;
    int dup;
    int dup;
    int x = missing + 1;
    int s;
    int w = s + a[99] + m[3];
    int q = a;
    int z = x / 0;
    float g = m[1.5][0];
    int r = min(1);
    float bad = ps[0].z + ps[1];
    return 3;
}
void loops() {
    for (int i = 10; i * 2; i = i * 2) { a[0] = 1; }
    for (int j = 0; j < 64; j++) { j = j + 2; a[j] = j; }
    for (int k = 0; k < 64; k++) { if (a[k] > 9) { break; } a[k] = k; }
    switch (a[0]) {
    case 1: a[1] = 1; break;
    case 1: a[2] = 2; break;
    }
    break;
}
`

func TestGoldenDiagnostics(t *testing.T) {
	prog, err := lang.ParseFile("golden.c", goldenSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := Check("golden.c", prog)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(info.Diags); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "diag_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("diagnostics drifted from golden file (run with -update to accept):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The golden program must keep covering a healthy slice of the catalog.
	codes := map[string]bool{}
	for _, d := range info.Diags {
		codes[d.Code] = true
	}
	if len(codes) < 10 {
		t.Errorf("golden program covers only %d distinct codes, want >= 10", len(codes))
	}
}

// TestGoldenRoundTrip asserts the wire JSON decodes back to the same list —
// the service's 422 body and the CLI's -json output both rely on it.
func TestGoldenRoundTrip(t *testing.T) {
	prog, err := lang.ParseFile("golden.c", goldenSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := Check("golden.c", prog)
	raw, err := json.Marshal(info.Diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back) != len(info.Diags) {
		t.Fatalf("round trip lost diagnostics: %d vs %d", len(back), len(info.Diags))
	}
	for i, d := range info.Diags {
		if back[i]["code"] != d.Code {
			t.Errorf("diag %d code = %v, want %s", i, back[i]["code"], d.Code)
		}
		if sev, _ := back[i]["severity"].(string); sev != d.Severity.String() {
			t.Errorf("diag %d severity = %q, want %q", i, sev, d.Severity.String())
		}
	}
}
