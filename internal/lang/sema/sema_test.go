package sema

import (
	"strings"
	"testing"

	"neurovec/internal/diag"
	"neurovec/internal/lang"
)

func check(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check("test.c", prog)
}

// TestDiagnosticCodes drives one minimal reproducer per diagnostic code and
// asserts the code fires at the expected position with the expected
// severity. Extra findings on the same program (e.g. an unused-variable
// warning riding along) are allowed; the named one must be present.
func TestDiagnosticCodes(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		code     string
		severity diag.Severity
		line     int
		col      int
	}{
		{"undeclared", "void f() { int x = y + 1; }", CodeUndeclared, diag.Error, 1, 20},
		{"redeclared", "void f() { int d = 0; int d = d + 1; }", CodeRedeclared, diag.Error, 1, 27},
		{"void-var", "void f() { void v; }", CodeVoidVar, diag.Error, 1, 17},
		{"not-an-array", "void f(int s) { int w = s[0]; return; }", CodeNotAnArray, diag.Error, 1, 26},
		{"rank-mismatch", "int a[8];\nvoid f() { int w = a[1][2]; }", CodeRankMismatch, diag.Error, 2, 24},
		{"out-of-bounds", "int a[8];\nvoid f() { a[8] = 1; }", CodeOutOfBounds, diag.Error, 2, 14},
		{"array-as-scalar", "int a[8];\nvoid f() { int q = a; }", CodeArrayAsScalar, diag.Error, 2, 16},
		{"arity", "void f() { int r = min(1); }", CodeArity, diag.Error, 1, 20},
		{"div-by-zero", "void f(int x) { int z = x / 0; }", CodeDivByZero, diag.Error, 1, 27},
		{"non-integer-subscript", "int a[8];\nvoid f() { a[1.5] = 1; }", CodeNonIntegerOp, diag.Error, 2, 14},
		{"return-mismatch", "void f() { return 3; }", CodeReturnMismatch, diag.Error, 1, 12},
		{"narrowing", "void f(float g) { int x = g; x = x + 1; }", CodeNarrowing, diag.Warning, 1, 23},
		{"non-canonical", "int a[8];\nvoid f() { for (int i = 8; i * 2; i = i * 2) { a[0] = i; } }", CodeNonCanonical, diag.Warning, 2, 12},
		{"unknown-struct", "struct p q;\nvoid f() { }", CodeUnknownStruct, diag.Error, 1, 10},
		{"unknown-field", "struct p { float x; };\nstruct p q;\nvoid f() { float w = q.y; w = w + 1; }", CodeUnknownField, diag.Error, 3, 23},
		{"struct-as-scalar", "struct p { float x; };\nstruct p q;\nvoid f() { float w = q + 1; w = w + 1; }", CodeStructAsScalar, diag.Error, 3, 24},
		{"bad-switch", "void f(int n) { switch (n) { case 0: case 0: break; } }", CodeBadSwitch, diag.Error, 1, 38},
		{"bad-break", "void f() { break; }", CodeBadBreak, diag.Error, 1, 12},
		{"early-exit", "int a[8];\nvoid f() { for (int i = 0; i < 8; i++) { if (a[i] > 3) { break; } a[i] = i; } }", CodeEarlyExit, diag.Warning, 2, 58},
		{"iv-mutation", "int a[64];\nvoid f() { for (int j = 0; j < 8; j++) { j = j + 2; a[j] = j; } }", CodeIVMutation, diag.Warning, 2, 44},
		{"unused", "void f() { int unused_one; }", CodeUnused, diag.Warning, 1, 16},
		{"uninit-use", "void f() { int s; int w = s + 1; w = w + 1; }", CodeUninitUse, diag.Warning, 1, 27},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info := check(t, tc.src)
			for _, d := range info.Diags {
				if d.Code != tc.code {
					continue
				}
				if d.Severity != tc.severity {
					t.Errorf("%s severity = %v, want %v", tc.code, d.Severity, tc.severity)
				}
				if d.Line != tc.line || d.Col != tc.col {
					t.Errorf("%s at %d:%d, want %d:%d", tc.code, d.Line, d.Col, tc.line, tc.col)
				}
				if d.File != "test.c" {
					t.Errorf("%s file = %q, want test.c", tc.code, d.File)
				}
				return
			}
			t.Fatalf("code %s not reported; got:\n%s", tc.code, info.Diags.String())
		})
	}
}

// TestCleanKernel asserts a canonical vectorizable kernel checks completely
// clean — the zero-noise contract the corpus sweep in CI relies on.
func TestCleanKernel(t *testing.T) {
	info := check(t, `
int a[1024];
int b[1024];
void saxpy(int alpha) {
    for (int i = 0; i < 1024; i++) {
        a[i] = alpha * b[i] + a[i];
    }
}
`)
	if len(info.Diags) != 0 {
		t.Errorf("clean kernel produced diagnostics:\n%s", info.Diags.String())
	}
}

// TestDeterministicOrder re-checks the same program and requires identical
// rendered output, and requires the list to be sorted by position.
func TestDeterministicOrder(t *testing.T) {
	src := `
int a[8];
void f() {
    int q = a;
    int x = y + 1;
    void v;
}
`
	first := check(t, src).Diags.String()
	for i := 0; i < 5; i++ {
		if got := check(t, src).Diags.String(); got != first {
			t.Fatalf("non-deterministic output:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, "SEMA0001") || !strings.Contains(first, "SEMA0003") || !strings.Contains(first, "SEMA0007") {
		t.Errorf("expected codes missing from:\n%s", first)
	}
	var prev *diag.Diagnostic
	for _, d := range check(t, src).Diags {
		d := d
		if prev != nil && (d.Line < prev.Line || (d.Line == prev.Line && d.Col < prev.Col)) {
			t.Errorf("diags not sorted: %s after %s", d.String(), prev.String())
		}
		prev = &d
	}
}

// TestLoopDiagnosticsCarryLabel asserts loop-scoped findings name the loop.
func TestLoopDiagnosticsCarryLabel(t *testing.T) {
	info := check(t, `
int a[64];
void f() {
    for (int i = 0; i < 8; i++) { a[i] = i; }
    for (int j = 8; j * 2; j = j * 2) { a[0] = j; }
}
`)
	found := false
	for _, d := range info.Diags {
		if d.Code == CodeNonCanonical {
			found = true
			if d.Loop != "L1" {
				t.Errorf("non-canonical diagnostic loop = %q, want L1", d.Loop)
			}
		}
	}
	if !found {
		t.Fatalf("no non-canonical diagnostic:\n%s", info.Diags.String())
	}
}

// TestFactsProvenTrip covers the proof side: constant-bound canonical loops
// get a proven trip count; loops whose bound variable mutates in the body,
// or whose induction variable is written, must not.
func TestFactsProvenTrip(t *testing.T) {
	t.Run("constant bounds", func(t *testing.T) {
		info := check(t, `
int a[64];
void f() {
    for (int i = 0; i < 64; i++) { a[i] = i; }
}
`)
		trip, ok := info.Facts.ProvenTrip("L0")
		if !ok || trip != 64 {
			t.Errorf("ProvenTrip(L0) = %d, %v; want 64, true", trip, ok)
		}
	})
	t.Run("folded bound variable", func(t *testing.T) {
		info := check(t, `
int a[64];
void f() {
    int n = 32;
    for (int i = 0; i < n; i++) { a[i] = i; }
}
`)
		trip, ok := info.Facts.ProvenTrip("L0")
		if !ok || trip != 32 {
			t.Errorf("ProvenTrip(L0) = %d, %v; want 32, true", trip, ok)
		}
	})
	t.Run("bound mutated in body", func(t *testing.T) {
		info := check(t, `
int a[64];
void f() {
    int n = 32;
    for (int i = 0; i < n; i++) { a[i] = i; n = n - 1; }
}
`)
		if trip, ok := info.Facts.ProvenTrip("L0"); ok {
			t.Errorf("ProvenTrip(L0) = %d proven despite body-mutated bound", trip)
		}
	})
	t.Run("induction variable mutated", func(t *testing.T) {
		info := check(t, `
int a[64];
void f() {
    for (int i = 0; i < 32; i++) { a[i] = i; i = i + 1; }
}
`)
		if trip, ok := info.Facts.ProvenTrip("L0"); ok {
			t.Errorf("ProvenTrip(L0) = %d proven despite mutated induction variable", trip)
		}
	})
	t.Run("symbolic bound", func(t *testing.T) {
		info := check(t, `
int a[64];
void f(int n) {
    for (int i = 0; i < n; i++) { a[i] = i; }
}
`)
		if trip, ok := info.Facts.ProvenTrip("L0"); ok {
			t.Errorf("ProvenTrip(L0) = %d proven for symbolic bound", trip)
		}
	})
}

// TestFactsShape covers the remaining fact fields on a two-loop program.
func TestFactsShape(t *testing.T) {
	info := check(t, `
int a[64];
int b[64];
void f() {
    for (int i = 0; i < 64; i++) { a[i] = b[i] + 1; }
}
`)
	fact, ok := info.Facts.Loop("L0")
	if !ok {
		t.Fatal("no fact for L0")
	}
	if !fact.Canonical || fact.IndexVar != "i" || fact.Func != "f" {
		t.Errorf("fact = %+v; want canonical i in f", fact)
	}
	if !fact.AffineSubscripts {
		t.Errorf("AffineSubscripts = false for a[i] = b[i] + 1")
	}
	if !fact.DistinctArrays {
		t.Errorf("DistinctArrays = false for two distinct arrays")
	}
	if info.Facts.Len() != 1 {
		t.Errorf("Facts.Len() = %d, want 1", info.Facts.Len())
	}
}

// TestNilSafety: nil program and nil Facts receivers must not panic.
func TestNilSafety(t *testing.T) {
	info := Check("x.c", nil)
	if info == nil || len(info.Diags) != 0 {
		t.Errorf("Check(nil) = %+v, want empty info", info)
	}
	var f *Facts
	if _, ok := f.ProvenTrip("L0"); ok {
		t.Error("nil Facts proved a trip")
	}
	if _, ok := f.Loop("L0"); ok {
		t.Error("nil Facts returned a loop fact")
	}
	if f.Len() != 0 {
		t.Error("nil Facts has nonzero length")
	}
}
