package sema

// LoopFact records what semantic analysis proved about one for loop. Facts
// are keyed by the parser's stable loop label (L0, L1, ...), the same key the
// lowered IR carries, so downstream passes can consume them without
// re-deriving anything from the AST.
type LoopFact struct {
	// Label is the parser-assigned loop label; Func the enclosing function.
	Label string
	Func  string
	// Canonical reports that the loop has the canonical induction form the
	// lowering pass understands: a recognisable induction variable, a
	// constant step, and a comparison bound.
	Canonical bool
	// IndexVar is the induction variable of a canonical loop.
	IndexVar string
	// TripProven is set when the trip count is a compile-time constant
	// proven from constant bounds and step, with the induction variable
	// never mutated in the loop body. Trip is that count. Unlike the
	// simulator's trip estimate, a proven trip is a fact the dependence
	// analysis may rely on for disjointness proofs.
	TripProven bool
	Trip       int64
	// AffineSubscripts reports that every array subscript in the loop body
	// is an affine function (constant coefficients) of enclosing induction
	// variables.
	AffineSubscripts bool
	// DistinctArrays reports that every array referenced in the loop body
	// has its own storage (a global or local declaration, not an array
	// parameter that could alias another parameter).
	DistinctArrays bool
	// EarlyExit reports that the loop body contains a break bound to this
	// loop, so the loop may execute fewer iterations than its bounds imply.
	EarlyExit bool
}

// Facts is the set of per-loop facts proven for one program. The zero value
// and nil are both valid empty sets.
type Facts struct {
	loops map[string]LoopFact
}

// Loop returns the fact record for the loop with the given label.
func (f *Facts) Loop(label string) (LoopFact, bool) {
	if f == nil {
		return LoopFact{}, false
	}
	fact, ok := f.loops[label]
	return fact, ok
}

// ProvenTrip returns the proven constant trip count for the labeled loop.
// It implements the lower.LoopFacts hook, which is how proofs established
// here reach the dependence analysis without lower depending on this
// package.
func (f *Facts) ProvenTrip(label string) (int64, bool) {
	fact, ok := f.Loop(label)
	if !ok || !fact.TripProven {
		return 0, false
	}
	return fact.Trip, true
}

// Len returns the number of loops with recorded facts.
func (f *Facts) Len() int {
	if f == nil {
		return 0
	}
	return len(f.loops)
}

func (f *Facts) set(fact LoopFact) {
	if f.loops == nil {
		f.loops = make(map[string]LoopFact)
	}
	f.loops[fact.Label] = fact
}
