package rl

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"neurovec/internal/nn"
)

// Stream tags keep the per-purpose RNG streams of one (seed, iteration)
// disjoint: rollout slot s and the shuffle stream can never collide.
const (
	streamRollout uint64 = 1
	streamShuffle uint64 = 2
)

// mix64 is the splitmix64 finalizer — a cheap, well-distributed hash that
// turns structured coordinates (seed, iteration, slot) into independent
// seeds.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// deriveRNG builds an independent RNG from the base seed and a list of
// stream coordinates. Every distinct coordinate tuple yields a distinct,
// reproducible stream, which is what makes parallel collection deterministic:
// a slot's randomness depends only on its coordinates, never on which worker
// ran it or in what order.
func deriveRNG(base int64, coords ...uint64) *rand.Rand {
	z := mix64(uint64(base) ^ 0x9e3779b97f4a7c15)
	for _, c := range coords {
		z = mix64(z + 0x9e3779b97f4a7c15*(c+1))
	}
	return rand.New(rand.NewSource(int64(z)))
}

// Batch is one iteration's collected rollout: Cfg.Batch transitions in slot
// order plus their summary statistics. A Batch is consumed exactly once by
// UpdateBatch (advantages are normalized in place at collection time).
type Batch struct {
	transitions []*transition
	rewardMean  float64
}

// Len returns the number of transitions in the batch.
func (b *Batch) Len() int { return len(b.transitions) }

// RewardMean returns the mean environment reward over the batch — the
// per-iteration learning-curve point the paper plots.
func (b *Batch) RewardMean() float64 { return b.rewardMean }

// CollectBatch gathers Cfg.Batch bandit transitions from env, sharded over a
// worker pool of the given width (0 or negative means GOMAXPROCS). Slot b of
// iteration iter draws from an RNG derived from (seed, iter, b) and the
// forward passes use the networks' stateless Apply path, so the batch is
// bit-identical for any worker count — jobs changes only the wall time.
//
// The embedder's Embed and env.Reward must be safe for concurrent callers;
// the code2vec model and core.Framework satisfy this (their rollout-time
// paths only read configuration and weights).
func (a *Agent) CollectBatch(env Env, seed int64, iter, jobs int) *Batch {
	n := a.Cfg.Batch
	if n <= 0 {
		n = 1
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	batch := make([]*transition, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= n {
					return
				}
				batch[b] = a.rolloutSlot(env, seed, iter, b)
			}
		}()
	}
	wg.Wait()

	sum := 0.0
	for _, tr := range batch {
		sum += tr.reward
	}
	normalizeAdvantages(batch)
	return &Batch{transitions: batch, rewardMean: sum / float64(n)}
}

// rolloutSlot computes one transition from its own derived RNG stream,
// touching no per-agent mutable state.
func (a *Agent) rolloutSlot(env Env, seed int64, iter, slot int) *transition {
	rng := deriveRNG(seed, uint64(iter), streamRollout, uint64(slot))
	s := rng.Intn(env.NumSamples())
	out := a.applyOut(s)
	vfIdx, ifIdx, raw, logp := a.sampleActionWith(out, rng)
	r := env.Reward(s, a.Cfg.VFs[vfIdx], a.Cfg.IFs[ifIdx])
	return &transition{
		sample: s, vfIdx: vfIdx, ifIdx: ifIdx, raw: raw,
		oldLogp: logp, reward: r, adv: r - out.value,
	}
}

// applyOut is the stateless twin of forward: embedder + trunk + heads
// through the Apply path, reading only weights so concurrent rollout workers
// can share the agent.
func (a *Agent) applyOut(sample int) *evalOut {
	vec, _ := a.emb.Embed(sample)
	feat := a.trunk.Apply(vec)
	out := &evalOut{}
	switch a.Cfg.Space {
	case Discrete:
		out.logpVF = nn.LogSoftmax(a.headVF.Apply(feat))
		out.logpIF = nn.LogSoftmax(a.headIF.Apply(feat))
	case Continuous1:
		out.meanVF = a.headVF.Apply(feat)[0]
	case Continuous2:
		out.meanVF = a.headVF.Apply(feat)[0]
		out.meanIF = a.headIF.Apply(feat)[0]
	}
	out.value = a.headV.Apply(feat)[0]
	return out
}

// UpdateBatch performs Cfg.Epochs clipped-surrogate passes over a collected
// batch, accumulating gradients sequentially (PPO's updates are inherently
// ordered) and stepping opt per minibatch. The shuffle order comes from an
// RNG derived from (seed, iter), so the whole update is reproducible from
// the checkpointed coordinates alone. Returns the mean total loss across
// minibatch updates.
func (a *Agent) UpdateBatch(batch *Batch, opt *nn.Adam, seed int64, iter int) float64 {
	cfg := a.Cfg
	rng := deriveRNG(seed, uint64(iter), streamShuffle)
	trs := batch.transitions
	mb := cfg.MiniBatch
	if mb <= 0 || mb > len(trs) {
		mb = len(trs)
	}
	lossSum, lossN := 0.0, 0
	for ep := 0; ep < cfg.Epochs; ep++ {
		shuffleWith(trs, rng)
		for start := 0; start < len(trs); start += mb {
			end := start + mb
			if end > len(trs) {
				end = len(trs)
			}
			lossSum += a.update(trs[start:end], opt)
			lossN++
		}
	}
	if lossN == 0 {
		return 0
	}
	return lossSum / float64(lossN)
}
