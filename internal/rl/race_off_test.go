//go:build !race

package rl

const raceEnabled = false
