package rl

import (
	"math/rand"
	"testing"

	"neurovec/internal/nn"
)

// referencePredictObs is PredictObs through the allocating Apply path — the
// pre-pooling implementation — used to pin bit-identical parity.
func referencePredictObs(a *Agent, vec []float64) (int, int) {
	feat := a.trunk.Apply(vec)
	switch a.Cfg.Space {
	case Discrete:
		return a.Cfg.VFs[nn.Argmax(a.headVF.Apply(feat))],
			a.Cfg.IFs[nn.Argmax(a.headIF.Apply(feat))]
	case Continuous1:
		vi, ii := a.decodeJoint(a.headVF.Apply(feat)[0])
		return a.Cfg.VFs[vi], a.Cfg.IFs[ii]
	default:
		vi := clampRound(a.headVF.Apply(feat)[0], len(a.Cfg.VFs))
		ii := clampRound(a.headIF.Apply(feat)[0], len(a.Cfg.IFs))
		return a.Cfg.VFs[vi], a.Cfg.IFs[ii]
	}
}

func TestPredictObsPooledParity(t *testing.T) {
	for _, space := range []SpaceKind{Discrete, Continuous1, Continuous2} {
		emb, _, cfg := newToy()
		cfg.Space = space
		agent := NewAgent(emb, cfg)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 25; trial++ {
			vec := make([]float64, emb.Dim())
			for i := range vec {
				vec[i] = rng.NormFloat64()
			}
			wantVF, wantIF := referencePredictObs(agent, vec)
			gotVF, gotIF := agent.PredictObs(vec)
			if gotVF != wantVF || gotIF != wantIF {
				t.Fatalf("%v: PredictObs = (%d,%d), want (%d,%d)", space, gotVF, gotIF, wantVF, wantIF)
			}
		}
	}
}

// TestPredictObsZeroAllocs is the serving-path invariant BENCH_7.json
// carries: after the pool is warm, a greedy decision heap-allocates nothing.
func TestPredictObsZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	emb, _, cfg := newToy()
	agent := NewAgent(emb, cfg)
	vec := make([]float64, emb.Dim())
	for i := range vec {
		vec[i] = float64(i) * 0.1
	}
	agent.PredictObs(vec) // warm the pool
	if allocs := testing.AllocsPerRun(200, func() { agent.PredictObs(vec) }); allocs != 0 {
		t.Fatalf("PredictObs allocates %v per run after warm-up, want 0", allocs)
	}
}

// TestPredictObsConcurrent exercises the pool under contention; run with
// -race this also proves scratches are never shared between callers.
func TestPredictObsConcurrent(t *testing.T) {
	emb, _, cfg := newToy()
	agent := NewAgent(emb, cfg)
	vec := make([]float64, emb.Dim())
	vec[0] = 1
	wantVF, wantIF := agent.PredictObs(vec)
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				if vf, ifc := agent.PredictObs(vec); vf != wantVF || ifc != wantIF {
					done <- false
					return
				}
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent PredictObs diverged from the serial answer")
		}
	}
}
