package rl

import (
	"math"
	"testing"

	"neurovec/internal/nn"
)

// toyEmbedder returns a fixed one-hot observation per sample class; it has
// no trainable parameters, isolating the PPO machinery under test.
type toyEmbedder struct{ classes int }

func (e *toyEmbedder) Embed(sample int) ([]float64, any) {
	v := make([]float64, e.classes)
	v[sample%e.classes] = 1
	return v, nil
}
func (e *toyEmbedder) Backward(any, []float64) {}
func (e *toyEmbedder) Params() []*nn.Param     { return nil }
func (e *toyEmbedder) Dim() int                { return e.classes }

// toyEnv rewards actions by closeness to a per-class optimum — a noiseless
// contextual bandit the agent must solve by reading the observation.
type toyEnv struct {
	classes int
	optVF   []int // optimal VF per class (actual factor values)
	optIF   []int
	vfs     []int
	ifs     []int
}

func (e *toyEnv) NumSamples() int { return e.classes * 4 }

func (e *toyEnv) Reward(sample, vf, ifc int) float64 {
	c := sample % e.classes
	dv := math.Abs(idxOf(e.vfs, vf) - idxOf(e.vfs, e.optVF[c]))
	di := math.Abs(idxOf(e.ifs, ifc) - idxOf(e.ifs, e.optIF[c]))
	return 1.0 - 0.25*dv - 0.25*di
}

func idxOf(arr []int, v int) float64 {
	for i, x := range arr {
		if x == v {
			return float64(i)
		}
	}
	return -1
}

func newToy() (*toyEmbedder, *toyEnv, Config) {
	vfs := []int{1, 2, 4, 8, 16, 32, 64}
	ifs := []int{1, 2, 4, 8, 16}
	env := &toyEnv{
		classes: 3,
		optVF:   []int{64, 1, 8},
		optIF:   []int{8, 1, 2},
		vfs:     vfs, ifs: ifs,
	}
	cfg := DefaultConfig(vfs, ifs)
	cfg.Batch = 128
	cfg.MiniBatch = 32
	cfg.Iterations = 40
	cfg.LR = 3e-3 // toy observations are tiny; the paper's 5e-5 is for 340-dim inputs
	cfg.Hidden = []int{32, 32}
	return &toyEmbedder{classes: 3}, env, cfg
}

func TestPPOLearnsContextualBandit(t *testing.T) {
	emb, env, cfg := newToy()
	agent := NewAgent(emb, cfg)
	stats := agent.Train(env)

	first := stats.RewardMean[0]
	last := stats.RewardMean[len(stats.RewardMean)-1]
	if last <= first {
		t.Fatalf("reward did not improve: %.3f -> %.3f", first, last)
	}
	if last < 0.8 {
		t.Errorf("final reward mean = %.3f, want >= 0.8 on a noiseless bandit", last)
	}
	// Greedy policy should hit the optimum for every class.
	correct := 0
	for c := 0; c < env.classes; c++ {
		vf, ifc := agent.Predict(c)
		if vf == env.optVF[c] && ifc == env.optIF[c] {
			correct++
		}
	}
	if correct < 2 {
		t.Errorf("greedy policy correct on %d/3 classes", correct)
	}
}

func TestStatsShapes(t *testing.T) {
	emb, env, cfg := newToy()
	cfg.Iterations = 5
	stats := NewAgent(emb, cfg).Train(env)
	if len(stats.RewardMean) != 5 || len(stats.Loss) != 5 || len(stats.Steps) != 5 {
		t.Fatalf("curve lengths = %d/%d/%d, want 5", len(stats.RewardMean), len(stats.Loss), len(stats.Steps))
	}
	if stats.Steps[4] != 5*cfg.Batch {
		t.Errorf("cumulative steps = %d, want %d", stats.Steps[4], 5*cfg.Batch)
	}
}

func TestTrainingIsDeterministicPerSeed(t *testing.T) {
	emb, env, cfg := newToy()
	cfg.Iterations = 6
	s1 := NewAgent(emb, cfg).Train(env)
	s2 := NewAgent(emb, cfg).Train(env)
	for i := range s1.RewardMean {
		if s1.RewardMean[i] != s2.RewardMean[i] {
			t.Fatalf("iteration %d differs: %v vs %v", i, s1.RewardMean[i], s2.RewardMean[i])
		}
	}
	cfg.Seed = 99
	s3 := NewAgent(emb, cfg).Train(env)
	diff := false
	for i := range s1.RewardMean {
		if s1.RewardMean[i] != s3.RewardMean[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical curves")
	}
}

func TestContinuousSpacesTrain(t *testing.T) {
	for _, space := range []SpaceKind{Continuous1, Continuous2} {
		emb, env, cfg := newToy()
		cfg.Space = space
		cfg.Iterations = 30
		stats := NewAgent(emb, cfg).Train(env)
		first, last := stats.RewardMean[0], stats.RewardMean[len(stats.RewardMean)-1]
		if last <= first {
			t.Errorf("%s: reward did not improve: %.3f -> %.3f", space, first, last)
		}
		for _, r := range stats.RewardMean {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("%s: non-finite reward mean", space)
			}
		}
	}
}

func TestDiscreteOutperformsContinuous(t *testing.T) {
	// The paper's Figure 6 result: the discrete action space converges to a
	// better policy than either continuous encoding.
	final := map[SpaceKind]float64{}
	for _, space := range []SpaceKind{Discrete, Continuous1, Continuous2} {
		emb, env, cfg := newToy()
		cfg.Space = space
		cfg.Iterations = 40
		stats := NewAgent(emb, cfg).Train(env)
		// Average the last 5 iterations to reduce sampling noise.
		sum := 0.0
		for _, r := range stats.RewardMean[len(stats.RewardMean)-5:] {
			sum += r
		}
		final[space] = sum / 5
	}
	if final[Discrete] < final[Continuous1] && final[Discrete] < final[Continuous2] {
		t.Errorf("discrete (%.3f) underperforms both continuous spaces (%.3f, %.3f)",
			final[Discrete], final[Continuous1], final[Continuous2])
	}
	t.Logf("final reward: discrete=%.3f cont1=%.3f cont2=%.3f",
		final[Discrete], final[Continuous1], final[Continuous2])
}

func TestPredictIsDeterministic(t *testing.T) {
	emb, env, cfg := newToy()
	agent := NewAgent(emb, cfg)
	_ = agent.Train(env)
	v1, i1 := agent.Predict(0)
	v2, i2 := agent.Predict(0)
	if v1 != v2 || i1 != i2 {
		t.Fatal("greedy prediction not deterministic")
	}
}

func TestValueBaselineTracksRewards(t *testing.T) {
	emb, env, cfg := newToy()
	agent := NewAgent(emb, cfg)
	_ = agent.Train(env)
	// After convergence the value of each class should be near the reward
	// its (near-optimal) policy obtains, i.e. well above zero.
	for c := 0; c < 3; c++ {
		if v := agent.Value(c); v < 0.2 {
			t.Errorf("class %d value = %.3f, want > 0.2 after convergence", c, v)
		}
	}
}

func TestSpaceKindString(t *testing.T) {
	if Discrete.String() != "discrete" || Continuous1.String() != "continuous-1" {
		t.Fatal("SpaceKind names wrong")
	}
}

func TestClampRound(t *testing.T) {
	if clampRound(-3.2, 7) != 0 || clampRound(99, 7) != 6 || clampRound(3.4, 7) != 3 {
		t.Fatal("clampRound wrong")
	}
}
