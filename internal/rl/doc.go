// Package rl implements the deep-RL side of NeuroVectorizer: a contextual
// bandit trained with proximal policy optimization (PPO).
//
// The episode length is one, as in the paper: the agent observes a loop's
// code embedding, picks a (VF, IF) action, receives the normalized execution
// time improvement as reward, and the episode ends. PPO's clipped surrogate
// objective with a value baseline and an entropy bonus is used for updates,
// and the policy gradient flows through the trunk network *into the
// embedding generator*, training the representation end to end.
//
// Three action-space definitions are supported, matching the paper's
// Figure 6 ablation: a discrete space (two categorical heads indexing the
// VF and IF arrays — the best performer), a single continuous action
// encoding both factors, and two continuous actions.
//
// # Training paths
//
// Agent.Train / Agent.TrainIterations are the original single-goroutine
// loop: one shared RNG drives sample selection, action sampling, and
// minibatch shuffling in sequence, so its results depend on that exact
// interleaving. They remain the simple in-process path used by the
// experiment harness.
//
// CollectBatch and UpdateBatch are the building blocks of the parallel
// pipeline in package neurovec/internal/trainer. CollectBatch shards rollout
// collection (the expensive part — every transition costs a simulated
// compilation and run) across a worker pool, with each batch slot drawing
// from its own RNG stream derived from (seed, iteration, slot). Because no
// state is shared between slots, the collected batch — and therefore the
// whole training run — is bit-identical for any worker count, and a
// checkpoint needs only (seed, iteration) to reconstruct every stream on
// resume. UpdateBatch then applies the PPO epochs sequentially (gradient
// accumulation is inherently ordered) with an explicit shuffle RNG.
package rl
