package rl

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"neurovec/internal/nn"
)

// Embedder turns an opaque sample ID into a differentiable observation
// vector. The code2vec model is the paper's embedder; a hand-crafted feature
// extractor is provided elsewhere as an ablation.
type Embedder interface {
	// Embed returns the observation and an opaque state for Backward.
	Embed(sample int) ([]float64, any)
	// Backward pushes dLoss/dObservation into the embedder's parameters.
	Backward(state any, dvec []float64)
	// Params returns trainable parameters (may be empty).
	Params() []*nn.Param
	// Dim is the observation width.
	Dim() int
}

// Env supplies samples and rewards. Reward is called with concrete factor
// values (not indices) and must be deterministic for a given triple.
type Env interface {
	NumSamples() int
	// Reward returns (t_baseline - t_action)/t_baseline, or the compile-
	// timeout penalty, for injecting (vf, ifc) into the sample's loop.
	Reward(sample, vf, ifc int) float64
}

// SpaceKind selects the action-space definition (Figure 6).
type SpaceKind int

// Action spaces.
const (
	// Discrete: the agent picks two integers indexing the VF and IF arrays.
	Discrete SpaceKind = iota
	// Continuous1 encodes both factors in one continuous number.
	Continuous1
	// Continuous2 encodes the factors in two continuous numbers.
	Continuous2
)

// String names the space.
func (s SpaceKind) String() string {
	switch s {
	case Discrete:
		return "discrete"
	case Continuous1:
		return "continuous-1"
	case Continuous2:
		return "continuous-2"
	}
	return fmt.Sprintf("SpaceKind(%d)", int(s))
}

// Config carries the hyperparameters from the paper's evaluation: a 64x64
// fully-connected trunk, batch size 4000 and learning rate 5e-5 are the
// defaults the paper settles on.
type Config struct {
	VFs []int // e.g. {1,2,4,8,16,32,64}
	IFs []int // e.g. {1,2,4,8,16}

	// Hidden lists the trunk's fully-connected layer widths (paper: 64x64).
	Hidden []int
	// LR is the Adam learning rate.
	LR float64
	// Batch is the number of env samples (compilations) per iteration;
	// MiniBatch slices it for gradient steps.
	Batch     int
	MiniBatch int
	// Epochs is the number of PPO passes over each batch; Iterations the
	// number of collect-update cycles per training run.
	Epochs     int
	Iterations int
	// ClipEps is the PPO clipped-surrogate epsilon; EntropyCoef and
	// ValueCoef weight the entropy bonus and value loss; MaxGradNorm caps
	// the global gradient norm per update.
	ClipEps     float64
	EntropyCoef float64
	ValueCoef   float64
	MaxGradNorm float64
	// Space selects the Figure 6 action-space definition.
	Space SpaceKind
	// Seed drives action sampling, minibatch shuffling, and weight init.
	Seed int64
}

// DefaultConfig returns the paper's defaults (scaled batch for in-process
// experiments; the full 4000-sample batch is exercised by the sweep bench).
func DefaultConfig(vfs, ifs []int) Config {
	return Config{
		VFs:         vfs,
		IFs:         ifs,
		Hidden:      []int{64, 64},
		LR:          5e-5,
		Batch:       500,
		MiniBatch:   64,
		Epochs:      4,
		Iterations:  30,
		ClipEps:     0.2,
		EntropyCoef: 0.01,
		ValueCoef:   0.5,
		MaxGradNorm: 5,
		Space:       Discrete,
		Seed:        1,
	}
}

// Stats records the learning curves the paper plots in Figures 5 and 6.
type Stats struct {
	// RewardMean[i] is the mean reward of iteration i's rollout batch.
	RewardMean []float64
	// Loss[i] is the mean total PPO loss over iteration i's updates.
	Loss []float64
	// Steps[i] is the cumulative number of environment steps (compilations)
	// after iteration i.
	Steps []int
}

// Agent is the PPO policy: embedder -> trunk -> {action heads, value head}.
type Agent struct {
	// Cfg is the hyperparameter set the agent was built with. Read-only
	// after construction.
	Cfg Config

	emb    Embedder
	trunk  *nn.MLP
	headVF *nn.Dense // Discrete: |VFs| logits. Continuous: 1 mean.
	headIF *nn.Dense // Discrete: |IFs| logits. Continuous2: 1 mean. (nil for Continuous1)
	headV  *nn.Dense // value baseline
	logStd *nn.Param // continuous spaces only

	params []*nn.Param
	rng    *rand.Rand

	// inferPool recycles the per-call buffers PredictObs needs so that
	// steady-state serving does zero heap allocations. Scratches are keyed
	// to this agent's layer dims; the pool is safe for any number of
	// concurrent PredictObs callers.
	inferPool sync.Pool
}

// inferScratch is one caller's worth of inference buffers: trunk ping-pong
// scratch plus one destination slice per action head.
type inferScratch struct {
	trunk *nn.Scratch
	vf    []float64
	ifc   []float64
}

// getScratch pops a pooled scratch, building one sized to this agent's
// networks on a cold pool. Constructed lazily (rather than in NewAgent) so
// every construction path — including checkpoint restore — gets pooling.
func (a *Agent) getScratch() *inferScratch {
	if s, ok := a.inferPool.Get().(*inferScratch); ok {
		return s
	}
	s := &inferScratch{trunk: nn.NewScratch(a.trunk), vf: make([]float64, a.headVF.Out)}
	if a.headIF != nil {
		s.ifc = make([]float64, a.headIF.Out)
	}
	return s
}

func (a *Agent) putScratch(s *inferScratch) { a.inferPool.Put(s) }

// NewAgent builds the policy for the given embedder and config.
func NewAgent(emb Embedder, cfg Config) *Agent {
	if len(cfg.VFs) == 0 || len(cfg.IFs) == 0 {
		panic("rl: empty action space")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Agent{Cfg: cfg, emb: emb, rng: rng}
	a.trunk = nn.NewMLP("trunk", emb.Dim(), cfg.Hidden, rng)
	feat := a.trunk.OutDim()
	switch cfg.Space {
	case Discrete:
		a.headVF = nn.NewDense("headVF", feat, len(cfg.VFs), rng)
		a.headIF = nn.NewDense("headIF", feat, len(cfg.IFs), rng)
	case Continuous1:
		a.headVF = nn.NewDense("headJoint", feat, 1, rng)
		// Start mid-range with wide exploration over the 35 joint indices.
		a.headVF.B.W[0] = float64(len(cfg.VFs)*len(cfg.IFs)) / 2
		a.logStd = nn.NewParamInit("logStd", 1, func(int) float64 { return math.Log(float64(len(cfg.VFs)*len(cfg.IFs)) / 4) })
	case Continuous2:
		a.headVF = nn.NewDense("headVFc", feat, 1, rng)
		a.headIF = nn.NewDense("headIFc", feat, 1, rng)
		a.headVF.B.W[0] = float64(len(cfg.VFs)) / 2
		a.headIF.B.W[0] = float64(len(cfg.IFs)) / 2
		a.logStd = nn.NewParamInit("logStd", 2, func(i int) float64 {
			if i == 0 {
				return math.Log(float64(len(cfg.VFs)) / 3)
			}
			return math.Log(float64(len(cfg.IFs)) / 3)
		})
	}
	a.headV = nn.NewDense("value", feat, 1, rng)

	a.params = append(a.params, emb.Params()...)
	a.params = append(a.params, a.trunk.Params()...)
	a.params = append(a.params, a.headVF.Params()...)
	if a.headIF != nil {
		a.params = append(a.params, a.headIF.Params()...)
	}
	a.params = append(a.params, a.headV.Params()...)
	if a.logStd != nil {
		a.params = append(a.params, a.logStd)
	}
	return a
}

// evalOut is one policy evaluation.
type evalOut struct {
	embState any
	logpVF   []float64 // discrete: log-softmax per head
	logpIF   []float64
	meanVF   float64 // continuous heads
	meanIF   float64
	value    float64
}

// forward runs embedder+trunk+heads for a sample.
func (a *Agent) forward(sample int) *evalOut {
	vec, st := a.emb.Embed(sample)
	feat := a.trunk.Forward(vec)
	out := &evalOut{embState: st}
	switch a.Cfg.Space {
	case Discrete:
		out.logpVF = nn.LogSoftmax(a.headVF.Forward(feat))
		out.logpIF = nn.LogSoftmax(a.headIF.Forward(feat))
	case Continuous1:
		out.meanVF = a.headVF.Forward(feat)[0]
	case Continuous2:
		out.meanVF = a.headVF.Forward(feat)[0]
		out.meanIF = a.headIF.Forward(feat)[0]
	}
	out.value = a.headV.Forward(feat)[0]
	return out
}

// transition is one bandit step stored for PPO updates.
type transition struct {
	sample  int
	vfIdx   int
	ifIdx   int
	raw     [2]float64 // continuous pre-rounding actions
	oldLogp float64
	adv     float64
	reward  float64
}

// sampleAction draws an action from the current policy using the agent's
// shared RNG (the single-goroutine training path).
func (a *Agent) sampleAction(out *evalOut) (vfIdx, ifIdx int, raw [2]float64, logp float64) {
	return a.sampleActionWith(out, a.rng)
}

// sampleActionWith draws an action from the current policy using an explicit
// RNG, so parallel rollout workers can each bring their own derived stream.
func (a *Agent) sampleActionWith(out *evalOut, rng *rand.Rand) (vfIdx, ifIdx int, raw [2]float64, logp float64) {
	switch a.Cfg.Space {
	case Discrete:
		pv := expv(out.logpVF)
		pi := expv(out.logpIF)
		vfIdx = nn.SampleCategorical(pv, rng)
		ifIdx = nn.SampleCategorical(pi, rng)
		logp = out.logpVF[vfIdx] + out.logpIF[ifIdx]
	case Continuous1:
		x := out.meanVF + rng.NormFloat64()*math.Exp(a.logStd.W[0])
		raw[0] = x
		logp = nn.GaussianLogProb(x, out.meanVF, a.logStd.W[0])
		vfIdx, ifIdx = a.decodeJoint(x)
	case Continuous2:
		x := out.meanVF + rng.NormFloat64()*math.Exp(a.logStd.W[0])
		y := out.meanIF + rng.NormFloat64()*math.Exp(a.logStd.W[1])
		raw[0], raw[1] = x, y
		logp = nn.GaussianLogProb(x, out.meanVF, a.logStd.W[0]) +
			nn.GaussianLogProb(y, out.meanIF, a.logStd.W[1])
		vfIdx = clampRound(x, len(a.Cfg.VFs))
		ifIdx = clampRound(y, len(a.Cfg.IFs))
	}
	return vfIdx, ifIdx, raw, logp
}

// decodeJoint maps one continuous number to the (VF, IF) index pair; the
// number is "rounded to the closest integer" joint index as in the paper.
func (a *Agent) decodeJoint(x float64) (int, int) {
	n := len(a.Cfg.VFs) * len(a.Cfg.IFs)
	k := clampRound(x, n)
	return k / len(a.Cfg.IFs), k % len(a.Cfg.IFs)
}

func clampRound(x float64, n int) int {
	k := int(math.Round(x))
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// logpOf recomputes the log-probability (and entropy) of a stored action
// under the current policy output.
func (a *Agent) logpOf(out *evalOut, tr *transition) (logp, entropy float64) {
	switch a.Cfg.Space {
	case Discrete:
		logp = out.logpVF[tr.vfIdx] + out.logpIF[tr.ifIdx]
		entropy = nn.CategoricalEntropy(expv(out.logpVF)) + nn.CategoricalEntropy(expv(out.logpIF))
	case Continuous1:
		logp = nn.GaussianLogProb(tr.raw[0], out.meanVF, a.logStd.W[0])
		entropy = nn.GaussianEntropy(a.logStd.W[0])
	case Continuous2:
		logp = nn.GaussianLogProb(tr.raw[0], out.meanVF, a.logStd.W[0]) +
			nn.GaussianLogProb(tr.raw[1], out.meanIF, a.logStd.W[1])
		entropy = nn.GaussianEntropy(a.logStd.W[0]) + nn.GaussianEntropy(a.logStd.W[1])
	}
	return logp, entropy
}

func expv(logp []float64) []float64 {
	out := make([]float64, len(logp))
	for i, v := range logp {
		out[i] = math.Exp(v)
	}
	return out
}
