package rl

import (
	"math"
	"math/rand"

	"neurovec/internal/nn"
)

// Train runs PPO for cfg.Iterations iterations and returns the learning
// curves. Each iteration collects cfg.Batch environment steps (one step =
// one compilation + simulated run, as in the paper) and performs cfg.Epochs
// passes of clipped-surrogate updates over them.
func (a *Agent) Train(env Env) *Stats { return a.TrainIterations(env, a.Cfg.Iterations) }

// TrainIterations is Train with an explicit iteration count. The override is
// a parameter rather than a temporary Cfg.Iterations mutation so that a
// concurrently-serving reader of the shared config (e.g. an inference path
// inspecting Agent.Cfg) never observes a transient value mid-continuation.
func (a *Agent) TrainIterations(env Env, iterations int) *Stats {
	cfg := a.Cfg
	opt := nn.NewAdam(cfg.LR)
	stats := &Stats{}
	steps := 0

	for iter := 0; iter < iterations; iter++ {
		// ---- Rollout ----
		batch := make([]*transition, cfg.Batch)
		rewardSum := 0.0
		for b := 0; b < cfg.Batch; b++ {
			s := a.rng.Intn(env.NumSamples())
			out := a.forward(s)
			vfIdx, ifIdx, raw, logp := a.sampleAction(out)
			r := env.Reward(s, cfg.VFs[vfIdx], cfg.IFs[ifIdx])
			rewardSum += r
			batch[b] = &transition{
				sample: s, vfIdx: vfIdx, ifIdx: ifIdx, raw: raw,
				oldLogp: logp, reward: r, adv: r - out.value,
			}
		}
		steps += cfg.Batch
		normalizeAdvantages(batch)

		// ---- PPO updates ----
		lossSum, lossN := 0.0, 0
		mb := cfg.MiniBatch
		if mb <= 0 || mb > len(batch) {
			mb = len(batch)
		}
		for ep := 0; ep < cfg.Epochs; ep++ {
			a.shuffle(batch)
			for start := 0; start < len(batch); start += mb {
				end := start + mb
				if end > len(batch) {
					end = len(batch)
				}
				lossSum += a.update(batch[start:end], opt)
				lossN++
			}
		}

		stats.RewardMean = append(stats.RewardMean, rewardSum/float64(cfg.Batch))
		if lossN > 0 {
			stats.Loss = append(stats.Loss, lossSum/float64(lossN))
		} else {
			stats.Loss = append(stats.Loss, 0)
		}
		stats.Steps = append(stats.Steps, steps)
	}
	return stats
}

// update performs one gradient step over a minibatch and returns its mean
// total loss.
func (a *Agent) update(mb []*transition, opt *nn.Adam) float64 {
	cfg := a.Cfg
	inv := 1.0 / float64(len(mb))
	totalLoss := 0.0

	for _, tr := range mb {
		out := a.forward(tr.sample)
		logp, entropy := a.logpOf(out, tr)
		ratio := math.Exp(logp - tr.oldLogp)
		adv := tr.adv

		// Clipped surrogate.
		unclipped := ratio * adv
		clipped := clamp(ratio, 1-cfg.ClipEps, 1+cfg.ClipEps) * adv
		pgLoss := -math.Min(unclipped, clipped)
		vDiff := out.value - tr.reward
		vLoss := 0.5 * vDiff * vDiff
		totalLoss += pgLoss + cfg.ValueCoef*vLoss - cfg.EntropyCoef*entropy

		// dLoss/dlogp: active only when the unclipped branch is selected.
		dLogp := 0.0
		if unclipped <= clipped {
			dLogp = -adv * ratio
		}
		a.backward(out, tr, dLogp*inv, cfg.ValueCoef*vDiff*inv, cfg.EntropyCoef*inv)
	}
	nn.ClipGrads(a.params, cfg.MaxGradNorm)
	opt.Step(a.params)
	return totalLoss * inv
}

// backward pushes gradients for one sample through heads, trunk and
// embedder. dLogp multiplies dlogpi/dparams; dValue is dLoss/dv; entCoef
// scales the entropy-bonus gradient.
func (a *Agent) backward(out *evalOut, tr *transition, dLogp, dValue, entCoef float64) {
	feat := 0
	if d := a.trunk.OutDim(); d > 0 {
		feat = d
	}
	dFeat := make([]float64, feat)

	switch a.Cfg.Space {
	case Discrete:
		// d(logp)/dlogits = onehot - softmax; entropy gradient per head.
		pv := expv(out.logpVF)
		pi := expv(out.logpIF)
		hv := nn.CategoricalEntropy(pv)
		hi := nn.CategoricalEntropy(pi)
		dLogitsVF := make([]float64, len(pv))
		for j := range pv {
			oneHot := 0.0
			if j == tr.vfIdx {
				oneHot = 1
			}
			dLogitsVF[j] = dLogp*(oneHot-pv[j]) + entCoef*pv[j]*(out.logpVF[j]+hv)
		}
		dLogitsIF := make([]float64, len(pi))
		for j := range pi {
			oneHot := 0.0
			if j == tr.ifIdx {
				oneHot = 1
			}
			dLogitsIF[j] = dLogp*(oneHot-pi[j]) + entCoef*pi[j]*(out.logpIF[j]+hi)
		}
		addInto(dFeat, a.headVF.Backward(dLogitsVF))
		addInto(dFeat, a.headIF.Backward(dLogitsIF))
	case Continuous1:
		sigma := math.Exp(a.logStd.W[0])
		z := (tr.raw[0] - out.meanVF) / sigma
		// dlogp/dmean = z/sigma ; dlogp/dlogstd = z^2 - 1 ; dH/dlogstd = 1.
		addInto(dFeat, a.headVF.Backward([]float64{dLogp * z / sigma}))
		a.logStd.G[0] += dLogp*(z*z-1) - entCoef
	case Continuous2:
		s0 := math.Exp(a.logStd.W[0])
		s1 := math.Exp(a.logStd.W[1])
		z0 := (tr.raw[0] - out.meanVF) / s0
		z1 := (tr.raw[1] - out.meanIF) / s1
		addInto(dFeat, a.headVF.Backward([]float64{dLogp * z0 / s0}))
		addInto(dFeat, a.headIF.Backward([]float64{dLogp * z1 / s1}))
		a.logStd.G[0] += dLogp*(z0*z0-1) - entCoef
		a.logStd.G[1] += dLogp*(z1*z1-1) - entCoef
	}
	addInto(dFeat, a.headV.Backward([]float64{dValue}))

	dObs := a.trunk.Backward(dFeat)
	a.emb.Backward(out.embState, dObs)
}

// Predict returns the greedy action (deterministic inference, the deployment
// mode the paper describes: "a single step only, similar to the baseline
// cost model").
func (a *Agent) Predict(sample int) (vf, ifc int) {
	out := a.forward(sample)
	switch a.Cfg.Space {
	case Discrete:
		return a.Cfg.VFs[nn.Argmax(out.logpVF)], a.Cfg.IFs[nn.Argmax(out.logpIF)]
	case Continuous1:
		vi, ii := a.decodeJoint(out.meanVF)
		return a.Cfg.VFs[vi], a.Cfg.IFs[ii]
	default:
		vi := clampRound(out.meanVF, len(a.Cfg.VFs))
		ii := clampRound(out.meanIF, len(a.Cfg.IFs))
		return a.Cfg.VFs[vi], a.Cfg.IFs[ii]
	}
}

// PredictObs returns the greedy action for an already-computed observation
// vector. Unlike Predict it bypasses the embedder and runs the networks
// through pooled scratch buffers (see Agent.inferPool), so steady-state
// calls perform zero heap allocations and touch no per-agent mutable state
// beyond the pool: any number of goroutines may call it concurrently on a
// trained agent (provided no concurrent Train step is mutating the
// weights). Outputs are bit-identical to the allocating Apply path.
func (a *Agent) PredictObs(vec []float64) (vf, ifc int) {
	s := a.getScratch()
	defer a.putScratch(s)
	feat := a.trunk.ApplyScratch(s.trunk, vec)
	switch a.Cfg.Space {
	case Discrete:
		return a.Cfg.VFs[nn.Argmax(a.headVF.ApplyTo(s.vf, feat))],
			a.Cfg.IFs[nn.Argmax(a.headIF.ApplyTo(s.ifc, feat))]
	case Continuous1:
		vi, ii := a.decodeJoint(a.headVF.ApplyTo(s.vf, feat)[0])
		return a.Cfg.VFs[vi], a.Cfg.IFs[ii]
	default:
		vi := clampRound(a.headVF.ApplyTo(s.vf, feat)[0], len(a.Cfg.VFs))
		ii := clampRound(a.headIF.ApplyTo(s.ifc, feat)[0], len(a.Cfg.IFs))
		return a.Cfg.VFs[vi], a.Cfg.IFs[ii]
	}
}

// Value returns the value baseline's estimate for a sample (diagnostics).
func (a *Agent) Value(sample int) float64 { return a.forward(sample).value }

// Params returns every trainable parameter of the policy, including the
// embedder's — the set a model snapshot must persist.
func (a *Agent) Params() []*nn.Param { return a.params }

// Embedding exposes the (current) code vector for a sample so that the
// supervised methods (NNS, decision trees) can reuse the representation the
// RL training produced — the paper's Section 3.5 workflow.
func (a *Agent) Embedding(sample int) []float64 {
	vec, _ := a.emb.Embed(sample)
	return vec
}

func normalizeAdvantages(batch []*transition) {
	if len(batch) < 2 {
		return
	}
	mean := 0.0
	for _, tr := range batch {
		mean += tr.adv
	}
	mean /= float64(len(batch))
	varSum := 0.0
	for _, tr := range batch {
		d := tr.adv - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum/float64(len(batch))) + 1e-8
	for _, tr := range batch {
		tr.adv = (tr.adv - mean) / std
	}
}

func (a *Agent) shuffle(batch []*transition) { shuffleWith(batch, a.rng) }

// shuffleWith is a Fisher-Yates shuffle driven by an explicit RNG, shared by
// the single-goroutine and deterministic-parallel update paths.
func shuffleWith(batch []*transition, rng *rand.Rand) {
	for i := len(batch) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		batch[i], batch[j] = batch[j], batch[i]
	}
}

func addInto(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
