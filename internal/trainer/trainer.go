package trainer

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"neurovec/internal/core"
	"neurovec/internal/evalharness"
	"neurovec/internal/nn"
	"neurovec/internal/obs"
	"neurovec/internal/rl"
)

// Config assembles one training run. The zero value of every optional field
// picks a sensible default; only corpus-selection fields are commonly set.
type Config struct {
	// Core overrides the framework configuration (architecture, simulator,
	// embedding sizes). Nil means core.DefaultConfig(). Resuming a run must
	// supply the same Core configuration the original run used: the
	// checkpoint stores the embedding and agent configs but not the
	// simulator's.
	Core *core.Config
	// RL overrides the PPO hyperparameters. Nil means the paper's defaults
	// with the architecture's action space. Ignored on resume (the
	// checkpoint's stored config wins, so a resumed run reproduces the
	// original).
	RL *rl.Config

	// Corpus is the training-corpus spec, a comma-separated list of built-in
	// suites (polybench, mibench, figure7, generated); see
	// evalharness.BuildCorpus. Default "generated".
	Corpus string
	// GenN sizes the generated suite (default 16).
	GenN int
	// Dir optionally adds every .c file under a directory (suite "dir").
	Dir string
	// Seed drives corpus generation, weight initialisation, and every
	// derived RNG stream (default 1).
	Seed int64

	// Jobs bounds rollout-collection parallelism (default GOMAXPROCS). It
	// never affects the trained weights or statistics, only the wall time.
	Jobs int
	// Iterations is the total PPO iteration count (default: the RL config's
	// Iterations, else the paper default). On resume it is the new total, so
	// passing the original value finishes an interrupted run exactly; it is
	// an execution knob, not part of the checkpointed math.
	Iterations int

	// CheckpointPath is where checkpoints are written (atomically, via a
	// temp file + rename). Empty disables checkpointing entirely.
	CheckpointEvery int // write every N iterations (0 = final only)
	CheckpointPath  string

	// EvalEvery interleaves an evaluation of the in-progress agent every N
	// iterations (0 = off). Evaluations run only on exact multiples, so the
	// learning curve of a killed-and-resumed run matches the uninterrupted
	// one regardless of where the interruption fell.
	EvalEvery int
	// EvalCorpus is the evaluation-corpus spec (default: Corpus).
	EvalCorpus string
	// EvalGenN sizes the generated suite for evaluation (default: GenN).
	EvalGenN int
	// EvalBaseline anchors learning-curve speedup (default "costmodel").
	EvalBaseline string
	// EvalOracle anchors learning-curve regret (default "brute").
	EvalOracle string

	// Progress, when set, is invoked after every completed iteration with
	// the iteration's statistics — the hook the CLI uses for live output and
	// the service for job status.
	Progress func(Progress)
}

// Progress reports one completed training iteration.
type Progress struct {
	Iteration  int // 1-based index of the iteration that just finished
	Total      int // total planned iterations
	Steps      int // cumulative environment steps (simulated compilations)
	RewardMean float64
	Loss       float64
	// Eval is non-nil when this iteration ran an interleaved evaluation.
	Eval *EvalPoint
	// Checkpoint is the path just written, or "" when no checkpoint was due.
	Checkpoint string
}

// EvalPoint is one learning-curve sample: the in-progress agent scored over
// the evaluation corpus against the baseline and oracle policies.
type EvalPoint struct {
	Iteration         int     `json:"iteration"`
	Steps             int     `json:"steps"`
	RewardMean        float64 `json:"reward_mean"`
	MeanSpeedup       float64 `json:"mean_speedup"`
	GeoMeanSpeedup    float64 `json:"geomean_speedup"`
	MeanOracleSpeedup float64 `json:"mean_oracle_speedup"`
	MeanRegret        float64 `json:"mean_regret"`
	Agreement         float64 `json:"agreement"`
}

// Result summarises a finished (or interrupted) run.
type Result struct {
	// Stats carries the full learning curves from iteration 0, including
	// iterations restored from a resumed checkpoint.
	Stats *rl.Stats
	// Curve holds the interleaved evaluation points, if EvalEvery was set.
	Curve []EvalPoint
	// Iterations is the number of completed iterations (the total across
	// resume boundaries); StartIteration is where this run began (0 unless
	// resumed).
	Iterations     int
	StartIteration int
	// Units is the number of training loop units loaded from the corpus.
	Units int
	// ModelVersion fingerprints the last checkpoint written ("" when
	// checkpointing was disabled).
	ModelVersion   string
	CheckpointPath string
	// CheckpointWritten reports that this run wrote CheckpointPath at least
	// once — distinguishing "resumable at that path" from a configured path
	// that was never reached (e.g. cancellation before the first iteration).
	CheckpointWritten bool
}

// Trainer is one configured training run over one framework. Create it with
// New or Resume, then call Run; a Trainer is single-use and not safe for
// concurrent access.
type Trainer struct {
	cfg        Config
	fw         *core.Framework
	agent      *rl.Agent
	opt        *nn.Adam
	state      checkpointState
	total      int
	jobs       int
	evalCorpus *evalharness.Corpus
	// ckptWritten records that this run wrote cfg.CheckpointPath at least
	// once (see Result.CheckpointWritten).
	ckptWritten bool
}

// New builds a fresh run: framework from Config.Core, training corpus loaded
// as units, untrained agent initialised from Config.RL at Config.Seed.
func New(cfg Config) (*Trainer, error) {
	applyDefaults(&cfg)
	base := core.DefaultConfig()
	if cfg.Core != nil {
		base = *cfg.Core
	}
	base.Seed = cfg.Seed
	fw := core.New(base)
	if err := loadCorpus(fw, cfg.Corpus, cfg.GenN, cfg.Dir, cfg.Seed); err != nil {
		return nil, err
	}
	// The iteration total is an execution knob (resume may extend it), so it
	// is canonicalized out of the agent config the checkpoint header stores:
	// a run stopped at -iters 2 and one stopped mid-way to -iters 30 write
	// identical bytes at the same iteration.
	rlCfg := rl.DefaultConfig(nil, nil)
	if cfg.RL != nil {
		rlCfg = *cfg.RL
	}
	rlCfg.Iterations = 0
	agent := fw.InitAgent(&rlCfg)
	t := &Trainer{
		cfg:   cfg,
		fw:    fw,
		agent: agent,
		opt:   nn.NewAdam(agent.Cfg.LR),
		state: checkpointState{
			Seed:         cfg.Seed,
			Corpus:       cfg.Corpus,
			GenN:         cfg.GenN,
			Dir:          cfg.Dir,
			EvalEvery:    cfg.EvalEvery,
			EvalCorpus:   cfg.EvalCorpus,
			EvalGenN:     cfg.EvalGenN,
			EvalBaseline: cfg.EvalBaseline,
			EvalOracle:   cfg.EvalOracle,
		},
	}
	if err := t.finishSetup(); err != nil {
		return nil, err
	}
	return t, nil
}

// Resume restores a run from a checkpoint written by a previous Run: model
// weights, optimizer moments, iteration counter, and curves all continue
// where they stopped, and the training corpus is rebuilt from the
// checkpoint's own spec so the remaining iterations reproduce the
// uninterrupted run bit for bit. Config fields that define the run's math
// (corpus, seed, RL hyperparameters, eval schedule) are taken from the
// checkpoint; cfg supplies only the execution knobs — Iterations (the new
// total), Jobs, CheckpointEvery/CheckpointPath, Core, and Progress.
func Resume(cfg Config, checkpointPath string) (*Trainer, error) {
	base := core.DefaultConfig()
	if cfg.Core != nil {
		base = *cfg.Core
	}
	fw := core.New(base)
	t := &Trainer{cfg: cfg, fw: fw}
	if err := t.readCheckpoint(checkpointPath); err != nil {
		return nil, err
	}
	t.agent = fw.Agent()
	// The framework seed grounds stochastic policies during interleaved
	// evals; restore it alongside everything else.
	fw.Cfg.Seed = t.state.Seed
	if err := loadCorpus(fw, t.state.Corpus, t.state.GenN, t.state.Dir, t.state.Seed); err != nil {
		return nil, err
	}
	if err := t.finishSetup(); err != nil {
		return nil, err
	}
	return t, nil
}

// applyDefaults normalises a fresh-run configuration in place.
func applyDefaults(cfg *Config) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Corpus == "" {
		cfg.Corpus = evalharness.SuiteGenerated
	}
	if cfg.GenN <= 0 {
		cfg.GenN = 16
	}
	if cfg.EvalCorpus == "" {
		cfg.EvalCorpus = cfg.Corpus
	}
	if cfg.EvalGenN <= 0 {
		cfg.EvalGenN = cfg.GenN
	}
	if cfg.EvalBaseline == "" {
		cfg.EvalBaseline = "costmodel"
	}
	if cfg.EvalOracle == "" {
		cfg.EvalOracle = "brute"
	}
}

// finishSetup resolves the iteration target, worker count, and evaluation
// corpus shared by New and Resume.
func (t *Trainer) finishSetup() error {
	t.total = t.cfg.Iterations
	if t.total <= 0 && t.cfg.RL != nil {
		t.total = t.cfg.RL.Iterations
	}
	if t.total <= 0 {
		t.total = rl.DefaultConfig(nil, nil).Iterations
	}
	t.jobs = t.cfg.Jobs
	if t.jobs <= 0 {
		t.jobs = runtime.GOMAXPROCS(0)
	}
	if t.state.EvalEvery > 0 {
		corpus, err := evalharness.BuildCorpus(t.state.EvalCorpus, t.state.EvalGenN, t.state.Seed)
		if err != nil {
			return fmt.Errorf("trainer: eval corpus: %w", err)
		}
		t.evalCorpus = corpus
	}
	return nil
}

// loadCorpus loads a training corpus into the framework as units. Programs
// without vectorizable loops are skipped; anything else that fails to load
// is an error (a training corpus should be clean).
func loadCorpus(fw *core.Framework, spec string, genN int, dir string, seed int64) error {
	corpus, err := evalharness.BuildCorpus(spec, genN, seed)
	if err != nil {
		return fmt.Errorf("trainer: corpus: %w", err)
	}
	if dir != "" {
		extra, err := evalharness.FromDir("dir", dir)
		if err != nil {
			return fmt.Errorf("trainer: corpus dir: %w", err)
		}
		corpus.Add(extra.Items...)
		corpus.Sort()
	}
	for _, it := range corpus.Items {
		err := fw.LoadSource(it.Suite+"/"+it.Name, it.Source, it.Params)
		if errors.Is(err, core.ErrNoLoops) {
			continue
		}
		if err != nil {
			return fmt.Errorf("trainer: %w", err)
		}
	}
	if fw.NumSamples() == 0 {
		return fmt.Errorf("trainer: corpus %q contains no vectorizable loops", spec)
	}
	return nil
}

// Framework exposes the underlying framework (e.g. for scoring the trained
// agent after Run).
func (t *Trainer) Framework() *core.Framework { return t.fw }

// Corpus returns the training-corpus spec the run uses — on a resumed run,
// the one restored from the checkpoint, not whatever the caller passed.
func (t *Trainer) Corpus() string { return t.state.Corpus }

// Run executes the remaining iterations: parallel rollout collection, merged
// gradient updates, interleaved evaluation, periodic checkpoints. It stops
// early when ctx is cancelled, writing a final checkpoint at the completed
// iteration boundary (when checkpointing is configured) and returning the
// partial result alongside the context error; everything checkpointed
// resumes exactly.
func (t *Trainer) Run(ctx context.Context) (*Result, error) {
	start := t.state.Iteration
	lastCkpt := start // iterations already durable in the resume source
	steps := 0
	if n := len(t.state.Steps); n > 0 {
		steps = t.state.Steps[n-1]
	}
	for iter := start; iter < t.total; iter++ {
		if err := ctx.Err(); err != nil {
			// Preserve completed work: a cancellation checkpoint sits on an
			// iteration boundary, so its bytes match a scheduled write there.
			if t.cfg.CheckpointPath != "" && t.state.Iteration > lastCkpt {
				if werr := t.writeCheckpointTraced(ctx); werr == nil {
					lastCkpt = t.state.Iteration
				}
			}
			return t.result(start), err
		}
		_, rsp := obs.StartSpan(ctx, "rollout")
		batch := t.agent.CollectBatch(t.fw, t.state.Seed, iter, t.jobs)
		rsp.End()
		_, usp := obs.StartSpan(ctx, "update")
		loss := t.agent.UpdateBatch(batch, t.opt, t.state.Seed, iter)
		usp.End()
		steps += batch.Len()
		t.state.RewardMean = append(t.state.RewardMean, batch.RewardMean())
		t.state.Loss = append(t.state.Loss, loss)
		t.state.Steps = append(t.state.Steps, steps)
		t.state.Iteration = iter + 1

		var evalPt *EvalPoint
		if t.state.EvalEvery > 0 && (iter+1)%t.state.EvalEvery == 0 {
			pt, err := t.evalPoint(ctx, iter+1, steps, batch.RewardMean())
			if err != nil {
				return t.result(start), err
			}
			t.state.Curve = append(t.state.Curve, pt)
			evalPt = &pt
		}

		ckpt := ""
		done := iter+1 == t.total
		if t.cfg.CheckpointPath != "" &&
			(done || (t.cfg.CheckpointEvery > 0 && (iter+1)%t.cfg.CheckpointEvery == 0)) {
			if err := t.writeCheckpointTraced(ctx); err != nil {
				return t.result(start), err
			}
			lastCkpt = t.state.Iteration
			ckpt = t.cfg.CheckpointPath
		}

		if t.cfg.Progress != nil {
			t.cfg.Progress(Progress{
				Iteration:  iter + 1,
				Total:      t.total,
				Steps:      steps,
				RewardMean: batch.RewardMean(),
				Loss:       loss,
				Eval:       evalPt,
				Checkpoint: ckpt,
			})
		}
	}
	return t.result(start), nil
}

// evalPoint scores the in-progress agent over the evaluation corpus. A fresh
// harness per round guarantees no embedding computed under earlier weights
// is ever reused (training advances the embedder too, and mid-training
// weights have no model-version fingerprint to key a shared cache by).
func (t *Trainer) evalPoint(ctx context.Context, iteration, steps int, rewardMean float64) (EvalPoint, error) {
	ctx, sp := obs.StartSpan(ctx, "eval")
	sp.Annotate(fmt.Sprintf("iteration=%d", iteration))
	defer sp.End()
	// Cached policy instances may hold pre-update weights (the NNS index).
	t.fw.InvalidatePolicies()
	report, err := evalharness.New(t.fw).Run(ctx, t.evalCorpus, evalharness.Options{
		Policy:   "rl",
		Baseline: t.state.EvalBaseline,
		Oracle:   t.state.EvalOracle,
		Jobs:     t.jobs,
		Seed:     t.state.Seed,
	})
	if err != nil {
		return EvalPoint{}, fmt.Errorf("trainer: eval at iteration %d: %w", iteration, err)
	}
	return EvalPoint{
		Iteration:         iteration,
		Steps:             steps,
		RewardMean:        rewardMean,
		MeanSpeedup:       report.Overall.MeanSpeedup,
		GeoMeanSpeedup:    report.Overall.GeoMeanSpeedup,
		MeanOracleSpeedup: report.Overall.MeanOracleSpeedup,
		MeanRegret:        report.Overall.MeanRegret,
		Agreement:         report.Overall.Agreement,
	}, nil
}

// writeCheckpointTraced wraps the checkpoint write in a "checkpoint" span so
// checkpoint latency lands in the stage histogram alongside rollout/update.
func (t *Trainer) writeCheckpointTraced(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "checkpoint")
	defer sp.End()
	return t.writeCheckpoint()
}

// result snapshots the run's outcome.
func (t *Trainer) result(start int) *Result {
	return &Result{
		Stats: &rl.Stats{
			RewardMean: t.state.RewardMean,
			Loss:       t.state.Loss,
			Steps:      t.state.Steps,
		},
		Curve:             t.state.Curve,
		Iterations:        t.state.Iteration,
		StartIteration:    start,
		Units:             t.fw.NumSamples(),
		ModelVersion:      t.fw.ModelVersion(),
		CheckpointPath:    t.cfg.CheckpointPath,
		CheckpointWritten: t.ckptWritten,
	}
}
