package trainer

import (
	"encoding/gob"
	"fmt"
	"os"

	"neurovec/internal/nn"
)

// checkpointState is the training section of a checkpoint, appended after
// the model snapshot (header + weights) in the same gob stream. Together
// with the Adam state that follows it, it is everything a resumed run needs
// beyond the weights: RNG streams are a pure function of (Seed, iteration),
// so no generator state is serialized.
//
// Only fields that determine the run's numbers belong here. Execution knobs
// (worker count, checkpoint cadence, output path) are deliberately absent so
// checkpoint bytes are identical for any -jobs value — the property the CI
// smoke test pins with cmp.
type checkpointState struct {
	// Iteration counts completed PPO iterations; resume continues here.
	Iteration int
	// Seed is the base seed every derived RNG stream mixes from.
	Seed int64
	// Corpus / GenN / Dir rebuild the training corpus on resume.
	Corpus string
	GenN   int
	Dir    string

	// The interleaved-evaluation schedule and spec: part of the math because
	// the learning curve is part of the checkpoint.
	EvalEvery    int
	EvalCorpus   string
	EvalGenN     int
	EvalBaseline string
	EvalOracle   string

	// Learning curves from iteration 0.
	RewardMean []float64
	Loss       []float64
	Steps      []int
	Curve      []EvalPoint
}

// writeCheckpoint atomically writes the full checkpoint — model snapshot,
// training state, optimizer state — to cfg.CheckpointPath via a temp file
// and rename, so a crash mid-write never corrupts the previous checkpoint.
func (t *Trainer) writeCheckpoint() error {
	path := t.cfg.CheckpointPath
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("trainer: checkpoint: %w", err)
	}
	err = t.fw.SaveModelWith(f, func(enc *gob.Encoder) error {
		if err := enc.Encode(t.state); err != nil {
			return fmt.Errorf("trainer: encode state: %w", err)
		}
		return nn.EncodeAdamState(enc, t.opt, t.agent.Params())
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trainer: checkpoint: %w", err)
	}
	t.ckptWritten = true
	return nil
}

// readCheckpoint restores the model and training sections from path into
// t.fw, t.state, and t.opt. The framework's agent is rebuilt by the model
// section before the training section is decoded, so the Adam moments land
// on the restored parameters.
func (t *Trainer) readCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trainer: resume: %w", err)
	}
	defer f.Close()
	return t.fw.LoadModelWith(f, func(dec *gob.Decoder) error {
		if err := dec.Decode(&t.state); err != nil {
			return fmt.Errorf("trainer: %s has no training state (plain model snapshot?): %w", path, err)
		}
		t.opt = nn.NewAdam(t.fw.Agent().Cfg.LR)
		return nn.DecodeAdamState(dec, t.opt, t.fw.Agent().Params())
	})
}
