// Package trainer is the parallel training pipeline of the NeuroVectorizer
// reproduction: PPO over real benchmark corpora, sharded rollout collection,
// durable checkpoints with full resume, and an interleaved evaluation loop
// that records the learning curve against a baseline policy while training
// runs.
//
// # Determinism
//
// A training run is a pure function of (corpus spec, seed, hyperparameters).
// Rollout collection — the expensive part, one simulated compilation and run
// per transition — is sharded across a worker pool, but every batch slot
// draws from its own RNG stream derived from (seed, iteration, slot), so the
// number of workers changes only the wall time: `-jobs 1` and `-jobs 32`
// produce bit-identical weights, statistics, and checkpoint bytes. Gradient
// updates are applied sequentially from the merged batch (PPO's accumulation
// is inherently ordered) with a shuffle stream derived from
// (seed, iteration).
//
// # Checkpoints
//
// A checkpoint is a superset of a model snapshot: the core model section
// (embedding + agent configs and weights, exactly what core.SaveModel
// writes, so `neurovec serve -model` and `annotate -load` consume
// checkpoints directly) followed by a training section holding the iteration
// counter, corpus spec, learning curves, and the Adam optimizer's step count
// and per-parameter moments. RNG streams need no serialized state: they are
// reconstructed from (seed, iteration) alone. Resuming an interrupted run
// therefore continues bit-exactly — a killed-and-resumed run writes the same
// final checkpoint bytes as an uninterrupted one.
//
// # Interleaved evaluation
//
// With Config.EvalEvery > 0, every K-th iteration scores the in-progress
// agent over an evaluation corpus against a baseline policy (default
// "costmodel") and the oracle (default "brute") through the evaluation
// harness, appending an EvalPoint — mean/geomean speedup, oracle regret,
// decision agreement — to the learning curve. The curve is part of the
// checkpoint and of the training-job status the HTTP service reports.
//
// The pipeline is surfaced as `neurovec train` (see docs/TRAINING.md) and as
// asynchronous service training jobs (POST /v1/train).
package trainer
