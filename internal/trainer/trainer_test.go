package trainer

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"neurovec/internal/core"
	"neurovec/internal/rl"
)

// smallCore keeps the embedding tiny so tests stay fast; determinism and
// resume behaviour do not depend on model size.
func smallCore() *core.Config {
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	cfg.Embed.MaxContexts = 24
	return &cfg
}

func fastRL() *rl.Config {
	c := rl.DefaultConfig(nil, nil)
	c.Hidden = []int{16, 16}
	c.Batch = 24
	c.MiniBatch = 12
	c.LR = 1e-3
	return &c
}

func testConfig(t *testing.T, iters, jobs int) Config {
	t.Helper()
	return Config{
		Core:           smallCore(),
		RL:             fastRL(),
		Corpus:         "generated",
		GenN:           3,
		Seed:           1,
		Jobs:           jobs,
		Iterations:     iters,
		CheckpointPath: filepath.Join(t.TempDir(), "ckpt.gob"),
	}
}

func runTrainer(t *testing.T, cfg Config) (*Trainer, *Result) {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJobsDeterminism pins the tentpole contract: a fixed seed produces
// bit-identical statistics, weights, and checkpoint bytes at any worker
// count.
func TestJobsDeterminism(t *testing.T) {
	_, res1 := runTrainer(t, testConfig(t, 2, 1))
	cfg4 := testConfig(t, 2, 4)
	_, res4 := runTrainer(t, cfg4)

	if !reflect.DeepEqual(res1.Stats, res4.Stats) {
		t.Errorf("stats differ between -jobs 1 and -jobs 4:\n%+v\n%+v", res1.Stats, res4.Stats)
	}
	if res1.ModelVersion == "" || res1.ModelVersion != res4.ModelVersion {
		t.Errorf("model versions differ: %q vs %q", res1.ModelVersion, res4.ModelVersion)
	}
	b1 := readFile(t, res1.CheckpointPath)
	b4 := readFile(t, res4.CheckpointPath)
	if !bytes.Equal(b1, b4) {
		t.Errorf("checkpoint bytes differ between -jobs 1 (%d bytes) and -jobs 4 (%d bytes)", len(b1), len(b4))
	}
}

// TestCheckpointResumeEquivalence pins full resume: training 2 iterations,
// checkpointing, and resuming to 4 must write the same final checkpoint as
// an uninterrupted 4-iteration run — optimizer moments, RNG streams, and
// learning curves included. The interleaved eval exercises curve state
// across the resume boundary, and the two legs use different worker counts
// to compound the determinism guarantee.
func TestCheckpointResumeEquivalence(t *testing.T) {
	straight := testConfig(t, 4, 2)
	straight.EvalEvery = 2
	straight.EvalOracle = "costmodel" // keep the interleaved evals cheap
	_, wantRes := runTrainer(t, straight)
	want := readFile(t, straight.CheckpointPath)

	interrupted := testConfig(t, 2, 1)
	interrupted.EvalEvery = 2
	interrupted.EvalOracle = "costmodel"
	_, firstLeg := runTrainer(t, interrupted)
	if firstLeg.Iterations != 2 {
		t.Fatalf("first leg ran %d iterations, want 2", firstLeg.Iterations)
	}

	tr, err := Resume(Config{
		Core:           smallCore(),
		Jobs:           4,
		Iterations:     4,
		CheckpointPath: interrupted.CheckpointPath,
	}, interrupted.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.StartIteration != 2 || res.Iterations != 4 {
		t.Fatalf("resumed run covered iterations %d..%d, want 2..4", res.StartIteration, res.Iterations)
	}
	if !reflect.DeepEqual(res.Stats, wantRes.Stats) {
		t.Errorf("resumed stats differ from uninterrupted run:\n%+v\n%+v", res.Stats, wantRes.Stats)
	}
	if !reflect.DeepEqual(res.Curve, wantRes.Curve) {
		t.Errorf("resumed learning curve differs:\n%+v\n%+v", res.Curve, wantRes.Curve)
	}
	got := readFile(t, interrupted.CheckpointPath)
	if !bytes.Equal(want, got) {
		t.Errorf("final checkpoint bytes differ: uninterrupted %d bytes, resumed %d bytes", len(want), len(got))
	}
}

// TestInterleavedEvalCurve checks that the learning curve is populated and
// carries sane aggregates.
func TestInterleavedEvalCurve(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	cfg.EvalEvery = 2
	cfg.EvalOracle = "costmodel"
	var progressEvals int
	cfg.Progress = func(p Progress) {
		if p.Eval != nil {
			progressEvals++
		}
	}
	_, res := runTrainer(t, cfg)
	if len(res.Curve) != 1 || progressEvals != 1 {
		t.Fatalf("curve has %d points (%d via progress), want 1", len(res.Curve), progressEvals)
	}
	pt := res.Curve[0]
	if pt.Iteration != 2 || pt.Steps != res.Stats.Steps[1] {
		t.Errorf("eval point misplaced: %+v", pt)
	}
	if pt.MeanSpeedup <= 0 || pt.GeoMeanSpeedup <= 0 {
		t.Errorf("eval point has degenerate speedups: %+v", pt)
	}
}

// TestCheckpointServesAsModel checks the compatibility contract: a training
// checkpoint is a plain model snapshot to consumers that ignore the training
// section (`serve -model`, `annotate -load`).
func TestCheckpointServesAsModel(t *testing.T) {
	cfg := testConfig(t, 1, 2)
	_, res := runTrainer(t, cfg)

	fw := core.New(*smallCore())
	if err := fw.LoadModelFile(res.CheckpointPath); err != nil {
		t.Fatalf("checkpoint not loadable as a model snapshot: %v", err)
	}
	if fw.ModelVersion() != res.ModelVersion {
		t.Errorf("loaded version %q, want %q", fw.ModelVersion(), res.ModelVersion)
	}
	inf, err := fw.PredictSource(context.Background(),
		"float a[1024];\nfloat b[1024];\nvoid f() { for (int i = 0; i < 1024; i++) { a[i] = a[i] + b[i]; } }", nil)
	if err != nil {
		t.Fatalf("inference on loaded checkpoint: %v", err)
	}
	if len(inf.Decisions) == 0 {
		t.Error("no decisions from loaded checkpoint")
	}
}

// TestResumeRejectsPlainSnapshot: a weights-only snapshot has no training
// section and must fail Resume loudly instead of restarting silently.
func TestResumeRejectsPlainSnapshot(t *testing.T) {
	fw := core.New(*smallCore())
	if err := loadCorpus(fw, "generated", 2, "", 1); err != nil {
		t.Fatal(err)
	}
	rc := fastRL()
	rc.Iterations = 1
	fw.Train(rc)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := fw.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(Config{Core: smallCore()}, path); err == nil {
		t.Fatal("expected an error resuming from a plain model snapshot")
	}
}

// TestCancellationWritesCheckpoint: an interrupted run with final-only
// checkpointing still persists completed iterations at the boundary, and
// resuming it reproduces the uninterrupted run exactly.
func TestCancellationWritesCheckpoint(t *testing.T) {
	straight := testConfig(t, 3, 2)
	_, wantRes := runTrainer(t, straight)
	want := readFile(t, straight.CheckpointPath)

	killed := testConfig(t, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	killed.Progress = func(p Progress) {
		if p.Iteration == 1 {
			cancel() // simulate a kill between iterations 1 and 2
		}
	}
	tr, err := New(killed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(ctx)
	if err == nil {
		t.Fatal("expected a context error from the interrupted run")
	}
	if !res.CheckpointWritten {
		t.Fatal("interrupted run did not write a checkpoint")
	}
	if res.Iterations != 1 {
		t.Fatalf("interrupted run completed %d iterations, want 1", res.Iterations)
	}

	tr2, err := Resume(Config{Core: smallCore(), Iterations: 3, CheckpointPath: killed.CheckpointPath}, killed.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tr2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Stats, wantRes.Stats) {
		t.Errorf("resumed-after-kill stats differ:\n%+v\n%+v", res2.Stats, wantRes.Stats)
	}
	if got := readFile(t, killed.CheckpointPath); !bytes.Equal(want, got) {
		t.Errorf("resumed-after-kill checkpoint differs from uninterrupted run")
	}
}
