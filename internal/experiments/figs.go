package experiments

import (
	"fmt"
	"math/rand"

	"neurovec/internal/core"
	"neurovec/internal/costmodel"
	"neurovec/internal/dataset"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/polly"
	"neurovec/internal/rl"
	"neurovec/internal/search"
	"neurovec/internal/sim"
	"neurovec/internal/vectorizer"
)

// Options scales the experiments. Quick mode is sized for unit tests and CI
// benches; full mode approaches the paper's sample counts.
type Options struct {
	Quick bool
	Seed  int64
}

// DefaultOptions runs full-size experiments.
func DefaultOptions() Options { return Options{Seed: 1} }

// QuickOptions runs the scaled-down configuration.
func QuickOptions() Options { return Options{Quick: true, Seed: 1} }

func (o Options) trainSamples() int {
	if o.Quick {
		return 400
	}
	return 5000 // the paper limits its training set to 5,000 samples
}

func (o Options) rlConfig(arch archLike) rl.Config {
	c := rl.DefaultConfig(arch.VFs(), arch.IFs())
	c.Seed = o.Seed
	if o.Quick {
		c.Batch = 200
		c.MiniBatch = 50
		c.Iterations = 20
		c.LR = 1e-3
		c.Hidden = []int{32, 32}
	} else {
		c.Batch = 500
		c.MiniBatch = 100
		c.Iterations = 60
		c.LR = 3e-4
	}
	return c
}

func (o Options) embedScale(cfg *core.Config) {
	if o.Quick {
		cfg.Embed.OutDim = 64
		cfg.Embed.EmbedDim = 12
		cfg.Embed.MaxContexts = 48
	}
}

type archLike interface {
	VFs() []int
	IFs() []int
}

// ---- Figure 1 ----

// Fig1 reproduces the dot-product VF x IF grid: performance of every factor
// pair normalized to the baseline cost model's pick.
func Fig1(o Options) *Table {
	cfg := core.DefaultConfig()
	fw := core.New(cfg)
	src := `
int vec[512];
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`
	if err := fw.LoadSource("dot", src, nil); err != nil {
		panic(err)
	}
	base := fw.BaselineCycles(0)
	t := &Table{Title: "Figure 1: dot product, performance vs (VF, IF), normalized to baseline"}
	for _, ifc := range cfg.Arch.IFs() {
		t.Columns = append(t.Columns, fmt.Sprintf("IF=%d", ifc))
	}
	bestV, bestSpeed := "", 0.0
	for _, vf := range cfg.Arch.VFs() {
		vals := map[string]float64{}
		for _, ifc := range cfg.Arch.IFs() {
			sp := base / fw.Cycles(0, vf, ifc)
			vals[fmt.Sprintf("IF=%d", ifc)] = sp
			if sp > bestSpeed {
				bestSpeed, bestV = sp, fmt.Sprintf("(VF=%d,IF=%d)", vf, ifc)
			}
		}
		t.Add(fmt.Sprintf("VF=%d", vf), vals)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("best %s at %.2fx over baseline (paper: (64,8) at ~1.2x)", bestV, bestSpeed),
		"baseline cost model's own pick is (VF=4, IF=2), as in the paper")
	return t
}

// ---- Figure 2 ----

// Fig2 reproduces the brute-force-vs-baseline study on the LLVM vectorizer
// test-suite analogues: optimal performance normalized to the baseline.
func Fig2(o Options) *Table {
	cfg := core.DefaultConfig()
	fw := core.New(cfg)
	t := &Table{
		Title:   "Figure 2: brute-force search vs baseline on the vectorizer test suite",
		Columns: []string{"brute/baseline"},
	}
	for _, b := range dataset.LLVMSuite() {
		start := fw.NumSamples()
		if err := fw.LoadSource(b.Name, b.Source, b.ParamValues); err != nil {
			panic(err)
		}
		end := fw.NumSamples()
		// Per-loop brute force; the suite programs are single-loop, so the
		// per-unit program measurement is exact.
		best := 0.0
		base := fw.BaselineCycles(start)
		for i := start; i < end; i++ {
			vf, ifc := fw.BruteForceLabel(i)
			best += fw.Cycles(i, vf, ifc) - fw.BaselineCycles(i)
		}
		t.Add(b.Name, map[string]float64{"brute/baseline": base / (base + best)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("mean %.3fx; paper reports gaps up to ~1.5x growing with test complexity", t.Mean("brute/baseline")))
	return t
}

// ---- Figures 5 and 6: training sweeps ----

// Fig5 sweeps learning rate, network architecture, and batch size, returning
// the reward-mean and loss curves.
func Fig5(o Options) *Curves {
	curves := NewCurves("Figure 5: hyperparameter sweep (reward mean / training loss)")
	base := o.rlConfig(archOf())

	type variant struct {
		label string
		mod   func(c *rl.Config)
	}
	var variants []variant
	for _, lr := range []float64{5e-3, 5e-4, 5e-5} {
		lr := lr
		variants = append(variants, variant{fmt.Sprintf("lr=%g", lr), func(c *rl.Config) { c.LR = lr }})
	}
	hiddens := [][]int{{64, 64}, {128, 128}, {256, 256}}
	if o.Quick {
		hiddens = [][]int{{16, 16}, {32, 32}, {64, 64}}
	}
	for _, h := range hiddens {
		h := h
		variants = append(variants, variant{fmt.Sprintf("net=%dx%d", h[0], h[1]), func(c *rl.Config) { c.Hidden = h }})
	}
	batches := []int{500, 1000, 4000}
	if o.Quick {
		batches = []int{64, 128, 256}
	}
	for _, bs := range batches {
		bs := bs
		variants = append(variants, variant{fmt.Sprintf("batch=%d", bs), func(c *rl.Config) {
			c.Batch = bs
			if c.MiniBatch > bs {
				c.MiniBatch = bs
			}
		}})
	}

	set := dataset.Generate(dataset.GenConfig{N: o.trainSamples() / 2, Seed: o.Seed})
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.Seed = o.Seed
		o.embedScale(&cfg)
		fw := core.New(cfg)
		if err := fw.LoadSet(set); err != nil {
			panic(err)
		}
		rc := base
		v.mod(&rc)
		stats := fw.Train(&rc)
		curves.RewardMean[v.label] = stats.RewardMean
		curves.Loss[v.label] = stats.Loss
		curves.Steps[v.label] = stats.Steps
	}
	return curves
}

// Fig6 compares the three action-space definitions.
func Fig6(o Options) *Curves {
	curves := NewCurves("Figure 6: action-space definitions (reward mean / training loss)")
	set := dataset.Generate(dataset.GenConfig{N: o.trainSamples() / 2, Seed: o.Seed})
	for _, space := range []rl.SpaceKind{rl.Discrete, rl.Continuous1, rl.Continuous2} {
		cfg := core.DefaultConfig()
		cfg.Seed = o.Seed
		o.embedScale(&cfg)
		fw := core.New(cfg)
		if err := fw.LoadSet(set); err != nil {
			panic(err)
		}
		rc := o.rlConfig(archOf())
		rc.Space = space
		stats := fw.Train(&rc)
		curves.RewardMean[space.String()] = stats.RewardMean
		curves.Loss[space.String()] = stats.Loss
		curves.Steps[space.String()] = stats.Steps
	}
	return curves
}

func archOf() archLike { return core.DefaultConfig().Arch }

// ---- Figure 7: the main comparison ----

// Fig7 trains the full framework and evaluates the twelve held-out
// benchmarks under every method: baseline, random search, Polly, NNS,
// decision tree, RL, and brute-force search. Values are performance
// normalized to the baseline (higher is better).
func Fig7(o Options) *Table {
	fw, sup := trainedFramework(o)
	return evaluateBenchmarks(fw, sup, dataset.EvalBenchmarks(), o, evalAll)
}

// Fig8 evaluates the PolyBench analogues: baseline, Polly, RL, and the
// combined Polly+RL configuration the paper projects to 2.92x.
func Fig8(o Options) *Table {
	fw, sup := trainedFramework(o)
	return evaluateBenchmarks(fw, sup, dataset.PolyBench(), o, evalPolyFocus)
}

// Fig9 evaluates the MiBench analogues: whole programs where loops are a
// minor fraction of runtime.
func Fig9(o Options) *Table {
	fw, sup := trainedFramework(o)
	return evaluateBenchmarks(fw, sup, dataset.MiBench(), o, evalMiFocus)
}

type evalMode int

const (
	evalAll evalMode = iota
	evalPolyFocus
	evalMiFocus
)

// trainedFramework builds the framework, loads the training corpus, trains
// PPO, and returns it with the trained agent plus the labelled data for the
// supervised methods.
func trainedFramework(o Options) (*core.Framework, *supervised) {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	o.embedScale(&cfg)
	fw := core.New(cfg)
	set := dataset.Generate(dataset.GenConfig{N: o.trainSamples(), Seed: o.Seed})
	train, _ := set.Split(0.2) // paper keeps out 20% for testing
	if err := fw.LoadSet(train); err != nil {
		panic(err)
	}
	rc := o.rlConfig(cfg.Arch)
	fw.Train(&rc)
	return fw, buildSupervised(fw, o)
}

// supervised holds the NNS index and decision tree built on the learned
// embedding with brute-force labels (Section 3.5).
type supervised struct {
	nns  *search.NNS
	tree *search.Tree
	vfs  []int
	ifs  []int
}

func buildSupervised(fw *core.Framework, o Options) *supervised {
	vfs, ifs := fw.Cfg.Arch.VFs(), fw.Cfg.Arch.IFs()
	s := &supervised{nns: &search.NNS{}, vfs: vfs, ifs: ifs}
	n := fw.NumSamples()
	labelBudget := n
	if o.Quick && labelBudget > 320 {
		labelBudget = 320 // brute-force labelling is the expensive part
	}
	var xs [][]float64
	var ys []int
	step := n / labelBudget
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		vf, ifc := fw.BruteForceLabel(i)
		emb := fw.Embedding(i)
		s.nns.Add(emb, vf, ifc)
		xs = append(xs, emb)
		ys = append(ys, jointClass(vfs, ifs, vf, ifc))
	}
	s.tree = search.TrainTree(xs, ys, len(vfs)*len(ifs), search.DefaultTreeConfig())
	return s
}

func jointClass(vfs, ifs []int, vf, ifc int) int {
	return indexOf(vfs, vf)*len(ifs) + indexOf(ifs, ifc)
}

func declass(vfs, ifs []int, k int) (int, int) {
	return vfs[k/len(ifs)], ifs[k%len(ifs)]
}

func indexOf(a []int, v int) int {
	for i, x := range a {
		if x == v {
			return i
		}
	}
	return 0
}

// evaluateBenchmarks measures each benchmark under the methods selected by
// mode, reporting performance normalized to the baseline. The supervised
// models must have been built over the framework's training units before
// any benchmark units were loaded.
func evaluateBenchmarks(fw *core.Framework, sup *supervised, bs []dataset.Benchmark, o Options, mode evalMode) *Table {
	cfg := fw.Cfg
	rng := rand.New(rand.NewSource(o.Seed + 1000))

	var cols []string
	switch mode {
	case evalAll:
		cols = []string{"random", "polly", "NNS", "tree", "RL", "brute"}
	case evalPolyFocus:
		cols = []string{"polly", "RL", "polly+RL"}
	case evalMiFocus:
		cols = []string{"polly", "RL"}
	}
	title := map[evalMode]string{
		evalAll:       "Figure 7: twelve benchmarks, performance normalized to baseline",
		evalPolyFocus: "Figure 8: PolyBench, performance normalized to baseline",
		evalMiFocus:   "Figure 9: MiBench, performance normalized to baseline",
	}[mode]
	t := &Table{Title: title, Columns: cols}

	for _, b := range bs {
		opts := lower.DefaultOptions()
		opts.ParamValues = b.ParamValues
		prog, err := lang.ParseFile(b.Name, b.Source)
		if err != nil {
			panic(err)
		}
		irp, err := lower.Program(prog, opts)
		if err != nil {
			panic(err)
		}

		// Register the benchmark's loops as units for embedding/prediction.
		start := fw.NumSamples()
		if err := fw.LoadSource(b.Name, b.Source, b.ParamValues); err != nil {
			panic(err)
		}
		end := fw.NumSamples()

		baseCycles := sim.Program(irp, costmodel.Plans(irp, cfg.Arch), cfg.Sim).Cycles
		scalar := b.ScalarWorkFactor * baseCycles
		baseTotal := baseCycles + scalar

		perf := func(cycles float64) float64 { return baseTotal / (cycles + scalar) }

		decide := func(how func(i int, loop *ir.Loop) (int, int)) float64 {
			plans := map[string]*vectorizer.Plan{}
			for i := start; i < end; i++ {
				u := fw.Units()[i]
				vf, ifc := how(i, u.Loop)
				plans[u.Loop.Label] = vectorizer.New(u.Loop, cfg.Arch, vf, ifc)
			}
			// Loops without decisions fall back to baseline.
			for label, p := range costmodel.Plans(irp, cfg.Arch) {
				if _, ok := plans[label]; !ok {
					plans[label] = p
				}
			}
			return sim.Program(irp, plans, cfg.Sim).Cycles
		}

		vals := map[string]float64{}
		for _, col := range cols {
			switch col {
			case "random":
				vals[col] = perf(decide(func(int, *ir.Loop) (int, int) {
					return search.Random(cfg.Arch.VFs(), cfg.Arch.IFs(), rng)
				}))
			case "polly":
				vals[col] = perf(pollyCycles(irp, nil, fw, start, end))
			case "polly+RL":
				vals[col] = perf(pollyCycles(irp, fw.Agent(), fw, start, end))
			case "NNS":
				vals[col] = perf(decide(func(i int, _ *ir.Loop) (int, int) {
					return sup.nns.Predict(fw.Embedding(i))
				}))
			case "tree":
				vals[col] = perf(decide(func(i int, _ *ir.Loop) (int, int) {
					return declass(sup.vfs, sup.ifs, sup.tree.Predict(fw.Embedding(i)))
				}))
			case "RL":
				vals[col] = perf(decide(func(i int, _ *ir.Loop) (int, int) {
					return mustPredict(fw, i)
				}))
			case "brute":
				vals[col] = perf(decide(func(i int, _ *ir.Loop) (int, int) {
					return fw.BruteForceLabel(i)
				}))
			}
		}
		t.Add(b.Name, vals)
	}

	for _, c := range cols {
		t.Notes = append(t.Notes, fmt.Sprintf("geomean %-8s %.3fx", c, t.GeoMean(c)))
	}
	return t
}

// mustPredict is the experiment harness's view of Framework.Predict: every
// table trains its agent before querying it, so ErrNoAgent here is a bug.
func mustPredict(fw *core.Framework, i int) (int, int) {
	vf, ifc, err := fw.Predict(i)
	if err != nil {
		panic(err)
	}
	return vf, ifc
}

// pollyCycles runs the Polly analogue over the program and simulates it;
// when agent != nil the transformed innermost loops take the agent's
// decisions (the combined Polly + deep RL configuration).
func pollyCycles(irp *ir.Program, agent *rl.Agent, fw *core.Framework, start, end int) float64 {
	res := polly.Optimize(irp, polly.DefaultOptions(fw.Cfg.Arch))
	plans := costmodel.Plans(res.Program, fw.Cfg.Arch)
	if agent != nil {
		// Innermost point loops keep their original labels, so unit
		// predictions map directly.
		for i := start; i < end; i++ {
			u := fw.Units()[i]
			if l := res.Program.FindLoop(u.Loop.Label); l != nil && l.Innermost() {
				vf, ifc := agent.Predict(i)
				plans[l.Label] = vectorizer.New(l, fw.Cfg.Arch, vf, ifc)
			}
		}
	}
	return sim.Program(res.Program, plans, fw.Cfg.Sim).Cycles
}

// TrainingEfficiency reports the sample-efficiency comparison from the
// paper's Section 4: PPO converges with ~5,000 samples, 35x fewer than the
// 35-combination brute-force sweep a supervised method would need.
func TrainingEfficiency(o Options) *Table {
	t := &Table{
		Title:   "Training efficiency: samples needed per method",
		Columns: []string{"samples"},
	}
	n := float64(o.trainSamples())
	t.Add("PPO (one compile per step)", map[string]float64{"samples": n})
	t.Add("brute force / supervised labels", map[string]float64{"samples": n * 35})
	t.Notes = append(t.Notes, "the paper: converged with 5,000 samples, 35x less than brute force")
	return t
}
