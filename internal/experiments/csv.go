package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV emits the table in CSV form (row label first, then one column
// per table column), so regenerated figures can be plotted externally.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"name"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.rows {
		rec := make([]string, 0, len(header))
		rec = append(rec, r.label)
		for _, c := range t.Columns {
			if v, ok := r.values[c]; ok {
				rec = append(rec, strconv.FormatFloat(v, 'g', 6, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the learning curves in long form: config, iteration,
// steps, reward_mean, loss — one row per training iteration, ready for any
// plotting tool (the format Figures 5 and 6 need).
func (c *Curves) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "iteration", "steps", "reward_mean", "loss"}); err != nil {
		return err
	}
	labels := make([]string, 0, len(c.RewardMean))
	for l := range c.RewardMean {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, label := range labels {
		rewards := c.RewardMean[label]
		losses := c.Loss[label]
		steps := c.Steps[label]
		for i, r := range rewards {
			loss, step := "", ""
			if i < len(losses) {
				loss = strconv.FormatFloat(losses[i], 'g', 6, 64)
			}
			if i < len(steps) {
				step = strconv.Itoa(steps[i])
			}
			rec := []string{label, fmt.Sprint(i), step, strconv.FormatFloat(r, 'g', 6, 64), loss}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
