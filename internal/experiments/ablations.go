package experiments

import (
	"fmt"
	"math"

	"neurovec/internal/core"
	"neurovec/internal/costmodel"
	"neurovec/internal/dataset"
	"neurovec/internal/features"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/polly"
	"neurovec/internal/ranker"
	"neurovec/internal/sim"
)

// AblationEmbedding compares the paper's learned code2vec embedding against
// the hand-engineered feature vector of the prior work it criticises
// (Stock et al.): same agent, same data, different observations.
func AblationEmbedding(o Options) *Curves {
	curves := NewCurves("Ablation: learned embedding vs hand-crafted features")
	set := dataset.Generate(dataset.GenConfig{N: o.trainSamples() / 2, Seed: o.Seed})

	// code2vec, end to end.
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	o.embedScale(&cfg)
	fw := core.New(cfg)
	if err := fw.LoadSet(set); err != nil {
		panic(err)
	}
	rc := o.rlConfig(cfg.Arch)
	stats := fw.Train(&rc)
	curves.RewardMean["code2vec (end-to-end)"] = stats.RewardMean
	curves.Loss["code2vec (end-to-end)"] = stats.Loss

	// Hand-crafted features, frozen.
	fw2 := core.New(cfg)
	if err := fw2.LoadSet(set); err != nil {
		panic(err)
	}
	emb := &features.Embedder{Loops: fw2.UnitLoops()}
	rc2 := o.rlConfig(cfg.Arch)
	stats2 := fw2.TrainWithEmbedder(emb, &rc2)
	curves.RewardMean["hand-crafted features"] = stats2.RewardMean
	curves.Loss["hand-crafted features"] = stats2.Loss
	return curves
}

// AblationCompilePenalty studies Section 3.4's compile-time rule: with the
// -9 penalty the agent learns "not to over estimate the vectorization";
// without it (an infinite compile budget) the agent freely picks
// configurations with pathological compile times. The table reports the
// final reward and the mean compile-time blow-up of the greedy policy.
func AblationCompilePenalty(o Options) *Table {
	t := &Table{
		Title:   "Ablation: compile-time timeout penalty (Section 3.4)",
		Columns: []string{"final-reward", "mean-compile-blowup", "timeout-rate"},
	}
	set := dataset.Generate(dataset.GenConfig{N: o.trainSamples() / 3, Seed: o.Seed, Families: []string{
		// Big-bodied families where extreme factors blow the compile budget.
		"complex_mult", "bitwise", "convert_unroll", "saxpy", "reduction",
	}})
	for _, variant := range []struct {
		label   string
		factor  float64
		penalty float64
	}{
		{"penalty=-9 (paper)", 10, -9},
		{"penalty off", math.Inf(1), 0},
	} {
		cfg := core.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.CompileTimeoutFactor = variant.factor
		cfg.TimeoutPenalty = variant.penalty
		o.embedScale(&cfg)
		fw := core.New(cfg)
		if err := fw.LoadSet(set); err != nil {
			panic(err)
		}
		rc := o.rlConfig(cfg.Arch)
		stats := fw.Train(&rc)

		// Probe the greedy policy's compile behaviour.
		blowup, timeouts := 0.0, 0
		n := fw.NumSamples()
		for i := 0; i < n; i++ {
			vf, ifc := mustPredict(fw, i)
			ratio := fw.CompileBlowup(i, vf, ifc)
			blowup += ratio
			if ratio > 10 {
				timeouts++
			}
		}
		t.Add(variant.label, map[string]float64{
			"final-reward":        finalMean(stats.RewardMean, 5),
			"mean-compile-blowup": blowup / float64(n),
			"timeout-rate":        float64(timeouts) / float64(n),
		})
	}
	return t
}

// AblationPolly isolates the two transforms of the Polly analogue on the
// suites where each matters: tiling on the PolyBench gemm, fusion on the
// bandwidth-bound fusible pair.
func AblationPolly(o Options) *Table {
	t := &Table{
		Title:   "Ablation: Polly transforms (speedup over baseline)",
		Columns: []string{"tiling-only", "fusion-only", "both"},
	}
	cases := []dataset.Benchmark{
		pickBenchmark(dataset.PolyBench(), "gemm"),
		pickBenchmark(dataset.EvalBenchmarks(), "bench10_fusible"),
	}
	arch := core.DefaultConfig().Arch
	simCfg := sim.Config{Arch: arch, WarmCaches: true}
	for _, b := range cases {
		opts := lower.DefaultOptions()
		opts.ParamValues = b.ParamValues
		prog, err := lang.ParseFile(b.Name, b.Source)
		if err != nil {
			panic(err)
		}
		irp, err := lower.Program(prog, opts)
		if err != nil {
			panic(err)
		}
		base := sim.Program(irp, costmodel.Plans(irp, arch), simCfg).Cycles
		vals := map[string]float64{}
		for _, v := range []struct {
			label          string
			tiling, fusion bool
		}{
			{"tiling-only", true, false},
			{"fusion-only", false, true},
			{"both", true, true},
		} {
			po := polly.DefaultOptions(arch)
			po.EnableTiling = v.tiling
			po.EnableFusion = v.fusion
			res := polly.Optimize(irp, po)
			cycles := sim.Program(res.Program, costmodel.Plans(res.Program, arch), simCfg).Cycles
			vals[v.label] = base / cycles
		}
		t.Add(b.Name, vals)
	}
	return t
}

// NeuralCostModel evaluates the Section 5 learned cost model (package
// ranker) against the baseline and the RL agent on the twelve held-out
// benchmarks.
func NeuralCostModel(o Options) *Table {
	fw, _ := trainedFramework(o)

	// Train the ranker end to end on the same units.
	rc := ranker.DefaultConfig(fw.Cfg.Arch.VFs(), fw.Cfg.Arch.IFs())
	rc.Seed = o.Seed
	if o.Quick {
		rc.Steps = 15000
		rc.Hidden = []int{48, 48}
		rc.LR = 1e-3
	} else {
		rc.Steps = 120000
	}
	model := ranker.New(fw.CodeEmbedder(), rc)
	model.Train(fw)

	t := &Table{
		Title:   "Section 5 extension: learned neural cost model vs RL agent",
		Columns: []string{"RL", "neural-cost-model", "brute"},
	}
	for _, b := range dataset.EvalBenchmarks() {
		start := fw.NumSamples()
		if err := fw.LoadSource(b.Name, b.Source, b.ParamValues); err != nil {
			panic(err)
		}
		end := fw.NumSamples()
		base, rlC, rkC, brC := 0.0, 0.0, 0.0, 0.0
		for i := start; i < end; i++ {
			base += fw.BaselineCycles(i)
			vf, ifc := mustPredict(fw, i)
			rlC += fw.Cycles(i, vf, ifc)
			vf, ifc = model.Best(i)
			rkC += fw.Cycles(i, vf, ifc)
			vf, ifc = fw.BruteForceLabel(i)
			brC += fw.Cycles(i, vf, ifc)
		}
		t.Add(b.Name, map[string]float64{
			"RL":                base / rlC,
			"neural-cost-model": base / rkC,
			"brute":             base / brC,
		})
	}
	for _, c := range t.Columns {
		t.Notes = append(t.Notes, fmt.Sprintf("geomean %-18s %.3fx", c, t.GeoMean(c)))
	}
	return t
}

func pickBenchmark(bs []dataset.Benchmark, name string) dataset.Benchmark {
	for _, b := range bs {
		if b.Name == name {
			return b
		}
	}
	panic("benchmark not found: " + name)
}

func finalMean(series []float64, k int) float64 {
	if len(series) == 0 {
		return math.NaN()
	}
	if k > len(series) {
		k = len(series)
	}
	s := 0.0
	for _, v := range series[len(series)-k:] {
		s += v
	}
	return s / float64(k)
}
