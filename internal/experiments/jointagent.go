package experiments

import (
	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/rl"
)

// AblationJointAgent reproduces the design decision of the paper's Section
// 3.3: "Initially we trained two agents, one that predicts VF and the other
// predicts IF independently. However, from our experiment combining these
// two agents into one agent with a single neural network that predicts the
// VF and IF simultaneously performed better."
//
// The joint configuration is the framework's normal agent. The independent
// configuration trains two single-factor agents in alternating rounds: the
// VF agent's rewards are computed with the IF agent's current greedy choice
// and vice versa — each agent sees the other only through the environment,
// exactly the coupling the joint network internalises.
func AblationJointAgent(o Options) *Curves {
	curves := NewCurves("Ablation: joint (VF,IF) agent vs two independent agents")
	set := dataset.Generate(dataset.GenConfig{N: o.trainSamples() / 2, Seed: o.Seed})

	// ---- Joint agent (the paper's final design) ----
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	o.embedScale(&cfg)
	fw := core.New(cfg)
	if err := fw.LoadSet(set); err != nil {
		panic(err)
	}
	rc := o.rlConfig(cfg.Arch)
	stats := fw.Train(&rc)
	curves.RewardMean["joint"] = stats.RewardMean
	curves.Loss["joint"] = stats.Loss

	// ---- Two independent agents ----
	fw2 := core.New(cfg)
	if err := fw2.LoadSet(set); err != nil {
		panic(err)
	}
	base := o.rlConfig(cfg.Arch)

	vfCfg := base
	vfCfg.IFs = []int{1} // this head is degenerate; the env supplies real IF
	ifCfg := base
	ifCfg.VFs = []int{1}

	vfAgent := rl.NewAgent(fw2.CodeEmbedder(), vfCfg)
	ifAgent := rl.NewAgent(fw2.CodeEmbedder(), ifCfg)

	vfEnv := &crossEnv{fw: fw2, pickIF: func(s int) int { _, ifc := ifAgent.Predict(s); return ifc }}
	ifEnv := &crossEnv{fw: fw2, pickVF: func(s int) int { vf, _ := vfAgent.Predict(s); return vf }}

	// Alternate training rounds with the same total environment budget as
	// the joint agent (half the iterations each).
	rounds := base.Iterations / 4
	if rounds < 1 {
		rounds = 1
	}
	var rewardCurve, lossCurve []float64
	remaining := base.Iterations
	for remaining > 0 {
		k := rounds
		if k > remaining {
			k = remaining
		}
		half := k / 2
		if half < 1 {
			half = 1
		}
		vfAgent.Cfg.Iterations = half
		sv := vfAgent.Train(vfEnv)
		ifAgent.Cfg.Iterations = k - half
		var si *rl.Stats
		if k-half > 0 {
			si = ifAgent.Train(ifEnv)
		}
		rewardCurve = append(rewardCurve, sv.RewardMean...)
		lossCurve = append(lossCurve, sv.Loss...)
		if si != nil {
			rewardCurve = append(rewardCurve, si.RewardMean...)
			lossCurve = append(lossCurve, si.Loss...)
		}
		remaining -= k
	}
	curves.RewardMean["independent"] = rewardCurve
	curves.Loss["independent"] = lossCurve
	return curves
}

// crossEnv routes one agent's single-factor actions through the other
// agent's greedy choice for the missing factor.
type crossEnv struct {
	fw     *core.Framework
	pickVF func(sample int) int
	pickIF func(sample int) int
}

func (e *crossEnv) NumSamples() int { return e.fw.NumSamples() }

func (e *crossEnv) Reward(sample, vf, ifc int) float64 {
	if e.pickVF != nil {
		vf = e.pickVF(sample)
	}
	if e.pickIF != nil {
		ifc = e.pickIF(sample)
	}
	return e.fw.Reward(sample, vf, ifc)
}
