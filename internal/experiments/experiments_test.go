package experiments

import (
	"strings"
	"testing"
)

func TestFig1Shape(t *testing.T) {
	tab := Fig1(QuickOptions())
	if len(tab.Rows()) != 7 || len(tab.Columns) != 5 {
		t.Fatalf("grid = %dx%d, want 7x5", len(tab.Rows()), len(tab.Columns))
	}
	// The baseline's own pick normalizes to 1.0.
	if v, ok := tab.Get("VF=4", "IF=2"); !ok || v < 0.999 || v > 1.001 {
		t.Errorf("baseline cell = %v, want 1.0", v)
	}
	// Scalar execution is clearly below baseline.
	if v, _ := tab.Get("VF=1", "IF=1"); v >= 1 {
		t.Errorf("scalar cell = %v, want < 1", v)
	}
	// A majority of points beat the baseline (paper: 26/35).
	better := 0
	for _, row := range tab.Rows() {
		for _, col := range tab.Columns {
			if v, ok := tab.Get(row, col); ok && v > 1.0 {
				better++
			}
		}
	}
	if better < 14 {
		t.Errorf("points above baseline = %d/35, want a majority", better)
	}
	if s := tab.String(); !strings.Contains(s, "Figure 1") {
		t.Error("table renders without title")
	}
}

func TestFig2AllAtLeastBaseline(t *testing.T) {
	tab := Fig2(QuickOptions())
	if len(tab.Rows()) != 17 {
		t.Fatalf("rows = %d, want 17 suite kernels", len(tab.Rows()))
	}
	for _, rowName := range tab.Rows() {
		v, _ := tab.Get(rowName, "brute/baseline")
		if v < 0.999 {
			t.Errorf("%s: brute force %.3fx below baseline — impossible by construction", rowName, v)
		}
	}
	if m := tab.Mean("brute/baseline"); m < 1.05 {
		t.Errorf("mean brute/baseline = %.3fx, want a visible gap (paper: up to 1.5x)", m)
	}
}

func TestFig6DiscreteBest(t *testing.T) {
	curves := Fig6(QuickOptions())
	d := curves.Final("discrete", 4)
	c1 := curves.Final("continuous-1", 4)
	c2 := curves.Final("continuous-2", 4)
	if d < c1 && d < c2 {
		t.Errorf("discrete (%.3f) below both continuous spaces (%.3f, %.3f); paper has discrete best", d, c1, c2)
	}
	for _, label := range []string{"discrete", "continuous-1", "continuous-2"} {
		if len(curves.RewardMean[label]) == 0 {
			t.Errorf("missing curve for %s", label)
		}
	}
}

func TestFig7Ordering(t *testing.T) {
	tab := Fig7(QuickOptions())
	if len(tab.Rows()) != 12 {
		t.Fatalf("rows = %d, want 12 benchmarks", len(tab.Rows()))
	}
	brute := tab.GeoMean("brute")
	rlG := tab.GeoMean("RL")
	nns := tab.GeoMean("NNS")
	tree := tab.GeoMean("tree")
	randG := tab.GeoMean("random")

	t.Logf("geomeans: brute=%.3f RL=%.3f NNS=%.3f tree=%.3f polly=%.3f random=%.3f",
		brute, rlG, nns, tree, tab.GeoMean("polly"), randG)

	if brute < 1.2 {
		t.Errorf("brute geomean = %.3fx; the headroom over the baseline is missing", brute)
	}
	if rlG <= 1.0 {
		t.Errorf("RL geomean = %.3fx, must beat the baseline", rlG)
	}
	if rlG > brute*1.001 {
		t.Errorf("RL (%.3f) exceeds brute force (%.3f) — impossible", rlG, brute)
	}
	// Paper: RL within a few percent of brute force. Quick mode is looser.
	if rlG < brute*0.75 {
		t.Errorf("RL (%.3f) too far below brute (%.3f) even for quick mode", rlG, brute)
	}
	if nns <= 1.0 || tree <= 1.0 {
		t.Errorf("supervised methods below baseline: NNS=%.3f tree=%.3f", nns, tree)
	}
	// Random search performs much worse than the baseline (paper).
	if randG >= 1.0 {
		t.Errorf("random geomean = %.3fx, want < 1 like the paper", randG)
	}
	// Benchmark #10 (fusible pair): Polly beats brute-force VF/IF search.
	p10, _ := tab.Get("bench10_fusible", "polly")
	b10, _ := tab.Get("bench10_fusible", "brute")
	if p10 <= b10 {
		t.Errorf("bench10: polly (%.3f) should beat brute force (%.3f) via fusion", p10, b10)
	}
}

func TestFig8PollyAndRL(t *testing.T) {
	tab := Fig8(QuickOptions())
	if len(tab.Rows()) != 6 {
		t.Fatalf("rows = %d, want 6 PolyBench kernels", len(tab.Rows()))
	}
	rlG := tab.GeoMean("RL")
	pollyG := tab.GeoMean("polly")
	comboG := tab.GeoMean("polly+RL")
	t.Logf("geomeans: polly=%.3f RL=%.3f polly+RL=%.3f", pollyG, rlG, comboG)

	if rlG <= 1.0 {
		t.Errorf("RL geomean on PolyBench = %.3f, want > 1 (paper: 2.08x)", rlG)
	}
	if pollyG <= 1.0 {
		t.Errorf("Polly geomean = %.3f, want > 1 (paper: 1.79x implied)", pollyG)
	}
	// The combination beats either alone (paper: 2.92x).
	if comboG < rlG*0.999 && comboG < pollyG*0.999 {
		t.Errorf("polly+RL (%.3f) below both components (%.3f, %.3f)", comboG, rlG, pollyG)
	}
	// Polly must win at least one kernel and RL at least one (paper: RL
	// wins 3/6).
	pollyWins, rlWins := 0, 0
	for _, r := range tab.Rows() {
		p, _ := tab.Get(r, "polly")
		q, _ := tab.Get(r, "RL")
		if p > q {
			pollyWins++
		} else if q > p {
			rlWins++
		}
	}
	if pollyWins == 0 || rlWins == 0 {
		t.Errorf("wins split polly=%d RL=%d, want both non-zero (paper: 3/3)", pollyWins, rlWins)
	}
}

func TestFig9SmallUniformGains(t *testing.T) {
	tab := Fig9(QuickOptions())
	if len(tab.Rows()) != 6 {
		t.Fatalf("rows = %d, want 6 MiBench programs", len(tab.Rows()))
	}
	rlG := tab.GeoMean("RL")
	t.Logf("geomeans: polly=%.3f RL=%.3f", tab.GeoMean("polly"), rlG)
	if rlG <= 1.0 {
		t.Errorf("RL geomean = %.3f, want > 1 (paper: 1.1x)", rlG)
	}
	if rlG > 1.6 {
		t.Errorf("RL geomean = %.3f on loop-minor programs; Amdahl dilution missing (paper: 1.1x)", rlG)
	}
	// RL at least matches Polly on these (paper: beats it on all).
	if rlG < tab.GeoMean("polly")*0.95 {
		t.Errorf("RL (%.3f) below Polly (%.3f) on MiBench", rlG, tab.GeoMean("polly"))
	}
}

func TestTrainingEfficiencyTable(t *testing.T) {
	tab := TrainingEfficiency(QuickOptions())
	ppo, _ := tab.Get("PPO (one compile per step)", "samples")
	brute, _ := tab.Get("brute force / supervised labels", "samples")
	if brute != ppo*35 {
		t.Fatalf("brute = %v, want 35x PPO's %v", brute, ppo)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"x", "y"}}
	tab.Add("r1", map[string]float64{"x": 1.5, "y": 2})
	tab.Add("r2", map[string]float64{"x": 3})
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "name,x,y\n") {
		t.Fatalf("csv header wrong:\n%s", got)
	}
	if !strings.Contains(got, "r1,1.5,2") {
		t.Fatalf("csv row missing:\n%s", got)
	}
	if !strings.Contains(got, "r2,3,\n") {
		t.Fatalf("missing cell should be empty:\n%s", got)
	}
}

func TestCurvesCSV(t *testing.T) {
	c := NewCurves("t")
	c.RewardMean["a"] = []float64{-0.5, 0.1}
	c.Loss["a"] = []float64{1, 0.5}
	c.Steps["a"] = []int{100, 200}
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "config,iteration,steps,reward_mean,loss") {
		t.Fatalf("curve csv header wrong:\n%s", got)
	}
	if !strings.Contains(got, "a,1,200,0.1,0.5") {
		t.Fatalf("curve csv row missing:\n%s", got)
	}
}

func TestTableUtilities(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a"}}
	tab.Add("r1", map[string]float64{"a": 2})
	tab.Add("r2", map[string]float64{"a": 8})
	if g := tab.GeoMean("a"); g < 3.99 || g > 4.01 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if m := tab.Mean("a"); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if _, ok := tab.Get("r3", "a"); ok {
		t.Error("missing row should not be found")
	}
	if !strings.Contains(tab.String(), "r1") {
		t.Error("render missing rows")
	}
}
