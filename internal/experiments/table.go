// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate. Each FigN function returns
// a printable artifact; the bench harness (bench_test.go) and the CLI's
// "report" command drive them. EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a printable named grid of float values.
type Table struct {
	Title   string
	Columns []string
	rows    []row
	// Notes carry free-text observations attached below the table.
	Notes []string
}

type row struct {
	label  string
	values map[string]float64
}

// Add appends a row; values are keyed by column name.
func (t *Table) Add(label string, values map[string]float64) {
	t.rows = append(t.rows, row{label: label, values: values})
}

// Get returns the value at (rowLabel, col) and whether it exists.
func (t *Table) Get(rowLabel, col string) (float64, bool) {
	for _, r := range t.rows {
		if r.label == rowLabel {
			v, ok := r.values[col]
			return v, ok
		}
	}
	return 0, false
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.label
	}
	return out
}

// Column returns all values of a column in row order (missing cells are
// skipped).
func (t *Table) Column(col string) []float64 {
	var out []float64
	for _, r := range t.rows {
		if v, ok := r.values[col]; ok {
			out = append(out, v)
		}
	}
	return out
}

// GeoMean returns the geometric mean of a column.
func (t *Table) GeoMean(col string) float64 {
	vs := t.Column(col)
	if len(vs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// Mean returns the arithmetic mean of a column.
func (t *Table) Mean(col string) float64 {
	vs := t.Column(col)
	if len(vs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	labelW := 5
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.label)
		for _, c := range t.Columns {
			if v, ok := r.values[c]; ok {
				fmt.Fprintf(&b, "%12.3f", v)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Curves holds learning curves per configuration label (Figures 5 and 6).
type Curves struct {
	Title string
	// RewardMean and Loss are indexed by configuration label; each value is
	// the per-iteration series.
	RewardMean map[string][]float64
	Loss       map[string][]float64
	Steps      map[string][]int
}

// NewCurves allocates an empty curve set.
func NewCurves(title string) *Curves {
	return &Curves{
		Title:      title,
		RewardMean: map[string][]float64{},
		Loss:       map[string][]float64{},
		Steps:      map[string][]int{},
	}
}

// Final returns the mean of the last k reward points for a configuration.
func (c *Curves) Final(label string, k int) float64 {
	series := c.RewardMean[label]
	if len(series) == 0 {
		return math.NaN()
	}
	if k > len(series) {
		k = len(series)
	}
	s := 0.0
	for _, v := range series[len(series)-k:] {
		s += v
	}
	return s / float64(k)
}

// String renders a compact summary: per config, the first/last reward and
// final loss.
func (c *Curves) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", c.Title)
	labels := make([]string, 0, len(c.RewardMean))
	for l := range c.RewardMean {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		rm := c.RewardMean[l]
		ls := c.Loss[l]
		if len(rm) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-28s reward %+.3f -> %+.3f (final-5 %+.3f)",
			l, rm[0], rm[len(rm)-1], c.Final(l, 5))
		if len(ls) > 0 {
			fmt.Fprintf(&b, "  loss %.4f -> %.4f", ls[0], ls[len(ls)-1])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
