package experiments

import (
	"testing"
)

func TestAblationEmbedding(t *testing.T) {
	curves := AblationEmbedding(QuickOptions())
	c2v := curves.Final("code2vec (end-to-end)", 4)
	feat := curves.Final("hand-crafted features", 4)
	t.Logf("final reward: code2vec=%.3f features=%.3f", c2v, feat)
	if len(curves.RewardMean) != 2 {
		t.Fatalf("expected 2 curves, got %d", len(curves.RewardMean))
	}
	// Both representations must learn something.
	for label, series := range curves.RewardMean {
		if series[len(series)-1] <= series[0] {
			t.Errorf("%s: reward did not improve (%.3f -> %.3f)", label, series[0], series[len(series)-1])
		}
	}
	// The learned embedding should not lose badly to fixed features (the
	// paper's claim is that it captures strictly more).
	if c2v < feat-0.1 {
		t.Errorf("code2vec (%.3f) clearly below hand-crafted features (%.3f)", c2v, feat)
	}
}

func TestAblationCompilePenalty(t *testing.T) {
	tab := AblationCompilePenalty(QuickOptions())
	onBlow, _ := tab.Get("penalty=-9 (paper)", "mean-compile-blowup")
	offBlow, _ := tab.Get("penalty off", "mean-compile-blowup")
	onRate, _ := tab.Get("penalty=-9 (paper)", "timeout-rate")
	offRate, _ := tab.Get("penalty off", "timeout-rate")
	t.Logf("blowup: penalty=%.2fx off=%.2fx; timeout rate: penalty=%.2f off=%.2f",
		onBlow, offBlow, onRate, offRate)
	// With the penalty active the greedy policy must stay within the
	// compile budget more often than without it.
	if onBlow > offBlow+1e-9 && onRate > offRate+1e-9 {
		t.Errorf("penalty did not reduce compile blow-up: on=%.2f/%.2f off=%.2f/%.2f",
			onBlow, onRate, offBlow, offRate)
	}
	if onRate > 0.25 {
		t.Errorf("timeout rate with penalty = %.2f, agent failed to learn the budget", onRate)
	}
}

func TestAblationPolly(t *testing.T) {
	tab := AblationPolly(QuickOptions())
	// gemm is a tiling case: tiling-only must carry the win; fusion-only
	// must be neutral.
	tg, _ := tab.Get("gemm", "tiling-only")
	fg, _ := tab.Get("gemm", "fusion-only")
	if tg <= 1.1 {
		t.Errorf("gemm tiling-only = %.3fx, want a clear locality win", tg)
	}
	if fg < 0.99 || fg > 1.01 {
		t.Errorf("gemm fusion-only = %.3fx, want ~1.0 (nothing to fuse)", fg)
	}
	// The fusible pair is the reverse.
	tf, _ := tab.Get("bench10_fusible", "tiling-only")
	ff, _ := tab.Get("bench10_fusible", "fusion-only")
	if ff <= 1.05 {
		t.Errorf("bench10 fusion-only = %.3fx, want a bandwidth win", ff)
	}
	if tf < 0.99 || tf > 1.01 {
		t.Errorf("bench10 tiling-only = %.3fx, want ~1.0 (1-D, untileable)", tf)
	}
	// "both" matches the stronger transform in each case.
	bg, _ := tab.Get("gemm", "both")
	bf, _ := tab.Get("bench10_fusible", "both")
	if bg < tg*0.99 || bf < ff*0.99 {
		t.Errorf("combined transforms lost performance: gemm %.3f vs %.3f, bench10 %.3f vs %.3f", bg, tg, bf, ff)
	}
}

func TestAblationJointAgent(t *testing.T) {
	curves := AblationJointAgent(QuickOptions())
	joint := curves.Final("joint", 4)
	indep := curves.Final("independent", 4)
	t.Logf("final reward: joint=%.3f independent=%.3f", joint, indep)
	if len(curves.RewardMean["independent"]) == 0 {
		t.Fatal("independent curve missing")
	}
	// The paper found the joint agent performs better; allow a small quick-
	// mode tolerance but fail if independent clearly dominates.
	if joint < indep-0.08 {
		t.Errorf("joint agent (%.3f) clearly below independent agents (%.3f); paper found the opposite", joint, indep)
	}
}

func TestNeuralCostModel(t *testing.T) {
	tab := NeuralCostModel(QuickOptions())
	if len(tab.Rows()) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows()))
	}
	rk := tab.GeoMean("neural-cost-model")
	rlG := tab.GeoMean("RL")
	brute := tab.GeoMean("brute")
	t.Logf("geomeans: RL=%.3f neural-cost-model=%.3f brute=%.3f", rlG, rk, brute)
	if rk <= 0.9 {
		t.Errorf("learned cost model geomean = %.3fx, should be at least near baseline", rk)
	}
	if rk > brute*1.001 {
		t.Errorf("learned cost model (%.3f) beats brute force (%.3f) — impossible", rk, brute)
	}
}
