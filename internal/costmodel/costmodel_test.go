package costmodel

import (
	"testing"

	"neurovec/internal/dataset"
	"neurovec/internal/deps"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/machine"
)

func loopFor(t *testing.T, src string) *ir.Loop {
	t.Helper()
	p := lower.MustProgram(lang.MustParse(src))
	loops := p.InnermostLoops()
	if len(loops) == 0 {
		t.Fatal("no loops")
	}
	return loops[0]
}

func TestBaselinePrefers128BitWidth(t *testing.T) {
	arch := machine.IntelAVX2()
	l := loopFor(t, `
int a[512];
int b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[i] + 1;
    }
}
`)
	c := Choose(l, arch)
	if c.VF != 4 {
		t.Errorf("int copy loop VF = %d, want 4 (128-bit / 32-bit)", c.VF)
	}
}

func TestBaselineWiderForNarrowTypes(t *testing.T) {
	arch := machine.IntelAVX2()
	l := loopFor(t, `
char a[512];
char b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[i];
    }
}
`)
	c := Choose(l, arch)
	if c.VF != 16 {
		t.Errorf("char copy VF = %d, want 16 (128-bit / 8-bit)", c.VF)
	}
}

func TestBaselineInterleavesReductions(t *testing.T) {
	arch := machine.IntelAVX2()
	l := loopFor(t, `
int v[512];
int f() {
    int s = 0;
    for (int i = 0; i < 512; i++) {
        s += v[i] * v[i];
    }
    return s;
}
`)
	c := Choose(l, arch)
	if c.VF != 4 || c.IF != 2 {
		t.Errorf("dot product choice = (%d,%d), want (4,2)", c.VF, c.IF)
	}
}

func TestBaselineRefusesGatherLoops(t *testing.T) {
	arch := machine.IntelAVX2()
	l := loopFor(t, `
int idx[512];
int data[8192];
int out[512];
void f() {
    for (int i = 0; i < 512; i++) {
        out[i] = data[idx[i]];
    }
}
`)
	c := Choose(l, arch)
	if c.VF != 1 {
		t.Errorf("gather loop VF = %d, want 1 (pessimistic baseline)", c.VF)
	}
}

func TestBaselineRespectsDependences(t *testing.T) {
	arch := machine.IntelAVX2()
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 0; i < 500; i++) {
        a[i + 2] = a[i] + 1;
    }
}
`)
	c := Choose(l, arch)
	if c.VF > 2 {
		t.Errorf("VF = %d exceeds dependence distance 2", c.VF)
	}
}

func TestBaselineSkipsTinyTripCounts(t *testing.T) {
	arch := machine.IntelAVX2()
	l := loopFor(t, `
int a[4];
int b[4];
void f() {
    for (int i = 0; i < 4; i++) {
        a[i] = b[i];
    }
}
`)
	c := Choose(l, arch)
	if c.VF != 1 {
		t.Errorf("tiny loop VF = %d, want 1", c.VF)
	}
}

func TestPlansCoversAllInnermost(t *testing.T) {
	arch := machine.IntelAVX2()
	p := lower.MustProgram(lang.MustParse(`
int a[256];
float B[64][64];
void f() {
    for (int i = 0; i < 256; i++) {
        a[i] = i;
    }
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            B[i][j] = 0;
        }
    }
}
`))
	plans := Plans(p, arch)
	if len(plans) != 2 {
		t.Fatalf("plans = %d, want 2 innermost loops", len(plans))
	}
	for label, plan := range plans {
		if plan.Loop.Label != label {
			t.Errorf("plan key %s mismatches loop %s", label, plan.Loop.Label)
		}
	}
}

func TestBaselineChoicesAlwaysLegalProperty(t *testing.T) {
	// Over the generated corpus the baseline's decisions are always
	// power-of-two factors within the dependence-legal range.
	arch := machine.IntelAVX2()
	set := dataset.Generate(dataset.GenConfig{N: 200, Seed: 17})
	isPow2 := func(v int) bool { return v >= 1 && v&(v-1) == 0 }
	for _, s := range set.Samples {
		p := lower.MustProgram(lang.MustParse(s.Source))
		for _, l := range p.InnermostLoops() {
			c := Choose(l, arch)
			if !isPow2(c.VF) || !isPow2(c.IF) {
				t.Fatalf("%s: non-power-of-two choice (%d,%d)", s.Name, c.VF, c.IF)
			}
			if max := deps.MaxLegalVF(l, arch.MaxVF); c.VF > max {
				t.Fatalf("%s: VF %d exceeds legal %d", s.Name, c.VF, max)
			}
			if c.VF > 1 && c.Cost > c.ScalarCost {
				t.Fatalf("%s: vectorized at estimated cost %v above scalar %v", s.Name, c.Cost, c.ScalarCost)
			}
		}
	}
}

func TestBaselineIgnoresCacheEffects(t *testing.T) {
	// The linear model must give identical decisions for an L1-resident and
	// a DRAM-resident version of the same loop — that blindness is the
	// point of the baseline.
	arch := machine.IntelAVX2()
	small := loopFor(t, `
double a[512];
double b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[i] * 2.0;
    }
}
`)
	big := loopFor(t, `
double a[4194304];
double b[4194304];
void f() {
    for (int i = 0; i < 4194304; i++) {
        a[i] = b[i] * 2.0;
    }
}
`)
	cs, cb := Choose(small, arch), Choose(big, arch)
	if cs.VF != cb.VF || cs.IF != cb.IF {
		t.Errorf("baseline decisions differ with footprint: (%d,%d) vs (%d,%d)", cs.VF, cs.IF, cb.VF, cb.IF)
	}
}
