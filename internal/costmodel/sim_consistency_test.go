package costmodel_test

import (
	"sort"
	"testing"

	"neurovec/internal/costmodel"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/machine"
	"neurovec/internal/sim"
	"neurovec/internal/vectorizer"
)

// spearman computes the Spearman rank-correlation coefficient between two
// equal-length series (average ranks for ties).
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var meanA, meanB float64
	for i := range ra {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= n
	meanB /= n
	var cov, varA, varB float64
	for i := range ra {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / (sqrt(varA) * sqrt(varB))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestCostModelRanksConfigsLikeSimulator checks the structural sanity
// contract between the linear cost model and the cycle simulator: across
// the VF ladder of a loop, the model's cost curve should *rank* the
// configurations broadly like the simulator's measured cycles. Exact
// equality is explicitly a non-goal — the model is blind to caches,
// reduction chains, and loop overhead by design (that gap is the paper's
// headroom) — but an anti-correlated model would mean the baseline is
// deciding from noise, so each kernel carries a minimum rank correlation.
func TestCostModelRanksConfigsLikeSimulator(t *testing.T) {
	arch := machine.IntelAVX2()
	simCfg := sim.Config{Arch: arch, WarmCaches: true}

	cases := []struct {
		name string
		src  string
		// minRho is the weakest acceptable Spearman correlation between
		// model cost and simulated cycles over the VF ladder.
		minRho float64
	}{
		{
			name: "stream_add_float",
			src: `
float a[4096];
float b[4096];
float c[4096];
void kernel() {
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i] + c[i];
    }
}
`,
			minRho: 0.6,
		},
		{
			name: "saxpy_int",
			src: `
int xs[2048];
int ys[2048];
void kernel() {
    for (int i = 0; i < 2048; i++) {
        ys[i] = 3 * xs[i] + ys[i];
    }
}
`,
			minRho: 0.6,
		},
		{
			name: "narrow_short",
			src: `
short u[8192];
short v[8192];
void kernel() {
    for (int i = 0; i < 8192; i++) {
        u[i] = u[i] + v[i];
    }
}
`,
			minRho: 0.6,
		},
		{
			name: "reduction_dot",
			src: `
float p[4096];
float q[4096];
float s;
void kernel() {
    float acc = 0;
    for (int i = 0; i < 4096; i++) {
        acc += p[i] * q[i];
    }
    s = acc;
}
`,
			// The model cannot see the reduction latency chain the
			// simulator charges for, so the bar is lower.
			minRho: 0.3,
		},
		{
			name: "strided_gather",
			src: `
float pix[16384];
float lum[4096];
void kernel() {
    for (int i = 0; i < 4096; i++) {
        lum[i] = pix[4 * i];
    }
}
`,
			// Both sides agree strided access hurts; how much differs.
			minRho: 0.3,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := lang.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			irp, err := lower.Program(prog, lower.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			loops := irp.InnermostLoops()
			if len(loops) == 0 {
				t.Fatal("no loops")
			}
			loop := loops[0]

			var preds, meas []float64
			var vfs []int
			for _, vf := range arch.VFs() {
				plan := vectorizer.New(loop, arch, vf, 1)
				if plan.VF != vf {
					continue // clamped: the measurement would be for a different config
				}
				preds = append(preds, costmodel.Estimate(loop, vf, arch))
				meas = append(meas, sim.Loop(loop, plan, simCfg))
				vfs = append(vfs, vf)
			}
			if len(preds) < 4 {
				t.Fatalf("only %d unclamped VF configs (%v); kernel unsuitable", len(preds), vfs)
			}
			rho := spearman(preds, meas)
			t.Logf("VFs %v: model %v, sim %v, spearman %.3f", vfs, preds, meas, rho)
			if rho < tc.minRho {
				t.Errorf("rank correlation %.3f below floor %.3f: the baseline model ranks configs unlike the simulator", rho, tc.minRho)
			}
		})
	}
}
