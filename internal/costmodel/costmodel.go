// Package costmodel implements the baseline vectorization cost model the
// learned policy is compared against — a faithful analogue of LLVM's
// LoopVectorize cost model circa the paper's evaluation.
//
// Like the real thing, it is a *linear*, context-free model: it sums fixed
// per-opcode costs scaled by legalization width and picks the factor pair
// with the lowest estimated cost per scalar iteration. It reasons about the
// conservative "preferred" vector width (128 bits), scalarizes strided and
// non-affine accesses, and chooses the interleave count with a register and
// latency heuristic. It cannot see reduction dependence chains, cache
// behaviour, loop-overhead amortisation, or register spilling — the effects
// the simulator charges for — which is the structural source of the
// baseline/brute-force gap the paper measures (Figures 1 and 2).
package costmodel

import (
	"neurovec/internal/deps"
	"neurovec/internal/ir"
	"neurovec/internal/machine"
	"neurovec/internal/vectorizer"
)

// Choice is the baseline cost model's decision for one loop.
type Choice struct {
	VF, IF int
	// Cost is the model's estimated cost per scalar iteration at (VF, IF).
	Cost float64
	// ScalarCost is the estimate for the unvectorized loop.
	ScalarCost float64
}

// Choose runs the baseline model on an innermost loop.
func Choose(l *ir.Loop, arch *machine.Arch) Choice {
	scalarCost := iterCost(l, 1, arch)
	best := Choice{VF: 1, IF: 1, Cost: scalarCost, ScalarCost: scalarCost}

	maxLegal := deps.MaxLegalVF(l, arch.MaxVF)
	// LLVM derives the width candidates from the *preferred* register width
	// and the widest element type in the loop.
	widest := widestTypeBits(l)
	maxVF := arch.PreferredBits / widest
	if maxVF > maxLegal {
		maxVF = maxLegal
	}
	// Tiny trip counts are never profitable to vectorize.
	if l.TripKnown && l.Trip < 8 {
		return best
	}

	for vf := 2; vf <= maxVF; vf *= 2 {
		c := iterCost(l, vf, arch)
		if c < best.Cost {
			best.VF, best.Cost = vf, c
		}
	}
	if best.VF == 1 {
		best.IF = 1
		return best
	}
	best.IF = chooseInterleave(l, best.VF, arch)
	return best
}

// Estimate returns the model's estimated cost of one scalar iteration's
// worth of work at vectorization width vf — the per-configuration view of
// the linear model behind Choose. It exists so consistency checks (and
// diagnostics) can compare the model's full cost curve against the
// simulator's measured cycles, not just the argmin.
func Estimate(l *ir.Loop, vf int, arch *machine.Arch) float64 {
	return iterCost(l, vf, arch)
}

// Plan returns the baseline decision as an executable vectorization plan.
func Plan(l *ir.Loop, arch *machine.Arch) *vectorizer.Plan {
	c := Choose(l, arch)
	return vectorizer.New(l, arch, c.VF, c.IF)
}

// Plans runs the baseline model over every innermost loop of a program.
func Plans(p *ir.Program, arch *machine.Arch) map[string]*vectorizer.Plan {
	out := make(map[string]*vectorizer.Plan)
	for _, l := range p.InnermostLoops() {
		out[l.Label] = Plan(l, arch)
	}
	return out
}

// iterCost is the linear model: estimated cost of one scalar iteration's
// worth of work when executed at width vf.
func iterCost(l *ir.Loop, vf int, arch *machine.Arch) float64 {
	cost := 0.0
	for _, in := range l.Body {
		cost += opCost(in, vf, arch)
	}
	for _, a := range l.Accesses {
		cost += accessCost(a, l.Label, vf, arch)
	}
	// Loop backedge.
	cost += 1
	return cost / float64(vf)
}

// opCost is the fixed per-opcode table, scaled by the legalization factor:
// a vector wider than the preferred register splits into several ops.
func opCost(in ir.Instr, vf int, arch *machine.Arch) float64 {
	split := float64(legalizeRegs(vf, in.Type.Bits(), arch))
	var c float64
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot,
		ir.OpNeg, ir.OpShl, ir.OpShr, ir.OpCmp, ir.OpCopy,
		ir.OpMin, ir.OpMax, ir.OpAbs:
		c = 1
	case ir.OpMul:
		c = 2
	case ir.OpDiv, ir.OpRem:
		c = 20
	case ir.OpSelect:
		c = 1
	case ir.OpConvert:
		c = 2
	case ir.OpCall:
		c = 40 * float64(vf) // scalarized
		return c
	default:
		c = 1
	}
	if in.Predicated && vf > 1 {
		c *= 2 // masked execution estimate
	}
	return c * split
}

// accessCost prices memory operations: unit-stride vectors are cheap;
// strided and non-affine accesses scalarize (cost ~ vf), which is what makes
// the baseline refuse to vectorize gather-heavy loops.
func accessCost(a *ir.Access, label string, vf int, arch *machine.Arch) float64 {
	if a.InvariantIn(label) {
		return 0
	}
	stride := a.StrideFor(label)
	base := 1.0
	if a.Kind == ir.Store {
		base = 1.0
	}
	if vf == 1 {
		return base
	}
	split := float64(legalizeRegs(vf, a.Elem.Bits(), arch))
	switch {
	case !a.Affine:
		// Scalarized with per-lane address computation, extract and insert.
		return base * float64(vf) * 4
	case stride == 1 || stride == -1:
		c := base * split
		if !a.Aligned {
			c *= 1.5 // unaligned penalty in the static model
		}
		return c
	default:
		return base * float64(vf) * 1.5 // scalarized strided access
	}
}

func legalizeRegs(vf, bits int, arch *machine.Arch) int {
	n := (vf*bits + arch.PreferredBits - 1) / arch.PreferredBits
	if n < 1 {
		n = 1
	}
	return n
}

// chooseInterleave mirrors LLVM's heuristic: interleave to hide latency when
// the loop is small or carries a reduction, bounded by register budget and
// trip count. The result is small (1 or 2, occasionally 4) — the
// conservatism visible in the paper's Figure 1 where the baseline picks
// IF=2 while IF=8 is optimal.
func chooseInterleave(l *ir.Loop, vf int, arch *machine.Arch) int {
	// Loops with stores and no reduction: interleave only tiny bodies.
	small := len(l.Body)+len(l.Accesses) <= 6
	ifc := 1
	if len(l.Reductions) > 0 {
		ifc = 2
	} else if small {
		ifc = 2
	}
	// Register budget: number of live values times IF must fit.
	live := l.LoadCount() + len(l.Reductions) + 1
	for ifc > 1 && live*ifc > arch.VecRegs {
		ifc /= 2
	}
	// Do not interleave past the trip count.
	if l.TripKnown && l.Trip > 0 {
		for ifc > 1 && int64(vf*ifc)*2 > l.Trip {
			ifc /= 2
		}
	}
	if ifc < 1 {
		ifc = 1
	}
	return ifc
}

func widestTypeBits(l *ir.Loop) int {
	w := 8
	for _, in := range l.Body {
		if b := in.Type.Bits(); b > w {
			w = b
		}
	}
	for _, a := range l.Accesses {
		if b := a.Elem.Bits(); b > w {
			w = b
		}
	}
	return w
}
