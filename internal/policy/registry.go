package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"neurovec/internal/machine"
)

// Host is the read-only view of a framework that policy factories may
// consume. *core.Framework implements it. Stateless policies tolerate a nil
// Host (they read everything from the Request); policies that need trained
// state or a corpus must fail construction with a descriptive error when the
// host cannot supply it.
type Host interface {
	// Arch is the target architecture (never nil on a real framework).
	Arch() *machine.Arch
	// Seed grounds deterministic randomness for stochastic policies.
	Seed() int64
	// Decider returns the trained agent's greedy decision function over
	// embedding vectors, or ErrNoAgent when no agent is trained/loaded.
	Decider() (func(vec []float64) (vf, ifc int), error)
	// NumSamples, Embedding, and BruteForceLabel expose the loaded corpus
	// for index-building policies (NNS trains on the learned embedding with
	// brute-force labels, the paper's Section 3.5 workflow).
	NumSamples() int
	Embedding(sample int) []float64
	BruteForceLabel(sample int) (vf, ifc int)
}

// Factory constructs a policy bound to a host.
type Factory func(h Host) (Policy, error)

// ErrUnknown is wrapped by New for names with no registered factory; the
// serving layer maps it to HTTP 400.
var ErrUnknown = errors.New("unknown policy")

// ErrUnavailable is wrapped by New when a registered factory cannot build
// its policy on the given host (no agent, no corpus to index, ...); the
// serving layer maps it to HTTP 409.
var ErrUnavailable = errors.New("policy unavailable")

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named policy factory. It panics on a duplicate name:
// registration happens at init time and a silent overwrite would make
// serving behaviour depend on package-initialisation order.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		panic("policy: Register requires a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// List returns the registered policy names, sorted.
func List() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New looks up name and constructs its policy against h. Unknown names
// report ErrUnknown; factory failures are wrapped with ErrUnavailable so
// callers can distinguish "no such policy" from "not usable right now".
func New(name string, h Host) (Policy, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("policy: %w %q (available: %s)", ErrUnknown, name, strings.Join(List(), ", "))
	}
	p, err := f(h)
	if err != nil {
		return nil, fmt.Errorf("policy %s: %w: %w", name, ErrUnavailable, err)
	}
	return p, nil
}
