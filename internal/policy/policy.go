// Package policy is the unified decision-making API of the NeuroVectorizer
// reproduction. The paper is fundamentally a *comparison* of vectorization
// decision methods — a baseline cost model, random search, exhaustive brute
// force, the Polly polyhedral optimizer, nearest-neighbor search over the
// learned embedding, and the deep-RL agent — and this package puts every one
// of them behind a single context-aware interface:
//
//	type Policy interface {
//	    Name() string
//	    Decide(ctx context.Context, req *Request) (*Decision, error)
//	}
//
// Policies are registered by name (Register / Lookup / List) and constructed
// against a Host — the read-only slice of the framework a policy may consume
// (architecture, trained agent, loaded corpus). core.Framework implements
// Host and resolves policies with Framework.Policy(name); the HTTP service
// and the CLI select them per request via the "policy" field and the -policy
// flag.
//
// A Decision is always a concrete (VF, IF) pair drawn from the target
// architecture's action space. Search-based policies honor ctx: brute force
// checks the deadline between candidate evaluations and returns the best
// pair found so far (Truncated reports the early exit), so a serving layer
// can bound worst-case latency without losing the request.
//
// # Writing a policy
//
// Stateless policies need only the per-request inputs:
//
//	policy.Register("always-scalar", func(policy.Host) (policy.Policy, error) {
//	    return policy.Func("always-scalar", func(ctx context.Context, req *policy.Request) (*policy.Decision, error) {
//	        return &policy.Decision{VF: 1, IF: 1}, nil
//	    }), nil
//	})
//
// Policies that need trained state (weights, an index over the corpus) build
// it in the factory from the Host and fail there when the framework cannot
// supply it — the service maps such failures to HTTP 409.
package policy

import (
	"context"
	"errors"
	"math/rand"

	"neurovec/internal/ir"
	"neurovec/internal/machine"
)

// ErrNoAgent is reported by agent-backed policies (and by
// core.Framework.Predict) when no agent has been trained or loaded. The
// serving layer maps it to HTTP 409.
var ErrNoAgent = errors.New("no trained agent")

// Request carries everything a policy may consult to decide one loop.
// Fields a host cannot supply are nil; policies must check for what they
// need and fail with a descriptive error rather than guessing.
type Request struct {
	// Name identifies the loop (unit name or loop label) for diagnostics.
	Name string
	// Source is the raw program text; with Name it identifies the decision
	// point, grounding per-request determinism for stochastic policies
	// (loop labels alone restart at L0 for every program).
	Source string
	// Prog is the lowered program containing Loop.
	Prog *ir.Program
	// Loop is the innermost loop under decision.
	Loop *ir.Loop
	// Arch is the target architecture whose VFs()/IFs() bound the decision.
	Arch *machine.Arch
	// Embed lazily computes the learned code vector for Loop. Lazy because
	// most policies never look at it and the forward pass is not free.
	Embed func() []float64
	// Evaluate returns the simulated program cycle count with (vf, ifc)
	// injected at Loop and the baseline decision everywhere else — the
	// objective search policies minimise.
	Evaluate func(vf, ifc int) float64
	// Rand, when set, seeds stochastic policies; otherwise they derive a
	// deterministic source from the host seed and the request name so that
	// repeated requests (and cached responses) agree.
	Rand *rand.Rand
}

// Decision is a policy's answer for one loop.
type Decision struct {
	// VF and IF are the chosen vectorization and interleaving factors,
	// always drawn from the target architecture's action space.
	VF int
	IF int
	// Truncated reports that the decision came from an incomplete search:
	// the context expired and the policy returned its best pair so far.
	Truncated bool
}

// Policy is one vectorization decision method.
type Policy interface {
	// Name returns the registry name of the policy.
	Name() string
	// Decide picks factors for the request's loop. Implementations should
	// honor ctx cancellation; long-running searches return their best
	// result so far with Decision.Truncated set rather than an error.
	Decide(ctx context.Context, req *Request) (*Decision, error)
}

// DeadlineAware is optionally implemented by policies whose Decide degrades
// gracefully under an expired context, returning a best-so-far Decision
// instead of an error. The inference pipeline runs such policies even when
// the deadline has already passed (the request still gets an answer); other
// policies fail fast with the context error.
type DeadlineAware interface {
	DeadlineAware() bool
}

// IsDeadlineAware reports whether p degrades gracefully under an expired
// context.
func IsDeadlineAware(p Policy) bool {
	d, ok := p.(DeadlineAware)
	return ok && d.DeadlineAware()
}

// LoopPure is optionally implemented by policies whose decision is a pure
// function of the single loop under decision (its content / learned
// embedding) and the trained model — independent of the surrounding
// program, runtime parameters, and request identity. Only such decisions
// are sound to memoize per loop across files, which is what the serving
// layer's per-loop decision cache does.
type LoopPure interface {
	LoopPure() bool
}

// IsLoopPure reports whether p's decisions may be memoized per loop.
func IsLoopPure(p Policy) bool {
	lp, ok := p.(LoopPure)
	return ok && lp.LoopPure()
}

// Prober is optionally implemented by policies that can cheaply report
// whether they could serve a decision right now (the discovery endpoint uses
// it: a registered policy whose backing state is missing — an untrained
// agent, say — lists as unavailable with the probe error as the reason).
type Prober interface {
	Probe() error
}

// Func adapts a plain function to a Policy.
func Func(name string, fn func(ctx context.Context, req *Request) (*Decision, error)) Policy {
	return &funcPolicy{name: name, fn: fn}
}

type funcPolicy struct {
	name string
	fn   func(ctx context.Context, req *Request) (*Decision, error)
}

func (p *funcPolicy) Name() string { return p.name }

func (p *funcPolicy) Decide(ctx context.Context, req *Request) (*Decision, error) {
	return p.fn(ctx, req)
}
