package policy_test

import (
	"context"
	"errors"
	"testing"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/machine"
	"neurovec/internal/policy"
	"neurovec/internal/rl"
)

// corpusFramework builds a small trained framework: every registered policy
// (including rl and nns, which need trained state and a labelled corpus) can
// decide on it.
func corpusFramework(t *testing.T) *core.Framework {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	cfg.Embed.MaxContexts = 32
	fw := core.New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 12, Seed: 3})); err != nil {
		t.Fatal(err)
	}
	rc := rl.DefaultConfig(nil, nil)
	rc.Batch, rc.MiniBatch, rc.Iterations, rc.LR = 48, 16, 2, 1e-3
	rc.Hidden = []int{16, 16}
	fw.Train(&rc)
	return fw
}

func member(set []int, v int) bool {
	for _, x := range set {
		if x == v {
			return true
		}
	}
	return false
}

// TestPoliciesParityAndLegality is the table-driven acceptance test for the
// unified API: every registered policy must be resolvable by name on a
// trained framework and must return decisions drawn from the architecture's
// action space, for every loop of a corpus of generated programs.
func TestPoliciesParityAndLegality(t *testing.T) {
	fw := corpusFramework(t)
	vfs, ifs := fw.Arch().VFs(), fw.Arch().IFs()
	srcs := dataset.Generate(dataset.GenConfig{N: 3, Seed: 77}).Samples

	names := policy.List()
	want := []string{"brute", "costmodel", "nns", "polly", "random", "rl"}
	for _, w := range want {
		if _, ok := policy.Lookup(w); !ok {
			t.Fatalf("policy %q not registered (have %v)", w, names)
		}
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			for _, s := range srcs {
				inf, err := fw.PredictSource(context.Background(), s.Source, nil, core.WithPolicyName(name))
				if err != nil {
					t.Fatalf("policy %s on %s: %v", name, s.Name, err)
				}
				if inf.Policy != name {
					t.Fatalf("Inference.Policy = %q, want %q", inf.Policy, name)
				}
				if len(inf.Decisions) == 0 {
					t.Fatalf("policy %s made no decisions for %s", name, s.Name)
				}
				for _, d := range inf.Decisions {
					if !member(vfs, d.VF) || !member(ifs, d.IF) {
						t.Fatalf("policy %s chose illegal (VF=%d, IF=%d) for %s/%s (space %v x %v)",
							name, d.VF, d.IF, s.Name, d.Label, vfs, ifs)
					}
				}
			}
		})
	}
}

// TestPoliciesDeterministicPerRequest checks that repeating a request yields
// the same decision for every policy — the property the serving layer's
// response cache relies on (notably for "random", which must derive its
// randomness from the request, not from shared mutable state).
func TestPoliciesDeterministicPerRequest(t *testing.T) {
	fw := corpusFramework(t)
	src := dataset.Generate(dataset.GenConfig{N: 1, Seed: 5}).Samples[0].Source
	for _, name := range policy.List() {
		a, err := fw.PredictSource(context.Background(), src, nil, core.WithPolicyName(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := fw.PredictSource(context.Background(), src, nil, core.WithPolicyName(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Decisions) != len(b.Decisions) {
			t.Fatalf("%s: decision count changed between identical requests", name)
		}
		for i := range a.Decisions {
			if a.Decisions[i] != b.Decisions[i] {
				t.Fatalf("%s: decision %d differs between identical requests: %+v vs %+v",
					name, i, a.Decisions[i], b.Decisions[i])
			}
		}
	}
}

// TestRLPolicyRequiresAgent checks the silent-fallback fix end to end: the
// default policy on an untrained framework must surface ErrNoAgent.
func TestRLPolicyRequiresAgent(t *testing.T) {
	fw := core.New(core.DefaultConfig())
	src := "int a[64]; void f() { for (int i = 0; i < 64; i++) { a[i] = i; } }"
	_, err := fw.PredictSource(context.Background(), src, nil)
	if !errors.Is(err, policy.ErrNoAgent) {
		t.Fatalf("err = %v, want ErrNoAgent", err)
	}
}

// TestNNSUnavailableWithoutCorpus checks that nns fails construction (with
// ErrUnavailable) on a framework with no loaded units — the serving layer's
// 409 path.
func TestNNSUnavailableWithoutCorpus(t *testing.T) {
	fw := core.New(core.DefaultConfig())
	_, err := fw.Policy("nns")
	if !errors.Is(err, policy.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestLookupUnknownPolicy(t *testing.T) {
	fw := core.New(core.DefaultConfig())
	if _, err := fw.Policy("quantum"); !errors.Is(err, policy.ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
	src := "int a[64]; void f() { for (int i = 0; i < 64; i++) { a[i] = i; } }"
	if _, err := fw.PredictSource(context.Background(), src, nil, core.WithPolicyName("quantum")); !errors.Is(err, policy.ErrUnknown) {
		t.Fatalf("PredictSource err = %v, want ErrUnknown", err)
	}
}

// syntheticRequest builds a brute-force request over a fake objective so
// cancellation behaviour can be tested without a framework: the score
// improves (decreases) with every evaluation, making "best-so-far" exactly
// the last pair evaluated before the deadline.
func syntheticRequest(evals *int, cancelAfter int, cancel context.CancelFunc) *policy.Request {
	return &policy.Request{
		Name: "synthetic",
		Arch: machine.IntelAVX2(),
		Evaluate: func(vf, ifc int) float64 {
			*evals++
			if *evals == cancelAfter {
				cancel()
			}
			return float64(10000 - *evals)
		},
	}
}

// TestBruteDecideHonorsCancellation cancels the context mid-search and
// checks the decision is the best of the evaluated prefix, flagged
// Truncated, with the remaining grid never evaluated.
func TestBruteDecideHonorsCancellation(t *testing.T) {
	pol, err := policy.New("brute", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	const stopAt = 10
	req := syntheticRequest(&evals, stopAt, cancel)
	arch := req.Arch
	total := len(arch.VFs()) * len(arch.IFs())

	d, err := pol.Decide(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Truncated {
		t.Fatal("mid-search cancellation not reported as Truncated")
	}
	if evals != stopAt {
		t.Fatalf("evaluated %d candidates after cancellation at %d (grid %d)", evals, stopAt, total)
	}
	// The objective strictly improves per evaluation, so best-so-far is the
	// stopAt-th pair in iteration order (VF-major over IFs).
	ifs := arch.IFs()
	wantVF := arch.VFs()[(stopAt-1)/len(ifs)]
	wantIF := ifs[(stopAt-1)%len(ifs)]
	if d.VF != wantVF || d.IF != wantIF {
		t.Fatalf("best-so-far = (%d,%d), want (%d,%d)", d.VF, d.IF, wantVF, wantIF)
	}
}

// TestBruteDecideExpiredContext: a context that is already done must not
// evaluate anything and must return the legal scalar fallback, truncated.
func TestBruteDecideExpiredContext(t *testing.T) {
	pol, err := policy.New("brute", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evals := 0
	req := syntheticRequest(&evals, -1, func() {})
	d, err := pol.Decide(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 0 {
		t.Fatalf("expired context still evaluated %d candidates", evals)
	}
	if !d.Truncated || d.VF != 1 || d.IF != 1 {
		t.Fatalf("decision = %+v, want truncated scalar fallback", d)
	}
}
