package policy

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"

	"neurovec/internal/costmodel"
	"neurovec/internal/machine"
	"neurovec/internal/polly"
	"neurovec/internal/search"
)

// The six decision methods of the paper's comparison, registered under the
// names the service and CLI expose.
func init() {
	Register("rl", newRL)
	Register("costmodel", newCostModel)
	Register("brute", newBrute)
	Register("random", newRandom)
	Register("polly", newPolly)
	Register("nns", newNNS)
}

// reqArch resolves the decision space: the request's architecture if set,
// else the host's.
func reqArch(req *Request, h Host) (*machine.Arch, error) {
	if req.Arch != nil {
		return req.Arch, nil
	}
	if h != nil && h.Arch() != nil {
		return h.Arch(), nil
	}
	return nil, errors.New("request has no target architecture")
}

// ---- rl: the trained deep-RL agent ----

type rlPolicy struct{ h Host }

func newRL(h Host) (Policy, error) {
	if h == nil {
		return nil, errors.New("rl requires a host framework")
	}
	return &rlPolicy{h: h}, nil
}

func (p *rlPolicy) Name() string { return "rl" }

// Probe implements Prober: rl is only usable once an agent exists.
func (p *rlPolicy) Probe() error {
	_, err := p.h.Decider()
	return err
}

// LoopPure implements policy.LoopPure: the agent's greedy decision is a
// pure function of the loop's embedding and the trained weights, so it is
// sound to memoize per (checkpoint, loop) across files.
func (p *rlPolicy) LoopPure() bool { return true }

// Decide resolves the agent per call (not at construction) so a framework
// that trains or hot-reloads after policy resolution serves the current
// weights, and an untrained one fails with ErrNoAgent instead of (1, 1).
func (p *rlPolicy) Decide(ctx context.Context, req *Request) (*Decision, error) {
	decide, err := p.h.Decider()
	if err != nil {
		return nil, err
	}
	if req.Embed == nil {
		return nil, errors.New("rl: request carries no embedding")
	}
	vf, ifc := decide(req.Embed())
	return &Decision{VF: vf, IF: ifc}, nil
}

// ---- costmodel: the baseline LLVM-style linear cost model ----

type costModelPolicy struct{ h Host }

func newCostModel(h Host) (Policy, error) { return &costModelPolicy{h: h}, nil }

func (p *costModelPolicy) Name() string { return "costmodel" }

func (p *costModelPolicy) Decide(ctx context.Context, req *Request) (*Decision, error) {
	arch, err := reqArch(req, p.h)
	if err != nil {
		return nil, fmt.Errorf("costmodel: %w", err)
	}
	if req.Loop == nil {
		return nil, errors.New("costmodel: request carries no loop")
	}
	c := costmodel.Choose(req.Loop, arch)
	return &Decision{VF: c.VF, IF: c.IF}, nil
}

// ---- brute: exhaustive search, deadline-aware ----

type brutePolicy struct{ h Host }

func newBrute(h Host) (Policy, error) { return &brutePolicy{h: h}, nil }

func (p *brutePolicy) Name() string { return "brute" }

// DeadlineAware marks that an expired context degrades the search instead of
// failing it.
func (p *brutePolicy) DeadlineAware() bool { return true }

// Decide minimises Evaluate over the full VF x IF grid, checking ctx
// between candidate evaluations. On cancellation it returns the best pair
// found so far with Truncated set — an expired deadline degrades the answer,
// it does not lose the request.
func (p *brutePolicy) Decide(ctx context.Context, req *Request) (*Decision, error) {
	arch, err := reqArch(req, p.h)
	if err != nil {
		return nil, fmt.Errorf("brute: %w", err)
	}
	if req.Evaluate == nil {
		return nil, errors.New("brute: request cannot evaluate candidates")
	}
	vf, ifc, _, complete := search.BruteForceContext(ctx, arch.VFs(), arch.IFs(), search.Evaluator(req.Evaluate))
	return &Decision{VF: vf, IF: ifc, Truncated: !complete}, nil
}

// ---- random: the paper's random-search comparator ----

type randomPolicy struct{ h Host }

func newRandom(h Host) (Policy, error) { return &randomPolicy{h: h}, nil }

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Decide(ctx context.Context, req *Request) (*Decision, error) {
	arch, err := reqArch(req, p.h)
	if err != nil {
		return nil, fmt.Errorf("random: %w", err)
	}
	rng := req.Rand
	if rng == nil {
		// Deterministic per (host seed, program, loop): repeated requests —
		// and therefore cached responses — agree on the "random" answer,
		// but distinct programs draw distinct actions. The source text must
		// be in the seed: loop labels restart at L0 per parse, so hashing
		// the label alone would hand every program's first loop the same
		// "random" pick.
		var seed int64
		if p.h != nil {
			seed = p.h.Seed()
		}
		hash := fnv.New64a()
		fmt.Fprint(hash, req.Source, "\x00", req.Name)
		rng = rand.New(rand.NewSource(seed ^ int64(hash.Sum64())))
	}
	vf, ifc := search.Random(arch.VFs(), arch.IFs(), rng)
	return &Decision{VF: vf, IF: ifc}, nil
}

// ---- polly: the polyhedral-optimizer comparator ----

type pollyPolicy struct{ h Host }

func newPolly(h Host) (Policy, error) { return &pollyPolicy{h: h}, nil }

func (p *pollyPolicy) Name() string { return "polly" }

// Decide runs the Polly analogue (fusion + tiling) over a copy of the
// program and reports the baseline cost model's choice for the transformed
// loop — what -polly with default vectorization would do. Point loops keep
// their labels through tiling; a loop fused away falls back to its original
// shape.
func (p *pollyPolicy) Decide(ctx context.Context, req *Request) (*Decision, error) {
	arch, err := reqArch(req, p.h)
	if err != nil {
		return nil, fmt.Errorf("polly: %w", err)
	}
	if req.Loop == nil {
		return nil, errors.New("polly: request carries no loop")
	}
	loop := req.Loop
	if req.Prog != nil {
		res := polly.Optimize(req.Prog, polly.DefaultOptions(arch))
		if l := res.Program.FindLoop(loop.Label); l != nil && l.Innermost() {
			loop = l
		}
	}
	c := costmodel.Choose(loop, arch)
	return &Decision{VF: c.VF, IF: c.IF}, nil
}

// ---- nns: nearest-neighbor search over the learned embedding ----

type nnsPolicy struct {
	idx *search.NNS
}

// nnsLabelBudget caps brute-force labelling at index-build time; labelling
// is 35 simulations per unit, so an uncapped 5000-unit corpus would stall
// the first request for minutes.
const nnsLabelBudget = 256

func newNNS(h Host) (Policy, error) {
	if h == nil {
		return nil, errors.New("nns requires a host framework")
	}
	n := h.NumSamples()
	if n == 0 {
		return nil, errors.New("nns: no loaded units to index (load a corpus first; checkpoint-only frameworks cannot serve nns)")
	}
	step := n / nnsLabelBudget
	if step < 1 {
		step = 1
	}
	idx := &search.NNS{}
	for i := 0; i < n; i += step {
		vf, ifc := h.BruteForceLabel(i)
		idx.Add(h.Embedding(i), vf, ifc)
	}
	return &nnsPolicy{idx: idx}, nil
}

func (p *nnsPolicy) Name() string { return "nns" }

func (p *nnsPolicy) Decide(ctx context.Context, req *Request) (*Decision, error) {
	if req.Embed == nil {
		return nil, errors.New("nns: request carries no embedding")
	}
	vf, ifc := p.idx.Predict(req.Embed())
	return &Decision{VF: vf, IF: ifc}, nil
}
