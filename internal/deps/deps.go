// Package deps implements array dependence analysis for innermost loops.
//
// The result is the maximum legal vectorization factor for a loop: the
// largest number of consecutive iterations that may execute in lockstep
// without violating a loop-carried flow dependence. This is the analysis
// that lets the framework guarantee the paper's correctness contract: the RL
// agent's pragma is a hint, and requests beyond the legal VF are clamped —
// "if the agent accidentally injected bad pragmas, the compiler will ignore
// it".
package deps

import (
	"neurovec/internal/ir"
)

// Result describes the vectorization legality of a loop.
type Result struct {
	// MaxVF is the largest legal vectorization factor (>= 1). It is not
	// rounded to a power of two; callers clamp to their action space.
	MaxVF int
	// Reason is a human-readable explanation when MaxVF is limited.
	Reason string
}

// Unlimited is the MaxVF reported when no dependence limits vectorization.
const Unlimited = 1 << 20

// Analyze computes the maximal legal VF for an innermost loop.
//
// Rules, in the spirit of LLVM's LoopAccessAnalysis, conservatively
// simplified:
//
//   - opaque calls in the body forbid vectorization entirely;
//   - a non-affine store (scatter with unknown aliasing) forbids it;
//   - a non-affine load from an array that is also stored forbids it;
//   - for same-array store/load pairs with equal stride s, a positive
//     dependence distance d limits VF <= d; negative distances
//     (anti-dependences) are safe because vector loads complete before the
//     corresponding vector stores;
//   - same-array accesses with differing strides are conservatively
//     rejected (VF = 1) unless one of them never aliases the other
//     (different congruence classes modulo gcd).
//
// Recognised reductions do not create dependences; the lowering pass already
// removed their accumulator traffic from the access list.
func Analyze(l *ir.Loop) Result {
	if l.HasCall {
		return Result{MaxVF: 1, Reason: "opaque call in loop body"}
	}
	maxVF := Unlimited
	reason := ""
	limit := func(vf int, why string) {
		if vf < maxVF {
			maxVF = vf
			reason = why
		}
	}

	for _, s := range l.Accesses {
		if s.Kind != ir.Store {
			continue
		}
		if !s.Affine {
			return Result{MaxVF: 1, Reason: "non-affine store may alias anything"}
		}
		ss := s.StrideFor(l.Label)
		for _, a := range l.Accesses {
			if a == s || a.Array != s.Array {
				continue
			}
			if !a.Affine {
				return Result{MaxVF: 1, Reason: "non-affine access to stored array " + s.Array}
			}
			as := a.StrideFor(l.Label)
			switch {
			case ss == 0 && as == 0:
				// Both loop-invariant: same scalar location every iteration.
				if s.Offset == a.Offset {
					limit(1, "loop-invariant store aliases access in "+s.Array)
				}
			case ss == 0 || as == 0:
				// A store sweeping past (or being swept past by) a fixed
				// location: some iteration aliases; conservatively reject.
				limit(1, "mixed invariant/strided access to "+s.Array)
			case ss != as:
				if neverAlias(ss, s.Offset, as, a.Offset, l.Trip) {
					continue
				}
				limit(1, "differing strides on "+s.Array)
			default:
				// Equal strides: distance in iterations between the store at
				// iteration i and the access touching the same address.
				delta := s.Offset - a.Offset
				if delta == 0 {
					// Same address same iteration: ordinary a[i] = f(a[i]).
					continue
				}
				if delta%ss != 0 {
					continue // different congruence classes: never alias
				}
				d := delta / ss
				if d < 0 {
					// With positive stride, a negative d means the access
					// reads addresses the store already passed -> the read
					// happens after the write in iteration order only if the
					// access is itself a store; output dependences with
					// positive distance also limit VF.
					if a.Kind == ir.Store {
						limit(int(-d), "output dependence on "+s.Array)
					}
					continue // anti-dependence: safe
				}
				// Flow dependence with distance d: iteration i+d reads what
				// iteration i wrote. VF <= d keeps each read after its write.
				limit(int(d), "loop-carried dependence on "+s.Array)
			}
		}
	}
	if maxVF < 1 {
		maxVF = 1
	}
	return Result{MaxVF: maxVF, Reason: reason}
}

// neverAlias reports whether two affine streams with different strides can
// be proven disjoint over the loop's iteration space via a gcd test.
func neverAlias(s1, o1, s2, o2, trip int64) bool {
	g := gcd(abs64(s1), abs64(s2))
	if g == 0 {
		return false
	}
	if (o1-o2)%g != 0 {
		return true
	}
	_ = trip
	return false
}

// MaxLegalVF returns Analyze(l).MaxVF clamped to the architecture bound and
// rounded down to a power of two, which is the action space the paper uses.
func MaxLegalVF(l *ir.Loop, archMax int) int {
	vf := Analyze(l).MaxVF
	if vf > archMax {
		vf = archMax
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= vf {
		p *= 2
	}
	return p
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
