// Package deps implements array dependence analysis for innermost loops.
//
// The result is the maximum legal vectorization factor for a loop: the
// largest number of consecutive iterations that may execute in lockstep
// without violating a loop-carried flow dependence. This is the analysis
// that lets the framework guarantee the paper's correctness contract: the RL
// agent's pragma is a hint, and requests beyond the legal VF are clamped —
// "if the agent accidentally injected bad pragmas, the compiler will ignore
// it".
package deps

import (
	"neurovec/internal/ir"
)

// Result describes the vectorization legality of a loop.
type Result struct {
	// MaxVF is the largest legal vectorization factor (>= 1). It is not
	// rounded to a power of two; callers clamp to their action space.
	MaxVF int
	// Reason is a human-readable explanation when MaxVF is limited.
	Reason string
}

// Unlimited is the MaxVF reported when no dependence limits vectorization.
const Unlimited = 1 << 20

// Analyze computes the maximal legal VF for an innermost loop.
//
// Rules, in the spirit of LLVM's LoopAccessAnalysis, conservatively
// simplified:
//
//   - opaque calls in the body forbid vectorization entirely;
//   - irregular loops (no recognised canonical induction) and loops with an
//     early exit (break) forbid it: their iteration space is not a dense
//     0..trip range, so lockstep execution could run iterations that the
//     scalar loop never reaches;
//   - same-array store pairs where either offset is inexact (a runtime
//     scalar folded away during lowering) forbid it: the dependence distance
//     is unknown;
//   - a non-affine store (scatter with unknown aliasing) forbids it;
//   - a non-affine load from an array that is also stored forbids it;
//   - for same-array store/load pairs with equal stride s, a positive
//     dependence distance d limits VF <= d; negative distances
//     (anti-dependences) are safe because vector loads complete before the
//     corresponding vector stores;
//   - same-array accesses with differing strides are conservatively
//     rejected (VF = 1) unless one of them never aliases the other
//     (different congruence classes modulo gcd);
//   - same-array pairs that advance differently with an enclosing loop are
//     conservatively rejected: their address difference changes across outer
//     iterations, invalidating every offset-based proof.
//
// When the frontend proved the loop's trip count (ir.Loop.ProvenTrip, set
// from sema facts), the analysis additionally bounds every affine stream to
// its swept range over [0, trip) and drops dependences that cannot be
// realised inside the iteration space: a fixed location outside a store's
// swept range, differing-stride streams with disjoint ranges, and
// equal-stride distances no smaller than the trip count. Trip counts the
// simulator merely assumes (TripKnown=false defaults) never participate.
//
// Recognised reductions do not create dependences; the lowering pass already
// removed their accumulator traffic from the access list.
func Analyze(l *ir.Loop) Result {
	if l.HasCall {
		return Result{MaxVF: 1, Reason: "opaque call in loop body"}
	}
	if l.Irregular {
		return Result{MaxVF: 1, Reason: "non-canonical loop induction"}
	}
	if l.HasEarlyExit {
		return Result{MaxVF: 1, Reason: "early exit (break) in loop body"}
	}
	trip := l.ProvenTrip // 0 means no proof: range reasoning disabled
	maxVF := Unlimited
	reason := ""
	limit := func(vf int, why string) {
		if vf < maxVF {
			maxVF = vf
			reason = why
		}
	}

	for _, s := range l.Accesses {
		if s.Kind != ir.Store {
			continue
		}
		if !s.Affine {
			return Result{MaxVF: 1, Reason: "non-affine store may alias anything"}
		}
		ss := s.StrideFor(l.Label)
		for _, a := range l.Accesses {
			if a == s || a.Array != s.Array {
				continue
			}
			if !a.Affine {
				return Result{MaxVF: 1, Reason: "non-affine access to stored array " + s.Array}
			}
			as := a.StrideFor(l.Label)
			if !s.ExactOffset || !a.ExactOffset {
				// A runtime-scalar term was folded to zero in at least one of
				// the offsets, so every offset-based proof below would compare
				// incomplete addresses (a[i+k] vs a[i] has unknown distance).
				limit(1, "runtime-offset access pair on "+s.Array)
				continue
			}
			if !outerStridesEqual(s, a, l.Label) {
				// The pair's address difference varies with an enclosing
				// loop, so every offset-based proof below (same-location,
				// congruence, distance, range) would reason from the wrong
				// difference for outer iterations past the first.
				limit(1, "outer-loop-variant access pair on "+s.Array)
				continue
			}
			switch {
			case ss == 0 && as == 0:
				// Both loop-invariant: same scalar location every iteration.
				if s.Offset == a.Offset {
					limit(1, "loop-invariant store aliases access in "+s.Array)
				}
			case ss == 0 || as == 0:
				// A store sweeping past (or being swept past by) a fixed
				// location. With a proven trip count the swept range is
				// bounded, and a fixed location it never reaches cannot
				// alias; otherwise conservatively reject.
				fixed, stride, base := s.Offset, as, a.Offset
				if as == 0 {
					fixed, stride, base = a.Offset, ss, s.Offset
				}
				if trip > 0 && !sweepHits(fixed, base, stride, trip) {
					continue
				}
				limit(1, "mixed invariant/strided access to "+s.Array)
			case ss != as:
				if neverAlias(ss, s.Offset, as, a.Offset) {
					continue
				}
				if trip > 0 && disjointRanges(ss, s.Offset, as, a.Offset, trip) {
					continue
				}
				limit(1, "differing strides on "+s.Array)
			default:
				// Equal strides: distance in iterations between the store at
				// iteration i and the access touching the same address.
				delta := s.Offset - a.Offset
				if delta == 0 {
					// Same address same iteration: ordinary a[i] = f(a[i]).
					continue
				}
				if delta%ss != 0 {
					continue // different congruence classes: never alias
				}
				d := delta / ss
				if trip > 0 && (d >= trip || -d >= trip) {
					// The dependent iteration lies outside the proven
					// iteration space: no pair of in-bounds iterations
					// touches the same address.
					continue
				}
				if d < 0 {
					// With positive stride, a negative d means the access
					// reads addresses the store already passed -> the read
					// happens after the write in iteration order only if the
					// access is itself a store; output dependences with
					// positive distance also limit VF.
					if a.Kind == ir.Store {
						limit(int(-d), "output dependence on "+s.Array)
					}
					continue // anti-dependence: safe
				}
				// Flow dependence with distance d: iteration i+d reads what
				// iteration i wrote. VF <= d keeps each read after its write.
				limit(int(d), "loop-carried dependence on "+s.Array)
			}
		}
	}
	if maxVF < 1 {
		maxVF = 1
	}
	return Result{MaxVF: maxVF, Reason: reason}
}

// neverAlias reports whether two affine streams with different strides can
// be proven disjoint via a gcd congruence test.
func neverAlias(s1, o1, s2, o2 int64) bool {
	g := gcd(abs64(s1), abs64(s2))
	if g == 0 {
		return false
	}
	return (o1-o2)%g != 0
}

// outerStridesEqual reports whether two accesses advance identically with
// every enclosing loop other than label. Only then is their address
// difference invariant across outer iterations, which the range-based proofs
// (sweepHits, disjointRanges, distance-vs-trip) all rely on.
func outerStridesEqual(a, b *ir.Access, label string) bool {
	for k, v := range a.Strides {
		if k != label && b.StrideFor(k) != v {
			return false
		}
	}
	for k, v := range b.Strides {
		if k != label && a.StrideFor(k) != v {
			return false
		}
	}
	return true
}

// sweepHits reports whether the strided stream base + stride*i touches the
// fixed element for some iteration i in [0, trip).
func sweepHits(fixed, base, stride, trip int64) bool {
	delta := fixed - base
	if stride == 0 {
		return delta == 0
	}
	if delta%stride != 0 {
		return false
	}
	i := delta / stride
	return i >= 0 && i < trip
}

// disjointRanges reports whether two affine streams touch disjoint element
// ranges over the iteration space [0, trip).
func disjointRanges(s1, o1, s2, o2, trip int64) bool {
	lo1, hi1 := streamRange(s1, o1, trip)
	lo2, hi2 := streamRange(s2, o2, trip)
	return hi1 < lo2 || hi2 < lo1
}

// streamRange returns the inclusive element range swept by base + stride*i
// for i in [0, trip).
func streamRange(stride, base, trip int64) (lo, hi int64) {
	last := base + stride*(trip-1)
	if last < base {
		return last, base
	}
	return base, last
}

// MaxLegalVF returns Analyze(l).MaxVF clamped to the architecture bound and
// rounded down to a power of two, which is the action space the paper uses.
func MaxLegalVF(l *ir.Loop, archMax int) int {
	vf := Analyze(l).MaxVF
	if vf > archMax {
		vf = archMax
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= vf {
		p *= 2
	}
	return p
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
