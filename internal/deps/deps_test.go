package deps

import (
	"testing"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
)

func loopFor(t *testing.T, src string) *ir.Loop {
	t.Helper()
	p := lower.MustProgram(lang.MustParse(src))
	loops := p.InnermostLoops()
	if len(loops) == 0 {
		t.Fatal("no loops in source")
	}
	return loops[0]
}

func TestIndependentLoopUnlimited(t *testing.T) {
	l := loopFor(t, `
int a[512];
int b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[i] + 1;
    }
}
`)
	r := Analyze(l)
	if r.MaxVF != Unlimited {
		t.Errorf("MaxVF = %d (%s), want unlimited", r.MaxVF, r.Reason)
	}
}

func TestFlowDependenceDistanceOne(t *testing.T) {
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 1; i < 512; i++) {
        a[i] = a[i - 1] + 1;
    }
}
`)
	r := Analyze(l)
	if r.MaxVF != 1 {
		t.Errorf("MaxVF = %d, want 1 (recurrence)", r.MaxVF)
	}
}

func TestFlowDependenceDistanceFour(t *testing.T) {
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 0; i < 500; i++) {
        a[i + 4] = a[i] + 1;
    }
}
`)
	r := Analyze(l)
	if r.MaxVF != 4 {
		t.Errorf("MaxVF = %d (%s), want 4", r.MaxVF, r.Reason)
	}
	if got := MaxLegalVF(l, 64); got != 4 {
		t.Errorf("MaxLegalVF = %d, want 4", got)
	}
}

func TestDistanceThreeRoundsToTwo(t *testing.T) {
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 0; i < 500; i++) {
        a[i + 3] = a[i] * 2;
    }
}
`)
	if got := MaxLegalVF(l, 64); got != 2 {
		t.Errorf("MaxLegalVF = %d, want 2 (pow2 floor of 3)", got)
	}
}

func TestAntiDependenceIsSafe(t *testing.T) {
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 0; i < 500; i++) {
        a[i] = a[i + 1] + 1;
    }
}
`)
	r := Analyze(l)
	if r.MaxVF != Unlimited {
		t.Errorf("MaxVF = %d (%s), want unlimited (anti-dependence)", r.MaxVF, r.Reason)
	}
}

func TestSameAddressReadWriteSafe(t *testing.T) {
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = a[i] * 3;
    }
}
`)
	if r := Analyze(l); r.MaxVF != Unlimited {
		t.Errorf("MaxVF = %d (%s), want unlimited", r.MaxVF, r.Reason)
	}
}

func TestDifferentCongruenceClassesSafe(t *testing.T) {
	// Writes even elements, reads odd elements: never alias.
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 0; i < 255; i++) {
        a[2 * i] = a[2 * i + 1];
    }
}
`)
	if r := Analyze(l); r.MaxVF != Unlimited {
		t.Errorf("MaxVF = %d (%s), want unlimited", r.MaxVF, r.Reason)
	}
}

func TestNonAffineStoreBlocks(t *testing.T) {
	l := loopFor(t, `
int idx[512];
int a[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[idx[i]] = i;
    }
}
`)
	if r := Analyze(l); r.MaxVF != 1 {
		t.Errorf("MaxVF = %d, want 1 (scatter)", r.MaxVF)
	}
}

func TestNonAffineLoadFromStoredArrayBlocks(t *testing.T) {
	l := loopFor(t, `
int idx[512];
int a[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = a[idx[i]];
    }
}
`)
	if r := Analyze(l); r.MaxVF != 1 {
		t.Errorf("MaxVF = %d, want 1", r.MaxVF)
	}
}

func TestNonAffineLoadFromOtherArrayOK(t *testing.T) {
	l := loopFor(t, `
int idx[512];
int data[4096];
int out[512];
void f() {
    for (int i = 0; i < 512; i++) {
        out[i] = data[idx[i]];
    }
}
`)
	if r := Analyze(l); r.MaxVF != Unlimited {
		t.Errorf("MaxVF = %d (%s), want unlimited (gatherable)", r.MaxVF, r.Reason)
	}
}

func TestCallBlocksVectorization(t *testing.T) {
	l := loopFor(t, `
int a[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = helper(i);
    }
}
`)
	if r := Analyze(l); r.MaxVF != 1 {
		t.Errorf("MaxVF = %d, want 1 (call)", r.MaxVF)
	}
}

func TestReductionDoesNotBlock(t *testing.T) {
	l := loopFor(t, `
int v[512];
int f() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += v[i];
    }
    return sum;
}
`)
	if r := Analyze(l); r.MaxVF != Unlimited {
		t.Errorf("MaxVF = %d (%s), want unlimited (reduction handled)", r.MaxVF, r.Reason)
	}
}

func TestMixedInvariantStrideBlocks(t *testing.T) {
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = a[5] + 1;
    }
}
`)
	if r := Analyze(l); r.MaxVF != 1 {
		t.Errorf("MaxVF = %d, want 1 (store sweeps past fixed read)", r.MaxVF)
	}
}

func TestOutputDependenceLimits(t *testing.T) {
	// Two stores to the same array, distance 2: output dependence.
	l := loopFor(t, `
int a[1024];
void f() {
    for (int i = 0; i < 500; i++) {
        a[2 * i] = i;
        a[2 * i + 4] = i + 1;
    }
}
`)
	r := Analyze(l)
	if r.MaxVF != 2 {
		t.Errorf("MaxVF = %d (%s), want 2 (output dependence distance 2)", r.MaxVF, r.Reason)
	}
}

func TestDifferingStridesConservative(t *testing.T) {
	// Store stride 2, load stride 3 on the same array with compatible
	// congruence: must be rejected.
	l := loopFor(t, `
int a[4096];
void f() {
    for (int i = 0; i < 1000; i++) {
        a[2 * i] = a[3 * i];
    }
}
`)
	if r := Analyze(l); r.MaxVF != 1 {
		t.Errorf("MaxVF = %d (%s), want 1", r.MaxVF, r.Reason)
	}
}

func TestDifferingStridesProvablyDisjoint(t *testing.T) {
	// Store even elements, read from a different congruence class modulo
	// gcd(2, 4) = 2: offsets differ by an odd constant, never alias.
	l := loopFor(t, `
int a[8192];
void f() {
    for (int i = 0; i < 1000; i++) {
        a[2 * i] = a[4 * i + 1];
    }
}
`)
	if r := Analyze(l); r.MaxVF != Unlimited {
		t.Errorf("MaxVF = %d (%s), want unlimited (gcd test)", r.MaxVF, r.Reason)
	}
}

func TestInvariantStoreAliasesInvariantLoad(t *testing.T) {
	l := loopFor(t, `
int a[16];
int b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[3] = a[3] + b[i];
    }
}
`)
	if r := Analyze(l); r.MaxVF != 1 {
		t.Errorf("MaxVF = %d, want 1 (scalar location updated every iteration)", r.MaxVF)
	}
}

func TestReasonIsPopulated(t *testing.T) {
	l := loopFor(t, `
int a[512];
void f() {
    for (int i = 1; i < 512; i++) {
        a[i] = a[i - 1];
    }
}
`)
	r := Analyze(l)
	if r.MaxVF != 1 || r.Reason == "" {
		t.Fatalf("result = %+v, want limited with a reason", r)
	}
}

func TestMaxLegalVFClampsToArch(t *testing.T) {
	l := loopFor(t, `
int a[512];
int b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[i];
    }
}
`)
	if got := MaxLegalVF(l, 16); got != 16 {
		t.Errorf("MaxLegalVF(16) = %d", got)
	}
	if got := MaxLegalVF(l, 64); got != 64 {
		t.Errorf("MaxLegalVF(64) = %d", got)
	}
}
