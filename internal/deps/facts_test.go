package deps

import (
	"testing"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
	"neurovec/internal/lower"
)

// lowerLoop lowers src twice — once plain, once with sema's proven facts
// threaded through lower.Options.Facts — and returns both innermost loops.
// It refuses sources with semantic errors: the sharper legality rules are
// only ever fed facts from clean programs.
func lowerLoop(t *testing.T, src string) (plain, withFacts *ir.Loop) {
	t.Helper()
	prog, err := lang.ParseFile("facts.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := sema.Check("facts.c", prog)
	if info.Diags.HasErrors() {
		t.Fatalf("semantic errors in test source:\n%s", info.Diags.String())
	}

	p1, err := lower.Program(prog, lower.DefaultOptions())
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opts := lower.DefaultOptions()
	opts.Facts = info.Facts
	p2, err := lower.Program(prog, opts)
	if err != nil {
		t.Fatalf("lower with facts: %v", err)
	}
	return p1.InnermostLoops()[0], p2.InnermostLoops()[0]
}

// crossCheckIndependent is the independent legality oracle for newly
// accepted loops: it brute-forces every pair of iterations and every
// (store, other-access) pair on the same array, asserting the addresses
// never collide across distinct iterations. Only then is an Unlimited
// verdict trusted.
func crossCheckIndependent(t *testing.T, l *ir.Loop) {
	t.Helper()
	if l.ProvenTrip <= 0 {
		t.Fatal("cross-check needs a proven trip count")
	}
	addr := func(a *ir.Access, i int64) int64 {
		return a.Offset + a.Strides[l.Label]*i
	}
	for _, s := range l.Accesses {
		if s.Kind != ir.Store {
			continue
		}
		for _, o := range l.Accesses {
			if o == s || o.Array != s.Array {
				continue
			}
			for i := int64(0); i < l.ProvenTrip; i++ {
				for j := int64(0); j < l.ProvenTrip; j++ {
					if i == j {
						continue
					}
					if addr(s, i) == addr(o, j) {
						t.Fatalf("loop-carried conflict on %s: store@iter%d and %s@iter%d share element %d",
							s.Array, i, o.Kind, j, addr(s, i))
					}
				}
			}
		}
	}
}

// TestFactsUnlockMixedInvariantStrided is the headline regression: a
// canonical nest mixing an invariant read with a strided store to the same
// array is rejected outright without sema facts, and proven independent —
// hence fully vectorizable — with them.
func TestFactsUnlockMixedInvariantStrided(t *testing.T) {
	src := `
int a[256];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i + 64] = a[0] * 2;
    }
}
`
	plain, withFacts := lowerLoop(t, src)

	r := Analyze(plain)
	if r.MaxVF != 1 {
		t.Fatalf("without facts: MaxVF = %d (%s), want 1 (conservative rejection)", r.MaxVF, r.Reason)
	}
	if plain.ProvenTrip != 0 {
		t.Fatalf("plain lowering carries ProvenTrip = %d, want 0", plain.ProvenTrip)
	}

	if withFacts.ProvenTrip != 64 {
		t.Fatalf("ProvenTrip = %d, want 64", withFacts.ProvenTrip)
	}
	r = Analyze(withFacts)
	if r.MaxVF != Unlimited {
		t.Fatalf("with facts: MaxVF = %d (%s), want unlimited", r.MaxVF, r.Reason)
	}
	crossCheckIndependent(t, withFacts)
}

// TestFactsUnlockDisjointRanges: differing strides whose swept ranges are
// disjoint within the proven trip. The unbounded diophantine test has
// solutions, so only the trip bound can legalize it.
func TestFactsUnlockDisjointRanges(t *testing.T) {
	src := `
int a[256];
void f() {
    for (int i = 0; i < 64; i++) {
        a[2 * i] = a[i + 128] + 1;
    }
}
`
	plain, withFacts := lowerLoop(t, src)

	r := Analyze(plain)
	if r.MaxVF != 1 {
		t.Fatalf("without facts: MaxVF = %d (%s), want 1", r.MaxVF, r.Reason)
	}
	r = Analyze(withFacts)
	if r.MaxVF != Unlimited {
		t.Fatalf("with facts: MaxVF = %d (%s), want unlimited", r.MaxVF, r.Reason)
	}
	crossCheckIndependent(t, withFacts)
}

// TestFactsUnlockDistanceBeyondTrip: equal strides with a constant distance
// no smaller than the proven trip — the dependence is never realized inside
// the iteration space.
func TestFactsUnlockDistanceBeyondTrip(t *testing.T) {
	src := `
int a[256];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i + 64] = a[i] + 1;
    }
}
`
	plain, withFacts := lowerLoop(t, src)

	before := Analyze(plain)
	if before.MaxVF != 64 {
		t.Fatalf("without facts: MaxVF = %d (%s), want 64 (flow distance)", before.MaxVF, before.Reason)
	}
	after := Analyze(withFacts)
	if after.MaxVF != Unlimited {
		t.Fatalf("with facts: MaxVF = %d (%s), want unlimited", after.MaxVF, after.Reason)
	}
	crossCheckIndependent(t, withFacts)
}

// TestFactsStayConservative pins the other side: genuinely conflicting
// nests keep their limits even with a proven trip, and runtime-bound loops
// never gain one.
func TestFactsStayConservative(t *testing.T) {
	t.Run("real recurrence keeps VF 1", func(t *testing.T) {
		_, withFacts := lowerLoop(t, `
int a[256];
void f() {
    for (int i = 1; i < 64; i++) {
        a[i] = a[i - 1] + 1;
    }
}
`)
		if withFacts.ProvenTrip == 0 {
			t.Fatal("expected a proven trip on the canonical recurrence")
		}
		if r := Analyze(withFacts); r.MaxVF != 1 {
			t.Errorf("MaxVF = %d, want 1 (true recurrence)", r.MaxVF)
		}
	})
	t.Run("distance inside trip stays clamped", func(t *testing.T) {
		_, withFacts := lowerLoop(t, `
int a[256];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i + 4] = a[i] + 1;
    }
}
`)
		if r := Analyze(withFacts); r.MaxVF != 4 {
			t.Errorf("MaxVF = %d, want 4 (distance 4 < trip)", r.MaxVF)
		}
	})
	t.Run("symbolic bound gets no proof", func(t *testing.T) {
		plain, withFacts := lowerLoop(t, `
int a[256];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i + 64] = a[0] * 2;
    }
}
`)
		if withFacts.ProvenTrip != 0 {
			t.Fatalf("ProvenTrip = %d for symbolic bound, want 0", withFacts.ProvenTrip)
		}
		if r := Analyze(withFacts); r.MaxVF != 1 {
			t.Errorf("MaxVF = %d, want 1 (no proof, conservative)", r.MaxVF)
		}
		if r := Analyze(plain); r.MaxVF != 1 {
			t.Errorf("plain MaxVF = %d, want 1", r.MaxVF)
		}
	})
}

// TestFactsRespectOuterLoopVariance: the range proofs assume the address
// difference is outer-iteration invariant; accesses whose outer strides
// differ must stay rejected even with a proven inner trip.
func TestFactsRespectOuterLoopVariance(t *testing.T) {
	src := `
int a[4096];
void f() {
    for (int j = 0; j < 8; j++) {
        for (int i = 0; i < 16; i++) {
            a[64 * j + i + 16] = a[i] + 1;
        }
    }
}
`
	_, withFacts := lowerLoop(t, src)
	if withFacts.ProvenTrip != 16 {
		t.Fatalf("inner ProvenTrip = %d, want 16", withFacts.ProvenTrip)
	}
	// The store advances by 64 per outer iteration, the load not at all, so
	// their address difference is not outer-invariant and every offset-based
	// proof (including the trip-window shortcut) is off the table. The only
	// sound verdict from this analysis is the conservative rejection.
	r := Analyze(withFacts)
	if r.MaxVF != 1 {
		t.Errorf("MaxVF = %d (%s), want 1 (outer-variant pair)", r.MaxVF, r.Reason)
	}
}
