package deps

import (
	"fmt"
	"testing"

	"neurovec/internal/dataset"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
	"neurovec/internal/lower"
)

// This file is the differential legality check: an independent brute-force
// oracle over the concrete iteration space, cross-checked against Analyze's
// certified MaxVF for every loop in every shipped corpus (including the tsvc
// suite's calls, structs, multi-dim arrays, switches and non-canonical
// loops) plus the synthetic generator's extended-grammar pool.
//
// The oracle's model of vectorization at factor VF: consecutive iterations
// are grouped into chunks of VF; within a chunk all loads execute before all
// stores, and the lanes of a single store instruction commit in iteration
// order. A certified VF is illegal if any chunk contains
//
//   - a flow hazard: a store at iteration i and a load at iteration j > i
//     touching the same element (the lockstep load would read the value
//     from before the store), or
//   - an output hazard: two distinct store sites touching the same element
//     at different iterations (their commit order within the chunk is
//     unspecified in the IR).
//
// Anti-dependences (load before the store that overwrites the element) are
// legal — loads complete first — and a single store site never hazards with
// itself because its lanes commit in order.
//
// Addresses are Offset + Σ Strides[label]·k over the normalized iteration
// space [0, trip): the lowering pass folds loop lower bounds and step sizes
// into offsets and per-iteration strides, so the oracle can walk raw
// indices. Pairs whose address the oracle cannot compute exactly (non-affine
// subscripts, runtime-scalar offsets) are hazards at any VF > 1 by
// definition: no certificate can be checked, so none may be issued.

// oracleTrip picks the iteration count the oracle simulates. A proven trip
// bounds the real iteration space exactly; otherwise the certificate must
// hold for every trip, so any sufficiently large window is a valid probe.
func oracleTrip(l *ir.Loop) int64 {
	if l.ProvenTrip > 0 {
		return l.ProvenTrip
	}
	t := l.Trip
	if t < 2 {
		t = 2
	}
	if t > 128 {
		t = 128
	}
	return t
}

// outerDeltas enumerates the address-difference contributions of the
// enclosing loops: for each assignment of outer iteration variables, the
// difference between the two accesses' outer-stride terms. When both
// accesses advance identically with every outer loop this is just {0};
// otherwise the set exposes outer-variant pairs the inner-loop proofs must
// not reason about. Outer trips are capped to keep the sweep bounded — a
// capped sweep can only under-report hazards, never invent one.
func outerDeltas(s, a *ir.Access, inner string, outers []*ir.Loop) []int64 {
	deltas := []int64{0}
	for _, o := range outers {
		d := s.StrideFor(o.Label) - a.StrideFor(o.Label)
		if d == 0 {
			continue
		}
		trip := o.Trip
		if o.ProvenTrip > 0 {
			trip = o.ProvenTrip
		}
		if trip > 16 {
			trip = 16
		}
		var next []int64
		for _, base := range deltas {
			for k := int64(0); k < trip; k++ {
				next = append(next, base+d*k)
			}
		}
		deltas = next
	}
	return deltas
}

// chunkHazard reports whether a chunk of vf consecutive iterations contains
// a flow or output hazard between store s and access a, for some enclosing
// iteration state drawn from deltas. i indexes s's iteration and j indexes
// a's; both range over the same chunk.
func chunkHazard(s, a *ir.Access, inner string, trip int64, vf int64, deltas []int64) (int64, int64, bool) {
	ss := s.StrideFor(inner)
	as := a.StrideFor(inner)
	for _, d := range deltas {
		for base := int64(0); base < trip; base += vf {
			end := base + vf
			if end > trip {
				end = trip
			}
			for i := base; i < end; i++ {
				for j := base; j < end; j++ {
					if i == j {
						continue
					}
					if s.Offset+ss*i != a.Offset+as*j+d {
						continue
					}
					// Same element, distinct iterations in one chunk.
					if a.Kind == ir.Store {
						return i, j, true // output hazard: unordered store sites
					}
					if j > i {
						return i, j, true // flow hazard: load after store in scalar order
					}
					// j < i and a is a load: anti-dependence, legal.
				}
			}
		}
	}
	return 0, 0, false
}

// checkLoopAgainstOracle certifies one innermost loop: whatever MaxVF
// Analyze reports must survive the brute-force sweep. VF 1 is legal by
// definition (no lockstep), so conservatively rejected loops pass trivially
// — the oracle exists to catch certificates that are too permissive.
func checkLoopAgainstOracle(t *testing.T, name string, l *ir.Loop, outers []*ir.Loop) {
	t.Helper()
	res := Analyze(l)
	if res.MaxVF <= 1 {
		return
	}
	trip := oracleTrip(l)
	vf := int64(res.MaxVF)
	if vf > trip {
		vf = trip
	}
	for _, s := range l.Accesses {
		if s.Kind != ir.Store {
			continue
		}
		for _, a := range l.Accesses {
			if a == s || a.Array != s.Array {
				continue
			}
			if !s.Affine || !a.Affine || !s.ExactOffset || !a.ExactOffset {
				t.Errorf("%s: loop %s: Analyze certified VF=%d but the %s access pair on %q has addresses the oracle cannot bound (affine=%v/%v exact=%v/%v)",
					name, l.Label, res.MaxVF, a.Kind, s.Array, s.Affine, a.Affine, s.ExactOffset, a.ExactOffset)
				continue
			}
			deltas := outerDeltas(s, a, l.Label, outers)
			if i, j, bad := chunkHazard(s, a, l.Label, trip, vf, deltas); bad {
				t.Errorf("%s: loop %s: Analyze certified VF=%d (%s) but store@iter%d and %s@iter%d share an element of %q inside one chunk",
					name, l.Label, res.MaxVF, res.Reason, i, a.Kind, j, s.Array)
			}
		}
	}
}

// checkProgram runs the oracle over every innermost loop of a lowered
// program, tracking the enclosing-loop path so outer-variant address terms
// are swept too.
func checkProgram(t *testing.T, name string, p *ir.Program) {
	t.Helper()
	var walk func(l *ir.Loop, outers []*ir.Loop)
	walk = func(l *ir.Loop, outers []*ir.Loop) {
		if l.Innermost() {
			checkLoopAgainstOracle(t, name, l, outers)
			return
		}
		for _, c := range l.Children {
			walk(c, append(outers, l))
		}
	}
	for _, f := range p.Funcs {
		for _, l := range f.Loops {
			walk(l, nil)
		}
	}
}

// lowerBoth lowers a source once plainly and once with sema's proven facts,
// mirroring the real pipeline's two operating points. Sources with sema
// errors are skipped by returning nils (the corpora under test forbid them
// elsewhere; the oracle only certifies what the pipeline would accept).
func lowerBoth(t *testing.T, name, src string, params map[string]int64) (plain, withFacts *ir.Program) {
	t.Helper()
	prog, err := lang.ParseFile(name, src)
	if err != nil {
		t.Errorf("%s: parse: %v", name, err)
		return nil, nil
	}
	info := sema.Check(name, prog)
	if info.Diags.HasErrors() {
		t.Errorf("%s: sema errors:\n%s", name, info.Diags.String())
		return nil, nil
	}
	opts := lower.DefaultOptions()
	opts.ParamValues = params
	p1, err := lower.Program(prog, opts)
	if err != nil {
		t.Errorf("%s: lower: %v", name, err)
		return nil, nil
	}
	opts.Facts = info.Facts
	p2, err := lower.Program(prog, opts)
	if err != nil {
		t.Errorf("%s: lower with facts: %v", name, err)
		return p1, nil
	}
	return p1, p2
}

// TestDifferentialLegalityBenchmarks sweeps every shipped benchmark suite —
// most importantly tsvc, whose kernels exist to stress calls, struct
// fields, multi-dimensional arrays, switches and non-canonical loops —
// asserting Analyze never certifies a vectorization factor the brute-force
// oracle can refute.
func TestDifferentialLegalityBenchmarks(t *testing.T) {
	suites := map[string][]dataset.Benchmark{
		"tsvc":      dataset.TSVC(),
		"figure7":   dataset.EvalBenchmarks(),
		"llvmsuite": dataset.LLVMSuite(),
		"polybench": dataset.PolyBench(),
		"mibench":   dataset.MiBench(),
	}
	for suite, bs := range suites {
		for _, b := range bs {
			name := suite + "/" + b.Name
			plain, withFacts := lowerBoth(t, name, b.Source, b.ParamValues)
			if plain != nil {
				checkProgram(t, name+"[plain]", plain)
			}
			if withFacts != nil {
				checkProgram(t, name+"[facts]", withFacts)
			}
		}
	}
}

// TestDifferentialLegalityGenerated runs the same oracle over the synthetic
// generator with the extended-grammar families enabled, so every template —
// including the struct, switch, call, stepped, early-break, 3-D and
// imperfect-nest shapes — faces the cross-check at several seeds.
func TestDifferentialLegalityGenerated(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		set := dataset.Generate(dataset.GenConfig{N: 150, Seed: seed, Extended: true})
		for _, s := range set.Samples {
			name := fmt.Sprintf("seed%d/%s", seed, s.Name)
			plain, withFacts := lowerBoth(t, name, s.Source, nil)
			if plain != nil {
				checkProgram(t, name+"[plain]", plain)
			}
			if withFacts != nil {
				checkProgram(t, name+"[facts]", withFacts)
			}
		}
	}
}

// TestDifferentialLegalityTargeted pins hand-written near-miss shapes from
// the new grammar: each source pairs a legal kernel with an adversarial
// sibling whose certified VF would be refuted if one of the conservative
// rules (inexact offsets, irregular inductions, early exits, struct-field
// separation, flattened multi-dim congruence) were dropped.
func TestDifferentialLegalityTargeted(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int64
	}{
		{"runtime_offset_pair", `
int a[1024];
void f(int m) {
    for (int i = 0; i < 256; i++) {
        a[i + m] = a[i] + 1;
    }
}
`, map[string]int64{"m": 3}},
		{"struct_field_separation", `
struct point { float x; float y; };
struct point pts[512];
void f() {
    for (int i = 0; i < 512; i++) {
        pts[i].x = pts[i].y * 2.0;
    }
}
`, nil},
		{"struct_field_recurrence", `
struct cell { int v; int w; };
struct cell grid[256];
void f() {
    for (int i = 0; i < 255; i++) {
        grid[i + 1].v = grid[i].v + grid[i].w;
    }
}
`, nil},
		{"multidim_row_vs_flat", `
int aa[64][64];
void f() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 63; j++) {
            aa[i][j] = aa[i][j + 1] * 2;
        }
    }
}
`, nil},
		{"nonunit_step_interleave", `
int a[2048];
void f() {
    for (int i = 0; i < 512; i += 2) {
        a[i + 1] = a[i] * 3;
    }
}
`, nil},
		{"downward_recurrence", `
int a[512];
void f() {
    for (int i = 510; i >= 0; i--) {
        a[i] = a[i + 1] + 1;
    }
}
`, nil},
		{"call_in_subscript", `
int a[1024];
int b[1024];
void f() {
    for (int i = 0; i < 256; i++) {
        a[remap(i)] = b[i];
    }
}
`, nil},
		{"switch_predicated_store", `
int a[256];
int b[256];
void f() {
    for (int i = 0; i < 255; i++) {
        switch (b[i]) {
        case 0:
            a[i] = 1;
            break;
        default:
            a[i] = a[i + 1];
            break;
        }
    }
}
`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain, withFacts := lowerBoth(t, tc.name, tc.src, tc.params)
			if plain != nil {
				checkProgram(t, tc.name+"[plain]", plain)
			}
			if withFacts != nil {
				checkProgram(t, tc.name+"[facts]", withFacts)
			}
		})
	}
}
