// Package extractor implements the "automatic loop extractor" stage of the
// framework (Figure 3): it finds every vectorizable (innermost) loop in a
// parsed translation unit, pairs it with the outermost loop of its nest —
// the snippet the paper found works best as embedder input — and injects
// vectorization pragmas back into the source (Figure 4).
package extractor

import (
	"neurovec/internal/lang"
)

// LoopInfo describes one extraction target.
type LoopInfo struct {
	// Label is the innermost loop's stable label (the key used for
	// vectorization plans and decisions).
	Label string
	// Innermost is the loop that receives the pragma.
	Innermost *lang.ForStmt
	// Outermost is the root of the enclosing nest; for non-nested loops it
	// equals Innermost. Its body is what the code embedding generator reads:
	// "for nested loops, feeding the loop body of the most outer loop ...
	// performed better than feeding the body of the most inner loop only".
	Outermost *lang.ForStmt
	// Func is the name of the containing function.
	Func string
}

// Loops returns every innermost loop in the program with its enclosing nest
// root, in source order.
func Loops(p *lang.Program) []LoopInfo {
	var out []LoopInfo
	for _, f := range p.Funcs {
		for _, root := range topLevelLoops(f.Body) {
			collectInnermost(root, root, f.Name, &out)
		}
	}
	return out
}

// topLevelLoops finds for statements not nested in another for statement.
func topLevelLoops(b *lang.BlockStmt) []*lang.ForStmt {
	var roots []*lang.ForStmt
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.BlockStmt:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *lang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *lang.SwitchStmt:
			for _, cc := range st.Cases {
				for _, s := range cc.Body {
					walk(s)
				}
			}
		case *lang.ForStmt:
			roots = append(roots, st) // do not descend: children belong to this nest
		}
	}
	walk(b)
	return roots
}

func collectInnermost(cur, root *lang.ForStmt, fn string, out *[]LoopInfo) {
	children := directChildLoops(cur)
	if len(children) == 0 {
		*out = append(*out, LoopInfo{Label: cur.Label, Innermost: cur, Outermost: root, Func: fn})
		return
	}
	for _, c := range children {
		collectInnermost(c, root, fn, out)
	}
}

// directChildLoops finds for statements in the body of l that are not
// nested inside a deeper for statement.
func directChildLoops(l *lang.ForStmt) []*lang.ForStmt {
	return topLevelLoops(l.Body)
}

// Decision is a vectorization choice for a labelled loop.
type Decision struct {
	Label string
	VF    int
	IF    int
}

// InjectPragmas attaches clang loop pragmas to the innermost loops named by
// the decisions. Existing pragmas on those loops are replaced; loops without
// a decision are left untouched. It returns the number of pragmas injected.
func InjectPragmas(p *lang.Program, decisions []Decision) int {
	byLabel := make(map[string]Decision, len(decisions))
	for _, d := range decisions {
		byLabel[d.Label] = d
	}
	n := 0
	for _, info := range Loops(p) {
		d, ok := byLabel[info.Label]
		if !ok {
			continue
		}
		info.Innermost.Pragma = &lang.Pragma{VF: d.VF, IF: d.IF}
		n++
	}
	return n
}

// Annotate parses nothing and mutates nothing outside p: it injects the
// decisions and returns the re-printed source, the framework's user-facing
// output (the paper's Figure 4 artifact).
func Annotate(p *lang.Program, decisions []Decision) string {
	InjectPragmas(p, decisions)
	return lang.Print(p)
}
